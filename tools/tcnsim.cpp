// tcnsim: run any TCN paper experiment from the command line.
//
//   tcnsim --scheme tcn --sched wfq --load 0.8 --flows 2000
//   tcnsim --topology leafspine --scheme red --sched sp-dwrr --pias
//          --transport ecnstar --load 0.9
//   tcnsim --loads 0.3,0.5,0.7,0.9 --seeds 1,2,3,4 --jobs 4
//          --json BENCH_tcnsim.json
//
// With --loads/--seeds the cross product runs as a parallel sweep on
// --jobs worker threads (src/runner); per-run reports print in grid order
// -- byte-identical for any job count -- and --json writes the structured
// results (schema tcn-bench-1). See tcnsim --help for every flag.
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "fault/fault.hpp"
#include "runner/journal.hpp"
#include "runner/results.hpp"
#include "runner/sweep.hpp"
#include "traffic/spec.hpp"

namespace {

std::uint64_t to_u64(const std::string& flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const auto n = std::stoull(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return n;
  } catch (const std::exception&) {
    throw std::invalid_argument(flag + ": expected an integer, got '" + v +
                                "'");
  }
}

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  std::string token;
  for (std::size_t pos = 0; pos <= list.size(); ++pos) {
    if (pos == list.size() || list[pos] == ',') {
      if (!token.empty()) out.push_back(token);
      token.clear();
    } else {
      token += list[pos];
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const auto& a : args) {
    if (a == "--help" || a == "-h") {
      std::fputs(tcn::core::cli_usage().c_str(), stdout);
      return 0;
    }
  }
  try {
    // Sweep-level flags are handled here; everything else configures the
    // experiment via the library parser.
    std::size_t jobs = 1;
    std::string json_path;
    std::vector<double> loads;
    std::vector<std::uint64_t> seeds;
    std::vector<std::pair<std::string, tcn::fault::FaultPlan>> fault_grid;
    std::vector<std::pair<std::string, tcn::traffic::TrafficSpec>>
        traffic_grid;
    tcn::runner::SweepOptions opt;
    std::string resume_path;
    bool on_failure_set = false;
    std::vector<std::string> rest;
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& flag = args[i];
      auto value = [&]() -> const std::string& {
        if (i + 1 >= args.size()) {
          throw std::invalid_argument(flag + ": missing value");
        }
        return args[++i];
      };
      if (flag == "--jobs") {
        jobs = to_u64(flag, value());
      } else if (flag == "--json") {
        json_path = value();
      } else if (flag == "--loads") {
        for (const auto& t : split_list(value())) {
          loads.push_back(std::strtod(t.c_str(), nullptr));
        }
        if (loads.empty()) throw std::invalid_argument("--loads: empty list");
      } else if (flag == "--seeds") {
        for (const auto& t : split_list(value())) {
          seeds.push_back(to_u64(flag, t));
        }
        if (seeds.empty()) throw std::invalid_argument("--seeds: empty list");
      } else if (flag == "--fault-grid") {
        fault_grid = tcn::fault::parse_fault_grid(value());
      } else if (flag == "--traffic-grid") {
        traffic_grid = tcn::traffic::parse_traffic_grid(value());
      } else if (flag == "--on-failure") {
        opt.failure_policy = tcn::runner::failure_policy_from_name(value());
        on_failure_set = true;
      } else if (flag == "--retries") {
        opt.retry.max_attempts = to_u64(flag, value());
        if (opt.retry.max_attempts == 0) {
          throw std::invalid_argument("--retries: must be >= 1");
        }
        if (!on_failure_set) {
          opt.failure_policy = tcn::runner::FailurePolicy::kRetry;
        }
      } else if (flag == "--journal") {
        opt.journal_out = value();
        if (opt.journal_out.empty()) {
          throw std::invalid_argument("--journal: empty path");
        }
      } else if (flag == "--resume") {
        resume_path = value();
        if (resume_path.empty()) {
          throw std::invalid_argument("--resume: empty path");
        }
      } else {
        rest.push_back(flag);
      }
    }

    const auto cfg = tcn::core::parse_cli(rest);

    const bool single = loads.size() <= 1 && seeds.size() <= 1 &&
                        json_path.empty() && fault_grid.empty() &&
                        traffic_grid.empty() && opt.journal_out.empty() &&
                        resume_path.empty();
    if (single) {
      auto one = cfg;
      if (!loads.empty()) one.load = loads[0];
      if (!seeds.empty()) one.seed = seeds[0];
      const auto report = tcn::core::run_fct_experiment(one);
      std::fputs(tcn::core::format_report(one, report).c_str(), stdout);
      return 0;
    }

    if (!cfg.trace_out.empty()) {
      throw std::invalid_argument(
          "--trace-out: single-run only (a sweep would interleave every "
          "run's events into one file); drop --loads/--seeds/--json");
    }
    if (!cfg.series_out.empty()) {
      throw std::invalid_argument(
          "--series-out: single-run only (every run would overwrite the "
          "same file); drop --loads/--seeds/--json, or use "
          "--sample-interval-us alone -- the stability reduction rides the "
          "sweep JSON per run");
    }

    tcn::runner::SweepSpec spec;
    spec.name = "tcnsim";
    spec.base = cfg;
    // In a sweep the per-run metrics_out path would be clobbered by every
    // worker; collect in-memory per run instead and write one merged
    // document (job-index order, byte-identical for any --jobs) at the end.
    const std::string metrics_path = cfg.metrics_out;
    spec.base.metrics_out.clear();
    if (!metrics_path.empty()) spec.base.collect_metrics = true;
    spec.schemes = {{tcn::core::scheme_name(cfg.scheme), cfg.scheme}};
    spec.loads = loads.empty() ? std::vector<double>{cfg.load} : loads;
    if (!seeds.empty()) spec.seeds = seeds;
    spec.faults = std::move(fault_grid);
    spec.traffics = std::move(traffic_grid);

    opt.jobs = jobs;
    opt.journal_name = spec.name;
    // --resume with no --journal extends the same journal in place, so a
    // sweep can be killed and resumed any number of times.
    if (!resume_path.empty() && opt.journal_out.empty()) {
      opt.journal_out = resume_path;
    }
    tcn::runner::JournalData journal_data;
    if (!resume_path.empty()) {
      journal_data = tcn::runner::load_journal(resume_path);
      opt.resume = &journal_data;
      std::fprintf(stderr,
                   "resuming from %s: %zu of %zu run(s) journaled%s\n",
                   resume_path.c_str(), journal_data.entries.size(),
                   journal_data.total_jobs,
                   journal_data.torn_tail ? " (torn tail dropped)" : "");
    }
    opt.on_done = [](const tcn::runner::RunRecord& r) {
      if (r.skipped) return;
      std::fprintf(stderr, "  [load=%.0f%% seed=%llu] %s (%.0f ms)\n",
                   r.job.cfg.load * 100,
                   static_cast<unsigned long long>(r.job.cfg.seed),
                   r.ok ? "done" : r.error.c_str(), r.wall_ms);
    };
    const auto res = tcn::runner::run_sweep(spec, opt);

    for (const auto& r : res.runs) {
      std::string head;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "== load=%.0f%% seed=%llu",
                    r.job.cfg.load * 100,
                    static_cast<unsigned long long>(r.job.cfg.seed));
      head = buf;
      if (!r.job.fault_label.empty()) {
        head += " faults=" + r.job.fault_label;
      }
      if (!r.job.traffic_label.empty()) {
        head += " traffic=" + r.job.traffic_label;
      }
      std::printf("%s ==\n", head.c_str());
      if (r.ok) {
        std::fputs(tcn::core::format_report(r.job.cfg, r.report).c_str(),
                   stdout);
      } else {
        std::printf("  %s: %s\n", r.skipped ? "skipped" : "FAILED",
                    r.error.c_str());
      }
    }
    if (!json_path.empty()) {
      tcn::runner::write_json_file(res, "tcnsim", json_path);
    }
    if (!metrics_path.empty()) {
      tcn::runner::write_metrics_file(res, "tcnsim", metrics_path);
    }
    return res.ok() ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tcnsim: %s\n", e.what());
    return 2;
  }
}
