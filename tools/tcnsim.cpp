// tcnsim: run any TCN paper experiment from the command line.
//
//   tcnsim --scheme tcn --sched wfq --load 0.8 --flows 2000
//   tcnsim --topology leafspine --scheme red --sched sp-dwrr --pias \
//          --transport ecnstar --load 0.9
//
// See tcnsim --help for every flag.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "core/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const auto& a : args) {
    if (a == "--help" || a == "-h") {
      std::fputs(tcn::core::cli_usage().c_str(), stdout);
      return 0;
    }
  }
  try {
    const auto cfg = tcn::core::parse_cli(args);
    const auto report = tcn::core::run_fct_experiment(cfg);
    std::fputs(tcn::core::format_report(cfg, report).c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tcnsim: %s\n", e.what());
    return 2;
  }
}
