// Unit tests for the simulation engine: event ordering, cancellation,
// determinism, time arithmetic, RNG and empirical CDFs.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/ecdf.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace tcn::sim {
namespace {

TEST(Time, Constants) {
  EXPECT_EQ(kMicrosecond, 1'000);
  EXPECT_EQ(kMillisecond, 1'000'000);
  EXPECT_EQ(kSecond, 1'000'000'000);
}

TEST(Time, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_EQ(from_seconds(0.5), 500 * kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(0.125)), 0.125);
}

TEST(Time, TransmissionTime) {
  // 1500B at 1Gbps = 12us.
  EXPECT_EQ(transmission_time(1500, 1'000'000'000), 12 * kMicrosecond);
  // 1500B at 10Gbps = 1.2us.
  EXPECT_EQ(transmission_time(1500, 10'000'000'000ULL), 1'200);
  // Rounds up: 1 byte at 3bps -> ceil(8/3 * 1e9).
  EXPECT_EQ(transmission_time(1, 3), (8 * kSecond + 2) / 3);
}

TEST(Time, TransmissionTimeNeverZeroForData) {
  EXPECT_GT(transmission_time(1, 100'000'000'000ULL), 0);
}

TEST(Simulator, RunsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, FifoWithinSameTimestamp) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(42, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  Time fired_at = -1;
  s.schedule_at(100, [&] {
    s.schedule_in(50, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator s;
  s.schedule_at(100, [&] {
    EXPECT_THROW(s.schedule_at(50, [] {}), std::invalid_argument);
  });
  s.run();
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceIsHarmless) {
  Simulator s;
  const EventId id = s.schedule_at(10, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  EXPECT_FALSE(s.cancel(999'999));
  s.run();
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(30, [&] { ++count; });
  s.run(20);
  EXPECT_EQ(count, 2);  // t=20 inclusive
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, StopAbortsRun) {
  Simulator s;
  int count = 0;
  s.schedule_at(10, [&] {
    ++count;
    s.stop();
  });
  s.schedule_at(20, [&] { ++count; });
  s.run();
  EXPECT_EQ(count, 1);
  s.run();  // resumes
  EXPECT_EQ(count, 2);
}

TEST(Simulator, ReturnsExecutedCount) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  EXPECT_EQ(s.run(), 7u);
  EXPECT_EQ(s.events_executed(), 7u);
}

TEST(Simulator, SelfReschedulingChain) {
  Simulator s;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 100) s.schedule_in(5, tick);
  };
  s.schedule_at(0, tick);
  s.run();
  EXPECT_EQ(ticks, 100);
  EXPECT_EQ(s.now(), 99 * 5);
}

TEST(Simulator, CancelAfterFireDoesNotLeak) {
  Simulator s;
  std::vector<EventId> fired;
  for (int i = 0; i < 100; ++i) fired.push_back(s.schedule_at(i + 1, [] {}));
  s.run();
  ASSERT_EQ(s.pending(), 0u);
  // Regression: cancelling ids that already fired used to park them in the
  // cancelled set forever. With an empty heap they must be recognised as
  // stale immediately.
  for (const EventId id : fired) EXPECT_FALSE(s.cancel(id));
  EXPECT_EQ(s.cancelled_backlog(), 0u);
}

TEST(Simulator, StaleCancelBacklogBoundedByPending) {
  Simulator s;
  // A few far-future events keep the heap non-empty while many already-fired
  // ids get cancelled -- the leak scenario when timers race their own firing.
  for (int i = 0; i < 4; ++i) s.schedule_at(1'000'000 + i, [] {});
  std::vector<EventId> fired;
  for (int i = 0; i < 1000; ++i) fired.push_back(s.schedule_at(i + 1, [] {}));
  s.run(500'000);
  ASSERT_EQ(s.pending(), 4u);
  for (const EventId id : fired) s.cancel(id);
  EXPECT_LE(s.cancelled_backlog(), s.pending());
  // The far-future events were never cancelled and still run.
  EXPECT_EQ(s.run(), 4u);
  EXPECT_EQ(s.cancelled_backlog(), 0u);
}

TEST(Simulator, CancelInvalidAndUnknownIds) {
  Simulator s;
  s.schedule_at(10, [] {});
  EXPECT_FALSE(s.cancel(kInvalidEvent));
  EXPECT_FALSE(s.cancel(EventId{999}));  // never issued
  EXPECT_EQ(s.run(), 1u);
}

TEST(Simulator, EventStormWatchdogThrows) {
  Simulator s;
  s.set_event_storm_limit(1000);
  std::function<void()> chain = [&] { s.schedule_at(s.now(), chain); };
  s.schedule_at(5, chain);
  // A far-future RTO-like timer rides along; cancelling it after the storm
  // fires must be an O(1) tombstone with no leak.
  const EventId rto = s.schedule_at(1'000'000'000, [] {});
  EXPECT_THROW(s.run(), std::runtime_error);
  EXPECT_EQ(s.now(), 5);  // livelock was pinned at the stuck timestamp
  EXPECT_TRUE(s.cancel(rto));
  EXPECT_FALSE(s.cancel(rto));  // second cancel: stale ticket, no-op
  EXPECT_EQ(s.cancelled_backlog(), 1u);  // exactly the one tombstone
  EXPECT_LE(s.cancelled_backlog(), s.pending() + 1);
}

TEST(Simulator, CancelledFarFutureEventIsO1Tombstone) {
  Simulator s;
  // The satellite-6 scenario: far-future timers cancelled en masse must not
  // accumulate anywhere. The tombstones drain as the clock passes them.
  std::vector<EventId> timers;
  for (int i = 0; i < 1000; ++i) {
    timers.push_back(s.schedule_at(1'000'000 + i, [] {}));
  }
  int fired = 0;
  s.schedule_at(2'000'000, [&] { ++fired; });
  for (const EventId id : timers) EXPECT_TRUE(s.cancel(id));
  EXPECT_EQ(s.cancelled_backlog(), 1000u);
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(s.run(), 1u);  // only the live event executes
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.cancelled_backlog(), 0u);  // every tombstone discarded
}

TEST(Simulator, PeakPendingAndResizeTelemetry) {
  Simulator s;
  for (int i = 0; i < 500; ++i) s.schedule_at(i + 1, [] {});
  EXPECT_EQ(s.peak_pending(), 500u);
  s.run();
  EXPECT_EQ(s.peak_pending(), 500u);  // high-water mark survives the drain
  // 500 near-future events outgrow the 64-bucket ring: the calendar resized.
  EXPECT_GT(s.calendar_resizes(), 0u);
}

TEST(Simulator, EventBudgetThrowsWithKind) {
  Simulator s;
  s.set_budget({.max_events = 10});
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    s.schedule_in(1, tick);
  };
  s.schedule_at(0, tick);
  try {
    s.run();
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.kind(), BudgetExceeded::Kind::kEvents);
  }
  EXPECT_EQ(ticks, 10);
}

TEST(Simulator, SimTimeBudgetThrowsWithKind) {
  Simulator s;
  s.set_budget({.max_sim_time = 100});
  s.schedule_at(50, [] {});   // within budget: runs
  s.schedule_at(200, [] {});  // past budget: throws instead of executing
  try {
    s.run();
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.kind(), BudgetExceeded::Kind::kSimTime);
  }
  EXPECT_EQ(s.now(), 50);
}

TEST(Simulator, PendingBudgetActsAsOomGuard) {
  Simulator s;
  s.set_budget({.max_pending = 100});
  std::function<void()> fanout = [&] {
    for (int i = 0; i < 10; ++i) s.schedule_in(1, fanout);  // grows the heap
  };
  s.schedule_at(0, fanout);
  try {
    s.run();
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.kind(), BudgetExceeded::Kind::kPending);
  }
}

TEST(Simulator, WallClockBudgetTripsOnARunawayRun) {
  Simulator s;
  s.set_budget({.max_wall_ms = 0.01});
  // Time advances every event, so neither the storm watchdog nor any
  // deterministic budget fires -- only the wall-clock watchdog can stop it.
  std::function<void()> forever = [&] { s.schedule_in(1, forever); };
  s.schedule_at(0, forever);
  try {
    s.run();
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.kind(), BudgetExceeded::Kind::kWallClock);
  }
}

TEST(Simulator, ZeroBudgetsAreUnlimited) {
  Simulator s;
  s.set_budget({});
  int ran = 0;
  for (int i = 0; i < 50; ++i) s.schedule_at(i, [&ran] { ++ran; });
  EXPECT_NO_THROW(s.run());
  EXPECT_EQ(ran, 50);
}

TEST(Simulator, EventStormCounterResetsOnTimeAdvance) {
  Simulator s;
  s.set_event_storm_limit(10);
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 100) s.schedule_in(1, tick);  // time advances every event
  };
  s.schedule_at(0, tick);
  EXPECT_NO_THROW(s.run());
  EXPECT_EQ(ticks, 100);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(3);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Ecdf, RejectsBadInput) {
  EXPECT_THROW(Ecdf(std::vector<Ecdf::Point>{}), std::invalid_argument);
  EXPECT_THROW(Ecdf({{1, 0.0}, {2, 0.5}}), std::invalid_argument);  // !=1 end
  EXPECT_THROW(Ecdf({{2, 0.0}, {1, 1.0}}), std::invalid_argument);  // order
  EXPECT_THROW(Ecdf({{1, 0.5}, {2, 0.2}, {3, 1.0}}), std::invalid_argument);
}

TEST(Ecdf, QuantileInterpolates) {
  const Ecdf e({{0, 0.0}, {100, 1.0}});
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 100.0);
}

TEST(Ecdf, CdfAtInverseOfQuantile) {
  const Ecdf e({{10, 0.0}, {20, 0.25}, {40, 0.75}, {100, 1.0}});
  for (const double p : {0.1, 0.25, 0.4, 0.75, 0.9}) {
    EXPECT_NEAR(e.cdf_at(e.quantile(p)), p, 1e-12);
  }
  EXPECT_DOUBLE_EQ(e.cdf_at(5.0), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf_at(1000.0), 1.0);
}

TEST(Ecdf, MeanMatchesSampling) {
  const Ecdf e({{0, 0.0}, {10, 0.5}, {100, 1.0}});
  // Analytic: 0.5*5 + 0.5*55 = 30.
  EXPECT_DOUBLE_EQ(e.mean(), 30.0);
  Rng r(11);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += e.sample(r);
  EXPECT_NEAR(sum / n, 30.0, 0.3);
}

TEST(Ecdf, PointMassAtSingleValue) {
  const Ecdf e({{500, 1.0}});
  Rng r(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(e.sample(r), 500.0);
  EXPECT_DOUBLE_EQ(e.mean(), 500.0);
}

}  // namespace
}  // namespace tcn::sim
