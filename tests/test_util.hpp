// Shared helpers for unit tests: packet factories and a capturing sink node.
#pragma once

#include <vector>

#include "net/node.hpp"
#include "net/packet.hpp"

namespace tcn::test {

/// Node that records every packet it receives.
class CaptureNode final : public net::Node {
 public:
  void receive(net::PacketPtr p, std::size_t ingress) override {
    ingresses.push_back(ingress);
    packets.push_back(std::move(p));
  }
  [[nodiscard]] std::string_view name() const override { return "capture"; }

  std::vector<net::PacketPtr> packets;
  std::vector<std::size_t> ingresses;
};

/// Data packet of `size` wire bytes tagged with `dscp` and flow id.
inline net::PacketPtr make_test_packet(std::uint32_t size,
                                       std::uint8_t dscp = 0,
                                       std::uint64_t flow = 0,
                                       net::Ecn ecn = net::Ecn::kEct0) {
  auto p = net::make_packet();
  p->type = net::PacketType::kData;
  p->size = size;
  p->payload = size > net::kHeaderBytes ? size - net::kHeaderBytes : 0;
  p->dscp = dscp;
  p->flow = flow;
  p->ecn = ecn;
  return p;
}

}  // namespace tcn::test
