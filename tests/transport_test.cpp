// Transport tests: flow completion correctness, slow start, ECN reactions
// (ECN* halving vs DCTCP proportional cut), loss recovery, RTO behaviour,
// PIAS tagging, ping RTT measurement.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "net/fifo_scheduler.hpp"
#include "net/host.hpp"
#include "net/marker.hpp"
#include "net/switch.hpp"
#include "pias/pias.hpp"
#include "sim/simulator.hpp"
#include "transport/flow.hpp"
#include "transport/ping.hpp"
#include "transport/tcp_sender.hpp"
#include "transport/tcp_sink.hpp"

namespace tcn::transport {
namespace {

/// Two hosts wired through a single-queue switch (1Gbps everywhere unless
/// stated). Offers helpers to run flows under a configurable marker.
struct TwoHostRig {
  explicit TwoHostRig(std::unique_ptr<net::Marker> marker = nullptr,
                      std::uint64_t rate = 1'000'000'000,
                      std::uint64_t switch_buffer = UINT64_MAX,
                      sim::Time host_delay = 10 * sim::kMicrosecond)
      : sw(sim, "sw") {
    // Host NICs run 10x the switch rate so congestion (queueing, overflow)
    // happens at the switch port under test, not at the sender.
    net::PortConfig nic;
    nic.rate_bps = rate * 10;
    nic.prop_delay = sim::kMicrosecond;
    a = std::make_unique<net::Host>(sim, "a", 1, nic, host_delay);
    b = std::make_unique<net::Host>(sim, "b", 2, nic, host_delay);

    net::PortConfig sw_port;
    sw_port.rate_bps = rate;
    sw_port.prop_delay = sim::kMicrosecond;
    sw_port.buffer_bytes = switch_buffer;
    for (int i = 0; i < 2; ++i) {
      auto m = marker && i == 1 ? std::move(marker)
                                : std::unique_ptr<net::Marker>(
                                      std::make_unique<net::NullMarker>());
      sw.add_port(sw_port, std::make_unique<net::FifoScheduler>(),
                  std::move(m));
    }
    sw.connect(0, a.get(), 0);
    sw.connect(1, b.get(), 0);  // port 1 (toward b) carries the marker
    a->connect(&sw, 0);
    b->connect(&sw, 1);
    sw.add_route(1, {0});
    sw.add_route(2, {1});
  }

  sim::Simulator sim;
  net::Switch sw;
  std::unique_ptr<net::Host> a, b;
  FlowManager fm;
};

TEST(TcpFlow, CompletesExactByteCount) {
  TwoHostRig rig;
  FlowSpec spec;
  spec.size = 1'000'000;
  std::uint64_t id = rig.fm.start_flow(*rig.a, *rig.b, spec);
  rig.sim.run();
  ASSERT_EQ(rig.fm.flows_completed(), 1u);
  const auto& r = rig.fm.results()[0];
  EXPECT_EQ(r.flow_id, id);
  EXPECT_EQ(r.size, 1'000'000u);
  EXPECT_EQ(r.timeouts, 0u);
}

TEST(TcpFlow, FctLowerBoundedByIdealTransfer) {
  TwoHostRig rig;
  FlowSpec spec;
  spec.size = 10'000'000;
  rig.fm.start_flow(*rig.a, *rig.b, spec);
  rig.sim.run();
  ASSERT_EQ(rig.fm.flows_completed(), 1u);
  const double fct_s = sim::to_seconds(rig.fm.results()[0].fct);
  // Wire bytes = size * 1500/1460; at 1Gbps.
  const double ideal_s = 10e6 * (1500.0 / 1460.0) * 8.0 / 1e9;
  EXPECT_GE(fct_s, ideal_s);
  EXPECT_LE(fct_s, ideal_s * 1.25);  // slow start + RTTs overhead
}

TEST(TcpFlow, TinyFlowFinishesInFewRtts) {
  TwoHostRig rig;
  FlowSpec spec;
  spec.size = 4'000;  // 3 packets
  rig.fm.start_flow(*rig.a, *rig.b, spec);
  rig.sim.run();
  ASSERT_EQ(rig.fm.flows_completed(), 1u);
  // Base RTT here is ~4x10us + small; one window is enough.
  EXPECT_LT(rig.fm.results()[0].fct, 200 * sim::kMicrosecond);
}

TEST(TcpFlow, ManyParallelFlowsAllComplete) {
  TwoHostRig rig;
  for (int i = 0; i < 20; ++i) {
    FlowSpec spec;
    spec.size = 50'000 + 1000 * i;
    rig.fm.start_flow(*rig.a, *rig.b, spec);
  }
  rig.sim.run();
  EXPECT_EQ(rig.fm.flows_completed(), 20u);
  for (const auto& r : rig.fm.results()) EXPECT_GT(r.fct, 0);
}

TEST(TcpFlow, SlowStartDoublesWindow) {
  TwoHostRig rig;
  FlowSpec spec;
  spec.size = 2'000'000;
  spec.tcp.init_cwnd_pkts = 2;
  const auto id = rig.fm.start_flow(*rig.a, *rig.b, spec);
  auto* sender = rig.fm.sender(id);
  // After ~3 RTTs of slow start with no marks, cwnd should have grown
  // several-fold. Probe at 1ms (RTT ~= 46us).
  double cwnd_at_1ms = 0;
  rig.sim.schedule_at(sim::kMillisecond,
                      [&] { cwnd_at_1ms = sender->cwnd_bytes(); });
  rig.sim.run(2 * sim::kMillisecond);
  EXPECT_GT(cwnd_at_1ms, 8.0 * 1460);
}

/// Marker that marks every packet once `begin` is reached.
class MarkAfter final : public net::Marker {
 public:
  explicit MarkAfter(sim::Time begin) : begin_(begin) {}
  bool on_dequeue(const net::MarkContext& ctx, const net::Packet&) override {
    return ctx.now >= begin_;
  }
  [[nodiscard]] std::string_view name() const override { return "mark-after"; }

 private:
  sim::Time begin_;
};

TEST(TcpEcn, EcnStarHalvesOncePerWindow) {
  TwoHostRig rig(std::make_unique<MarkAfter>(sim::kMillisecond));
  FlowSpec spec;
  spec.size = 40'000'000;
  spec.tcp.cc = CongestionControl::kEcnStar;
  const auto id = rig.fm.start_flow(*rig.a, *rig.b, spec);
  auto* sender = rig.fm.sender(id);

  double before = 0;
  rig.sim.schedule_at(sim::kMillisecond - 1,
                      [&] { before = sender->cwnd_bytes(); });
  rig.sim.run(sim::kMillisecond + 300 * sim::kMicrosecond);
  const double after = sender->cwnd_bytes();
  // All packets marked from t=1ms: with once-per-window gating the window
  // halves roughly once per RTT, never collapsing below 1 MSS.
  EXPECT_LT(after, before);
  EXPECT_GE(after, 1460.0);
  // A couple of RTTs => at most a few halvings, not hundreds.
  EXPECT_GT(after, before / 1000.0);
}

TEST(TcpEcn, DctcpCutsProportionallyToAlpha) {
  // With every packet marked, DCTCP's alpha -> 1 and it behaves like a halve;
  // with sparse marks the cut is gentler. Compare window loss under the two
  // congestion controls at identical marking.
  auto run = [](CongestionControl cc) {
    TwoHostRig rig(std::make_unique<MarkAfter>(0));
    FlowSpec spec;
    spec.size = 5'000'000;
    spec.tcp.cc = cc;
    const auto id = rig.fm.start_flow(*rig.a, *rig.b, spec);
    rig.sim.run(5 * sim::kMillisecond);
    return rig.fm.sender(id)->bytes_acked();
  };
  // Under continuous marking both transports survive; DCTCP (alpha starts at
  // 1) reduces like ECN*, so throughputs are comparable -- this is a sanity
  // check that neither collapses to zero nor ignores ECN.
  const auto ecnstar = run(CongestionControl::kEcnStar);
  const auto dctcp = run(CongestionControl::kDctcp);
  EXPECT_GT(ecnstar, 100'000u);
  EXPECT_GT(dctcp, 100'000u);
}

TEST(TcpEcn, DctcpAlphaConvergesToMarkedFraction) {
  // Mark exactly the packets of every other window-sized block is hard to
  // stage; instead mark everything and check alpha -> 1.
  TwoHostRig rig(std::make_unique<MarkAfter>(0));
  FlowSpec spec;
  spec.size = 20'000'000;
  spec.tcp.cc = CongestionControl::kDctcp;
  const auto id = rig.fm.start_flow(*rig.a, *rig.b, spec);
  rig.sim.run(20 * sim::kMillisecond);
  EXPECT_GT(rig.fm.sender(id)->dctcp_alpha(), 0.9);
}

TEST(TcpEcn, AlphaDecaysWithoutMarks) {
  // alpha initializes to 1 (as in Linux) and decays by (1-g) per observation
  // window when no bytes are marked. A 2MB unmarked transfer spans ~10
  // windows: alpha must have decayed well below 1 and no reduction may have
  // happened (cwnd keeps growing).
  TwoHostRig rig;
  FlowSpec spec;
  spec.size = 2'000'000;
  spec.tcp.cc = CongestionControl::kDctcp;
  const auto id = rig.fm.start_flow(*rig.a, *rig.b, spec);
  rig.sim.run();
  ASSERT_EQ(rig.fm.flows_completed(), 1u);
  EXPECT_LT(rig.fm.sender(id)->dctcp_alpha(), 0.7);
  EXPECT_GT(rig.fm.sender(id)->cwnd_bytes(), 10.0 * 1460);
}

TEST(TcpLoss, RecoversFromBufferOverflow) {
  // Tiny switch buffer forces drops during slow start; the flow must still
  // complete, via fast retransmit or RTO.
  TwoHostRig rig(nullptr, 1'000'000'000, /*switch_buffer=*/15'000);
  FlowSpec spec;
  spec.size = 3'000'000;
  spec.tcp.rto_min = 5 * sim::kMillisecond;
  spec.tcp.rto_init = 5 * sim::kMillisecond;
  rig.fm.start_flow(*rig.a, *rig.b, spec);
  rig.sim.run();
  ASSERT_EQ(rig.fm.flows_completed(), 1u);
  EXPECT_GT(rig.sw.port(1).counters().drops, 0u);
}

TEST(TcpLoss, TailDropOfLastSegmentRecoversViaRto) {
  // A flow whose very last packet is dropped cannot fast-retransmit (no
  // dupacks) -- it must take a timeout and still complete.
  TwoHostRig rig;
  FlowSpec spec;
  spec.size = 1460;  // single segment...
  spec.tcp.rto_min = 5 * sim::kMillisecond;
  spec.tcp.rto_init = 5 * sim::kMillisecond;
  // Drop the first transmission by briefly disconnecting the switch port.
  // Simpler: use a one-packet "black hole" marker is not possible (markers
  // don't drop), so shrink the switch buffer to zero for the first 50us.
  // Instead we emulate by sending into an unrouted destination first -- not
  // feasible here; accept loss via buffer: buffer fits 0 packets.
  TwoHostRig tiny(nullptr, 1'000'000'000, /*switch_buffer=*/100);
  tiny.fm.start_flow(*tiny.a, *tiny.b, spec);
  tiny.sim.run(sim::kSecond);
  ASSERT_EQ(tiny.fm.flows_completed(), 0u);  // 100B buffer: nothing passes
  // Now a buffer that fits exactly one packet: everything eventually passes,
  // one packet at a time, with timeouts.
  TwoHostRig narrow(nullptr, 1'000'000'000, /*switch_buffer=*/1'500);
  FlowSpec spec2;
  spec2.size = 14'600;  // 10 segments
  spec2.tcp.rto_min = 5 * sim::kMillisecond;
  spec2.tcp.rto_init = 5 * sim::kMillisecond;
  narrow.fm.start_flow(*narrow.a, *narrow.b, spec2);
  narrow.sim.run(10 * sim::kSecond);
  ASSERT_EQ(narrow.fm.flows_completed(), 1u);
  EXPECT_GE(narrow.fm.results()[0].timeouts, 1u);
}

TEST(TcpLoss, TimeoutCountIsReported) {
  TwoHostRig rig(nullptr, 1'000'000'000, /*switch_buffer=*/4'500);
  FlowSpec spec;
  spec.size = 2'000'000;
  spec.tcp.rto_min = 5 * sim::kMillisecond;
  spec.tcp.rto_init = 5 * sim::kMillisecond;
  spec.tcp.init_cwnd_pkts = 32;  // guarantee an overflow burst
  rig.fm.start_flow(*rig.a, *rig.b, spec);
  rig.sim.run(20 * sim::kSecond);
  ASSERT_EQ(rig.fm.flows_completed(), 1u);
  EXPECT_EQ(rig.fm.results()[0].timeouts, rig.fm.total_timeouts());
}

TEST(TcpConfigTest, StartTwiceThrows) {
  TwoHostRig rig;
  FlowSpec spec;
  spec.size = 1000;
  const auto id = rig.fm.start_flow(*rig.a, *rig.b, spec);
  EXPECT_THROW(rig.fm.sender(id)->start(1), std::logic_error);
}

TEST(Pias, TwoPriorityTagging) {
  const auto fn = pias::two_priority(0, 3, 100'000);
  EXPECT_EQ(fn(0), 0);
  EXPECT_EQ(fn(99'999), 0);
  EXPECT_EQ(fn(100'000), 3);
  EXPECT_EQ(fn(10'000'000), 3);
}

TEST(Pias, MultiLevelLadder) {
  const auto fn = pias::multi_level({1'000, 10'000, 100'000}, {0, 1, 2, 3});
  EXPECT_EQ(fn(0), 0);
  EXPECT_EQ(fn(999), 0);
  EXPECT_EQ(fn(1'000), 1);
  EXPECT_EQ(fn(9'999), 1);
  EXPECT_EQ(fn(10'000), 2);
  EXPECT_EQ(fn(100'000), 3);
}

TEST(Pias, RejectsBadLadder) {
  EXPECT_THROW(pias::multi_level({10, 5}, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(pias::multi_level({10}, {0}), std::invalid_argument);
}

TEST(Pias, DataPacketsCarryPerOffsetDscp) {
  TwoHostRig rig;
  FlowSpec spec;
  spec.size = 300'000;
  spec.data_dscp = pias::two_priority(0, 5, 100'000);
  rig.fm.start_flow(*rig.a, *rig.b, spec);
  // Count DSCPs seen at the receiving sink by snooping at the switch port
  // counters is indirect; instead bind a tap on host b? The sink consumes
  // packets, so check totals via completion and rely on pias unit tests for
  // the mapping. Here we only assert the flow still completes.
  rig.sim.run();
  EXPECT_EQ(rig.fm.flows_completed(), 1u);
}

TEST(Ping, MeasuresBaseRtt) {
  TwoHostRig rig;  // host_delay 10us, prop 1us per link
  PingResponder responder(*rig.b, 99);
  PingApp ping(*rig.a, 2, 99, 0, sim::kMillisecond);
  ping.start();
  rig.sim.run(10 * sim::kMillisecond + 1);
  ping.stop();
  ASSERT_GE(ping.rtts().size(), 9u);
  // 4 stack delays (2 hosts x send+recv per direction... = 40us) + 4 props +
  // serialization; all samples equal on an idle network.
  const auto rtt = ping.rtts()[0];
  EXPECT_GT(rtt, 40 * sim::kMicrosecond);
  EXPECT_LT(rtt, 100 * sim::kMicrosecond);
  for (const auto r : ping.rtts()) EXPECT_EQ(r, rtt);
}

TEST(Ping, SeesQueueingDelayUnderLoad) {
  TwoHostRig rig;
  PingResponder responder(*rig.b, 99);
  PingApp ping(*rig.a, 2, 99, 0, 500 * sim::kMicrosecond);
  FlowSpec spec;
  spec.size = 30'000'000;
  spec.tcp.max_cwnd_bytes = 200'000;  // standing queue ~200KB at the switch
  rig.fm.start_flow(*rig.a, *rig.b, spec);
  ping.start();
  rig.sim.run(20 * sim::kMillisecond);
  ping.stop();
  ASSERT_GE(ping.rtts().size(), 10u);
  // Tail samples should show >1ms of queueing (200KB at 1G = 1.6ms).
  const auto last = ping.rtts().back();
  EXPECT_GT(last, sim::kMillisecond);
}

}  // namespace
}  // namespace tcn::transport
