// Property sweep over every marking scheme, driven through a real egress
// port. Invariants that must hold for any congestion-notification AQM:
//   1. an uncongested queue produces zero marks;
//   2. sustained overload produces marks;
//   3. only ECT packets ever leave with CE;
//   4. marks stop once congestion clears (no sticky state leaks).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "core/schemes.hpp"
#include "net/port.hpp"
#include "sched/dwrr.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace tcn::aqm {
namespace {

using test::CaptureNode;
using test::make_test_packet;

struct MarkerCase {
  const char* name;
  core::Scheme scheme;
};

class MarkerPropertyTest : public ::testing::TestWithParam<MarkerCase> {
 protected:
  // 1G port, 2 DWRR queues, markers configured for base RTT 100us.
  void build() {
    core::SchemeParams params;
    params.rtt_lambda = 100 * sim::kMicrosecond;
    params.red_threshold_bytes = 12'500;  // 1G x 100us
    params.codel_target = 50 * sim::kMicrosecond;
    params.codel_interval = 1'000 * sim::kMicrosecond;
    params.tcn_tmin = 50 * sim::kMicrosecond;
    params.tcn_tmax = 150 * sim::kMicrosecond;
    params.tcn_pmax = 1.0;
    params.oracle_thresholds = {6'250, 6'250};
    params.dq_thresh = 10'000;

    auto sched = std::make_unique<sched::DwrrScheduler>(
        std::vector<std::uint64_t>{1'500, 1'500});
    net::PortConfig cfg;
    cfg.rate_bps = 1'000'000'000;
    cfg.num_queues = 2;
    auto marker = core::make_marker_factory(GetParam().scheme, params)(
        *sched, cfg);
    port = std::make_unique<net::Port>(sim, "p", cfg, std::move(sched),
                                       std::move(marker));
    port->connect(&sink, 0);
  }

  std::size_t marked_delivered() const {
    std::size_t n = 0;
    for (const auto& p : sink.packets) {
      if (p->ce()) ++n;
    }
    return n;
  }

  sim::Simulator sim;
  CaptureNode sink;
  std::unique_ptr<net::Port> port;
};

TEST_P(MarkerPropertyTest, NoMarksWithoutCongestion) {
  build();
  // One packet every 100us on a 1G link (12us serialization): queue is
  // always empty on arrival.
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(i * 100 * sim::kMicrosecond, [this, i] {
      port->enqueue(make_test_packet(1500, 0, 0), i % 2);
    });
  }
  sim.run();
  EXPECT_EQ(port->counters().marks, 0u);
  EXPECT_EQ(marked_delivered(), 0u);
}

TEST_P(MarkerPropertyTest, SustainedOverloadProducesMarks) {
  build();
  // 400 packets dumped at t=0 into both queues: 600KB on a 1G link is 4.8ms
  // of sustained >100us queueing -- every scheme must signal.
  for (int i = 0; i < 400; ++i) {
    port->enqueue(make_test_packet(1500, 0, 0), i % 2);
  }
  sim.run();
  EXPECT_GT(port->counters().marks, 0u) << GetParam().name;
}

TEST_P(MarkerPropertyTest, OnlyEctPacketsGetCe) {
  build();
  for (int i = 0; i < 400; ++i) {
    const auto ecn = (i % 2 == 0) ? net::Ecn::kEct0 : net::Ecn::kNotEct;
    port->enqueue(make_test_packet(1500, 0, i % 2, ecn), i % 2);
  }
  sim.run();
  for (const auto& p : sink.packets) {
    if (p->flow % 2 == 1) {  // the NotEct half
      EXPECT_FALSE(p->ce());
    }
  }
}

TEST_P(MarkerPropertyTest, MarksStopWhenCongestionClears) {
  build();
  // Phase 1: overload.
  for (int i = 0; i < 400; ++i) {
    port->enqueue(make_test_packet(1500, 0, 0), i % 2);
  }
  sim.run();
  // Phase 2: long quiet gap, then gentle traffic -- no marks allowed.
  const auto phase2 = sim.now() + 100 * sim::kMillisecond;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(phase2 + i * 200 * sim::kMicrosecond, [this, i] {
      port->enqueue(make_test_packet(1500, 0, 1, net::Ecn::kEct0), i % 2);
    });
  }
  sink.packets.clear();
  sim.run();
  EXPECT_EQ(marked_delivered(), 0u) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, MarkerPropertyTest,
    ::testing::Values(MarkerCase{"tcn", core::Scheme::kTcn},
                      MarkerCase{"tcn_prob", core::Scheme::kTcnProb},
                      MarkerCase{"codel", core::Scheme::kCodel},
                      MarkerCase{"mq_ecn", core::Scheme::kMqEcn},
                      MarkerCase{"red_queue", core::Scheme::kRedPerQueue},
                      MarkerCase{"red_port", core::Scheme::kRedPerPort},
                      MarkerCase{"red_dequeue", core::Scheme::kRedDequeue},
                      MarkerCase{"pie", core::Scheme::kPie},
                      MarkerCase{"ideal_rate", core::Scheme::kIdealRate},
                      MarkerCase{"ideal_oracle", core::Scheme::kIdealOracle}),
    [](const ::testing::TestParamInfo<MarkerCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace tcn::aqm
