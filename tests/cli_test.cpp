// Tests for the tcnsim command-line parser: defaults per topology, flag
// handling, derived parameters, and error messages.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/cli.hpp"

namespace tcn::core {
namespace {

FctExperiment parse(std::initializer_list<const char*> args) {
  return parse_cli(std::vector<std::string>(args.begin(), args.end()));
}

TEST(Cli, StarDefaultsMatchTestbed) {
  const auto cfg = parse({});
  EXPECT_EQ(cfg.topology, FctExperiment::Topology::kStarConverge);
  EXPECT_EQ(cfg.scheme, Scheme::kTcn);
  EXPECT_EQ(cfg.sched.kind, SchedKind::kDwrr);
  EXPECT_EQ(cfg.params.rtt_lambda, 256 * sim::kMicrosecond);
  EXPECT_EQ(cfg.params.red_threshold_bytes, 32'000u);
  EXPECT_EQ(cfg.tcp.rto_min, 10 * sim::kMillisecond);
  EXPECT_EQ(cfg.num_services, 4u);
  EXPECT_TRUE(cfg.persistent_connections);
  EXPECT_EQ(cfg.star.num_hosts, 9u);
}

TEST(Cli, LeafSpineDefaultsMatchSimulation) {
  const auto cfg = parse({"--topology", "leafspine"});
  EXPECT_EQ(cfg.topology, FctExperiment::Topology::kLeafSpine);
  EXPECT_EQ(cfg.params.rtt_lambda, 78 * sim::kMicrosecond);
  EXPECT_EQ(cfg.params.red_threshold_bytes, 65u * 1'500u);
  EXPECT_EQ(cfg.tcp.rto_min, 5 * sim::kMillisecond);
  EXPECT_EQ(cfg.tcp.init_cwnd_pkts, 16u);
  EXPECT_EQ(cfg.num_services, 7u);
  EXPECT_EQ(cfg.service_workloads.size(), 4u);
  EXPECT_FALSE(cfg.persistent_connections);
}

TEST(Cli, SchemeAndSchedulerNames) {
  EXPECT_EQ(parse_scheme("tcn"), Scheme::kTcn);
  EXPECT_EQ(parse_scheme("mq-ecn"), Scheme::kMqEcn);
  EXPECT_EQ(parse_scheme("red-dequeue"), Scheme::kRedDequeue);
  EXPECT_THROW(parse_scheme("wat"), std::invalid_argument);
  EXPECT_EQ(parse_sched("sp-wfq"), SchedKind::kSpWfq);
  EXPECT_EQ(parse_sched("pifo"), SchedKind::kPifoStfq);
  EXPECT_EQ(parse_sched("sp-pifo"), SchedKind::kSpPifo);
  EXPECT_EQ(parse_sched("aifo"), SchedKind::kAifo);
  EXPECT_THROW(parse_sched("wat"), std::invalid_argument);
  EXPECT_EQ(parse_workload("hadoop"), workload::Kind::kHadoop);
  EXPECT_THROW(parse_workload("wat"), std::invalid_argument);
}

TEST(Cli, SchedSpecParsesApproximateRankSchedulers) {
  const auto sp_default = parse({"--sched", "sp-pifo"});
  EXPECT_EQ(sp_default.sched.kind, SchedKind::kSpPifo);
  EXPECT_EQ(sp_default.sched.sp_pifo_levels, 8u);
  EXPECT_EQ(sp_default.sched.rank, RankProgram::kStfq);

  const auto sp4 = parse({"--sched", "sp-pifo:4"});
  EXPECT_EQ(sp4.sched.kind, SchedKind::kSpPifo);
  EXPECT_EQ(sp4.sched.sp_pifo_levels, 4u);

  const auto aifo_default = parse({"--sched", "aifo"});
  EXPECT_EQ(aifo_default.sched.kind, SchedKind::kAifo);
  EXPECT_EQ(aifo_default.sched.aifo_window, 128u);
  EXPECT_DOUBLE_EQ(aifo_default.sched.aifo_k, 0.1);

  const auto aifo = parse({"--sched", "aifo:64,0.2"});
  EXPECT_EQ(aifo.sched.kind, SchedKind::kAifo);
  EXPECT_EQ(aifo.sched.aifo_window, 64u);
  EXPECT_DOUBLE_EQ(aifo.sched.aifo_k, 0.2);
}

TEST(Cli, SchedSpecRejectsMalformedParameters) {
  // SP-PIFO: levels must parse and be >= 2.
  EXPECT_THROW(parse({"--sched", "sp-pifo:1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--sched", "sp-pifo:0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--sched", "sp-pifo:x"}), std::invalid_argument);
  // AIFO: needs both window and k, window >= 1, k in [0, 1).
  EXPECT_THROW(parse({"--sched", "aifo:64"}), std::invalid_argument);
  EXPECT_THROW(parse({"--sched", "aifo:0,0.1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--sched", "aifo:64,1.5"}), std::invalid_argument);
  EXPECT_THROW(parse({"--sched", "aifo:64,-0.1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--sched", "aifo:64,abc"}), std::invalid_argument);
  // Non-parameterized schedulers take no parameters at all.
  EXPECT_THROW(parse({"--sched", "dwrr:3"}), std::invalid_argument);
  EXPECT_THROW(parse({"--sched", "pifo:2"}), std::invalid_argument);
}

TEST(Cli, PiasSwitchesRankSchedulersToPriorityProgram) {
  // PIAS + rank scheduler: the rank program becomes the PIAS priority
  // (rank = queue index) instead of upgrading to a hybrid SP front-end.
  const auto sp = parse({"--sched", "sp-pifo", "--pias"});
  EXPECT_EQ(sp.sched.kind, SchedKind::kSpPifo);
  EXPECT_EQ(sp.sched.rank, RankProgram::kPriority);
  EXPECT_EQ(sp.sched.num_sp, 1u);
  const auto aifo = parse({"--sched", "aifo:32,0.05", "--pias"});
  EXPECT_EQ(aifo.sched.kind, SchedKind::kAifo);
  EXPECT_EQ(aifo.sched.rank, RankProgram::kPriority);
  EXPECT_EQ(aifo.sched.aifo_window, 32u);
}

TEST(Cli, NumericFlags) {
  const auto cfg = parse({"--load", "0.85", "--flows", "1234", "--seed", "42",
                          "--rtt-lambda-us", "100", "--red-k-bytes", "12500"});
  EXPECT_DOUBLE_EQ(cfg.load, 0.85);
  EXPECT_EQ(cfg.num_flows, 1234u);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_EQ(cfg.params.rtt_lambda, 100 * sim::kMicrosecond);
  EXPECT_EQ(cfg.params.red_threshold_bytes, 12'500u);
}

TEST(Cli, WorkloadList) {
  const auto cfg = parse({"--workload", "cache,hadoop"});
  ASSERT_EQ(cfg.service_workloads.size(), 2u);
  EXPECT_EQ(cfg.service_workloads[0], workload::Kind::kCache);
  EXPECT_EQ(cfg.service_workloads[1], workload::Kind::kHadoop);
}

TEST(Cli, PiasUpgradesToHybridScheduler) {
  const auto dwrr = parse({"--sched", "dwrr", "--pias"});
  EXPECT_EQ(dwrr.sched.kind, SchedKind::kSpDwrr);
  EXPECT_TRUE(dwrr.pias);
  const auto wfq = parse({"--sched", "wfq", "--pias"});
  EXPECT_EQ(wfq.sched.kind, SchedKind::kSpWfq);
  const auto already = parse({"--sched", "sp-dwrr", "--pias"});
  EXPECT_EQ(already.sched.kind, SchedKind::kSpDwrr);
}

TEST(Cli, TransportAndTcpOptions) {
  const auto cfg = parse({"--transport", "ecnstar", "--sack", "--delayed-ack",
                          "--rto-min-us", "5000"});
  EXPECT_EQ(cfg.tcp.cc, transport::CongestionControl::kEcnStar);
  EXPECT_TRUE(cfg.tcp.sack);
  EXPECT_TRUE(cfg.tcp.delayed_ack);
  EXPECT_EQ(cfg.tcp.rto_min, 5 * sim::kMillisecond);
}

TEST(Cli, DerivedCodelAndProbParameters) {
  const auto cfg = parse({"--rtt-lambda-us", "250"});
  EXPECT_EQ(cfg.params.codel_target, 50 * sim::kMicrosecond);
  EXPECT_EQ(cfg.params.codel_interval, 1000 * sim::kMicrosecond);
  EXPECT_EQ(cfg.params.tcn_tmin, 125 * sim::kMicrosecond);
  EXPECT_EQ(cfg.params.tcn_tmax, 375 * sim::kMicrosecond);
}

TEST(Cli, Errors) {
  EXPECT_THROW(parse({"--load"}), std::invalid_argument);
  EXPECT_THROW(parse({"--load", "abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"--flows", "12x"}), std::invalid_argument);
  EXPECT_THROW(parse({"--wat"}), std::invalid_argument);
  EXPECT_THROW(parse({"--topology", "ring"}), std::invalid_argument);
  EXPECT_THROW(parse({"--workload", ""}), std::invalid_argument);
}

TEST(Cli, UsageMentionsEveryFlag) {
  const auto usage = cli_usage();
  for (const char* flag :
       {"--topology", "--scheme", "--sched", "--load", "--flows",
        "--workload", "--pias", "--transport", "--sack", "--delayed-ack",
        "--seed", "--rtt-lambda-us", "--red-k-bytes", "--metrics-out",
        "--trace-out", "--check-invariants", "--faults", "--fault-grid",
        "--fail-on-invariant", "--wall-budget-ms", "--event-budget",
        "--sim-time-budget-s", "--pending-budget", "--on-failure",
        "--retries", "--journal", "--resume", "--traffic",
        "--traffic-grid", "--time-limit-s"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
  // The --sched grammar advertises the parameterized rank schedulers.
  EXPECT_NE(usage.find("sp-pifo[:levels]"), std::string::npos);
  EXPECT_NE(usage.find("aifo[:window,k]"), std::string::npos);
}

TEST(Cli, BudgetFlags) {
  const auto cfg = parse({"--wall-budget-ms", "1500", "--event-budget",
                          "1000000", "--sim-time-budget-s", "2.5",
                          "--pending-budget", "50000"});
  EXPECT_EQ(cfg.wall_budget_ms, 1500.0);
  EXPECT_EQ(cfg.event_budget, 1'000'000u);
  EXPECT_EQ(cfg.sim_time_budget, sim::Time{2'500'000'000});
  EXPECT_EQ(cfg.pending_event_budget, 50'000u);
  const auto off = parse({});
  EXPECT_EQ(off.wall_budget_ms, 0.0);
  EXPECT_EQ(off.event_budget, 0u);
  EXPECT_EQ(off.sim_time_budget, sim::Time{0});
  EXPECT_EQ(off.pending_event_budget, 0u);
  EXPECT_EQ(off.time_limit, 600 * sim::kSecond);
  // The horizon (a normal stop) is adjustable for long open-loop runs.
  EXPECT_EQ(parse({"--time-limit-s", "30000"}).time_limit,
            30'000 * sim::kSecond);
  EXPECT_THROW(parse({"--time-limit-s", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--wall-budget-ms", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--wall-budget-ms", "-1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--sim-time-budget-s", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--event-budget", "abc"}), std::invalid_argument);
}

TEST(Cli, FailOnInvariantImpliesChecking) {
  const auto cfg = parse({"--fail-on-invariant"});
  EXPECT_TRUE(cfg.check_invariants);
  EXPECT_TRUE(cfg.fail_on_invariant);
  const auto off = parse({"--check-invariants"});
  EXPECT_TRUE(off.check_invariants);
  EXPECT_FALSE(off.fail_on_invariant);
}

TEST(Cli, ObservabilityFlags) {
  const auto cfg =
      parse({"--metrics-out", "m.json", "--trace-out", "t.jsonl"});
  EXPECT_EQ(cfg.metrics_out, "m.json");
  EXPECT_EQ(cfg.trace_out, "t.jsonl");
  EXPECT_FALSE(cfg.collect_metrics);  // implied by metrics_out at run time
  const auto off = parse({});
  EXPECT_TRUE(off.metrics_out.empty());
  EXPECT_TRUE(off.trace_out.empty());
  EXPECT_THROW(parse({"--metrics-out"}), std::invalid_argument);
  EXPECT_THROW(parse({"--metrics-out", ""}), std::invalid_argument);
  EXPECT_THROW(parse({"--trace-out", ""}), std::invalid_argument);
}

TEST(Cli, UnwritableMetricsPathThrowsWithPath) {
  auto cfg = parse({"--flows", "5", "--load", "0.3"});
  cfg.metrics_out = "/nonexistent-dir-tcn/metrics.json";
  try {
    run_fct_experiment(cfg);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent-dir-tcn/metrics.json"),
              std::string::npos);
  }
}

TEST(Cli, UnwritableTracePathFailsBeforeRunning) {
  auto cfg = parse({"--flows", "5", "--load", "0.3"});
  cfg.trace_out = "/nonexistent-dir-tcn/trace.jsonl";
  try {
    run_fct_experiment(cfg);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent-dir-tcn/trace.jsonl"),
              std::string::npos);
  }
}

TEST(Cli, TrafficFlagPopulatesOpenLoopSpec) {
  const auto cfg = parse(
      {"--traffic",
       "poisson:web:websearch:0.7:3;mmpp:batch:cache:0.3;diurnal:60:0.5:1.5"});
  ASSERT_TRUE(cfg.traffic.enabled());
  ASSERT_EQ(cfg.traffic.tenants.size(), 2u);
  EXPECT_EQ(cfg.traffic.tenants[0].name, "web");
  EXPECT_EQ(cfg.traffic.tenants[0].dscp, 3);
  EXPECT_EQ(cfg.traffic.tenants[1].arrival,
            traffic::TenantSpec::Arrival::kMmpp);
  EXPECT_TRUE(cfg.traffic.diurnal.enabled());
  // Default is closed loop.
  EXPECT_FALSE(parse({}).traffic.enabled());
  EXPECT_THROW(parse({"--traffic", ""}), std::invalid_argument);
  EXPECT_THROW(parse({"--traffic", "bogus:x"}), std::invalid_argument);
  EXPECT_THROW(parse({"--traffic"}), std::invalid_argument);
}

TEST(Cli, OpenLoopConfigActuallyRuns) {
  auto cfg = parse({"--flows", "100", "--load", "0.4", "--traffic",
                    "poisson:web:cache:1"});
  const auto report = run_fct_experiment(cfg);
  EXPECT_TRUE(report.traffic_open_loop);
  EXPECT_EQ(report.flows_completed, 100u);
  const auto text = format_report(cfg, report);
  EXPECT_NE(text.find("open loop"), std::string::npos);
  EXPECT_NE(text.find("flow slab"), std::string::npos);
}

TEST(Cli, ParsedConfigActuallyRuns) {
  auto cfg = parse({"--flows", "30", "--load", "0.4", "--workload", "cache"});
  const auto report = run_fct_experiment(cfg);
  EXPECT_EQ(report.flows_completed, 30u);
  const auto text = format_report(cfg, report);
  EXPECT_NE(text.find("avg FCT"), std::string::npos);
  EXPECT_NE(text.find("TCN"), std::string::npos);
}

}  // namespace
}  // namespace tcn::core
