// PIE controller tests: PI control-law behaviour (probability rises under
// sustained delay, falls when delay subsides), delay estimation via the
// Algorithm-1 rate estimator, and end-to-end behaviour through a port.
#include <gtest/gtest.h>

#include <memory>

#include "aqm/pie.hpp"
#include "net/fifo_scheduler.hpp"
#include "net/marker.hpp"
#include "net/port.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace tcn::aqm {
namespace {

using test::CaptureNode;
using test::make_test_packet;

PieConfig dc_config() {
  PieConfig cfg;
  cfg.target = 20 * sim::kMicrosecond;
  cfg.t_update = 30 * sim::kMicrosecond;
  return cfg;
}

TEST(Pie, RejectsBadConfig) {
  EXPECT_THROW(PieMarker(0, dc_config()), std::invalid_argument);
  PieConfig bad = dc_config();
  bad.target = 0;
  EXPECT_THROW(PieMarker(1, bad), std::invalid_argument);
}

TEST(Pie, ProbabilityRisesUnderSustainedDelay) {
  PieMarker pie(1, dc_config());
  auto p = make_test_packet(1500);
  // Drive departures at 1Gbps with a deep standing queue (125KB = 1ms of
  // delay >> 20us target).
  sim::Time now = 0;
  for (int i = 0; i < 300; ++i) {
    now += 12 * sim::kMicrosecond;
    net::MarkContext ctx{now, 0, 125'000, 125'000, 1'000'000'000};
    pie.on_dequeue(ctx, *p);
  }
  EXPECT_GT(pie.probability(0), 0.5);
  EXPECT_GT(pie.qdelay(0), 500 * sim::kMicrosecond);
}

TEST(Pie, ProbabilityFallsWhenDelaySubsides) {
  PieMarker pie(1, dc_config());
  auto p = make_test_packet(1500);
  sim::Time now = 0;
  for (int i = 0; i < 300; ++i) {
    now += 12 * sim::kMicrosecond;
    pie.on_dequeue({now, 0, 125'000, 125'000, 1'000'000'000}, *p);
  }
  const double high = pie.probability(0);
  // Queue drains to nothing: p must decay well below its peak.
  for (int i = 0; i < 600; ++i) {
    now += 12 * sim::kMicrosecond;
    pie.on_dequeue({now, 0, 0, 0, 1'000'000'000}, *p);
  }
  EXPECT_LT(pie.probability(0), high / 4);
}

TEST(Pie, NoMarkingAtOrBelowTarget) {
  PieMarker pie(1, dc_config());
  auto p = make_test_packet(1500);
  sim::Time now = 0;
  int marks = 0;
  // Steady 1Gbps with ~2.4KB backlog = ~19us delay, just under target.
  for (int i = 0; i < 500; ++i) {
    now += 12 * sim::kMicrosecond;
    pie.on_dequeue({now, 0, 2'400, 2'400, 1'000'000'000}, *p);
    if (pie.on_enqueue({now, 0, 2'400, 2'400, 1'000'000'000}, *p)) ++marks;
  }
  EXPECT_EQ(marks, 0);
  // The first-sample derivative bump decays back toward zero once the delay
  // sits below target.
  EXPECT_LT(pie.probability(0), 0.3);
}

TEST(Pie, TracksQueuesIndependently) {
  PieMarker pie(2, dc_config());
  auto p = make_test_packet(1500);
  sim::Time now = 0;
  for (int i = 0; i < 300; ++i) {
    now += 12 * sim::kMicrosecond;
    pie.on_dequeue({now, 0, 125'000, 125'000, 1'000'000'000}, *p);  // deep
    pie.on_dequeue({now, 1, 0, 125'000, 1'000'000'000}, *p);        // empty
  }
  EXPECT_GT(pie.probability(0), 0.3);
  EXPECT_LT(pie.probability(1), 0.05);
}

TEST(Pie, EndToEndThroughPortControlsBacklog) {
  // Saturating arrivals at 2x the drain rate: PIE must mark a large share
  // of delivered ECT packets once the delay stays above target.
  sim::Simulator sim;
  CaptureNode sink;
  net::PortConfig cfg;
  cfg.rate_bps = 1'000'000'000;
  cfg.num_queues = 1;
  auto port = std::make_unique<net::Port>(
      sim, "p", cfg, std::make_unique<net::FifoScheduler>(),
      std::make_unique<PieMarker>(1, dc_config()));
  port->connect(&sink, 0);
  for (int i = 0; i < 500; ++i) {
    sim.schedule_at(i * 6 * sim::kMicrosecond, [&port] {
      port->enqueue(make_test_packet(1500, 0, 0), 0);
    });
  }
  sim.run();
  EXPECT_GT(port->counters().marks, 50u);
}

}  // namespace
}  // namespace tcn::aqm
