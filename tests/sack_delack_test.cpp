// SACK and delayed-ACK tests.
//
// SACK: a window with several losses must recover via hole retransmissions
// without resorting to an RTO, and must beat NewReno on recovery time.
// Delayed ACK: roughly halves the ACK count while flushing immediately on
// CE-state changes (DCTCP echo) and out-of-order arrivals (dupacks).
#include <gtest/gtest.h>

#include <memory>

#include "net/fifo_scheduler.hpp"
#include "net/host.hpp"
#include "net/marker.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"
#include "transport/flow.hpp"
#include "transport/tcp_sink.hpp"

namespace tcn::transport {
namespace {

/// Marker hook that can drop... markers cannot drop, so losses are created
/// with a tiny switch buffer, as in transport_test.
struct Rig {
  explicit Rig(std::uint64_t switch_buffer = UINT64_MAX,
               std::uint64_t rate = 1'000'000'000)
      : sw(sim, "sw") {
    net::PortConfig nic;
    nic.rate_bps = rate * 10;  // congestion lives at the switch
    nic.prop_delay = sim::kMicrosecond;
    a = std::make_unique<net::Host>(sim, "a", 1, nic, 10 * sim::kMicrosecond);
    b = std::make_unique<net::Host>(sim, "b", 2, nic, 10 * sim::kMicrosecond);
    net::PortConfig port;
    port.rate_bps = rate;
    port.prop_delay = sim::kMicrosecond;
    port.buffer_bytes = switch_buffer;
    sw.add_port(port, std::make_unique<net::FifoScheduler>(),
                std::make_unique<net::NullMarker>());
    sw.add_port(port, std::make_unique<net::FifoScheduler>(),
                std::make_unique<net::NullMarker>());
    sw.connect(0, a.get(), 0);
    sw.connect(1, b.get(), 0);
    a->connect(&sw, 0);
    b->connect(&sw, 1);
    sw.add_route(1, {0});
    sw.add_route(2, {1});
  }

  sim::Simulator sim;
  net::Switch sw;
  std::unique_ptr<net::Host> a, b;
  FlowManager fm;
};

TcpConfig lossy_cfg(bool sack) {
  TcpConfig cfg;
  cfg.sack = sack;
  cfg.rto_min = 10 * sim::kMillisecond;
  cfg.rto_init = 10 * sim::kMillisecond;
  cfg.init_cwnd_pkts = 64;  // guarantees a multi-loss burst
  return cfg;
}

TEST(Sack, RecoversMultiLossWindowFasterThanNewReno) {
  auto run = [](bool sack) {
    Rig rig(/*switch_buffer=*/30'000);  // burst of 64 pkts, ~20 survive
    FlowSpec spec;
    spec.size = 400'000;
    spec.tcp = lossy_cfg(sack);
    rig.fm.start_flow(*rig.a, *rig.b, spec);
    rig.sim.run(5 * sim::kSecond);
    EXPECT_EQ(rig.fm.flows_completed(), 1u) << "sack=" << sack;
    return rig.fm.results().empty() ? sim::Time{0}
                                    : rig.fm.results()[0].fct;
  };
  const auto newreno = run(false);
  const auto sack = run(true);
  ASSERT_GT(newreno, 0);
  ASSERT_GT(sack, 0);
  // NewReno fills one hole per RTT (or RTOs); SACK fills one per dupack.
  EXPECT_LT(sack, newreno);
}

TEST(Sack, NoRtoOnMultiLossWindow) {
  Rig rig(/*switch_buffer=*/30'000);
  FlowSpec spec;
  spec.size = 400'000;
  spec.tcp = lossy_cfg(true);
  rig.fm.start_flow(*rig.a, *rig.b, spec);
  rig.sim.run(5 * sim::kSecond);
  ASSERT_EQ(rig.fm.flows_completed(), 1u);
  EXPECT_EQ(rig.fm.results()[0].timeouts, 0u);
}

TEST(Sack, CleanPathBehavesIdentically) {
  auto run = [](bool sack) {
    Rig rig;
    FlowSpec spec;
    spec.size = 1'000'000;
    spec.tcp.sack = sack;
    rig.fm.start_flow(*rig.a, *rig.b, spec);
    rig.sim.run();
    return rig.fm.results()[0].fct;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(DelayedAck, HalvesAckCountOnCleanStream) {
  auto count_acks = [](bool delayed) {
    sim::Simulator sim;
    net::PortConfig nic;
    nic.rate_bps = 1'000'000'000;
    net::Host h(sim, "h", 2, nic);
    TcpSink::Options opt;
    opt.delayed_ack = delayed;
    TcpSink sink(h, 10, 0, nullptr, opt);
    // Feed 100 in-order segments, paced (no CE).
    for (int i = 0; i < 100; ++i) {
      sim.schedule_at(i * 100 * sim::kMicrosecond, [&h, i] {
        auto p = net::make_packet();
        p->type = net::PacketType::kData;
        p->dport = 10;
        p->seq = static_cast<std::uint64_t>(i) * 1460;
        p->payload = 1460;
        p->size = 1500;
        p->ecn = net::Ecn::kEct0;
        h.receive(std::move(p), 0);
      });
    }
    sim.run();
    return sink.acks_sent();
  };
  EXPECT_EQ(count_acks(false), 100u);
  const auto delayed = count_acks(true);
  // Paced at 100us with a 1ms timeout: mostly coalesced in pairs.
  EXPECT_LE(delayed, 60u);
  EXPECT_GE(delayed, 50u);
}

TEST(DelayedAck, FlushesOnCeTransition) {
  sim::Simulator sim;
  net::PortConfig nic;
  nic.rate_bps = 1'000'000'000;
  net::Host h(sim, "h", 2, nic);
  TcpSink::Options opt;
  opt.delayed_ack = true;
  TcpSink sink(h, 10, 0, nullptr, opt);
  auto feed = [&](int i, net::Ecn ecn) {
    auto p = net::make_packet();
    p->type = net::PacketType::kData;
    p->dport = 10;
    p->seq = static_cast<std::uint64_t>(i) * 1460;
    p->payload = 1460;
    p->size = 1500;
    p->ecn = ecn;
    h.receive(std::move(p), 0);
  };
  // Segment 0 unmarked (held), segment 1 CE-marked: the CE transition must
  // flush both immediately -- two ACKs, no waiting for the timer.
  feed(0, net::Ecn::kEct0);
  sim.run(10 * sim::kMicrosecond);
  EXPECT_EQ(sink.acks_sent(), 0u);  // held
  feed(1, net::Ecn::kCe);
  sim.run(20 * sim::kMicrosecond);
  EXPECT_EQ(sink.acks_sent(), 2u);
}

TEST(DelayedAck, FlushesOnOutOfOrder) {
  sim::Simulator sim;
  net::PortConfig nic;
  nic.rate_bps = 1'000'000'000;
  net::Host h(sim, "h", 2, nic);
  TcpSink::Options opt;
  opt.delayed_ack = true;
  TcpSink sink(h, 10, 0, nullptr, opt);
  // A hole (segment 1 missing): segment 2 must be acked immediately so the
  // sender sees dupacks.
  auto feed = [&](int i) {
    auto p = net::make_packet();
    p->type = net::PacketType::kData;
    p->dport = 10;
    p->seq = static_cast<std::uint64_t>(i) * 1460;
    p->payload = 1460;
    p->size = 1500;
    p->ecn = net::Ecn::kEct0;
    h.receive(std::move(p), 0);
  };
  feed(0);
  feed(2);  // out of order: must flush pending + ack the dup
  sim.run(10 * sim::kMicrosecond);
  EXPECT_EQ(sink.acks_sent(), 2u);
}

TEST(DelayedAck, TimerFlushesLoneSegment) {
  sim::Simulator sim;
  net::PortConfig nic;
  nic.rate_bps = 1'000'000'000;
  net::Host h(sim, "h", 2, nic);
  TcpSink::Options opt;
  opt.delayed_ack = true;
  opt.delayed_ack_timeout = 500 * sim::kMicrosecond;
  TcpSink sink(h, 10, 0, nullptr, opt);
  auto p = net::make_packet();
  p->type = net::PacketType::kData;
  p->dport = 10;
  p->seq = 0;
  p->payload = 1460;
  p->size = 1500;
  p->ecn = net::Ecn::kEct0;
  h.receive(std::move(p), 0);
  sim.run(400 * sim::kMicrosecond);
  EXPECT_EQ(sink.acks_sent(), 0u);
  sim.run(600 * sim::kMicrosecond);
  EXPECT_EQ(sink.acks_sent(), 1u);
}

TEST(DelayedAck, DctcpFlowStillCompletes) {
  Rig rig;
  FlowSpec spec;
  spec.size = 2'000'000;
  spec.tcp.delayed_ack = true;
  spec.tcp.cc = CongestionControl::kDctcp;
  rig.fm.start_flow(*rig.a, *rig.b, spec);
  rig.sim.run();
  EXPECT_EQ(rig.fm.flows_completed(), 1u);
}

TEST(SackPlusDelayedAck, LossyPathCompletes) {
  Rig rig(/*switch_buffer=*/30'000);
  FlowSpec spec;
  spec.size = 500'000;
  spec.tcp = lossy_cfg(true);
  spec.tcp.delayed_ack = true;
  rig.fm.start_flow(*rig.a, *rig.b, spec);
  rig.sim.run(10 * sim::kSecond);
  EXPECT_EQ(rig.fm.flows_completed(), 1u);
}

}  // namespace
}  // namespace tcn::transport
