// Tests for journaled resume (src/runner/journal): the obs::JsonValue
// parser underneath it, jobs_digest stability, journal write -> load round
// trips, torn-tail tolerance, corruption rejection, and the headline
// crash-resilience guarantee -- a sweep killed mid-run and resumed from its
// journal produces a tcn-bench-1 document byte-identical to an
// uninterrupted run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/json_value.hpp"
#include "runner/journal.hpp"
#include "runner/results.hpp"
#include "runner/sweep.hpp"
#include "sim/time.hpp"
#include "topo/network.hpp"

namespace tcn {
namespace {

using obs::JsonValue;

// ----------------------------------------------------------- JSON parser ----

TEST(JsonValue, ParsesScalarsExactly) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  // Integers never round-trip through a double.
  EXPECT_EQ(JsonValue::parse("18446744073709551615").as_u64(),
            18446744073709551615ULL);
  EXPECT_EQ(JsonValue::parse("-9223372036854775808").as_i64(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(JsonValue::parse("0.5").as_double(), 0.5);
  EXPECT_EQ(JsonValue::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(JsonValue::parse("\"a\\\"b\\nc\"").as_string(), "a\"b\nc");
}

TEST(JsonValue, PreservesObjectKeyOrder) {
  const auto doc = JsonValue::parse(R"({"z":1,"a":[2,3],"m":{"k":null}})");
  const auto& obj = doc.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
  EXPECT_EQ(doc.at("a").as_array()[1].as_u64(), 3u);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), obs::JsonParseError);
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), obs::JsonParseError);
  EXPECT_THROW(JsonValue::parse("{"), obs::JsonParseError);
  EXPECT_THROW(JsonValue::parse("{\"a\":1,}"), obs::JsonParseError);
  EXPECT_THROW(JsonValue::parse("[1 2]"), obs::JsonParseError);
  EXPECT_THROW(JsonValue::parse("{} trailing"), obs::JsonParseError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), obs::JsonParseError);
  EXPECT_THROW((void)JsonValue::parse("1").as_string(), obs::JsonParseError);
  EXPECT_THROW((void)JsonValue::parse("-1").as_u64(), obs::JsonParseError);
}

// ------------------------------------------------------------- fixtures ----

core::FctExperiment small_cfg() {
  core::FctExperiment cfg;
  cfg.scheme = core::Scheme::kTcn;
  cfg.params.rtt_lambda = 250 * sim::kMicrosecond;
  cfg.params.red_threshold_bytes = 32'000;
  cfg.sched.kind = core::SchedKind::kDwrr;
  cfg.load = 0.4;
  cfg.num_flows = 40;
  cfg.num_services = 2;
  cfg.service_workloads = {workload::Kind::kCache};
  cfg.star.num_hosts = 5;
  cfg.star.host_delay = topo::star_host_delay_for_rtt(
      250 * sim::kMicrosecond, cfg.star.link_prop);
  cfg.seed = 7;
  return cfg;
}

runner::SweepSpec small_spec() {
  runner::SweepSpec spec;
  spec.name = "unit";
  spec.base = small_cfg();
  spec.schemes = {{"TCN", core::Scheme::kTcn},
                  {"RED-queue", core::Scheme::kRedPerQueue}};
  spec.loads = {0.4, 0.6};
  return spec;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// Keep the header plus the first `keep` record lines (simulated crash).
void truncate_to_records(const std::string& path, std::size_t keep) {
  const std::string text = slurp(path);
  std::size_t pos = 0;
  for (std::size_t line = 0; line <= keep; ++line) {
    pos = text.find('\n', pos);
    ASSERT_NE(pos, std::string::npos);
    ++pos;
  }
  spit(path, text.substr(0, pos));
}

// ----------------------------------------------------------- jobs digest ----

TEST(Journal, JobsDigestIsStableAndSensitive) {
  const auto jobs = small_spec().expand();
  EXPECT_EQ(runner::jobs_digest(jobs), runner::jobs_digest(jobs));

  auto reordered = small_spec();
  reordered.loads = {0.6, 0.4};  // same cells, different order
  EXPECT_NE(runner::jobs_digest(reordered.expand()),
            runner::jobs_digest(jobs));

  auto changed = small_spec();
  changed.base.seed = 8;
  EXPECT_NE(runner::jobs_digest(changed.expand()), runner::jobs_digest(jobs));

  auto faulted = small_spec();
  faulted.faults = {{"none", {}}};
  EXPECT_NE(runner::jobs_digest(faulted.expand()), runner::jobs_digest(jobs));
}

// ----------------------------------------------------- write/load cycles ----

TEST(Journal, WriteThenLoadRoundTrips) {
  const std::string path = temp_path("journal_roundtrip.jsonl");
  const auto spec = small_spec();

  runner::SweepOptions opt;
  opt.journal_out = path;
  opt.journal_name = spec.name;
  const auto res = runner::run_sweep(spec, opt);
  ASSERT_TRUE(res.ok());

  const auto data = runner::load_journal(path);
  EXPECT_EQ(data.name, "unit");
  EXPECT_EQ(data.total_jobs, 4u);
  EXPECT_EQ(data.spec_hash, runner::jobs_digest(spec.expand()));
  EXPECT_FALSE(data.torn_tail);
  EXPECT_EQ(data.valid_bytes, slurp(path).size());
  ASSERT_EQ(data.entries.size(), 4u);
  for (std::size_t i = 0; i < data.entries.size(); ++i) {
    const auto& e = data.entries[i];
    EXPECT_EQ(e.index, i);  // de-duplicated ascending
    EXPECT_TRUE(e.record.ok);
    EXPECT_TRUE(e.record.restored);
    EXPECT_EQ(e.record.report.events, res.runs[i].report.events);
    EXPECT_EQ(e.record.report.sim_end, res.runs[i].report.sim_end);
    EXPECT_EQ(e.record.report.summary.avg_all_us,
              res.runs[i].report.summary.avg_all_us);
    EXPECT_EQ(e.record.job.group, "unit");
    EXPECT_EQ(e.record.job.label, res.runs[i].job.label);
  }
  std::remove(path.c_str());
}

TEST(Journal, ResumeReproducesUninterruptedRunByteForByte) {
  const std::string path = temp_path("journal_resume.jsonl");
  const auto spec = small_spec();

  // Reference: uninterrupted, no journal.
  const auto ref = runner::run_sweep(spec, {});
  ASSERT_TRUE(ref.ok());
  const auto ref_json = runner::to_json(ref, "unit", /*include_timing=*/false);

  // "Crashed" run: journal every record, then chop the file down to the
  // first two records as if the process had been killed after job 1.
  {
    runner::SweepOptions opt;
    opt.journal_out = path;
    opt.journal_name = spec.name;
    ASSERT_TRUE(runner::run_sweep(spec, opt).ok());
  }
  truncate_to_records(path, 2);

  // Resume in place (journal_out == resume path) on several workers.
  auto data = runner::load_journal(path);
  ASSERT_EQ(data.entries.size(), 2u);
  runner::SweepOptions opt;
  opt.jobs = 4;
  opt.journal_out = path;
  opt.resume = &data;
  const auto res = runner::run_sweep(spec, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.restored, 2u);
  EXPECT_EQ(res.completed, 4u);
  EXPECT_EQ(runner::to_json(res, "unit", /*include_timing=*/false), ref_json);

  // The extended journal is now complete: resuming again restores all four.
  auto again = runner::load_journal(path);
  ASSERT_EQ(again.entries.size(), 4u);
  runner::SweepOptions opt2;
  opt2.resume = &again;
  const auto res2 = runner::run_sweep(spec, opt2);
  EXPECT_EQ(res2.restored, 4u);
  EXPECT_EQ(runner::to_json(res2, "unit", /*include_timing=*/false), ref_json);
  std::remove(path.c_str());
}

TEST(Journal, FreshJournalWrittenDuringResumeIsSelfComplete) {
  const std::string a = temp_path("journal_old.jsonl");
  const std::string b = temp_path("journal_new.jsonl");
  const auto spec = small_spec();
  {
    runner::SweepOptions opt;
    opt.journal_out = a;
    opt.journal_name = spec.name;
    ASSERT_TRUE(runner::run_sweep(spec, opt).ok());
  }
  truncate_to_records(a, 1);

  auto data = runner::load_journal(a);
  runner::SweepOptions opt;
  opt.journal_out = b;  // different path: restored records are re-appended
  opt.journal_name = spec.name;
  opt.resume = &data;
  ASSERT_TRUE(runner::run_sweep(spec, opt).ok());

  const auto fresh = runner::load_journal(b);
  EXPECT_EQ(fresh.entries.size(), 4u);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(Journal, FailedRunsAreReExecutedOnResume) {
  // Only ok records are journaled; a deterministic failure re-runs on
  // resume and the aggregate still matches the uninterrupted run.
  const std::string path = temp_path("journal_failures.jsonl");
  auto spec = small_spec();
  spec.faults = {{"none", {}},
                 {"loss:no-such-port:0.01",
                  fault::parse_fault_specs("loss:no-such-port:0.01")}};

  runner::SweepOptions base;
  base.failure_policy = runner::FailurePolicy::kRecordAndContinue;
  const auto ref = runner::run_sweep(spec, base);
  EXPECT_EQ(ref.failed, 4u);

  auto opt = base;
  opt.journal_out = path;
  opt.journal_name = spec.name;
  runner::run_sweep(spec, opt);
  auto data = runner::load_journal(path);
  EXPECT_EQ(data.entries.size(), 4u);  // the four ok cells only

  auto resumed = base;
  resumed.resume = &data;
  const auto res = runner::run_sweep(spec, resumed);
  EXPECT_EQ(res.restored, 4u);
  EXPECT_EQ(res.failed, 4u);
  EXPECT_EQ(runner::to_json(res, "unit", /*include_timing=*/false),
            runner::to_json(ref, "unit", /*include_timing=*/false));
  std::remove(path.c_str());
}

// ------------------------------------------------- corruption tolerance ----

TEST(Journal, TornFinalLineIsDropped) {
  const std::string path = temp_path("journal_torn.jsonl");
  const auto spec = small_spec();
  runner::SweepOptions opt;
  opt.journal_out = path;
  opt.journal_name = spec.name;
  ASSERT_TRUE(runner::run_sweep(spec, opt).ok());

  const std::string full = slurp(path);
  // Simulate kill -9 mid-write: cut the last record line in half.
  const auto last_line = full.rfind('\n', full.size() - 2) + 1;
  const auto cut = last_line + (full.size() - 1 - last_line) / 2;
  spit(path, full.substr(0, cut));

  const auto data = runner::load_journal(path);
  EXPECT_TRUE(data.torn_tail);
  EXPECT_EQ(data.valid_bytes, last_line);
  EXPECT_EQ(data.entries.size(), 3u);

  // Resuming in place truncates the torn tail and completes the journal.
  runner::SweepOptions ropt;
  ropt.journal_out = path;
  ropt.resume = &data;
  ASSERT_TRUE(runner::run_sweep(spec, ropt).ok());
  const auto healed = runner::load_journal(path);
  EXPECT_FALSE(healed.torn_tail);
  EXPECT_EQ(healed.entries.size(), 4u);
  std::remove(path.c_str());
}

TEST(Journal, CorruptionBeforeTheTailThrows) {
  const std::string path = temp_path("journal_corrupt.jsonl");
  const auto spec = small_spec();
  runner::SweepOptions opt;
  opt.journal_out = path;
  opt.journal_name = spec.name;
  ASSERT_TRUE(runner::run_sweep(spec, opt).ok());

  auto text = slurp(path);
  text[text.find("\"index\"")] = '#';  // clobber the first record line
  spit(path, text);
  EXPECT_THROW(runner::load_journal(path), std::runtime_error);

  spit(path, "not a journal\n");
  EXPECT_THROW(runner::load_journal(path), std::runtime_error);
  EXPECT_THROW(runner::load_journal(temp_path("no_such_journal.jsonl")),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(Journal, DuplicateIndexKeepsTheLastRecord) {
  const std::string path = temp_path("journal_dup.jsonl");
  const auto jobs = small_spec().expand();
  runner::RunRecord rec;
  rec.job = jobs[0];
  rec.ok = true;
  rec.attempts = 1;
  rec.report.events = 100;
  {
    runner::JournalWriter w(path, "unit", runner::jobs_digest(jobs),
                            jobs.size());
    w.append(rec);
    rec.report.events = 200;  // fresher result for the same index
    w.append(rec);
    EXPECT_EQ(w.records_written(), 2u);
  }
  const auto data = runner::load_journal(path);
  ASSERT_EQ(data.entries.size(), 1u);
  EXPECT_EQ(data.entries[0].record.report.events, 200u);
  std::remove(path.c_str());
}

// ---------------------------------------------------- resume validation ----

TEST(Journal, ResumeRejectsAJournalFromADifferentSweep) {
  const std::string path = temp_path("journal_mismatch.jsonl");
  const auto spec = small_spec();
  runner::SweepOptions opt;
  opt.journal_out = path;
  opt.journal_name = spec.name;
  ASSERT_TRUE(runner::run_sweep(spec, opt).ok());
  auto data = runner::load_journal(path);

  auto other = small_spec();
  other.loads = {0.5, 0.7};  // different grid, same size
  runner::SweepOptions ropt;
  ropt.resume = &data;
  EXPECT_THROW(runner::run_sweep(other, ropt), std::runtime_error);

  auto bigger = small_spec();
  bigger.seeds = {7, 8};  // different job count
  EXPECT_THROW(runner::run_sweep(bigger, ropt), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tcn
