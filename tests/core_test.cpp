// Core/integration tests: the factories, the FCT experiment harness, and
// miniature versions of the paper's headline claims:
//   - per-port RED violates DWRR fairness, TCN preserves it (Fig. 1 / 5a)
//   - TCN keeps buffer occupancy near the BDP while per-queue RED with the
//     standard threshold overshoots when queues share the link (Fig. 3 / 5b)
//   - the harness runs every scheme/scheduler combination end to end
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "core/experiment.hpp"
#include "core/schemes.hpp"
#include "stats/timeseries.hpp"
#include "topo/network.hpp"
#include "transport/flow.hpp"

namespace tcn::core {
namespace {

TEST(Factories, SchedulerFactoryProducesFreshInstances) {
  SchedConfig cfg;
  cfg.kind = SchedKind::kDwrr;
  cfg.num_queues = 4;
  const auto f = make_scheduler_factory(cfg);
  auto a = f();
  auto b = f();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->name(), "dwrr");
}

TEST(Factories, AllSchedulerKindsConstruct) {
  for (const auto kind :
       {SchedKind::kFifo, SchedKind::kSp, SchedKind::kDwrr, SchedKind::kWrr,
        SchedKind::kWfq, SchedKind::kSpDwrr, SchedKind::kSpWfq,
        SchedKind::kPifoStfq}) {
    SchedConfig cfg;
    cfg.kind = kind;
    cfg.num_queues = 4;
    cfg.num_sp = 1;
    EXPECT_NE(make_scheduler_factory(cfg)(), nullptr) << sched_name(kind);
  }
}

TEST(Factories, HybridRequiresLowPriorityQueues) {
  SchedConfig cfg;
  cfg.kind = SchedKind::kSpDwrr;
  cfg.num_queues = 2;
  cfg.num_sp = 2;
  EXPECT_THROW(make_scheduler_factory(cfg), std::invalid_argument);
}

TEST(Factories, MqEcnRejectsNonRoundRobin) {
  SchemeParams p;
  p.rtt_lambda = 100 * sim::kMicrosecond;
  const auto marker_factory = make_marker_factory(Scheme::kMqEcn, p);

  SchedConfig wfq;
  wfq.kind = SchedKind::kWfq;
  wfq.num_queues = 2;
  auto sched = make_scheduler_factory(wfq)();
  net::PortConfig port;
  EXPECT_THROW(marker_factory(*sched, port), std::invalid_argument);

  SchedConfig dwrr;
  dwrr.kind = SchedKind::kDwrr;
  dwrr.num_queues = 2;
  auto rr = make_scheduler_factory(dwrr)();
  EXPECT_NE(marker_factory(*rr, port), nullptr);
}

TEST(Factories, EverySchemeConstructsAMarker) {
  SchemeParams p;
  p.rtt_lambda = 100 * sim::kMicrosecond;
  p.red_threshold_bytes = 30'000;
  p.oracle_thresholds = {8'000, 8'000};
  p.codel_target = 50 * sim::kMicrosecond;
  p.codel_interval = sim::kMillisecond;
  p.tcn_tmin = 50 * sim::kMicrosecond;
  p.tcn_tmax = 200 * sim::kMicrosecond;
  p.tcn_pmax = 0.8;

  SchedConfig dwrr;
  dwrr.kind = SchedKind::kDwrr;
  dwrr.num_queues = 2;
  auto sched = make_scheduler_factory(dwrr)();
  net::PortConfig port;
  port.num_queues = 2;
  for (const auto s :
       {Scheme::kTcn, Scheme::kTcnProb, Scheme::kCodel, Scheme::kMqEcn,
        Scheme::kRedPerQueue, Scheme::kRedPerPort, Scheme::kRedDequeue,
        Scheme::kIdealRate, Scheme::kIdealOracle, Scheme::kNone}) {
    EXPECT_NE(make_marker_factory(s, p)(*sched, port), nullptr)
        << scheme_name(s);
  }
}

// ---------------------------------------------------------------------------
// Miniature paper claims.
// ---------------------------------------------------------------------------

/// Long-lived-flow rig on a star: s1 flows from host 1 -> host 0 in queue 0,
/// s2 flows from host 2 -> host 0 in queue 1, DWRR equal quanta.
struct FairnessRig {
  FairnessRig(Scheme scheme, int flows_q0, int flows_q1) {
    SchemeParams params;
    params.rtt_lambda = 100 * sim::kMicrosecond;
    params.red_threshold_bytes = 30'000;  // DCTCP-recommended K at 1G
    SchedConfig sched;
    sched.kind = SchedKind::kDwrr;
    sched.num_queues = 2;

    topo::StarConfig star;
    star.num_hosts = 3;
    star.num_queues = 2;
    star.buffer_bytes = 192'000;
    star.host_delay = topo::star_host_delay_for_rtt(100 * sim::kMicrosecond,
                                                    star.link_prop);
    net.emplace(topo::build_star(simulator, star,
                                 make_scheduler_factory(sched),
                                 make_marker_factory(scheme, params)));
    for (int q = 0; q < 2; ++q) {
      meters.push_back(
          std::make_unique<stats::GoodputMeter>(10 * sim::kMillisecond));
    }
    auto start = [&](std::size_t host, std::uint8_t q, int n) {
      for (int i = 0; i < n; ++i) {
        transport::FlowSpec spec;
        spec.size = 1'000'000'000;  // effectively infinite
        spec.service = q;
        spec.data_dscp = transport::constant_dscp(q);
        spec.ack_dscp = q;
        spec.tcp.rto_min = 5 * sim::kMillisecond;
        spec.tcp.rto_init = 5 * sim::kMillisecond;
        auto* meter = meters[q].get();
        spec.on_deliver = [meter](std::uint32_t b, sim::Time t) {
          meter->record(b, t);
        };
        fm.start_flow(net->host(host), net->host(0), spec);
      }
    };
    start(1, 0, flows_q0);
    start(2, 1, flows_q1);
    simulator.run(400 * sim::kMillisecond);
  }

  /// Steady-state goodput of queue q in Mbps (skips 100ms warmup).
  double goodput_mbps(std::size_t q) {
    return meters[q]->average_bps(100 * sim::kMillisecond,
                                  400 * sim::kMillisecond) /
           1e6;
  }

  sim::Simulator simulator;
  std::optional<topo::Network> net;
  transport::FlowManager fm;
  std::vector<std::unique_ptr<stats::GoodputMeter>> meters;
};

TEST(PaperClaims, TcnPreservesDwrrFairnessDespiteFlowCountAsymmetry) {
  // 1 flow vs 8 flows, equal DWRR quanta: goodputs must stay ~equal.
  FairnessRig rig(Scheme::kTcn, 1, 8);
  const double q0 = rig.goodput_mbps(0);
  const double q1 = rig.goodput_mbps(1);
  EXPECT_NEAR(q0, q1, 0.12 * (q0 + q1) / 2);  // within 12%
  EXPECT_GT(q0 + q1, 800.0);                  // link still saturated
}

TEST(PaperClaims, PerPortRedViolatesDwrrFairness) {
  // Same setup under per-port RED: the many-flow service grabs much more
  // than half (Fig. 1: 670+ Mbps of ~950).
  FairnessRig rig(Scheme::kRedPerPort, 1, 8);
  const double q0 = rig.goodput_mbps(0);
  const double q1 = rig.goodput_mbps(1);
  EXPECT_GT(q1, 1.4 * q0);
}

TEST(PaperClaims, MqEcnAlsoPreservesDwrrFairness) {
  FairnessRig rig(Scheme::kMqEcn, 1, 8);
  const double q0 = rig.goodput_mbps(0);
  const double q1 = rig.goodput_mbps(1);
  EXPECT_NEAR(q0, q1, 0.15 * (q0 + q1) / 2);
}

TEST(PaperClaims, TcnKeepsLowerOccupancyThanStandardRedWhenSharing) {
  // Two busy queues: per-queue RED with the standard (full-rate) threshold
  // lets each queue build ~K; TCN bounds the *delay*, so total occupancy
  // stays near one K (Remark 1).
  auto run = [](Scheme scheme) {
    FairnessRig rig(scheme, 4, 4);
    auto& port0 = rig.net->switch_at(0).port(0);
    return port0.total_bytes();  // occupancy snapshot at t = 400ms
  };
  // Snapshots fluctuate; compare time-averaged via multiple seeds would be
  // better, but the effect is ~2x so a single steady-state snapshot works
  // with generous margins.
  const auto tcn_occ = run(Scheme::kTcn);
  const auto red_occ = run(Scheme::kRedPerQueue);
  EXPECT_LT(tcn_occ, red_occ);
}

TEST(Harness, RunsSmallExperimentEndToEnd) {
  FctExperiment cfg;
  cfg.topology = FctExperiment::Topology::kStarConverge;
  cfg.scheme = Scheme::kTcn;
  cfg.params.rtt_lambda = 250 * sim::kMicrosecond;
  cfg.sched.kind = SchedKind::kDwrr;
  cfg.load = 0.5;
  cfg.num_flows = 60;
  cfg.num_services = 4;
  cfg.service_workloads = {workload::Kind::kCache};
  cfg.star.num_hosts = 9;
  cfg.star.host_delay = topo::star_host_delay_for_rtt(
      250 * sim::kMicrosecond, cfg.star.link_prop);
  cfg.tcp.rto_min = 10 * sim::kMillisecond;
  cfg.tcp.rto_init = 10 * sim::kMillisecond;
  const auto report = run_fct_experiment(cfg);
  EXPECT_EQ(report.flows_started, 60u);
  EXPECT_EQ(report.flows_completed, 60u);
  EXPECT_GT(report.summary.avg_all_us, 0.0);
  EXPECT_GT(report.events, 1000u);
}

TEST(Harness, DeterministicForSameSeed) {
  FctExperiment cfg;
  cfg.scheme = Scheme::kTcn;
  cfg.params.rtt_lambda = 250 * sim::kMicrosecond;
  cfg.sched.kind = SchedKind::kWfq;
  cfg.load = 0.4;
  cfg.num_flows = 40;
  cfg.num_services = 2;
  cfg.service_workloads = {workload::Kind::kCache};
  cfg.star.num_hosts = 5;
  cfg.star.host_delay = topo::star_host_delay_for_rtt(
      250 * sim::kMicrosecond, cfg.star.link_prop);
  cfg.seed = 7;
  const auto a = run_fct_experiment(cfg);
  const auto b = run_fct_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.summary.avg_all_us, b.summary.avg_all_us);
  EXPECT_EQ(a.events, b.events);
  cfg.seed = 8;
  const auto c = run_fct_experiment(cfg);
  EXPECT_NE(a.summary.avg_all_us, c.summary.avg_all_us);
}

TEST(Harness, PiasRoutesHeadBytesToHighPriority) {
  FctExperiment cfg;
  cfg.scheme = Scheme::kTcn;
  cfg.params.rtt_lambda = 250 * sim::kMicrosecond;
  cfg.sched.kind = SchedKind::kSpDwrr;
  cfg.sched.num_sp = 1;
  cfg.pias = true;
  cfg.load = 0.5;
  cfg.num_flows = 50;
  cfg.num_services = 4;
  cfg.service_workloads = {workload::Kind::kCache};
  cfg.star.num_hosts = 9;
  cfg.star.host_delay = topo::star_host_delay_for_rtt(
      250 * sim::kMicrosecond, cfg.star.link_prop);
  const auto report = run_fct_experiment(cfg);
  EXPECT_EQ(report.flows_completed, 50u);
}

/// Every (scheme, scheduler) combination the paper evaluates must run.
struct ComboCase {
  Scheme scheme;
  SchedKind sched;
};

class SchemeSchedulerMatrix : public ::testing::TestWithParam<ComboCase> {};

TEST_P(SchemeSchedulerMatrix, CompletesAllFlows) {
  const auto& combo = GetParam();
  FctExperiment cfg;
  cfg.scheme = combo.scheme;
  cfg.sched.kind = combo.sched;
  cfg.sched.num_sp = 1;
  cfg.params.rtt_lambda = 250 * sim::kMicrosecond;
  cfg.params.red_threshold_bytes = 32'000;
  cfg.params.codel_target = 51'200;  // testbed tuning
  cfg.params.codel_interval = 1'024 * sim::kMicrosecond;
  cfg.params.tcn_tmin = 125 * sim::kMicrosecond;
  cfg.params.tcn_tmax = 375 * sim::kMicrosecond;
  cfg.params.tcn_pmax = 1.0;
  cfg.load = 0.6;
  cfg.num_flows = 40;
  cfg.num_services = 3;
  cfg.service_workloads = {workload::Kind::kCache};
  cfg.star.num_hosts = 6;
  cfg.star.host_delay = topo::star_host_delay_for_rtt(
      250 * sim::kMicrosecond, cfg.star.link_prop);
  cfg.time_limit = 30 * sim::kSecond;
  const auto report = run_fct_experiment(cfg);
  EXPECT_EQ(report.flows_completed, 40u);
}

INSTANTIATE_TEST_SUITE_P(
    PaperMatrix, SchemeSchedulerMatrix,
    ::testing::Values(ComboCase{Scheme::kTcn, SchedKind::kDwrr},
                      ComboCase{Scheme::kTcn, SchedKind::kWfq},
                      ComboCase{Scheme::kTcn, SchedKind::kSpDwrr},
                      ComboCase{Scheme::kTcn, SchedKind::kSpWfq},
                      ComboCase{Scheme::kTcn, SchedKind::kPifoStfq},
                      ComboCase{Scheme::kCodel, SchedKind::kDwrr},
                      ComboCase{Scheme::kCodel, SchedKind::kWfq},
                      ComboCase{Scheme::kMqEcn, SchedKind::kDwrr},
                      ComboCase{Scheme::kRedPerQueue, SchedKind::kDwrr},
                      ComboCase{Scheme::kRedPerQueue, SchedKind::kSpWfq},
                      ComboCase{Scheme::kRedDequeue, SchedKind::kDwrr},
                      ComboCase{Scheme::kIdealRate, SchedKind::kDwrr},
                      ComboCase{Scheme::kTcnProb, SchedKind::kDwrr}),
    [](const ::testing::TestParamInfo<ComboCase>& info) {
      auto s = scheme_name(info.param.scheme) + "_" +
               sched_name(info.param.sched);
      for (auto& c : s) {
        if (c == '-' || c == '/') c = '_';
      }
      return s;
    });

}  // namespace
}  // namespace tcn::core
