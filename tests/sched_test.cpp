// Scheduler tests: strict priority, DWRR quantum fairness and round-time
// tracking, WFQ weighted fairness, SP hybrids, PIFO programs, the SP-PIFO
// and AIFO approximations, plus property-style sweeps (work conservation,
// proportional sharing) over random arrival patterns and a randomized
// differential harness (true PIFO vs SP-PIFO vs AIFO on identical seeded
// streams, rank inversions counted at every departure).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "net/fifo_scheduler.hpp"
#include "net/marker.hpp"
#include "net/port.hpp"
#include "sched/aifo.hpp"
#include "sched/dwrr.hpp"
#include "sched/pifo.hpp"
#include "sched/sp.hpp"
#include "sched/sp_hybrid.hpp"
#include "sched/sp_pifo.hpp"
#include "sched/wfq.hpp"
#include "sched/wrr.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace tcn::sched {
namespace {

using test::CaptureNode;
using test::make_test_packet;

/// Drives a scheduler through a Port with a frozen clock: enqueue a backlog,
/// then observe departure order byte-by-byte.
struct Rig {
  explicit Rig(std::unique_ptr<net::Scheduler> sched, std::size_t num_queues,
               std::uint64_t rate = 1'000'000'000) {
    net::PortConfig cfg;
    cfg.rate_bps = rate;
    cfg.num_queues = num_queues;
    port = std::make_unique<net::Port>(sim, "p", cfg, std::move(sched),
                                       std::make_unique<net::NullMarker>());
    port->connect(&sink, 0);
  }

  /// Bytes received by the sink per queue-of-origin (flow id = queue).
  std::vector<std::uint64_t> delivered_bytes(std::size_t num_queues) const {
    std::vector<std::uint64_t> out(num_queues, 0);
    for (const auto& p : sink.packets) out[p->flow] += p->size;
    return out;
  }

  sim::Simulator sim;
  CaptureNode sink;
  std::unique_ptr<net::Port> port;
};

TEST(SpScheduler, HighPriorityAlwaysFirst) {
  Rig rig(std::make_unique<SpScheduler>(), 2);
  // Backlog low-priority queue, then a high-priority packet arrives; it must
  // jump ahead of everything not yet in service.
  for (int i = 0; i < 5; ++i) rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
  rig.sim.run();
  ASSERT_EQ(rig.sink.packets.size(), 6u);
  // Packet 0 was already serializing; the high-priority one is second.
  EXPECT_EQ(rig.sink.packets[1]->flow, 0u);
}

TEST(DwrrScheduler, EqualQuantaGiveEqualBytes) {
  Rig rig(std::make_unique<DwrrScheduler>(std::vector<std::uint64_t>{1500, 1500}),
          2);
  for (int i = 0; i < 40; ++i) {
    rig.port->enqueue(make_test_packet(1000, 0, 0), 0);
    rig.port->enqueue(make_test_packet(500, 1, 1), 1);
  }
  rig.sim.run();
  const auto bytes = rig.delivered_bytes(2);
  EXPECT_EQ(bytes[0], 40'000u);
  EXPECT_EQ(bytes[1], 20'000u);
  // Check interleaving fairness over the first half: neither queue should be
  // more than one quantum ahead while both are backlogged.
  std::int64_t diff = 0;
  std::int64_t max_abs = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    const auto& p = rig.sink.packets[i];
    diff += (p->flow == 0) ? p->size : -static_cast<std::int64_t>(p->size);
    max_abs = std::max<std::int64_t>(max_abs, std::abs(diff));
  }
  EXPECT_LE(max_abs, 3'000);
}

TEST(DwrrScheduler, WeightedQuantaShareProportionally) {
  Rig rig(std::make_unique<DwrrScheduler>(
              std::vector<std::uint64_t>{3000, 1500}),
          2);
  for (int i = 0; i < 60; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
    rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  }
  // While both are backlogged, queue 0 gets ~2x the service. Look at the
  // first 30 departures: expect ~20 from queue 0.
  rig.sim.run();
  int q0 = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    if (rig.sink.packets[i]->flow == 0) ++q0;
  }
  EXPECT_NEAR(q0, 20, 2);
}

TEST(DwrrScheduler, DeficitCarriesOverForBigPackets) {
  // Quantum 1000 < packet 1500: queue should still drain (two rounds per
  // packet), never stall.
  Rig rig(std::make_unique<DwrrScheduler>(std::vector<std::uint64_t>{1000}),
          1);
  for (int i = 0; i < 3; ++i) rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
  rig.sim.run();
  EXPECT_EQ(rig.sink.packets.size(), 3u);
}

TEST(DwrrScheduler, EmptyQueueForfeitsDeficit) {
  auto sched = std::make_unique<DwrrScheduler>(
      std::vector<std::uint64_t>{1500, 1500});
  auto* raw = sched.get();
  Rig rig(std::move(sched), 2);
  rig.port->enqueue(make_test_packet(100, 0, 0), 0);
  rig.sim.run();
  // Queue 0 drained; re-activation must start from zero deficit (we can't
  // observe deficit directly, but service must still be fair afterwards).
  for (int i = 0; i < 20; ++i) {
    rig.port->enqueue(make_test_packet(1000, 0, 0), 0);
    rig.port->enqueue(make_test_packet(1000, 1, 1), 1);
  }
  rig.sim.run();
  const auto bytes = rig.delivered_bytes(2);
  EXPECT_EQ(bytes[0], 100u + 20'000u);
  EXPECT_EQ(bytes[1], 20'000u);
  (void)raw;
}

TEST(DwrrScheduler, RoundRateConvergesToFairShare) {
  // Two always-backlogged queues on a 1G port with equal quanta: each queue's
  // round-rate estimate must converge to ~500Mbps.
  auto sched = std::make_unique<DwrrScheduler>(
      std::vector<std::uint64_t>{1500, 1500});
  auto* raw = sched.get();
  Rig rig(std::move(sched), 2);
  for (int i = 0; i < 200; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
    rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  }
  rig.sim.run();
  const double r0 = raw->queue_rate_bps(0, rig.sim.now());
  EXPECT_NEAR(r0, 500e6, 25e6);
}

TEST(DwrrScheduler, SoleQueueEstimatesFullRate) {
  auto sched =
      std::make_unique<DwrrScheduler>(std::vector<std::uint64_t>{1500});
  auto* raw = sched.get();
  Rig rig(std::move(sched), 1);
  for (int i = 0; i < 100; ++i) rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
  rig.sim.run();
  EXPECT_NEAR(raw->queue_rate_bps(0, rig.sim.now()), 1e9, 5e7);
}

TEST(DwrrScheduler, RejectsBadConfig) {
  EXPECT_THROW(DwrrScheduler({}), std::invalid_argument);
  EXPECT_THROW(DwrrScheduler({0}), std::invalid_argument);
  EXPECT_THROW(DwrrScheduler({1500}, 1.5), std::invalid_argument);
}

TEST(WrrScheduler, PacketWeightedRotation) {
  Rig rig(std::make_unique<WrrScheduler>(std::vector<std::uint32_t>{2, 1}), 2);
  for (int i = 0; i < 30; ++i) {
    rig.port->enqueue(make_test_packet(1000, 0, 0), 0);
    rig.port->enqueue(make_test_packet(1000, 1, 1), 1);
  }
  rig.sim.run();
  // First 15 departures: queue 0 should have ~2/3.
  int q0 = 0;
  for (std::size_t i = 0; i < 15; ++i) {
    if (rig.sink.packets[i]->flow == 0) ++q0;
  }
  EXPECT_NEAR(q0, 10, 1);
}

TEST(WfqScheduler, EqualWeightsAlternateBytes) {
  Rig rig(std::make_unique<WfqScheduler>(std::vector<double>{1.0, 1.0}), 2);
  for (int i = 0; i < 40; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
    rig.port->enqueue(make_test_packet(500, 1, 1), 1);
  }
  rig.sim.run();
  // While both stay backlogged (queue 1 holds only 20KB; with equal weights
  // it drains once queue 0 has also received ~20KB, i.e. through departure
  // ~48), served bytes stay within about one max packet of each other.
  std::int64_t diff = 0;
  for (std::size_t i = 0; i < 48; ++i) {
    const auto& p = rig.sink.packets[i];
    diff += (p->flow == 0) ? p->size : -static_cast<std::int64_t>(p->size);
    EXPECT_LE(std::abs(diff), 3000) << "at departure " << i;
  }
}

TEST(WfqScheduler, WeightsGiveProportionalService) {
  Rig rig(std::make_unique<WfqScheduler>(std::vector<double>{3.0, 1.0}), 2);
  for (int i = 0; i < 80; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
    rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  }
  rig.sim.run();
  int q0 = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    if (rig.sink.packets[i]->flow == 0) ++q0;
  }
  EXPECT_NEAR(q0, 30, 2);
}

TEST(WfqScheduler, LateArrivalGetsImmediateShare) {
  // Queue 1 starts late; once it arrives it should not be starved by queue
  // 0's accumulated backlog (SCFQ resumes from current virtual time).
  Rig rig(std::make_unique<WfqScheduler>(std::vector<double>{1.0, 1.0}), 2);
  for (int i = 0; i < 50; ++i) rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
  rig.sim.schedule_at(100 * sim::kMicrosecond, [&] {
    for (int i = 0; i < 10; ++i) rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  });
  rig.sim.run();
  // Find the arrival point in the departure sequence; after it, service
  // should alternate rather than finishing queue 0 first.
  std::size_t first_q1 = 0;
  for (std::size_t i = 0; i < rig.sink.packets.size(); ++i) {
    if (rig.sink.packets[i]->flow == 1) {
      first_q1 = i;
      break;
    }
  }
  // 100us at 1G = ~8.3 packets; queue 1's first packet should depart within
  // a couple of packets after its arrival, not after queue 0's 50.
  EXPECT_LT(first_q1, 14u);
}

TEST(SpHybridScheduler, StrictQueueStarvesInner) {
  auto inner = std::make_unique<WfqScheduler>(std::vector<double>{1, 1, 1});
  Rig rig(std::make_unique<SpHybridScheduler>(1, std::move(inner)), 3);
  for (int i = 0; i < 10; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
    rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
    rig.port->enqueue(make_test_packet(1500, 2, 2), 2);
  }
  rig.sim.run();
  // All SP packets must depart before the last SP packet time; specifically
  // among the first 11 departures at least 10 are from queue 0.
  int sp = 0;
  for (std::size_t i = 0; i < 11; ++i) {
    if (rig.sink.packets[i]->flow == 0) ++sp;
  }
  EXPECT_GE(sp, 10);
}

TEST(SpHybridScheduler, InnerSharesFairlyWhenSpIdle) {
  auto inner = std::make_unique<DwrrScheduler>(
      std::vector<std::uint64_t>{1500, 1500, 1500});
  Rig rig(std::make_unique<SpHybridScheduler>(1, std::move(inner)), 3);
  for (int i = 0; i < 30; ++i) {
    rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
    rig.port->enqueue(make_test_packet(1500, 2, 2), 2);
  }
  rig.sim.run();
  const auto bytes = rig.delivered_bytes(3);
  EXPECT_EQ(bytes[1], bytes[2]);
}

TEST(SpHybridScheduler, RejectsBadConfig) {
  EXPECT_THROW(SpHybridScheduler(0, std::make_unique<SpScheduler>()),
               std::invalid_argument);
  EXPECT_THROW(SpHybridScheduler(1, nullptr), std::invalid_argument);
}

TEST(PifoScheduler, PriorityProgramActsAsStrictPriority) {
  Rig rig(std::make_unique<PifoScheduler>(PifoScheduler::priority_program()),
          2);
  for (int i = 0; i < 5; ++i) rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
  rig.sim.run();
  EXPECT_EQ(rig.sink.packets[1]->flow, 0u);
}

TEST(PifoScheduler, StfqProgramApproximatesFairness) {
  Rig rig(std::make_unique<PifoScheduler>(
              PifoScheduler::stfq_program({1.0, 1.0})),
          2);
  for (int i = 0; i < 40; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
    rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  }
  rig.sim.run();
  int q0 = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    if (rig.sink.packets[i]->flow == 0) ++q0;
  }
  EXPECT_NEAR(q0, 20, 2);
}

TEST(SpPifoScheduler, PriorityProgramActsAsStrictPriority) {
  Rig rig(std::make_unique<SpPifoScheduler>(8, priority_rank_program()), 2);
  for (int i = 0; i < 5; ++i) rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
  rig.sim.run();
  EXPECT_EQ(rig.sink.packets[1]->flow, 0u);
}

TEST(SpPifoScheduler, PushUpAndPushDownTrackRanks) {
  // Feed ranks directly. 10 lands at the bottom (push-up to 10); each
  // successively smaller rank climbs one level as the lower bounds block it;
  // rank 1 raises bounds_[0] to 1; then rank 0 undercuts even the top bound
  // -> the paper's adaptation: every bound drops by the miss cost and the
  // packet is admitted at level 0.
  std::vector<std::int64_t> ranks = {10, 5, 3, 1, 0};
  std::size_t i = 0;
  auto sched = std::make_unique<SpPifoScheduler>(
      4, [&](const net::Packet&, std::size_t, sim::Time) {
        return ranks[i++];
      });
  auto* raw = sched.get();
  Rig rig(std::move(sched), 1);
  rig.port->enqueue(make_test_packet(100, 0, 0), 0);  // rank 10 -> level 3
  EXPECT_EQ(raw->last_level(), 3u);
  EXPECT_EQ(raw->bound(3), 10);
  rig.port->enqueue(make_test_packet(100, 0, 1), 0);  // rank 5 -> level 2
  EXPECT_EQ(raw->last_level(), 2u);
  rig.port->enqueue(make_test_packet(100, 0, 2), 0);  // rank 3 -> level 1
  rig.port->enqueue(make_test_packet(100, 0, 3), 0);  // rank 1 -> level 0
  EXPECT_EQ(raw->last_level(), 0u);
  EXPECT_EQ(raw->bound(0), 1);
  EXPECT_EQ(raw->push_downs(), 0u);
  rig.port->enqueue(make_test_packet(100, 0, 4), 0);  // rank 0: push-down
  EXPECT_EQ(raw->push_downs(), 1u);
  EXPECT_EQ(raw->last_level(), 0u);
  // The adaptation slides the whole ladder by the miss cost (1), landing
  // bounds_[0] exactly on the new rank; the ladder stays monotone.
  EXPECT_EQ(raw->bound(0), 0);
  for (std::size_t l = 1; l < raw->levels(); ++l) {
    EXPECT_LE(raw->bound(l - 1), raw->bound(l)) << "level " << l;
  }
  rig.sim.run();
}

TEST(SpPifoScheduler, BottomUpScanLandsAtFirstClearedBound) {
  // Equal high ranks pile into the bottom level (its bound always clears);
  // a much smaller rank then climbs past the raised bound to the first
  // level still at its initial bound -- a plain hit, not a push-down.
  std::vector<std::int64_t> ranks = {100, 100, 100, 100, 1};
  std::size_t i = 0;
  auto sched = std::make_unique<SpPifoScheduler>(
      4, [&](const net::Packet&, std::size_t, sim::Time) {
        return ranks[i++];
      });
  auto* raw = sched.get();
  Rig rig(std::move(sched), 1);
  for (int k = 0; k < 4; ++k) {
    rig.port->enqueue(make_test_packet(100, 0, k), 0);
    EXPECT_EQ(raw->last_level(), 3u);
  }
  EXPECT_EQ(raw->bound(3), 100);
  const std::uint64_t before = raw->push_downs();
  rig.port->enqueue(make_test_packet(100, 0, 4), 0);  // rank 1 -> level 2
  EXPECT_EQ(raw->push_downs(), before);
  EXPECT_EQ(raw->last_level(), 2u);
  rig.sim.run();
}

TEST(SpPifoScheduler, RejectsBadConfig) {
  EXPECT_THROW(SpPifoScheduler(1, priority_rank_program()),
               std::invalid_argument);
  EXPECT_THROW(SpPifoScheduler(8, sched::RankProgram{}),
               std::invalid_argument);
}

TEST(AifoScheduler, DequeuesInGlobalFifoOrder) {
  // Interleave enqueues across 3 queues; AIFO must deliver in arrival order
  // regardless of which physical queue a packet was classified into.
  Rig rig(std::make_unique<AifoScheduler>(16, 0.1, stfq_rank_program({1, 1, 1})),
          3);
  std::vector<std::uint64_t> arrival_order;
  sim::Rng rng(7);
  for (std::uint64_t i = 0; i < 30; ++i) {
    const auto q = static_cast<std::size_t>(rng.uniform_int(0, 2));
    arrival_order.push_back(i);
    rig.port->enqueue(make_test_packet(1000, static_cast<std::uint8_t>(q), i),
                      q);
  }
  rig.sim.run();
  ASSERT_EQ(rig.sink.packets.size(), 30u);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(rig.sink.packets[i]->flow, arrival_order[i]) << "position " << i;
  }
}

TEST(AifoScheduler, AdmissionIsMonotoneInRankAndOccupancy) {
  // Populate the window with a known rank spread, then probe the admission
  // predicate directly: admit must never flip to reject as the rank drops
  // or as the buffer empties.
  std::int64_t next_rank = 0;
  AifoScheduler s(32, 0.1,
                  [&](const net::Packet&, std::size_t, sim::Time) {
                    return next_rank;
                  });
  const auto pkt = make_test_packet(1000);
  for (std::int64_t r = 0; r < 32; ++r) {
    next_rank = r;
    s.admit(0, *pkt, 0, 0, UINT64_MAX);  // unlimited: always admitted
  }
  EXPECT_EQ(s.admitted(), 32u);
  EXPECT_EQ(s.rejected(), 0u);
  const std::uint64_t capacity = 10'000;
  for (std::uint64_t occ = 0; occ <= capacity; occ += 500) {
    bool prev = true;
    for (std::int64_t r = 0; r < 40; ++r) {
      const bool now = s.would_admit(r, occ, capacity);
      if (!prev) {
        EXPECT_FALSE(now) << "admit flipped back on at rank " << r
                          << " occ " << occ;
      }
      prev = now;
    }
  }
  for (std::int64_t r = 0; r < 40; ++r) {
    bool prev = s.would_admit(r, 0, capacity);
    EXPECT_TRUE(prev) << "empty buffer must admit rank " << r;
    for (std::uint64_t occ = 0; occ <= capacity; occ += 500) {
      const bool now = s.would_admit(r, occ, capacity);
      if (!now) prev = false;
      if (!prev) {
        EXPECT_FALSE(now) << "admit flipped back on at occ " << occ
                          << " rank " << r;
      }
    }
  }
  // Low ranks survive pressure longer than high ranks.
  EXPECT_TRUE(s.would_admit(0, capacity - 1'000, capacity));
  EXPECT_FALSE(s.would_admit(100, capacity - 1'000, capacity));
}

TEST(AifoScheduler, RejectsUnderPressureAndCountsSchedDrops) {
  // Tight shared buffer: packets with high STFQ ranks arriving into a nearly
  // full port are rejected by AIFO (sched_drops), not tail-dropped by the
  // buffer, and the marker/AQM never sees them.
  Rig rig(std::make_unique<AifoScheduler>(16, 0.0, stfq_rank_program({1, 1})),
          2);
  rig.port->set_buffer_limit(4'000);
  for (std::uint64_t i = 0; i < 40; ++i) {
    rig.port->enqueue(
        make_test_packet(1000, static_cast<std::uint8_t>(i % 2), i), i % 2);
  }
  rig.sim.run();
  const auto& c = rig.port->counters();
  EXPECT_GT(c.sched_drops, 0u);
  EXPECT_EQ(c.enq_packets + c.sched_drops + c.drops, 40u);
  EXPECT_EQ(c.sched_drop_bytes, c.sched_drops * 1'000u);
  // Ledger: admitted bytes all delivered (frozen clock drains everything).
  EXPECT_EQ(c.enq_bytes, c.tx_bytes);
  EXPECT_EQ(rig.sink.packets.size(), c.enq_packets);
}

TEST(AifoScheduler, RejectsBadConfig) {
  EXPECT_THROW(AifoScheduler(0, 0.1, priority_rank_program()),
               std::invalid_argument);
  EXPECT_THROW(AifoScheduler(8, 1.0, priority_rank_program()),
               std::invalid_argument);
  EXPECT_THROW(AifoScheduler(8, -0.1, priority_rank_program()),
               std::invalid_argument);
  EXPECT_THROW(AifoScheduler(8, 0.1, sched::RankProgram{}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Differential harness: identical seeded arrival streams through true PIFO,
// SP-PIFO and AIFO. Ranks are precomputed per arrival and monotone within
// each queue (the head-packet compromise's exactness precondition), so the
// true PIFO is the zero-inversion reference; SP-PIFO must approximate it
// (strictly fewer inversions than not scheduling at all = AIFO's global
// FIFO), and AIFO must depart in exact arrival order.
// ---------------------------------------------------------------------------

struct DiffStream {
  std::vector<sim::Time> times;        // strictly increasing
  std::vector<std::size_t> queues;     // classified physical queue
  std::vector<std::uint32_t> sizes;
  std::vector<std::int64_t> ranks;     // per arrival, monotone per queue
};

DiffStream make_diff_stream(std::uint64_t seed, std::size_t n,
                            std::size_t nq) {
  DiffStream s;
  sim::Rng rng(seed);
  sim::Time t = 0;
  std::vector<std::int64_t> next_rank(nq, 0);
  for (std::size_t i = 0; i < n; ++i) {
    t += static_cast<sim::Time>(rng.uniform_int(1, 12'000));  // ns gaps
    s.times.push_back(t);
    const auto q = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::uint64_t>(nq - 1)));
    s.queues.push_back(q);
    s.sizes.push_back(static_cast<std::uint32_t>(rng.uniform_int(100, 1500)));
    // Per-queue monotone ranks that interleave arbitrarily across queues.
    next_rank[q] += static_cast<std::int64_t>(rng.uniform_int(0, 50));
    s.ranks.push_back(next_rank[q]);
  }
  return s;
}

/// Counts rank inversions the SP-PIFO way: a departure is an inversion when
/// some packet with a strictly smaller rank is still buffered behind it.
struct InversionCounter final : net::PortObserver {
  explicit InversionCounter(const std::vector<std::int64_t>& ranks)
      : ranks_(ranks) {}
  void on_event(const net::TraceRecord& rec) override {
    const std::int64_t r = ranks_[rec.flow];
    if (rec.event == net::TraceEvent::kEnqueue) {
      buffered_.insert(r);
    } else if (rec.event == net::TraceEvent::kDequeue) {
      buffered_.erase(buffered_.find(r));
      if (!buffered_.empty() && *buffered_.begin() < r) ++inversions;
    }
  }
  const std::vector<std::int64_t>& ranks_;
  std::multiset<std::int64_t> buffered_;
  std::uint64_t inversions = 0;
};

struct DiffResult {
  std::uint64_t inversions = 0;
  std::vector<std::uint64_t> departures;  // flow ids (= arrival index)
  std::uint64_t delivered_bytes = 0;
};

DiffResult run_diff(const DiffStream& s, std::size_t nq,
                    std::unique_ptr<net::Scheduler> sched) {
  Rig rig(std::move(sched), nq);
  InversionCounter counter(s.ranks);
  rig.port->set_observer(&counter);
  for (std::size_t i = 0; i < s.times.size(); ++i) {
    rig.sim.schedule_at(s.times[i], [&rig, &s, i] {
      rig.port->enqueue(make_test_packet(s.sizes[i], 0, i), s.queues[i]);
    });
  }
  rig.sim.run();
  DiffResult r;
  r.inversions = counter.inversions;
  for (const auto& p : rig.sink.packets) {
    r.departures.push_back(p->flow);
    r.delivered_bytes += p->size;
  }
  rig.port->set_observer(nullptr);
  return r;
}

TEST(SchedulerDifferential, PifoExactSpPifoBoundedAifoFifo) {
  const std::size_t nq = 4;
  std::uint64_t sp_pifo_total = 0, fifo_total = 0;
  for (const std::uint64_t seed : {11u, 23u, 37u, 59u, 71u}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    const DiffStream s = make_diff_stream(seed, 300, nq);
    auto rank_fn = [&s](const net::Packet& p, std::size_t, sim::Time) {
      return s.ranks[p.flow];
    };

    const DiffResult pifo =
        run_diff(s, nq, std::make_unique<PifoScheduler>(rank_fn));
    const DiffResult sp_pifo =
        run_diff(s, nq, std::make_unique<SpPifoScheduler>(8, rank_fn));
    const DiffResult aifo =
        run_diff(s, nq, std::make_unique<AifoScheduler>(128, 0.1, rank_fn));

    // Same stream, no drops (unlimited buffer): byte totals agree.
    EXPECT_EQ(pifo.delivered_bytes, sp_pifo.delivered_bytes);
    EXPECT_EQ(pifo.delivered_bytes, aifo.delivered_bytes);
    EXPECT_EQ(pifo.departures.size(), s.times.size());

    // True PIFO with per-queue monotone ranks never inverts.
    EXPECT_EQ(pifo.inversions, 0u);

    // AIFO departs in exact arrival order -- its inversion count is the
    // "no scheduling" baseline for this stream.
    for (std::size_t i = 0; i < aifo.departures.size(); ++i) {
      ASSERT_EQ(aifo.departures[i], i) << "AIFO broke FIFO at position " << i;
    }

    // SP-PIFO approximates the PIFO: never worse than FIFO order.
    EXPECT_LE(sp_pifo.inversions, aifo.inversions);
    sp_pifo_total += sp_pifo.inversions;
    fifo_total += aifo.inversions;

    // Determinism: an identical re-run reproduces the departure sequence
    // and the inversion count exactly.
    const DiffResult again =
        run_diff(s, nq, std::make_unique<SpPifoScheduler>(8, rank_fn));
    EXPECT_EQ(again.inversions, sp_pifo.inversions);
    EXPECT_EQ(again.departures, sp_pifo.departures);
  }
  // Across the seeds the approximation must beat FIFO strictly: scheduling
  // happened. (FIFO baseline is nonzero for these streams by construction.)
  EXPECT_GT(fifo_total, 0u);
  EXPECT_LT(sp_pifo_total, fifo_total);
}

TEST(SchedulerDifferential, SpPifoMoreLevelsNeverHurtMuch) {
  // Sanity on the approximation knob: with as many levels as distinct rank
  // regimes, inversions shrink toward the PIFO's zero. Compare 2 vs 8
  // levels aggregated over seeds -- deterministic, so a stable regression
  // guard rather than a statistical claim.
  const std::size_t nq = 4;
  std::uint64_t two_total = 0, eight_total = 0;
  for (const std::uint64_t seed : {5u, 13u, 29u}) {
    const DiffStream s = make_diff_stream(seed, 300, nq);
    auto rank_fn = [&s](const net::Packet& p, std::size_t, sim::Time) {
      return s.ranks[p.flow];
    };
    two_total +=
        run_diff(s, nq, std::make_unique<SpPifoScheduler>(2, rank_fn))
            .inversions;
    eight_total +=
        run_diff(s, nq, std::make_unique<SpPifoScheduler>(8, rank_fn))
            .inversions;
  }
  EXPECT_LE(eight_total, two_total);
}

// ---------------------------------------------------------------------------
// Property sweeps: random arrivals, invariants that must hold for any
// work-conserving fair scheduler.
// ---------------------------------------------------------------------------

struct SchedCase {
  const char* name;
  std::function<std::unique_ptr<net::Scheduler>(std::size_t nq)> make;
};

class SchedulerPropertyTest : public ::testing::TestWithParam<SchedCase> {};

TEST_P(SchedulerPropertyTest, WorkConservingUnderRandomArrivals) {
  const std::size_t nq = 4;
  Rig rig(GetParam().make(nq), nq);
  sim::Rng rng(99);
  std::uint64_t total_in = 0;
  // Burst arrivals at random times within 1ms; link 1G drains 125KB/ms.
  for (int i = 0; i < 60; ++i) {
    const auto t = static_cast<sim::Time>(rng.uniform(0, 1e6));
    const auto q = static_cast<std::size_t>(rng.uniform_int(0, nq - 1));
    const auto size = static_cast<std::uint32_t>(rng.uniform_int(100, 1500));
    total_in += size;
    rig.sim.schedule_at(t, [&rig, q, size] {
      rig.port->enqueue(make_test_packet(size, static_cast<std::uint8_t>(q), q),
                        q);
    });
  }
  rig.sim.run();
  // Everything delivered, nothing lost or duplicated.
  std::uint64_t total_out = 0;
  for (const auto& p : rig.sink.packets) total_out += p->size;
  EXPECT_EQ(total_in, total_out);
  // Work conservation: the link never idles while backlogged, so the total
  // drain time is at most last-arrival + total-bytes serialization.
  EXPECT_LE(rig.sim.now(),
            1 * sim::kMillisecond +
                sim::transmission_time(total_in, 1'000'000'000));
}

TEST_P(SchedulerPropertyTest, BackloggedQueuesShareWithinFactorTwo) {
  const std::size_t nq = 4;
  Rig rig(GetParam().make(nq), nq);
  // Keep all queues heavily backlogged with equal-size packets.
  for (int i = 0; i < 100; ++i) {
    for (std::size_t q = 0; q < nq; ++q) {
      rig.port->enqueue(
          make_test_packet(1000, static_cast<std::uint8_t>(q), q), q);
    }
  }
  rig.sim.run();
  // Inspect the first half of departures (all queues still backlogged).
  std::vector<int> counts(nq, 0);
  for (std::size_t i = 0; i < 200; ++i) ++counts[rig.sink.packets[i]->flow];
  for (std::size_t q = 0; q < nq; ++q) {
    EXPECT_GE(counts[q], 25) << "queue " << q << " starved";
    EXPECT_LE(counts[q], 100) << "queue " << q << " hogged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    FairSchedulers, SchedulerPropertyTest,
    ::testing::Values(
        SchedCase{"dwrr",
                  [](std::size_t nq) {
                    return std::make_unique<DwrrScheduler>(
                        std::vector<std::uint64_t>(nq, 1500));
                  }},
        SchedCase{"wrr",
                  [](std::size_t nq) {
                    return std::make_unique<WrrScheduler>(
                        std::vector<std::uint32_t>(nq, 1));
                  }},
        SchedCase{"wfq",
                  [](std::size_t nq) {
                    return std::make_unique<WfqScheduler>(
                        std::vector<double>(nq, 1.0));
                  }},
        SchedCase{"pifo_stfq",
                  [](std::size_t nq) {
                    return std::make_unique<PifoScheduler>(
                        PifoScheduler::stfq_program(
                            std::vector<double>(nq, 1.0)));
                  }},
        SchedCase{"sp_pifo_stfq",
                  [](std::size_t nq) {
                    return std::make_unique<SpPifoScheduler>(
                        8, stfq_rank_program(std::vector<double>(nq, 1.0)));
                  }},
        SchedCase{"aifo_stfq",
                  [](std::size_t nq) {
                    return std::make_unique<AifoScheduler>(
                        128, 0.1,
                        stfq_rank_program(std::vector<double>(nq, 1.0)));
                  }}),
    [](const ::testing::TestParamInfo<SchedCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace tcn::sched
