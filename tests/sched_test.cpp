// Scheduler tests: strict priority, DWRR quantum fairness and round-time
// tracking, WFQ weighted fairness, SP hybrids, PIFO programs, plus
// property-style sweeps (work conservation, proportional sharing) over
// random arrival patterns.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "net/fifo_scheduler.hpp"
#include "net/marker.hpp"
#include "net/port.hpp"
#include "sched/dwrr.hpp"
#include "sched/pifo.hpp"
#include "sched/sp.hpp"
#include "sched/sp_hybrid.hpp"
#include "sched/wfq.hpp"
#include "sched/wrr.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace tcn::sched {
namespace {

using test::CaptureNode;
using test::make_test_packet;

/// Drives a scheduler through a Port with a frozen clock: enqueue a backlog,
/// then observe departure order byte-by-byte.
struct Rig {
  explicit Rig(std::unique_ptr<net::Scheduler> sched, std::size_t num_queues,
               std::uint64_t rate = 1'000'000'000) {
    net::PortConfig cfg;
    cfg.rate_bps = rate;
    cfg.num_queues = num_queues;
    port = std::make_unique<net::Port>(sim, "p", cfg, std::move(sched),
                                       std::make_unique<net::NullMarker>());
    port->connect(&sink, 0);
  }

  /// Bytes received by the sink per queue-of-origin (flow id = queue).
  std::vector<std::uint64_t> delivered_bytes(std::size_t num_queues) const {
    std::vector<std::uint64_t> out(num_queues, 0);
    for (const auto& p : sink.packets) out[p->flow] += p->size;
    return out;
  }

  sim::Simulator sim;
  CaptureNode sink;
  std::unique_ptr<net::Port> port;
};

TEST(SpScheduler, HighPriorityAlwaysFirst) {
  Rig rig(std::make_unique<SpScheduler>(), 2);
  // Backlog low-priority queue, then a high-priority packet arrives; it must
  // jump ahead of everything not yet in service.
  for (int i = 0; i < 5; ++i) rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
  rig.sim.run();
  ASSERT_EQ(rig.sink.packets.size(), 6u);
  // Packet 0 was already serializing; the high-priority one is second.
  EXPECT_EQ(rig.sink.packets[1]->flow, 0u);
}

TEST(DwrrScheduler, EqualQuantaGiveEqualBytes) {
  Rig rig(std::make_unique<DwrrScheduler>(std::vector<std::uint64_t>{1500, 1500}),
          2);
  for (int i = 0; i < 40; ++i) {
    rig.port->enqueue(make_test_packet(1000, 0, 0), 0);
    rig.port->enqueue(make_test_packet(500, 1, 1), 1);
  }
  rig.sim.run();
  const auto bytes = rig.delivered_bytes(2);
  EXPECT_EQ(bytes[0], 40'000u);
  EXPECT_EQ(bytes[1], 20'000u);
  // Check interleaving fairness over the first half: neither queue should be
  // more than one quantum ahead while both are backlogged.
  std::int64_t diff = 0;
  std::int64_t max_abs = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    const auto& p = rig.sink.packets[i];
    diff += (p->flow == 0) ? p->size : -static_cast<std::int64_t>(p->size);
    max_abs = std::max<std::int64_t>(max_abs, std::abs(diff));
  }
  EXPECT_LE(max_abs, 3'000);
}

TEST(DwrrScheduler, WeightedQuantaShareProportionally) {
  Rig rig(std::make_unique<DwrrScheduler>(
              std::vector<std::uint64_t>{3000, 1500}),
          2);
  for (int i = 0; i < 60; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
    rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  }
  // While both are backlogged, queue 0 gets ~2x the service. Look at the
  // first 30 departures: expect ~20 from queue 0.
  rig.sim.run();
  int q0 = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    if (rig.sink.packets[i]->flow == 0) ++q0;
  }
  EXPECT_NEAR(q0, 20, 2);
}

TEST(DwrrScheduler, DeficitCarriesOverForBigPackets) {
  // Quantum 1000 < packet 1500: queue should still drain (two rounds per
  // packet), never stall.
  Rig rig(std::make_unique<DwrrScheduler>(std::vector<std::uint64_t>{1000}),
          1);
  for (int i = 0; i < 3; ++i) rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
  rig.sim.run();
  EXPECT_EQ(rig.sink.packets.size(), 3u);
}

TEST(DwrrScheduler, EmptyQueueForfeitsDeficit) {
  auto sched = std::make_unique<DwrrScheduler>(
      std::vector<std::uint64_t>{1500, 1500});
  auto* raw = sched.get();
  Rig rig(std::move(sched), 2);
  rig.port->enqueue(make_test_packet(100, 0, 0), 0);
  rig.sim.run();
  // Queue 0 drained; re-activation must start from zero deficit (we can't
  // observe deficit directly, but service must still be fair afterwards).
  for (int i = 0; i < 20; ++i) {
    rig.port->enqueue(make_test_packet(1000, 0, 0), 0);
    rig.port->enqueue(make_test_packet(1000, 1, 1), 1);
  }
  rig.sim.run();
  const auto bytes = rig.delivered_bytes(2);
  EXPECT_EQ(bytes[0], 100u + 20'000u);
  EXPECT_EQ(bytes[1], 20'000u);
  (void)raw;
}

TEST(DwrrScheduler, RoundRateConvergesToFairShare) {
  // Two always-backlogged queues on a 1G port with equal quanta: each queue's
  // round-rate estimate must converge to ~500Mbps.
  auto sched = std::make_unique<DwrrScheduler>(
      std::vector<std::uint64_t>{1500, 1500});
  auto* raw = sched.get();
  Rig rig(std::move(sched), 2);
  for (int i = 0; i < 200; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
    rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  }
  rig.sim.run();
  const double r0 = raw->queue_rate_bps(0, rig.sim.now());
  EXPECT_NEAR(r0, 500e6, 25e6);
}

TEST(DwrrScheduler, SoleQueueEstimatesFullRate) {
  auto sched =
      std::make_unique<DwrrScheduler>(std::vector<std::uint64_t>{1500});
  auto* raw = sched.get();
  Rig rig(std::move(sched), 1);
  for (int i = 0; i < 100; ++i) rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
  rig.sim.run();
  EXPECT_NEAR(raw->queue_rate_bps(0, rig.sim.now()), 1e9, 5e7);
}

TEST(DwrrScheduler, RejectsBadConfig) {
  EXPECT_THROW(DwrrScheduler({}), std::invalid_argument);
  EXPECT_THROW(DwrrScheduler({0}), std::invalid_argument);
  EXPECT_THROW(DwrrScheduler({1500}, 1.5), std::invalid_argument);
}

TEST(WrrScheduler, PacketWeightedRotation) {
  Rig rig(std::make_unique<WrrScheduler>(std::vector<std::uint32_t>{2, 1}), 2);
  for (int i = 0; i < 30; ++i) {
    rig.port->enqueue(make_test_packet(1000, 0, 0), 0);
    rig.port->enqueue(make_test_packet(1000, 1, 1), 1);
  }
  rig.sim.run();
  // First 15 departures: queue 0 should have ~2/3.
  int q0 = 0;
  for (std::size_t i = 0; i < 15; ++i) {
    if (rig.sink.packets[i]->flow == 0) ++q0;
  }
  EXPECT_NEAR(q0, 10, 1);
}

TEST(WfqScheduler, EqualWeightsAlternateBytes) {
  Rig rig(std::make_unique<WfqScheduler>(std::vector<double>{1.0, 1.0}), 2);
  for (int i = 0; i < 40; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
    rig.port->enqueue(make_test_packet(500, 1, 1), 1);
  }
  rig.sim.run();
  // While both stay backlogged (queue 1 holds only 20KB; with equal weights
  // it drains once queue 0 has also received ~20KB, i.e. through departure
  // ~48), served bytes stay within about one max packet of each other.
  std::int64_t diff = 0;
  for (std::size_t i = 0; i < 48; ++i) {
    const auto& p = rig.sink.packets[i];
    diff += (p->flow == 0) ? p->size : -static_cast<std::int64_t>(p->size);
    EXPECT_LE(std::abs(diff), 3000) << "at departure " << i;
  }
}

TEST(WfqScheduler, WeightsGiveProportionalService) {
  Rig rig(std::make_unique<WfqScheduler>(std::vector<double>{3.0, 1.0}), 2);
  for (int i = 0; i < 80; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
    rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  }
  rig.sim.run();
  int q0 = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    if (rig.sink.packets[i]->flow == 0) ++q0;
  }
  EXPECT_NEAR(q0, 30, 2);
}

TEST(WfqScheduler, LateArrivalGetsImmediateShare) {
  // Queue 1 starts late; once it arrives it should not be starved by queue
  // 0's accumulated backlog (SCFQ resumes from current virtual time).
  Rig rig(std::make_unique<WfqScheduler>(std::vector<double>{1.0, 1.0}), 2);
  for (int i = 0; i < 50; ++i) rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
  rig.sim.schedule_at(100 * sim::kMicrosecond, [&] {
    for (int i = 0; i < 10; ++i) rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  });
  rig.sim.run();
  // Find the arrival point in the departure sequence; after it, service
  // should alternate rather than finishing queue 0 first.
  std::size_t first_q1 = 0;
  for (std::size_t i = 0; i < rig.sink.packets.size(); ++i) {
    if (rig.sink.packets[i]->flow == 1) {
      first_q1 = i;
      break;
    }
  }
  // 100us at 1G = ~8.3 packets; queue 1's first packet should depart within
  // a couple of packets after its arrival, not after queue 0's 50.
  EXPECT_LT(first_q1, 14u);
}

TEST(SpHybridScheduler, StrictQueueStarvesInner) {
  auto inner = std::make_unique<WfqScheduler>(std::vector<double>{1, 1, 1});
  Rig rig(std::make_unique<SpHybridScheduler>(1, std::move(inner)), 3);
  for (int i = 0; i < 10; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
    rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
    rig.port->enqueue(make_test_packet(1500, 2, 2), 2);
  }
  rig.sim.run();
  // All SP packets must depart before the last SP packet time; specifically
  // among the first 11 departures at least 10 are from queue 0.
  int sp = 0;
  for (std::size_t i = 0; i < 11; ++i) {
    if (rig.sink.packets[i]->flow == 0) ++sp;
  }
  EXPECT_GE(sp, 10);
}

TEST(SpHybridScheduler, InnerSharesFairlyWhenSpIdle) {
  auto inner = std::make_unique<DwrrScheduler>(
      std::vector<std::uint64_t>{1500, 1500, 1500});
  Rig rig(std::make_unique<SpHybridScheduler>(1, std::move(inner)), 3);
  for (int i = 0; i < 30; ++i) {
    rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
    rig.port->enqueue(make_test_packet(1500, 2, 2), 2);
  }
  rig.sim.run();
  const auto bytes = rig.delivered_bytes(3);
  EXPECT_EQ(bytes[1], bytes[2]);
}

TEST(SpHybridScheduler, RejectsBadConfig) {
  EXPECT_THROW(SpHybridScheduler(0, std::make_unique<SpScheduler>()),
               std::invalid_argument);
  EXPECT_THROW(SpHybridScheduler(1, nullptr), std::invalid_argument);
}

TEST(PifoScheduler, PriorityProgramActsAsStrictPriority) {
  Rig rig(std::make_unique<PifoScheduler>(PifoScheduler::priority_program()),
          2);
  for (int i = 0; i < 5; ++i) rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
  rig.sim.run();
  EXPECT_EQ(rig.sink.packets[1]->flow, 0u);
}

TEST(PifoScheduler, StfqProgramApproximatesFairness) {
  Rig rig(std::make_unique<PifoScheduler>(
              PifoScheduler::stfq_program({1.0, 1.0})),
          2);
  for (int i = 0; i < 40; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, 0), 0);
    rig.port->enqueue(make_test_packet(1500, 1, 1), 1);
  }
  rig.sim.run();
  int q0 = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    if (rig.sink.packets[i]->flow == 0) ++q0;
  }
  EXPECT_NEAR(q0, 20, 2);
}

// ---------------------------------------------------------------------------
// Property sweeps: random arrivals, invariants that must hold for any
// work-conserving fair scheduler.
// ---------------------------------------------------------------------------

struct SchedCase {
  const char* name;
  std::function<std::unique_ptr<net::Scheduler>(std::size_t nq)> make;
};

class SchedulerPropertyTest : public ::testing::TestWithParam<SchedCase> {};

TEST_P(SchedulerPropertyTest, WorkConservingUnderRandomArrivals) {
  const std::size_t nq = 4;
  Rig rig(GetParam().make(nq), nq);
  sim::Rng rng(99);
  std::uint64_t total_in = 0;
  // Burst arrivals at random times within 1ms; link 1G drains 125KB/ms.
  for (int i = 0; i < 60; ++i) {
    const auto t = static_cast<sim::Time>(rng.uniform(0, 1e6));
    const auto q = static_cast<std::size_t>(rng.uniform_int(0, nq - 1));
    const auto size = static_cast<std::uint32_t>(rng.uniform_int(100, 1500));
    total_in += size;
    rig.sim.schedule_at(t, [&rig, q, size] {
      rig.port->enqueue(make_test_packet(size, static_cast<std::uint8_t>(q), q),
                        q);
    });
  }
  rig.sim.run();
  // Everything delivered, nothing lost or duplicated.
  std::uint64_t total_out = 0;
  for (const auto& p : rig.sink.packets) total_out += p->size;
  EXPECT_EQ(total_in, total_out);
  // Work conservation: the link never idles while backlogged, so the total
  // drain time is at most last-arrival + total-bytes serialization.
  EXPECT_LE(rig.sim.now(),
            1 * sim::kMillisecond +
                sim::transmission_time(total_in, 1'000'000'000));
}

TEST_P(SchedulerPropertyTest, BackloggedQueuesShareWithinFactorTwo) {
  const std::size_t nq = 4;
  Rig rig(GetParam().make(nq), nq);
  // Keep all queues heavily backlogged with equal-size packets.
  for (int i = 0; i < 100; ++i) {
    for (std::size_t q = 0; q < nq; ++q) {
      rig.port->enqueue(
          make_test_packet(1000, static_cast<std::uint8_t>(q), q), q);
    }
  }
  rig.sim.run();
  // Inspect the first half of departures (all queues still backlogged).
  std::vector<int> counts(nq, 0);
  for (std::size_t i = 0; i < 200; ++i) ++counts[rig.sink.packets[i]->flow];
  for (std::size_t q = 0; q < nq; ++q) {
    EXPECT_GE(counts[q], 25) << "queue " << q << " starved";
    EXPECT_LE(counts[q], 100) << "queue " << q << " hogged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    FairSchedulers, SchedulerPropertyTest,
    ::testing::Values(
        SchedCase{"dwrr",
                  [](std::size_t nq) {
                    return std::make_unique<DwrrScheduler>(
                        std::vector<std::uint64_t>(nq, 1500));
                  }},
        SchedCase{"wrr",
                  [](std::size_t nq) {
                    return std::make_unique<WrrScheduler>(
                        std::vector<std::uint32_t>(nq, 1));
                  }},
        SchedCase{"wfq",
                  [](std::size_t nq) {
                    return std::make_unique<WfqScheduler>(
                        std::vector<double>(nq, 1.0));
                  }},
        SchedCase{"pifo_stfq",
                  [](std::size_t nq) {
                    return std::make_unique<PifoScheduler>(
                        PifoScheduler::stfq_program(
                            std::vector<double>(nq, 1.0)));
                  }}),
    [](const ::testing::TestParamInfo<SchedCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace tcn::sched
