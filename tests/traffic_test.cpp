// Tests for the open-loop traffic subsystem (src/traffic): the --traffic
// grammar and --traffic-grid cells, the arrival processes (Poisson, MMPP
// determinism, diurnal modulation), trace replay, flow-uid scoping, the
// engine wired through core::run_fct_experiment (tenant mixes, DSCP
// overrides, overload tripping the pending-event guard as a classified
// oom-guard failure), and the sweep/journal determinism contract extended
// to the traffic axis.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "runner/journal.hpp"
#include "runner/results.hpp"
#include "runner/sweep.hpp"
#include "sim/random.hpp"
#include "topo/network.hpp"
#include "traffic/arrival.hpp"
#include "traffic/flow_slab.hpp"
#include "traffic/spec.hpp"
#include "traffic/trace_replay.hpp"

namespace tcn {
namespace {

// ------------------------------------------------------------- grammar ----

TEST(TrafficSpec, ParsesPoissonTenant) {
  const auto spec = traffic::parse_traffic_spec("poisson:web:websearch:0.7");
  ASSERT_EQ(spec.tenants.size(), 1u);
  EXPECT_TRUE(spec.enabled());
  const auto& t = spec.tenants[0];
  EXPECT_EQ(t.name, "web");
  EXPECT_EQ(t.workload, workload::Kind::kWebSearch);
  EXPECT_EQ(t.share, 0.7);
  EXPECT_EQ(t.dscp, -1);
  EXPECT_EQ(t.arrival, traffic::TenantSpec::Arrival::kPoisson);
  // The canonical hyphenated workload name parses too.
  EXPECT_EQ(traffic::parse_traffic_spec("poisson:w:web-search:1")
                .tenants[0]
                .workload,
            workload::Kind::kWebSearch);
}

TEST(TrafficSpec, ParsesMmppTenantWithAllFields) {
  const auto spec =
      traffic::parse_traffic_spec("mmpp:batch:datamining:0.3:12:6:0.1:25");
  ASSERT_EQ(spec.tenants.size(), 1u);
  const auto& t = spec.tenants[0];
  EXPECT_EQ(t.name, "batch");
  EXPECT_EQ(t.workload, workload::Kind::kDataMining);
  EXPECT_EQ(t.share, 0.3);
  EXPECT_EQ(t.dscp, 12);
  EXPECT_EQ(t.arrival, traffic::TenantSpec::Arrival::kMmpp);
  EXPECT_EQ(t.burst_ratio, 6.0);
  EXPECT_EQ(t.duty, 0.1);
  EXPECT_EQ(t.dwell_ms, 25.0);
  // '-' keeps the scheme-default DSCP; trailing fields default.
  const auto d = traffic::parse_traffic_spec("mmpp:b:cache:1:-");
  EXPECT_EQ(d.tenants[0].dscp, -1);
  EXPECT_EQ(d.tenants[0].burst_ratio, 4.0);
}

TEST(TrafficSpec, ParsesDiurnalAndReplayAndMultipleClauses) {
  const auto spec = traffic::parse_traffic_spec(
      "poisson:a:cache:0.5;mmpp:b:hadoop:0.5;diurnal:60:0.5:1.5;"
      "replay:/tmp/trace.jsonl");
  EXPECT_EQ(spec.tenants.size(), 2u);
  EXPECT_TRUE(spec.diurnal.enabled());
  EXPECT_EQ(spec.diurnal.period_s, 60.0);
  EXPECT_EQ(spec.diurnal.min_factor, 0.5);
  EXPECT_EQ(spec.diurnal.peak_factor, 1.5);
  EXPECT_EQ(spec.replay_path, "/tmp/trace.jsonl");
  // A replay-only spec is a valid flow source.
  EXPECT_TRUE(traffic::parse_traffic_spec("replay:t.jsonl").enabled());
}

TEST(TrafficSpec, RejectsBadInput) {
  EXPECT_THROW(traffic::parse_traffic_spec(""), std::invalid_argument);
  EXPECT_THROW(traffic::parse_traffic_spec("bogus:x"), std::invalid_argument);
  EXPECT_THROW(traffic::parse_traffic_spec("poisson:w:nosuch:1"),
               std::invalid_argument);
  EXPECT_THROW(traffic::parse_traffic_spec("poisson:w:cache:0"),
               std::invalid_argument);  // share must be > 0
  EXPECT_THROW(traffic::parse_traffic_spec("poisson::cache:1"),
               std::invalid_argument);  // empty name
  EXPECT_THROW(traffic::parse_traffic_spec("poisson:w:cache:1:64"),
               std::invalid_argument);  // dscp out of range
  EXPECT_THROW(traffic::parse_traffic_spec("mmpp:w:cache:1:-:0.5"),
               std::invalid_argument);  // burst < 1
  EXPECT_THROW(traffic::parse_traffic_spec("mmpp:w:cache:1:-:4:1.5"),
               std::invalid_argument);  // duty out of (0,1)
  EXPECT_THROW(traffic::parse_traffic_spec("mmpp:w:cache:1:-:8:0.5"),
               std::invalid_argument);  // burst*duty > 1: idle rate < 0
  EXPECT_THROW(traffic::parse_traffic_spec("diurnal:60:0.5:1.5"),
               std::invalid_argument);  // diurnal alone: no flow source
  EXPECT_THROW(traffic::parse_traffic_spec(
                   "poisson:a:cache:1;diurnal:1:1:2;diurnal:2:1:2"),
               std::invalid_argument);  // duplicate diurnal
  EXPECT_THROW(
      traffic::parse_traffic_spec("replay:a.jsonl;replay:b.jsonl"),
      std::invalid_argument);  // duplicate replay
}

TEST(TrafficSpec, GridCellsAndNoneBaseline) {
  const auto cells =
      traffic::parse_traffic_grid("none|poisson:web:websearch:1");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].first, "none");
  EXPECT_FALSE(cells[0].second.enabled());
  EXPECT_EQ(cells[1].first, "poisson:web:websearch:1");
  EXPECT_TRUE(cells[1].second.enabled());
  // An empty cell is the closed-loop baseline, same as the literal "none".
  EXPECT_FALSE(traffic::parse_traffic_grid("|poisson:w:cache:1")[0]
                   .second.enabled());
  EXPECT_THROW(traffic::parse_traffic_grid(""), std::invalid_argument);
  EXPECT_THROW(traffic::parse_traffic_grid("none|bogus:x"),
               std::invalid_argument);
}

// ------------------------------------------------------------ arrivals ----

TEST(Diurnal, RaisedCosineHitsMinAndPeak) {
  traffic::DiurnalSchedule d;
  d.period = sim::from_seconds(10.0);
  d.min_factor = 0.5;
  d.peak_factor = 1.5;
  EXPECT_NEAR(d.factor(0), 0.5, 1e-12);
  EXPECT_NEAR(d.factor(sim::from_seconds(5.0)), 1.5, 1e-12);
  EXPECT_NEAR(d.factor(sim::from_seconds(2.5)), 1.0, 1e-12);  // midpoint
  EXPECT_NEAR(d.factor(sim::from_seconds(10.0)), 0.5, 1e-12);  // periodic
  // Disabled schedule is the identity.
  traffic::DiurnalSchedule off;
  EXPECT_EQ(off.factor(123456789), 1.0);
}

TEST(Poisson, MeanGapMatchesRateAndScale) {
  traffic::PoissonArrivals arr(1000.0);  // 1000 flows/s = 1ms mean gap
  sim::Rng rng(42);
  double sum_ns = 0.0;
  sim::Time now = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const sim::Time next = arr.next(now, 1.0, rng);
    ASSERT_GT(next, now);  // strictly increasing
    sum_ns += static_cast<double>(next - now);
    now = next;
  }
  EXPECT_NEAR(sum_ns / n, 1e6, 5e4);  // 1 ms +- 5%
  // Doubling the scale halves the mean gap.
  sim::Rng rng2(42);
  double sum2 = 0.0;
  now = 0;
  for (int i = 0; i < n; ++i) {
    const sim::Time next = arr.next(now, 2.0, rng2);
    sum2 += static_cast<double>(next - now);
    now = next;
  }
  EXPECT_NEAR(sum2 / n, 5e5, 2.5e4);
}

TEST(Mmpp, DeterministicUnderFixedSeed) {
  traffic::MmppArrivals::Params p;
  p.flows_per_sec = 5000.0;
  p.burst_ratio = 4.0;
  p.duty = 0.25;
  p.dwell_burst_s = 0.005;
  const auto draw = [&](std::uint64_t seed) {
    traffic::MmppArrivals arr(p);
    sim::Rng rng(seed);
    std::vector<sim::Time> times;
    sim::Time now = 0;
    for (int i = 0; i < 5000; ++i) {
      now = arr.next(now, 1.0, rng);
      times.push_back(now);
    }
    return std::make_pair(times, arr.transitions());
  };
  const auto a = draw(7);
  const auto b = draw(7);
  EXPECT_EQ(a.first, b.first);  // identical arrival sequence
  EXPECT_EQ(a.second, b.second);  // identical state-transition count
  EXPECT_GT(a.second, 0u);  // the chain actually modulates
  const auto c = draw(8);
  EXPECT_NE(a.first, c.first);  // a different seed draws differently
}

TEST(Mmpp, LongRunRateMatchesAverage) {
  traffic::MmppArrivals::Params p;
  p.flows_per_sec = 2000.0;
  p.burst_ratio = 4.0;
  p.duty = 0.25;
  p.dwell_burst_s = 0.002;
  traffic::MmppArrivals arr(p);
  sim::Rng rng(3);
  sim::Time now = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) now = arr.next(now, 1.0, rng);
  const double rate = n / sim::to_seconds(now);
  EXPECT_NEAR(rate, 2000.0, 150.0);  // long-run average preserved
}

// ------------------------------------------------------------ flow uids ----

TEST(FlowUid, ScopeRestartsAndNests) {
  traffic::FlowUidScope outer;
  EXPECT_EQ(traffic::FlowUidScope::current(), &outer);
  EXPECT_EQ(outer.next(), 1u);
  EXPECT_EQ(outer.next(), 2u);
  {
    traffic::FlowUidScope inner;
    EXPECT_EQ(traffic::FlowUidScope::current(), &inner);
    EXPECT_EQ(inner.next(), 1u);  // inner shadows outer
  }
  EXPECT_EQ(traffic::FlowUidScope::current(), &outer);
  EXPECT_EQ(outer.next(), 3u);  // outer restored
  EXPECT_EQ(outer.issued(), 3u);
}

// --------------------------------------------------------- trace replay ----

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

TEST(TraceReplay, LoadsAndSortsJsonl) {
  const std::string path = temp_path("trace_ok.jsonl");
  write_file(path,
             "{\"t_s\":0.002,\"src\":2,\"dst\":0,\"size\":4000}\n"
             "\n"
             "{\"t_s\":0.001,\"src\":1,\"dst\":0,\"size\":2000,"
             "\"service\":3,\"dscp\":9}\n");
  const auto flows = traffic::load_trace(path);
  ASSERT_EQ(flows.size(), 2u);
  // Stable-sorted by arrival time.
  EXPECT_EQ(flows[0].at, sim::from_seconds(0.001));
  EXPECT_EQ(flows[0].src, 1u);
  EXPECT_EQ(flows[0].size, 2000u);
  EXPECT_EQ(flows[0].service, 3u);
  EXPECT_EQ(flows[0].dscp, 9);
  EXPECT_EQ(flows[1].src, 2u);
  EXPECT_EQ(flows[1].service, 0u);  // defaults
  EXPECT_EQ(flows[1].dscp, -1);
  std::remove(path.c_str());
}

TEST(TraceReplay, ErrorsNameThePathAndLine) {
  const std::string path = temp_path("trace_bad.jsonl");
  write_file(path,
             "{\"t_s\":0,\"src\":0,\"dst\":0,\"size\":100}\n");  // src == dst
  try {
    traffic::load_trace(path);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find(":1"), std::string::npos) << what;
  }
  write_file(path, "{\"t_s\":0,\"src\":0,\"dst\":1}\n");  // missing size
  EXPECT_THROW(traffic::load_trace(path), std::invalid_argument);
  // A missing file is an I/O error, not a malformed-spec error.
  EXPECT_THROW(traffic::load_trace(temp_path("no_such_trace.jsonl")),
               std::runtime_error);
  std::remove(path.c_str());
}

// ----------------------------------------------------- engine end-to-end ----

core::FctExperiment open_loop_cfg(const std::string& traffic) {
  core::FctExperiment cfg;
  cfg.scheme = core::Scheme::kTcn;
  cfg.params.rtt_lambda = 250 * sim::kMicrosecond;
  cfg.params.red_threshold_bytes = 32'000;
  cfg.sched.kind = core::SchedKind::kDwrr;
  cfg.load = 0.5;
  cfg.num_flows = 300;
  cfg.num_services = 2;
  cfg.service_workloads = {workload::Kind::kCache};
  cfg.star.num_hosts = 5;
  cfg.star.host_delay = topo::star_host_delay_for_rtt(
      250 * sim::kMicrosecond, cfg.star.link_prop);
  cfg.seed = 7;
  cfg.traffic = traffic::parse_traffic_spec(traffic);
  return cfg;
}

TEST(TrafficEngine, OpenLoopRunCompletesAndRecyclesSlots) {
  const auto cfg = open_loop_cfg("poisson:web:cache:1");
  const auto report = core::run_fct_experiment(cfg);
  EXPECT_TRUE(report.traffic_open_loop);
  EXPECT_EQ(report.traffic_arrivals, 300u);
  EXPECT_EQ(report.flows_started, 300u);
  EXPECT_EQ(report.flows_completed, 300u);
  EXPECT_EQ(report.summary.count, 300u);
  EXPECT_EQ(report.traffic_replayed, 0u);
  EXPECT_GE(report.traffic_active_peak, 1u);
  // The slab working set is the peak concurrency, not the flow count.
  EXPECT_EQ(report.slab_fresh, report.traffic_active_peak);
  EXPECT_EQ(report.slab_fresh + report.slab_reused, 300u);
  EXPECT_EQ(report.slab_recycled, 300u);
  // Every offered byte was achieved (all flows completed).
  EXPECT_EQ(report.traffic_offered_bytes, report.traffic_achieved_bytes);
  EXPECT_GT(report.traffic_offered_bytes, 0u);
}

TEST(TrafficEngine, TwoTenantsWithDscpAndDiurnal) {
  auto cfg = open_loop_cfg(
      "poisson:web:cache:0.7:3;mmpp:batch:cache:0.3:9;diurnal:1:0.5:1.5");
  cfg.collect_metrics = true;
  const auto report = core::run_fct_experiment(cfg);
  EXPECT_EQ(report.flows_completed, report.traffic_arrivals);
  EXPECT_GE(report.traffic_arrivals, 300u);  // both chains may land one extra
  auto counter = [&](std::string_view name) -> std::uint64_t {
    for (const auto& c : report.metrics.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };
  const auto web = counter("traffic/arrivals.web");
  const auto batch = counter("traffic/arrivals.batch");
  EXPECT_GT(web, 0u);
  EXPECT_GT(batch, 0u);
  EXPECT_EQ(web + batch, counter("traffic/arrivals"));
  // 70/30 share split, within generous sampling noise.
  const double frac =
      static_cast<double>(web) / static_cast<double>(web + batch);
  EXPECT_GT(frac, 0.5);
  EXPECT_LT(frac, 0.9);
  EXPECT_EQ(counter("traffic/completed"), report.flows_completed);
  EXPECT_EQ(counter("traffic/slab_reuses"), report.slab_reused);
}

TEST(TrafficEngine, ReplaysTraceAlongsideTenants) {
  const std::string path = temp_path("trace_engine.jsonl");
  std::string text;
  for (int i = 0; i < 10; ++i) {
    text += "{\"t_s\":" + std::to_string(i * 0.001) +
            ",\"src\":" + std::to_string(1 + i % 4) +
            ",\"dst\":0,\"size\":3000}\n";
  }
  write_file(path, text);
  const auto cfg = open_loop_cfg("poisson:web:cache:1;replay:" + path);
  const auto report = core::run_fct_experiment(cfg);
  EXPECT_EQ(report.traffic_replayed, 10u);
  // num_flows caps tenant arrivals only; the trace rides on top.
  EXPECT_EQ(report.traffic_arrivals, 310u);
  EXPECT_EQ(report.flows_completed, 310u);
  std::remove(path.c_str());

  // A trace referencing hosts outside the topology fails before the run.
  write_file(path, "{\"t_s\":0,\"src\":99,\"dst\":0,\"size\":100}\n");
  auto bad = open_loop_cfg("replay:" + path);
  EXPECT_THROW(core::run_fct_experiment(bad), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(TrafficEngine, OverloadTripsPendingGuardAsOomFailure) {
  // Load >> 1: arrivals outpace completions, the active population grows
  // without bound, and the run must die as a *classified* oom-guard
  // failure (satellite: overload guard), not an actual OOM.
  auto cfg = open_loop_cfg("poisson:web:cache:1");
  cfg.load = 50.0;
  cfg.num_flows = 0;  // unlimited
  cfg.pending_event_budget = 3000;
  try {
    core::run_fct_experiment(cfg);
    FAIL() << "expected ExperimentError";
  } catch (const core::ExperimentError& e) {
    EXPECT_EQ(e.kind(), core::RunErrorKind::kOomGuard);
    EXPECT_NE(std::string(e.what()).find("pending"), std::string::npos);
  }
}

TEST(TrafficEngine, ClosedLoopGeneratorsStillRejectOverload) {
  // The load > 1 allowance is open-loop only.
  auto cfg = open_loop_cfg("poisson:web:cache:1");
  cfg.traffic = traffic::TrafficSpec{};  // back to closed loop
  cfg.load = 1.5;
  EXPECT_THROW(core::run_fct_experiment(cfg), std::invalid_argument);
}

// --------------------------------------------------- sweep + determinism ----

runner::SweepSpec traffic_sweep_spec() {
  runner::SweepSpec spec;
  spec.name = "traffic-unit";
  spec.base = open_loop_cfg("poisson:web:cache:1");
  spec.base.traffic = traffic::TrafficSpec{};  // axis supplies the cells
  spec.base.num_flows = 150;
  spec.schemes = {{"TCN", core::Scheme::kTcn}};
  spec.loads = {0.4, 0.6};
  spec.traffics = traffic::parse_traffic_grid(
      "none|poisson:web:cache:1|mmpp:batch:cache:1:-:4:0.25:5");
  return spec;
}

TEST(TrafficSweep, GridIsInnermostAxis) {
  const auto jobs = traffic_sweep_spec().expand();
  ASSERT_EQ(jobs.size(), 2u * 3u);
  EXPECT_EQ(jobs[0].traffic_label, "none");
  EXPECT_FALSE(jobs[0].cfg.traffic.enabled());
  EXPECT_EQ(jobs[1].traffic_label, "poisson:web:cache:1");
  EXPECT_TRUE(jobs[1].cfg.traffic.enabled());
  EXPECT_EQ(jobs[2].traffic_label, "mmpp:batch:cache:1:-:4:0.25:5");
  // Adjacent traffic cells share every other grid coordinate.
  EXPECT_EQ(jobs[1].cfg.load, jobs[0].cfg.load);
  EXPECT_EQ(jobs[3].cfg.load, 0.6);
}

TEST(TrafficSweep, ByteIdenticalAcrossJobCounts) {
  const auto spec = traffic_sweep_spec();
  runner::SweepOptions serial;
  serial.jobs = 1;
  const auto a = runner::run_sweep(spec, serial);
  runner::SweepOptions parallel;
  parallel.jobs = 4;
  const auto b = runner::run_sweep(spec, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Open-loop state (flow uids, slab slots, tenant RNGs) is per-run scoped,
  // so threads must not leak into results -- bit-exact, like the closed loop.
  EXPECT_EQ(runner::to_json(a, "traffic-unit", /*include_timing=*/false),
            runner::to_json(b, "traffic-unit", /*include_timing=*/false));
  // The open-loop cells carry their telemetry; the "none" cells stay clean.
  EXPECT_FALSE(a.runs[0].report.traffic_open_loop);
  EXPECT_TRUE(a.runs[1].report.traffic_open_loop);
  EXPECT_EQ(a.runs[1].report.slab_recycled, a.runs[1].report.traffic_arrivals);
}

TEST(TrafficSweep, JournalRoundTripsTrafficCells) {
  const std::string path = temp_path("traffic_journal.jsonl");
  const auto spec = traffic_sweep_spec();
  runner::SweepOptions opt;
  opt.jobs = 2;
  opt.journal_out = path;
  const auto ref = runner::run_sweep(spec, opt);
  ASSERT_TRUE(ref.ok());
  const auto ref_json =
      runner::to_json(ref, "traffic-unit", /*include_timing=*/false);

  // Resume from the complete journal: every record restores (traffic label
  // and counters included) and the aggregate is byte-identical.
  auto data = runner::load_journal(path);
  EXPECT_EQ(data.entries.size(), ref.runs.size());
  runner::SweepOptions resume;
  resume.jobs = 4;
  resume.journal_out = path;
  resume.resume = &data;
  const auto res = runner::run_sweep(spec, resume);
  EXPECT_EQ(res.restored, ref.runs.size());
  EXPECT_EQ(runner::to_json(res, "traffic-unit", /*include_timing=*/false),
            ref_json);
  for (const auto& r : res.runs) {
    EXPECT_EQ(r.job.traffic_label.empty(), false);
    if (r.report.traffic_open_loop) {
      EXPECT_GT(r.report.traffic_arrivals, 0u);
      EXPECT_EQ(r.report.slab_recycled, r.report.traffic_arrivals);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tcn
