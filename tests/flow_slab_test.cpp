// FlowSlab memory-model tests.
//
// Like packet_pool_test, this binary overrides global operator new/delete
// with counting wrappers -- here counting frees too -- so the open-loop
// memory claim is asserted directly: steady-state flow churn through the
// slab keeps the number of *live* heap allocations flat. Per-flow gross
// allocations still happen (TcpSender/TcpSink own deques, maps and
// callbacks), but every one is returned at recycle, so lifetime flow count
// never shows up in the heap footprint -- only peak concurrency does.
// The override is per-binary, which is why these tests live in their own
// test target.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "traffic/flow_slab.hpp"
#include "transport/tcp.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return ::operator new(n); }

// See packet_pool_test.cpp: GCC's -Wmismatched-new-delete heuristic
// misfires on replacement deallocation functions; the malloc/free pair here
// does match the replacement operator new above.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept {
  if (p != nullptr) g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
#pragma GCC diagnostic pop

namespace tcn {
namespace {

/// Heap allocations currently live (allocated and not yet freed).
std::int64_t live_allocs() {
  return static_cast<std::int64_t>(g_allocs.load(std::memory_order_relaxed)) -
         static_cast<std::int64_t>(g_frees.load(std::memory_order_relaxed));
}

// ------------------------------------------------------------ slab basics ----

TEST(FlowSlab, AcquireRecycleReuseCounters) {
  traffic::FlowSlab slab;
  const auto a = slab.acquire();
  const auto b = slab.acquire();
  EXPECT_NE(a, b);
  EXPECT_EQ(slab.fresh_allocs(), 2u);
  EXPECT_EQ(slab.live(), 2u);
  EXPECT_EQ(slab.slots(), 2u);

  slab.recycle(a);
  EXPECT_EQ(slab.recycles(), 1u);
  EXPECT_EQ(slab.live(), 1u);
  EXPECT_EQ(slab.free_size(), 1u);

  // The recycled slot comes back (LIFO) before any fresh growth.
  const auto c = slab.acquire();
  EXPECT_EQ(c, a);
  EXPECT_EQ(slab.reuses(), 1u);
  EXPECT_EQ(slab.fresh_allocs(), 2u);
  EXPECT_EQ(slab.slots(), 2u);
}

TEST(FlowSlab, LifoReuseOrder) {
  traffic::FlowSlab slab;
  const auto a = slab.acquire();
  const auto b = slab.acquire();
  slab.recycle(a);
  slab.recycle(b);
  // Most recently recycled first: cache-warm reuse order.
  EXPECT_EQ(slab.acquire(), b);
  EXPECT_EQ(slab.acquire(), a);
}

TEST(FlowSlab, RecycleClearsSlotState) {
  sim::Simulator s;
  net::PortConfig nic;
  net::Host src(s, "h0", 1, nic);
  net::Host dst(s, "h1", 2, nic);
  traffic::FlowSlab slab;
  transport::TcpConfig tcp;

  const auto idx = slab.acquire();
  auto& slot = slab.at(idx);
  slot.flow_id = 42;
  slot.size = 1000;
  slot.service = 3;
  slot.src_addr = src.address();
  slot.dst_addr = dst.address();
  slot.sport = slab.checkout_port(src);
  slot.dport = slab.checkout_port(dst);
  slot.sink.emplace(dst, slot.dport, 0);
  slot.sender.emplace(src, dst.address(), slot.sport, slot.dport, 42, tcp,
                      transport::constant_dscp(0), 0, nullptr);
  slab.recycle(idx);

  const auto again = slab.acquire();
  ASSERT_EQ(again, idx);
  const auto& clean = slab.at(again);
  EXPECT_FALSE(clean.sender.has_value());
  EXPECT_FALSE(clean.sink.has_value());
  EXPECT_EQ(clean.flow_id, 0u);
  EXPECT_EQ(clean.size, 0u);
  EXPECT_EQ(clean.service, 0u);
  EXPECT_EQ(clean.sport, 0u);
  EXPECT_EQ(clean.dport, 0u);
}

TEST(FlowSlab, DoubleRecycleIsDetectedAndDropped) {
  traffic::FlowSlab slab;
  const auto a = slab.acquire();
  slab.recycle(a);
  ASSERT_EQ(slab.free_size(), 1u);
  // Misuse: recycling a slot already on the free list must not
  // double-insert (which would hand the same slot to two flows later).
  slab.recycle(a);
  EXPECT_EQ(slab.double_recycles(), 1u);
  EXPECT_EQ(slab.recycles(), 1u);
  EXPECT_EQ(slab.free_size(), 1u);
  EXPECT_EQ(slab.acquire(), a);  // still functional
}

TEST(FlowSlab, PortsRecycleThroughPerHostFreeLists) {
  sim::Simulator s;
  net::PortConfig nic;
  net::Host h(s, "h0", 1, nic);
  traffic::FlowSlab slab;

  const auto idx = slab.acquire();
  auto& slot = slab.at(idx);
  slot.src_addr = h.address();
  const std::uint16_t port = slab.checkout_port(h);
  slot.sport = port;
  slab.recycle(idx);

  // The same port number comes back instead of bumping the host's counter,
  // so a host's port footprint is bounded by peak concurrency -- not by the
  // lifetime flow count (Host::allocate_port wraps at 64k).
  EXPECT_EQ(slab.checkout_port(h), port);
  // A different host draws from its own pool.
  net::Host other(s, "h1", 2, nic);
  EXPECT_NE(slab.checkout_port(other), 0u);
}

TEST(FlowSlab, ScopesNestAndRestore) {
  EXPECT_EQ(traffic::FlowSlab::current(), nullptr);
  traffic::FlowSlab outer;
  traffic::FlowSlab::Scope outer_scope(outer);
  EXPECT_EQ(traffic::FlowSlab::current(), &outer);
  {
    traffic::FlowSlab inner;
    traffic::FlowSlab::Scope inner_scope(inner);
    EXPECT_EQ(traffic::FlowSlab::current(), &inner);
  }
  EXPECT_EQ(traffic::FlowSlab::current(), &outer);
}

// ------------------------------------------------- bounded-heap-growth proof ----

TEST(FlowSlab, SteadyStateChurnKeepsLiveHeapFlat) {
  // The open-loop acceptance claim, asserted on the allocator itself: churn
  // whole flows (TcpSink + TcpSender constructed into slab slots, then
  // recycled) and after warmup the number of live heap allocations is
  // *identical* at every batch boundary. Gross allocation traffic per flow
  // is nonzero by design -- the TCP objects own real state -- but all of it
  // returns at recycle, so lifetime flow count never accumulates in the
  // heap. This is the counting-allocator equivalent of "10M flows in
  // bounded memory".
  sim::Simulator s;
  net::PortConfig nic;
  net::Host src(s, "h0", 1, nic);
  net::Host dst(s, "h1", 2, nic);
  traffic::FlowSlab slab;
  traffic::FlowSlab::Scope scope(slab);
  transport::TcpConfig tcp;

  constexpr int kInFlight = 16;
  constexpr int kBatches = 8;
  std::vector<std::uint32_t> held;
  held.reserve(kInFlight);

  std::uint64_t flow_id = 0;
  auto churn_batch = [&] {
    for (int j = 0; j < kInFlight; ++j) {
      const auto idx = slab.acquire();
      auto& slot = slab.at(idx);
      slot.flow_id = ++flow_id;
      slot.size = 10'000;
      slot.src_addr = src.address();
      slot.dst_addr = dst.address();
      slot.sport = slab.checkout_port(src);
      slot.dport = slab.checkout_port(dst);
      slot.sink.emplace(dst, slot.dport, 0);
      slot.sender.emplace(src, dst.address(), slot.sport, slot.dport,
                          slot.flow_id, tcp, transport::constant_dscp(0), 0,
                          nullptr);
      held.push_back(idx);
    }
    for (const auto idx : held) slab.recycle(idx);
    held.clear();
  };

  // Warmup: slab growth, port free-list growth, hash-map rehash, vector
  // capacity -- all one-time costs.
  churn_batch();
  churn_batch();

  const std::int64_t baseline = live_allocs();
  for (int b = 0; b < kBatches; ++b) {
    churn_batch();
    EXPECT_EQ(live_allocs(), baseline) << "batch " << b;
  }

  // Slab-side view agrees: the working set stayed at peak concurrency while
  // lifetime flows kept climbing.
  EXPECT_EQ(slab.slots(), static_cast<std::size_t>(kInFlight));
  EXPECT_EQ(slab.fresh_allocs(), static_cast<std::uint64_t>(kInFlight));
  EXPECT_EQ(slab.reuses() + slab.fresh_allocs(),
            static_cast<std::uint64_t>(kInFlight * (kBatches + 2)));
  EXPECT_EQ(slab.live(), 0u);
}

}  // namespace
}  // namespace tcn
