// Fault-injection and invariant-checking tests: link outages (blackholing at
// enqueue, on the wire, and mid-propagation), Bernoulli and Gilbert-Elliott
// loss models, buffer squeezes, the --faults grammar, target resolution over
// built topologies, ECMP steering around dead links, TCP riding out loss and
// blackhole windows on its capped RTO backoff, and the full leaf-spine
// acceptance scenario with the InvariantChecker watching every port.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "net/fifo_scheduler.hpp"
#include "net/host.hpp"
#include "net/invariant.hpp"
#include "net/marker.hpp"
#include "net/packet.hpp"
#include "net/port.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "topo/network.hpp"
#include "transport/flow.hpp"
#include "test_util.hpp"

namespace tcn::fault {
namespace {

using test::CaptureNode;
using test::make_test_packet;

// ---------------------------------------------------------------- glob match

TEST(GlobMatch, LiteralAndWildcards) {
  EXPECT_TRUE(glob_match("leaf0.p1", "leaf0.p1"));
  EXPECT_FALSE(glob_match("leaf0.p1", "leaf0.p2"));
  EXPECT_TRUE(glob_match("*", "anything.at.all"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("leaf*", "leaf11.p3"));
  EXPECT_FALSE(glob_match("leaf*", "spine0.p1"));
  EXPECT_TRUE(glob_match("*.nic", "h7.nic"));
  EXPECT_FALSE(glob_match("*.nic", "leaf0.p1"));
  EXPECT_TRUE(glob_match("h?.nic", "h7.nic"));
  EXPECT_FALSE(glob_match("h?.nic", "h12.nic"));
}

TEST(GlobMatch, StarBacktracks) {
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
  EXPECT_TRUE(glob_match("a*b*c", "abbc"));  // first b is not the right one
  EXPECT_FALSE(glob_match("a*b*c", "aXXbYY"));
  EXPECT_TRUE(glob_match("**", "x"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));
}

// ------------------------------------------------------------ spec grammar

TEST(ParseFaults, LinkDown) {
  const FaultPlan plan = parse_fault_specs("linkdown:leaf0-spine0:100:50");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].kind, FaultSpec::Kind::kLinkDown);
  EXPECT_EQ(plan[0].target, "leaf0-spine0");
  EXPECT_EQ(plan[0].start, 100 * sim::kMillisecond);
  EXPECT_EQ(plan[0].duration, 50 * sim::kMillisecond);
}

TEST(ParseFaults, LossDefaultsToWholeRun) {
  const FaultPlan plan = parse_fault_specs("loss:leaf*:0.01");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].kind, FaultSpec::Kind::kBernoulliLoss);
  EXPECT_DOUBLE_EQ(plan[0].rate, 0.01);
  EXPECT_EQ(plan[0].start, 0);
  EXPECT_EQ(plan[0].duration, 0);
}

TEST(ParseFaults, GelossVariants) {
  FaultPlan plan = parse_fault_specs("geloss:*:0.02");
  EXPECT_DOUBLE_EQ(plan[0].rate, 0.02);
  EXPECT_DOUBLE_EQ(plan[0].burst_pkts, 10.0);  // default burst

  plan = parse_fault_specs("geloss:*:0.02:25");
  EXPECT_DOUBLE_EQ(plan[0].burst_pkts, 25.0);

  plan = parse_fault_specs("geloss:*:0.02:25:1.5:3");
  EXPECT_EQ(plan[0].start, static_cast<sim::Time>(1.5 * sim::kMillisecond));
  EXPECT_EQ(plan[0].duration, 3 * sim::kMillisecond);
}

TEST(ParseFaults, SqueezeAndComposition) {
  const FaultPlan plan = parse_fault_specs(
      "squeeze:sw0.p1:30000:1:2;geloss:leaf*:0.01;linkdown:a-b:0:5");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].kind, FaultSpec::Kind::kBufferSqueeze);
  EXPECT_EQ(plan[0].buffer_bytes, 30'000u);
  EXPECT_EQ(plan[1].kind, FaultSpec::Kind::kGilbertElliott);
  EXPECT_EQ(plan[2].kind, FaultSpec::Kind::kLinkDown);
}

TEST(ParseFaults, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_specs(""), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("frobnicate:x:1:2"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("linkdown:x:1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("linkdown:x:1:2:3"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("loss:x:not-a-number"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("loss:x:0.1:5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("geloss:x:0.1:10:5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("linkdown:x:-1:2"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("squeeze:x:0:1:2"), std::invalid_argument);
}

// ------------------------------------------------------------- loss models

TEST(LossModels, BernoulliRejectsBadProbability) {
  EXPECT_THROW(BernoulliLoss(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(BernoulliLoss(1.0, 1), std::invalid_argument);
}

TEST(LossModels, GilbertElliottMatchesTargetRateAndBurst) {
  const auto params = GilbertElliottLoss::from_loss_rate(0.1, 10.0);
  GilbertElliottLoss model(params, 42);
  const auto pkt = make_test_packet(1000);

  std::uint64_t drops = 0, bursts = 0;
  bool in_burst = false;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const bool drop = model.should_drop(*pkt, 0);
    drops += drop ? 1 : 0;
    if (drop && !in_burst) ++bursts;
    in_burst = drop;
  }
  // Stationary loss rate ~= 10%, mean burst ~= 10 packets.
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.1, 0.01);
  ASSERT_GT(bursts, 0u);
  EXPECT_NEAR(static_cast<double>(drops) / static_cast<double>(bursts), 10.0,
              2.0);
}

TEST(LossModels, GilbertElliottZeroRateNeverDrops) {
  GilbertElliottLoss model(GilbertElliottLoss::from_loss_rate(0.0, 10.0), 1);
  const auto pkt = make_test_packet(1000);
  for (int i = 0; i < 10'000; ++i) EXPECT_FALSE(model.should_drop(*pkt, 0));
}

TEST(LossModels, GilbertElliottRejectsBadParams) {
  EXPECT_THROW(GilbertElliottLoss::from_loss_rate(1.0, 10.0),
               std::invalid_argument);
  EXPECT_THROW(GilbertElliottLoss::from_loss_rate(0.1, 0.5),
               std::invalid_argument);
  GilbertElliottLoss::Params p;
  p.p_good_to_bad = 1.5;
  EXPECT_THROW(GilbertElliottLoss(p, 1), std::invalid_argument);
}

// ---------------------------------------------------- port fault semantics

/// One port into a capturing peer: 1Gbps, so 1500B serializes in 12us.
struct PortRig {
  explicit PortRig(net::PortConfig cfg = {}) {
    port = std::make_unique<net::Port>(sim, "p0", cfg,
                                       std::make_unique<net::FifoScheduler>(),
                                       std::make_unique<net::NullMarker>());
    port->connect(&peer, 0);
  }
  sim::Simulator sim;
  CaptureNode peer;
  std::unique_ptr<net::Port> port;
};

TEST(PortFaults, DownedLinkBlackholesNewEnqueues) {
  PortRig rig;
  rig.port->set_link_up(false);
  for (int i = 0; i < 3; ++i) rig.port->enqueue(make_test_packet(1500), 0);
  rig.sim.run();
  EXPECT_TRUE(rig.peer.packets.empty());
  EXPECT_EQ(rig.port->counters().fault_drops, 3u);
  EXPECT_EQ(rig.port->counters().fault_drop_bytes, 4500u);
  EXPECT_EQ(rig.port->counters().drops, 0u);  // not buffer drops
  EXPECT_EQ(rig.port->counters().enq_packets, 0u);
  EXPECT_EQ(rig.port->total_bytes(), 0u);
}

TEST(PortFaults, DownedLinkBlackholesPacketOnWire) {
  PortRig rig;
  rig.port->enqueue(make_test_packet(1500), 0);
  // Serialization ends at 12us; kill the link mid-serialization.
  rig.sim.schedule_at(6 * sim::kMicrosecond,
                      [&] { rig.port->set_link_up(false); });
  rig.sim.run();
  EXPECT_TRUE(rig.peer.packets.empty());
  EXPECT_EQ(rig.port->counters().fault_drops, 1u);
  EXPECT_EQ(rig.port->counters().tx_packets, 1u);  // it left the buffer
  EXPECT_TRUE(net::port_ledger_balanced(*rig.port));
}

TEST(PortFaults, DownedLinkBlackholesDuringPropagation) {
  net::PortConfig cfg;
  cfg.prop_delay = 10 * sim::kMicrosecond;
  PortRig rig(cfg);
  rig.port->enqueue(make_test_packet(1500), 0);
  // Serialization done at 12us, delivery at 22us; down the link in between.
  rig.sim.schedule_at(15 * sim::kMicrosecond,
                      [&] { rig.port->set_link_up(false); });
  rig.sim.run();
  EXPECT_TRUE(rig.peer.packets.empty());
  EXPECT_EQ(rig.port->counters().fault_drops, 1u);
}

TEST(PortFaults, BufferedPacketsSurviveOutageAndResumeOnLinkUp) {
  PortRig rig;
  for (int i = 0; i < 5; ++i) rig.port->enqueue(make_test_packet(1500), 0);
  // First packet is on the wire when the link dies at 1us; the other four
  // stay resident and drain after the link heals at 100us.
  rig.sim.schedule_at(1 * sim::kMicrosecond,
                      [&] { rig.port->set_link_up(false); });
  rig.sim.schedule_at(100 * sim::kMicrosecond,
                      [&] { rig.port->set_link_up(true); });
  rig.sim.run();
  EXPECT_EQ(rig.port->counters().fault_drops, 1u);
  EXPECT_EQ(rig.peer.packets.size(), 4u);
  EXPECT_EQ(rig.port->total_bytes(), 0u);
  EXPECT_TRUE(net::port_ledger_balanced(*rig.port));
  // Resumed transmissions happen strictly after the link-up instant.
  EXPECT_GT(rig.sim.now(), 100 * sim::kMicrosecond);
}

TEST(PortFaults, BernoulliLossDropsRequestedFraction) {
  PortRig rig;
  BernoulliLoss loss(0.3, 7);
  rig.port->set_loss_model(&loss);
  const int n = 2000;
  for (int i = 0; i < n; ++i) rig.port->enqueue(make_test_packet(100), 0);
  rig.sim.run();
  const auto& c = rig.port->counters();
  EXPECT_EQ(rig.peer.packets.size() + c.fault_drops, static_cast<size_t>(n));
  EXPECT_NEAR(static_cast<double>(c.fault_drops) / n, 0.3, 0.05);
  EXPECT_EQ(c.drops, 0u);
  EXPECT_TRUE(net::port_ledger_balanced(*rig.port));
}

TEST(PortFaults, LossIsDeterministicForSameSeed) {
  std::uint64_t drops[2];
  for (int run = 0; run < 2; ++run) {
    PortRig rig;
    BernoulliLoss loss(0.2, 1234);
    rig.port->set_loss_model(&loss);
    for (int i = 0; i < 500; ++i) rig.port->enqueue(make_test_packet(100), 0);
    rig.sim.run();
    drops[run] = rig.port->counters().fault_drops;
  }
  EXPECT_EQ(drops[0], drops[1]);
  EXPECT_GT(drops[0], 0u);
}

TEST(PortFaults, BufferSqueezeWindowTailDropsThenRestores) {
  net::PortConfig cfg;
  cfg.buffer_bytes = 1'000'000;
  PortRig rig(cfg);
  FaultInjector injector(rig.sim);
  injector.schedule_buffer_squeeze(*rig.port, /*bytes=*/3'000,
                                   /*start=*/10 * sim::kMicrosecond,
                                   /*duration=*/10 * sim::kMicrosecond);
  EXPECT_EQ(rig.port->buffer_limit(), 1'000'000u);
  // Burst of ten 1500B packets inside the squeeze window: 12us of
  // serialization each means occupancy can't drain, so most tail-drop.
  rig.sim.schedule_at(11 * sim::kMicrosecond, [&] {
    for (int i = 0; i < 10; ++i) rig.port->enqueue(make_test_packet(1500), 0);
  });
  rig.sim.run(15 * sim::kMicrosecond);
  EXPECT_EQ(rig.port->buffer_limit(), 3'000u);
  EXPECT_GT(rig.port->counters().drops, 0u);       // congestion-style drops
  EXPECT_EQ(rig.port->counters().fault_drops, 0u);  // not blackholes
  rig.sim.run();
  EXPECT_EQ(rig.port->buffer_limit(), 1'000'000u);  // restored after window
  EXPECT_TRUE(net::port_ledger_balanced(*rig.port));
}

TEST(PortFaults, EnqueueRejectsOutOfRangeQueue) {
  net::PortConfig cfg;
  cfg.num_queues = 2;
  PortRig rig(cfg);
  EXPECT_THROW(rig.port->enqueue(make_test_packet(100), 2),
               std::invalid_argument);
  EXPECT_NO_THROW(rig.port->enqueue(make_test_packet(100), 1));
}

TEST(PortFaults, PortConfigValidation) {
  sim::Simulator sim;
  const auto make = [&](net::PortConfig cfg) {
    return std::make_unique<net::Port>(sim, "p", cfg,
                                       std::make_unique<net::FifoScheduler>(),
                                       std::make_unique<net::NullMarker>());
  };
  net::PortConfig cfg;
  EXPECT_NO_THROW(make(cfg));
  cfg.rate_bps = 0;
  EXPECT_THROW(make(cfg), std::invalid_argument);
  cfg = {};
  cfg.num_queues = 0;
  EXPECT_THROW(make(cfg), std::invalid_argument);
  cfg = {};
  cfg.prop_delay = -1;
  EXPECT_THROW(make(cfg), std::invalid_argument);
  cfg = {};
  cfg.rate_limit_fraction = 0.0;
  EXPECT_THROW(make(cfg), std::invalid_argument);
  cfg.rate_limit_fraction = 1.5;
  EXPECT_THROW(make(cfg), std::invalid_argument);
  cfg = {};
  cfg.rate_bps = 1;  // 1 * 0.5 rounds the effective rate to zero
  cfg.rate_limit_fraction = 0.5;
  EXPECT_THROW(make(cfg), std::invalid_argument);
}

// -------------------------------------------------------- invariant checker

TEST(Invariants, CleanOnRealPortTraffic) {
  PortRig rig;
  net::InvariantChecker checker;
  rig.port->set_observer(&checker);
  for (int i = 0; i < 50; ++i) rig.port->enqueue(make_test_packet(1500), 0);
  rig.sim.run();
  EXPECT_EQ(rig.peer.packets.size(), 50u);
  EXPECT_GT(checker.events_checked(), 0u);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.ports_watched(), 1u);
}

TEST(Invariants, CleanUnderLinkFlapsAndLoss) {
  net::PortConfig cfg;
  cfg.buffer_bytes = 20'000;
  PortRig rig(cfg);
  net::InvariantChecker checker(/*fail_fast=*/false);
  rig.port->set_observer(&checker);
  BernoulliLoss loss(0.1, 3);
  rig.port->set_loss_model(&loss);
  FaultInjector injector(rig.sim);
  injector.schedule_link_down(*rig.port, 200 * sim::kMicrosecond,
                              300 * sim::kMicrosecond);
  injector.schedule_buffer_squeeze(*rig.port, 4'000, 700 * sim::kMicrosecond,
                                   200 * sim::kMicrosecond);
  // Feed traffic across every fault window.
  for (int burst = 0; burst < 10; ++burst) {
    rig.sim.schedule_at(burst * 100 * sim::kMicrosecond, [&] {
      for (int i = 0; i < 8; ++i) rig.port->enqueue(make_test_packet(1500), 0);
    });
  }
  rig.sim.run();
  EXPECT_GT(checker.events_checked(), 0u);
  EXPECT_EQ(checker.violations(), 0u) << checker.first_violation();
  EXPECT_GT(rig.port->counters().fault_drops, 0u);
  EXPECT_TRUE(net::port_ledger_balanced(*rig.port));
}

net::TraceRecord make_record(net::TraceEvent ev, sim::Time t,
                             std::uint32_t size, std::uint64_t queue_bytes,
                             std::uint64_t port_bytes) {
  net::TraceRecord rec;
  rec.t = t;
  rec.event = ev;
  rec.port = "px";
  rec.queue = 0;
  rec.size = size;
  rec.queue_bytes = queue_bytes;
  rec.port_bytes = port_bytes;
  return rec;
}

TEST(Invariants, DetectsDequeueUnderflow) {
  net::InvariantChecker checker(/*fail_fast=*/false);
  checker.on_event(make_record(net::TraceEvent::kEnqueue, 0, 100, 100, 100));
  EXPECT_EQ(checker.violations(), 0u);
  // Dequeue of more bytes than the ledger holds.
  checker.on_event(make_record(net::TraceEvent::kDequeue, 1, 200, 0, 0));
  EXPECT_EQ(checker.violations(), 1u);
  EXPECT_NE(checker.first_violation().find("underflow"), std::string::npos);
}

TEST(Invariants, DetectsConservationMismatch) {
  net::InvariantChecker checker(/*fail_fast=*/false);
  // Reported occupancy disagrees with the modeled ledger (100 != 999).
  checker.on_event(make_record(net::TraceEvent::kEnqueue, 0, 100, 999, 999));
  EXPECT_EQ(checker.violations(), 2u);  // port and queue ledgers both off
  EXPECT_NE(checker.first_violation().find("conservation"),
            std::string::npos);
}

TEST(Invariants, DetectsTimeGoingBackwards) {
  net::InvariantChecker checker(/*fail_fast=*/false);
  checker.on_event(make_record(net::TraceEvent::kEnqueue, 10, 100, 100, 100));
  checker.on_event(make_record(net::TraceEvent::kEnqueue, 5, 100, 200, 200));
  EXPECT_EQ(checker.violations(), 1u);
  EXPECT_NE(checker.first_violation().find("backwards"), std::string::npos);
}

TEST(Invariants, FailFastThrows) {
  net::InvariantChecker checker(/*fail_fast=*/true);
  checker.on_event(make_record(net::TraceEvent::kEnqueue, 0, 100, 100, 100));
  EXPECT_THROW(
      checker.on_event(make_record(net::TraceEvent::kDequeue, 1, 200, 0, 0)),
      std::logic_error);
}

TEST(Invariants, DropsLeaveOccupancyUnchanged) {
  net::InvariantChecker checker(/*fail_fast=*/false);
  checker.on_event(make_record(net::TraceEvent::kEnqueue, 0, 100, 100, 100));
  checker.on_event(make_record(net::TraceEvent::kDrop, 1, 500, 100, 100));
  checker.on_event(
      make_record(net::TraceEvent::kFaultDrop, 2, 500, 100, 100));
  EXPECT_EQ(checker.violations(), 0u);
  // A drop that pretends to change occupancy is flagged.
  checker.on_event(make_record(net::TraceEvent::kDrop, 3, 500, 600, 600));
  EXPECT_EQ(checker.violations(), 2u);
}

// ----------------------------------------------- topology target resolution

topo::Network make_mini_fabric(sim::Simulator& sim) {
  topo::LeafSpineConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = 1;
  cfg.link_rate_bps = 1'000'000'000;
  cfg.num_queues = 1;
  cfg.host_delay = 10 * sim::kMicrosecond;
  cfg.link_prop = sim::kMicrosecond;
  return topo::build_leaf_spine(
      sim, cfg, [] { return std::make_unique<net::FifoScheduler>(); },
      [](net::Scheduler&, const net::PortConfig&) {
        return std::make_unique<net::NullMarker>();
      });
}

TEST(ResolveTarget, GlobsAndPairsOverLeafSpine) {
  sim::Simulator sim;
  topo::Network network = make_mini_fabric(sim);

  // Pair form: both directions of the leaf0 <-> spine0 link.
  auto pair = resolve_target(network, "leaf0-spine0");
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(pair[0]->name(), "leaf0.p1");   // hosts_per_leaf=1 => uplink 0 is p1
  EXPECT_EQ(pair[1]->name(), "spine0.p0");  // spine port l faces leaf l

  // Globs over switch egresses and host NICs.
  EXPECT_EQ(resolve_target(network, "spine*").size(), 4u);  // 2 spines x 2 down
  EXPECT_EQ(resolve_target(network, "leaf*").size(), 6u);   // 2 x (1 host + 2 up)
  EXPECT_EQ(resolve_target(network, "*.nic").size(), 2u);
  EXPECT_TRUE(resolve_target(network, "nothing*").empty());
  EXPECT_TRUE(resolve_target(network, "leaf0-leaf1").empty());  // no such link
}

TEST(FaultInjectorTest, ApplyThrowsOnUnmatchedTarget) {
  sim::Simulator sim;
  topo::Network network = make_mini_fabric(sim);
  FaultInjector injector(sim);
  EXPECT_THROW(injector.apply(network, parse_fault_specs("loss:ghost*:0.1")),
               std::invalid_argument);
  // A matching plan applies once per (spec, port).
  EXPECT_EQ(injector.apply(network, parse_fault_specs("loss:spine*:0.01")),
            4u);
  EXPECT_EQ(injector.models_owned(), 4u);
}

// ------------------------------------------------------------ ECMP steering

TEST(EcmpSteering, FlowsAvoidDownedGroupMember) {
  sim::Simulator s;
  net::Switch sw(s, "sw");
  CaptureNode nodes[3];
  net::PortConfig cfg;
  cfg.rate_bps = 10'000'000'000ULL;
  std::vector<std::size_t> group;
  for (auto& n : nodes) {
    const auto p = sw.add_port(cfg, std::make_unique<net::FifoScheduler>(),
                               std::make_unique<net::NullMarker>());
    sw.connect(p, &n, 0);
    group.push_back(p);
  }
  sw.add_route(5, group);
  sw.port(1).set_link_up(false);

  for (std::uint16_t f = 0; f < 64; ++f) {
    auto p = make_test_packet(100, 0, f);
    p->dst = 5;
    p->src = 1;
    p->sport = 1000 + f;
    p->dport = 80;
    sw.receive(std::move(p), 0);
  }
  s.run();
  // Every packet rehashed onto a live member; the dead port saw nothing.
  EXPECT_EQ(nodes[0].packets.size() + nodes[2].packets.size(), 64u);
  EXPECT_TRUE(nodes[1].packets.empty());
  EXPECT_EQ(sw.port(1).counters().fault_drops, 0u);
  EXPECT_GT(nodes[0].packets.size(), 0u);  // 64 flows spread over both
  EXPECT_GT(nodes[2].packets.size(), 0u);
}

TEST(EcmpSteering, AllMembersDownBlackholesAtPort) {
  sim::Simulator s;
  net::Switch sw(s, "sw");
  CaptureNode a, b;
  net::PortConfig cfg;
  const auto p0 = sw.add_port(cfg, std::make_unique<net::FifoScheduler>(),
                              std::make_unique<net::NullMarker>());
  const auto p1 = sw.add_port(cfg, std::make_unique<net::FifoScheduler>(),
                              std::make_unique<net::NullMarker>());
  sw.connect(p0, &a, 0);
  sw.connect(p1, &b, 0);
  sw.add_route(5, {p0, p1});
  sw.port(p0).set_link_up(false);
  sw.port(p1).set_link_up(false);

  auto p = make_test_packet(100);
  p->dst = 5;
  sw.receive(std::move(p), 0);
  s.run();
  EXPECT_TRUE(a.packets.empty());
  EXPECT_TRUE(b.packets.empty());
  EXPECT_EQ(sw.port(p0).counters().fault_drops +
                sw.port(p1).counters().fault_drops,
            1u);
}

TEST(EcmpSteering, LeafSpineFlowCompletesAroundDeadUplink) {
  sim::Simulator sim;
  topo::Network network = make_mini_fabric(sim);
  FaultInjector injector(sim);
  // Down only leaf0's uplink toward spine0 (one direction) so the reverse
  // ACK path through spine0 stays usable; leaf0 must steer all data via
  // spine1.
  auto ports = resolve_target(network, "leaf0.p1");
  ASSERT_EQ(ports.size(), 1u);
  injector.schedule_link_down(*ports[0], 0, 0);

  transport::FlowManager fm;
  transport::FlowSpec spec;
  spec.size = 500'000;
  fm.start_flow(network.host(0), network.host(1), spec);
  sim.run();
  ASSERT_EQ(fm.flows_completed(), 1u);
  net::Switch& leaf0 = network.switch_at(0);
  EXPECT_EQ(leaf0.port(1).counters().enq_packets, 0u);  // steered away
  EXPECT_EQ(leaf0.port(1).counters().fault_drops, 0u);
  EXPECT_GT(leaf0.port(2).counters().tx_packets, 0u);   // via spine1
}

// ------------------------------------------------------- TCP under faults

/// Two hosts through one switch; port 1 (toward b) is the faulted hop.
struct TwoHostRig {
  TwoHostRig() : sw(sim, "sw") {
    net::PortConfig nic;
    nic.rate_bps = 10'000'000'000ULL;
    nic.prop_delay = sim::kMicrosecond;
    a = std::make_unique<net::Host>(sim, "a", 1, nic, 10 * sim::kMicrosecond);
    b = std::make_unique<net::Host>(sim, "b", 2, nic, 10 * sim::kMicrosecond);

    net::PortConfig sw_port;
    sw_port.rate_bps = 1'000'000'000;
    sw_port.prop_delay = sim::kMicrosecond;
    for (int i = 0; i < 2; ++i) {
      sw.add_port(sw_port, std::make_unique<net::FifoScheduler>(),
                  std::make_unique<net::NullMarker>());
    }
    sw.connect(0, a.get(), 0);
    sw.connect(1, b.get(), 0);
    a->connect(&sw, 0);
    b->connect(&sw, 1);
    sw.add_route(1, {0});
    sw.add_route(2, {1});
  }

  sim::Simulator sim;
  net::Switch sw;
  std::unique_ptr<net::Host> a, b;
  transport::FlowManager fm;
};

TEST(TcpFaults, CompletesUnderSustainedRandomLoss) {
  TwoHostRig rig;
  FaultInjector injector(rig.sim, 99);
  injector.add_bernoulli_loss(rig.sw.port(1), 0.03);

  transport::FlowSpec spec;
  spec.size = 300'000;
  rig.fm.start_flow(*rig.a, *rig.b, spec);
  rig.sim.run();
  ASSERT_EQ(rig.fm.flows_completed(), 1u);
  EXPECT_EQ(rig.fm.results()[0].size, 300'000u);
  EXPECT_GT(rig.sw.port(1).counters().fault_drops, 0u);
}

TEST(TcpFaults, SurvivesBlackholeWindowWithTimeouts) {
  TwoHostRig rig;
  FaultInjector injector(rig.sim);
  // 40ms full blackhole of the data path starting at 5ms: several RTOs deep.
  injector.schedule_link_down(rig.sw.port(1), 5 * sim::kMillisecond,
                              40 * sim::kMillisecond);

  transport::FlowSpec spec;
  spec.size = 2'000'000;
  spec.tcp.rto_min = 10 * sim::kMillisecond;
  spec.tcp.rto_init = 10 * sim::kMillisecond;
  rig.fm.start_flow(*rig.a, *rig.b, spec);
  rig.sim.run();
  ASSERT_EQ(rig.fm.flows_completed(), 1u);
  EXPECT_GE(rig.fm.results()[0].timeouts, 1u);
  // Recovery must come promptly after the link heals: the capped backoff
  // keeps probing, so completion lands well before a runaway exponential
  // would retry (10ms << 6 = 640ms after the 45ms heal point).
  EXPECT_LT(rig.sim.now(), 700 * sim::kMillisecond);
}

TEST(TcpFaults, BackoffCapKeepsSenderProbing) {
  // The same 100ms from-the-start blackhole, once with a tight backoff cap
  // and once loose: the capped sender must fire strictly more probe timeouts.
  const auto run_with_cap = [](std::uint32_t cap) {
    TwoHostRig rig;
    FaultInjector injector(rig.sim);
    injector.schedule_link_down(rig.sw.port(1), 0, 100 * sim::kMillisecond);
    transport::FlowSpec spec;
    spec.size = 100'000;
    spec.tcp.rto_min = sim::kMillisecond;
    spec.tcp.rto_init = sim::kMillisecond;
    spec.tcp.max_rto_backoff = cap;
    rig.fm.start_flow(*rig.a, *rig.b, spec);
    rig.sim.run();
    EXPECT_EQ(rig.fm.flows_completed(), 1u);
    return rig.fm.results()[0].timeouts;
  };
  const auto tight = run_with_cap(2);   // RTO plateaus at 4ms
  const auto loose = run_with_cap(10);  // RTO grows to ~1s
  EXPECT_GT(tight, loose);
  EXPECT_GE(tight, 15u);  // ~100ms outage probed every <= 4ms
}

// ----------------------------------------------- leaf-spine acceptance run

TEST(Acceptance, LeafSpineSurvivesGeLossAndSpineBlackhole) {
  core::FctExperiment cfg;
  cfg.topology = core::FctExperiment::Topology::kLeafSpine;
  cfg.scheme = core::Scheme::kTcn;
  cfg.params.rtt_lambda = 100 * sim::kMicrosecond;
  cfg.sched.kind = core::SchedKind::kDwrr;
  cfg.load = 0.3;
  cfg.num_flows = 60;
  cfg.num_services = 2;
  cfg.service_workloads = {workload::Kind::kCache};
  cfg.leaf_spine.num_leaves = 2;
  cfg.leaf_spine.num_spines = 2;
  cfg.leaf_spine.hosts_per_leaf = 2;
  cfg.persistent_connections = false;
  cfg.tcp.rto_min = 10 * sim::kMillisecond;
  cfg.tcp.rto_init = 10 * sim::kMillisecond;
  cfg.seed = 5;
  // 1% bursty loss on every leaf port for the whole run, plus a 50ms
  // blackhole of the leaf0<->spine0 link (both directions) mid-traffic.
  cfg.faults = parse_fault_specs("geloss:leaf*:0.01;linkdown:leaf0-spine0:5:50");
  cfg.check_invariants = true;
  cfg.time_limit = 60 * sim::kSecond;  // headroom for bursty-loss retry tails

  const auto report = core::run_fct_experiment(cfg);
  EXPECT_EQ(report.flows_started, 60u);
  // The acceptance bar: zero stuck senders despite loss and the outage.
  EXPECT_EQ(report.flows_completed, report.flows_started);
  EXPECT_GT(report.fault_drops, 0u);
  EXPECT_TRUE(report.invariants_checked);
  EXPECT_GT(report.invariant_events, 0u);
  EXPECT_EQ(report.invariant_violations, 0u) << report.invariant_message;
}

TEST(Acceptance, FaultRunsAreDeterministicForSameSeed) {
  core::FctExperiment cfg;
  cfg.scheme = core::Scheme::kTcn;
  cfg.params.rtt_lambda = 250 * sim::kMicrosecond;
  cfg.sched.kind = core::SchedKind::kDwrr;
  cfg.load = 0.4;
  cfg.num_flows = 30;
  cfg.num_services = 2;
  cfg.service_workloads = {workload::Kind::kCache};
  cfg.star.num_hosts = 5;
  cfg.star.host_delay = topo::star_host_delay_for_rtt(
      250 * sim::kMicrosecond, cfg.star.link_prop);
  cfg.tcp.rto_min = 10 * sim::kMillisecond;
  cfg.tcp.rto_init = 10 * sim::kMillisecond;
  cfg.seed = 11;
  cfg.faults = parse_fault_specs("geloss:sw0*:0.02;squeeze:sw0.p0:20000:2:5");
  cfg.check_invariants = true;
  // Bursty loss has a heavy completion tail: a lone RTO prober caught in a
  // Bad burst needs ~mean_burst probes to step the chain out, each probe one
  // capped RTO apart. Leave generous sim-time headroom (events still drain
  // as soon as the last flow finishes).
  cfg.time_limit = 120 * sim::kSecond;

  const auto a = core::run_fct_experiment(cfg);
  const auto b = core::run_fct_experiment(cfg);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.fault_drops, b.fault_drops);
  EXPECT_DOUBLE_EQ(a.summary.avg_all_us, b.summary.avg_all_us);
  EXPECT_EQ(a.flows_completed, a.flows_started);
  EXPECT_EQ(a.invariant_violations, 0u) << a.invariant_message;
  EXPECT_GT(a.fault_drops, 0u);
}

}  // namespace
}  // namespace tcn::fault
