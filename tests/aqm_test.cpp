// AQM tests: TCN marking semantics, probabilistic TCN, RED variants
// (per-queue/per-port/dequeue), CoDel control law, MQ-ECN dynamic threshold,
// Algorithm-1 departure-rate estimator.
#include <gtest/gtest.h>

#include <memory>

#include "aqm/codel.hpp"
#include "aqm/mq_ecn.hpp"
#include "aqm/rate_estimator.hpp"
#include "aqm/red_ecn.hpp"
#include "aqm/tcn.hpp"
#include "net/marker.hpp"
#include "net/scheduler.hpp"
#include "test_util.hpp"

namespace tcn::aqm {
namespace {

using test::make_test_packet;

net::MarkContext ctx_at(sim::Time now, std::uint64_t queue_bytes = 0,
                        std::uint64_t port_bytes = 0, std::size_t queue = 0) {
  return net::MarkContext{.now = now,
                          .queue = queue,
                          .queue_bytes = queue_bytes,
                          .port_bytes = port_bytes,
                          .link_rate_bps = 1'000'000'000};
}

// ---------------------------------------------------------------- TCN -----

TEST(Tcn, MarksExactlyWhenSojournExceedsThreshold) {
  TcnMarker tcn(100 * sim::kMicrosecond);
  auto p = make_test_packet(1500);
  p->enqueue_ts = 0;
  EXPECT_FALSE(tcn.on_dequeue(ctx_at(100 * sim::kMicrosecond), *p));  // == T
  EXPECT_TRUE(tcn.on_dequeue(ctx_at(100 * sim::kMicrosecond + 1), *p));
  EXPECT_FALSE(tcn.on_dequeue(ctx_at(50 * sim::kMicrosecond), *p));
}

TEST(Tcn, NeverMarksAtEnqueue) {
  TcnMarker tcn(1);
  auto p = make_test_packet(1500);
  EXPECT_FALSE(tcn.on_enqueue(ctx_at(sim::kSecond, 1'000'000), *p));
}

TEST(Tcn, IndependentOfQueueLength) {
  // The decision must ignore occupancy entirely -- that is the point.
  TcnMarker tcn(10 * sim::kMicrosecond);
  auto p = make_test_packet(1500);
  p->enqueue_ts = 0;
  EXPECT_TRUE(tcn.on_dequeue(ctx_at(11 * sim::kMicrosecond, 0, 0), *p));
  EXPECT_FALSE(
      tcn.on_dequeue(ctx_at(9 * sim::kMicrosecond, 1 << 30, 1 << 30), *p));
}

TEST(Tcn, RejectsNonPositiveThreshold) {
  EXPECT_THROW(TcnMarker(0), std::invalid_argument);
  EXPECT_THROW(TcnMarker(-5), std::invalid_argument);
}

TEST(TcnProb, DeterministicRegions) {
  TcnProbabilisticMarker m(100, 200, 0.8);
  EXPECT_DOUBLE_EQ(m.probability(50), 0.0);
  EXPECT_DOUBLE_EQ(m.probability(100), 0.0);
  EXPECT_DOUBLE_EQ(m.probability(150), 0.4);
  EXPECT_DOUBLE_EQ(m.probability(200), 0.8);
  EXPECT_DOUBLE_EQ(m.probability(201), 1.0);
}

TEST(TcnProb, ProbabilityIsMonotone) {
  TcnProbabilisticMarker m(1'000, 9'000, 1.0);
  double prev = -1.0;
  for (sim::Time t = 0; t <= 10'000; t += 100) {
    const double p = m.probability(t);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(TcnProb, EmpiricalMarkingRateMatchesProbability) {
  TcnProbabilisticMarker m(0, 1'000, 1.0, /*seed=*/7);
  auto p = make_test_packet(1500);
  p->enqueue_ts = 0;
  int marked = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (m.on_dequeue(ctx_at(250), *p)) ++marked;  // probability 0.25
  }
  EXPECT_NEAR(static_cast<double>(marked) / n, 0.25, 0.02);
}

TEST(TcnProb, RejectsBadParameters) {
  EXPECT_THROW(TcnProbabilisticMarker(200, 100, 0.5), std::invalid_argument);
  EXPECT_THROW(TcnProbabilisticMarker(0, 100, 0.0), std::invalid_argument);
  EXPECT_THROW(TcnProbabilisticMarker(0, 100, 1.5), std::invalid_argument);
}

// ---------------------------------------------------------------- RED -----

TEST(RedEcn, PerQueueEnqueueMarking) {
  RedEcnMarker red(30'000, RedScope::kPerQueue);
  auto p = make_test_packet(1500);
  EXPECT_FALSE(red.on_enqueue(ctx_at(0, 30'000, 90'000), *p));
  EXPECT_TRUE(red.on_enqueue(ctx_at(0, 30'001, 30'001), *p));
  EXPECT_FALSE(red.on_dequeue(ctx_at(0, 90'000, 90'000), *p));  // wrong side
}

TEST(RedEcn, PerPortUsesAggregateOccupancy) {
  RedEcnMarker red(30'000, RedScope::kPerPort);
  auto p = make_test_packet(1500);
  // Queue itself is tiny but the port is congested: marks anyway -- the
  // policy violation of Sec. 3.2.2.
  EXPECT_TRUE(red.on_enqueue(ctx_at(0, 1'500, 64'000), *p));
  EXPECT_FALSE(red.on_enqueue(ctx_at(0, 29'000, 29'000), *p));
}

TEST(RedEcn, DequeueVariantMarksOnlyAtDequeue) {
  RedEcnMarker red(30'000, RedScope::kPerQueue, RedSide::kDequeue);
  auto p = make_test_packet(1500);
  EXPECT_FALSE(red.on_enqueue(ctx_at(0, 90'000, 90'000), *p));
  EXPECT_TRUE(red.on_dequeue(ctx_at(0, 90'000, 90'000), *p));
}

TEST(RedEcn, OraclePerQueueThresholds) {
  RedEcnMarker red(std::vector<std::uint64_t>{8'000, 32'000});
  auto p = make_test_packet(1500);
  EXPECT_TRUE(red.on_enqueue(ctx_at(0, 9'000, 9'000, /*queue=*/0), *p));
  EXPECT_FALSE(red.on_enqueue(ctx_at(0, 9'000, 9'000, /*queue=*/1), *p));
  EXPECT_TRUE(red.on_enqueue(ctx_at(0, 33'000, 33'000, /*queue=*/1), *p));
}

TEST(RedEcn, RejectsBadConfig) {
  EXPECT_THROW(RedEcnMarker(0, RedScope::kPerQueue), std::invalid_argument);
  EXPECT_THROW(RedEcnMarker(std::vector<std::uint64_t>{}),
               std::invalid_argument);
}

// -------------------------------------------------------------- CoDel -----

TEST(Codel, NoMarkingBelowTarget) {
  CodelMarker codel(50 * sim::kMicrosecond, 1'000 * sim::kMicrosecond);
  auto p = make_test_packet(1500);
  for (int i = 0; i < 100; ++i) {
    p->enqueue_ts = i * 100 * sim::kMicrosecond;
    const auto now = p->enqueue_ts + 40 * sim::kMicrosecond;  // below target
    EXPECT_FALSE(codel.on_dequeue(ctx_at(now, 10'000), *p));
  }
}

TEST(Codel, MarksOnlyAfterIntervalOfPersistentDelay) {
  const sim::Time target = 50 * sim::kMicrosecond;
  const sim::Time interval = 1'000 * sim::kMicrosecond;
  CodelMarker codel(target, interval);
  auto p = make_test_packet(1500);
  // Sojourn continuously above target; first mark must not occur before one
  // full interval has elapsed.
  bool marked = false;
  sim::Time first_mark = 0;
  for (sim::Time now = 0; now <= 3'000 * sim::kMicrosecond && !marked;
       now += 10 * sim::kMicrosecond) {
    p->enqueue_ts = now - 100 * sim::kMicrosecond;  // sojourn = 100us
    if (codel.on_dequeue(ctx_at(now, 10'000), *p)) {
      marked = true;
      first_mark = now;
    }
  }
  ASSERT_TRUE(marked);
  EXPECT_GE(first_mark, interval);
  EXPECT_LE(first_mark, interval + 20 * sim::kMicrosecond);
}

TEST(Codel, MarkingRateRampsUpWithSqrtLaw) {
  const sim::Time target = 50 * sim::kMicrosecond;
  const sim::Time interval = 1'000 * sim::kMicrosecond;
  CodelMarker codel(target, interval);
  auto p = make_test_packet(1500);
  std::vector<sim::Time> marks;
  for (sim::Time now = 0; now <= 10'000 * sim::kMicrosecond;
       now += 10 * sim::kMicrosecond) {
    p->enqueue_ts = now - 100 * sim::kMicrosecond;
    if (codel.on_dequeue(ctx_at(now, 10'000), *p)) marks.push_back(now);
  }
  ASSERT_GE(marks.size(), 4u);
  // Gaps between consecutive marks shrink (interval/sqrt(count)).
  for (std::size_t i = 2; i + 1 < marks.size(); ++i) {
    EXPECT_LE(marks[i + 1] - marks[i], marks[i] - marks[i - 1] + 1);
  }
}

TEST(Codel, LeavesDroppingStateWhenDelaySubsides) {
  const sim::Time target = 50 * sim::kMicrosecond;
  const sim::Time interval = 1'000 * sim::kMicrosecond;
  CodelMarker codel(target, interval);
  auto p = make_test_packet(1500);
  // Drive into the marking state.
  bool marked = false;
  sim::Time now = 0;
  for (; now <= 3'000 * sim::kMicrosecond && !marked;
       now += 10 * sim::kMicrosecond) {
    p->enqueue_ts = now - 100 * sim::kMicrosecond;
    marked |= codel.on_dequeue(ctx_at(now, 10'000), *p);
  }
  ASSERT_TRUE(marked);
  EXPECT_TRUE(codel.state(0).dropping);
  // One dequeue below target exits the state.
  p->enqueue_ts = now - 10 * sim::kMicrosecond;
  EXPECT_FALSE(codel.on_dequeue(ctx_at(now, 10'000), *p));
  EXPECT_FALSE(codel.state(0).dropping);
}

TEST(Codel, TracksQueuesIndependently) {
  CodelMarker codel(50 * sim::kMicrosecond, 1'000 * sim::kMicrosecond);
  auto p = make_test_packet(1500);
  // Queue 3 suffers delay; queue 0 does not. Only queue 3's state advances.
  for (sim::Time now = 0; now <= 2'000 * sim::kMicrosecond;
       now += 10 * sim::kMicrosecond) {
    p->enqueue_ts = now - 100 * sim::kMicrosecond;
    codel.on_dequeue(ctx_at(now, 10'000, 10'000, /*queue=*/3), *p);
  }
  EXPECT_TRUE(codel.state(3).dropping);
  p->enqueue_ts = 0;
  EXPECT_FALSE(
      codel.on_dequeue(ctx_at(10 * sim::kMicrosecond, 10'000, 10'000, 0), *p));
  EXPECT_FALSE(codel.state(0).dropping);
}

// ------------------------------------------------------------- MQ-ECN -----

/// Fixed-rate provider for isolation testing.
class FakeProvider final : public net::RoundRateProvider {
 public:
  explicit FakeProvider(double bps) : bps_(bps) {}
  double queue_rate_bps(std::size_t, sim::Time) const override { return bps_; }
  double bps_;
};

TEST(MqEcn, ThresholdScalesWithEstimatedRate) {
  FakeProvider provider(1e9);
  MqEcnMarker mq(&provider, 100 * sim::kMicrosecond);
  // 1Gbps x 100us = 12.5KB.
  EXPECT_EQ(mq.threshold_bytes(0, 0), 12'500u);
  provider.bps_ = 5e8;
  EXPECT_EQ(mq.threshold_bytes(0, 0), 6'250u);
}

TEST(MqEcn, MarksAboveDynamicThreshold) {
  FakeProvider provider(5e8);
  MqEcnMarker mq(&provider, 100 * sim::kMicrosecond);
  auto p = make_test_packet(1500);
  EXPECT_FALSE(mq.on_enqueue(ctx_at(0, 6'250), *p));
  EXPECT_TRUE(mq.on_enqueue(ctx_at(0, 6'251), *p));
}

TEST(MqEcn, RequiresProvider) {
  EXPECT_THROW(MqEcnMarker(nullptr, 100), std::invalid_argument);
}

// ----------------------------------------------- Rate estimator (Alg 1) ---

TEST(RateEstimator, MeasuresConstantDrainExactly) {
  DepartureRateEstimator est(10'000, /*w=*/0.875);
  // 1500B departures every 12us (1Gbps), always-deep queue.
  sim::Time now = 0;
  for (int i = 0; i < 100; ++i) {
    now += 12 * sim::kMicrosecond;
    est.on_departure(now, 1500, /*qlen=*/50'000);
  }
  ASSERT_TRUE(est.has_estimate());
  // 1Gbps = 125e6 B/s.
  EXPECT_NEAR(est.avg_rate_Bps(), 125e6, 2e6);
}

TEST(RateEstimator, NoCycleWithoutBacklog) {
  DepartureRateEstimator est(10'000);
  sim::Time now = 0;
  for (int i = 0; i < 100; ++i) {
    now += 12 * sim::kMicrosecond;
    est.on_departure(now, 1500, /*qlen=*/500);  // below dq_thresh
  }
  EXPECT_FALSE(est.has_estimate());
}

TEST(RateEstimator, SmoothsTowardsNewRate) {
  DepartureRateEstimator est(10'000, 0.875);
  sim::Time now = 0;
  // Phase 1: 1Gbps.
  for (int i = 0; i < 50; ++i) {
    now += 12 * sim::kMicrosecond;
    est.on_departure(now, 1500, 50'000);
  }
  const double before = est.avg_rate_Bps();
  // Phase 2: drain slows to 500Mbps (24us per packet).
  for (int i = 0; i < 200; ++i) {
    now += 24 * sim::kMicrosecond;
    est.on_departure(now, 1500, 50'000);
  }
  const double after = est.avg_rate_Bps();
  EXPECT_LT(after, before);
  EXPECT_NEAR(after, 62.5e6, 3e6);
}

TEST(RateEstimator, CoarseDqThreshYieldsFewSamples) {
  // The Fig. 2 tradeoff: with dq_thresh = 40KB a 2ms busy period at 1Gbps
  // (250KB) yields only ~6 samples.
  DepartureRateEstimator est(40'000);
  int samples = 0;
  sim::Time now = 0;
  for (int i = 0; i < 166; ++i) {  // ~250KB of departures
    now += 12 * sim::kMicrosecond;
    if (est.on_departure(now, 1500, 60'000)) ++samples;
  }
  EXPECT_GE(samples, 4);
  EXPECT_LE(samples, 7);
}

TEST(RateEstimator, RejectsBadConfig) {
  EXPECT_THROW(DepartureRateEstimator(0), std::invalid_argument);
  EXPECT_THROW(DepartureRateEstimator(10'000, 1.0), std::invalid_argument);
}

TEST(IdealRed, FallsBackToLinkRateBeforeFirstSample) {
  IdealRedMarker ideal(2, 10'000, 100 * sim::kMicrosecond);
  // 1Gbps x 100us = 12.5KB standard threshold.
  EXPECT_EQ(ideal.threshold_bytes(0, 1'000'000'000), 12'500u);
}

TEST(IdealRed, ThresholdTracksMeasuredRate) {
  IdealRedMarker ideal(1, 10'000, 100 * sim::kMicrosecond);
  auto p = make_test_packet(1500);
  sim::Time now = 0;
  for (int i = 0; i < 100; ++i) {
    now += 24 * sim::kMicrosecond;  // 500Mbps drain
    ideal.on_dequeue(ctx_at(now, 50'000), *p);
  }
  // Threshold ~= 62.5e6 B/s * 100us = 6.25KB.
  EXPECT_NEAR(static_cast<double>(ideal.threshold_bytes(0, 1'000'000'000)),
              6'250.0, 300.0);
  EXPECT_TRUE(ideal.on_enqueue(ctx_at(now, 10'000), *p));
  EXPECT_FALSE(ideal.on_enqueue(ctx_at(now, 5'000), *p));
}

TEST(IdealRed, ObserverSeesEverySample) {
  IdealRedMarker ideal(1, 10'000, 100 * sim::kMicrosecond);
  int observed = 0;
  ideal.set_sample_observer(
      [&](std::size_t, sim::Time, double, double) { ++observed; });
  auto p = make_test_packet(1500);
  sim::Time now = 0;
  for (int i = 0; i < 70; ++i) {
    now += 12 * sim::kMicrosecond;
    ideal.on_dequeue(ctx_at(now, 50'000), *p);
  }
  // 70 x 1500B = 105KB -> 10KB cycles: ~10 samples.
  EXPECT_GE(observed, 8);
  EXPECT_LE(observed, 12);
}

}  // namespace
}  // namespace tcn::aqm
