// Tests for persistent connections: multi-message streams on one TcpSender,
// per-message DSCP/PIAS tagging, FCT semantics with queueing, window restart
// after idle, and the ConnectionPool's idle-else-new policy.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fifo_scheduler.hpp"
#include "net/host.hpp"
#include "net/marker.hpp"
#include "net/switch.hpp"
#include "pias/pias.hpp"
#include "sim/simulator.hpp"
#include "transport/connection_pool.hpp"
#include "transport/flow.hpp"
#include "transport/tcp_sender.hpp"
#include "transport/tcp_sink.hpp"

namespace tcn::transport {
namespace {

/// Two hosts through a single-queue 1G switch; host NICs 10x faster so the
/// switch port is the bottleneck.
struct Rig {
  Rig() : sw(sim, "sw") {
    net::PortConfig nic;
    nic.rate_bps = 10'000'000'000ULL;
    nic.prop_delay = sim::kMicrosecond;
    a = std::make_unique<net::Host>(sim, "a", 1, nic,
                                    10 * sim::kMicrosecond);
    b = std::make_unique<net::Host>(sim, "b", 2, nic,
                                    10 * sim::kMicrosecond);
    net::PortConfig port;
    port.rate_bps = 1'000'000'000;
    port.prop_delay = sim::kMicrosecond;
    sw.add_port(port, std::make_unique<net::FifoScheduler>(),
                std::make_unique<net::NullMarker>());
    sw.add_port(port, std::make_unique<net::FifoScheduler>(),
                std::make_unique<net::NullMarker>());
    sw.connect(0, a.get(), 0);
    sw.connect(1, b.get(), 0);
    a->connect(&sw, 0);
    b->connect(&sw, 1);
    sw.add_route(1, {0});
    sw.add_route(2, {1});
  }

  /// Wire up a raw connection a->b and return the sender.
  std::unique_ptr<TcpSender> connect(TcpConfig cfg = {}) {
    const auto sport = a->allocate_port();
    const auto dport = b->allocate_port();
    sink = std::make_unique<TcpSink>(*b, dport, 0);
    return std::make_unique<TcpSender>(*a, 2, sport, dport, 1, cfg,
                                       nullptr, 0, nullptr);
  }

  sim::Simulator sim;
  net::Switch sw;
  std::unique_ptr<net::Host> a, b;
  std::unique_ptr<TcpSink> sink;
};

TEST(MessageStream, BackToBackMessagesCompleteInOrder) {
  Rig rig;
  auto sender = rig.connect();
  std::vector<int> done;
  for (int i = 0; i < 3; ++i) {
    TcpSender::MessageSpec m;
    m.size = 100'000;
    m.on_complete = [&done, i](sim::Time, std::uint32_t) {
      done.push_back(i);
    };
    sender->enqueue_message(std::move(m));
  }
  rig.sim.run();
  EXPECT_EQ(done, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(sender->completed());
  EXPECT_EQ(rig.sink->bytes_delivered(), 300'000u);
}

TEST(MessageStream, QueuedMessageFctIncludesWait) {
  Rig rig;
  auto sender = rig.connect();
  sim::Time fct_first = 0, fct_second = 0;
  TcpSender::MessageSpec big;
  big.size = 5'000'000;  // ~41ms at 1G
  big.on_complete = [&](sim::Time f, std::uint32_t) { fct_first = f; };
  sender->enqueue_message(std::move(big));
  TcpSender::MessageSpec small;
  small.size = 10'000;
  small.on_complete = [&](sim::Time f, std::uint32_t) { fct_second = f; };
  sender->enqueue_message(std::move(small));  // same connection: must wait
  rig.sim.run();
  EXPECT_GT(fct_first, 35 * sim::kMillisecond);
  // The small message was enqueued at t=0 and only finishes after the big
  // one: its FCT is nearly the big one's.
  EXPECT_GT(fct_second, fct_first);
}

TEST(MessageStream, PerMessageDscpTagging) {
  Rig rig;
  TcpConfig cfg;
  auto sender = rig.connect(cfg);
  // Message 1 tagged dscp 3, message 2 PIAS-style: first 50KB dscp 0, rest 5.
  TcpSender::MessageSpec m1;
  m1.size = 20'000;
  m1.dscp = constant_dscp(3);
  sender->enqueue_message(std::move(m1));
  TcpSender::MessageSpec m2;
  m2.size = 120'000;
  m2.dscp = pias::two_priority(0, 5, 50'000);
  sender->enqueue_message(std::move(m2));
  rig.sim.run();
  EXPECT_TRUE(sender->completed());
  // The sink saw all bytes; DSCP correctness is asserted at the unit level
  // (dscp functions) and via the switch classifier tests; here we verify the
  // stream survives mixed tagging.
  EXPECT_EQ(rig.sink->bytes_delivered(), 140'000u);
}

TEST(MessageStream, WindowRestartAfterIdle) {
  Rig rig;
  TcpConfig cfg;
  cfg.init_cwnd_pkts = 10;
  cfg.rto_min = 10 * sim::kMillisecond;
  auto sender = rig.connect(cfg);
  TcpSender::MessageSpec m1;
  m1.size = 3'000'000;  // grows cwnd well past the initial window
  sender->enqueue_message(std::move(m1));
  rig.sim.run();
  const double grown = sender->cwnd_bytes();
  EXPECT_GT(grown, 20.0 * 1460);

  // Enqueue after a long idle: cwnd must restart at the initial window.
  rig.sim.schedule_in(500 * sim::kMillisecond, [&] {
    TcpSender::MessageSpec m2;
    m2.size = 1'460;
    sender->enqueue_message(std::move(m2));
    EXPECT_LE(sender->cwnd_bytes(), 10.0 * 1460 + 1);
  });
  rig.sim.run();
  EXPECT_TRUE(sender->completed());
}

TEST(MessageStream, NoRestartWhenBusy) {
  Rig rig;
  TcpConfig cfg;
  cfg.init_cwnd_pkts = 4;
  auto sender = rig.connect(cfg);
  TcpSender::MessageSpec m1;
  m1.size = 3'000'000;
  sender->enqueue_message(std::move(m1));
  // Enqueue a second message mid-transfer: window must not reset.
  rig.sim.schedule_in(5 * sim::kMillisecond, [&] {
    const double before = sender->cwnd_bytes();
    TcpSender::MessageSpec m2;
    m2.size = 100'000;
    sender->enqueue_message(std::move(m2));
    EXPECT_DOUBLE_EQ(sender->cwnd_bytes(), before);
  });
  rig.sim.run();
  EXPECT_TRUE(sender->completed());
}

TEST(MessageStream, RejectsZeroSize) {
  Rig rig;
  auto sender = rig.connect();
  EXPECT_THROW(sender->enqueue_message({}), std::invalid_argument);
}

TEST(ConnectionPool, ReusesIdleConnection) {
  Rig rig;
  ConnectionPool pool;
  FlowSpec spec;
  spec.size = 10'000;
  pool.submit(*rig.a, *rig.b, spec);
  rig.sim.run();  // message completes; connection now idle
  pool.submit(*rig.a, *rig.b, spec);
  rig.sim.run();
  EXPECT_EQ(pool.connections_created(), 1u);
  EXPECT_EQ(pool.results().size(), 2u);
}

TEST(ConnectionPool, OpensNewConnectionWhenBusy) {
  Rig rig;
  ConnectionPool pool;
  FlowSpec big;
  big.size = 5'000'000;
  FlowSpec small;
  small.size = 10'000;
  pool.submit(*rig.a, *rig.b, big);
  pool.submit(*rig.a, *rig.b, small);  // first is busy: new connection
  rig.sim.run();
  EXPECT_EQ(pool.connections_created(), 2u);
  // The small message did not wait behind the big one.
  ASSERT_EQ(pool.results().size(), 2u);
  const auto& first_done = pool.results()[0];
  EXPECT_EQ(first_done.size, 10'000u);
  EXPECT_LT(first_done.fct, 5 * sim::kMillisecond);
}

TEST(ConnectionPool, SeparatePoolsPerHostPair) {
  // Flows from two different sources never share a connection.
  sim::Simulator sim;
  net::Switch sw(sim, "sw");
  net::PortConfig nic;
  nic.rate_bps = 1'000'000'000;
  net::Host a(sim, "a", 1, nic), b(sim, "b", 2, nic), c(sim, "c", 3, nic);
  net::PortConfig port;
  port.rate_bps = 1'000'000'000;
  for (int i = 0; i < 3; ++i) {
    sw.add_port(port, std::make_unique<net::FifoScheduler>(),
                std::make_unique<net::NullMarker>());
  }
  sw.connect(0, &a, 0);
  sw.connect(1, &b, 0);
  sw.connect(2, &c, 0);
  a.connect(&sw, 0);
  b.connect(&sw, 1);
  c.connect(&sw, 2);
  sw.add_route(1, {0});
  sw.add_route(2, {1});
  sw.add_route(3, {2});

  ConnectionPool pool;
  FlowSpec spec;
  spec.size = 5'000;
  pool.submit(a, c, spec);
  pool.submit(b, c, spec);
  sim.run();
  EXPECT_EQ(pool.connections_created(), 2u);
  EXPECT_EQ(pool.results().size(), 2u);
}

TEST(ConnectionPool, CompletionCallbackCarriesMetadata) {
  Rig rig;
  std::vector<FlowResult> seen;
  ConnectionPool pool([&](const FlowResult& r) { seen.push_back(r); });
  FlowSpec spec;
  spec.size = 42'000;
  spec.service = 3;
  pool.submit(*rig.a, *rig.b, spec);
  rig.sim.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].size, 42'000u);
  EXPECT_EQ(seen[0].service, 3u);
  EXPECT_GT(seen[0].fct, 0);
  EXPECT_EQ(seen[0].timeouts, 0u);
}

}  // namespace
}  // namespace tcn::transport
