// Observability layer tests: histogram bucket math, registry scoping,
// flight recorder ring, exporter byte formats, and the property battery
// that locks the port/marker instrumentation to the simulation's own
// accounting across every scheduler and AQM.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "net/trace.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "runner/results.hpp"
#include "runner/sweep.hpp"

namespace tcn::obs {
namespace {

// ------------------------------------------------------------ histogram ----

TEST(LogHistogram, ExactBelowSubBuckets) {
  for (std::uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LogHistogram::bucket_index(v), v);
    EXPECT_EQ(LogHistogram::bucket_floor(v), v);
  }
}

TEST(LogHistogram, FloorIsInverseOfIndex) {
  // Every bucket floor maps back to its own bucket, and the value one
  // below the floor maps to the previous bucket.
  for (std::size_t idx = 0; idx < 1500; ++idx) {
    const auto floor = LogHistogram::bucket_floor(idx);
    EXPECT_EQ(LogHistogram::bucket_index(floor), idx) << "idx=" << idx;
    if (floor > 0) {
      EXPECT_EQ(LogHistogram::bucket_index(floor - 1), idx - 1);
    }
  }
}

TEST(LogHistogram, RelativeErrorBounded) {
  // Bucket width / floor <= 1/kSubBuckets for every value past the linear
  // range: the histogram's ~3% accuracy contract.
  for (std::uint64_t v : {100ull, 1'000ull, 123'456ull, 1'000'000'000ull,
                          1'234'567'890'123ull}) {
    const auto idx = LogHistogram::bucket_index(v);
    const auto width =
        LogHistogram::bucket_ceil(idx) - LogHistogram::bucket_floor(idx);
    EXPECT_LE(static_cast<double>(width),
              static_cast<double>(LogHistogram::bucket_floor(idx)) /
                  LogHistogram::kSubBuckets +
                  1.0)
        << "v=" << v;
  }
}

TEST(LogHistogram, CountSumMinMaxExact) {
  LogHistogram h;
  h.record(10);
  h.record(1'000'000);
  h.record(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1'000'013u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 1'000'000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1'000'013.0 / 3.0);
}

TEST(LogHistogram, NegativeClampsToZero) {
  LogHistogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(LogHistogram, PercentileClampedToObservedRange) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.record(1'000'000);
  // All mass in one bucket: every percentile is the exact observed value,
  // not the bucket midpoint.
  EXPECT_EQ(h.percentile(0.0), 1'000'000u);
  EXPECT_EQ(h.percentile(50.0), 1'000'000u);
  EXPECT_EQ(h.percentile(100.0), 1'000'000u);
}

TEST(LogHistogram, PercentileWithinRelativeError) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 10'000; ++v) h.record(static_cast<std::int64_t>(v));
  const auto p50 = h.percentile(50.0);
  const auto p99 = h.percentile(99.0);
  EXPECT_NEAR(static_cast<double>(p50), 5'000.0, 5'000.0 / 16);
  EXPECT_NEAR(static_cast<double>(p99), 9'900.0, 9'900.0 / 16);
}

TEST(LogHistogram, SparseBucketExport) {
  LogHistogram h;
  h.record(1);
  h.record(1);
  h.record(1'000'000);
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].first, 1u);
  EXPECT_EQ(buckets[0].second, 2u);
  EXPECT_EQ(buckets[1].second, 1u);
  std::uint64_t total = 0;
  for (const auto& [floor, count] : buckets) total += count;
  EXPECT_EQ(total, h.count());
}

// ------------------------------------------------------------- registry ----

TEST(MetricsRegistry, FindOrCreateReturnsStableAddresses) {
  MetricsRegistry reg;
  Counter* a = &reg.counter("x");
  reg.counter("y");
  reg.counter("z");
  EXPECT_EQ(&reg.counter("x"), a);  // map nodes: stable across inserts
  a->inc(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.counter("zeta").inc();
  reg.counter("alpha").inc(2);
  reg.histogram("h.b").record(1);
  reg.histogram("h.a").record(2);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.histograms.size(), 2u);
  EXPECT_EQ(snap.histograms[0].name, "h.a");
  EXPECT_EQ(snap.histograms[1].name, "h.b");
  EXPECT_FALSE(snap.empty());
}

TEST(MetricsRegistry, ScopeInstallsAndNests) {
  EXPECT_EQ(MetricsRegistry::current(), nullptr);
  MetricsRegistry outer;
  {
    MetricsRegistry::Scope s1(outer);
    EXPECT_EQ(MetricsRegistry::current(), &outer);
    {
      MetricsRegistry inner;
      MetricsRegistry::Scope s2(inner);
      EXPECT_EQ(MetricsRegistry::current(), &inner);
    }
    EXPECT_EQ(MetricsRegistry::current(), &outer);
  }
  EXPECT_EQ(MetricsRegistry::current(), nullptr);
}

TEST(Gauge, TracksLastMinMax) {
  Gauge g;
  g.set(5.0);
  g.set(-2.0);
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.last(), 3.0);
  EXPECT_DOUBLE_EQ(g.min(), -2.0);
  EXPECT_DOUBLE_EQ(g.max(), 5.0);
  EXPECT_EQ(g.sets(), 3u);
}

// ------------------------------------------------------ flight recorder ----

net::TraceRecord make_record(sim::Time t, net::TraceEvent ev,
                             std::uint64_t flow) {
  net::TraceRecord r;
  r.t = t;
  r.event = ev;
  r.port = "sw0.p1";
  r.queue = 2;
  r.flow = flow;
  r.seq = 7;
  r.size = 1500;
  r.queue_bytes = 3'000;
  r.port_bytes = 4'500;
  return r;
}

TEST(FlightRecorder, RingKeepsLastNInOrder) {
  FlightRecorder fr(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    fr.on_event(make_record(100 * static_cast<sim::Time>(i),
                            net::TraceEvent::kEnqueue, i));
  }
  EXPECT_EQ(fr.events_seen(), 10u);
  const auto tail = fr.tail();
  ASSERT_EQ(tail.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tail[i].flow, 6u + i);  // oldest-first: events 6,7,8,9
  }
}

TEST(FlightRecorder, FormatTailMentionsEveryEvent) {
  FlightRecorder fr(8);
  fr.on_event(make_record(42, net::TraceEvent::kEnqueue, 1));
  fr.on_event(make_record(43, net::TraceEvent::kDrop, 2));
  const auto text = fr.format_tail();
  EXPECT_NE(text.find("last 2 of 2"), std::string::npos);
  EXPECT_NE(text.find("enq"), std::string::npos);
  EXPECT_NE(text.find("drop"), std::string::npos);
  EXPECT_NE(text.find("sw0.p1"), std::string::npos);
  EXPECT_NE(text.find("t=43"), std::string::npos);
}

// ------------------------------------------------------------ exporters ----

TEST(Exporters, TraceRecordJsonBytes) {
  const auto rec = make_record(1'234, net::TraceEvent::kDequeue, 9);
  auto with_sojourn = rec;
  with_sojourn.sojourn = 777;
  EXPECT_EQ(trace_record_to_json(with_sojourn),
            "{\"t\":1234,\"ev\":\"deq\",\"port\":\"sw0.p1\",\"q\":2,"
            "\"flow\":9,\"seq\":7,\"size\":1500,\"dscp\":0,\"qbytes\":3000,"
            "\"pbytes\":4500,\"sojourn\":777}");
}

TEST(Exporters, JsonlWriterEmitsHeaderThenRecords) {
  std::ostringstream out;
  JsonlTraceWriter w(out);
  w.on_event(make_record(1, net::TraceEvent::kEnqueue, 1));
  w.on_event(make_record(2, net::TraceEvent::kDequeue, 1));
  EXPECT_EQ(w.records_written(), 2u);
  const auto text = out.str();
  EXPECT_EQ(text.find("{\"schema\":\"tcn-trace-1\"}\n"), 0u);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(Exporters, MetricsJsonHasSchemaAndSections) {
  MetricsRegistry reg;
  reg.counter("a.count").inc(5);
  reg.gauge("b.gauge").set(1.5);
  reg.histogram("c.hist").record(1000);
  const auto doc = metrics_to_json(reg.snapshot());
  EXPECT_NE(doc.find("\"schema\": \"tcn-metrics-1\""), std::string::npos);
  EXPECT_NE(doc.find("\"a.count\": 5"), std::string::npos);
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  // Deterministic: same registry, same bytes.
  EXPECT_EQ(doc, metrics_to_json(reg.snapshot()));
}

// ----------------------------------------------------- property battery ----

/// Snapshot indexed for assertions.
struct Indexed {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, MetricsSnapshot::HistogramValue> histograms;

  explicit Indexed(const MetricsSnapshot& s) {
    for (const auto& c : s.counters) counters[c.name] = c.value;
    for (const auto& h : s.histograms) histograms[h.name] = h;
  }

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t hist_count(const std::string& name) const {
    const auto it = histograms.find(name);
    return it == histograms.end() ? 0 : it->second.count;
  }
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Observer asserting globally monotone event timestamps (events are
/// emitted in simulation order across all ports).
class MonotoneChecker final : public net::PortObserver {
 public:
  void on_event(const net::TraceRecord& rec) override {
    EXPECT_GE(rec.t, last_) << "timestamps went backwards at " << rec.port;
    last_ = rec.t;
    ++events_;
  }
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }

 private:
  sim::Time last_ = 0;
  std::uint64_t events_ = 0;
};

enum class MarkSide { kEnqueue, kDequeue };

struct GridCase {
  const char* label;
  core::SchedKind sched;
  core::Scheme scheme;
  MarkSide side;
};

// Every scheduler and every AQM appears at least once; marking side is the
// scheme's documented hook (TCN/CoDel/dequeue-RED mark at dequeue, the RED
// family/MQ-ECN/PIE/ideal-rate at enqueue).
const GridCase kGrid[] = {
    {"fifo+tcn", core::SchedKind::kFifo, core::Scheme::kTcn,
     MarkSide::kDequeue},
    {"sp+red", core::SchedKind::kSp, core::Scheme::kRedPerQueue,
     MarkSide::kEnqueue},
    {"wfq+codel", core::SchedKind::kWfq, core::Scheme::kCodel,
     MarkSide::kDequeue},
    {"dwrr+red-port", core::SchedKind::kDwrr, core::Scheme::kRedPerPort,
     MarkSide::kEnqueue},
    // MQ-ECN needs a RoundRateProvider scheduler (DWRR/WRR only).
    {"dwrr+mq-ecn", core::SchedKind::kDwrr, core::Scheme::kMqEcn,
     MarkSide::kEnqueue},
    {"wrr+ideal-rate", core::SchedKind::kWrr, core::Scheme::kIdealRate,
     MarkSide::kEnqueue},
    {"sp-dwrr+pie", core::SchedKind::kSpDwrr, core::Scheme::kPie,
     MarkSide::kEnqueue},
    {"sp-wfq+red-dequeue", core::SchedKind::kSpWfq,
     core::Scheme::kRedDequeue, MarkSide::kDequeue},
    {"pifo+tcn-prob", core::SchedKind::kPifoStfq, core::Scheme::kTcnProb,
     MarkSide::kDequeue},
    // Approximate rank schedulers: the marker must stay oblivious to both
    // the SP-PIFO level adaptation and the AIFO admission gate.
    {"sp-pifo+tcn", core::SchedKind::kSpPifo, core::Scheme::kTcn,
     MarkSide::kDequeue},
    {"aifo+red-port", core::SchedKind::kAifo, core::Scheme::kRedPerPort,
     MarkSide::kEnqueue},
};

core::FctExperiment grid_config(const GridCase& c) {
  core::FctExperiment cfg;
  cfg.scheme = c.scheme;
  cfg.sched.kind = c.sched;
  cfg.sched.num_sp = 1;
  cfg.load = 0.6;
  cfg.num_flows = 40;
  cfg.seed = 11;
  cfg.params.rtt_lambda = 256 * sim::kMicrosecond;
  cfg.params.red_threshold_bytes = 32'000;
  cfg.params.codel_target = 51 * sim::kMicrosecond;
  cfg.params.codel_interval = 1024 * sim::kMicrosecond;
  cfg.params.tcn_tmin = 128 * sim::kMicrosecond;
  cfg.params.tcn_tmax = 384 * sim::kMicrosecond;
  cfg.params.tcn_pmax = 1.0;
  cfg.params.seed = cfg.seed;
  cfg.time_limit = 600 * sim::kSecond;
  cfg.collect_metrics = true;
  return cfg;
}

TEST(ObsProperties, PortAccountingHoldsAcrossSchedulersAndAqms) {
  for (const auto& c : kGrid) {
    SCOPED_TRACE(c.label);
    auto cfg = grid_config(c);
    MonotoneChecker monotone;
    cfg.extra_observer = &monotone;
    const auto report = core::run_fct_experiment(cfg);
    ASSERT_TRUE(report.metrics_collected);
    EXPECT_GT(monotone.events(), 0u);
    const Indexed m(report.metrics);

    std::uint64_t total_deq = 0;
    std::uint64_t total_marks = 0;
    std::size_t queue_prefixes = 0;
    std::map<std::string, std::uint64_t> port_deq;  // port prefix -> deq
    for (const auto& [name, enq] : m.counters) {
      if (!ends_with(name, ".enq_packets")) continue;
      ++queue_prefixes;
      const auto prefix = name.substr(0, name.size() - 12);  // strip suffix
      const auto deq = m.counter(prefix + ".deq_packets");
      // enq counts only ADMITTED packets (the tail-drop path rejects before
      // the enqueue counter), and the run drains (every flow completes, no
      // time-limit cut), so every admitted packet eventually dequeues. The
      // drop counter sits on top of enq: rejected arrivals, never enqueued.
      EXPECT_EQ(enq, deq) << prefix;
      // Dequeue-side sojourn histogram: exactly one sample per dequeue.
      EXPECT_EQ(m.hist_count(prefix + ".sojourn_ns"), deq) << prefix;
      total_deq += deq;
      const auto port_prefix = prefix.substr(0, prefix.rfind(".q"));
      port_deq[port_prefix] += deq;
    }
    EXPECT_GT(queue_prefixes, 0u);
    EXPECT_GT(total_deq, 0u);

    for (const auto& [port_prefix, deq] : port_deq) {
      const auto marks_enq = m.counter(port_prefix + ".marks.enqueue");
      const auto marks_deq = m.counter(port_prefix + ".marks.dequeue");
      total_marks += marks_enq + marks_deq;
      if (c.side == MarkSide::kDequeue) {
        EXPECT_EQ(marks_enq, 0u) << port_prefix;
        EXPECT_LE(marks_deq, deq) << port_prefix;
      } else {
        EXPECT_EQ(marks_deq, 0u) << port_prefix;
      }
      // One mark-latency sample per mark, regardless of side.
      EXPECT_EQ(m.hist_count(port_prefix + ".mark_sojourn_ns"),
                marks_enq + marks_deq)
          << port_prefix;
      // Inter-dequeue gaps: one sample per dequeue after the port's first.
      if (deq > 0) {
        EXPECT_EQ(m.hist_count(port_prefix + ".interdeq_gap_ns"), deq - 1)
            << port_prefix;
      }
      // Buffer-drop rollup equals the per-queue attribution.
      std::uint64_t q_drops = 0;
      for (const auto& [name, v] : m.counters) {
        if (name.rfind(port_prefix + ".q", 0) == 0 &&
            ends_with(name, ".drop_packets")) {
          q_drops += v;
        }
      }
      EXPECT_EQ(m.counter(port_prefix + ".drops.buffer"), q_drops)
          << port_prefix;
    }
    // The port-side mark total agrees with the experiment report's own
    // aggregation (switch marks; host NICs never mark in these scenarios).
    EXPECT_EQ(total_marks, report.switch_marks);

    // AQM self-accounting: every marker evaluated at least as often as it
    // marked, and its mark total matches the ports it served.
    std::uint64_t aqm_marks = 0;
    bool saw_aqm = false;
    for (const auto& [name, v] : m.counters) {
      if (name.rfind("aqm.", 0) != 0 || !ends_with(name, ".marks")) continue;
      saw_aqm = true;
      const auto evals =
          m.counter(name.substr(0, name.size() - 6) + ".evals");
      EXPECT_LE(v, evals) << name;
      aqm_marks += v;
    }
    EXPECT_TRUE(saw_aqm);
    EXPECT_EQ(aqm_marks, total_marks);
  }
}

TEST(ObsProperties, AifoSchedDropsAreDistinctFromBufferDrops) {
  // AIFO admission rejections are SCHEDULING drops: they land on the
  // drops.sched counter and FctReport::sched_drops, never on drops.buffer
  // (shared-buffer congestion) or the per-queue drop attribution, and the
  // marker never evaluates a rejected packet.
  auto cfg = grid_config(kGrid[0]);
  cfg.sched.kind = core::SchedKind::kAifo;
  cfg.sched.aifo_window = 16;
  cfg.sched.aifo_k = 0.0;           // strictest admission: headroom >= quantile
  cfg.star.buffer_bytes = 12'000;   // tight buffer so the gate engages
  cfg.load = 0.9;
  const auto report = core::run_fct_experiment(cfg);
  ASSERT_TRUE(report.metrics_collected);
  ASSERT_GT(report.sched_drops, 0u);
  const Indexed m(report.metrics);

  // Only switch ports run AIFO; host NICs ("port.<host>.nic") are plain
  // drop-tail FIFOs whose buffer drops are NOT in FctReport::switch_drops.
  std::uint64_t sched_total = 0;
  std::uint64_t buffer_total = 0;
  std::uint64_t q_drops = 0;
  for (const auto& [name, v] : m.counters) {
    if (name.rfind("port.sw", 0) != 0) continue;
    if (ends_with(name, ".drops.sched")) sched_total += v;
    if (ends_with(name, ".drops.buffer")) buffer_total += v;
    if (ends_with(name, ".drop_packets")) q_drops += v;
  }
  // The metric rollup matches the report's own aggregation on both axes,
  // and the buffer attribution is untouched by the admission gate.
  EXPECT_EQ(sched_total, report.sched_drops);
  EXPECT_EQ(buffer_total, report.switch_drops);
  EXPECT_EQ(buffer_total, q_drops);

  // Admitted packets still balance: enq counts only admitted arrivals and
  // the run drains, so every enqueue dequeues even while the gate rejects.
  for (const auto& [name, enq] : m.counters) {
    if (!ends_with(name, ".enq_packets")) continue;
    const auto prefix = name.substr(0, name.size() - 12);
    EXPECT_EQ(enq, m.counter(prefix + ".deq_packets")) << prefix;
  }
}

TEST(ObsProperties, CollectingMetricsChangesNoResult) {
  auto cfg = grid_config(kGrid[0]);
  cfg.collect_metrics = false;
  const auto off = core::run_fct_experiment(cfg);
  cfg.collect_metrics = true;
  const auto on = core::run_fct_experiment(cfg);
  EXPECT_FALSE(off.metrics_collected);
  EXPECT_TRUE(on.metrics_collected);
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.sim_end, on.sim_end);
  EXPECT_EQ(off.flows_completed, on.flows_completed);
  EXPECT_EQ(off.switch_drops, on.switch_drops);
  EXPECT_EQ(off.switch_marks, on.switch_marks);
  EXPECT_DOUBLE_EQ(off.summary.avg_all_us, on.summary.avg_all_us);
  EXPECT_DOUBLE_EQ(off.summary.p99_small_us, on.summary.p99_small_us);
}

TEST(ObsProperties, SweepMetricsByteIdenticalAcrossJobs) {
  runner::SweepSpec spec;
  spec.name = "obs-test";
  spec.base = grid_config(kGrid[0]);
  spec.base.num_flows = 25;
  spec.schemes = {{"tcn", core::Scheme::kTcn},
                  {"codel", core::Scheme::kCodel}};
  spec.loads = {0.4, 0.7};
  spec.seeds = {1, 2};

  runner::SweepOptions opt1;
  opt1.jobs = 1;
  const auto res1 = runner::run_sweep(spec, opt1);
  runner::SweepOptions opt4;
  opt4.jobs = 4;
  const auto res4 = runner::run_sweep(spec, opt4);
  ASSERT_TRUE(res1.ok());
  ASSERT_TRUE(res4.ok());
  EXPECT_EQ(runner::metrics_to_json(res1, "obs-test"),
            runner::metrics_to_json(res4, "obs-test"));
  EXPECT_EQ(runner::to_json(res1, "obs-test", /*include_timing=*/false),
            runner::to_json(res4, "obs-test", /*include_timing=*/false));
  // Every run actually collected metrics into the merged document.
  const auto doc = runner::metrics_to_json(res1, "obs-test");
  EXPECT_NE(doc.find("\"schema\": \"tcn-metrics-1\""), std::string::npos);
  for (const auto& r : res1.runs) {
    EXPECT_TRUE(r.report.metrics_collected);
    EXPECT_FALSE(r.report.metrics.empty());
  }
}

TEST(ObsProperties, TraceWriterCountsMatchTracer) {
  auto cfg = grid_config(kGrid[0]);
  cfg.num_flows = 10;
  MonotoneChecker counting;
  cfg.extra_observer = &counting;

  const std::string path = ::testing::TempDir() + "obs_trace_test.jsonl";
  cfg.trace_out = path;
  const auto report = core::run_fct_experiment(cfg);
  EXPECT_EQ(report.trace_records, counting.events());

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::uint64_t lines = 0;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"schema\":\"tcn-trace-1\"}");
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, report.trace_records);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tcn::obs
