// Workload tests: the four distributions of Fig. 4 (shape invariants),
// Poisson generators (arrival rate, offered load, service partitioning).
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <stdexcept>

#include "net/fifo_scheduler.hpp"

#include "net/marker.hpp"
#include "sim/random.hpp"
#include "topo/network.hpp"
#include "transport/flow.hpp"
#include "workload/distributions.hpp"
#include "workload/traffic_gen.hpp"

namespace tcn::workload {
namespace {

TEST(Distributions, AllFourExistAndAreNamed) {
  ASSERT_EQ(all_kinds().size(), 4u);
  for (const auto k : all_kinds()) {
    const auto& d = distribution(k);
    EXPECT_FALSE(d.empty());
    EXPECT_EQ(d.name(), name(k));
    EXPECT_DOUBLE_EQ(d.points().back().cdf, 1.0);
  }
}

TEST(Distributions, InverseCdfBoundaries) {
  // Satellite: quantile() at the exact boundaries of its domain, for every
  // workload CDF -- p=0 and p=1 map to the first/last point, out-of-range
  // p throws, and samples stay inside [first, last].
  for (const auto k : all_kinds()) {
    const auto& d = distribution(k);
    EXPECT_EQ(d.quantile(0.0), d.points().front().value) << name(k);
    EXPECT_EQ(d.quantile(1.0), d.points().back().value) << name(k);
    EXPECT_THROW((void)d.quantile(-0.001), std::invalid_argument);
    EXPECT_THROW((void)d.quantile(1.001), std::invalid_argument);
    sim::Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
      const double s = d.sample(rng);
      EXPECT_GE(s, d.points().front().value);
      EXPECT_LE(s, d.points().back().value);
    }
  }
}

TEST(Distributions, SinglePointCdfIsDegenerate) {
  // A one-point CDF (all mass at one value) must be valid and constant
  // across the whole quantile domain.
  const sim::Ecdf point({{42.0, 1.0}}, "point");
  EXPECT_EQ(point.quantile(0.0), 42.0);
  EXPECT_EQ(point.quantile(0.5), 42.0);
  EXPECT_EQ(point.quantile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(point.mean(), 42.0);
  sim::Rng rng(1);
  EXPECT_EQ(point.sample(rng), 42.0);
  // Flat (zero-mass) prefix segments resolve to a point, not an
  // interpolation across the gap.
  const sim::Ecdf flat({{10.0, 0.5}, {20.0, 0.5}, {30.0, 1.0}}, "flat");
  EXPECT_EQ(flat.quantile(0.5), 10.0);  // first point with cdf >= p
  EXPECT_EQ(flat.quantile(0.0), 10.0);
  EXPECT_EQ(flat.quantile(1.0), 30.0);
}

TEST(Distributions, AllAreHeavyTailed) {
  // Median far below mean for every workload (Sec. 6: "all the workloads are
  // heavy-tailed").
  for (const auto k : all_kinds()) {
    const auto& d = distribution(k);
    EXPECT_LT(d.quantile(0.5), d.mean() / 2.0) << name(k);
  }
}

TEST(Distributions, WebSearchByteShareBelow10MB) {
  // Sec. 6: ~60% of web-search bytes come from flows smaller than 10MB.
  const auto& d = distribution(Kind::kWebSearch);
  sim::Rng rng(5);
  double total = 0, below = 0;
  for (int i = 0; i < 200'000; ++i) {
    const double s = d.sample(rng);
    total += s;
    if (s < 10e6) below += s;
  }
  EXPECT_GT(below / total, 0.5);
  EXPECT_LT(below / total, 0.85);
}

TEST(Distributions, DataMiningMostFlowsTiny) {
  // VL2: ~70% of data-mining flows are under 10KB, yet big flows dominate
  // bytes.
  const auto& d = distribution(Kind::kDataMining);
  EXPECT_GE(d.cdf_at(10'000), 0.65);
  sim::Rng rng(6);
  double total = 0, big = 0;
  for (int i = 0; i < 200'000; ++i) {
    const double s = d.sample(rng);
    total += s;
    if (s > 10e6) big += s;
  }
  EXPECT_GT(big / total, 0.5);
}

TEST(Distributions, SmallFlowFractionsDiffer) {
  // The workloads must be distinguishable: cache is smallest, data mining has
  // the most sub-10KB flows, web search has the fewest.
  EXPECT_GT(distribution(Kind::kCache).cdf_at(10'000), 0.7);
  EXPECT_LT(distribution(Kind::kWebSearch).cdf_at(10'000), 0.3);
}

struct GenRig {
  GenRig() : launch([this](net::Host& a, net::Host& b, transport::FlowSpec spec) {
      fm.start_flow(a, b, std::move(spec));
    }) {
    topo::StarConfig cfg;
    cfg.num_hosts = 9;
    cfg.num_queues = 4;
    cfg.buffer_bytes = UINT64_MAX;
    cfg.host_delay = 5 * sim::kMicrosecond;
    network.emplace(topo::build_star(
        simulator, cfg, [] { return std::make_unique<net::FifoScheduler>(); },
        [](net::Scheduler&, const net::PortConfig&) {
          return std::make_unique<net::NullMarker>();
        }));
  }
  sim::Simulator simulator;
  std::optional<topo::Network> network;
  transport::FlowManager fm;
  FlowLauncher launch;
};

TEST(ConvergeGenerator, GeneratesRequestedFlowCount) {
  GenRig rig;
  GenConfig cfg;
  cfg.load = 0.5;
  cfg.num_flows = 200;
  cfg.num_services = 4;
  std::vector<net::Host*> senders;
  for (std::size_t i = 1; i < 9; ++i) senders.push_back(&rig.network->host(i));
  std::map<std::uint32_t, int> service_counts;
  ConvergeGenerator gen(
      rig.simulator, rig.launch, senders, &rig.network->host(0),
      &distribution(Kind::kCache), cfg,
      [&](std::uint32_t service, std::uint64_t size) {
        ++service_counts[service];
        transport::FlowSpec spec;
        spec.size = size;
        spec.service = service;
        return spec;
      });
  gen.start();
  rig.simulator.run();
  EXPECT_EQ(gen.flows_generated(), 200u);
  EXPECT_EQ(rig.fm.flows_started(), 200u);
  // All four services seen.
  EXPECT_EQ(service_counts.size(), 4u);
}

TEST(ConvergeGenerator, MeanGapMatchesLoad) {
  GenRig rig;
  GenConfig cfg;
  cfg.load = 0.8;
  cfg.num_flows = 1;
  std::vector<net::Host*> senders{&rig.network->host(1)};
  ConvergeGenerator gen(rig.simulator, rig.launch, senders, &rig.network->host(0),
                        &distribution(Kind::kWebSearch), cfg,
                        [](std::uint32_t, std::uint64_t size) {
                          transport::FlowSpec spec;
                          spec.size = size;
                          return spec;
                        });
  // load x 1Gbps = 100MB/s; mean web-search size / rate = expected gap.
  const double mean_size = distribution(Kind::kWebSearch).mean();
  const double expect_s = mean_size / (0.8 * 1e9 / 8);
  EXPECT_NEAR(sim::to_seconds(gen.mean_gap()), expect_s, expect_s * 0.01);
}

TEST(ConvergeGenerator, RejectsBadLoad) {
  GenRig rig;
  GenConfig cfg;
  cfg.load = 0.0;
  std::vector<net::Host*> senders{&rig.network->host(1)};
  EXPECT_THROW(
      ConvergeGenerator(rig.simulator, rig.launch, senders, &rig.network->host(0),
                        &distribution(Kind::kWebSearch), cfg,
                        [](std::uint32_t, std::uint64_t) {
                          return transport::FlowSpec{};
                        }),
      std::invalid_argument);
}

TEST(AllToAllGenerator, PartitionsPairsIntoServices) {
  GenRig rig;
  GenConfig cfg;
  cfg.load = 0.3;
  cfg.num_flows = 300;
  cfg.num_services = 7;
  std::vector<const sim::Ecdf*> dists(7, &distribution(Kind::kCache));
  std::map<std::uint32_t, int> service_counts;
  AllToAllGenerator gen(
      rig.simulator, rig.launch, rig.network->host_ptrs(), dists, cfg,
      [](std::size_t a, std::size_t b) {
        return static_cast<std::uint32_t>((a + b) % 7);
      },
      [&](std::uint32_t service, std::uint64_t size) {
        ++service_counts[service];
        transport::FlowSpec spec;
        spec.size = size;
        spec.service = service;
        return spec;
      });
  gen.start();
  rig.simulator.run();
  EXPECT_EQ(gen.flows_generated(), 300u);
  EXPECT_GE(service_counts.size(), 6u);  // all services materialize
}

TEST(AllToAllGenerator, NeverPicksSelfFlow) {
  GenRig rig;
  GenConfig cfg;
  cfg.load = 0.3;
  cfg.num_flows = 500;
  std::vector<const sim::Ecdf*> dists{&distribution(Kind::kCache)};
  bool violated = false;
  // Track via FlowResult src==dst is not visible; instead rely on address
  // equality through the spec hook: the generator passes hosts, so check by
  // instrumenting service_of which receives (src,dst).
  AllToAllGenerator gen(
      rig.simulator, rig.launch, rig.network->host_ptrs(), dists, cfg,
      [&](std::size_t a, std::size_t b) {
        if (a == b) violated = true;
        return 0u;
      },
      [](std::uint32_t, std::uint64_t size) {
        transport::FlowSpec spec;
        spec.size = size;
        return spec;
      });
  gen.start();
  rig.simulator.run();
  EXPECT_FALSE(violated);
}

}  // namespace
}  // namespace tcn::workload
