// Unit tests for the network substrate: packet model, queues, ports (timing,
// shared buffer, marking hooks), switch routing/ECMP, host demux, token
// bucket.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "aqm/tcn.hpp"
#include "net/fifo_scheduler.hpp"
#include "net/host.hpp"
#include "sched/dwrr.hpp"
#include "net/marker.hpp"
#include "net/packet.hpp"
#include "net/port.hpp"
#include "net/queue.hpp"
#include "net/switch.hpp"
#include "net/token_bucket.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace tcn::net {
namespace {

using test::CaptureNode;
using test::make_test_packet;

TEST(Packet, UidsAreUnique) {
  auto a = make_packet();
  auto b = make_packet();
  EXPECT_NE(a->uid, b->uid);
}

TEST(Packet, EcnPredicates) {
  auto p = make_packet();
  p->ecn = Ecn::kNotEct;
  EXPECT_FALSE(p->ect());
  EXPECT_FALSE(p->ce());
  p->ecn = Ecn::kEct0;
  EXPECT_TRUE(p->ect());
  p->ecn = Ecn::kEct1;
  EXPECT_TRUE(p->ect());
  p->ecn = Ecn::kCe;
  EXPECT_TRUE(p->ce());
  EXPECT_FALSE(p->ect());
}

TEST(PacketQueue, FifoOrderAndByteAccounting) {
  PacketQueue q;
  EXPECT_TRUE(q.empty());
  q.push(make_test_packet(100, 0, 1));
  q.push(make_test_packet(200, 0, 2));
  EXPECT_EQ(q.bytes(), 300u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.front()->flow, 1u);
  auto p = q.pop();
  EXPECT_EQ(p->flow, 1u);
  EXPECT_EQ(q.bytes(), 200u);
  q.pop();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0u);
}

class PortTest : public ::testing::Test {
 protected:
  std::unique_ptr<Port> make_port(PortConfig cfg,
                                  std::unique_ptr<Marker> marker = nullptr) {
    if (!marker) marker = std::make_unique<NullMarker>();
    auto port = std::make_unique<Port>(sim_, "p", cfg,
                                       std::make_unique<FifoScheduler>(),
                                       std::move(marker));
    port->connect(&peer_, 7);
    return port;
  }

  sim::Simulator sim_;
  CaptureNode peer_;
};

TEST_F(PortTest, SerializationTiming) {
  PortConfig cfg;
  cfg.rate_bps = 1'000'000'000;
  cfg.prop_delay = 5 * sim::kMicrosecond;
  auto port = make_port(cfg);
  port->enqueue(make_test_packet(1500), 0);
  sim_.run();
  ASSERT_EQ(peer_.packets.size(), 1u);
  // 12us serialization + 5us propagation.
  EXPECT_EQ(sim_.now(), 17 * sim::kMicrosecond);
  EXPECT_EQ(peer_.ingresses[0], 7u);
}

TEST_F(PortTest, BackToBackPacketsSerialize) {
  PortConfig cfg;
  cfg.rate_bps = 1'000'000'000;
  auto port = make_port(cfg);
  port->enqueue(make_test_packet(1500, 0, 1), 0);
  port->enqueue(make_test_packet(1500, 0, 2), 0);
  sim_.run();
  ASSERT_EQ(peer_.packets.size(), 2u);
  EXPECT_EQ(sim_.now(), 24 * sim::kMicrosecond);
  EXPECT_EQ(peer_.packets[0]->flow, 1u);
  EXPECT_EQ(peer_.packets[1]->flow, 2u);
}

TEST_F(PortTest, RateLimitFractionSlowsDrain) {
  PortConfig cfg;
  cfg.rate_bps = 1'000'000'000;
  cfg.rate_limit_fraction = 0.5;
  auto port = make_port(cfg);
  EXPECT_EQ(port->effective_rate_bps(), 500'000'000u);
  port->enqueue(make_test_packet(1500), 0);
  sim_.run();
  EXPECT_EQ(sim_.now(), 24 * sim::kMicrosecond);
}

TEST_F(PortTest, SharedBufferTailDrop) {
  PortConfig cfg;
  cfg.rate_bps = 1'000;  // effectively frozen link
  cfg.num_queues = 2;
  cfg.buffer_bytes = 3'000;
  auto port = make_port(cfg);
  // The first packet goes straight into service (leaves the buffer).
  port->enqueue(make_test_packet(1500), 0);
  port->enqueue(make_test_packet(1500), 1);
  port->enqueue(make_test_packet(1500), 0);  // buffer now exactly full
  EXPECT_EQ(port->total_bytes(), 3'000u);
  port->enqueue(make_test_packet(1500), 0);  // over: dropped
  EXPECT_EQ(port->counters().drops, 1u);
  EXPECT_EQ(port->counters().drop_bytes, 1500u);
  EXPECT_EQ(port->counters().enq_packets, 3u);
  EXPECT_EQ(port->total_bytes(), 3'000u);
}

TEST_F(PortTest, SharedBufferIsFirstInFirstServe) {
  // A small packet still fits after a big one was dropped -- admission is
  // purely by arrival order and remaining space, not per-queue quotas.
  PortConfig cfg;
  cfg.rate_bps = 1'000;
  cfg.num_queues = 2;
  cfg.buffer_bytes = 2'000;
  auto port = make_port(cfg);
  port->enqueue(make_test_packet(1800), 0);  // in service
  port->enqueue(make_test_packet(1800), 0);  // buffered
  port->enqueue(make_test_packet(1800), 1);  // dropped (would exceed)
  EXPECT_EQ(port->counters().drops, 1u);
  EXPECT_EQ(port->queue_bytes(1), 0u);
  port->enqueue(make_test_packet(150), 1);  // fits in the remaining 200B
  EXPECT_EQ(port->counters().drops, 1u);
  EXPECT_EQ(port->queue_bytes(1), 150u);
}

/// Marker that marks everything at enqueue.
class AlwaysMark final : public Marker {
 public:
  bool on_enqueue(const MarkContext&, const Packet&) override { return true; }
  [[nodiscard]] std::string_view name() const override { return "always"; }
};

TEST_F(PortTest, MarkOnlyAppliesToEctPackets) {
  PortConfig cfg;
  cfg.rate_bps = 1'000'000'000;
  auto port = make_port(cfg, std::make_unique<AlwaysMark>());
  port->enqueue(make_test_packet(100, 0, 1, Ecn::kEct0), 0);
  port->enqueue(make_test_packet(100, 0, 2, Ecn::kNotEct), 0);
  sim_.run();
  ASSERT_EQ(peer_.packets.size(), 2u);
  EXPECT_TRUE(peer_.packets[0]->ce());
  EXPECT_FALSE(peer_.packets[1]->ce());
  EXPECT_EQ(port->counters().marks, 1u);
}

/// Marker that records the sojourn implied by enqueue_ts at dequeue.
class SojournProbe final : public Marker {
 public:
  bool on_dequeue(const MarkContext& ctx, const Packet& p) override {
    sojourns.push_back(ctx.now - p.enqueue_ts);
    return false;
  }
  [[nodiscard]] std::string_view name() const override { return "probe"; }
  std::vector<sim::Time> sojourns;
};

TEST_F(PortTest, EnqueueTimestampGivesSojourn) {
  PortConfig cfg;
  cfg.rate_bps = 1'000'000'000;  // 12us per 1500B
  auto probe = std::make_unique<SojournProbe>();
  auto* probe_raw = probe.get();
  auto port = make_port(cfg, std::move(probe));
  port->enqueue(make_test_packet(1500, 0, 1), 0);
  port->enqueue(make_test_packet(1500, 0, 2), 0);
  sim_.run();
  ASSERT_EQ(probe_raw->sojourns.size(), 2u);
  EXPECT_EQ(probe_raw->sojourns[0], 0);                      // served at once
  EXPECT_EQ(probe_raw->sojourns[1], 12 * sim::kMicrosecond); // waited 1 pkt
}

// The static-dispatch variants (net/dispatch.hpp) must be a pure call-
// mechanism change: identical traffic through a devirtualized port and a
// force_virtual_dispatch one must produce identical counters, deliveries
// and marks. Uses a real scheduler/marker pair from the zoo so the visit
// actually lands on concrete alternatives.
TEST(PortDispatchTest, StaticAndVirtualDispatchAreEquivalent) {
  struct Run {
    Port::Counters counters;
    std::size_t delivered = 0;
    std::size_t ce_marked = 0;
  };
  const auto drive = [](bool force_virtual) {
    sim::Simulator sim;
    CaptureNode peer;
    PortConfig cfg;
    cfg.rate_bps = 1'000'000'000;
    cfg.num_queues = 2;
    cfg.buffer_bytes = 20'000;
    cfg.force_virtual_dispatch = force_virtual;
    Port port(sim, "p", cfg,
              std::make_unique<sched::DwrrScheduler>(
                  std::vector<std::uint64_t>{1500, 1500}),
              std::make_unique<aqm::TcnMarker>(20 * sim::kMicrosecond));
    port.connect(&peer, 0);
    // Two queues, enough depth that TCN's sojourn threshold trips, plus a
    // burst that overflows the shared buffer.
    for (int i = 0; i < 40; ++i) {
      port.enqueue(make_test_packet(1500, 0, 1 + (i % 2), Ecn::kEct0), i % 2);
    }
    sim.run();
    Run r;
    r.counters = port.counters();
    r.delivered = peer.packets.size();
    for (const auto& p : peer.packets) {
      if (p->ce()) ++r.ce_marked;
    }
    return r;
  };
  const Run st = drive(false);
  const Run vt = drive(true);
  EXPECT_EQ(st.delivered, vt.delivered);
  EXPECT_EQ(st.ce_marked, vt.ce_marked);
  EXPECT_GT(st.ce_marked, 0u);  // the marker really ran on both paths
  EXPECT_EQ(st.counters.enq_packets, vt.counters.enq_packets);
  EXPECT_EQ(st.counters.tx_packets, vt.counters.tx_packets);
  EXPECT_EQ(st.counters.drops, vt.counters.drops);
  EXPECT_EQ(st.counters.marks, vt.counters.marks);
}

TEST(PortConfigTest, InvalidConfigsThrow) {
  sim::Simulator s;
  PortConfig cfg;
  cfg.num_queues = 0;
  EXPECT_THROW(Port(s, "p", cfg, std::make_unique<FifoScheduler>(),
                    std::make_unique<NullMarker>()),
               std::invalid_argument);
  cfg.num_queues = 1;
  cfg.rate_limit_fraction = 0.0;
  EXPECT_THROW(Port(s, "p", cfg, std::make_unique<FifoScheduler>(),
                    std::make_unique<NullMarker>()),
               std::invalid_argument);
}

TEST(SwitchTest, RoutesByDestination) {
  sim::Simulator s;
  Switch sw(s, "sw");
  CaptureNode a, b;
  PortConfig cfg;
  cfg.rate_bps = 1'000'000'000;
  const auto pa = sw.add_port(cfg, std::make_unique<FifoScheduler>(),
                              std::make_unique<NullMarker>());
  const auto pb = sw.add_port(cfg, std::make_unique<FifoScheduler>(),
                              std::make_unique<NullMarker>());
  sw.connect(pa, &a, 0);
  sw.connect(pb, &b, 0);
  sw.add_route(1, {pa});
  sw.add_route(2, {pb});

  auto p1 = make_test_packet(100);
  p1->dst = 1;
  auto p2 = make_test_packet(100);
  p2->dst = 2;
  sw.receive(std::move(p1), 0);
  sw.receive(std::move(p2), 0);
  s.run();
  EXPECT_EQ(a.packets.size(), 1u);
  EXPECT_EQ(b.packets.size(), 1u);
}

TEST(SwitchTest, UnroutedPacketsAreCountedAndDropped) {
  sim::Simulator s;
  Switch sw(s, "sw");
  auto p = make_test_packet(100);
  p->dst = 99;
  sw.receive(std::move(p), 0);
  EXPECT_EQ(sw.unrouted(), 1u);
}

TEST(SwitchTest, DscpClassifierClampsToQueueCount) {
  const auto c = dscp_classifier();
  auto p = make_test_packet(100, /*dscp=*/6);
  EXPECT_EQ(c(*p, 8), 6u);
  EXPECT_EQ(c(*p, 4), 3u);  // clamped
  p->dscp = 0;
  EXPECT_EQ(c(*p, 4), 0u);
}

TEST(SwitchTest, EcmpSpreadsFlowsButPinsEachFlow) {
  sim::Simulator s;
  Switch sw(s, "sw");
  CaptureNode nodes[4];
  PortConfig cfg;
  cfg.rate_bps = 10'000'000'000ULL;
  std::vector<std::size_t> group;
  for (auto& n : nodes) {
    const auto p = sw.add_port(cfg, std::make_unique<FifoScheduler>(),
                               std::make_unique<NullMarker>());
    sw.connect(p, &n, 0);
    group.push_back(p);
  }
  sw.add_route(5, group);

  // 64 flows, 3 packets each: each flow must stay on one port, and the flows
  // must not all hash to the same port.
  for (std::uint16_t f = 0; f < 64; ++f) {
    for (int k = 0; k < 3; ++k) {
      auto p = make_test_packet(100, 0, f);
      p->dst = 5;
      p->src = 1;
      p->sport = 1000 + f;
      p->dport = 80;
      sw.receive(std::move(p), 0);
    }
  }
  s.run();
  std::size_t used = 0;
  std::size_t total = 0;
  for (auto& n : nodes) {
    if (!n.packets.empty()) ++used;
    total += n.packets.size();
    // All packets of one flow on one port: check per-flow counts are 0 or 3.
    std::map<std::uint64_t, int> per_flow;
    for (auto& p : n.packets) ++per_flow[p->flow];
    for (const auto& [flow, count] : per_flow) EXPECT_EQ(count, 3);
  }
  EXPECT_EQ(total, 64u * 3);
  EXPECT_GE(used, 3u);  // 64 flows over 4 ports: all-in-one is ~impossible
}

TEST(HostTest, DemuxesByDport) {
  sim::Simulator s;
  PortConfig nic;
  nic.rate_bps = 1'000'000'000;
  Host h(s, "h", 1, nic, /*stack_delay=*/0);
  std::vector<std::uint64_t> got_a, got_b;
  h.bind(10, [&](PacketPtr p) { got_a.push_back(p->flow); });
  h.bind(20, [&](PacketPtr p) { got_b.push_back(p->flow); });

  auto p1 = make_test_packet(100, 0, 1);
  p1->dport = 10;
  auto p2 = make_test_packet(100, 0, 2);
  p2->dport = 20;
  auto p3 = make_test_packet(100, 0, 3);
  p3->dport = 30;  // unbound: silently dropped
  h.receive(std::move(p1), 0);
  h.receive(std::move(p2), 0);
  h.receive(std::move(p3), 0);
  s.run();
  EXPECT_EQ(got_a, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(got_b, (std::vector<std::uint64_t>{2}));
}

TEST(HostTest, StackDelayAppliedBothWays) {
  sim::Simulator s;
  PortConfig nic;
  nic.rate_bps = 1'000'000'000;
  Host h(s, "h", 1, nic, /*stack_delay=*/30 * sim::kMicrosecond);
  CaptureNode peer;
  h.connect(&peer, 0);

  auto out = make_test_packet(1000);
  out->dst = 2;
  h.send(std::move(out));
  s.run();
  ASSERT_EQ(peer.packets.size(), 1u);
  // 30us stack + 8us serialization.
  EXPECT_EQ(s.now(), 38 * sim::kMicrosecond);

  sim::Time delivered_at = -1;
  h.bind(10, [&](PacketPtr) { delivered_at = s.now(); });
  auto in = make_test_packet(100);
  in->dport = 10;
  h.receive(std::move(in), 0);
  s.run();
  EXPECT_EQ(delivered_at, 38 * sim::kMicrosecond + 30 * sim::kMicrosecond);
}

TEST(HostTest, EphemeralPortsNeverRepeat) {
  sim::Simulator s;
  PortConfig nic;
  Host h(s, "h", 1, nic);
  std::set<std::uint16_t> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(h.allocate_port()).second);
  }
}

TEST(TokenBucketTest, AllowsBurstThenPaces) {
  TokenBucket tb(8'000, 1'000);  // 1000B/s refill, 1000B bucket
  EXPECT_EQ(tb.earliest(0, 1'000), 0);
  tb.consume(0, 1'000);
  // Empty bucket: 500B needs 0.5s refill.
  const auto t = tb.earliest(0, 500);
  EXPECT_NEAR(sim::to_seconds(t), 0.5, 1e-6);
  // After a second, tokens are capped at the bucket size.
  EXPECT_NEAR(tb.tokens_at(10 * sim::kSecond), 1'000.0, 1e-9);
}

TEST(TokenBucketTest, PaperPrototypeShaping) {
  // Sec. 5: 99.5% of 1G with a 2.5KB bucket -> a 1500B packet is never
  // delayed by more than ~the serialization of one extra packet.
  TokenBucket tb(995'000'000, 2'500);
  tb.consume(0, 2'500);
  const auto wait = tb.earliest(0, 1'500);
  EXPECT_LT(wait, 15 * sim::kMicrosecond);
  EXPECT_GT(wait, 10 * sim::kMicrosecond);
}

}  // namespace
}  // namespace tcn::net
