// Tests for the parallel sweep runner (src/runner): JSON writer behaviour,
// grid expansion (including the fault axis), thread-pool lifecycle, failure
// policies (cancel_all / record_and_continue / retry) with their error
// taxonomy, the determinism contract (same sweep at jobs=1 and jobs=N
// produces bit-identical aggregated results, failures included), and a
// golden for the tcn-bench-1 JSON schema.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "net/packet.hpp"
#include "runner/json.hpp"
#include "runner/results.hpp"
#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"
#include "topo/network.hpp"

namespace tcn {
namespace {

using runner::JsonWriter;

// ---------------------------------------------------------------- JSON ----

TEST(Json, FormatDoubleShortestRoundTrip) {
  EXPECT_EQ(runner::format_double(0.5), "0.5");
  EXPECT_EQ(runner::format_double(0.0), "0");
  EXPECT_EQ(runner::format_double(2000.0), "2000");
  EXPECT_EQ(runner::format_double(-3.25), "-3.25");
  // A value with no short decimal form still round-trips exactly.
  const double ugly = 0.1 + 0.2;
  EXPECT_EQ(std::strtod(runner::format_double(ugly).c_str(), nullptr), ugly);
  EXPECT_EQ(runner::format_double(std::nan("")), "null");
}

TEST(Json, EscapesControlCharsAndQuotes) {
  EXPECT_EQ(runner::escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(runner::escape_json(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, WriterProducesNestedDocument) {
  JsonWriter w(0);  // compact
  w.begin_object();
  w.key("a").value(std::uint64_t{1});
  w.key("b").begin_array().value(0.5).value(true).null().end_array();
  w.key("c").begin_object().key("d").value("x").end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[0.5,true,null],"c":{"d":"x"}})");
}

TEST(Json, WriterRejectsMisuse) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), std::logic_error);  // still open
  }
}

// ---------------------------------------------------------- packet uids ----

TEST(PacketUid, ScopeRestartsAndNests) {
  {
    net::PacketUidScope outer;
    EXPECT_EQ(net::make_packet()->uid, 1u);
    EXPECT_EQ(net::make_packet()->uid, 2u);
    {
      net::PacketUidScope inner;
      EXPECT_EQ(net::make_packet()->uid, 1u);  // inner shadows outer
    }
    EXPECT_EQ(net::make_packet()->uid, 3u);  // outer restored
    EXPECT_EQ(outer.allocated(), 3u);
  }
  // Outside any scope the process-wide counter still hands out unique ids.
  const auto a = net::make_packet();
  const auto b = net::make_packet();
  EXPECT_NE(a->uid, b->uid);
}

// ---------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  runner::ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
  EXPECT_EQ(pool.tasks_completed(), 200u);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ShutdownWithoutDiscardDrainsQueue) {
  std::atomic<int> count{0};
  runner::ThreadPool pool(2);
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.shutdown(/*discard_pending=*/false);
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, AcceptsMoveOnlyTasks) {
  // The queue holds move-only InlineCallbacks now: job closures (and the
  // resources they own) are moved in exactly once, never copied per submit.
  std::atomic<int> result{0};
  runner::ThreadPool pool(2);
  auto payload = std::make_unique<int>(42);
  pool.submit([p = std::move(payload), &result] { result = *p; });
  pool.wait_idle();
  EXPECT_EQ(result.load(), 42);
  pool.shutdown();
}

TEST(ThreadPool, OversizedTasksGoThroughBoxed) {
  // Closures beyond the 64B inline budget use the sanctioned heap fallback.
  struct Fat {
    char blob[128] = {};
  };
  std::atomic<int> result{0};
  runner::ThreadPool pool(1);
  Fat fat;
  fat.blob[0] = 7;
  pool.submit(sim::boxed([fat, &result] { result = fat.blob[0]; }));
  pool.wait_idle();
  EXPECT_EQ(result.load(), 7);
  pool.shutdown();
}

TEST(ThreadPool, EscapedExceptionsAreCountedNotSwallowed) {
#ifdef NDEBUG
  // Release builds survive the escaped exception but count and report it:
  // a task throw is always a harness bug, never silently dropped.
  runner::ThreadPool pool(1);
  pool.submit([] { throw std::runtime_error("task bug"); });
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(pool.tasks_faulted(), 1u);
  pool.shutdown();
#else
  // Debug builds abort instead, so the bug cannot hide behind a green run.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        runner::ThreadPool pool(1);
        pool.submit([] { throw std::runtime_error("task bug"); });
        pool.wait_idle();
      },
      "exception escaped a task");
#endif
}

// ---------------------------------------------------------------- sweep ----

core::FctExperiment small_cfg() {
  core::FctExperiment cfg;
  cfg.scheme = core::Scheme::kTcn;
  cfg.params.rtt_lambda = 250 * sim::kMicrosecond;
  cfg.params.red_threshold_bytes = 32'000;  // RED schemes reject 0
  cfg.sched.kind = core::SchedKind::kDwrr;
  cfg.load = 0.4;
  cfg.num_flows = 40;
  cfg.num_services = 2;
  cfg.service_workloads = {workload::Kind::kCache};
  cfg.star.num_hosts = 5;
  cfg.star.host_delay = topo::star_host_delay_for_rtt(
      250 * sim::kMicrosecond, cfg.star.link_prop);
  cfg.seed = 7;
  return cfg;
}

runner::SweepSpec small_spec() {
  runner::SweepSpec spec;
  spec.name = "unit";
  spec.base = small_cfg();
  spec.schemes = {{"TCN", core::Scheme::kTcn},
                  {"RED-queue", core::Scheme::kRedPerQueue}};
  spec.loads = {0.4, 0.6};
  return spec;
}

TEST(Sweep, ExpansionIsLoadMajorThenScheme) {
  auto spec = small_spec();
  spec.seeds = {7, 8};
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 2u * 2u * 2u);
  // loads-major, then schemes, then seeds.
  EXPECT_EQ(jobs[0].cfg.load, 0.4);
  EXPECT_EQ(jobs[0].label, "TCN");
  EXPECT_EQ(jobs[0].cfg.seed, 7u);
  EXPECT_EQ(jobs[1].cfg.seed, 8u);
  EXPECT_EQ(jobs[2].label, "RED-queue");
  EXPECT_EQ(jobs[4].cfg.load, 0.6);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].group, "unit");
  }
}

TEST(Sweep, DeterministicAcrossJobCounts) {
  const auto spec = small_spec();

  runner::SweepOptions serial;
  serial.jobs = 1;
  const auto a = runner::run_sweep(spec, serial);

  runner::SweepOptions parallel;
  parallel.jobs = 4;
  const auto b = runner::run_sweep(spec, parallel);

  ASSERT_EQ(a.runs.size(), b.runs.size());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.jobs_used, 1u);
  EXPECT_EQ(b.jobs_used, 4u);
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    const auto& ra = a.runs[i].report;
    const auto& rb = b.runs[i].report;
    // Bit-exact, not approximate: the simulation must not notice threads.
    EXPECT_EQ(ra.summary.avg_all_us, rb.summary.avg_all_us) << "run " << i;
    EXPECT_EQ(ra.summary.p99_small_us, rb.summary.p99_small_us);
    EXPECT_EQ(ra.summary.count, rb.summary.count);
    EXPECT_EQ(ra.events, rb.events);
    EXPECT_EQ(ra.switch_drops, rb.switch_drops);
    EXPECT_EQ(ra.switch_marks, rb.switch_marks);
    EXPECT_EQ(ra.flows_completed, rb.flows_completed);
    EXPECT_EQ(ra.sim_end, rb.sim_end);
  }
  // The serialized documents (minus wall-clock) must match byte for byte.
  EXPECT_EQ(runner::to_json(a, "unit", /*include_timing=*/false),
            runner::to_json(b, "unit", /*include_timing=*/false));
}

TEST(Sweep, CancelsRemainingJobsOnFirstFailure) {
  auto spec = small_spec();
  spec.base.num_services = 0;  // every job throws in run_fct_experiment
  runner::SweepOptions opt;
  opt.jobs = 1;
  const auto res = runner::run_sweep(spec, opt);
  ASSERT_EQ(res.runs.size(), 4u);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.failed, 1u);   // first job fails...
  EXPECT_EQ(res.skipped, 3u);  // ...the rest never run
  EXPECT_FALSE(res.runs[0].ok);
  EXPECT_NE(res.runs[0].error.find("services"), std::string::npos);
  EXPECT_EQ(res.runs[0].error_kind, runner::ErrorKind::kException);
  EXPECT_EQ(res.runs[0].attempts, 1u);
  EXPECT_TRUE(res.runs[1].skipped);
  EXPECT_EQ(res.runs[1].error, "cancelled");
  EXPECT_EQ(res.runs[1].error_kind, runner::ErrorKind::kCancelled);
  EXPECT_EQ(res.runs[1].attempts, 0u);  // never executed
}

TEST(Sweep, RecordAndContinueRunsEverything) {
  auto spec = small_spec();
  spec.base.num_services = 0;
  runner::SweepOptions opt;
  opt.jobs = 2;
  opt.failure_policy = runner::FailurePolicy::kRecordAndContinue;
  const auto res = runner::run_sweep(spec, opt);
  EXPECT_EQ(res.failed, 4u);
  EXPECT_EQ(res.skipped, 0u);
  EXPECT_EQ(res.failed_exception, 4u);
  for (const auto& r : res.runs) EXPECT_EQ(r.attempts, 1u);
}

TEST(Sweep, ParallelFailureSkipsOnlyUnstartedJobs) {
  auto spec = small_spec();
  spec.base.num_services = 0;
  runner::SweepOptions opt;
  opt.jobs = 4;
  const auto res = runner::run_sweep(spec, opt);
  EXPECT_FALSE(res.ok());
  EXPECT_GE(res.failed, 1u);
  EXPECT_EQ(res.failed + res.skipped, 4u);
}

TEST(Sweep, OnDoneSeesEveryRecord) {
  std::vector<std::size_t> seen;
  runner::SweepOptions opt;
  opt.jobs = 4;
  opt.on_done = [&seen](const runner::RunRecord& r) {
    seen.push_back(r.job.index);  // serialized by the runner
  };
  const auto res = runner::run_sweep(small_spec(), opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(seen.size(), res.runs.size());
}

// ------------------------------------------------------ failure policies ----

TEST(Sweep, ErrorKindAndFailurePolicyNamesRoundTrip) {
  using runner::ErrorKind;
  for (auto k : {ErrorKind::kNone, ErrorKind::kException, ErrorKind::kTimeout,
                 ErrorKind::kInvariant, ErrorKind::kOomGuard,
                 ErrorKind::kCancelled}) {
    EXPECT_EQ(runner::error_kind_from_name(runner::error_kind_name(k)), k);
  }
  EXPECT_THROW((void)runner::error_kind_from_name("nope"),
               std::invalid_argument);
  using runner::FailurePolicy;
  for (auto p : {FailurePolicy::kCancelAll, FailurePolicy::kRecordAndContinue,
                 FailurePolicy::kRetry}) {
    EXPECT_EQ(runner::failure_policy_from_name(runner::failure_policy_name(p)),
              p);
  }
  EXPECT_THROW((void)runner::failure_policy_from_name("nope"),
               std::invalid_argument);
}

TEST(Sweep, RetryBackoffIsDeterministicAndBounded) {
  runner::RetryPolicy p;  // base 100 ms, cap 5000 ms, jitter 0.5
  const double a = runner::retry_backoff_ms(p, 2, 7, 42);
  EXPECT_EQ(a, runner::retry_backoff_ms(p, 2, 7, 42));  // pure function
  EXPECT_NE(a, runner::retry_backoff_ms(p, 2, 8, 42));  // decorrelated by job
  EXPECT_NE(a, runner::retry_backoff_ms(p, 3, 7, 42));  // ...and by attempt
  EXPECT_GE(a, 50.0);  // attempt 2: base * [1-jitter, 1+jitter)
  EXPECT_LT(a, 150.0);
  const double b = runner::retry_backoff_ms(p, 3, 7, 42);
  EXPECT_GE(b, 100.0);  // attempt 3 doubles the base
  EXPECT_LT(b, 300.0);
  p.jitter = 0.0;
  // The exponential curve is capped, and attempt 1 never waits.
  EXPECT_EQ(runner::retry_backoff_ms(p, 30, 0, 0), p.backoff_max_ms);
  EXPECT_EQ(runner::retry_backoff_ms(p, 1, 0, 0), 0.0);
}

TEST(Sweep, RetryRecordsAttemptsAndGivesUp) {
  auto spec = small_spec();
  spec.base.num_services = 0;  // deterministic failure: retries cannot help
  runner::SweepOptions opt;
  opt.jobs = 2;
  opt.failure_policy = runner::FailurePolicy::kRetry;
  opt.retry.max_attempts = 3;
  opt.retry_sleep = false;
  const auto res = runner::run_sweep(spec, opt);
  EXPECT_EQ(res.failed, 4u);
  EXPECT_EQ(res.skipped, 0u);
  EXPECT_EQ(res.retries, 4u * 2u);  // two extra executions per job
  for (const auto& r : res.runs) {
    EXPECT_EQ(r.attempts, 3u);
    EXPECT_EQ(r.error_kind, runner::ErrorKind::kException);
  }
}

TEST(Sweep, FailureDeterminismAcrossJobCounts) {
  // Mixed grid: "none" cells succeed; the bad-target fault cells throw
  // deterministically when the plan is applied to the topology. The
  // aggregated document (minus wall-clock fields) must not depend on the
  // worker count under either non-cancelling policy.
  auto spec = small_spec();
  spec.faults = {{"none", {}},
                 {"loss:no-such-port:0.01",
                  fault::parse_fault_specs("loss:no-such-port:0.01")}};
  for (auto policy : {runner::FailurePolicy::kRecordAndContinue,
                      runner::FailurePolicy::kRetry}) {
    runner::SweepOptions serial;
    serial.jobs = 1;
    serial.failure_policy = policy;
    serial.retry.max_attempts = 2;
    serial.retry_sleep = false;
    runner::SweepOptions parallel = serial;
    parallel.jobs = 8;
    const auto a = runner::run_sweep(spec, serial);
    const auto b = runner::run_sweep(spec, parallel);
    ASSERT_EQ(a.runs.size(), 8u);
    EXPECT_EQ(a.completed, 4u);
    EXPECT_EQ(a.failed, 4u);
    EXPECT_EQ(a.failed_exception, 4u);
    EXPECT_EQ(b.failed, 4u);
    EXPECT_EQ(runner::to_json(a, "unit", /*include_timing=*/false),
              runner::to_json(b, "unit", /*include_timing=*/false))
        << "policy " << runner::failure_policy_name(policy);
  }
}

TEST(Sweep, EventBudgetRecordsTimeout) {
  auto spec = small_spec();
  spec.schemes = {{"TCN", core::Scheme::kTcn}};
  spec.loads = {0.4};
  spec.base.event_budget = 500;  // far fewer events than the run needs
  runner::SweepOptions opt;
  opt.failure_policy = runner::FailurePolicy::kRecordAndContinue;
  const auto res = runner::run_sweep(spec, opt);
  ASSERT_EQ(res.runs.size(), 1u);
  EXPECT_FALSE(res.runs[0].ok);
  EXPECT_EQ(res.runs[0].error_kind, runner::ErrorKind::kTimeout);
  EXPECT_NE(res.runs[0].error.find("budget"), std::string::npos)
      << res.runs[0].error;
  EXPECT_EQ(res.failed_timeout, 1u);
}

TEST(Sweep, HarnessMetricsMirrorTotals) {
  auto spec = small_spec();
  spec.base.num_services = 0;
  runner::SweepOptions opt;
  opt.failure_policy = runner::FailurePolicy::kRecordAndContinue;
  const auto res = runner::run_sweep(spec, opt);
  auto counter = [&](std::string_view name) -> std::uint64_t {
    for (const auto& c : res.harness_metrics.counters) {
      if (c.name == name) return c.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return ~std::uint64_t{0};
  };
  EXPECT_EQ(counter("runner/jobs_total"), res.runs.size());
  EXPECT_EQ(counter("runner/completed"), res.completed);
  EXPECT_EQ(counter("runner/failed"), res.failed);
  EXPECT_EQ(counter("runner/failed_exception"), res.failed_exception);
  EXPECT_EQ(counter("runner/skipped"), res.skipped);
  EXPECT_EQ(counter("runner/restored"), 0u);
  EXPECT_EQ(counter("runner/pool_exceptions"), 0u);
}

// The event-engine telemetry rides the same harness registry as runner/*:
// the gauge holds the sweep-wide pending peak over ok runs, the counter sums
// calendar resizes. Needs completing runs, unlike the mirror test above.
TEST(Sweep, HarnessMetricsCarryEventEngineTelemetry) {
  const auto spec = small_spec();
  runner::SweepOptions opt;
  const auto res = runner::run_sweep(spec, opt);
  ASSERT_GT(res.completed, 0u);
  std::uint64_t want_peak = 0;
  std::uint64_t want_resizes = 0;
  for (const auto& r : res.runs) {
    if (!r.ok) continue;
    want_peak = std::max(want_peak, r.report.sim_peak_pending);
    want_resizes += r.report.sim_calendar_resizes;
  }
  EXPECT_GT(want_peak, 0u);  // a completed run always pushed events
  const auto& counters = res.harness_metrics.counters;
  const auto c = std::find_if(counters.begin(), counters.end(), [](const auto& v) {
    return v.name == "sim/calendar_resizes";
  });
  ASSERT_NE(c, counters.end());
  EXPECT_EQ(c->value, want_resizes);
  const auto& gauges = res.harness_metrics.gauges;
  const auto g = std::find_if(gauges.begin(), gauges.end(), [](const auto& v) {
    return v.name == "sim/event_peak_pending";
  });
  ASSERT_NE(g, gauges.end());
  EXPECT_EQ(g->last, static_cast<double>(want_peak));
}

// ------------------------------------------------------------ fault axis ----

TEST(Sweep, ParseFaultGridLabelsCells) {
  const auto cells = fault::parse_fault_grid("none|loss:leaf*:0.01");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].first, "none");
  EXPECT_TRUE(cells[0].second.empty());
  EXPECT_EQ(cells[1].first, "loss:leaf*:0.01");
  ASSERT_EQ(cells[1].second.size(), 1u);
  EXPECT_EQ(cells[1].second[0].kind, fault::FaultSpec::Kind::kBernoulliLoss);
  // An empty cell is the fault-free plan, same as the literal "none".
  EXPECT_TRUE(fault::parse_fault_grid("|linkdown:h0-sw:1:2")[0].second.empty());
  EXPECT_THROW(fault::parse_fault_grid("bogus:x"), std::invalid_argument);
}

TEST(Sweep, FaultGridIsInnermostAxis) {
  auto spec = small_spec();  // 2 loads x 2 schemes
  spec.faults = {{"none", {}},
                 {"loss:*:0.01", fault::parse_fault_specs("loss:*:0.01")}};
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 8u);
  EXPECT_EQ(jobs[0].fault_label, "none");
  EXPECT_TRUE(jobs[0].cfg.faults.empty());
  EXPECT_EQ(jobs[1].fault_label, "loss:*:0.01");
  ASSERT_EQ(jobs[1].cfg.faults.size(), 1u);
  // Adjacent fault cells share every other grid coordinate.
  EXPECT_EQ(jobs[1].label, jobs[0].label);
  EXPECT_EQ(jobs[1].cfg.load, jobs[0].cfg.load);
  EXPECT_EQ(jobs[1].cfg.seed, jobs[0].cfg.seed);
  EXPECT_EQ(jobs[2].fault_label, "none");
  EXPECT_EQ(jobs[2].label, "RED-queue");
}

// ----------------------------------------------------------- JSON golden ----

/// Keys of a JSON document in emission order (schema golden helper).
std::vector<std::string> json_keys(const std::string& doc) {
  std::vector<std::string> keys;
  for (std::size_t i = 0; i + 1 < doc.size(); ++i) {
    if (doc[i] != '"') continue;
    const auto end = doc.find('"', i + 1);
    if (end == std::string::npos) break;
    std::size_t after = end + 1;
    while (after < doc.size() && doc[after] == ' ') ++after;
    if (after < doc.size() && doc[after] == ':') {
      keys.push_back(doc.substr(i + 1, end - i - 1));
    }
    i = end;
  }
  return keys;
}

TEST(Results, JsonMatchesSchemaGolden) {
  runner::SweepSpec spec;
  spec.name = "golden";
  spec.base = small_cfg();
  spec.schemes = {{"TCN", core::Scheme::kTcn}};
  spec.loads = {0.4};
  runner::SweepOptions opt;
  opt.jobs = 1;
  const auto res = runner::run_sweep(spec, opt);
  ASSERT_TRUE(res.ok());

  const std::string doc = runner::to_json(res, "golden");
  EXPECT_NE(doc.find("\"schema\": \"tcn-bench-1\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"golden\""), std::string::npos);
  EXPECT_NE(doc.find("\"load\": 0.4"), std::string::npos);
  EXPECT_EQ(doc.back(), '\n');

  const std::vector<std::string> expected = {
      // header
      "schema", "name", "jobs", "wall_ms",
      // totals
      "totals", "runs", "completed", "failed", "skipped", "restored",
      "retries", "failed_timeout", "failed_invariant", "failed_oom_guard",
      "failed_exception", "pool_exceptions", "events",
      // the single run record
      "runs", "index", "group", "label", "scheme", "sched", "topology",
      "load", "flows", "seed", "faults", "ok", "skipped", "error",
      "error_kind", "attempts",
      "fct", "count", "avg_all_us", "small_count", "avg_small_us",
      "p99_small_us", "large_count", "avg_large_us", "timeouts",
      "small_timeouts",
      "counters", "switch_drops", "switch_marks", "fault_drops",
      "sched_drops", "pool_fresh", "pool_reused", "pool_recycled",
      "sim_peak_pending", "sim_calendar_resizes",
      "flows_started", "flows_completed", "events", "sim_end_s", "wall_ms",
      "events_per_sec"};
  EXPECT_EQ(json_keys(doc), expected);
}

}  // namespace
}  // namespace tcn
