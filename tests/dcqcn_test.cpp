// DCQCN tests: CNP pacing at the receiver, multiplicative decrease and
// staged recovery at the sender, convergence to the bottleneck rate under
// probabilistic marking, and the probabilistic RED marker itself.
#include <gtest/gtest.h>

#include <memory>

#include "aqm/red_prob.hpp"
#include "aqm/tcn.hpp"
#include "net/fifo_scheduler.hpp"
#include "net/host.hpp"
#include "net/marker.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "transport/dcqcn.hpp"

namespace tcn::transport {
namespace {

using test::make_test_packet;

TEST(RedProb, ProbabilityProfile) {
  aqm::RedProbabilisticMarker red(10'000, 30'000, 0.5);
  EXPECT_DOUBLE_EQ(red.probability(5'000), 0.0);
  EXPECT_DOUBLE_EQ(red.probability(10'000), 0.0);
  EXPECT_DOUBLE_EQ(red.probability(20'000), 0.25);
  EXPECT_DOUBLE_EQ(red.probability(30'000), 0.5);
  EXPECT_DOUBLE_EQ(red.probability(31'000), 1.0);
}

TEST(RedProb, EmpiricalRateMatches) {
  aqm::RedProbabilisticMarker red(0, 100, 1.0, 3);
  auto p = make_test_packet(1500);
  int marked = 0;
  const int n = 20'000;
  net::MarkContext ctx{.now = 0,
                       .queue = 0,
                       .queue_bytes = 30,
                       .port_bytes = 30,
                       .link_rate_bps = 1'000'000'000};
  for (int i = 0; i < n; ++i) {
    if (red.on_enqueue(ctx, *p)) ++marked;
  }
  EXPECT_NEAR(static_cast<double>(marked) / n, 0.3, 0.02);
}

TEST(RedProb, RejectsBadConfig) {
  EXPECT_THROW(aqm::RedProbabilisticMarker(20, 10, 0.5),
               std::invalid_argument);
  EXPECT_THROW(aqm::RedProbabilisticMarker(0, 10, 0.0),
               std::invalid_argument);
}

/// Two hosts through a 10G switch whose egress runs a chosen marker.
struct DcqcnRig {
  explicit DcqcnRig(std::unique_ptr<net::Marker> marker,
                    std::uint64_t rate = 10'000'000'000ULL,
                    std::uint64_t bottleneck = 0)
      : sw(sim, "sw") {
    if (bottleneck == 0) bottleneck = rate;
    net::PortConfig nic;
    nic.rate_bps = rate;
    nic.prop_delay = sim::kMicrosecond;
    nic.buffer_bytes = 450'000;
    a = std::make_unique<net::Host>(sim, "a", 1, nic, 5 * sim::kMicrosecond);
    b = std::make_unique<net::Host>(sim, "b", 2, nic, 5 * sim::kMicrosecond);
    c = std::make_unique<net::Host>(sim, "c", 3, nic, 5 * sim::kMicrosecond);
    net::PortConfig port;
    port.rate_bps = rate;
    port.prop_delay = sim::kMicrosecond;
    port.buffer_bytes = 4'000'000;  // DCQCN assumes a lossless fabric
    for (int i = 0; i < 3; ++i) {
      auto m = (i == 1 && marker) ? std::move(marker)
                                  : std::unique_ptr<net::Marker>(
                                        std::make_unique<net::NullMarker>());
      net::PortConfig pc = port;
      if (i == 1) pc.rate_bps = bottleneck;  // the marked egress under test
      sw.add_port(pc, std::make_unique<net::FifoScheduler>(), std::move(m));
    }
    sw.connect(0, a.get(), 0);
    sw.connect(1, b.get(), 0);
    sw.connect(2, c.get(), 0);
    a->connect(&sw, 0);
    b->connect(&sw, 1);
    c->connect(&sw, 2);
    sw.add_route(1, {0});
    sw.add_route(2, {1});
    sw.add_route(3, {2});
  }

  sim::Simulator sim;
  net::Switch sw;
  std::unique_ptr<net::Host> a, b, c;
};

TEST(Dcqcn, UnmarkedFlowRunsAtLineRate) {
  DcqcnRig rig(nullptr);
  DcqcnConfig cfg;
  DcqcnReceiver rx(*rig.b, 100, cfg.cnp_interval);
  DcqcnSender tx(*rig.a, 2, 101, 100, 1, cfg, 0);
  tx.start(0);  // unbounded
  rig.sim.run(10 * sim::kMillisecond);
  tx.stop();
  // ~10G of payload for 10ms, modulo header overhead.
  const double gbps = static_cast<double>(rx.bytes_received()) * 8.0 / 0.01 / 1e9;
  EXPECT_GT(gbps, 8.5);
  EXPECT_EQ(rx.cnps_sent(), 0u);
  EXPECT_DOUBLE_EQ(tx.rate_bps(), cfg.line_rate_bps);
}

TEST(Dcqcn, CompletionCallbackFires) {
  DcqcnRig rig(nullptr);
  DcqcnConfig cfg;
  DcqcnReceiver rx(*rig.b, 100, cfg.cnp_interval);
  sim::Time fct = -1;
  DcqcnSender tx(*rig.a, 2, 101, 100, 1, cfg, 0,
                 [&](sim::Time f) { fct = f; });
  tx.start(1'000'000);
  rig.sim.run();
  EXPECT_GT(fct, 0);
  EXPECT_EQ(rx.bytes_received(), 1'000'000u);
}

TEST(Dcqcn, CnpCutsRateAndRecoveryRestores) {
  DcqcnRig rig(nullptr);
  DcqcnConfig cfg;
  DcqcnReceiver rx(*rig.b, 100, cfg.cnp_interval);
  DcqcnSender tx(*rig.a, 2, 101, 100, 1, cfg, 0);
  tx.start(0);
  // Inject a synthetic CNP at t=1ms.
  rig.sim.schedule_at(sim::kMillisecond, [&] {
    auto cnp = net::make_packet();
    cnp->type = net::PacketType::kCnp;
    cnp->dst = 1;
    cnp->dport = 101;
    rig.a->receive(std::move(cnp), 0);
  });
  double rate_after_cut = 0;
  rig.sim.schedule_at(sim::kMillisecond + 20 * sim::kMicrosecond,
                      [&] { rate_after_cut = tx.rate_bps(); });
  rig.sim.run(5 * sim::kMillisecond);
  tx.stop();
  // alpha starts at 1: the first CNP halves the rate.
  EXPECT_NEAR(rate_after_cut, cfg.line_rate_bps / 2, cfg.line_rate_bps * 0.05);
  // Recovery: well above the cut level a few ms later.
  EXPECT_GT(tx.rate_bps(), rate_after_cut * 1.2);
  EXPECT_EQ(tx.cnps_received(), 1u);
}

TEST(Dcqcn, ReceiverPacesCnps) {
  DcqcnRig rig(nullptr);
  DcqcnConfig cfg;
  DcqcnReceiver rx(*rig.b, 100, cfg.cnp_interval);
  // Feed CE-marked data directly at 1 packet/us for 200us: CNPs must be
  // paced at one per 50us, so ~4-5, not 200.
  for (int i = 0; i < 200; ++i) {
    rig.sim.schedule_at(i * sim::kMicrosecond, [&] {
      auto p = make_test_packet(1040, 0, 1, net::Ecn::kCe);
      p->type = net::PacketType::kData;
      p->dport = 100;
      p->src = 1;
      rig.b->receive(std::move(p), 0);
    });
  }
  rig.sim.run();
  EXPECT_GE(rx.cnps_sent(), 4u);
  EXPECT_LE(rx.cnps_sent(), 6u);
}

TEST(Dcqcn, ConvergesUnderProbabilisticMarking) {
  // 10G sender into a marked 5G bottleneck: RED-prob (Kmin 50KB, Kmax
  // 200KB) must throttle the flow near 5G with a bounded queue.
  // DCQCN-paper CP profile: Kmin 5KB, Kmax 200KB, Pmax 1%.
  DcqcnRig rig(std::make_unique<aqm::RedProbabilisticMarker>(5'000, 200'000,
                                                             0.01, 7),
               10'000'000'000ULL, 5'000'000'000ULL);
  DcqcnConfig cfg;
  DcqcnReceiver rx(*rig.b, 100, cfg.cnp_interval);
  DcqcnSender tx(*rig.a, 2, 101, 100, 1, cfg, 0);
  tx.start(0);
  // Skip the initial line-rate overshoot; measure steady state [50ms,100ms].
  std::uint64_t at_50ms = 0;
  rig.sim.schedule_at(50 * sim::kMillisecond,
                      [&] { at_50ms = rx.bytes_received(); });
  rig.sim.run(100 * sim::kMillisecond);
  tx.stop();
  const double gbps =
      static_cast<double>(rx.bytes_received() - at_50ms) * 8.0 / 0.05 / 1e9;
  EXPECT_GT(gbps, 3.5);  // high utilization of the 5G bottleneck
  EXPECT_LT(gbps, 5.1);
  EXPECT_GT(rx.cnps_sent(), 0u);
}

TEST(Dcqcn, TwoFlowsShareBottleneck) {
  DcqcnRig rig(std::make_unique<aqm::RedProbabilisticMarker>(5'000, 200'000,
                                                             0.01, 7));
  DcqcnConfig cfg;
  DcqcnReceiver rx1(*rig.b, 100, cfg.cnp_interval);
  DcqcnReceiver rx2(*rig.b, 200, cfg.cnp_interval);
  DcqcnSender tx1(*rig.a, 2, 101, 100, 1, cfg, 0);
  DcqcnSender tx2(*rig.c, 2, 201, 200, 2, cfg, 0);
  tx1.start(0);
  tx2.start(0);
  std::uint64_t b1 = 0, b2 = 0;
  rig.sim.schedule_at(50 * sim::kMillisecond, [&] {
    b1 = rx1.bytes_received();
    b2 = rx2.bytes_received();
  });
  rig.sim.run(150 * sim::kMillisecond);
  tx1.stop();
  tx2.stop();
  const double total = static_cast<double>(rx1.bytes_received() - b1 +
                                           rx2.bytes_received() - b2);
  // Bottleneck shared with decent utilization; neither flow starved.
  EXPECT_GT(total * 8.0 / 0.1 / 1e9, 6.0);
  EXPECT_GT(static_cast<double>(rx1.bytes_received() - b1), total * 0.15);
  EXPECT_GT(static_cast<double>(rx2.bytes_received() - b2), total * 0.15);
}

TEST(Dcqcn, RejectsBadConfig) {
  DcqcnRig rig(nullptr);
  DcqcnConfig cfg;
  cfg.min_rate_bps = 20e9;  // > line rate
  EXPECT_THROW(DcqcnSender(*rig.a, 2, 101, 100, 1, cfg, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tcn::transport
