// Equivalence and unit tests for the pending-event containers.
//
// The load-bearing property: BinaryHeapQueue and CalendarQueue implement the
// SAME total order (at, seq), so the simulator's event order -- and with it
// every golden trace, journal, and jobs=1-vs-N sweep -- cannot depend on
// which container is plugged in. The randomized driver feeds both identical
// schedule/cancel streams (same-timestamp bursts, far-future RTO-like
// timers, interleaved pops) and asserts bit-identical pop sequences.

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_set>
#include <vector>

namespace tcn::sim {
namespace {

std::vector<EventEntry> drain(BinaryHeapQueue& q) {
  std::vector<EventEntry> out;
  while (!q.empty()) out.push_back(q.pop());
  return out;
}

std::vector<EventEntry> drain(CalendarQueue& q) {
  std::vector<EventEntry> out;
  while (!q.empty()) out.push_back(q.pop());
  return out;
}

bool same_entry(const EventEntry& a, const EventEntry& b) {
  return a.at == b.at && a.seq == b.seq && a.slot == b.slot && a.gen == b.gen;
}

TEST(EventQueue, BothOrderSameTimestampBurstsBySeq) {
  BinaryHeapQueue heap;
  CalendarQueue cal;
  // Three bursts at identical timestamps, scheduled out of time order.
  std::uint64_t seq = 1;
  for (const Time at : {50, 10, 50, 10, 30, 30, 50, 10}) {
    const EventEntry e{at, seq, static_cast<std::uint32_t>(seq), 0};
    ++seq;
    heap.push(e);
    cal.push(e);
  }
  const auto h = drain(heap);
  const auto c = drain(cal);
  ASSERT_EQ(h.size(), c.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_TRUE(same_entry(h[i], c[i])) << "index " << i;
  }
  // FIFO within a timestamp: seq strictly increases inside each time group.
  for (std::size_t i = 1; i < h.size(); ++i) {
    ASSERT_LE(h[i - 1].at, h[i].at);
    if (h[i - 1].at == h[i].at) ASSERT_LT(h[i - 1].seq, h[i].seq);
  }
}

// The randomized stream mimics what a simulator produces: mostly
// near-future events at a moving clock, same-timestamp bursts (a switch
// fanning out at one instant), rare far-future timers (RTO, diurnal ramps),
// interleaved pops that advance the clock, and cancellations modelled
// exactly as the Simulator does -- a dead (slot, gen) set whose entries
// both containers must surface in the same places (the simulator discards
// them on pop, so "identical pop order" must hold tombstones included).
TEST(EventQueue, RandomizedEquivalenceWithHeap) {
  std::mt19937_64 rng(0xC0FFEE);
  BinaryHeapQueue heap;
  CalendarQueue cal;

  Time clock = 0;
  std::uint64_t seq = 1;
  std::uint32_t next_slot = 0;
  std::unordered_set<std::uint64_t> dead;  // (slot<<1)|gen of cancelled
  std::vector<EventEntry> pending;         // sampling base for cancels
  std::vector<EventEntry> heap_pops;
  std::vector<EventEntry> cal_pops;

  const auto push_both = [&](Time at) {
    const EventEntry e{at, seq++, next_slot++, 0};
    heap.push(e);
    cal.push(e);
    pending.push_back(e);
  };

  for (int step = 0; step < 200'000; ++step) {
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2: {  // near-future push (serialization/propagation scale)
        push_both(clock + static_cast<Time>(rng() % 10'000));
        break;
      }
      case 3: {  // same-timestamp burst (fan-out at one instant)
        const Time at = clock + static_cast<Time>(rng() % 1'000);
        const std::size_t burst = 2 + rng() % 6;
        for (std::size_t i = 0; i < burst; ++i) push_both(at);
        break;
      }
      case 4: {  // far-future timer (RTO / diurnal, way past the horizon)
        push_both(clock + 10'000'000 + static_cast<Time>(rng() % kSecond));
        break;
      }
      case 5: {  // cancel a random not-yet-popped event (simulator-style)
        if (!pending.empty()) {
          const EventEntry& victim = pending[rng() % pending.size()];
          dead.insert((std::uint64_t{victim.slot} << 1) | victim.gen);
        }
        break;
      }
      default: {  // pop a few and advance the clock
        for (int i = 0; i < 3 && !heap.empty(); ++i) {
          ASSERT_FALSE(cal.empty());
          const EventEntry h = heap.pop();
          const EventEntry c = cal.pop();
          ASSERT_TRUE(same_entry(h, c))
              << "step " << step << ": heap (" << h.at << "," << h.seq
              << ") vs calendar (" << c.at << "," << c.seq << ")";
          // Tombstones surface in both queues at the same position but, as
          // in the simulator, do not advance the clock.
          if (!dead.contains((std::uint64_t{h.slot} << 1) | h.gen)) {
            clock = h.at;
          }
        }
        break;
      }
    }
    ASSERT_EQ(heap.size(), cal.size());
  }

  // Drain both completely: the tails must match too.
  while (!heap.empty()) {
    ASSERT_FALSE(cal.empty());
    const EventEntry h = heap.pop();
    const EventEntry c = cal.pop();
    ASSERT_TRUE(same_entry(h, c));
  }
  EXPECT_TRUE(cal.empty());
}

TEST(CalendarQueue, ResizesWhenPopulationOutgrowsRing) {
  CalendarQueue q;
  EXPECT_EQ(q.num_buckets(), CalendarQueue::kMinBuckets);
  // Dense near-future population far beyond 2x the initial 64 buckets.
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    q.push(EventEntry{static_cast<Time>(i * 100), i + 1, 0, 0});
  }
  EXPECT_GT(q.resizes(), 0u);
  EXPECT_GT(q.num_buckets(), CalendarQueue::kMinBuckets);
  // Still pops in exact order.
  Time prev = -1;
  while (!q.empty()) {
    const EventEntry e = q.pop();
    ASSERT_GE(e.at, prev);
    prev = e.at;
  }
}

TEST(CalendarQueue, RingOnlyGrowsAcrossDrainRefillCycles) {
  CalendarQueue q;
  std::uint64_t seq = 1;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (std::uint64_t i = 0; i < 1'000; ++i) {
      q.push(EventEntry{static_cast<Time>(i * 64), seq++, 0, 0});
    }
    while (!q.empty()) q.pop();
  }
  // All growth happened in the first cycle; later cycles reuse the plateau.
  const std::uint64_t after_first = q.resizes();
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    q.push(EventEntry{static_cast<Time>(i * 64), seq++, 0, 0});
  }
  EXPECT_EQ(q.resizes(), after_first);
}

TEST(CalendarQueue, FarFutureEntriesParkInOverflowThenMigrate) {
  CalendarQueue q;
  // One near event and a batch a full day past the default horizon.
  q.push(EventEntry{10, 1, 0, 0});
  for (std::uint64_t i = 0; i < 16; ++i) {
    q.push(EventEntry{static_cast<Time>(kSecond + i), 2 + i, 0, 0});
  }
  EXPECT_GT(q.overflow_size(), 0u);
  EXPECT_EQ(q.pop().at, 10);
  // Popping across the gap jumps the dial and migrates the far batch.
  Time prev = -1;
  std::size_t n = 0;
  while (!q.empty()) {
    const EventEntry e = q.pop();
    ASSERT_GE(e.at, prev);
    prev = e.at;
    ++n;
  }
  EXPECT_EQ(n, 16u);
  EXPECT_EQ(q.overflow_size(), 0u);
}

TEST(CalendarQueue, PushBehindSettledDialRewinds) {
  CalendarQueue q;
  q.push(EventEntry{1'000'000, 1, 0, 0});
  ASSERT_EQ(q.peek()->at, 1'000'000);  // dial settled far ahead
  // Earlier event arrives (run(until) returned, caller scheduled before the
  // survivor): the queue must rewind, not misfile it.
  q.push(EventEntry{5, 2, 0, 0});
  EXPECT_EQ(q.pop().at, 5);
  EXPECT_EQ(q.pop().at, 1'000'000);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, EmptyQueueRebasesDialCheaply) {
  CalendarQueue q;
  q.push(EventEntry{kSecond, 1, 0, 0});
  EXPECT_EQ(q.pop().at, kSecond);
  const std::uint64_t resizes = q.resizes();
  // Re-basing on an empty queue is O(1), never a rebuild -- even jumping
  // backward in time.
  q.push(EventEntry{7, 2, 0, 0});
  EXPECT_EQ(q.resizes(), resizes);
  EXPECT_EQ(q.pop().at, 7);
}

}  // namespace
}  // namespace tcn::sim
