// Topology tests: star wiring and base RTT calibration, leaf-spine
// connectivity, ECMP spreading, RTT across the fabric.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "net/fifo_scheduler.hpp"
#include "net/marker.hpp"
#include "topo/network.hpp"
#include "transport/flow.hpp"
#include "transport/ping.hpp"

namespace tcn::topo {
namespace {

SchedulerFactory fifo_factory() {
  return [] { return std::make_unique<net::FifoScheduler>(); };
}

MarkerFactory null_marker_factory() {
  return [](net::Scheduler&, const net::PortConfig&) {
    return std::make_unique<net::NullMarker>();
  };
}

TEST(Star, HostCountAndAddresses) {
  sim::Simulator s;
  StarConfig cfg;
  cfg.num_hosts = 5;
  auto net = build_star(s, cfg, fifo_factory(), null_marker_factory());
  EXPECT_EQ(net.num_hosts(), 5u);
  EXPECT_EQ(net.num_switches(), 1u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(net.host(i).address(), i);
  }
  EXPECT_EQ(net.switch_at(0).num_ports(), 5u);
}

TEST(Star, AnyPairCanExchangeFlows) {
  sim::Simulator s;
  StarConfig cfg;
  cfg.num_hosts = 4;
  cfg.host_delay = 5 * sim::kMicrosecond;
  auto net = build_star(s, cfg, fifo_factory(), null_marker_factory());
  transport::FlowManager fm;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i == j) continue;
      transport::FlowSpec spec;
      spec.size = 20'000;
      fm.start_flow(net.host(i), net.host(j), spec);
    }
  }
  s.run();
  EXPECT_EQ(fm.flows_completed(), 12u);
}

TEST(Star, BaseRttMatchesCalibration) {
  sim::Simulator s;
  StarConfig cfg;
  cfg.num_hosts = 3;
  cfg.link_prop = sim::kMicrosecond;
  cfg.host_delay = star_host_delay_for_rtt(250 * sim::kMicrosecond,
                                           cfg.link_prop);
  auto net = build_star(s, cfg, fifo_factory(), null_marker_factory());
  transport::PingResponder responder(net.host(1), 99);
  transport::PingApp ping(net.host(0), 1, 99, 0, sim::kMillisecond);
  ping.start();
  s.run(5 * sim::kMillisecond);
  ping.stop();
  ASSERT_GE(ping.rtts().size(), 4u);
  // Within 5% of 250us (serialization of 64B probes adds a little).
  EXPECT_NEAR(static_cast<double>(ping.rtts()[0]),
              250.0 * sim::kMicrosecond, 12.5 * sim::kMicrosecond);
}

TEST(Star, RejectsDegenerate) {
  sim::Simulator s;
  StarConfig cfg;
  cfg.num_hosts = 1;
  EXPECT_THROW(build_star(s, cfg, fifo_factory(), null_marker_factory()),
               std::invalid_argument);
  EXPECT_THROW(star_host_delay_for_rtt(1, sim::kMicrosecond),
               std::invalid_argument);
}

struct LeafSpineRig {
  LeafSpineRig(std::size_t leaves = 3, std::size_t spines = 2,
               std::size_t hosts_per_leaf = 3) {
    cfg.num_leaves = leaves;
    cfg.num_spines = spines;
    cfg.hosts_per_leaf = hosts_per_leaf;
    cfg.num_queues = 2;
    cfg.buffer_bytes = UINT64_MAX;
    net.emplace(
        build_leaf_spine(s, cfg, fifo_factory(), null_marker_factory()));
  }
  sim::Simulator s;
  LeafSpineConfig cfg;
  std::optional<Network> net;
};

TEST(LeafSpine, TopologyShape) {
  LeafSpineRig rig;
  EXPECT_EQ(rig.net->num_hosts(), 9u);
  EXPECT_EQ(rig.net->num_switches(), 5u);  // 3 leaves + 2 spines
  // Leaf: 3 host ports + 2 uplinks; spine: 3 down ports.
  EXPECT_EQ(rig.net->switch_at(0).num_ports(), 5u);
  EXPECT_EQ(rig.net->switch_at(3).num_ports(), 3u);
}

TEST(LeafSpine, IntraLeafAndCrossLeafFlowsComplete) {
  LeafSpineRig rig;
  transport::FlowManager fm;
  transport::FlowSpec spec;
  spec.size = 100'000;
  fm.start_flow(rig.net->host(0), rig.net->host(1), spec);  // same leaf
  fm.start_flow(rig.net->host(0), rig.net->host(8), spec);  // across spine
  rig.s.run();
  EXPECT_EQ(fm.flows_completed(), 2u);
}

TEST(LeafSpine, AllPairsComplete) {
  LeafSpineRig rig;
  transport::FlowManager fm;
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      if (i == j) continue;
      transport::FlowSpec spec;
      spec.size = 10'000;
      fm.start_flow(rig.net->host(i), rig.net->host(j), spec);
    }
  }
  rig.s.run();
  EXPECT_EQ(fm.flows_completed(), 72u);
}

TEST(LeafSpine, CrossFabricBaseRttIs85us) {
  // Paper Sec. 6.2: base RTT across the spine is 85.2us, 80us at end hosts.
  sim::Simulator s;
  LeafSpineConfig cfg;
  cfg.num_leaves = 2;
  cfg.num_spines = 2;
  cfg.hosts_per_leaf = 2;
  cfg.num_queues = 1;
  auto net = build_leaf_spine(s, cfg, fifo_factory(), null_marker_factory());
  transport::PingResponder responder(net.host(2), 99);  // other leaf
  transport::PingApp ping(net.host(0), 2, 99, 0, sim::kMillisecond);
  ping.start();
  s.run(5 * sim::kMillisecond);
  ping.stop();
  ASSERT_GE(ping.rtts().size(), 4u);
  EXPECT_NEAR(static_cast<double>(ping.rtts()[0]),
              85.2 * sim::kMicrosecond, 4 * sim::kMicrosecond);
}

TEST(LeafSpine, EcmpUsesMultipleSpines) {
  // Many flows between the same pair of leaves must traverse both spines.
  LeafSpineRig rig(2, 2, 4);
  transport::FlowManager fm;
  for (int k = 0; k < 32; ++k) {
    transport::FlowSpec spec;
    spec.size = 3'000;
    fm.start_flow(rig.net->host(k % 4), rig.net->host(4 + k % 4), spec);
  }
  rig.s.run();
  EXPECT_EQ(fm.flows_completed(), 32u);
  // Spines are switches 2 and 3; both must have forwarded data.
  std::uint64_t tx2 = 0, tx3 = 0;
  for (std::size_t p = 0; p < rig.net->switch_at(2).num_ports(); ++p) {
    tx2 += rig.net->switch_at(2).port(p).counters().tx_packets;
  }
  for (std::size_t p = 0; p < rig.net->switch_at(3).num_ports(); ++p) {
    tx3 += rig.net->switch_at(3).port(p).counters().tx_packets;
  }
  EXPECT_GT(tx2, 0u);
  EXPECT_GT(tx3, 0u);
}

TEST(LeafSpine, NoUnroutedPackets) {
  LeafSpineRig rig;
  transport::FlowManager fm;
  for (std::size_t i = 0; i < 9; i += 2) {
    transport::FlowSpec spec;
    spec.size = 50'000;
    fm.start_flow(rig.net->host(i), rig.net->host((i + 4) % 9), spec);
  }
  rig.s.run();
  for (std::size_t sw = 0; sw < rig.net->num_switches(); ++sw) {
    EXPECT_EQ(rig.net->switch_at(sw).unrouted(), 0u) << "switch " << sw;
  }
}

}  // namespace
}  // namespace tcn::topo
