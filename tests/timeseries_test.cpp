// obs::TimeSeries / obs::StabilityAnalyzer / LogHistogram::quantile units,
// plus the experiment- and sweep-level contracts: sampling changes no FCT
// result, the stability reduction rides the tcn-bench-1 JSON and the
// journal byte-identically for any --jobs, and old journals (no
// "stability" key) still parse.
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "runner/journal.hpp"
#include "runner/results.hpp"
#include "runner/sweep.hpp"
#include "sim/simulator.hpp"
#include "topo/network.hpp"
#include "workload/distributions.hpp"

namespace {

using namespace tcn;

// ------------------------------------------------- LogHistogram::quantile ----

TEST(Quantile, EmptyAndEndpoints) {
  obs::LogHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.record(100);
  h.record(900);
  EXPECT_EQ(h.quantile(0.0), 100.0);
  EXPECT_EQ(h.quantile(-1.0), 100.0);
  EXPECT_EQ(h.quantile(1.0), 900.0);
  EXPECT_EQ(h.quantile(2.0), 900.0);
}

TEST(Quantile, ConstantDistributionReturnsTheConstant) {
  obs::LogHistogram h;
  for (int i = 0; i < 1000; ++i) h.record(777);
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(h.quantile(q), 777.0) << "q=" << q;
  }
}

TEST(Quantile, UniformDistributionWithinBucketResolution) {
  // Uniform over 1..1000: buckets above 32 are log-linear with 32
  // sub-buckets per octave, so the relative quantization error is bounded
  // by one sub-bucket width (~1/32 ~= 3.1%); interpolation within the
  // bucket keeps the estimate near the exact order statistic.
  obs::LogHistogram h;
  for (int v = 1; v <= 1000; ++v) h.record(v);
  for (const auto [q, exact] :
       {std::pair{0.5, 500.0}, {0.9, 900.0}, {0.95, 950.0}, {0.99, 990.0}}) {
    const double est = h.quantile(q);
    EXPECT_NEAR(est, exact, exact * 0.035) << "q=" << q;
  }
}

TEST(Quantile, ExactBucketsBelow32) {
  // Values below kSubBuckets land in exact unit-width buckets, so the
  // interpolated quantile of 0..31 (once each) tracks q * 32 to within one
  // bucket.
  obs::LogHistogram h;
  for (int v = 0; v < 32; ++v) h.record(v);
  EXPECT_NEAR(h.quantile(0.5), 16.0, 1.0);
  EXPECT_NEAR(h.quantile(0.25), 8.0, 1.0);
}

TEST(Quantile, MonotonicInQ) {
  obs::LogHistogram h;
  for (int v = 1; v <= 500; ++v) h.record(v * 7 % 3000);
  double prev = h.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(Quantile, AgreesWithPercentileToBucketWidth) {
  // quantile() refines percentile() (bucket midpoint) by in-bucket
  // interpolation; the two must agree to one bucket width. percentile()
  // itself stays byte-pinned by the golden metrics document.
  obs::LogHistogram h;
  for (int v = 1; v <= 2000; ++v) h.record(v);
  for (const double p : {50.0, 95.0, 99.0}) {
    const double mid = static_cast<double>(h.percentile(p));
    const double est = h.quantile(p / 100.0);
    EXPECT_NEAR(est, mid, mid / 16.0 + 1.0) << "p=" << p;
  }
}

// ---------------------------------------------------- StabilityAnalyzer -----

obs::SeriesPoint point(std::uint64_t depth, std::uint64_t deq = 0,
                       std::uint64_t sojourn_sum = 0, std::uint64_t marks = 0) {
  obs::SeriesPoint p;
  p.depth_bytes = depth;
  p.deq_packets = deq;
  p.sojourn_sum_ns = sojourn_sum;
  p.marks = marks;
  return p;
}

TEST(StabilityAnalyzer, ConstantDepthIsStable) {
  obs::StabilityAnalyzer a;
  for (int i = 0; i < 64; ++i) a.observe(point(40'000));
  const auto r = a.result(1'000'000);
  EXPECT_EQ(r.samples, 64u);
  EXPECT_EQ(r.oscillation_score, 0.0);
  EXPECT_EQ(r.depth_cv, 0.0);
  EXPECT_DOUBLE_EQ(r.depth_mean_bytes, 40'000.0);
  EXPECT_EQ(r.regime, obs::Regime::kStable);
}

TEST(StabilityAnalyzer, AlternatingDepthIsOscillating) {
  // A two-point distribution has Sarle bimodality 1 (the maximum) and CV 1
  // for 0/X swings; cap is far above the mean so the saturated regime does
  // not preempt the oscillation classification.
  obs::StabilityAnalyzer a;
  for (int i = 0; i < 256; ++i) {
    a.observe(point(i % 2 == 0 ? 0 : 100'000));
  }
  const auto r = a.result(1'000'000);
  EXPECT_NEAR(r.bimodality, 1.0, 0.02);
  EXPECT_NEAR(r.depth_cv, 1.0, 0.01);
  EXPECT_GE(r.oscillation_score, obs::StabilityAnalyzer::kOscillationThreshold);
  EXPECT_EQ(r.regime, obs::Regime::kOscillating);
  EXPECT_LT(r.lag1_autocorr, 0.0);  // perfect alternation anticorrelates
}

TEST(StabilityAnalyzer, HighOccupancyIsSaturated) {
  obs::StabilityAnalyzer a;
  for (int i = 0; i < 64; ++i) a.observe(point(90'000));
  EXPECT_EQ(a.result(100'000).regime, obs::Regime::kSaturated);
  // Unbounded channels (cap UINT64_MAX, e.g. host NICs) never saturate.
  obs::StabilityAnalyzer b;
  for (int i = 0; i < 64; ++i) b.observe(point(90'000));
  EXPECT_EQ(b.result(UINT64_MAX).regime, obs::Regime::kStable);
}

TEST(StabilityAnalyzer, TooFewSamplesNeverOscillates) {
  obs::StabilityAnalyzer a;
  for (std::size_t i = 0; i < obs::StabilityAnalyzer::kMinSamples - 1; ++i) {
    a.observe(point(i % 2 == 0 ? 0 : 100'000));
  }
  const auto r = a.result(1'000'000);
  EXPECT_EQ(r.oscillation_score, 0.0);
  EXPECT_EQ(r.regime, obs::Regime::kStable);
}

TEST(StabilityAnalyzer, MarkBurstinessIsTheFanoFactor) {
  // Alternating 0/8 marks per tick: mean 4, variance 16 -> Fano 4.
  obs::StabilityAnalyzer a;
  for (int i = 0; i < 256; ++i) {
    a.observe(point(1'000, 0, 0, i % 2 == 0 ? 0 : 8));
  }
  EXPECT_NEAR(a.result(1'000'000).mark_burstiness, 4.0, 0.05);
  // Constant marks per tick -> zero variance -> Fano 0.
  obs::StabilityAnalyzer b;
  for (int i = 0; i < 64; ++i) b.observe(point(1'000, 0, 0, 5));
  EXPECT_EQ(b.result(1'000'000).mark_burstiness, 0.0);
}

TEST(StabilityAnalyzer, SojournCvOverDequeuingTicks) {
  // Per-tick mean sojourn constant at 2000ns on every dequeuing tick (idle
  // ticks are excluded from the sojourn stream) -> CV 0.
  obs::StabilityAnalyzer a;
  for (int i = 0; i < 64; ++i) {
    a.observe(i % 2 == 0 ? point(1'000, 4, 8'000) : point(1'000));
  }
  EXPECT_EQ(a.result(1'000'000).sojourn_cv, 0.0);
}

TEST(StabilityAnalyzer, RegimeNamesRoundTrip) {
  for (const auto r : {obs::Regime::kStable, obs::Regime::kOscillating,
                       obs::Regime::kSaturated}) {
    EXPECT_EQ(obs::regime_from_name(obs::regime_name(r)), r);
  }
  EXPECT_EQ(obs::regime_from_name("garbage"), obs::Regime::kStable);
}

// ----------------------------------------------------------- TimeSeries -----

TEST(TimeSeries, RingKeepsLastMaxSamplesButAnalyzerSeesAll) {
  obs::TimeSeriesConfig cfg;
  cfg.interval = 10 * sim::kMicrosecond;
  cfg.max_samples = 4;
  obs::TimeSeries ts(cfg);
  std::uint64_t depth = 0;
  auto* ch = ts.add_channel("q0", 100'000, [&depth] {
    return std::pair<std::uint64_t, std::uint64_t>{depth, depth / 1'500};
  });

  sim::Simulator s;
  // Keep the event queue non-empty through 10 sampler ticks; the depth
  // steps by 1000 bytes just before each tick fires.
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(static_cast<sim::Time>(i * 10 + 9) * sim::kMicrosecond,
                  [&depth] { depth += 1'000; });
  }
  ts.start(s);
  s.run();

  EXPECT_EQ(ts.ticks(), 10u);
  EXPECT_EQ(ch->analyzer().samples(), 10u);  // exact despite ring bound
  const auto pts = ch->points();
  ASSERT_EQ(pts.size(), 4u);  // ring truncates to the last max_samples
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1].t, pts[i].t);  // oldest-first unroll
  }
  EXPECT_EQ(pts.back().depth_bytes, 10'000u);  // the final tick's sample
}

TEST(TimeSeries, AccumulatorsDrainPerTick) {
  obs::TimeSeriesConfig cfg;
  cfg.interval = 10 * sim::kMicrosecond;
  obs::TimeSeries ts(cfg);
  auto* ch = ts.add_channel("q0", 100'000, [] {
    return std::pair<std::uint64_t, std::uint64_t>{0, 0};
  });

  sim::Simulator s;
  // Two dequeues and a mark before the first tick; nothing afterwards.
  s.schedule_at(5 * sim::kMicrosecond, [ch] {
    ch->on_dequeue(2'000, 1'500);
    ch->on_dequeue(4'000, 1'500);
    ch->on_mark();
  });
  s.schedule_at(25 * sim::kMicrosecond, [] {});  // keeps tick 2 alive
  ts.start(s);
  s.run();

  const auto pts = ch->points();
  ASSERT_GE(pts.size(), 2u);
  EXPECT_EQ(pts[0].deq_packets, 2u);
  EXPECT_EQ(pts[0].sojourn_sum_ns, 6'000u);
  EXPECT_EQ(pts[0].marks, 1u);
  EXPECT_EQ(pts[0].tx_bytes, 3'000u);
  EXPECT_EQ(pts[1].deq_packets, 0u);  // drained, not carried over
  EXPECT_EQ(pts[1].marks, 0u);
}

TEST(TimeSeries, SamplerStopsWhenSimDrainsAndRearms) {
  obs::TimeSeriesConfig cfg;
  cfg.interval = 10 * sim::kMicrosecond;
  obs::TimeSeries ts(cfg);
  ts.add_channel("q0", 0, [] {
    return std::pair<std::uint64_t, std::uint64_t>{0, 0};
  });
  sim::Simulator s;
  s.schedule_at(35 * sim::kMicrosecond, [] {});
  ts.start(s);
  s.run();  // must return: the sampler stops once it is the only event
  const std::uint64_t first_ticks = ts.ticks();
  EXPECT_GE(first_ticks, 4u);

  // Re-arm for a second batch (the micro_core benchmark pattern).
  s.schedule_at(s.now() + 15 * sim::kMicrosecond, [] {});
  ts.start(s);
  s.run();
  EXPECT_GT(ts.ticks(), first_ticks);
}

TEST(TimeSeries, DominantChannelByTxBytesThenName) {
  obs::TimeSeriesConfig cfg;
  cfg.interval = 10 * sim::kMicrosecond;
  obs::TimeSeries ts(cfg);
  auto* a = ts.add_channel("p0.q1", 0, [] {
    return std::pair<std::uint64_t, std::uint64_t>{0, 0};
  });
  auto* b = ts.add_channel("p0.q0", 0, [] {
    return std::pair<std::uint64_t, std::uint64_t>{0, 0};
  });
  EXPECT_EQ(ts.dominant_channel()->name(), "p0.q0");  // tie -> lexicographic

  // tx bytes reach the analyzer at tick time, so drive one sampling tick.
  sim::Simulator s;
  s.schedule_at(5 * sim::kMicrosecond, [a, b] {
    a->on_dequeue(1'000, 3'000);
    b->on_dequeue(1'000, 1'500);
  });
  ts.start(s);
  s.run();
  EXPECT_EQ(ts.dominant_channel()->name(), "p0.q1");  // most bytes wins
}

// ------------------------------------------------- experiment / sweep -------

core::FctExperiment small_cfg() {
  core::FctExperiment cfg;
  cfg.scheme = core::Scheme::kTcn;
  cfg.params.rtt_lambda = 250 * sim::kMicrosecond;
  cfg.params.red_threshold_bytes = 32'000;  // for the kRedPerQueue jobs
  cfg.sched.kind = core::SchedKind::kDwrr;
  cfg.load = 0.5;
  cfg.num_flows = 40;
  cfg.num_services = 2;
  cfg.service_workloads = {workload::Kind::kCache};
  cfg.star.num_hosts = 5;
  cfg.star.host_delay = topo::star_host_delay_for_rtt(
      250 * sim::kMicrosecond, cfg.star.link_prop);
  cfg.seed = 7;
  return cfg;
}

TEST(TimeSeriesExperiment, SamplingChangesNoSimulationResult) {
  auto off = small_cfg();
  const auto r_off = core::run_fct_experiment(off);
  ASSERT_FALSE(r_off.stability_analyzed);

  auto on = small_cfg();
  on.timeseries.interval = 50 * sim::kMicrosecond;
  const auto r_on = core::run_fct_experiment(on);
  ASSERT_TRUE(r_on.stability_analyzed);
  EXPECT_GT(r_on.series_ticks, 0u);
  EXPECT_GT(r_on.series_channels, 0u);
  EXPECT_FALSE(r_on.stability_channel.empty());
  EXPECT_GT(r_on.stability.samples, 0u);

  // The sampler adds tick events but must not perturb the simulation: every
  // FCT, drop and mark statistic is bit-identical.
  EXPECT_EQ(r_on.flows_completed, r_off.flows_completed);
  EXPECT_DOUBLE_EQ(r_on.summary.avg_all_us, r_off.summary.avg_all_us);
  EXPECT_DOUBLE_EQ(r_on.summary.p99_small_us, r_off.summary.p99_small_us);
  EXPECT_EQ(r_on.summary.timeouts, r_off.summary.timeouts);
  EXPECT_EQ(r_on.switch_drops, r_off.switch_drops);
  EXPECT_EQ(r_on.switch_marks, r_off.switch_marks);
  // Tick events do grow the event count -- the one legitimate difference.
  EXPECT_GT(r_on.events, r_off.events);
}

TEST(TimeSeriesExperiment, SeriesOutWritesTcnSeries1) {
  auto cfg = small_cfg();
  cfg.num_flows = 20;
  cfg.series_out = ::testing::TempDir() + "series_out.jsonl";
  const auto report = core::run_fct_experiment(cfg);
  ASSERT_TRUE(report.stability_analyzed);  // --series-out implies sampling

  std::ifstream in(cfg.series_out);
  ASSERT_TRUE(in.good());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("\"tcn-series-1\""), std::string::npos);
  std::size_t channel_lines = 0;
  for (std::string line; std::getline(in, line);) {
    EXPECT_NE(line.find("\"channel\""), std::string::npos);
    EXPECT_NE(line.find("\"stability\""), std::string::npos);
    ++channel_lines;
  }
  EXPECT_EQ(channel_lines, report.series_channels);
}

const obs::MetricsSnapshot::CounterValue* find_counter(
    const obs::MetricsSnapshot& snap, std::string_view name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<runner::Job> sampled_jobs() {
  std::vector<runner::Job> jobs;
  for (const double load : {0.4, 0.6}) {
    for (const auto scheme : {core::Scheme::kTcn, core::Scheme::kRedPerQueue}) {
      runner::Job j;
      j.group = "ts_sweep";
      j.label = core::scheme_name(scheme);
      j.cfg = small_cfg();
      j.cfg.scheme = scheme;
      j.cfg.load = load;
      j.cfg.num_flows = 30;
      j.cfg.timeseries.interval = 100 * sim::kMicrosecond;
      jobs.push_back(std::move(j));
    }
  }
  return jobs;
}

TEST(TimeSeriesSweep, StabilityRidesJsonByteIdenticallyForAnyJobs) {
  runner::SweepOptions one;
  one.jobs = 1;
  const auto res1 = runner::run_jobs(sampled_jobs(), one);
  ASSERT_TRUE(res1.ok());

  runner::SweepOptions four;
  four.jobs = 4;
  const auto res4 = runner::run_jobs(sampled_jobs(), four);
  ASSERT_TRUE(res4.ok());

  const auto doc1 = runner::to_json(res1, "ts_sweep", /*include_timing=*/false);
  const auto doc4 = runner::to_json(res4, "ts_sweep", /*include_timing=*/false);
  EXPECT_EQ(doc1, doc4);
  EXPECT_NE(doc1.find("\"stability\""), std::string::npos);
  EXPECT_NE(doc1.find("\"regime\""), std::string::npos);

  // The sweep harness rolls regimes up only when sampling actually ran.
  const auto* sampled =
      find_counter(res1.harness_metrics, "stability/sampled_runs");
  ASSERT_NE(sampled, nullptr);
  EXPECT_EQ(sampled->value, 4u);
}

TEST(TimeSeriesSweep, JournalRoundTripsStability) {
  const std::string path = ::testing::TempDir() + "ts_journal.jsonl";
  runner::SweepOptions opt;
  opt.jobs = 2;
  opt.journal_out = path;
  opt.journal_name = "ts_sweep";
  const auto res = runner::run_jobs(sampled_jobs(), opt);
  ASSERT_TRUE(res.ok());

  const auto data = runner::load_journal(path);
  ASSERT_EQ(data.entries.size(), res.runs.size());
  for (const auto& [index, rec] : data.entries) {
    const auto& orig = res.runs[index];
    ASSERT_TRUE(rec.report.stability_analyzed);
    EXPECT_EQ(rec.report.stability_channel, orig.report.stability_channel);
    EXPECT_EQ(rec.report.series_ticks, orig.report.series_ticks);
    EXPECT_EQ(rec.report.stability.samples, orig.report.stability.samples);
    EXPECT_DOUBLE_EQ(rec.report.stability.oscillation_score,
                     orig.report.stability.oscillation_score);
    EXPECT_DOUBLE_EQ(rec.report.stability.sojourn_cv,
                     orig.report.stability.sojourn_cv);
    EXPECT_EQ(rec.report.stability.regime, orig.report.stability.regime);
  }
}

TEST(TimeSeriesSweep, UnsampledJournalsStillParse) {
  // Backward compatibility: a journal written without sampling has no
  // "stability" key; the parser must default it off, not throw.
  const std::string path = ::testing::TempDir() + "ts_journal_plain.jsonl";
  auto jobs = sampled_jobs();
  for (auto& j : jobs) j.cfg.timeseries = {};
  runner::SweepOptions opt;
  opt.jobs = 2;
  opt.journal_out = path;
  opt.journal_name = "ts_sweep";
  const auto res = runner::run_jobs(std::move(jobs), opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(find_counter(res.harness_metrics, "stability/sampled_runs"),
            nullptr);

  const auto data = runner::load_journal(path);
  ASSERT_EQ(data.entries.size(), res.runs.size());
  for (const auto& [index, rec] : data.entries) {
    EXPECT_FALSE(rec.report.stability_analyzed);
  }
}

}  // namespace
