// Regression tests pinning the paper's figure *shapes* (who wins, roughly by
// how much, where the crossovers are) at miniature scale, so a refactor that
// silently breaks a reproduction fails CI rather than only the benches.
//
// Fig. 1 / 5a shapes live in core_test (fairness rigs); this file covers the
// estimation tradeoff (Fig. 2), the buffer-occupancy comparison (Fig. 3),
// and the RTT ordering of Fig. 5b.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "core/experiment.hpp"
#include "rate_trace.hpp"
#include "stats/percentile.hpp"
#include "stats/timeseries.hpp"
#include "topo/network.hpp"
#include "transport/flow.hpp"
#include "transport/ping.hpp"

namespace tcn {
namespace {

// ------------------------------------------------------------- Fig. 2 -----

TEST(PaperShapes, Fig2_CoarseWindowConvergesSlowly) {
  const auto t = bench::run_rate_trace(40'000, 1);
  // Few samples (paper: 29 in 2ms) and convergence beyond 2ms.
  EXPECT_LT(t.samples_in_2ms, 40u);
  const auto conv = t.convergence();
  EXPECT_TRUE(conv < 0 || conv > 1500 * sim::kMicrosecond);
}

TEST(PaperShapes, Fig2_FineWindowOscillatesAndOverestimates) {
  const auto t = bench::run_rate_trace(10'000, 1);
  // dq_thresh (10KB) below the 18KB quantum: samples swing between ~3.7G
  // and 10G, and the smoothed estimate sits well above the true 5Gbps.
  EXPECT_LT(t.sample_min(), 4.5e9);
  EXPECT_GT(t.sample_max(), 9e9);
  EXPECT_GT(t.final_estimate(), 5.5e9);
}

TEST(PaperShapes, Fig2_MqEcnConvergesFast) {
  const auto t = bench::run_rate_trace(0, 1);
  const auto conv = t.convergence();
  ASSERT_GE(conv, 0);
  EXPECT_LT(conv, 1500 * sim::kMicrosecond);  // paper: within ~600us
  EXPECT_NEAR(t.final_estimate(), 5e9, 0.5e9);
}

// ------------------------------------------------------------- Fig. 3 -----

double occupancy_peak_kb(core::Scheme scheme) {
  sim::Simulator simulator;
  core::SchemeParams params;
  params.rtt_lambda = 100 * sim::kMicrosecond;
  params.red_threshold_bytes = 125'000;
  core::SchedConfig sched;
  sched.kind = core::SchedKind::kFifo;
  sched.num_queues = 1;
  topo::StarConfig star;
  star.num_hosts = 9;
  star.link_rate_bps = 10'000'000'000ULL;
  star.num_queues = 1;
  star.buffer_bytes = 2'000'000;
  star.host_delay =
      topo::star_host_delay_for_rtt(100 * sim::kMicrosecond, star.link_prop);
  auto network =
      topo::build_star(simulator, star, core::make_scheduler_factory(sched),
                       core::make_marker_factory(scheme, params));
  transport::FlowManager fm;
  for (std::size_t h = 1; h <= 8; ++h) {
    transport::FlowSpec spec;
    spec.size = 2'000'000'000ULL;
    spec.tcp.cc = transport::CongestionControl::kEcnStar;
    spec.tcp.init_cwnd_pkts = 16;
    fm.start_flow(network.host(h), network.host(0), spec);
  }
  stats::PeriodicSampler sampler(simulator, 10 * sim::kMicrosecond, [&] {
    return static_cast<double>(network.switch_at(0).port(0).total_bytes());
  });
  sampler.start();
  simulator.run(10 * sim::kMillisecond);
  return sampler.max_value() / 1e3;
}

TEST(PaperShapes, Fig3_DequeueRedPeaksBelowEnqueueRedAndTcn) {
  const double enq = occupancy_peak_kb(core::Scheme::kRedPerQueue);
  const double deq = occupancy_peak_kb(core::Scheme::kRedDequeue);
  const double tcn = occupancy_peak_kb(core::Scheme::kTcn);
  // Dequeue RED reacts to *future* dequeued packets, so its slow-start peak
  // is the lowest; enqueue RED and TCN peak alike (Sec. 4.3).
  EXPECT_LT(deq, enq);
  EXPECT_NEAR(tcn, enq, enq * 0.15);
  // Everyone's peak is bounded well under the 2MB buffer (marking works).
  EXPECT_LT(enq, 400.0);
}

// ------------------------------------------------------------ Fig. 5b -----

TEST(PaperShapes, Fig5b_TcnRttFarBelowStandardRed) {
  auto run = [](core::Scheme scheme) {
    sim::Simulator simulator;
    core::SchemeParams params;
    params.rtt_lambda = 256 * sim::kMicrosecond;
    params.red_threshold_bytes = 32'000;
    core::SchedConfig sched;
    sched.kind = core::SchedKind::kSpWfq;
    sched.num_queues = 3;
    sched.num_sp = 1;
    topo::StarConfig star;
    star.num_hosts = 4;
    star.num_queues = 3;
    star.buffer_bytes = 96'000;
    star.host_delay = topo::star_host_delay_for_rtt(250 * sim::kMicrosecond,
                                                    star.link_prop);
    star.host_rates = {0, 500'000'000, 0, 0};
    auto network = topo::build_star(simulator, star,
                                    core::make_scheduler_factory(sched),
                                    core::make_marker_factory(scheme, params));
    transport::FlowManager fm;
    auto start = [&](std::size_t host, std::uint8_t q, int n) {
      for (int i = 0; i < n; ++i) {
        transport::FlowSpec spec;
        spec.size = 2'000'000'000ULL;
        spec.service = q;
        spec.data_dscp = transport::constant_dscp(q);
        spec.ack_dscp = q;
        spec.tcp.max_cwnd_bytes = 64'000;
        fm.start_flow(network.host(host), network.host(0), spec);
      }
    };
    start(1, 0, 1);
    start(2, 1, 1);
    start(3, 2, 4);
    transport::PingResponder responder(network.host(3), 99);
    transport::PingApp ping(network.host(0), 3, 99, 2, 2 * sim::kMillisecond);
    simulator.schedule_at(100 * sim::kMillisecond, [&] { ping.start(); });
    simulator.run(500 * sim::kMillisecond);
    std::vector<double> us;
    for (const auto r : ping.rtts()) {
      us.push_back(static_cast<double>(r) / sim::kMicrosecond);
    }
    return stats::mean(us);
  };
  const double tcn = run(core::Scheme::kTcn);
  const double red = run(core::Scheme::kRedPerQueue);
  // Paper: 415us vs 1084us average. Require at least a 1.7x gap.
  EXPECT_GT(red, 1.7 * tcn);
  EXPECT_GT(tcn, 250.0);   // never below the base RTT
  EXPECT_LT(tcn, 800.0);
}

}  // namespace
}  // namespace tcn
