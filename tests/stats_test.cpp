// Stats tests: percentile math, FCT bucketing, goodput meter, sampler.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "stats/fct.hpp"
#include "stats/percentile.hpp"
#include "stats/timeseries.hpp"

namespace tcn::stats {
namespace {

TEST(Percentile, NearestRank) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 20.0), 1.0);
}

TEST(Percentile, P99OfLargeSample) {
  std::vector<int> v(1000);
  for (int i = 0; i < 1000; ++i) v[i] = i + 1;  // 1..1000
  EXPECT_EQ(percentile(v, 99.0), 990);
  EXPECT_EQ(percentile(v, 50.0), 500);
}

TEST(Percentile, Rejects) {
  EXPECT_THROW(percentile(std::vector<int>{}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile(std::vector<int>{1}, 101.0), std::invalid_argument);
}

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1, 2, 3}), 2.0);
  EXPECT_THROW(mean(std::vector<double>{}), std::invalid_argument);
}

transport::FlowResult flow(std::uint64_t size, double fct_us,
                           std::uint32_t timeouts = 0) {
  transport::FlowResult r;
  r.size = size;
  r.fct = static_cast<sim::Time>(fct_us * sim::kMicrosecond);
  r.timeouts = timeouts;
  return r;
}

TEST(FctCollector, BucketsBySize) {
  FctCollector c;
  c.add(flow(50'000, 100));        // small
  c.add(flow(100'000, 200));       // small (boundary inclusive)
  c.add(flow(500'000, 1'000));     // medium: counted in "all" only
  c.add(flow(20'000'000, 50'000)); // large
  const auto s = c.summary();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.small_count, 2u);
  EXPECT_EQ(s.large_count, 1u);
  EXPECT_DOUBLE_EQ(s.avg_small_us, 150.0);
  EXPECT_DOUBLE_EQ(s.avg_large_us, 50'000.0);
  EXPECT_DOUBLE_EQ(s.avg_all_us, (100 + 200 + 1000 + 50'000) / 4.0);
}

TEST(FctCollector, SmallFlowTimeoutsTracked) {
  FctCollector c;
  c.add(flow(1'000, 10'000, 2));
  c.add(flow(20'000'000, 90'000, 1));
  const auto s = c.summary();
  EXPECT_EQ(s.timeouts, 3u);
  EXPECT_EQ(s.small_timeouts, 2u);
}

TEST(FctCollector, P99Small) {
  FctCollector c;
  for (int i = 1; i <= 100; ++i) c.add(flow(1'000, i));
  const auto s = c.summary();
  EXPECT_DOUBLE_EQ(s.p99_small_us, 99.0);
}

TEST(FctCollector, EmptySummaryIsZero) {
  FctCollector c;
  const auto s = c.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.avg_all_us, 0.0);
  EXPECT_DOUBLE_EQ(s.p99_small_us, 0.0);
}

TEST(GoodputMeter, BinsAndAverage) {
  GoodputMeter m(sim::kMillisecond);
  m.record(125'000, 500 * sim::kMicrosecond);   // bin 0
  m.record(125'000, 1'500 * sim::kMicrosecond); // bin 1
  // 125KB over 1ms = 1Gbps.
  EXPECT_DOUBLE_EQ(m.bin_bps(0), 1e9);
  EXPECT_DOUBLE_EQ(m.bin_bps(1), 1e9);
  EXPECT_DOUBLE_EQ(m.bin_bps(5), 0.0);
  EXPECT_DOUBLE_EQ(m.average_bps(0, 2 * sim::kMillisecond), 1e9);
  EXPECT_EQ(m.total_bytes(), 250'000u);
}

TEST(GoodputMeter, AverageOverEmptyWindowIsZero) {
  GoodputMeter m(sim::kMillisecond);
  EXPECT_DOUBLE_EQ(m.average_bps(0, sim::kSecond), 0.0);
  EXPECT_DOUBLE_EQ(m.average_bps(5, 5), 0.0);
}

TEST(PeriodicSampler, SamplesAtInterval) {
  sim::Simulator s;
  double value = 1.0;
  PeriodicSampler sampler(s, 10 * sim::kMicrosecond, [&] { return value; });
  sampler.start();
  s.schedule_at(35 * sim::kMicrosecond, [&] { value = 9.0; });
  s.run(100 * sim::kMicrosecond);
  sampler.stop();
  ASSERT_GE(sampler.samples().size(), 10u);
  EXPECT_DOUBLE_EQ(sampler.samples()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(sampler.samples()[5].value, 9.0);  // t=50us
  EXPECT_DOUBLE_EQ(sampler.max_value(), 9.0);
  EXPECT_EQ(sampler.samples()[3].t, 30 * sim::kMicrosecond);
}

}  // namespace
}  // namespace tcn::stats
