// Tracing tests: event emission from the port pipeline, filters and caps,
// text formatting, per-flow summaries, tee fan-out.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "aqm/tcn.hpp"
#include "net/fifo_scheduler.hpp"
#include "net/port.hpp"
#include "sim/simulator.hpp"
#include "stats/tracer.hpp"
#include "test_util.hpp"

namespace tcn::stats {
namespace {

using test::CaptureNode;
using test::make_test_packet;

struct Rig {
  explicit Rig(std::uint64_t buffer = UINT64_MAX,
               std::unique_ptr<net::Marker> marker = nullptr) {
    net::PortConfig cfg;
    cfg.rate_bps = 1'000'000'000;
    cfg.buffer_bytes = buffer;
    if (!marker) marker = std::make_unique<net::NullMarker>();
    port = std::make_unique<net::Port>(sim, "sw0.p1", cfg,
                                       std::make_unique<net::FifoScheduler>(),
                                       std::move(marker));
    port->connect(&sink, 0);
  }
  sim::Simulator sim;
  CaptureNode sink;
  std::unique_ptr<net::Port> port;
};

TEST(Trace, EnqueueAndDequeuePairs) {
  Rig rig;
  RecordingTracer tracer;
  rig.port->set_observer(&tracer);
  for (int i = 0; i < 5; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, i), 0);
  }
  rig.sim.run();
  EXPECT_EQ(tracer.count(net::TraceEvent::kEnqueue), 5u);
  EXPECT_EQ(tracer.count(net::TraceEvent::kDequeue), 5u);
  EXPECT_EQ(tracer.count(net::TraceEvent::kDrop), 0u);
  // Port name and monotone timestamps.
  sim::Time last = -1;
  for (const auto& r : tracer.records()) {
    EXPECT_EQ(r.port, "sw0.p1");
    EXPECT_GE(r.t, last);
    last = r.t;
  }
}

TEST(Trace, DropEventsCarryQueueState) {
  Rig rig(/*buffer=*/2'000);
  RecordingTracer tracer;
  rig.port->set_observer(&tracer);
  rig.port->enqueue(make_test_packet(1500, 0, 1), 0);  // in service
  rig.port->enqueue(make_test_packet(1500, 0, 2), 0);  // buffered
  rig.port->enqueue(make_test_packet(1500, 0, 3), 0);  // dropped
  rig.sim.run();
  ASSERT_EQ(tracer.count(net::TraceEvent::kDrop), 1u);
  for (const auto& r : tracer.records()) {
    if (r.event == net::TraceEvent::kDrop) {
      EXPECT_EQ(r.flow, 3u);
      EXPECT_EQ(r.port_bytes, 1'500u);  // state at the drop
    }
  }
}

TEST(Trace, MarkEventsFromTcn) {
  Rig rig(UINT64_MAX,
          std::make_unique<aqm::TcnMarker>(10 * sim::kMicrosecond));
  RecordingTracer tracer;
  rig.port->set_observer(&tracer);
  // 20 back-to-back packets: the tail waits >10us, so late ones get marked.
  for (int i = 0; i < 20; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, i), 0);
  }
  rig.sim.run();
  EXPECT_GT(tracer.count(net::TraceEvent::kMark), 0u);
  EXPECT_EQ(tracer.count(net::TraceEvent::kMark),
            rig.port->counters().marks);
}

TEST(Trace, FilterAndCap) {
  Rig rig;
  RecordingTracer only_flow7(/*max=*/3, [](const net::TraceRecord& r) {
    return r.flow == 7;
  });
  rig.port->set_observer(&only_flow7);
  for (int i = 0; i < 10; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, i % 2 == 0 ? 7 : 9), 0);
  }
  rig.sim.run();
  // 5 packets of flow 7 produce 10 events (enq+deq); cap keeps 3.
  EXPECT_EQ(only_flow7.records().size(), 3u);
  EXPECT_EQ(only_flow7.overflow(), 7u);
  for (const auto& r : only_flow7.records()) EXPECT_EQ(r.flow, 7u);
}

TEST(Trace, TextTracerFormatsLines) {
  Rig rig;
  std::ostringstream out;
  TextTracer tracer(out);
  rig.port->set_observer(&tracer);
  auto p = make_test_packet(1500, 2, 42);
  p->seq = 1460;
  rig.port->enqueue(std::move(p), 0);
  rig.sim.run();
  const auto text = out.str();
  EXPECT_NE(text.find("enq sw0.p1 q0 flow=42 seq=1460 size=1500 dscp=2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("deq sw0.p1"), std::string::npos);
}

TEST(Trace, FlowSummaryAggregates) {
  Rig rig(/*buffer=*/4'500,
          std::make_unique<aqm::TcnMarker>(5 * sim::kMicrosecond));
  FlowTraceSummary summary;
  rig.port->set_observer(&summary);
  for (int i = 0; i < 6; ++i) {
    rig.port->enqueue(make_test_packet(1500, 0, /*flow=*/i % 2), 0);
  }
  rig.sim.run();
  const auto& f0 = summary.flow(0);
  const auto& f1 = summary.flow(1);
  EXPECT_EQ(f0.packets + f1.packets + f0.drops + f1.drops, 6u);
  EXPECT_GT(f0.bytes, 0u);
  EXPECT_THROW(summary.flow(99), std::out_of_range);
}

TEST(Trace, TeeFansOut) {
  Rig rig;
  RecordingTracer a, b;
  TeeObserver tee({&a, &b});
  rig.port->set_observer(&tee);
  rig.port->enqueue(make_test_packet(1500, 0, 1), 0);
  rig.sim.run();
  EXPECT_EQ(a.records().size(), b.records().size());
  EXPECT_EQ(a.records().size(), 2u);  // enq + deq
}

TEST(Trace, DetachStopsEvents) {
  Rig rig;
  RecordingTracer tracer;
  rig.port->set_observer(&tracer);
  rig.port->enqueue(make_test_packet(1500, 0, 1), 0);
  rig.port->set_observer(nullptr);
  rig.port->enqueue(make_test_packet(1500, 0, 2), 0);
  rig.sim.run();
  for (const auto& r : tracer.records()) EXPECT_EQ(r.flow, 1u);
}

}  // namespace
}  // namespace tcn::stats
