// Tests for the Sec. 4.2 hardware-model TCN: wrapping 2-byte timestamps at
// 4/8ns resolution must agree with the ideal sojourn-time marker for every
// sojourn below the wrap horizon, including across counter wraps.
#include <gtest/gtest.h>

#include "aqm/hw_tcn.hpp"
#include "aqm/tcn.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

namespace tcn::aqm {
namespace {

using test::make_test_packet;

net::MarkContext ctx_at(sim::Time now) {
  return net::MarkContext{.now = now,
                          .queue = 0,
                          .queue_bytes = 0,
                          .port_bytes = 0,
                          .link_rate_bps = 10'000'000'000ULL};
}

TEST(WrappingClock, HorizonMatchesPaper) {
  // "4ns x 2^16 ~= 262us, 8ns x 2^16 ~= 524us" (Sec. 4.2).
  EXPECT_EQ(WrappingClock(4, 16).horizon(), 262'144);
  EXPECT_EQ(WrappingClock(8, 16).horizon(), 524'288);
}

TEST(WrappingClock, ElapsedAcrossWrap) {
  const WrappingClock clk(4, 16);
  // Enqueue just before the counter wraps, dequeue just after.
  const sim::Time enq_t = 262'140;  // tick 65535
  const sim::Time deq_t = 262'148;  // tick 1 after wrap
  const auto e = clk.elapsed(clk.stamp(enq_t), clk.stamp(deq_t));
  EXPECT_EQ(e, 8);
}

TEST(WrappingClock, QuantizationErrorBounded) {
  const WrappingClock clk(8, 16);
  sim::Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const auto enq = static_cast<sim::Time>(rng.uniform(0, 1e9));
    const auto delta = static_cast<sim::Time>(rng.uniform(0, 500'000));
    const auto measured = clk.elapsed(clk.stamp(enq), clk.stamp(enq + delta));
    EXPECT_LE(std::abs(measured - delta), 8) << "enq=" << enq;
  }
}

TEST(WrappingClock, RejectsBadConfig) {
  EXPECT_THROW(WrappingClock(0, 16), std::invalid_argument);
  EXPECT_THROW(WrappingClock(4, 0), std::invalid_argument);
  EXPECT_THROW(WrappingClock(4, 32), std::invalid_argument);
}

TEST(HwTcn, AgreesWithIdealMarkerBelowHorizon) {
  const sim::Time threshold = 78 * sim::kMicrosecond;
  TcnMarker ideal(threshold);
  HwTcnMarker hw(threshold, 4, 16);
  sim::Rng rng(7);
  auto p = make_test_packet(1500);
  int disagreements = 0;
  for (int i = 0; i < 50'000; ++i) {
    p->enqueue_ts = static_cast<sim::Time>(rng.uniform(0, 1e9));
    const auto sojourn = static_cast<sim::Time>(rng.uniform(0, 250'000));
    const auto now = p->enqueue_ts + sojourn;
    const bool a = ideal.on_dequeue(ctx_at(now), *p);
    const bool b = hw.on_dequeue(ctx_at(now), *p);
    // Within one tick of the threshold the quantized compare may differ;
    // anywhere else it must agree.
    if (std::abs(sojourn - threshold) > 8) {
      EXPECT_EQ(a, b) << "sojourn=" << sojourn;
    } else if (a != b) {
      ++disagreements;
    }
  }
  EXPECT_LE(disagreements, 10);
}

TEST(HwTcn, MarksAcrossCounterWrap) {
  const sim::Time threshold = 100 * sim::kMicrosecond;
  HwTcnMarker hw(threshold, 4, 16);
  auto p = make_test_packet(1500);
  // Enqueue near the wrap, dequeue after it, sojourn 150us > T.
  p->enqueue_ts = 262'000;
  EXPECT_TRUE(hw.on_dequeue(ctx_at(262'000 + 150'000), *p));
  // Sojourn 50us < T across the wrap: no mark.
  EXPECT_FALSE(hw.on_dequeue(ctx_at(262'000 + 50'000), *p));
}

TEST(HwTcn, RejectsThresholdBeyondHorizon) {
  EXPECT_THROW(HwTcnMarker(300 * sim::kMicrosecond, 4, 16),
               std::invalid_argument);
  EXPECT_NO_THROW(HwTcnMarker(300 * sim::kMicrosecond, 8, 16));
}

}  // namespace
}  // namespace tcn::aqm
