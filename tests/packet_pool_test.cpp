// PacketPool and hot-path allocation tests.
//
// This binary overrides global operator new/delete with counting wrappers
// so the central claim of the zero-allocation refactor -- steady-state
// event scheduling and packet churn perform no heap allocations at all --
// is asserted directly, not inferred from throughput. The override is
// per-binary, which is why these tests live in their own test target.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

// Counting global allocator. Counts every operator new in the process --
// gtest bookkeeping included -- so assertions sample the counter tightly
// around the code under test and nothing else.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return ::operator new(n); }

// GCC's -Wmismatched-new-delete heuristic misfires on replacement
// deallocation functions that visibly call free() on memory from the
// replacement operator new above (which itself uses malloc, so the pair
// does match); silence it for exactly these four definitions.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace tcn {
namespace {

std::uint64_t allocs() { return g_allocs.load(std::memory_order_relaxed); }

// ------------------------------------------------------------ pool basics ----

TEST(PacketPool, RecycleReusesAndFullyReinitializes) {
  net::PacketUidScope uids;
  net::PacketPool pool;
  net::PacketPool::Scope scope(pool);

  net::PacketPtr p = net::make_packet();
  net::Packet* raw = p.get();
  const std::uint64_t first_uid = p->uid;
  // Dirty every interesting field.
  p->type = net::PacketType::kAck;
  p->size = 1500;
  p->payload = 1460;
  p->seq = 77;
  p->ack = 99;
  p->ece = true;
  p->ecn = net::Ecn::kCe;
  p->dscp = 5;
  p->sack_count = 2;
  p->enqueue_ts = 123;
  p.reset();  // recycles

  EXPECT_EQ(pool.fresh_allocs(), 1u);
  EXPECT_EQ(pool.recycles(), 1u);
  EXPECT_EQ(pool.free_size(), 1u);

  net::PacketPtr q = net::make_packet();
  // Same storage, reset state, fresh uid.
  EXPECT_EQ(q.get(), raw);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(q->uid, first_uid + 1);
  EXPECT_EQ(q->type, net::PacketType::kData);
  EXPECT_EQ(q->size, 0u);
  EXPECT_EQ(q->payload, 0u);
  EXPECT_EQ(q->seq, 0u);
  EXPECT_EQ(q->ack, 0u);
  EXPECT_FALSE(q->ece);
  EXPECT_EQ(q->ecn, net::Ecn::kNotEct);
  EXPECT_EQ(q->dscp, 0u);
  EXPECT_EQ(q->sack_count, 0u);
  EXPECT_EQ(q->enqueue_ts, 0);
  EXPECT_FALSE(q->pool_free);
}

TEST(PacketPool, LifoReuseKeepsCacheWarmOrder) {
  net::PacketPool pool;
  net::PacketPool::Scope scope(pool);
  net::PacketPtr a = net::make_packet();
  net::PacketPtr b = net::make_packet();
  net::Packet* rb = b.get();
  a.reset();
  b.reset();
  // LIFO: the most recently recycled packet comes back first.
  net::PacketPtr c = net::make_packet();
  EXPECT_EQ(c.get(), rb);
}

TEST(PacketPool, LiveCountTracksOutstandingHandles) {
  net::PacketPool pool;
  net::PacketPool::Scope scope(pool);
  EXPECT_EQ(pool.live(), 0u);
  auto a = net::make_packet();
  auto b = net::make_packet();
  EXPECT_EQ(pool.live(), 2u);
  a.reset();
  EXPECT_EQ(pool.live(), 1u);
  b.reset();
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, NoScopeFallsBackToHeap) {
  // Outside any scope make_packet() still works (tests, ad-hoc tools); the
  // deleter plain-deletes instead of recycling.
  net::PacketPtr p = net::make_packet();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(net::PacketPool::current(), nullptr);
  p.reset();  // must not crash; nothing to assert beyond ASan cleanliness
}

TEST(PacketPool, ScopesNestAndRestore) {
  net::PacketPool outer;
  net::PacketPool::Scope outer_scope(outer);
  EXPECT_EQ(net::PacketPool::current(), &outer);
  {
    net::PacketPool inner;
    net::PacketPool::Scope inner_scope(inner);
    EXPECT_EQ(net::PacketPool::current(), &inner);
    auto p = net::make_packet();
    p.reset();
    EXPECT_EQ(inner.fresh_allocs(), 1u);
    EXPECT_EQ(outer.fresh_allocs(), 0u);
  }
  EXPECT_EQ(net::PacketPool::current(), &outer);
}

// ------------------------------------------------------- misuse handling ----

TEST(PacketPool, DoubleRecycleIsDetectedAndDropped) {
  net::PacketPool pool;
  net::PacketPool::Scope scope(pool);
  auto p = net::make_packet();
  net::Packet* raw = p.get();
  p.reset();  // legitimate recycle
  ASSERT_EQ(pool.free_size(), 1u);

  // Direct misuse of the pool API: recycling a packet already on the free
  // list. Must not double-insert (which would later hand the same storage
  // to two owners) and must stay memory-safe -- slab storage is pool-owned,
  // so this is a counted logical error, not heap corruption.
  pool.recycle(raw);
  EXPECT_EQ(pool.double_recycles(), 1u);
  EXPECT_EQ(pool.free_size(), 1u);
  EXPECT_EQ(pool.recycles(), 1u);

  // The pool still functions normally afterwards.
  auto q = net::make_packet();
  EXPECT_EQ(q.get(), raw);
  EXPECT_EQ(pool.double_recycles(), 1u);
}

// ------------------------------------------------------- scope isolation ----

TEST(PacketPool, ConcurrentRunsNeverSharePackets) {
  // Two "sweep jobs" on separate threads, each with its own pool scope (the
  // runner's per-job setup). The storage each job sees must be disjoint and
  // each pool's counters must only reflect its own job.
  constexpr int kPackets = 500;
  std::set<const net::Packet*> seen_a, seen_b;
  // Pools outlive both jobs so the pointer sets are compared while both
  // slabs are still live -- otherwise the allocator could legitimately
  // hand thread B the addresses thread A's destroyed pool freed.
  net::PacketPool pool_a, pool_b;

  auto job = [](net::PacketPool& pool, std::set<const net::Packet*>& seen) {
    net::PacketUidScope uids;
    net::PacketPool::Scope scope(pool);
    for (int i = 0; i < kPackets; ++i) {
      auto p = net::make_packet();
      seen.insert(p.get());
      if (i % 3 == 0) p.reset();  // mix held and recycled packets
    }
  };

  std::thread ta([&] { job(pool_a, seen_a); });
  std::thread tb([&] { job(pool_b, seen_b); });
  ta.join();
  tb.join();

  EXPECT_GT(pool_a.fresh_allocs(), 0u);
  EXPECT_GT(pool_b.fresh_allocs(), 0u);
  // Each pool only ever served its own job's thread...
  EXPECT_EQ(pool_a.fresh_allocs() + pool_a.reuses(),
            static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(pool_b.fresh_allocs() + pool_b.reuses(),
            static_cast<std::uint64_t>(kPackets));
  // ...and the storage the two jobs saw is disjoint.
  for (const net::Packet* p : seen_a) {
    EXPECT_EQ(seen_b.count(p), 0u) << "pools shared packet storage";
  }
}

// -------------------------------------------------- zero-allocation proof ----

TEST(HotPath, SteadyStateEventAndPacketChurnIsAllocationFree) {
  net::PacketUidScope uids;
  net::PacketPool pool;
  net::PacketPool::Scope scope(pool);
  sim::Simulator s;

  // A self-clocked event chain that acquires a packet per tick and carries
  // it inside the event capture -- the port-serialization pattern. The
  // packet recycles when the fired event's callback is destroyed.
  struct Churn {
    sim::Simulator* s;
    int* remaining;
    void operator()() {
      if (--*remaining <= 0) return;
      auto p = net::make_packet();
      p->size = 1500;
      s->schedule_in(100, [c = *this, pkt = std::move(p)]() mutable { c(); });
    }
  };

  int remaining = 2'000;
  s.schedule_at(0, Churn{&s, &remaining});
  s.run();  // warmup: slab growth, heap-vector growth, free-list fill
  ASSERT_EQ(remaining, 0);
  const std::uint64_t fresh_after_warmup = pool.fresh_allocs();

  remaining = 10'000;
  s.schedule_in(100, Churn{&s, &remaining});
  const std::uint64_t allocs_before = allocs();
  s.run();
  const std::uint64_t allocs_after = allocs();
  ASSERT_EQ(remaining, 0);

  // The claim of the refactor, asserted literally: ten thousand
  // schedule+fire+packet-acquire+recycle cycles, zero heap allocations.
  EXPECT_EQ(allocs_after - allocs_before, 0u);
  // And the pool-side view agrees: no slab growth after warmup, all reuse.
  EXPECT_EQ(pool.fresh_allocs(), fresh_after_warmup);
  EXPECT_GE(pool.reuses(), 10'000u - fresh_after_warmup);
}

// --------------------------------------------------------- InlineCallback ----

TEST(InlineCallback, CarriesMoveOnlyCaptures) {
  // The capability std::function never had: a unique_ptr rides directly in
  // the event capture, and an event that never fires releases it cleanly.
  sim::Simulator s;
  auto payload = std::make_unique<int>(41);
  int result = 0;
  s.schedule_at(5, [p = std::move(payload), &result] { result = *p + 1; });
  s.run();
  EXPECT_EQ(result, 42);
}

TEST(InlineCallback, UnfiredEventReleasesCapture) {
  net::PacketPool pool;
  net::PacketPool::Scope scope(pool);
  {
    sim::Simulator s;
    auto p = net::make_packet();
    s.schedule_at(10, [pkt = std::move(p)]() mutable {});
    // Simulator destroyed without running: the pending event's packet must
    // recycle, not leak.
  }
  EXPECT_EQ(pool.recycles(), 1u);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(InlineCallback, MoveTransfersOwnership) {
  sim::InlineCallback a;
  EXPECT_FALSE(static_cast<bool>(a));
  int hits = 0;
  a = sim::InlineCallback([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(a));
  sim::InlineCallback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallback, BoxedFallbackHandlesOversizedCaptures) {
  // A capture bigger than the 64B inline budget is a compile error on the
  // direct path; boxed() is the sanctioned heap escape hatch for tests and
  // runner-scale closures.
  struct Big {
    char blob[256];
  };
  Big big{};
  big.blob[255] = 7;
  int result = 0;
  sim::Simulator s;
  s.schedule_at(1, sim::boxed([big, &result] { result = big.blob[255]; }));
  s.run();
  EXPECT_EQ(result, 7);
}

TEST(InlineCallback, CompileTimeBudget) {
  // The inline budget itself is part of the contract: a {this, index,
  // PacketPtr} forwarding capture must fit with room to spare.
  struct HotCapture {
    void* self;
    std::size_t q;
    net::PacketPtr pkt;
  };
  static_assert(sizeof(HotCapture) <= sim::InlineCallback::kInlineBytes);
  static_assert(sizeof(sim::InlineCallback) <=
                sim::InlineCallback::kInlineBytes + 2 * sizeof(void*));
}

}  // namespace
}  // namespace tcn
