// Golden-trace regression test: a tiny fixed-seed SP+DWRR scenario streamed
// through the tcn-trace-1 JSONL writer and the tcn-metrics-1 exporter, then
// byte-compared against checked-in goldens. Any change to event ordering,
// trace schema, metric naming, histogram bucketing or JSON rendering shows
// up here as a byte diff.
//
// Regenerating after an INTENTIONAL format change (review the diff!):
//
//   TCN_UPDATE_GOLDEN=1 ./build/tests/golden_trace_test
//   git diff tests/golden/
//
// The scenario is pure fixed-point simulation (no wall clock, no RNG), so
// the goldens are identical on every platform and under every sanitizer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "aqm/tcn.hpp"
#include "core/schemes.hpp"
#include "net/port.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace tcn {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool update_golden() {
  const char* env = std::getenv("TCN_UPDATE_GOLDEN");
  return env != nullptr && std::string(env) == "1";
}

void compare_or_update(const std::string& name, const std::string& actual) {
  const auto path = golden_path(name);
  if (update_golden()) {
    obs::write_text_file(path, actual);
    SUCCEED() << "regenerated " << path;
    return;
  }
  const auto expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden " << path
      << " -- regenerate with: TCN_UPDATE_GOLDEN=1 ./golden_trace_test";
  EXPECT_EQ(actual, expected)
      << "byte mismatch vs " << path
      << " -- if the format change is intentional, regenerate with "
         "TCN_UPDATE_GOLDEN=1 and review the diff";
}

/// The scenario: one 1G egress port, 3 queues under SP+DWRR (queue 0
/// strict, queues 1-2 DWRR), a 9KB shared buffer and a 20us TCN marker.
/// Bursts at t=0/5us/12us build enough backlog for dequeue-side marks and
/// one tail drop; a late lone packet at 400us dequeues unmarked.
struct Run {
  std::string trace;
  std::string metrics;
};

Run run_scenario_with(const core::SchedConfig& sched_cfg,
                      std::uint64_t buffer_bytes) {
  net::PacketUidScope uid_scope;
  net::PacketPool pool;
  net::PacketPool::Scope pool_scope(pool);
  obs::MetricsRegistry registry;
  obs::MetricsRegistry::Scope metrics_scope(registry);

  sim::Simulator sim;

  net::PortConfig cfg;
  cfg.rate_bps = 1'000'000'000;
  cfg.num_queues = 3;
  cfg.buffer_bytes = buffer_bytes;

  net::Port port(sim, "sw0.p0", cfg, core::make_scheduler_factory(sched_cfg)(),
                 std::make_unique<aqm::TcnMarker>(20 * sim::kMicrosecond));
  test::CaptureNode sink;
  port.connect(&sink, 0);

  std::ostringstream out;
  obs::JsonlTraceWriter writer(out);
  port.set_observer(&writer);

  auto enq = [&](std::size_t queue, std::uint32_t size, std::uint64_t flow) {
    port.enqueue(test::make_test_packet(size, static_cast<std::uint8_t>(queue),
                                        flow),
                 queue);
  };
  // t=0: one packet per queue plus a short one in queue 1.
  enq(0, 1500, 1);
  enq(1, 1500, 2);
  enq(2, 1500, 3);
  enq(1, 700, 4);
  sim.schedule_at(5 * sim::kMicrosecond, [&] {
    enq(1, 1500, 2);
    enq(2, 1500, 3);
    enq(0, 300, 1);
  });
  sim.schedule_at(12 * sim::kMicrosecond, [&] {
    // Burst into queue 2: the last packet overflows the 9KB buffer.
    enq(2, 1500, 5);
    enq(2, 1500, 5);
    enq(2, 1500, 6);
    enq(2, 1500, 6);
  });
  sim.schedule_at(400 * sim::kMicrosecond, [&] { enq(0, 100, 7); });
  sim.run();

  Run r;
  r.trace = out.str();
  r.metrics = obs::metrics_to_json(registry.snapshot()) + "\n";
  return r;
}

Run run_scenario() {
  core::SchedConfig sched_cfg;
  sched_cfg.kind = core::SchedKind::kSpDwrr;
  sched_cfg.num_queues = 3;
  sched_cfg.num_sp = 1;
  return run_scenario_with(sched_cfg, 9'000);
}

/// Same arrival script through the 4-level SP-PIFO with the STFQ rank
/// program: the approximation's push-up/push-down walk is pinned byte for
/// byte alongside the exact schedulers.
Run run_sp_pifo_scenario() {
  core::SchedConfig sched_cfg;
  sched_cfg.kind = core::SchedKind::kSpPifo;
  sched_cfg.num_queues = 3;
  sched_cfg.sp_pifo_levels = 4;
  return run_scenario_with(sched_cfg, 9'000);
}

/// Same arrival script through AIFO with a 4-sample window, k = 0 and a
/// 6KB buffer: tight enough that the quantile gate rejects mid-burst, so
/// the golden pins the "sdrop" trace event and the drops.sched counter.
Run run_aifo_scenario() {
  core::SchedConfig sched_cfg;
  sched_cfg.kind = core::SchedKind::kAifo;
  sched_cfg.num_queues = 3;
  sched_cfg.aifo_window = 4;
  sched_cfg.aifo_k = 0.0;
  return run_scenario_with(sched_cfg, 6'000);
}

TEST(GoldenTrace, SpDwrrScenarioTraceBytes) {
  compare_or_update("trace_sp_dwrr.jsonl", run_scenario().trace);
}

TEST(GoldenTrace, SpDwrrScenarioMetricsBytes) {
  compare_or_update("metrics_sp_dwrr.json", run_scenario().metrics);
}

TEST(GoldenTrace, SpPifoScenarioTraceBytes) {
  compare_or_update("trace_sp_pifo.jsonl", run_sp_pifo_scenario().trace);
}

TEST(GoldenTrace, SpPifoScenarioMetricsBytes) {
  compare_or_update("metrics_sp_pifo.json", run_sp_pifo_scenario().metrics);
}

TEST(GoldenTrace, AifoScenarioTraceBytes) {
  compare_or_update("trace_aifo.jsonl", run_aifo_scenario().trace);
}

TEST(GoldenTrace, AifoScenarioMetricsBytes) {
  compare_or_update("metrics_aifo.json", run_aifo_scenario().metrics);
}

TEST(GoldenTrace, ScenarioIsSelfConsistent) {
  // Independent of the goldens: the scenario drains, drops exactly one
  // packet, and marks at least one dequeue (so the golden actually
  // exercises every event type).
  const auto r = run_scenario();
  EXPECT_NE(r.trace.find("\"ev\":\"drop\""), std::string::npos);
  EXPECT_NE(r.trace.find("\"ev\":\"mark\""), std::string::npos);
  EXPECT_NE(r.trace.find("\"ev\":\"enq\""), std::string::npos);
  EXPECT_NE(r.trace.find("\"ev\":\"deq\""), std::string::npos);
  // Two runs of the same scenario are byte-identical (determinism).
  const auto again = run_scenario();
  EXPECT_EQ(r.trace, again.trace);
  EXPECT_EQ(r.metrics, again.metrics);
}

TEST(GoldenTrace, AifoScenarioIsSelfConsistent) {
  // The AIFO golden must actually exercise the admission gate: at least
  // one "sdrop" in the trace, a nonzero drops.sched counter, and the run
  // stays deterministic.
  const auto r = run_aifo_scenario();
  EXPECT_NE(r.trace.find("\"ev\":\"sdrop\""), std::string::npos);
  EXPECT_NE(r.trace.find("\"ev\":\"deq\""), std::string::npos);
  EXPECT_NE(r.metrics.find("drops.sched"), std::string::npos);
  const auto again = run_aifo_scenario();
  EXPECT_EQ(r.trace, again.trace);
  EXPECT_EQ(r.metrics, again.metrics);
}

}  // namespace
}  // namespace tcn
