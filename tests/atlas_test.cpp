// bench/atlas library contracts: grid expansion order and labels, the
// per-AQM threshold mapping, and the acceptance property -- the tcn-atlas-1
// document is byte-identical for any --jobs (it carries no host-timing
// fields, so this is a plain string comparison, the same cmp CI runs).
#include <string>

#include <gtest/gtest.h>

#include "atlas.hpp"

namespace {

using namespace tcn;

bench::AtlasAxes tiny_axes() {
  bench::AtlasAxes axes;
  axes.scheds = {{"dwrr", core::SchedKind::kDwrr}};
  axes.schemes = {{"tcn", core::Scheme::kTcn},
                  {"codel", core::Scheme::kCodel}};
  axes.thresholds_us = {256};
  axes.loads = {0.5};
  axes.buffer_bytes = {48'000, 96'000};
  return axes;
}

core::FctExperiment tiny_base() {
  auto base = bench::testbed_base();
  base.num_flows = 40;
  base.seed = 3;
  base.timeseries.interval = 100 * sim::kMicrosecond;
  return base;
}

TEST(Atlas, ThresholdMapsOntoEveryAqm) {
  auto cfg = bench::testbed_base();
  bench::apply_atlas_threshold(cfg, 256.0);
  EXPECT_EQ(cfg.params.rtt_lambda, 256 * sim::kMicrosecond);
  // 1 Gbps x 256us / 8 = 32KB -- the paper's testbed K falls out of the
  // drain-in-T rule, so the default atlas column reproduces it exactly.
  EXPECT_EQ(cfg.params.red_threshold_bytes, 32'000u);
  EXPECT_EQ(cfg.params.codel_target, 256 * sim::kMicrosecond / 5);
  EXPECT_EQ(cfg.params.codel_interval, 4 * 256 * sim::kMicrosecond);
  EXPECT_EQ(cfg.params.tcn_tmin, 128 * sim::kMicrosecond);
  EXPECT_EQ(cfg.params.tcn_tmax, 384 * sim::kMicrosecond);
  // PIE derives target/update from rtt_lambda when left zero.
  EXPECT_EQ(cfg.params.pie_target, 0u);
}

TEST(Atlas, JobGridOrderAndLabels) {
  const auto axes = tiny_axes();
  const auto jobs = bench::atlas_jobs(axes, tiny_base());
  ASSERT_EQ(jobs.size(), 4u);  // 1 sched x 2 schemes x 1 x 1 x 2 buffers
  // Buffer is the innermost axis, scheme outermore.
  EXPECT_EQ(jobs[0].label, "tcn/dwrr/t256/l0.5/b48000");
  EXPECT_EQ(jobs[1].label, "tcn/dwrr/t256/l0.5/b96000");
  EXPECT_EQ(jobs[2].label, "codel/dwrr/t256/l0.5/b48000");
  EXPECT_EQ(jobs[3].label, "codel/dwrr/t256/l0.5/b96000");
  EXPECT_EQ(jobs[0].cfg.star.buffer_bytes, 48'000u);
  EXPECT_EQ(jobs[1].cfg.star.buffer_bytes, 96'000u);
  EXPECT_EQ(jobs[2].cfg.scheme, core::Scheme::kCodel);
  EXPECT_EQ(jobs[0].cfg.sched.kind, core::SchedKind::kDwrr);
  for (const auto& j : jobs) {
    EXPECT_EQ(j.group, "atlas");
    EXPECT_TRUE(j.cfg.timeseries.enabled());
  }
}

TEST(Atlas, DocumentByteIdenticalForAnyJobs) {
  const auto axes = tiny_axes();
  const auto base = tiny_base();

  runner::SweepOptions one;
  one.jobs = 1;
  const auto res1 = runner::run_jobs(bench::atlas_jobs(axes, base), one);
  ASSERT_TRUE(res1.ok());

  runner::SweepOptions two;
  two.jobs = 2;
  const auto res2 = runner::run_jobs(bench::atlas_jobs(axes, base), two);
  ASSERT_TRUE(res2.ok());

  const std::string doc1 = bench::atlas_to_json(axes, res1, 40, 3, 100.0);
  const std::string doc2 = bench::atlas_to_json(axes, res2, 40, 3, 100.0);
  EXPECT_EQ(doc1, doc2);

  EXPECT_NE(doc1.find("\"schema\": \"tcn-atlas-1\""), std::string::npos);
  EXPECT_NE(doc1.find("\"regime\""), std::string::npos);
  EXPECT_NE(doc1.find("\"oscillation_score\""), std::string::npos);
  EXPECT_NE(doc1.find("\"scheme\": \"tcn\""), std::string::npos)
      << "cell axes must be recoverable from the document";
  EXPECT_NE(doc1.find("\"buffer_bytes\": 48000"), std::string::npos);
  // No host-timing fields anywhere -- the byte-compare above is only
  // meaningful if nothing machine-dependent leaks in.
  EXPECT_EQ(doc1.find("\"wall_ms\""), std::string::npos);
  EXPECT_EQ(doc1.find("\"events_per_sec\""), std::string::npos);
  EXPECT_EQ(doc1.find("\"jobs\""), std::string::npos);
}

}  // namespace
