// Figure 9: traffic prioritization, SP (1 queue) / WFQ (4 queues), DCTCP,
// web search, PIAS two-priority tagging. Same expectations as Fig. 8 with
// the WFQ inner scheduler.
#include "figures.hpp"

int main(int argc, char** argv) {
  const auto def = tcn::bench::fig09();
  const auto args = tcn::bench::Args::parse(argc, argv, def.defaults);
  return tcn::bench::run_figure(def, args);
}
