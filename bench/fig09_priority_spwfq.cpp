// Figure 9: traffic prioritization, SP (1 queue) / WFQ (4 queues), DCTCP,
// web search, PIAS two-priority tagging. Same expectations as Fig. 8 with
// the WFQ inner scheduler.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tcn;
  const auto args = bench::Args::parse(argc, argv, {});
  auto cfg = bench::testbed_base();
  cfg.sched.kind = core::SchedKind::kSpWfq;
  cfg.sched.num_sp = 1;
  cfg.pias = true;
  cfg.num_services = 4;
  bench::run_fct_sweep(
      "Fig. 9: prioritization, SP1/WFQ4 + PIAS, DCTCP, web search", cfg,
      {{"TCN", core::Scheme::kTcn},
       {"CoDel", core::Scheme::kCodel},
       {"RED-queue", core::Scheme::kRedPerQueue}},
      args);
  return 0;
}
