// Stability atlas: parameter-space maps of marking threshold x load x
// buffer for TCN vs CoDel vs RED vs PIE across packet schedulers.
//
// Each grid cell is one core::FctExperiment on the 9-host testbed star with
// time-series sampling enabled; the per-cell stability reduction
// (oscillation score, sojourn CV, mark burstiness, regime) comes straight
// from obs::StabilityAnalyzer via the sweep runner, so a cell is exactly
// one RunRecord and the whole atlas aggregates byte-identically for any
// --jobs. The emitted "tcn-atlas-1" document carries NO host-timing fields
// at all -- CI byte-compares (cmp) a jobs=1 against a jobs=4 atlas.
//
// The threshold axis is the paper's sojourn threshold T; every AQM gets T
// mapped onto its native parameter (see apply_atlas_threshold) so the axes
// are comparable across schemes: RED's byte threshold is the queue length
// that drains in T at line rate, CoDel keeps its target ~T/5 and interval
// ~4T tuning recipe, PIE derives its target/update from T.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/export.hpp"

namespace tcn::bench {

struct AtlasAxes {
  std::vector<std::pair<std::string, core::SchedKind>> scheds;
  std::vector<SchemeRun> schemes;
  std::vector<double> thresholds_us;
  std::vector<double> loads;
  std::vector<std::uint64_t> buffer_bytes;

  [[nodiscard]] std::size_t cells() const noexcept {
    return scheds.size() * schemes.size() * thresholds_us.size() *
           loads.size() * buffer_bytes.size();
  }
};

/// The acceptance grid: >= 4 AQMs x >= 2 schedulers over threshold x load x
/// buffer. Thresholds bracket the testbed default T = 256us; buffers
/// bracket the 96KB testbed buffer down into the Tiny-Buffer corner.
inline AtlasAxes default_atlas_axes() {
  AtlasAxes a;
  a.scheds = {{"dwrr", core::SchedKind::kDwrr},
              {"wfq", core::SchedKind::kWfq},
              {"sp-pifo", core::SchedKind::kSpPifo},
              {"aifo", core::SchedKind::kAifo}};
  a.schemes = {{"TCN", core::Scheme::kTcn},
               {"CoDel", core::Scheme::kCodel},
               {"RED", core::Scheme::kRedPerQueue},
               {"PIE", core::Scheme::kPie}};
  a.thresholds_us = {64, 256, 1024};
  a.loads = {0.5, 0.7, 0.9};
  a.buffer_bytes = {24'000, 48'000, 96'000};
  return a;
}

/// Map the atlas threshold axis T onto every scheme's native parameter so
/// one axis sweeps all AQMs comparably.
inline void apply_atlas_threshold(core::FctExperiment& cfg, double t_us) {
  const auto t = static_cast<sim::Time>(t_us * sim::kMicrosecond);
  cfg.params.rtt_lambda = t;  // TCN threshold; PIE derives target/update
  // RED: the instantaneous byte threshold draining in T at line rate
  // (1G x 256us -> 32KB, the paper's testbed K).
  cfg.params.red_threshold_bytes = static_cast<std::uint64_t>(
      static_cast<double>(cfg.star.link_rate_bps) * t_us * 1e-6 / 8.0);
  // CoDel: the testbed tuning recipe, target ~T/5 and interval ~4T.
  cfg.params.codel_target = t / 5;
  cfg.params.codel_interval = 4 * t;
  // Probabilistic-TCN band around T (unused by the default scheme set but
  // kept consistent for --schemes tcn-prob).
  cfg.params.tcn_tmin = t / 2;
  cfg.params.tcn_tmax = 3 * t / 2;
  cfg.params.tcn_pmax = 1.0;
  // PIE target/update are derived from rtt_lambda when left 0.
  cfg.params.pie_target = 0;
  cfg.params.pie_update = 0;
}

/// Compact deterministic cell label, e.g. "TCN/dwrr/t256/l0.7/b96000" --
/// jobs_digest hashes labels, so the label string is what distinguishes
/// threshold/buffer cells in a resume-validation digest.
inline std::string atlas_cell_label(const std::string& scheme,
                                    const std::string& sched, double t_us,
                                    double load, std::uint64_t buffer) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s/%s/t%g/l%g/b%llu", scheme.c_str(),
                sched.c_str(), t_us, load,
                static_cast<unsigned long long>(buffer));
  return buf;
}

/// Expand the grid into runner jobs. Cell order (and so run index) is
/// sched-major, then scheme, threshold, load, buffer -- the same
/// decomposition atlas_to_json uses.
inline std::vector<runner::Job> atlas_jobs(const AtlasAxes& axes,
                                           const core::FctExperiment& base) {
  std::vector<runner::Job> jobs;
  jobs.reserve(axes.cells());
  for (const auto& [sched_name, sched_kind] : axes.scheds) {
    for (const auto& scheme : axes.schemes) {
      for (const double t_us : axes.thresholds_us) {
        for (const double load : axes.loads) {
          for (const std::uint64_t buffer : axes.buffer_bytes) {
            runner::Job j;
            j.group = "atlas";
            j.label =
                atlas_cell_label(scheme.name, sched_name, t_us, load, buffer);
            j.cfg = base;
            j.cfg.scheme = scheme.scheme;
            j.cfg.sched.kind = sched_kind;
            j.cfg.load = load;
            j.cfg.star.buffer_bytes = buffer;
            apply_atlas_threshold(j.cfg, t_us);
            jobs.push_back(std::move(j));
          }
        }
      }
    }
  }
  return jobs;
}

/// Serialize the sweep as a tcn-atlas-1 heatmap document. Deterministic by
/// construction: runs are index-ordered, every field is config or a
/// deterministic result, and nothing host-timed is emitted -- byte-identical
/// for any --jobs, so CI uses cmp (not a timing-stripping diff).
inline std::string atlas_to_json(const AtlasAxes& axes,
                                 const runner::SweepResult& res,
                                 std::size_t flows, std::uint64_t seed,
                                 double interval_us) {
  obs::JsonWriter w(2);
  w.begin_object();
  w.key("schema").value("tcn-atlas-1");
  w.key("name").value("atlas");
  w.key("flows").value(flows);
  w.key("seed").value(seed);
  w.key("sample_interval_us").value(interval_us);
  w.key("axes").begin_object();
  w.key("sched").begin_array();
  for (const auto& [name, kind] : axes.scheds) w.value(name);
  w.end_array();
  w.key("scheme").begin_array();
  for (const auto& s : axes.schemes) w.value(s.name);
  w.end_array();
  w.key("threshold_us").begin_array();
  for (const double t : axes.thresholds_us) w.value(t);
  w.end_array();
  w.key("load").begin_array();
  for (const double l : axes.loads) w.value(l);
  w.end_array();
  w.key("buffer_bytes").begin_array();
  for (const std::uint64_t b : axes.buffer_bytes) w.value(b);
  w.end_array();
  w.end_object();
  w.key("cells").begin_array();
  const std::size_t nb = axes.buffer_bytes.size();
  const std::size_t nl = axes.loads.size();
  const std::size_t nt = axes.thresholds_us.size();
  const std::size_t nsch = axes.schemes.size();
  for (const runner::RunRecord& r : res.runs) {
    std::size_t rest = r.job.index;
    const std::size_t bi = rest % nb;
    rest /= nb;
    const std::size_t li = rest % nl;
    rest /= nl;
    const std::size_t ti = rest % nt;
    rest /= nt;
    const std::size_t schi = rest % nsch;
    const std::size_t si = rest / nsch;
    w.begin_object();
    w.key("index").value(r.job.index);
    w.key("sched").value(axes.scheds[si].first);
    w.key("scheme").value(axes.schemes[schi].name);
    w.key("threshold_us").value(axes.thresholds_us[ti]);
    w.key("load").value(axes.loads[li]);
    w.key("buffer_bytes").value(axes.buffer_bytes[bi]);
    w.key("ok").value(r.ok);
    w.key("error_kind").value(runner::error_kind_name(r.error_kind));
    w.key("fct").begin_object();
    w.key("avg_all_us").value(r.report.summary.avg_all_us);
    w.key("avg_small_us").value(r.report.summary.avg_small_us);
    w.key("p99_small_us").value(r.report.summary.p99_small_us);
    w.key("avg_large_us").value(r.report.summary.avg_large_us);
    w.key("timeouts").value(r.report.summary.timeouts);
    w.end_object();
    w.key("counters").begin_object();
    w.key("switch_drops").value(r.report.switch_drops);
    w.key("switch_marks").value(r.report.switch_marks);
    w.end_object();
    w.key("stability").begin_object();
    w.key("channel").value(r.report.stability_channel);
    w.key("ticks").value(r.report.series_ticks);
    obs::write_stability_object(w, r.report.stability);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

/// Text heatmap on stdout: one table per (sched, scheme, buffer) slice,
/// thresholds down, loads across, each cell "<regime letter><osc score>".
inline void print_atlas_summary(const AtlasAxes& axes,
                                const runner::SweepResult& res) {
  const std::size_t nb = axes.buffer_bytes.size();
  const std::size_t nl = axes.loads.size();
  const std::size_t nt = axes.thresholds_us.size();
  auto rec = [&](std::size_t si, std::size_t schi, std::size_t ti,
                 std::size_t li, std::size_t bi) -> const runner::RunRecord& {
    return res.runs[(((si * axes.schemes.size() + schi) * nt + ti) * nl + li) *
                        nb +
                    bi];
  };
  std::printf("=== stability atlas (S stable, O oscillating, X saturated, "
              "! failed; number = oscillation score) ===\n");
  for (std::size_t si = 0; si < axes.scheds.size(); ++si) {
    for (std::size_t schi = 0; schi < axes.schemes.size(); ++schi) {
      for (std::size_t bi = 0; bi < nb; ++bi) {
        std::printf("\n-- %s / %s / buffer %llu --\n",
                    axes.schemes[schi].name.c_str(),
                    axes.scheds[si].first.c_str(),
                    static_cast<unsigned long long>(axes.buffer_bytes[bi]));
        std::printf("%10s", "T(us)\\load");
        for (const double l : axes.loads) std::printf("  %8.2f", l);
        std::printf("\n");
        for (std::size_t ti = 0; ti < nt; ++ti) {
          std::printf("%10g", axes.thresholds_us[ti]);
          for (std::size_t li = 0; li < nl; ++li) {
            const runner::RunRecord& r = rec(si, schi, ti, li, bi);
            if (!r.ok) {
              std::printf("  %8s", "!");
              continue;
            }
            char mark = 'S';
            if (r.report.stability.regime == obs::Regime::kOscillating) {
              mark = 'O';
            } else if (r.report.stability.regime == obs::Regime::kSaturated) {
              mark = 'X';
            }
            std::printf("  %c %6.3f", mark,
                        r.report.stability.oscillation_score);
          }
          std::printf("\n");
        }
      }
    }
  }
  std::printf("\n");
}

}  // namespace tcn::bench
