// Figure 6: inter-service traffic isolation, DWRR (4 equal-quantum queues),
// DCTCP, web search workload, loads 10-90%.
//
// Paper shape: all schemes tie on overall and large-flow FCT; TCN and MQ-ECN
// cut small-flow avg FCT by up to ~61% and p99 by up to ~73% vs per-queue
// RED with the standard threshold; CoDel's slow reaction costs it the p99.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tcn;
  const auto args = bench::Args::parse(argc, argv, {});
  auto cfg = bench::testbed_base();
  cfg.sched.kind = core::SchedKind::kDwrr;
  cfg.num_services = 4;
  bench::run_fct_sweep(
      "Fig. 6: service isolation, DWRR x4, DCTCP, web search", cfg,
      {{"TCN", core::Scheme::kTcn},
       {"CoDel", core::Scheme::kCodel},
       {"MQ-ECN", core::Scheme::kMqEcn},
       {"RED-queue", core::Scheme::kRedPerQueue}},
      args);
  return 0;
}
