// Figure 6: inter-service traffic isolation, DWRR (4 equal-quantum queues),
// DCTCP, web search workload, loads 10-90%.
//
// Paper shape: all schemes tie on overall and large-flow FCT; TCN and MQ-ECN
// cut small-flow avg FCT by up to ~61% and p99 by up to ~73% vs per-queue
// RED with the standard threshold; CoDel's slow reaction costs it the p99.
#include "figures.hpp"

int main(int argc, char** argv) {
  const auto def = tcn::bench::fig06();
  const auto args = tcn::bench::Args::parse(argc, argv, def.defaults);
  return tcn::bench::run_figure(def, args);
}
