// Ablation A6: probabilistic TCN with DCQCN (Sec. 4.3: "some ECN-based
// transports, like DCQCN, do require RED-like probabilistic marking to
// alleviate the unfairness problem"; comparing TCN-empowered DCQCN is the
// paper's stated future work).
//
// Four DCQCN flows with asymmetric starting rates share a 10G bottleneck.
// With single-threshold (on/off) marking, marking episodes hit all flows
// identically regardless of their rate: every flow receives the same capped
// CNP stream, cuts by the same factor, and fast recovery restores each flow
// to its *own* previous rate -- the asymmetry freezes. Probabilistic marking
// (RED-prob on queue length, or TCN-prob on sojourn time) marks each flow
// proportionally to its packet share, so fast flows are cut more often and
// the mix equalizes. We report per-flow goodput and Jain's fairness index
// over the steady window.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "aqm/red_prob.hpp"
#include "aqm/tcn.hpp"
#include "bench_util.hpp"
#include "net/fifo_scheduler.hpp"
#include "net/switch.hpp"
#include "stats/percentile.hpp"
#include "stats/timeseries.hpp"
#include "topo/network.hpp"
#include "transport/dcqcn.hpp"

using namespace tcn;

namespace {

constexpr int kFlows = 4;
constexpr sim::Time kEnd = 400 * sim::kMillisecond;
constexpr sim::Time kMeasureFrom = 200 * sim::kMillisecond;

struct Result {
  std::vector<double> gbps;
  double jain;
  double queue_mean_kb;
  double queue_p95_kb;
  double rate_cov;  ///< coefficient of variation of flow 0's rate over time
};

Result run(const std::function<std::unique_ptr<net::Marker>()>& marker,
           std::uint64_t /*seed*/) {
  sim::Simulator simulator;

  topo::StarConfig star;
  star.num_hosts = kFlows + 1;
  star.link_rate_bps = 10'000'000'000ULL;
  star.num_queues = 1;
  star.buffer_bytes = 2'000'000;  // lossless-fabric stand-in
  star.host_delay =
      topo::star_host_delay_for_rtt(85 * sim::kMicrosecond, star.link_prop);
  auto network = topo::build_star(
      simulator, star, [] { return std::make_unique<net::FifoScheduler>(); },
      [&](net::Scheduler&, const net::PortConfig&) { return marker(); });

  transport::DcqcnConfig cfg;
  std::vector<std::unique_ptr<transport::DcqcnReceiver>> rx;
  std::vector<std::unique_ptr<transport::DcqcnSender>> tx;
  std::vector<std::uint64_t> at_measure_start(kFlows, 0);

  // Asymmetric starting rates (a previously-throttled mix): whether the
  // mix equalizes is exactly what the marking profile decides.
  const double initial[kFlows] = {8e9, 1e9, 0.5e9, 0.5e9};
  for (int i = 0; i < kFlows; ++i) {
    const auto port = static_cast<std::uint16_t>(100 + i);
    transport::DcqcnConfig fc = cfg;
    fc.initial_rate_bps = initial[i];
    rx.push_back(std::make_unique<transport::DcqcnReceiver>(
        network.host(0), port, cfg.cnp_interval));
    tx.push_back(std::make_unique<transport::DcqcnSender>(
        network.host(1 + i), 0, static_cast<std::uint16_t>(500 + i), port,
        static_cast<std::uint64_t>(i + 1), fc, 0));
    simulator.schedule_at(1, [&, i] { tx[i]->start(0); });
  }
  simulator.schedule_at(kMeasureFrom, [&] {
    for (int i = 0; i < kFlows; ++i) {
      at_measure_start[i] = rx[i]->bytes_received();
    }
  });
  // Stability instruments: bottleneck queue and flow 0's paced rate.
  std::vector<double> queue_kb;
  std::vector<double> rate0;
  stats::PeriodicSampler sampler(simulator, 100 * sim::kMicrosecond, [&] {
    if (simulator.now() >= kMeasureFrom) {
      queue_kb.push_back(
          static_cast<double>(network.switch_at(0).port(0).total_bytes()) /
          1e3);
      rate0.push_back(tx[0]->rate_bps());
    }
    return 0.0;
  });
  sampler.start();
  simulator.run(kEnd);
  for (auto& t : tx) t->stop();

  Result r;
  double sum = 0, sumsq = 0;
  const double window_s = sim::to_seconds(kEnd - kMeasureFrom);
  for (int i = 0; i < kFlows; ++i) {
    const double g =
        static_cast<double>(rx[i]->bytes_received() - at_measure_start[i]) *
        8.0 / window_s / 1e9;
    r.gbps.push_back(g);
    sum += g;
    sumsq += g * g;
  }
  r.jain = sum * sum / (kFlows * sumsq);
  r.queue_mean_kb = stats::mean(queue_kb);
  r.queue_p95_kb = stats::percentile(queue_kb, 95.0);
  const double rmean = stats::mean(rate0);
  double var = 0;
  for (const double v : rate0) var += (v - rmean) * (v - rmean);
  r.rate_cov = std::sqrt(var / static_cast<double>(rate0.size())) / rmean;
  return r;
}

void report(const char* name, const Result& r) {
  std::printf("%-28s |", name);
  for (const double g : r.gbps) std::printf(" %5.2f", g);
  std::printf(" | %5.3f | %8.0f | %8.0f | %8.2f\n", r.jain, r.queue_mean_kb,
              r.queue_p95_kb, r.rate_cov);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, {});
  std::printf("=== Ablation: DCQCN fairness vs marking profile (4 flows, 10G "
              "bottleneck, asymmetric starting rates) ===\n\n");
  std::printf("%-28s | %23s | %5s | %8s | %8s | %8s\n", "marking scheme",
              "per-flow goodput (Gbps)", "Jain", "q mean", "q p95 KB",
              "rate CoV");

  // Single-threshold TCN: T = 78us (the Sec. 4.1 standard threshold).
  report("TCN single threshold", run([] {
           return std::make_unique<aqm::TcnMarker>(78 * sim::kMicrosecond);
         }, args.seed));
  // Probabilistic TCN (Sec. 4.3): Tmin 4us, Tmax 160us, Pmax 1%.
  report("TCN-prob (Tmin/Tmax/Pmax)", run([&] {
           return std::make_unique<aqm::TcnProbabilisticMarker>(
               4 * sim::kMicrosecond, 160 * sim::kMicrosecond, 0.01,
               args.seed);
         }, args.seed));
  // DCQCN's native CP: RED-prob on queue length (Kmin 5KB, Kmax 200KB, 1%).
  report("RED-prob (DCQCN CP)", run([&] {
           return std::make_unique<aqm::RedProbabilisticMarker>(
               5'000, 200'000, 0.01, args.seed);
         }, args.seed));

  std::printf("\nExpected shape: TCN-prob and RED-prob columns are nearly "
              "identical -- the sojourn-time profile is a\ndrop-in analogue "
              "of DCQCN's native RED profile (Sec. 4.3: TCN \"can be easily "
              "extended to perform\nsuch probabilistic marking\"), with no "
              "queue-length threshold to retune per scheduler. All three\n"
              "keep DCQCN fair; the probabilistic profiles trade a deeper "
              "standing queue (Kmax) for gentler,\nde-synchronized cuts.\n");
  return 0;
}
