// Figure 8: traffic prioritization, SP (1 queue) / DWRR (4 queues), DCTCP,
// web search, PIAS two-priority tagging (first 100KB -> high priority).
//
// Paper shape: small flows finish far faster than in Fig. 6 (they ride the
// strict queue); TCN still beats per-queue standard RED by up to 82.8% avg /
// 95.3% p99 for small flows because RED's buffer pressure drops high-priority
// packets in the shared buffer, and beats CoDel's p99 by up to 84%.
#include "figures.hpp"

int main(int argc, char** argv) {
  const auto def = tcn::bench::fig08();
  const auto args = tcn::bench::Args::parse(argc, argv, def.defaults);
  return tcn::bench::run_figure(def, args);
}
