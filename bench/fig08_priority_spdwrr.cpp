// Figure 8: traffic prioritization, SP (1 queue) / DWRR (4 queues), DCTCP,
// web search, PIAS two-priority tagging (first 100KB -> high priority).
//
// Paper shape: small flows finish far faster than in Fig. 6 (they ride the
// strict queue); TCN still beats per-queue standard RED by up to 82.8% avg /
// 95.3% p99 for small flows because RED's buffer pressure drops high-priority
// packets in the shared buffer, and beats CoDel's p99 by up to 84%.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tcn;
  const auto args = bench::Args::parse(argc, argv, {});
  auto cfg = bench::testbed_base();
  cfg.sched.kind = core::SchedKind::kSpDwrr;
  cfg.sched.num_sp = 1;
  cfg.pias = true;
  cfg.num_services = 4;
  bench::run_fct_sweep(
      "Fig. 8: prioritization, SP1/DWRR4 + PIAS, DCTCP, web search (no "
      "MQ-ECN: SP unsupported)",
      cfg,
      {{"TCN", core::Scheme::kTcn},
       {"CoDel", core::Scheme::kCodel},
       {"RED-queue", core::Scheme::kRedPerQueue}},
      args);
  return 0;
}
