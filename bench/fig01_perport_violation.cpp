// Figure 1: per-port RED/ECN violates DWRR fairness.
//
// Testbed reproduction: 3 servers on a 1GbE switch, DWRR with 2 equal-quantum
// queues, DCTCP, per-port ECN/RED threshold 30KB. Service 1 keeps 1 long
// flow; service 2 ramps from 2 to 16 flows. Under per-port marking, service
// 1's packets get marked for service 2's buffer, so service 2's aggregate
// goodput climbs with its flow count (paper: 670Mbps @8 flows, 782Mbps @16)
// even though DWRR says 50/50. A TCN column is printed for contrast.
#include <cstdio>
#include <memory>
#include <optional>

#include "bench_util.hpp"
#include "stats/timeseries.hpp"
#include "topo/network.hpp"
#include "transport/flow.hpp"

using namespace tcn;

namespace {

struct Result {
  double s1_mbps;
  double s2_mbps;
};

Result run(core::Scheme scheme, int s2_flows, std::uint64_t seed) {
  sim::Simulator simulator;
  core::SchemeParams params;
  params.rtt_lambda = 250 * sim::kMicrosecond;
  params.red_threshold_bytes = 30'000;  // DCTCP-paper recommendation
  params.seed = seed;
  core::SchedConfig sched;
  sched.kind = core::SchedKind::kDwrr;
  sched.num_queues = 2;

  topo::StarConfig star;
  star.num_hosts = 3;
  star.num_queues = 2;
  star.buffer_bytes = 192'000;
  star.host_delay =
      topo::star_host_delay_for_rtt(250 * sim::kMicrosecond, star.link_prop);
  auto network =
      topo::build_star(simulator, star, core::make_scheduler_factory(sched),
                       core::make_marker_factory(scheme, params));

  transport::FlowManager fm;
  std::vector<std::unique_ptr<stats::GoodputMeter>> meters;
  meters.push_back(std::make_unique<stats::GoodputMeter>(10 * sim::kMillisecond));
  meters.push_back(std::make_unique<stats::GoodputMeter>(10 * sim::kMillisecond));

  auto start = [&](std::size_t host, std::uint8_t q, int n) {
    for (int i = 0; i < n; ++i) {
      transport::FlowSpec spec;
      spec.size = 2'000'000'000;  // long-lived
      spec.service = q;
      spec.data_dscp = transport::constant_dscp(q);
      spec.ack_dscp = q;
      auto* meter = meters[q].get();
      spec.on_deliver = [meter](std::uint32_t b, sim::Time t) {
        meter->record(b, t);
      };
      fm.start_flow(network.host(host), network.host(0), spec);
    }
  };
  start(1, 0, 1);         // service 1: always one flow
  start(2, 1, s2_flows);  // service 2: the aggressor

  simulator.run(600 * sim::kMillisecond);
  const auto from = 100 * sim::kMillisecond;
  const auto to = 600 * sim::kMillisecond;
  return {meters[0]->average_bps(from, to) / 1e6,
          meters[1]->average_bps(from, to) / 1e6};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, {});
  std::printf("=== Fig. 1: per-port RED violates DWRR (1G, 2 queues, "
              "K=30KB, DCTCP) ===\n\n");
  std::printf("%9s | %21s | %21s\n", "", "per-port RED (paper)", "TCN (contrast)");
  std::printf("%9s | %10s %10s | %10s %10s\n", "s2 flows", "s1 Mbps",
              "s2 Mbps", "s1 Mbps", "s2 Mbps");
  for (const int n : {1, 2, 4, 8, 16}) {
    const auto red = run(core::Scheme::kRedPerPort, n, args.seed);
    const auto tcn = run(core::Scheme::kTcn, n, args.seed);
    std::printf("%9d | %10.0f %10.0f | %10.0f %10.0f\n", n, red.s1_mbps,
                red.s2_mbps, tcn.s1_mbps, tcn.s2_mbps);
  }
  std::printf("\nExpected shape: under per-port RED, s2 goodput grows with "
              "its flow count (fairness violated);\nunder TCN both services "
              "hold ~half the link regardless of flow count.\n");
  return 0;
}
