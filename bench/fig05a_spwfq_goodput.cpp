// Figure 5a: TCN strictly preserves SP/WFQ.
//
// 1G star, SP/WFQ with 3 queues: queue 0 strict-high, queues 1 and 2 equal
// WFQ weights. Timeline: t=0 a 500Mbps-limited flow into queue 0; t=0.5s a
// TCP flow into queue 1; t=1.0s four TCP flows into queue 2. Per the policy,
// steady goodputs must be ~500 / ~250 / ~250 Mbps regardless of flow counts.
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "stats/timeseries.hpp"
#include "topo/network.hpp"
#include "transport/flow.hpp"

using namespace tcn;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, {});
  (void)args;
  sim::Simulator simulator;
  core::SchemeParams params;
  params.rtt_lambda = 256 * sim::kMicrosecond;
  core::SchedConfig sched;
  sched.kind = core::SchedKind::kSpWfq;
  sched.num_queues = 3;
  sched.num_sp = 1;

  topo::StarConfig star;
  star.num_hosts = 4;
  star.num_queues = 3;
  star.buffer_bytes = 96'000;
  star.host_delay =
      topo::star_host_delay_for_rtt(250 * sim::kMicrosecond, star.link_prop);
  star.host_rates = {0, 500'000'000, 0, 0};  // sender 1 is the 500Mbps source
  auto network =
      topo::build_star(simulator, star, core::make_scheduler_factory(sched),
                       core::make_marker_factory(core::Scheme::kTcn, params));

  transport::FlowManager fm;
  std::vector<std::unique_ptr<stats::GoodputMeter>> meters;
  for (int q = 0; q < 3; ++q) {
    meters.push_back(
        std::make_unique<stats::GoodputMeter>(100 * sim::kMillisecond));
  }
  auto start = [&](std::size_t host, std::uint8_t q, int n) {
    for (int i = 0; i < n; ++i) {
      transport::FlowSpec spec;
      spec.size = 2'000'000'000ULL;
      spec.service = q;
      spec.data_dscp = transport::constant_dscp(q);
      spec.ack_dscp = q;
      spec.tcp.max_cwnd_bytes = 64'000;  // socket-buffer cap (see quickstart)
      auto* meter = meters[q].get();
      spec.on_deliver = [meter](std::uint32_t b, sim::Time t) {
        meter->record(b, t);
      };
      fm.start_flow(network.host(host), network.host(0), spec);
    }
  };
  start(1, 0, 1);
  simulator.schedule_at(500 * sim::kMillisecond, [&] { start(2, 1, 1); });
  simulator.schedule_at(1000 * sim::kMillisecond, [&] { start(3, 2, 4); });
  simulator.run(2 * sim::kSecond);

  std::printf("=== Fig. 5a: per-queue goodput vs time under TCN with SP/WFQ "
              "===\n(queue 0 strict-high fed at 500Mbps; queues 1,2 equal "
              "WFQ weights)\n\n");
  std::printf("%8s | %8s %8s %8s\n", "time (s)", "q0 Mbps", "q1 Mbps",
              "q2 Mbps");
  for (int bin = 0; bin < 20; ++bin) {
    std::printf("%8.1f |", (bin + 1) * 0.1);
    for (int q = 0; q < 3; ++q) {
      std::printf(" %8.0f", meters[q]->bin_bps(bin) / 1e6);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: q0 holds ~470Mbps throughout; q1 takes the "
              "remainder alone, then splits it\nevenly with q2 when q2's 4 "
              "flows start (~235Mbps each) -- policy preserved.\n");
  return 0;
}
