// Figure 5b: RTT distribution of queue 2's traffic under four schemes.
//
// Same static SP/WFQ scenario as Fig. 5a in its final phase (all queues
// busy). Ping probes tagged into the lowest-priority WFQ queue measure
// base RTT + queueing. Paper shape: TCN ~ ideal RED ~ CoDel (~415us avg),
// all far below per-queue RED with the standard 32KB threshold (~1084us avg,
// 1400us p99).
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "topo/network.hpp"
#include "transport/flow.hpp"
#include "transport/ping.hpp"

using namespace tcn;

namespace {

struct Result {
  double avg_us;
  double p99_us;
  std::size_t samples;
};

Result run(core::Scheme scheme, std::uint64_t seed) {
  // The figure's series comes from the observability layer: PingApp
  // publishes every RTT into the "ping.rtt_ns" log histogram of the run's
  // registry (installed before anything is built so handles resolve).
  obs::MetricsRegistry registry;
  obs::MetricsRegistry::Scope metrics_scope(registry);

  sim::Simulator simulator;
  core::SchemeParams params;
  params.rtt_lambda = 256 * sim::kMicrosecond;
  params.red_threshold_bytes = 32'000;
  // Oracle thresholds (Eq. 2 with known capacities): queue 0 at 500Mbps ->
  // 16KB; queues 1,2 at 250Mbps -> 8KB (paper quotes the 8KB).
  params.oracle_thresholds = {16'000, 8'000, 8'000};
  params.codel_target = static_cast<sim::Time>(51.2 * sim::kMicrosecond);
  params.codel_interval = 1024 * sim::kMicrosecond;
  params.seed = seed;

  core::SchedConfig sched;
  sched.kind = core::SchedKind::kSpWfq;
  sched.num_queues = 3;
  sched.num_sp = 1;

  topo::StarConfig star;
  star.num_hosts = 4;
  star.num_queues = 3;
  star.buffer_bytes = 96'000;
  star.host_delay =
      topo::star_host_delay_for_rtt(250 * sim::kMicrosecond, star.link_prop);
  star.host_rates = {0, 500'000'000, 0, 0};
  auto network =
      topo::build_star(simulator, star, core::make_scheduler_factory(sched),
                       core::make_marker_factory(scheme, params));

  transport::FlowManager fm;
  auto start = [&](std::size_t host, std::uint8_t q, int n) {
    for (int i = 0; i < n; ++i) {
      transport::FlowSpec spec;
      spec.size = 2'000'000'000ULL;
      spec.service = q;
      spec.data_dscp = transport::constant_dscp(q);
      spec.ack_dscp = q;
      spec.tcp.max_cwnd_bytes = 64'000;
      fm.start_flow(network.host(host), network.host(0), spec);
    }
  };
  start(1, 0, 1);  // strict queue, 500Mbps source
  start(2, 1, 1);  // WFQ queue 1
  start(3, 2, 4);  // WFQ queue 2: the measured one

  // Ping host 0 -> host 3 and back; probes ride queue 2 on the way out.
  transport::PingResponder responder(network.host(3), 99);
  transport::PingApp ping(network.host(0), 3, 99, /*dscp=*/2,
                          2 * sim::kMillisecond);
  // Let TCP converge for 200ms before measuring.
  simulator.schedule_at(200 * sim::kMillisecond, [&] { ping.start(); });
  simulator.run(2 * sim::kSecond);

  const auto& h = registry.histogram("ping.rtt_ns");
  const double us = static_cast<double>(sim::kMicrosecond);
  return {h.mean() / us, h.quantile(0.99) / us,
          static_cast<std::size_t>(h.count())};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, {});
  std::printf("=== Fig. 5b: RTT of queue-2 traffic, SP/WFQ static scenario "
              "(base RTT ~250us) ===\n\n");
  std::printf("%-14s | %10s | %10s | %8s\n", "scheme", "avg (us)", "p99 (us)",
              "samples");
  struct Row {
    const char* name;
    core::Scheme scheme;
  };
  for (const auto& row : {Row{"TCN", core::Scheme::kTcn},
                          Row{"Ideal-oracle", core::Scheme::kIdealOracle},
                          Row{"CoDel", core::Scheme::kCodel},
                          Row{"RED-queue", core::Scheme::kRedPerQueue}}) {
    const auto r = run(row.scheme, args.seed);
    std::printf("%-14s | %10.0f | %10.0f | %8zu\n", row.name, r.avg_us,
                r.p99_us, r.samples);
  }
  std::printf("\nExpected shape: TCN ~ ideal ~ CoDel, all roughly 2-3x lower "
              "than per-queue RED with the\nstandard threshold (paper: 415us "
              "vs 1084us average).\n");
  return 0;
}
