// Ablation A2: the full dq_thresh sweep behind Remark 3 -- no single
// measurement window works. Small windows oscillate and bias the estimate;
// large windows converge too slowly for datacenter dynamics.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "rate_trace.hpp"

using namespace tcn;

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, {});
  std::printf("=== Ablation: Algorithm-1 dq_thresh sweep (Fig. 2 scenario, "
              "true rate 5Gbps) ===\n\n");
  std::printf("%12s | %11s | %12s | %18s | %10s\n", "dq_thresh",
              "samples/2ms", "convergence", "sample range Gbps", "final Gbps");
  for (const std::uint64_t thresh :
       {5'000ULL, 10'000ULL, 20'000ULL, 40'000ULL, 80'000ULL, 160'000ULL}) {
    const auto t = bench::run_rate_trace(thresh, args.seed);
    const auto conv = t.convergence();
    const std::string conv_s =
        conv < 0 ? "never" : std::to_string(conv / sim::kMicrosecond) + "us";
    std::printf("%9lluKB | %11zu | %12s | %8.2f..%-8.2f | %10.2f\n",
                static_cast<unsigned long long>(thresh / 1000),
                t.samples_in_2ms, conv_s.c_str(), t.sample_min() / 1e9,
                t.sample_max() / 1e9, t.final_estimate() / 1e9);
  }
  std::printf("\nExpected shape: no value is both fast-converging and "
              "accurate -- the tradeoff motivating TCN.\n");
  return 0;
}
