// Central definitions of the dynamic-workload figures (6-13): one
// FigureDef per figure carrying its base experiment, scheme list, title and
// per-figure CLI defaults. The fig* binaries and the suite runner
// (bench/suite.cpp) share these so a figure's configuration exists exactly
// once.
#pragma once

#include <vector>

#include "bench_util.hpp"

namespace tcn::bench {

struct FigureDef {
  const char* name;   ///< short id, used for Job::group and JSON names
  const char* title;  ///< table heading
  core::FctExperiment base;
  std::vector<SchemeRun> schemes;
  Args defaults;  ///< per-figure flows/loads defaults
};

/// Figure 6: inter-service traffic isolation, DWRR (4 equal-quantum
/// queues), DCTCP, web search workload, loads 10-90%.
inline FigureDef fig06() {
  FigureDef def;
  def.name = "fig06";
  def.title = "Fig. 6: service isolation, DWRR x4, DCTCP, web search";
  def.base = testbed_base();
  def.base.sched.kind = core::SchedKind::kDwrr;
  def.base.num_services = 4;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"MQ-ECN", core::Scheme::kMqEcn},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  return def;
}

/// Figure 7: isolation under WFQ. MQ-ECN is excluded: it does not support
/// WFQ (no rounds to measure) -- the gap TCN closes.
inline FigureDef fig07() {
  FigureDef def;
  def.name = "fig07";
  def.title =
      "Fig. 7: service isolation, WFQ x4, DCTCP, web search (no MQ-ECN: "
      "unsupported scheduler)";
  def.base = testbed_base();
  def.base.sched.kind = core::SchedKind::kWfq;
  def.base.num_services = 4;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  return def;
}

/// Figure 8: traffic prioritization, SP (1) / DWRR (4), DCTCP, PIAS
/// two-priority tagging (first 100KB -> high priority).
inline FigureDef fig08() {
  FigureDef def;
  def.name = "fig08";
  def.title =
      "Fig. 8: prioritization, SP1/DWRR4 + PIAS, DCTCP, web search (no "
      "MQ-ECN: SP unsupported)";
  def.base = testbed_base();
  def.base.sched.kind = core::SchedKind::kSpDwrr;
  def.base.sched.num_sp = 1;
  def.base.pias = true;
  def.base.num_services = 4;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  return def;
}

/// Figure 9: prioritization under SP/WFQ.
inline FigureDef fig09() {
  FigureDef def;
  def.name = "fig09";
  def.title = "Fig. 9: prioritization, SP1/WFQ4 + PIAS, DCTCP, web search";
  def.base = testbed_base();
  def.base.sched.kind = core::SchedKind::kSpWfq;
  def.base.sched.num_sp = 1;
  def.base.pias = true;
  def.base.num_services = 4;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  return def;
}

namespace detail {
inline Args leafspine_defaults() {
  Args a;
  a.flows = 2000;  // ~0.75s of arrivals; raise for tighter tails
  a.loads = {0.6, 0.9};
  return a;
}
}  // namespace detail

/// Figure 10: large-scale leaf-spine (144 hosts, 12x12, 10G), SP (1) /
/// DWRR (7), DCTCP, PIAS; 7 services cycling the four Fig. 4 workloads.
inline FigureDef fig10() {
  FigureDef def;
  def.name = "fig10";
  def.title =
      "Fig. 10: leaf-spine, SP1/DWRR7 + PIAS, DCTCP, 4 workloads x 7 "
      "services";
  def.base = leafspine_base();
  def.base.sched.kind = core::SchedKind::kSpDwrr;
  def.base.sched.num_sp = 1;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  def.defaults = detail::leafspine_defaults();
  return def;
}

/// Figure 11: leaf-spine under SP/WFQ.
inline FigureDef fig11() {
  FigureDef def;
  def.name = "fig11";
  def.title =
      "Fig. 11: leaf-spine, SP1/WFQ7 + PIAS, DCTCP, 4 workloads x 7 "
      "services";
  def.base = leafspine_base();
  def.base.sched.kind = core::SchedKind::kSpWfq;
  def.base.sched.num_sp = 1;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  def.defaults = detail::leafspine_defaults();
  return def;
}

/// Figure 12: transport robustness -- Fig. 10's setup with ECN* (plain ECN
/// TCP, halve on echo) instead of DCTCP; K = 84 packets, T = 101us.
inline FigureDef fig12() {
  FigureDef def;
  def.name = "fig12";
  def.title = "Fig. 12: leaf-spine, SP1/DWRR7 + PIAS, ECN* transport";
  def.base = leafspine_base();
  def.base.sched.kind = core::SchedKind::kSpDwrr;
  def.base.sched.num_sp = 1;
  def.base.tcp.cc = transport::CongestionControl::kEcnStar;
  def.base.params.rtt_lambda = 101 * sim::kMicrosecond;
  def.base.params.red_threshold_bytes = 84 * 1'500;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  def.defaults = detail::leafspine_defaults();
  return def;
}

/// Figure 13: queue-count robustness -- Fig. 12's setup with 32 switch
/// queues (1 strict + 31 DWRR), flows hashed uniformly onto the 31 service
/// queues.
inline FigureDef fig13() {
  FigureDef def;
  def.name = "fig13";
  def.title = "Fig. 13: leaf-spine, SP1/DWRR31 + PIAS, ECN*, 32 queues";
  def.base = leafspine_base();
  def.base.sched.kind = core::SchedKind::kSpDwrr;
  def.base.sched.num_sp = 1;
  def.base.num_service_queues = 31;
  def.base.tcp.cc = transport::CongestionControl::kEcnStar;
  def.base.params.rtt_lambda = 101 * sim::kMicrosecond;
  def.base.params.red_threshold_bytes = 84 * 1'500;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  def.defaults = detail::leafspine_defaults();
  return def;
}

/// Every FCT-sweep figure, in paper order -- the suite binary's work list.
inline std::vector<FigureDef> figure_suite() {
  return {fig06(), fig07(), fig08(), fig09(),
          fig10(), fig11(), fig12(), fig13()};
}

/// Run one figure standalone (the fig* binaries' main).
inline int run_figure(const FigureDef& def, const Args& args) {
  return run_fct_sweep(def.name, def.title, def.base, def.schemes, args);
}

}  // namespace tcn::bench
