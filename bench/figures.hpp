// Central definitions of the dynamic-workload figures (6-13): one
// FigureDef per figure carrying its base experiment, scheme list, title and
// per-figure CLI defaults. The fig* binaries and the suite runner
// (bench/suite.cpp) share these so a figure's configuration exists exactly
// once.
#pragma once

#include <algorithm>
#include <deque>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace tcn::bench {

struct FigureDef {
  const char* name;   ///< short id, used for Job::group and JSON names
  const char* title;  ///< table heading
  core::FctExperiment base;
  std::vector<SchemeRun> schemes;
  Args defaults;  ///< per-figure flows/loads defaults
};

/// Figure 6: inter-service traffic isolation, DWRR (4 equal-quantum
/// queues), DCTCP, web search workload, loads 10-90%.
inline FigureDef fig06() {
  FigureDef def;
  def.name = "fig06";
  def.title = "Fig. 6: service isolation, DWRR x4, DCTCP, web search";
  def.base = testbed_base();
  def.base.sched.kind = core::SchedKind::kDwrr;
  def.base.num_services = 4;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"MQ-ECN", core::Scheme::kMqEcn},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  return def;
}

/// Figure 7: isolation under WFQ. MQ-ECN is excluded: it does not support
/// WFQ (no rounds to measure) -- the gap TCN closes.
inline FigureDef fig07() {
  FigureDef def;
  def.name = "fig07";
  def.title =
      "Fig. 7: service isolation, WFQ x4, DCTCP, web search (no MQ-ECN: "
      "unsupported scheduler)";
  def.base = testbed_base();
  def.base.sched.kind = core::SchedKind::kWfq;
  def.base.num_services = 4;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  return def;
}

/// Figure 8: traffic prioritization, SP (1) / DWRR (4), DCTCP, PIAS
/// two-priority tagging (first 100KB -> high priority).
inline FigureDef fig08() {
  FigureDef def;
  def.name = "fig08";
  def.title =
      "Fig. 8: prioritization, SP1/DWRR4 + PIAS, DCTCP, web search (no "
      "MQ-ECN: SP unsupported)";
  def.base = testbed_base();
  def.base.sched.kind = core::SchedKind::kSpDwrr;
  def.base.sched.num_sp = 1;
  def.base.pias = true;
  def.base.num_services = 4;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  return def;
}

/// Figure 9: prioritization under SP/WFQ.
inline FigureDef fig09() {
  FigureDef def;
  def.name = "fig09";
  def.title = "Fig. 9: prioritization, SP1/WFQ4 + PIAS, DCTCP, web search";
  def.base = testbed_base();
  def.base.sched.kind = core::SchedKind::kSpWfq;
  def.base.sched.num_sp = 1;
  def.base.pias = true;
  def.base.num_services = 4;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  return def;
}

namespace detail {
/// Re-run a testbed figure under an approximate rank scheduler (SP-PIFO or
/// AIFO). MQ-ECN is dropped from the scheme list when present: rank
/// schedulers have no rounds to measure. PIAS figures keep the priority
/// rank program the CLI would select (rank = queue index, queue 0 strict).
inline FigureDef rank_variant(FigureDef def, const char* suffix,
                              const char* sched_label,
                              core::SchedKind kind) {
  // Deques: push_back never moves earlier strings, so the c_str() pointers
  // handed to FigureDef stay valid for the life of the program.
  static std::deque<std::string> names;
  names.push_back(std::string(def.name) + "-" + suffix);
  def.name = names.back().c_str();
  static std::deque<std::string> titles;
  titles.push_back(std::string(def.title) + " [" + sched_label + "]");
  def.title = titles.back().c_str();
  def.base.sched.kind = kind;
  if (def.base.pias) {
    def.base.sched.rank = core::RankProgram::kPriority;
    def.base.sched.num_sp = 1;
  }
  std::erase_if(def.schemes, [](const SchemeRun& s) {
    return s.scheme == core::Scheme::kMqEcn;
  });
  return def;
}
}  // namespace detail

/// Figs. 6-9 re-run over the approximate rank schedulers: the paper's
/// scheduler-agnosticism claim extended to SP-PIFO and AIFO columns.
inline FigureDef fig06_sp_pifo() {
  return detail::rank_variant(fig06(), "sp-pifo", "SP-PIFO x8 levels",
                              core::SchedKind::kSpPifo);
}
inline FigureDef fig06_aifo() {
  return detail::rank_variant(fig06(), "aifo", "AIFO W=128 k=0.1",
                              core::SchedKind::kAifo);
}
inline FigureDef fig07_sp_pifo() {
  return detail::rank_variant(fig07(), "sp-pifo", "SP-PIFO x8 levels",
                              core::SchedKind::kSpPifo);
}
inline FigureDef fig07_aifo() {
  return detail::rank_variant(fig07(), "aifo", "AIFO W=128 k=0.1",
                              core::SchedKind::kAifo);
}
inline FigureDef fig08_sp_pifo() {
  return detail::rank_variant(fig08(), "sp-pifo", "SP-PIFO + PIAS ranks",
                              core::SchedKind::kSpPifo);
}
inline FigureDef fig08_aifo() {
  return detail::rank_variant(fig08(), "aifo", "AIFO + PIAS ranks",
                              core::SchedKind::kAifo);
}
inline FigureDef fig09_sp_pifo() {
  return detail::rank_variant(fig09(), "sp-pifo", "SP-PIFO + PIAS ranks",
                              core::SchedKind::kSpPifo);
}
inline FigureDef fig09_aifo() {
  return detail::rank_variant(fig09(), "aifo", "AIFO + PIAS ranks",
                              core::SchedKind::kAifo);
}

namespace detail {
inline Args leafspine_defaults() {
  Args a;
  a.flows = 2000;  // ~0.75s of arrivals; raise for tighter tails
  a.loads = {0.6, 0.9};
  return a;
}
}  // namespace detail

/// Figure 10: large-scale leaf-spine (144 hosts, 12x12, 10G), SP (1) /
/// DWRR (7), DCTCP, PIAS; 7 services cycling the four Fig. 4 workloads.
inline FigureDef fig10() {
  FigureDef def;
  def.name = "fig10";
  def.title =
      "Fig. 10: leaf-spine, SP1/DWRR7 + PIAS, DCTCP, 4 workloads x 7 "
      "services";
  def.base = leafspine_base();
  def.base.sched.kind = core::SchedKind::kSpDwrr;
  def.base.sched.num_sp = 1;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  def.defaults = detail::leafspine_defaults();
  return def;
}

/// Figure 11: leaf-spine under SP/WFQ.
inline FigureDef fig11() {
  FigureDef def;
  def.name = "fig11";
  def.title =
      "Fig. 11: leaf-spine, SP1/WFQ7 + PIAS, DCTCP, 4 workloads x 7 "
      "services";
  def.base = leafspine_base();
  def.base.sched.kind = core::SchedKind::kSpWfq;
  def.base.sched.num_sp = 1;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  def.defaults = detail::leafspine_defaults();
  return def;
}

/// Figure 12: transport robustness -- Fig. 10's setup with ECN* (plain ECN
/// TCP, halve on echo) instead of DCTCP; K = 84 packets, T = 101us.
inline FigureDef fig12() {
  FigureDef def;
  def.name = "fig12";
  def.title = "Fig. 12: leaf-spine, SP1/DWRR7 + PIAS, ECN* transport";
  def.base = leafspine_base();
  def.base.sched.kind = core::SchedKind::kSpDwrr;
  def.base.sched.num_sp = 1;
  def.base.tcp.cc = transport::CongestionControl::kEcnStar;
  def.base.params.rtt_lambda = 101 * sim::kMicrosecond;
  def.base.params.red_threshold_bytes = 84 * 1'500;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  def.defaults = detail::leafspine_defaults();
  return def;
}

/// Figure 13: queue-count robustness -- Fig. 12's setup with 32 switch
/// queues (1 strict + 31 DWRR), flows hashed uniformly onto the 31 service
/// queues.
inline FigureDef fig13() {
  FigureDef def;
  def.name = "fig13";
  def.title = "Fig. 13: leaf-spine, SP1/DWRR31 + PIAS, ECN*, 32 queues";
  def.base = leafspine_base();
  def.base.sched.kind = core::SchedKind::kSpDwrr;
  def.base.sched.num_sp = 1;
  def.base.num_service_queues = 31;
  def.base.tcp.cc = transport::CongestionControl::kEcnStar;
  def.base.params.rtt_lambda = 101 * sim::kMicrosecond;
  def.base.params.red_threshold_bytes = 84 * 1'500;
  def.schemes = {{"TCN", core::Scheme::kTcn},
                 {"CoDel", core::Scheme::kCodel},
                 {"RED-queue", core::Scheme::kRedPerQueue}};
  def.defaults = detail::leafspine_defaults();
  return def;
}

/// Every FCT-sweep figure, in paper order, then the approximate-rank
/// scheduler variants of the testbed figures -- the suite binary's work
/// list.
inline std::vector<FigureDef> figure_suite() {
  return {fig06(),         fig07(),       fig08(),         fig09(),
          fig10(),         fig11(),       fig12(),         fig13(),
          fig06_sp_pifo(), fig06_aifo(),  fig07_sp_pifo(), fig07_aifo(),
          fig08_sp_pifo(), fig08_aifo(),  fig09_sp_pifo(), fig09_aifo()};
}

/// Run one figure standalone (the fig* binaries' main).
inline int run_figure(const FigureDef& def, const Args& args) {
  return run_fct_sweep(def.name, def.title, def.base, def.schemes, args);
}

}  // namespace tcn::bench
