// Ablation A3: probabilistic TCN (Sec. 4.3) vs single-threshold TCN.
// RED-like marking (Tmin/Tmax/Pmax) trades a slightly longer tail for
// gentler marking -- the profile transports like DCQCN need for fairness.
#include <cstdio>

#include "bench_util.hpp"

using namespace tcn;

int main(int argc, char** argv) {
  bench::Args defaults;
  defaults.flows = 400;
  defaults.loads = {0.5, 0.8};
  const auto args = bench::Args::parse(argc, argv, defaults);

  auto base = bench::testbed_base();
  base.sched.kind = core::SchedKind::kDwrr;
  base.params.tcn_tmin = 128 * sim::kMicrosecond;
  base.params.tcn_tmax = 384 * sim::kMicrosecond;
  base.params.tcn_pmax = 1.0;

  const int rc = bench::run_fct_sweep(
      "ablation_prob_tcn",
      "Ablation: probabilistic TCN (Tmin=128us, Tmax=384us, Pmax=1) vs "
      "single-threshold TCN (T=256us)",
      base,
      {{"TCN", core::Scheme::kTcn}, {"TCN-prob", core::Scheme::kTcnProb}},
      args);
  if (rc != 0) return rc;
  std::printf("Expected shape: near-identical columns -- the probabilistic "
              "extension preserves TCN's behaviour\nwhile providing the "
              "smooth marking curve DCQCN-class transports need.\n");
  return 0;
}
