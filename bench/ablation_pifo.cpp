// Ablation A4: the "generic scheduler" claim. TCN runs unmodified under a
// PIFO programmable scheduler executing an STFQ rank program (Sivaraman et
// al.) -- a scheduler MQ-ECN cannot support and for which no static RED
// threshold is correct. Compares TCN against per-queue standard RED under
// the same PIFO program.
#include <cstdio>

#include "bench_util.hpp"

using namespace tcn;

int main(int argc, char** argv) {
  bench::Args defaults;
  defaults.flows = 400;
  defaults.loads = {0.5, 0.8};
  const auto args = bench::Args::parse(argc, argv, defaults);

  auto base = bench::testbed_base();
  base.sched.kind = core::SchedKind::kPifoStfq;

  const int rc = bench::run_fct_sweep(
      "ablation_pifo",
      "Ablation: TCN under a PIFO scheduler running an STFQ program "
      "(web search, 4 services)",
      base,
      {{"TCN", core::Scheme::kTcn},
       {"CoDel", core::Scheme::kCodel},
       {"RED-queue", core::Scheme::kRedPerQueue}},
      args);
  if (rc != 0) return rc;
  std::printf("Expected shape: same ordering as Fig. 6/7 -- TCN needs no "
              "changes for a programmable scheduler,\nwhile the static "
              "standard threshold keeps hurting small flows.\n");
  return 0;
}
