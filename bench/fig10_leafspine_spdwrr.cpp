// Figure 10: large-scale leaf-spine (144 hosts, 12 leaves x 12 spines, 10G),
// SP (1) / DWRR (7) queues, DCTCP, PIAS; 144x143 host pairs partitioned into
// 7 services cycling the four Fig. 4 workloads.
//
// Paper shape: overall/large within ~1.5% of per-queue standard RED; small
// flows up to 38% lower avg FCT and up to 94% lower p99 (timeouts are the
// tail: RED with SP/DWRR suffered 589 small-flow timeouts at 90% load, TCN
// only 46).
#include "figures.hpp"

int main(int argc, char** argv) {
  const auto def = tcn::bench::fig10();
  const auto args = tcn::bench::Args::parse(argc, argv, def.defaults);
  return tcn::bench::run_figure(def, args);
}
