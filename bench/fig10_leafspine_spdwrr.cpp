// Figure 10: large-scale leaf-spine (144 hosts, 12 leaves x 12 spines, 10G),
// SP (1) / DWRR (7) queues, DCTCP, PIAS; 144x143 host pairs partitioned into
// 7 services cycling the four Fig. 4 workloads.
//
// Paper shape: overall/large within ~1.5% of per-queue standard RED; small
// flows up to 38% lower avg FCT and up to 94% lower p99 (timeouts are the
// tail: RED with SP/DWRR suffered 589 small-flow timeouts at 90% load, TCN
// only 46).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tcn;
  bench::Args defaults;
  defaults.flows = 2000;  // ~0.75s of arrivals; raise for tighter tails
  defaults.loads = {0.6, 0.9};
  const auto args = bench::Args::parse(argc, argv, defaults);
  auto cfg = bench::leafspine_base();
  cfg.sched.kind = core::SchedKind::kSpDwrr;
  cfg.sched.num_sp = 1;
  bench::run_fct_sweep(
      "Fig. 10: leaf-spine, SP1/DWRR7 + PIAS, DCTCP, 4 workloads x 7 services",
      cfg,
      {{"TCN", core::Scheme::kTcn},
       {"CoDel", core::Scheme::kCodel},
       {"RED-queue", core::Scheme::kRedPerQueue}},
      args);
  return 0;
}
