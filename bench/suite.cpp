// suite: the whole figure-reproduction suite (Figs. 6-13) as one parallel
// sweep. Every (figure x scheme x load) cell is an independent
// core::FctExperiment, so the full evaluation is a single runner job list
// executed across --jobs worker threads; tables print per figure in paper
// order and the combined structured results land in BENCH_suite.json
// (schema tcn-bench-1), which CI uploads so the perf trajectory accumulates.
//
//   suite                         # per-figure default grids, all cores
//   suite --jobs 4                # pin the worker count
//   suite --flows 150 --loads 0.7 # smoke grid (CI), overrides every figure
//
// Determinism: aggregation is by job index, so stdout tables and the JSON
// (minus wall-clock fields) are byte-identical for any --jobs value.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "figures.hpp"

using namespace tcn;

namespace {

struct Slice {
  bench::FigureDef def;
  bench::Args args;       // figure defaults merged with CLI overrides
  std::size_t first = 0;  // index of the slice's first job in the suite list
};

}  // namespace

int main(int argc, char** argv) {
  // flows=0 / empty loads are sentinels: keep each figure's own defaults
  // unless the user overrides them (the CI smoke grid does).
  bench::Args defaults;
  defaults.flows = 0;
  defaults.loads.clear();
  defaults.json = "BENCH_suite.json";
  const auto cli = bench::Args::parse(argc, argv, defaults);

  std::vector<Slice> slices;
  std::vector<runner::Job> jobs;
  for (auto& def : bench::figure_suite()) {
    Slice slice;
    slice.args = def.defaults;
    if (cli.flows > 0) slice.args.flows = cli.flows;
    if (!cli.loads.empty()) slice.args.loads = cli.loads;
    slice.args.seed = cli.seed;
    slice.args.metrics_out = cli.metrics_out;
    slice.args.fault_grid = cli.fault_grid;
    slice.args.traffic_grid = cli.traffic_grid;
    slice.first = jobs.size();
    const auto spec = bench::fct_sweep_spec(def.name, def.base, def.schemes,
                                            slice.args);
    for (auto& job : spec.expand()) jobs.push_back(std::move(job));
    slice.def = std::move(def);
    slices.push_back(std::move(slice));
  }

  std::fprintf(stderr, "suite: %zu runs across %zu figures\n", jobs.size(),
               slices.size());
  auto opt = bench::sweep_options(cli);
  runner::JournalData journal_data;
  bench::apply_resume(cli, "suite", opt, journal_data);
  const auto res = runner::run_jobs(std::move(jobs), opt);

  if (!res.ok()) {
    std::fprintf(stderr, "suite: %zu run(s) failed, %zu skipped\n",
                 res.failed, res.skipped);
    for (const auto& r : res.runs) {
      if (!r.ok && !r.skipped) {
        std::fprintf(stderr, "  %s/%s load=%.0f%%: %s [%.*s]\n",
                     r.job.group.c_str(), r.job.label.c_str(),
                     r.job.cfg.load * 100, r.error.c_str(),
                     static_cast<int>(
                         runner::error_kind_name(r.error_kind).size()),
                     runner::error_kind_name(r.error_kind).data());
      }
    }
    // Still write the JSON: a failed sweep's partial trajectory is evidence.
    runner::write_json_file(res, "suite", cli.json);
    return 1;
  }

  // A fault or traffic axis changes the grid layout the table printers
  // assume (load-major then scheme); the structured JSON carries those
  // cells.
  if (cli.fault_grid.empty() && cli.traffic_grid.empty()) {
    for (const auto& slice : slices) {
      bench::print_fct_tables(slice.def.title, slice.def.schemes,
                              slice.args.loads, res.runs, slice.first,
                              slice.args.flows, slice.args.seed);
    }
  }
  std::fprintf(stderr,
               "suite: %zu runs ok in %.1f s (%zu workers), json -> %s\n",
               res.runs.size(), res.wall_ms / 1000.0, res.jobs_used,
               cli.json.c_str());
  runner::write_json_file(res, "suite", cli.json);
  if (!cli.metrics_out.empty()) {
    runner::write_metrics_file(res, "suite", cli.metrics_out);
  }
  return 0;
}
