// bench/atlas: the stability atlas. Sweeps marking threshold x load x
// buffer for TCN vs CoDel vs RED vs PIE across schedulers on the 9-host
// testbed star with time-series sampling on, prints a regime heatmap per
// (scheme, sched, buffer) slice, and writes the tcn-atlas-1 JSON document.
//
//   atlas --flows 500 --jobs 4 --json ATLAS.json
//   atlas --thresholds-us 64,256 --loads 0.5,0.9 --buffers 24000,96000
//         --schemes tcn,codel --scheds dwrr --flows 200 --jobs 2
//
// The JSON carries no host-timing fields, so two runs with different
// --jobs are byte-identical files (CI cmp's jobs=1 against jobs=4).
// Journaling/resume work exactly as in the figure benches.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "atlas.hpp"

namespace {

using namespace tcn;

core::Scheme scheme_from_token(const std::string& t) {
  if (t == "tcn") return core::Scheme::kTcn;
  if (t == "tcn-prob") return core::Scheme::kTcnProb;
  if (t == "codel") return core::Scheme::kCodel;
  if (t == "mq-ecn") return core::Scheme::kMqEcn;
  if (t == "red") return core::Scheme::kRedPerQueue;
  if (t == "red-port") return core::Scheme::kRedPerPort;
  if (t == "red-dequeue") return core::Scheme::kRedDequeue;
  if (t == "pie") return core::Scheme::kPie;
  if (t == "ideal-rate") return core::Scheme::kIdealRate;
  if (t == "none") return core::Scheme::kNone;
  std::fprintf(stderr, "--schemes: unknown scheme '%s'\n", t.c_str());
  std::exit(2);
}

core::SchedKind sched_from_token(const std::string& t) {
  if (t == "fifo") return core::SchedKind::kFifo;
  if (t == "sp") return core::SchedKind::kSp;
  if (t == "dwrr") return core::SchedKind::kDwrr;
  if (t == "wrr") return core::SchedKind::kWrr;
  if (t == "wfq") return core::SchedKind::kWfq;
  if (t == "sp-dwrr") return core::SchedKind::kSpDwrr;
  if (t == "sp-wfq") return core::SchedKind::kSpWfq;
  if (t == "pifo") return core::SchedKind::kPifoStfq;
  if (t == "sp-pifo") return core::SchedKind::kSpPifo;
  if (t == "aifo") return core::SchedKind::kAifo;
  std::fprintf(stderr, "--scheds: unknown scheduler '%s'\n", t.c_str());
  std::exit(2);
}

std::vector<std::string> split_csv(const char* list) {
  std::vector<std::string> out;
  std::string token;
  for (const char* p = list;; ++p) {
    if (*p == '\0' || *p == ',') {
      if (!token.empty()) out.push_back(token);
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return out;
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [axis flags] [sweep flags]\n"
      "axis flags (defaults cover the acceptance grid):\n"
      "  --schemes s1,s2,...      AQMs: tcn tcn-prob codel mq-ecn red\n"
      "                           red-port red-dequeue pie ideal-rate none\n"
      "                           (default tcn,codel,red,pie)\n"
      "  --scheds s1,s2,...       schedulers: fifo sp dwrr wrr wfq sp-dwrr\n"
      "                           sp-wfq pifo sp-pifo aifo\n"
      "                           (default dwrr,wfq,sp-pifo,aifo)\n"
      "  --thresholds-us t1,...   marking threshold axis T in us; every AQM\n"
      "                           gets T mapped to its native knob\n"
      "                           (default 64,256,1024)\n"
      "  --loads l1,l2,...        offered load axis (default 0.5,0.7,0.9)\n"
      "  --buffers b1,b2,...      per-port buffer bytes axis\n"
      "                           (default 24000,48000,96000)\n"
      "  --sample-interval-us F   time-series sampling interval\n"
      "                           (default 100)\n"
      "sweep flags:\n"
      "  --flows N                flows per cell (default 500)\n"
      "  --seed S                 base RNG seed (default 1)\n"
      "  --jobs N                 sweep workers (0 = one per core; output\n"
      "                           is byte-identical for any value)\n"
      "  --json PATH              write the tcn-atlas-1 document\n"
      "  --on-failure cancel_all|record_and_continue|retry\n"
      "  --retries N              max attempts per cell (implies retry)\n"
      "  --journal PATH           tcn-journal-1 checkpoint per cell\n"
      "  --resume PATH            restore journaled cells, run the rest\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::AtlasAxes axes = bench::default_atlas_axes();
  double interval_us = 100.0;
  std::size_t flows = 500;
  std::uint64_t seed = 1;
  std::size_t jobs = 0;
  std::string json_path;
  runner::SweepOptions opt;
  std::string resume_path;
  bool on_failure_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (flag == "--schemes") {
        axes.schemes.clear();
        for (const auto& t : split_csv(next())) {
          axes.schemes.push_back({t, scheme_from_token(t)});
        }
      } else if (flag == "--scheds") {
        axes.scheds.clear();
        for (const auto& t : split_csv(next())) {
          axes.scheds.emplace_back(t, sched_from_token(t));
        }
      } else if (flag == "--thresholds-us") {
        axes.thresholds_us.clear();
        for (const auto& t : split_csv(next())) {
          axes.thresholds_us.push_back(std::strtod(t.c_str(), nullptr));
        }
      } else if (flag == "--loads") {
        axes.loads.clear();
        for (const auto& t : split_csv(next())) {
          axes.loads.push_back(std::strtod(t.c_str(), nullptr));
        }
      } else if (flag == "--buffers") {
        axes.buffer_bytes.clear();
        for (const auto& t : split_csv(next())) {
          axes.buffer_bytes.push_back(std::strtoull(t.c_str(), nullptr, 10));
        }
      } else if (flag == "--sample-interval-us") {
        interval_us = std::strtod(next(), nullptr);
        if (interval_us <= 0) {
          std::fprintf(stderr, "--sample-interval-us: must be > 0\n");
          return 2;
        }
      } else if (flag == "--flows") {
        flows = std::strtoull(next(), nullptr, 10);
      } else if (flag == "--seed") {
        seed = std::strtoull(next(), nullptr, 10);
      } else if (flag == "--jobs") {
        jobs = std::strtoull(next(), nullptr, 10);
      } else if (flag == "--json") {
        json_path = next();
      } else if (flag == "--on-failure") {
        opt.failure_policy = runner::failure_policy_from_name(next());
        on_failure_set = true;
      } else if (flag == "--retries") {
        opt.retry.max_attempts = std::strtoull(next(), nullptr, 10);
        if (opt.retry.max_attempts == 0) {
          std::fprintf(stderr, "--retries: must be >= 1\n");
          return 2;
        }
        if (!on_failure_set) opt.failure_policy = runner::FailurePolicy::kRetry;
      } else if (flag == "--journal") {
        opt.journal_out = next();
      } else if (flag == "--resume") {
        resume_path = next();
      } else if (flag == "--help" || flag == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
        return 2;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", flag.c_str(), e.what());
      return 2;
    }
  }
  if (axes.cells() == 0) {
    std::fprintf(stderr, "atlas: empty grid (every axis needs >= 1 value)\n");
    return 2;
  }

  core::FctExperiment base = bench::testbed_base();
  base.num_flows = flows;
  base.seed = seed;
  base.timeseries.interval =
      static_cast<sim::Time>(interval_us * sim::kMicrosecond);

  auto jobs_vec = bench::atlas_jobs(axes, base);
  std::fprintf(stderr, "atlas: %zu cells (%zu sched x %zu scheme x %zu "
               "threshold x %zu load x %zu buffer), %zu flows/cell\n",
               jobs_vec.size(), axes.scheds.size(), axes.schemes.size(),
               axes.thresholds_us.size(), axes.loads.size(),
               axes.buffer_bytes.size(), flows);

  opt.jobs = jobs;
  opt.journal_name = "atlas";
  if (!resume_path.empty() && opt.journal_out.empty()) {
    opt.journal_out = resume_path;
  }
  runner::JournalData journal_data;
  if (!resume_path.empty()) {
    try {
      journal_data = runner::load_journal(resume_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--resume: %s\n", e.what());
      return 2;
    }
    opt.resume = &journal_data;
    std::fprintf(stderr, "atlas: resuming from %s, %zu of %zu cell(s) "
                 "journaled%s\n",
                 resume_path.c_str(), journal_data.entries.size(),
                 journal_data.total_jobs,
                 journal_data.torn_tail ? " (torn tail dropped)" : "");
  }
  opt.on_done = [](const runner::RunRecord& r) {
    if (r.skipped) return;
    if (!r.ok) {
      std::fprintf(stderr, "  [%s] FAILED: %s\n", r.job.label.c_str(),
                   r.error.c_str());
      return;
    }
    std::fprintf(stderr, "  [%s] %s osc=%.3f (%.0f ms)\n",
                 r.job.label.c_str(),
                 std::string(obs::regime_name(r.report.stability.regime))
                     .c_str(),
                 r.report.stability.oscillation_score, r.wall_ms);
  };

  try {
    const auto res = runner::run_jobs(std::move(jobs_vec), opt);
    bench::print_atlas_summary(axes, res);
    if (res.failed > 0 || res.skipped > 0) {
      std::fprintf(stderr, "atlas: %zu cell(s) failed, %zu skipped\n",
                   res.failed, res.skipped);
    }
    if (!json_path.empty()) {
      const std::string doc =
          bench::atlas_to_json(axes, res, flows, seed, interval_us);
      if (json_path == "-") {
        std::fwrite(doc.data(), 1, doc.size(), stdout);
      } else {
        std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
        out.write(doc.data(),
                  static_cast<std::streamsize>(doc.size()));
        out.flush();
        if (!out) {
          std::fprintf(stderr, "atlas: write failed for '%s'\n",
                       json_path.c_str());
          return 2;
        }
        std::fprintf(stderr, "atlas: wrote %s (%zu bytes)\n",
                     json_path.c_str(), doc.size());
      }
    }
    return res.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "atlas: %s\n", e.what());
    return 2;
  }
}
