// Ablation A5: burst tolerance under incast (Sec. 4.3: "TCN delivers faster
// congestion notification since it makes marking decisions instantly rather
// than after a time window. So TCN can better handle bursty datacenter
// traffic (e.g., incast)").
//
// Fan-in queries (partition/aggregate) into one client over a 10G star with
// a 300KB shared port buffer. Query completion time (QCT) is gated by the
// slowest response; one lost tail packet costs an RTOmin. CoDel needs a full
// `interval` of persistent delay before its first mark, so synchronized
// bursts overrun the buffer more often.
#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "stats/percentile.hpp"
#include "topo/network.hpp"
#include "transport/flow.hpp"
#include "workload/incast.hpp"

using namespace tcn;

namespace {

struct Row {
  double avg_qct_us;
  double p99_qct_us;
  std::uint64_t timeouts;
};

Row run(core::Scheme scheme, std::uint32_t fanout, std::uint64_t seed) {
  sim::Simulator simulator;
  core::SchemeParams params;
  params.rtt_lambda = 100 * sim::kMicrosecond;
  params.red_threshold_bytes = 125'000;
  params.codel_target = 25 * sim::kMicrosecond;
  params.codel_interval = 400 * sim::kMicrosecond;  // ~4x base RTT
  params.seed = seed;
  core::SchedConfig sched;
  sched.kind = core::SchedKind::kFifo;
  sched.num_queues = 1;

  topo::StarConfig star;
  star.num_hosts = 33;  // host 0 = aggregator, 32 workers
  star.link_rate_bps = 10'000'000'000ULL;
  star.num_queues = 1;
  star.buffer_bytes = 300'000;
  star.host_delay =
      topo::star_host_delay_for_rtt(100 * sim::kMicrosecond, star.link_prop);
  auto network =
      topo::build_star(simulator, star, core::make_scheduler_factory(sched),
                       core::make_marker_factory(scheme, params));

  transport::FlowManager fm;
  workload::FlowLauncher launch = [&fm](net::Host& a, net::Host& b,
                                        transport::FlowSpec s) {
    fm.start_flow(a, b, std::move(s));
  };
  std::vector<net::Host*> servers;
  for (std::size_t i = 1; i < network.num_hosts(); ++i) {
    servers.push_back(&network.host(i));
  }
  workload::IncastConfig cfg;
  cfg.fanout = fanout;
  cfg.response_bytes = 128'000;
  cfg.num_queries = 200;
  cfg.interval = 5 * sim::kMillisecond;
  cfg.seed = seed;
  workload::IncastGenerator gen(
      simulator, launch, servers, &network.host(0), cfg,
      [](std::uint32_t, std::uint64_t size) {
        transport::FlowSpec spec;
        spec.size = size;
        spec.tcp.cc = transport::CongestionControl::kDctcp;
        spec.tcp.init_cwnd_pkts = 10;
        spec.tcp.rto_min = 5 * sim::kMillisecond;
        spec.tcp.rto_init = 5 * sim::kMillisecond;
        return spec;
      },
      nullptr);
  gen.start();
  simulator.run(60 * sim::kSecond);

  std::vector<double> qct_us;
  std::uint64_t timeouts = 0;
  for (const auto& q : gen.results()) {
    qct_us.push_back(static_cast<double>(q.qct) / sim::kMicrosecond);
    timeouts += q.timeouts;
  }
  return {stats::mean(qct_us), stats::percentile(qct_us, 99.0), timeouts};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, {});
  std::printf("=== Ablation: incast burst tolerance (10G, 128KB responses, "
              "300KB buffer, DCTCP, 200 queries) ===\n\n");
  std::printf("%7s | %-10s | %12s | %12s | %9s\n", "fanout", "scheme",
              "avg QCT us", "p99 QCT us", "timeouts");
  struct SchemeRow {
    const char* name;
    core::Scheme scheme;
  };
  for (const std::uint32_t fanout : {8u, 16u, 24u, 32u}) {
    for (const auto& s : {SchemeRow{"TCN", core::Scheme::kTcn},
                          SchemeRow{"CoDel", core::Scheme::kCodel},
                          SchemeRow{"RED-queue", core::Scheme::kRedPerQueue}}) {
      const auto r = run(s.scheme, fanout, args.seed);
      std::printf("%7u | %-10s | %12.1f | %12.1f | %9llu\n", fanout, s.name,
                  r.avg_qct_us, r.p99_qct_us,
                  static_cast<unsigned long long>(r.timeouts));
    }
    std::printf("\n");
  }
  std::printf("Expected shape: TCN marks the burst instantly and matches the "
              "queue-length schemes; CoDel waits a full\ninterval before its "
              "first mark, so its queries drag (up to ~70%% higher QCT at "
              "moderate fanout) until\nthe link saturates and everyone "
              "converges.\n");
  return 0;
}
