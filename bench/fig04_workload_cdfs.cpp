// Figure 4: the four benchmark traffic distributions. Prints each CDF and
// the summary statistics the evaluation relies on (mean size, fraction of
// small flows, byte share of sub-10MB flows).
#include <cstdio>

#include "sim/random.hpp"
#include "workload/distributions.hpp"

using namespace tcn;

int main() {
  std::printf("=== Fig. 4: traffic distributions for evaluation ===\n\n");
  for (const auto kind : workload::all_kinds()) {
    const auto& d = workload::distribution(kind);
    std::printf("-- %s --\n", d.name().c_str());
    std::printf("   %12s  %6s\n", "size (KB)", "CDF");
    for (const auto& p : d.points()) {
      std::printf("   %12.1f  %6.2f\n", p.value / 1e3, p.cdf);
    }
    sim::Rng rng(42);
    double total = 0, below10mb = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) {
      const double s = d.sample(rng);
      total += s;
      if (s < 10e6) below10mb += s;
    }
    std::printf("   mean = %.1f KB, P(size<=100KB) = %.2f, "
                "byte share of flows <10MB = %.2f\n\n",
                d.mean() / 1e3, d.cdf_at(100'000), below10mb / total);
  }
  std::printf("Expected shape: all heavy-tailed; web search least skewed "
              "(~60%% of bytes from sub-10MB flows).\n");
  return 0;
}
