// Figure 12: transport robustness -- same leaf-spine SP/DWRR setup as
// Fig. 10 but with ECN* (plain ECN TCP, halve on echo) instead of DCTCP.
// Standard thresholds move to K = 84 packets and T = 101us.
//
// Paper shape: ECN* is the most threshold-sensitive transport, yet TCN stays
// within ~2% of per-queue standard RED on large flows while keeping its big
// small-flow wins.
#include "figures.hpp"

int main(int argc, char** argv) {
  const auto def = tcn::bench::fig12();
  const auto args = tcn::bench::Args::parse(argc, argv, def.defaults);
  return tcn::bench::run_figure(def, args);
}
