// Figure 12: transport robustness -- same leaf-spine SP/DWRR setup as
// Fig. 10 but with ECN* (plain ECN TCP, halve on echo) instead of DCTCP.
// Standard thresholds move to K = 84 packets and T = 101us.
//
// Paper shape: ECN* is the most threshold-sensitive transport, yet TCN stays
// within ~2% of per-queue standard RED on large flows while keeping its big
// small-flow wins.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tcn;
  bench::Args defaults;
  defaults.flows = 2000;  // ~0.75s of arrivals; raise for tighter tails
  defaults.loads = {0.6, 0.9};
  const auto args = bench::Args::parse(argc, argv, defaults);
  auto cfg = bench::leafspine_base();
  cfg.sched.kind = core::SchedKind::kSpDwrr;
  cfg.sched.num_sp = 1;
  cfg.tcp.cc = transport::CongestionControl::kEcnStar;
  cfg.params.rtt_lambda = 101 * sim::kMicrosecond;
  cfg.params.red_threshold_bytes = 84 * 1'500;
  bench::run_fct_sweep(
      "Fig. 12: leaf-spine, SP1/DWRR7 + PIAS, ECN* transport", cfg,
      {{"TCN", core::Scheme::kTcn},
       {"CoDel", core::Scheme::kCodel},
       {"RED-queue", core::Scheme::kRedPerQueue}},
      args);
  return 0;
}
