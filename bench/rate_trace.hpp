// Shared harness for the Fig. 2 scenario (and the dq_thresh ablation):
// 10G star, DWRR 2x18KB quanta, ECN*; 8 flows in queue 0 from t=0, 2 flows
// join queue 1 at t=10ms, dropping queue 0's true capacity to 5Gbps. Traces
// queue 0's estimated capacity under Algorithm 1 (dq_thresh > 0) or MQ-ECN's
// round-time estimate (dq_thresh == 0).
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "aqm/mq_ecn.hpp"
#include "aqm/rate_estimator.hpp"
#include "core/schemes.hpp"
#include "obs/metrics.hpp"
#include "sched/dwrr.hpp"
#include "stats/timeseries.hpp"
#include "topo/network.hpp"
#include "transport/flow.hpp"

namespace tcn::bench {

inline constexpr sim::Time kRateTraceJoin = 10 * sim::kMillisecond;
inline constexpr sim::Time kRateTraceEnd = 30 * sim::kMillisecond;
inline constexpr double kRateTraceTrueBps = 5e9;

struct RateTrace {
  std::vector<stats::PeriodicSampler::Sample> smoothed;  // (t, bps)
  std::vector<double> post_change_samples;               // raw bps post-join
  std::size_t samples_in_2ms = 0;
  /// Whole-run raw sample count, read back from the observability layer
  /// (the "aqm.ideal-red.sample_bps" histogram); 0 for the MQ-ECN trace,
  /// whose estimator is continuous rather than sampling.
  std::uint64_t total_samples = 0;

  /// Time after the join until the smoothed estimate permanently stays
  /// within 10% of the true 5Gbps; -1 if it never does.
  [[nodiscard]] sim::Time convergence() const {
    for (std::size_t i = 0; i < smoothed.size(); ++i) {
      if (smoothed[i].t < kRateTraceJoin) continue;
      if (std::abs(smoothed[i].value - kRateTraceTrueBps) <=
          0.10 * kRateTraceTrueBps) {
        bool stays = true;
        for (std::size_t j = i; j < smoothed.size(); ++j) {
          if (std::abs(smoothed[j].value - kRateTraceTrueBps) >
              0.10 * kRateTraceTrueBps) {
            stays = false;
            break;
          }
        }
        if (stays) return smoothed[i].t - kRateTraceJoin;
      }
    }
    return -1;
  }

  [[nodiscard]] double sample_min() const {
    return post_change_samples.empty()
               ? 0.0
               : *std::min_element(post_change_samples.begin(),
                                   post_change_samples.end());
  }
  [[nodiscard]] double sample_max() const {
    return post_change_samples.empty()
               ? 0.0
               : *std::max_element(post_change_samples.begin(),
                                   post_change_samples.end());
  }
  [[nodiscard]] double final_estimate() const {
    return smoothed.empty() ? 0.0 : smoothed.back().value;
  }
};

inline RateTrace run_rate_trace(std::uint64_t dq_thresh, std::uint64_t seed) {
  // Registry installed before the topology so the IdealRedMarker resolves
  // its "aqm.ideal-red.sample_bps" histogram; the trace re-reads the
  // estimator's sampling activity from it after the run.
  obs::MetricsRegistry registry;
  obs::MetricsRegistry::Scope metrics_scope(registry);

  sim::Simulator simulator;
  RateTrace trace;

  aqm::IdealRedMarker* ideal = nullptr;
  sched::DwrrScheduler* dwrr = nullptr;
  const sim::Time rtt_lambda = 100 * sim::kMicrosecond;

  topo::StarConfig star;
  star.num_hosts = 11;
  star.link_rate_bps = 10'000'000'000ULL;
  star.num_queues = 2;
  star.buffer_bytes = 4'000'000;  // ample: this scenario is about estimation
  star.host_delay =
      topo::star_host_delay_for_rtt(100 * sim::kMicrosecond, star.link_prop);

  auto sched_factory = [&]() -> std::unique_ptr<net::Scheduler> {
    auto s = std::make_unique<sched::DwrrScheduler>(
        std::vector<std::uint64_t>{18'000, 18'000});
    if (dwrr == nullptr) dwrr = s.get();  // port 0 (to receiver) built first
    return s;
  };
  auto marker_factory = [&](net::Scheduler& s, const net::PortConfig& port)
      -> std::unique_ptr<net::Marker> {
    if (dq_thresh == 0) {
      // MQ-ECN trace: the queues are controlled by MQ-ECN itself, exactly as
      // in the paper's Fig. 2(c).
      auto* provider = dynamic_cast<net::RoundRateProvider*>(&s);
      return std::make_unique<aqm::MqEcnMarker>(provider, rtt_lambda);
    }
    auto m = std::make_unique<aqm::IdealRedMarker>(port.num_queues, dq_thresh,
                                                   rtt_lambda, 0.875);
    if (ideal == nullptr) ideal = m.get();
    return m;
  };
  auto network =
      topo::build_star(simulator, star, sched_factory, marker_factory);

  transport::FlowManager fm;
  auto start = [&](std::size_t host, std::uint8_t q) {
    transport::FlowSpec spec;
    spec.size = 4'000'000'000ULL;
    spec.service = q;
    spec.tcp.cc = transport::CongestionControl::kEcnStar;
    spec.tcp.init_cwnd_pkts = 16;
    spec.data_dscp = transport::constant_dscp(q);
    spec.ack_dscp = q;
    fm.start_flow(network.host(host), network.host(0), spec);
  };
  for (std::size_t h = 1; h <= 8; ++h) start(h, 0);
  simulator.schedule_at(kRateTraceJoin, [&] {
    start(9, 1);
    start(10, 1);
  });

  if (dq_thresh > 0) {
    ideal->set_sample_observer(
        [&](std::size_t q, sim::Time now, double sample_Bps, double) {
          if (q != 0 || now < kRateTraceJoin) return;
          trace.post_change_samples.push_back(sample_Bps * 8.0);
          if (now <= kRateTraceJoin + 2 * sim::kMillisecond) {
            ++trace.samples_in_2ms;
          }
        });
  }

  stats::PeriodicSampler sampler(
      simulator, 50 * sim::kMicrosecond, [&]() -> double {
        if (dq_thresh > 0) {
          const auto& est = ideal->estimator(0);
          return est.has_estimate() ? est.avg_rate_Bps() * 8.0 : 1e10;
        }
        return dwrr->queue_rate_bps(0, simulator.now());
      });
  sampler.start();
  simulator.run(kRateTraceEnd);
  trace.smoothed = sampler.samples();

  if (dq_thresh == 0) {
    // MQ-ECN samples once per round (~28.8us at 10G with 2x18KB quanta).
    trace.samples_in_2ms = static_cast<std::size_t>(
        2 * sim::kMillisecond /
        (2 * sim::transmission_time(18'000, 10'000'000'000ULL)));
    for (const auto& s : trace.smoothed) {
      if (s.t >= kRateTraceJoin + 500 * sim::kMicrosecond) {
        trace.post_change_samples.push_back(s.value);
      }
    }
  }
  if (dq_thresh > 0) {
    trace.total_samples = registry.histogram("aqm.ideal-red.sample_bps").count();
  }
  (void)seed;
  return trace;
}

}  // namespace tcn::bench
