// Shared helpers for the figure-reproduction benches: CLI parsing and the
// normalized-FCT table printer used by every dynamic-workload figure.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace tcn::bench {

struct Args {
  std::size_t flows = 2000;
  std::vector<double> loads = {0.3, 0.5, 0.7, 0.9};
  std::uint64_t seed = 1;

  static Args parse(int argc, char** argv, const Args& defaults) {
    Args a = defaults;
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", flag.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (flag == "--flows") {
        a.flows = std::strtoull(next(), nullptr, 10);
      } else if (flag == "--seed") {
        a.seed = std::strtoull(next(), nullptr, 10);
      } else if (flag == "--loads") {
        a.loads.clear();
        std::string list = next();
        for (std::size_t pos = 0; pos < list.size();) {
          const auto comma = list.find(',', pos);
          const auto token = list.substr(pos, comma - pos);
          a.loads.push_back(std::strtod(token.c_str(), nullptr));
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
      } else if (flag == "--help" || flag == "-h") {
        std::printf("usage: %s [--flows N] [--loads l1,l2,...] [--seed S]\n",
                    argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
        std::exit(2);
      }
    }
    return a;
  }
};

struct SchemeRun {
  std::string name;
  core::Scheme scheme;
};

/// Runs `base` for every (scheme x load) and prints the figure's four panels:
/// overall avg / small avg / small p99 / large avg FCT, normalized to the
/// first scheme in `schemes` (the paper normalizes to TCN). Also prints TCN's
/// raw microseconds and the timeout counts that explain the tails.
inline void run_fct_sweep(const char* title, core::FctExperiment base,
                          const std::vector<SchemeRun>& schemes,
                          const Args& args) {
  base.num_flows = args.flows;
  base.seed = args.seed;

  std::printf("=== %s ===\n", title);
  std::printf("flows/run=%zu seed=%llu\n\n", args.flows,
              static_cast<unsigned long long>(args.seed));

  struct Cell {
    stats::FctSummary s;
    std::size_t completed = 0;
    std::uint64_t drops = 0;
  };
  std::vector<std::vector<Cell>> grid(args.loads.size(),
                                      std::vector<Cell>(schemes.size()));

  for (std::size_t li = 0; li < args.loads.size(); ++li) {
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      core::FctExperiment cfg = base;
      cfg.scheme = schemes[si].scheme;
      cfg.load = args.loads[li];
      const auto report = core::run_fct_experiment(cfg);
      grid[li][si] = {report.summary, report.flows_completed,
                      report.switch_drops};
      std::fprintf(stderr, "  [%s load=%.0f%%] done (%zu/%zu flows)\n",
                   schemes[si].name.c_str(), args.loads[li] * 100,
                   report.flows_completed, args.flows);
    }
  }

  auto panel = [&](const char* name, auto metric) {
    std::printf("-- %s (normalized to %s; >1 means worse) --\n", name,
                schemes[0].name.c_str());
    std::printf("%6s", "load");
    for (const auto& s : schemes) std::printf(" %12s", s.name.c_str());
    std::printf(" %14s\n", (schemes[0].name + " (us)").c_str());
    for (std::size_t li = 0; li < args.loads.size(); ++li) {
      std::printf("%5.0f%%", args.loads[li] * 100);
      const double ref = metric(grid[li][0].s);
      for (std::size_t si = 0; si < schemes.size(); ++si) {
        const double v = metric(grid[li][si].s);
        if (ref > 0) {
          std::printf(" %12.3f", v / ref);
        } else {
          std::printf(" %12s", "-");
        }
      }
      std::printf(" %14.1f\n", ref);
    }
    std::printf("\n");
  };

  panel("overall avg FCT", [](const stats::FctSummary& s) { return s.avg_all_us; });
  panel("small flows (0,100KB] avg FCT",
        [](const stats::FctSummary& s) { return s.avg_small_us; });
  panel("small flows 99th percentile FCT",
        [](const stats::FctSummary& s) { return s.p99_small_us; });
  panel("large flows (10MB,inf) avg FCT",
        [](const stats::FctSummary& s) { return s.avg_large_us; });

  std::printf("-- TCP timeouts of small flows / switch drops --\n");
  std::printf("%6s", "load");
  for (const auto& s : schemes) std::printf(" %18s", s.name.c_str());
  std::printf("\n");
  for (std::size_t li = 0; li < args.loads.size(); ++li) {
    std::printf("%5.0f%%", args.loads[li] * 100);
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%llu/%llu",
                    static_cast<unsigned long long>(
                        grid[li][si].s.small_timeouts),
                    static_cast<unsigned long long>(grid[li][si].drops));
      std::printf(" %18s", buf);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

/// Common testbed configuration (Sec. 6.1): 9 servers, 1GbE, base RTT 250us,
/// 96KB shared buffer per port, DCTCP with RTOmin 10ms. Standard thresholds:
/// K = 32KB, T = 256us; CoDel tuned to target 51.2us / interval 1024us.
inline core::FctExperiment testbed_base() {
  core::FctExperiment cfg;
  cfg.topology = core::FctExperiment::Topology::kStarConverge;
  cfg.star.num_hosts = 9;
  cfg.star.link_rate_bps = 1'000'000'000;
  cfg.star.buffer_bytes = 96'000;
  cfg.star.host_delay = topo::star_host_delay_for_rtt(
      250 * sim::kMicrosecond, cfg.star.link_prop);
  cfg.params.rtt_lambda = 256 * sim::kMicrosecond;
  cfg.params.red_threshold_bytes = 32'000;
  cfg.params.codel_target = static_cast<sim::Time>(51.2 * sim::kMicrosecond);
  cfg.params.codel_interval = 1024 * sim::kMicrosecond;
  cfg.tcp.cc = transport::CongestionControl::kDctcp;
  cfg.tcp.rto_min = 10 * sim::kMillisecond;
  cfg.tcp.rto_init = 10 * sim::kMillisecond;
  cfg.tcp.init_cwnd_pkts = 10;
  cfg.num_services = 4;
  cfg.service_workloads = {workload::Kind::kWebSearch};
  cfg.time_limit = 600 * sim::kSecond;
  return cfg;
}

/// Common large-scale configuration (Sec. 6.2): 144-host leaf-spine, 10G,
/// 300KB shared buffer, 8 queues, DCTCP (init window 16, RTOmin 5ms),
/// K = 65 packets ~= 97.5KB, T = 78us; 7 services cycling the 4 workloads.
inline core::FctExperiment leafspine_base() {
  core::FctExperiment cfg;
  cfg.topology = core::FctExperiment::Topology::kLeafSpine;
  cfg.leaf_spine = topo::LeafSpineConfig{};  // paper defaults
  cfg.params.rtt_lambda = 78 * sim::kMicrosecond;
  cfg.params.red_threshold_bytes = 65 * 1'500;
  cfg.params.codel_target = static_cast<sim::Time>(17 * sim::kMicrosecond);
  cfg.params.codel_interval = 341 * sim::kMicrosecond;  // ~4x base RTT
  cfg.tcp.cc = transport::CongestionControl::kDctcp;
  cfg.tcp.rto_min = 5 * sim::kMillisecond;
  cfg.tcp.rto_init = 5 * sim::kMillisecond;
  cfg.tcp.init_cwnd_pkts = 16;
  cfg.num_services = 7;
  cfg.service_workloads = {workload::Kind::kWebSearch,
                           workload::Kind::kDataMining,
                           workload::Kind::kHadoop, workload::Kind::kCache};
  cfg.pias = true;
  // ns-2 convention: every flow is its own TCP connection.
  cfg.persistent_connections = false;
  cfg.time_limit = 600 * sim::kSecond;
  return cfg;
}

}  // namespace tcn::bench
