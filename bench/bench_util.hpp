// Shared helpers for the figure-reproduction benches: the one CLI parser
// every fig*/ablation* binary uses, and the normalized-FCT table printer
// driven by the parallel sweep runner (src/runner). Every dynamic-workload
// figure is a scheme x load grid of independent core::FctExperiment runs,
// executed by runner::run_sweep across --jobs worker threads and aggregated
// by job index, so the printed tables and the optional BENCH_*.json are
// byte-identical for any job count.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "runner/journal.hpp"
#include "runner/results.hpp"
#include "runner/sweep.hpp"
#include "traffic/spec.hpp"

namespace tcn::bench {

struct Args {
  std::size_t flows = 2000;
  std::vector<double> loads = {0.3, 0.5, 0.7, 0.9};
  std::uint64_t seed = 1;
  /// Worker threads for the sweep; 0 = one per hardware thread.
  std::size_t jobs = 0;
  /// Write structured results (schema tcn-bench-1) here; empty = no JSON,
  /// "-" = stdout.
  std::string json;
  /// Collect per-run metrics and write the merged tcn-metrics-1 document
  /// here; empty = observability off, "-" = stdout. Byte-identical for any
  /// --jobs (merge is by job index).
  std::string metrics_out;
  /// Fault-axis cells (--fault-grid) crossed into every figure grid.
  std::vector<std::pair<std::string, fault::FaultPlan>> fault_grid;
  /// Traffic-axis cells (--traffic-grid) crossed into every figure grid;
  /// "none" is the closed-loop baseline cell.
  std::vector<std::pair<std::string, traffic::TrafficSpec>> traffic_grid;
  /// What a failed run does to the sweep (--on-failure).
  runner::FailurePolicy on_failure = runner::FailurePolicy::kCancelAll;
  /// Max attempts per job; nonzero implies the retry policy (--retries).
  std::size_t retries = 0;
  /// tcn-journal-1 checkpoint path (--journal); empty = no journal.
  std::string journal;
  /// Journal to restore completed runs from (--resume); extends it in place
  /// unless --journal names a different file.
  std::string resume;

  static Args parse(int argc, char** argv, const Args& defaults) {
    Args a = defaults;
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", flag.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      try {
        if (flag == "--flows") {
          a.flows = std::strtoull(next(), nullptr, 10);
        } else if (flag == "--seed") {
          a.seed = std::strtoull(next(), nullptr, 10);
        } else if (flag == "--jobs") {
          a.jobs = std::strtoull(next(), nullptr, 10);
        } else if (flag == "--json") {
          a.json = next();
        } else if (flag == "--metrics-out") {
          a.metrics_out = next();
        } else if (flag == "--fault-grid") {
          a.fault_grid = fault::parse_fault_grid(next());
        } else if (flag == "--traffic-grid") {
          a.traffic_grid = traffic::parse_traffic_grid(next());
        } else if (flag == "--on-failure") {
          a.on_failure = runner::failure_policy_from_name(next());
        } else if (flag == "--retries") {
          a.retries = std::strtoull(next(), nullptr, 10);
          if (a.retries == 0) {
            std::fprintf(stderr, "--retries: must be >= 1\n");
            std::exit(2);
          }
          a.on_failure = runner::FailurePolicy::kRetry;
        } else if (flag == "--journal") {
          a.journal = next();
        } else if (flag == "--resume") {
          a.resume = next();
        } else if (flag == "--loads") {
          a.loads.clear();
          std::string list = next();
          for (std::size_t pos = 0; pos < list.size();) {
            const auto comma = list.find(',', pos);
            const auto token = list.substr(pos, comma - pos);
            a.loads.push_back(std::strtod(token.c_str(), nullptr));
            if (comma == std::string::npos) break;
            pos = comma + 1;
          }
        } else if (flag == "--help" || flag == "-h") {
          std::printf(
              "usage: %s [--flows N] [--loads l1,l2,...] [--seed S]\n"
              "          [--jobs N] [--json PATH] [--metrics-out PATH]\n"
              "          [--fault-grid c1|c2|...] [--traffic-grid "
              "c1|c2|...]\n"
              "          [--on-failure P]\n"
              "          [--retries N] [--journal PATH] [--resume PATH]\n"
              "  --jobs N    parallel sweep workers (0 = one per core; "
              "output\n"
              "              is byte-identical for any value)\n"
              "  --json PATH write per-run structured results (tcn-bench-1)\n"
              "  --metrics-out PATH\n"
              "              collect per-run observability metrics and "
              "write\n"
              "              the merged tcn-metrics-1 snapshot\n"
              "  --fault-grid c1|c2|...\n"
              "              sweep a fault axis; each cell is a --faults "
              "list\n"
              "              (\"none\" = fault-free)\n"
              "  --traffic-grid c1|c2|...\n"
              "              sweep an open-loop traffic axis; each cell is "
              "a\n"
              "              --traffic spec (\"none\" = closed loop)\n"
              "  --on-failure cancel_all|record_and_continue|retry\n"
              "  --retries N max attempts per job (implies retry policy)\n"
              "  --journal PATH\n"
              "              append a tcn-journal-1 checkpoint per "
              "completed\n"
              "              run (fsync'd; survives kill -9)\n"
              "  --resume PATH\n"
              "              restore completed runs from a journal, run "
              "the\n"
              "              rest; output is byte-identical to an\n"
              "              uninterrupted sweep\n",
              argv[0]);
          std::exit(0);
        } else {
          std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
          std::exit(2);
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", flag.c_str(), e.what());
        std::exit(2);
      }
    }
    return a;
  }
};

struct SchemeRun {
  std::string name;
  core::Scheme scheme;
};

/// Progress printer for SweepOptions::on_done (stderr, completion order --
/// progress lines are the one output allowed to vary with --jobs).
inline runner::SweepOptions sweep_options(const Args& args) {
  runner::SweepOptions opt;
  opt.jobs = args.jobs;
  opt.failure_policy = args.on_failure;
  if (args.retries > 0) opt.retry.max_attempts = args.retries;
  opt.journal_out = args.journal;
  // --resume with no --journal extends the same journal in place, so a
  // sweep can be killed and resumed any number of times. Loading the
  // journal itself is the caller's job (the JournalData must outlive the
  // sweep).
  if (!args.resume.empty() && opt.journal_out.empty()) {
    opt.journal_out = args.resume;
  }
  opt.on_done = [](const runner::RunRecord& r) {
    if (r.skipped) return;
    if (!r.ok) {
      std::fprintf(stderr, "  [%s load=%.0f%%] FAILED: %s\n",
                   r.job.label.c_str(), r.job.cfg.load * 100,
                   r.error.c_str());
      return;
    }
    std::fprintf(stderr,
                 "  [%s load=%.0f%%] done (%zu/%zu flows, %.0f ms, "
                 "%.2fM ev/s)\n",
                 r.job.label.c_str(), r.job.cfg.load * 100,
                 r.report.flows_completed, r.job.cfg.num_flows, r.wall_ms,
                 r.events_per_sec / 1e6);
  };
  return opt;
}

/// Prints the figure's four normalized panels plus the timeout table from
/// sweep records laid out load-major then scheme (SweepSpec::expand order
/// with a single seed and flow count). `first` is the index of the slice's
/// first record inside `runs` (nonzero when several figures share one
/// suite-wide sweep).
inline void print_fct_tables(const char* title,
                             const std::vector<SchemeRun>& schemes,
                             const std::vector<double>& loads,
                             const std::vector<runner::RunRecord>& runs,
                             std::size_t first, std::size_t flows,
                             std::uint64_t seed) {
  std::printf("=== %s ===\n", title);
  std::printf("flows/run=%zu seed=%llu\n\n", flows,
              static_cast<unsigned long long>(seed));

  const std::size_t num_schemes = schemes.size();
  auto rec = [&](std::size_t li, std::size_t si) -> const runner::RunRecord& {
    return runs[first + li * num_schemes + si];
  };

  auto panel = [&](const char* name, auto metric) {
    std::printf("-- %s (normalized to %s; >1 means worse) --\n", name,
                schemes[0].name.c_str());
    std::printf("%6s", "load");
    for (const auto& s : schemes) std::printf(" %12s", s.name.c_str());
    std::printf(" %14s\n", (schemes[0].name + " (us)").c_str());
    for (std::size_t li = 0; li < loads.size(); ++li) {
      std::printf("%5.0f%%", loads[li] * 100);
      const double ref = metric(rec(li, 0).report.summary);
      for (std::size_t si = 0; si < num_schemes; ++si) {
        const double v = metric(rec(li, si).report.summary);
        if (ref > 0) {
          std::printf(" %12.3f", v / ref);
        } else {
          std::printf(" %12s", "-");
        }
      }
      std::printf(" %14.1f\n", ref);
    }
    std::printf("\n");
  };

  panel("overall avg FCT",
        [](const stats::FctSummary& s) { return s.avg_all_us; });
  panel("small flows (0,100KB] avg FCT",
        [](const stats::FctSummary& s) { return s.avg_small_us; });
  panel("small flows 99th percentile FCT",
        [](const stats::FctSummary& s) { return s.p99_small_us; });
  panel("large flows (10MB,inf) avg FCT",
        [](const stats::FctSummary& s) { return s.avg_large_us; });

  std::printf("-- TCP timeouts of small flows / switch drops --\n");
  std::printf("%6s", "load");
  for (const auto& s : schemes) std::printf(" %18s", s.name.c_str());
  std::printf("\n");
  for (std::size_t li = 0; li < loads.size(); ++li) {
    std::printf("%5.0f%%", loads[li] * 100);
    for (std::size_t si = 0; si < num_schemes; ++si) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%llu/%llu",
                    static_cast<unsigned long long>(
                        rec(li, si).report.summary.small_timeouts),
                    static_cast<unsigned long long>(
                        rec(li, si).report.switch_drops));
      std::printf(" %18s", buf);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

/// Build the scheme x load SweepSpec a figure bench runs.
inline runner::SweepSpec fct_sweep_spec(const char* name,
                                        core::FctExperiment base,
                                        const std::vector<SchemeRun>& schemes,
                                        const Args& args) {
  base.num_flows = args.flows;
  base.seed = args.seed;
  base.collect_metrics = !args.metrics_out.empty();
  runner::SweepSpec spec;
  spec.name = name;
  spec.base = std::move(base);
  spec.loads = args.loads;
  spec.faults = args.fault_grid;
  spec.traffics = args.traffic_grid;
  for (const auto& s : schemes) spec.schemes.emplace_back(s.name, s.scheme);
  return spec;
}

/// Load the --resume journal into `data` and point `opt` at it (no-op when
/// --resume was not given). `data` must outlive the sweep. Exits with a
/// message on a missing or mismatched journal.
inline void apply_resume(const Args& args, const char* sweep_name,
                         runner::SweepOptions& opt,
                         runner::JournalData& data) {
  opt.journal_name = sweep_name;
  if (args.resume.empty()) return;
  try {
    data = runner::load_journal(args.resume);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--resume: %s\n", e.what());
    std::exit(2);
  }
  opt.resume = &data;
  std::fprintf(stderr, "%s: resuming from %s, %zu of %zu run(s) journaled%s\n",
               sweep_name, args.resume.c_str(), data.entries.size(),
               data.total_jobs,
               data.torn_tail ? " (torn tail dropped)" : "");
}

/// Runs `base` for every (scheme x load) across --jobs workers and prints
/// the figure's panels; writes BENCH json when --json was given. Returns an
/// exit code (nonzero when any run failed).
inline int run_fct_sweep(const char* name, const char* title,
                         core::FctExperiment base,
                         const std::vector<SchemeRun>& schemes,
                         const Args& args) {
  const auto spec = fct_sweep_spec(name, std::move(base), schemes, args);
  auto opt = sweep_options(args);
  runner::JournalData journal_data;
  apply_resume(args, name, opt, journal_data);
  const auto res = runner::run_sweep(spec, opt);
  if (!res.ok()) {
    std::fprintf(stderr, "%s: %zu run(s) failed, %zu skipped\n", name,
                 res.failed, res.skipped);
    // Still write the JSON: a failed sweep's partial trajectory (with its
    // per-run error kinds) is evidence.
    if (!args.json.empty()) runner::write_json_file(res, name, args.json);
    return 1;
  }
  // A fault or traffic axis changes the grid layout the table printers
  // assume (load-major then scheme); print tables only for the plain shape.
  if (args.fault_grid.empty() && args.traffic_grid.empty()) {
    print_fct_tables(title, schemes, args.loads, res.runs, 0, args.flows,
                     args.seed);
  }
  if (!args.json.empty()) runner::write_json_file(res, name, args.json);
  if (!args.metrics_out.empty()) {
    runner::write_metrics_file(res, name, args.metrics_out);
  }
  return 0;
}

/// Common testbed configuration (Sec. 6.1): 9 servers, 1GbE, base RTT 250us,
/// 96KB shared buffer per port, DCTCP with RTOmin 10ms. Standard thresholds:
/// K = 32KB, T = 256us; CoDel tuned to target 51.2us / interval 1024us.
inline core::FctExperiment testbed_base() {
  core::FctExperiment cfg;
  cfg.topology = core::FctExperiment::Topology::kStarConverge;
  cfg.star.num_hosts = 9;
  cfg.star.link_rate_bps = 1'000'000'000;
  cfg.star.buffer_bytes = 96'000;
  cfg.star.host_delay = topo::star_host_delay_for_rtt(
      250 * sim::kMicrosecond, cfg.star.link_prop);
  cfg.params.rtt_lambda = 256 * sim::kMicrosecond;
  cfg.params.red_threshold_bytes = 32'000;
  cfg.params.codel_target = static_cast<sim::Time>(51.2 * sim::kMicrosecond);
  cfg.params.codel_interval = 1024 * sim::kMicrosecond;
  cfg.tcp.cc = transport::CongestionControl::kDctcp;
  cfg.tcp.rto_min = 10 * sim::kMillisecond;
  cfg.tcp.rto_init = 10 * sim::kMillisecond;
  cfg.tcp.init_cwnd_pkts = 10;
  cfg.num_services = 4;
  cfg.service_workloads = {workload::Kind::kWebSearch};
  cfg.time_limit = 600 * sim::kSecond;
  return cfg;
}

/// Common large-scale configuration (Sec. 6.2): 144-host leaf-spine, 10G,
/// 300KB shared buffer, 8 queues, DCTCP (init window 16, RTOmin 5ms),
/// K = 65 packets ~= 97.5KB, T = 78us; 7 services cycling the 4 workloads.
inline core::FctExperiment leafspine_base() {
  core::FctExperiment cfg;
  cfg.topology = core::FctExperiment::Topology::kLeafSpine;
  cfg.leaf_spine = topo::LeafSpineConfig{};  // paper defaults
  cfg.params.rtt_lambda = 78 * sim::kMicrosecond;
  cfg.params.red_threshold_bytes = 65 * 1'500;
  cfg.params.codel_target = static_cast<sim::Time>(17 * sim::kMicrosecond);
  cfg.params.codel_interval = 341 * sim::kMicrosecond;  // ~4x base RTT
  cfg.tcp.cc = transport::CongestionControl::kDctcp;
  cfg.tcp.rto_min = 5 * sim::kMillisecond;
  cfg.tcp.rto_init = 5 * sim::kMillisecond;
  cfg.tcp.init_cwnd_pkts = 16;
  cfg.num_services = 7;
  cfg.service_workloads = {workload::Kind::kWebSearch,
                           workload::Kind::kDataMining,
                           workload::Kind::kHadoop, workload::Kind::kCache};
  cfg.pias = true;
  // ns-2 convention: every flow is its own TCP connection.
  cfg.persistent_connections = false;
  cfg.time_limit = 600 * sim::kSecond;
  return cfg;
}

}  // namespace tcn::bench
