// Figure 13: queue-count robustness -- Fig. 12's setup with 32 switch queues
// (1 strict + 31 equal-quantum DWRR), ECN*. Flows hash uniformly onto the 31
// service queues while keeping their service's size distribution.
//
// Paper shape: per-queue standard RED degrades further with more queues
// (4478 vs 2469 timeouts at 90% load); TCN's advantage on small flows grows
// (38.7% -> 47.8% lower avg FCT).
#include "figures.hpp"

int main(int argc, char** argv) {
  const auto def = tcn::bench::fig13();
  const auto args = tcn::bench::Args::parse(argc, argv, def.defaults);
  return tcn::bench::run_figure(def, args);
}
