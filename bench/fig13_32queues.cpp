// Figure 13: queue-count robustness -- Fig. 12's setup with 32 switch queues
// (1 strict + 31 equal-quantum DWRR), ECN*. Flows hash uniformly onto the 31
// service queues while keeping their service's size distribution.
//
// Paper shape: per-queue standard RED degrades further with more queues
// (4478 vs 2469 timeouts at 90% load); TCN's advantage on small flows grows
// (38.7% -> 47.8% lower avg FCT).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tcn;
  bench::Args defaults;
  defaults.flows = 2000;  // ~0.75s of arrivals; raise for tighter tails
  defaults.loads = {0.6, 0.9};
  const auto args = bench::Args::parse(argc, argv, defaults);
  auto cfg = bench::leafspine_base();
  cfg.sched.kind = core::SchedKind::kSpDwrr;
  cfg.sched.num_sp = 1;
  cfg.num_service_queues = 31;
  cfg.tcp.cc = transport::CongestionControl::kEcnStar;
  cfg.params.rtt_lambda = 101 * sim::kMicrosecond;
  cfg.params.red_threshold_bytes = 84 * 1'500;
  bench::run_fct_sweep(
      "Fig. 13: leaf-spine, SP1/DWRR31 + PIAS, ECN*, 32 queues", cfg,
      {{"TCN", core::Scheme::kTcn},
       {"CoDel", core::Scheme::kCodel},
       {"RED-queue", core::Scheme::kRedPerQueue}},
      args);
  return 0;
}
