// Figure 11: large-scale leaf-spine, SP (1) / WFQ (7) queues, DCTCP, PIAS.
// Same expectations as Fig. 10 with the WFQ inner scheduler (which MQ-ECN
// cannot serve at all).
#include "figures.hpp"

int main(int argc, char** argv) {
  const auto def = tcn::bench::fig11();
  const auto args = tcn::bench::Args::parse(argc, argv, def.defaults);
  return tcn::bench::run_figure(def, args);
}
