// Figure 11: large-scale leaf-spine, SP (1) / WFQ (7) queues, DCTCP, PIAS.
// Same expectations as Fig. 10 with the WFQ inner scheduler (which MQ-ECN
// cannot serve at all).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tcn;
  bench::Args defaults;
  defaults.flows = 2000;  // ~0.75s of arrivals; raise for tighter tails
  defaults.loads = {0.6, 0.9};
  const auto args = bench::Args::parse(argc, argv, defaults);
  auto cfg = bench::leafspine_base();
  cfg.sched.kind = core::SchedKind::kSpWfq;
  cfg.sched.num_sp = 1;
  bench::run_fct_sweep(
      "Fig. 11: leaf-spine, SP1/WFQ7 + PIAS, DCTCP, 4 workloads x 7 services",
      cfg,
      {{"TCN", core::Scheme::kTcn},
       {"CoDel", core::Scheme::kCodel},
       {"RED-queue", core::Scheme::kRedPerQueue}},
      args);
  return 0;
}
