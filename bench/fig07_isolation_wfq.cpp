// Figure 7: inter-service traffic isolation, WFQ (4 equal-weight queues),
// DCTCP, web search workload. MQ-ECN is excluded: it does not support WFQ
// (no rounds to measure) -- the gap TCN closes.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tcn;
  const auto args = bench::Args::parse(argc, argv, {});
  auto cfg = bench::testbed_base();
  cfg.sched.kind = core::SchedKind::kWfq;
  cfg.num_services = 4;
  bench::run_fct_sweep(
      "Fig. 7: service isolation, WFQ x4, DCTCP, web search (no MQ-ECN: "
      "unsupported scheduler)",
      cfg,
      {{"TCN", core::Scheme::kTcn},
       {"CoDel", core::Scheme::kCodel},
       {"RED-queue", core::Scheme::kRedPerQueue}},
      args);
  return 0;
}
