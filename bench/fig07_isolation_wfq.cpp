// Figure 7: inter-service traffic isolation, WFQ (4 equal-weight queues),
// DCTCP, web search workload. MQ-ECN is excluded: it does not support WFQ
// (no rounds to measure) -- the gap TCN closes.
#include "figures.hpp"

int main(int argc, char** argv) {
  const auto def = tcn::bench::fig07();
  const auto args = tcn::bench::Args::parse(argc, argv, def.defaults);
  return tcn::bench::run_figure(def, args);
}
