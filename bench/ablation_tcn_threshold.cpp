// Ablation A1: TCN threshold sensitivity. T = RTT x lambda is the standard
// setting (Eq. 3); this sweep shows the latency/throughput tradeoff around
// it: smaller T cuts small-flow latency but starts costing large-flow
// throughput; larger T drifts toward standard-RED latency.
#include <cstdio>

#include "bench_util.hpp"

using namespace tcn;

int main(int argc, char** argv) {
  bench::Args defaults;
  defaults.flows = 400;
  defaults.loads = {0.7};
  const auto args = bench::Args::parse(argc, argv, defaults);
  const double load = args.loads[0];

  std::printf("=== Ablation: TCN sojourn threshold sweep (testbed isolation "
              "setup, DWRR x4, web search, load %.0f%%) ===\n\n",
              load * 100);
  std::printf("%10s | %12s | %12s | %12s | %12s | %10s\n", "T (us)",
              "avg all us", "avg small us", "p99 small us", "avg large us",
              "marks");
  for (const sim::Time t_us : {64, 128, 256, 512, 1024}) {
    auto cfg = bench::testbed_base();
    cfg.sched.kind = core::SchedKind::kDwrr;
    cfg.scheme = core::Scheme::kTcn;
    cfg.params.rtt_lambda = t_us * sim::kMicrosecond;
    cfg.load = load;
    cfg.num_flows = args.flows;
    cfg.seed = args.seed;
    const auto report = core::run_fct_experiment(cfg);
    std::printf("%10lld | %12.1f | %12.1f | %12.1f | %12.1f | %10llu\n",
                static_cast<long long>(t_us), report.summary.avg_all_us,
                report.summary.avg_small_us, report.summary.p99_small_us,
                report.summary.avg_large_us,
                static_cast<unsigned long long>(report.switch_marks));
  }
  std::printf("\nExpected shape: small-flow FCT grows with T; large-flow FCT "
              "suffers when T is far below the base RTT\n(premature marks "
              "throttle throughput). T ~= RTT x lambda (256us here) balances "
              "both -- the paper's setting.\n");
  return 0;
}
