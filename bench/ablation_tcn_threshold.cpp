// Ablation A1: TCN threshold sensitivity. T = RTT x lambda is the standard
// setting (Eq. 3); this sweep shows the latency/throughput tradeoff around
// it: smaller T cuts small-flow latency but starts costing large-flow
// throughput; larger T drifts toward standard-RED latency.
//
// The five threshold points are independent runs, so they execute as one
// runner job list across --jobs workers; the printed table is aggregated by
// job index and thus identical for any job count.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace tcn;

int main(int argc, char** argv) {
  bench::Args defaults;
  defaults.flows = 400;
  defaults.loads = {0.7};
  const auto args = bench::Args::parse(argc, argv, defaults);
  const double load = args.loads[0];

  const std::vector<sim::Time> thresholds_us = {64, 128, 256, 512, 1024};
  std::vector<runner::Job> jobs;
  for (const sim::Time t_us : thresholds_us) {
    runner::Job j;
    j.group = "ablation_tcn_threshold";
    j.label = "T=" + std::to_string(t_us) + "us";
    j.cfg = bench::testbed_base();
    j.cfg.sched.kind = core::SchedKind::kDwrr;
    j.cfg.scheme = core::Scheme::kTcn;
    j.cfg.params.rtt_lambda = t_us * sim::kMicrosecond;
    j.cfg.load = load;
    j.cfg.num_flows = args.flows;
    j.cfg.seed = args.seed;
    jobs.push_back(std::move(j));
  }

  const auto res = runner::run_jobs(std::move(jobs), bench::sweep_options(args));
  if (!res.ok()) {
    std::fprintf(stderr, "ablation_tcn_threshold: %zu run(s) failed\n",
                 res.failed);
    return 1;
  }

  std::printf("=== Ablation: TCN sojourn threshold sweep (testbed isolation "
              "setup, DWRR x4, web search, load %.0f%%) ===\n\n",
              load * 100);
  std::printf("%10s | %12s | %12s | %12s | %12s | %10s\n", "T (us)",
              "avg all us", "avg small us", "p99 small us", "avg large us",
              "marks");
  for (std::size_t i = 0; i < res.runs.size(); ++i) {
    const auto& report = res.runs[i].report;
    std::printf("%10lld | %12.1f | %12.1f | %12.1f | %12.1f | %10llu\n",
                static_cast<long long>(thresholds_us[i]),
                report.summary.avg_all_us, report.summary.avg_small_us,
                report.summary.p99_small_us, report.summary.avg_large_us,
                static_cast<unsigned long long>(report.switch_marks));
  }
  std::printf("\nExpected shape: small-flow FCT grows with T; large-flow FCT "
              "suffers when T is far below the base RTT\n(premature marks "
              "throttle throughput). T ~= RTT x lambda (256us here) balances "
              "both -- the paper's setting.\n");
  if (!args.json.empty()) {
    runner::write_json_file(res, "ablation_tcn_threshold", args.json);
  }
  return 0;
}
