// Figure 2: the queue-capacity measurement tradeoff (Sec. 3.3).
//
// 10G star, 11 servers, DWRR with two 18KB-quantum queues, ECN*. 8 flows in
// queue 0 from t=0; 2 more flows join queue 1 at t=10ms, so queue 0's true
// capacity drops to 5Gbps. We trace three estimators of queue 0's capacity:
//   (a) Algorithm 1 with dq_thresh = 40KB  -- few samples, slow convergence
//   (b) Algorithm 1 with dq_thresh = 10KB  -- noisy samples (10KB < 18KB
//       quantum), oscillating well below/at 10Gbps, biased high
//   (c) MQ-ECN's round-time estimate       -- fast and accurate (round-robin
//       schedulers only)
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "rate_trace.hpp"

using namespace tcn;

namespace {

void summarize(const char* name, const bench::RateTrace& t) {
  const auto conv = t.convergence();
  const std::string conv_s =
      conv < 0 ? "never" : std::to_string(conv / sim::kMicrosecond) + "us";
  const std::string total_s =
      t.total_samples > 0 ? std::to_string(t.total_samples) : "cont.";
  std::printf("%-22s | %11zu | %9s | %12s | %8.2f..%-8.2f | %10.2f\n", name,
              t.samples_in_2ms, total_s.c_str(), conv_s.c_str(),
              t.sample_min() / 1e9, t.sample_max() / 1e9,
              t.final_estimate() / 1e9);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, {});
  std::printf(
      "=== Fig. 2: estimating queue 0's capacity after its true share drops "
      "to 5Gbps at t=10ms ===\n(10G, DWRR 2x18KB quanta, ECN*, 8 flows then "
      "+2)\n\n");
  std::printf("%-22s | %11s | %9s | %12s | %18s | %10s\n", "estimator",
              "samples/2ms", "total", "convergence", "sample range Gbps",
              "final Gbps");
  summarize("Alg.1 dq_thresh=40KB", bench::run_rate_trace(40'000, args.seed));
  summarize("Alg.1 dq_thresh=10KB", bench::run_rate_trace(10'000, args.seed));
  summarize("MQ-ECN round time", bench::run_rate_trace(0, args.seed));
  std::printf(
      "\nExpected shape: 40KB -> few samples, slow (multi-ms) convergence; "
      "10KB -> oscillating samples\n(dq_thresh < 18KB quantum) whose smoothed "
      "estimate overshoots 5Gbps; MQ-ECN converges fastest.\n");
  return 0;
}
