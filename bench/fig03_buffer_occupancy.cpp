// Figure 3: switch buffer occupancy under enqueue RED, dequeue RED, and TCN.
//
// 10G star, 9 servers, single queue, ECN*, 8 synchronized long flows.
// Thresholds: K = 125KB (= 10G x 100us) for both RED variants, T = 100us for
// TCN. Paper shape: slow-start peak ~3xBDP (375KB) for enqueue RED and TCN,
// ~2xBDP (250KB) for dequeue RED (it reacts to *future* dequeued packets);
// afterwards all three oscillate between 0 and ~125KB.
#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "stats/timeseries.hpp"
#include "topo/network.hpp"
#include "transport/flow.hpp"

using namespace tcn;

namespace {

struct Result {
  double peak_kb;
  double steady_p50_kb;
  double steady_p95_kb;
  double steady_max_kb;
};

Result run(core::Scheme scheme, std::uint64_t seed) {
  // The figure's occupancy series flows through the observability layer: a
  // periodic sampler publishes into a gauge (whole-run peak via max
  // tracking) and, once past slow start, a log histogram (steady-state
  // percentiles), and the table reads both back from the registry.
  obs::MetricsRegistry registry;
  obs::MetricsRegistry::Scope metrics_scope(registry);

  sim::Simulator simulator;
  core::SchemeParams params;
  params.rtt_lambda = 100 * sim::kMicrosecond;
  params.red_threshold_bytes = 125'000;
  params.seed = seed;
  core::SchedConfig sched;
  sched.kind = core::SchedKind::kFifo;
  sched.num_queues = 1;

  topo::StarConfig star;
  star.num_hosts = 9;
  star.link_rate_bps = 10'000'000'000ULL;
  star.num_queues = 1;
  star.buffer_bytes = 2'000'000;  // big enough to hold the slow-start peak
  star.host_delay =
      topo::star_host_delay_for_rtt(100 * sim::kMicrosecond, star.link_prop);
  auto network =
      topo::build_star(simulator, star, core::make_scheduler_factory(sched),
                       core::make_marker_factory(scheme, params));

  transport::FlowManager fm;
  for (std::size_t h = 1; h <= 8; ++h) {
    transport::FlowSpec spec;
    spec.size = 2'000'000'000ULL;
    spec.tcp.cc = transport::CongestionControl::kEcnStar;
    spec.tcp.init_cwnd_pkts = 16;
    fm.start_flow(network.host(h), network.host(0), spec);
  }

  auto& occupancy = registry.gauge("fig03.occupancy_bytes");
  auto& steady = registry.histogram("fig03.steady_occupancy_bytes");
  stats::PeriodicSampler sampler(simulator, 10 * sim::kMicrosecond, [&] {
    const auto bytes = network.switch_at(0).port(0).total_bytes();
    occupancy.set(static_cast<double>(bytes));
    if (simulator.now() >= 5 * sim::kMillisecond) {
      steady.record(static_cast<std::int64_t>(bytes));
    }
    return static_cast<double>(bytes);
  });
  sampler.start();
  simulator.run(30 * sim::kMillisecond);

  Result r{};
  r.peak_kb = occupancy.max() / 1e3;
  r.steady_p50_kb = steady.quantile(0.5) / 1e3;
  r.steady_p95_kb = steady.quantile(0.95) / 1e3;
  r.steady_max_kb = static_cast<double>(steady.max()) / 1e3;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::parse(argc, argv, {});
  std::printf(
      "=== Fig. 3: buffer occupancy, 10G, 1 queue, ECN*, 8 long flows "
      "(BDP = 125KB) ===\n\n");
  std::printf("%-14s | %10s | %12s | %12s | %12s\n", "scheme", "peak KB",
              "steady p50", "steady p95", "steady max");
  struct Row {
    const char* name;
    core::Scheme scheme;
  };
  for (const auto& row :
       {Row{"RED-enqueue", core::Scheme::kRedPerQueue},
        Row{"RED-dequeue", core::Scheme::kRedDequeue},
        Row{"TCN", core::Scheme::kTcn}}) {
    const auto r = run(row.scheme, args.seed);
    std::printf("%-14s | %10.0f | %12.0f | %12.0f | %12.0f\n", row.name,
                r.peak_kb, r.steady_p50_kb, r.steady_p95_kb, r.steady_max_kb);
  }
  std::printf(
      "\nExpected shape: dequeue RED peaks lowest (~2xBDP); enqueue RED and "
      "TCN peak alike (~3xBDP);\nall three settle into the 0..~125KB "
      "sawtooth.\n");
  return 0;
}
