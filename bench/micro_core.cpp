// Microbenchmarks (google-benchmark): hot-path costs of the simulator and of
// the AQM decision logic. TCN's marking decision should be the cheapest of
// all schemes -- a single compare (Sec. 4.2).
#include <benchmark/benchmark.h>

#include <memory>

#include "aqm/codel.hpp"
#include "aqm/red_ecn.hpp"
#include "aqm/tcn.hpp"
#include "net/fifo_scheduler.hpp"
#include "net/marker.hpp"
#include "net/packet.hpp"
#include "sched/dwrr.hpp"
#include "sched/wfq.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace tcn;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1024; ++i) {
      s.schedule_at((i * 7919) % 10'000, [] {});
    }
    benchmark::DoNotOptimize(s.run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_SelfClockedTimerChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    int remaining = 4096;
    std::function<void()> tick = [&] {
      if (--remaining > 0) s.schedule_in(100, tick);
    };
    s.schedule_at(0, tick);
    s.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SelfClockedTimerChain);

net::MarkContext make_ctx(sim::Time now) {
  return net::MarkContext{.now = now,
                          .queue = 0,
                          .queue_bytes = 20'000,
                          .port_bytes = 40'000,
                          .link_rate_bps = 10'000'000'000ULL};
}

void BM_TcnDecision(benchmark::State& state) {
  aqm::TcnMarker tcn(100 * sim::kMicrosecond);
  auto p = net::make_packet();
  p->size = 1500;
  sim::Time now = 0;
  for (auto _ : state) {
    now += 1'200;
    p->enqueue_ts = now - (now % 200'000);
    benchmark::DoNotOptimize(tcn.on_dequeue(make_ctx(now), *p));
  }
}
BENCHMARK(BM_TcnDecision);

void BM_CodelDecision(benchmark::State& state) {
  aqm::CodelMarker codel(50 * sim::kMicrosecond, 1'000 * sim::kMicrosecond);
  auto p = net::make_packet();
  p->size = 1500;
  sim::Time now = 0;
  for (auto _ : state) {
    now += 1'200;
    p->enqueue_ts = now - (now % 200'000);
    benchmark::DoNotOptimize(codel.on_dequeue(make_ctx(now), *p));
  }
}
BENCHMARK(BM_CodelDecision);

void BM_RedDecision(benchmark::State& state) {
  aqm::RedEcnMarker red(30'000, aqm::RedScope::kPerQueue);
  auto p = net::make_packet();
  p->size = 1500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(red.on_enqueue(make_ctx(0), *p));
  }
}
BENCHMARK(BM_RedDecision);

template <typename MakeSched>
void run_sched_bench(benchmark::State& state, MakeSched make) {
  // One port, 8 queues, continuous backlog: measures enqueue+select+dequeue.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator s;
    std::vector<net::PacketQueue> queues(8);
    auto sched = make();
    sched->bind(&queues, 10'000'000'000ULL);
    state.ResumeTiming();
    for (int round = 0; round < 64; ++round) {
      for (std::size_t q = 0; q < 8; ++q) {
        auto p = net::make_packet();
        p->size = 1500;
        net::Packet& ref = *p;
        queues[q].push(std::move(p));
        sched->on_enqueue(q, ref, round * 10'000);
      }
    }
    for (int i = 0; i < 64 * 8; ++i) {
      const auto q = sched->select(i * 1'200);
      auto p = queues[q].pop();
      sched->on_dequeue(q, *p, i * 1'200);
      benchmark::DoNotOptimize(p->uid);
    }
  }
  state.SetItemsProcessed(state.iterations() * 64 * 8);
}

void BM_DwrrDequeue(benchmark::State& state) {
  run_sched_bench(state, [] {
    return std::make_unique<sched::DwrrScheduler>(
        std::vector<std::uint64_t>(8, 1500));
  });
}
BENCHMARK(BM_DwrrDequeue);

void BM_WfqDequeue(benchmark::State& state) {
  run_sched_bench(state, [] {
    return std::make_unique<sched::WfqScheduler>(std::vector<double>(8, 1.0));
  });
}
BENCHMARK(BM_WfqDequeue);

}  // namespace
