// Hot-path microbenchmarks: the per-event and per-packet costs that bound
// simulation throughput at 10G leaf-spine scale, plus the AQM decision and
// scheduler dequeue costs (TCN's marking decision should be the cheapest of
// all schemes -- a single compare, Sec. 4.2).
//
// Self-contained harness (no google-benchmark): each benchmark reports
// steady-state operations/sec, and --json emits BENCH_micro.json in the
// tcn-bench-1 layout so CI can track the perf trajectory next to
// BENCH_suite.json. The "legacy_*" entries re-measure the pre-refactor
// memory model (std::function event heap + per-packet new/delete + the
// shared_ptr copyable-owner wrapper) inside the same binary, so the
// inline-callback/pool speedup is computed from two numbers recorded in the
// same run on the same machine -- the acceptance gate for the
// zero-allocation refactor is new/legacy >= 1.5x on the event path.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "aqm/codel.hpp"
#include "aqm/red_ecn.hpp"
#include "aqm/tcn.hpp"
#include "net/fifo_scheduler.hpp"
#include "net/host.hpp"
#include "net/marker.hpp"
#include "net/packet.hpp"
#include "net/port.hpp"
#include "net/queue.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "runner/json.hpp"
#include "sched/dwrr.hpp"
#include "sched/wfq.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "traffic/flow_slab.hpp"
#include "transport/tcp.hpp"

namespace {

using namespace tcn;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One benchmark outcome: `ops` total operations over `secs` wall seconds,
/// with throughput taken from the single fastest call (see measure()).
struct BenchResult {
  std::string label;
  std::uint64_t ops = 0;
  double secs = 0.0;
  std::uint64_t ops_per_call = 0;
  double best_call_secs = 0.0;
  // Pool telemetry captured by the packet benchmarks (0 elsewhere).
  std::uint64_t pool_fresh = 0;
  std::uint64_t pool_reused = 0;
  std::uint64_t pool_recycled = 0;

  [[nodiscard]] double ops_per_sec() const {
    return best_call_secs > 0.0
               ? static_cast<double>(ops_per_call) / best_call_secs
               : 0.0;
  }
};

/// Run `body` (which executes `ops_per_call` operations) repeatedly until
/// `min_secs` of measured wall time accumulates; one unmeasured warmup call
/// lets pools/heaps reach steady state first. Throughput is estimated from
/// the *fastest* call -- the minimum-time estimator is robust against
/// scheduler preemption and timer-interrupt noise on a shared/1-CPU box,
/// where a mean would smear those spikes into the result.
template <typename Body>
BenchResult measure(std::string label, std::uint64_t ops_per_call, Body body,
                    double min_secs) {
  body();  // warmup: slab growth, heap-vector growth, branch predictors
  BenchResult r;
  r.label = std::move(label);
  r.ops_per_call = ops_per_call;
  r.best_call_secs = 1e30;
  const auto t0 = Clock::now();
  do {
    const auto c0 = Clock::now();
    body();
    const double call_secs = seconds_since(c0);
    if (call_secs < r.best_call_secs) r.best_call_secs = call_secs;
    r.ops += ops_per_call;
    r.secs = seconds_since(t0);
  } while (r.secs < min_secs);
  return r;
}

// ------------------------------------------------------------ event path ----

/// 32-byte event payload: the realistic hot-path capture (a pooled
/// PacketPtr plus this-pointer and queue index comes to 32 bytes). Big
/// enough to defeat libstdc++'s 16B std::function SBO, i.e. the capture
/// size at which the pre-refactor event path started heap-allocating.
struct Payload {
  std::uint64_t a = 0, b = 0, c = 0, d = 0;
};

/// Faithful replica of the pre-refactor event loop: identical hand-rolled
/// binary heap, identical run-loop bookkeeping (lazy-cancel set probe,
/// event-storm watchdog, executed counter -- all of which the real
/// Simulator still performs), but entries hold std::function<void()> --
/// one heap allocation per scheduled event for any capture beyond 16B,
/// plus the copyable-capture requirement that forced packets through a
/// shared_ptr<PacketPtr> owner. The two loops therefore differ *only* in
/// the event memory model, which is what the speedup gate measures. Kept
/// here (and only here) as the recorded baseline.
class LegacyEventLoop {
 public:
  using Callback = std::function<void()>;

  void schedule(sim::Time at, Callback cb) {
    if (at < now_) std::abort();
    heap_.push_back(Entry{at, next_id_++, std::move(cb)});
    std::size_t i = heap_.size() - 1;
    Entry e = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(e, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(e);
  }

  std::uint64_t run() {
    std::uint64_t count = 0;
    std::uint64_t storm = 0;
    while (!heap_.empty() && !stopped_) {
      Entry top = std::move(heap_.front());
      if (heap_.size() > 1) {
        heap_.front() = std::move(heap_.back());
        heap_.pop_back();
        sift_down(0);
      } else {
        heap_.pop_back();
      }
      if (!cancelled_.empty() && cancelled_.erase(top.id) > 0) continue;
      if (top.at == now_) {
        if (++storm > storm_limit_) std::abort();
      } else {
        storm = 1;
      }
      now_ = top.at;
      ++count;
      ++executed_;
      top.cb();
    }
    return count;
  }

  [[nodiscard]] sim::Time now() const noexcept { return now_; }

 private:
  struct Entry {
    sim::Time at;
    std::uint64_t id;
    Callback cb;
  };

  static bool before(const Entry& a, const Entry& b) noexcept {
    return a.at < b.at || (a.at == b.at && a.id < b.id);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    Entry e = std::move(heap_[i]);
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], e)) break;
      heap_[i] = std::move(heap_[child]);
      i = child;
    }
    heap_[i] = std::move(e);
  }

  sim::Time now_ = 0;
  bool stopped_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t storm_limit_ = 10'000'000;
  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
};

constexpr int kEventBatch = 1024;

/// Classic hold-model benchmark over a bare pending-event container: keep
/// kEventBatch entries pending; each operation pops the minimum and pushes
/// a replacement a pseudo-random near-future delta later (the moving-window
/// distribution a NIC-rate simulator produces). Both queue types run the
/// IDENTICAL driver, so the ratio isolates the container structure -- the
/// calendar's O(1) place/drain against the heap's O(log n) sifts -- with no
/// slot-pool or callback cost diluting it. This is the in-binary baseline
/// pair the event-path CI gate compares (event_path_calendar vs
/// event_path_heap >= 1.5x).
template <typename Queue>
BenchResult bench_event_queue(std::string label, double min_secs) {
  Queue q;
  sim::Time clock = 0;
  std::uint64_t seq = 1;
  for (int i = 0; i < kEventBatch; ++i) {
    q.push(sim::EventEntry{clock + (i * 7919) % 10'000, seq++, 0, 0});
  }
  std::uint64_t sink = 0;
  return measure(
      std::move(label), kEventBatch,
      [&] {
        for (int i = 0; i < kEventBatch; ++i) {
          const sim::EventEntry e = q.pop();
          clock = e.at;
          sink += static_cast<std::uint64_t>(e.at);
          q.push(sim::EventEntry{clock + (i * 7919) % 10'000, seq++, 0, 0});
        }
        if (sink == 0) std::abort();
      },
      min_secs);
}

// Both event benchmarks reuse one loop object across batches so they
// measure the *steady state* -- after the warmup batch the simulator's
// heap, slot pool and free list have all plateaued and every schedule/fire
// is allocation-free, while the legacy loop keeps paying one heap
// allocation per scheduled event (the 32B capture defeats std::function's
// 16B SBO). That per-event malloc/free is precisely the cost the refactor
// removes, so steady state is the honest comparison.
BenchResult bench_event_inline(double min_secs) {
  sim::Simulator s;
  std::uint64_t sink = 0;
  BenchResult r = measure(
      "event_schedule_fire", kEventBatch,
      [&] {
        for (int i = 0; i < kEventBatch; ++i) {
          s.schedule_in((i * 7919) % 10'000,
                        [&sink, p = Payload{1, 2, 3, static_cast<std::uint64_t>(
                                                         i)}] { sink += p.d; });
        }
        s.run();
        if (sink == 0) std::abort();  // defeat dead-code elimination
      },
      min_secs);
  return r;
}

BenchResult bench_event_legacy(double min_secs) {
  LegacyEventLoop s;
  std::uint64_t sink = 0;
  return measure(
      "legacy_event_schedule_fire", kEventBatch,
      [&] {
        for (int i = 0; i < kEventBatch; ++i) {
          s.schedule(s.now() + (i * 7919) % 10'000,
                     [&sink, p = Payload{1, 2, 3, static_cast<std::uint64_t>(
                                                      i)}] { sink += p.d; });
        }
        s.run();
        if (sink == 0) std::abort();
      },
      min_secs);
}

constexpr int kChainLen = 4096;

BenchResult bench_timer_chain(double min_secs) {
  // Self-clocked rescheduling chain -- the RTO/pacing-timer pattern.
  sim::Simulator s;
  int remaining = 0;
  return measure(
      "timer_chain", kChainLen,
      [&] {
        remaining = kChainLen;
        struct Tick {
          sim::Simulator* s;
          int* remaining;
          Payload pad{};
          void operator()() {
            if (--*remaining > 0) s->schedule_in(100, Tick{*this});
          }
        };
        s.schedule_in(0, Tick{&s, &remaining});
        s.run();
        if (remaining != 0) std::abort();
      },
      min_secs);
}

// ----------------------------------------------------------- packet path ----

constexpr int kPacketBatch = 1024;
constexpr int kInFlight = 32;

/// Steady-state packet churn against the per-run pool: hold a small
/// in-flight population (as a port's wire + queues would), release, repeat.
/// After warmup every acquire is a free-list pop -- zero heap traffic.
BenchResult bench_packet_pooled(double min_secs) {
  net::PacketUidScope uids;
  net::PacketPool pool;
  net::PacketPool::Scope scope(pool);
  std::vector<net::PacketPtr> in_flight;
  in_flight.reserve(kInFlight);
  BenchResult r = measure(
      "packet_churn_pooled", kPacketBatch,
      [&] {
        for (int i = 0; i < kPacketBatch / kInFlight; ++i) {
          for (int j = 0; j < kInFlight; ++j) {
            auto p = net::make_packet();
            p->size = 1500;
            in_flight.push_back(std::move(p));
          }
          in_flight.clear();  // recycles the whole population
        }
      },
      min_secs);
  r.pool_fresh = pool.fresh_allocs();
  r.pool_reused = pool.reuses();
  r.pool_recycled = pool.recycles();
  return r;
}

/// The pre-refactor packet path: one new/delete per packet (no pool scope
/// installed), plus the shared_ptr<unique_ptr> copyable-owner wrapper that
/// std::function callbacks forced on every scheduled hop.
BenchResult bench_packet_legacy(double min_secs) {
  net::PacketUidScope uids;
  std::vector<std::shared_ptr<net::PacketPtr>> in_flight;
  in_flight.reserve(kInFlight);
  return measure(
      "legacy_packet_churn_heap", kPacketBatch,
      [&] {
        for (int i = 0; i < kPacketBatch / kInFlight; ++i) {
          for (int j = 0; j < kInFlight; ++j) {
            auto p = net::make_packet();
            p->size = 1500;
            in_flight.push_back(
                std::make_shared<net::PacketPtr>(std::move(p)));
          }
          in_flight.clear();
        }
      },
      min_secs);
}

// -------------------------------------------------------- flow-slab churn ----

constexpr int kFlowBatch = 256;
constexpr int kFlowInFlight = 32;

/// Open-loop flow churn against the FlowSlab: acquire a slot, construct the
/// TcpSink/TcpSender pair into it (recycled ports included), hold a small
/// concurrent population, recycle. After warmup every acquire is a LIFO
/// free-list pop and the TCP objects reconstruct into warm slots -- the
/// steady-state cost of starting one flow in the open-loop engine.
BenchResult bench_flow_slab(double min_secs) {
  sim::Simulator s;
  net::PacketUidScope uids;
  traffic::FlowUidScope fuids;
  net::PortConfig nic;
  nic.rate_bps = 10'000'000'000ULL;
  net::Host src(s, "h0", 1, nic);
  net::Host dst(s, "h1", 2, nic);
  traffic::FlowSlab slab;
  traffic::FlowSlab::Scope scope(slab);
  transport::TcpConfig tcp;
  std::vector<std::uint32_t> in_flight;
  in_flight.reserve(kFlowInFlight);
  BenchResult r = measure(
      "flow_slab_churn", kFlowBatch,
      [&] {
        for (int i = 0; i < kFlowBatch / kFlowInFlight; ++i) {
          for (int j = 0; j < kFlowInFlight; ++j) {
            const std::uint32_t idx = slab.acquire();
            auto& slot = slab.at(idx);
            slot.flow_id = fuids.next();
            slot.size = 10'000;
            slot.src_addr = src.address();
            slot.dst_addr = dst.address();
            slot.sport = slab.checkout_port(src);
            slot.dport = slab.checkout_port(dst);
            slot.sink.emplace(dst, slot.dport, 0);
            slot.sender.emplace(src, dst.address(), slot.sport, slot.dport,
                                slot.flow_id, tcp,
                                transport::constant_dscp(0), 0, nullptr);
            in_flight.push_back(idx);
          }
          for (const auto idx : in_flight) slab.recycle(idx);
          in_flight.clear();
        }
      },
      min_secs);
  r.pool_fresh = slab.fresh_allocs();
  r.pool_reused = slab.reuses();
  r.pool_recycled = slab.recycles();
  return r;
}

/// The closed-loop FlowManager memory model applied to the same churn: one
/// heap-allocated entry per flow, fresh ephemeral ports every time, entry
/// freed (not recycled) at completion. What open-loop runs would pay per
/// flow without the slab.
BenchResult bench_flow_heap(double min_secs) {
  sim::Simulator s;
  net::PacketUidScope uids;
  net::PortConfig nic;
  nic.rate_bps = 10'000'000'000ULL;
  net::Host src(s, "h0", 1, nic);
  net::Host dst(s, "h1", 2, nic);
  transport::TcpConfig tcp;
  struct Entry {
    std::optional<transport::TcpSink> sink;
    std::optional<transport::TcpSender> sender;
  };
  std::uint64_t flow_id = 0;
  std::vector<std::unique_ptr<Entry>> in_flight;
  in_flight.reserve(kFlowInFlight);
  return measure(
      "legacy_flow_heap_churn", kFlowBatch,
      [&] {
        for (int i = 0; i < kFlowBatch / kFlowInFlight; ++i) {
          for (int j = 0; j < kFlowInFlight; ++j) {
            auto e = std::make_unique<Entry>();
            const std::uint16_t sport = src.allocate_port();
            const std::uint16_t dport = dst.allocate_port();
            e->sink.emplace(dst, dport, 0);
            e->sender.emplace(src, dst.address(), sport, dport, ++flow_id,
                              tcp, transport::constant_dscp(0), 0, nullptr);
            in_flight.push_back(std::move(e));
          }
          in_flight.clear();
        }
      },
      min_secs);
}

// ------------------------------------------------------------- port path ----

/// Discards every delivered packet (recycling it into the pool).
class SinkNode final : public net::Node {
 public:
  void receive(net::PacketPtr, std::size_t) override {}
  [[nodiscard]] std::string_view name() const override { return "sink"; }
};

constexpr int kPortBatch = 256;

/// Full enqueue->schedule->serialize->deliver pipeline through one Port.
/// `with_metrics` installs a MetricsRegistry scope for the port's lifetime,
/// so the same binary measures observability compiled-in-but-disabled (the
/// null-handle one-branch discipline) against fully enabled publishing; the
/// disabled/enabled ratio printed at the end is the <3%-overhead gate for
/// the disabled case.
BenchResult bench_port_pipeline(std::string label, bool with_metrics,
                                double min_secs) {
  net::PacketUidScope uids;
  net::PacketPool pool;
  net::PacketPool::Scope scope(pool);
  obs::MetricsRegistry registry;
  std::optional<obs::MetricsRegistry::Scope> metrics_scope;
  if (with_metrics) metrics_scope.emplace(registry);

  sim::Simulator s;
  net::PortConfig cfg;
  cfg.rate_bps = 10'000'000'000ULL;
  net::Port port(s, "bench.p0", cfg, std::make_unique<net::FifoScheduler>(),
                 std::make_unique<net::NullMarker>());
  SinkNode sink;
  port.connect(&sink, 0);
  return measure(
      std::move(label), kPortBatch,
      [&] {
        for (int i = 0; i < kPortBatch; ++i) {
          auto p = net::make_packet();
          p->size = 1500;
          port.enqueue(std::move(p), 0);
        }
        s.run();
      },
      min_secs);
}

/// The obs_off pipeline again, but against the time-series sampler instead
/// of the metrics registry: `with_series` installs a TimeSeries scope (so
/// the port resolves per-queue channels at construction) and re-arms the
/// periodic sampler before every batch. The on/off ratio is the CI gate for
/// the sampler's enabled cost -- the per-dequeue channel accumulation plus
/// the amortized 100us tick events must stay within 5% of the bare
/// pipeline; disabled it is the same null-handle zero as the metrics path.
BenchResult bench_port_timeseries(std::string label, bool with_series,
                                  double min_secs) {
  net::PacketUidScope uids;
  net::PacketPool pool;
  net::PacketPool::Scope scope(pool);
  obs::TimeSeriesConfig ts_cfg;
  ts_cfg.interval = 100 * sim::kMicrosecond;
  std::optional<obs::TimeSeries> series;
  std::optional<obs::TimeSeries::Scope> series_scope;
  if (with_series) {
    series.emplace(ts_cfg);
    series_scope.emplace(*series);
  }

  sim::Simulator s;
  net::PortConfig cfg;
  cfg.rate_bps = 10'000'000'000ULL;
  net::Port port(s, "bench.p2", cfg, std::make_unique<net::FifoScheduler>(),
                 std::make_unique<net::NullMarker>());
  SinkNode sink;
  port.connect(&sink, 0);
  return measure(
      std::move(label), kPortBatch,
      [&] {
        if (series) series->start(s);  // sampler stops when the sim drains
        for (int i = 0; i < kPortBatch; ++i) {
          auto p = net::make_packet();
          p->size = 1500;
          port.enqueue(std::move(p), 0);
        }
        s.run();
      },
      min_secs);
}

/// Same pipeline with a real scheduler/marker pair (DWRR + TCN -- the
/// paper's headline combination) dispatched statically vs pinned to the
/// virtual path via PortConfig::force_virtual_dispatch. Identical traffic,
/// identical state evolution; the only difference is the call mechanism on
/// the five per-packet scheduler/marker hooks.
BenchResult bench_port_dispatch(std::string label, bool force_virtual,
                                double min_secs) {
  net::PacketUidScope uids;
  net::PacketPool pool;
  net::PacketPool::Scope scope(pool);

  sim::Simulator s;
  net::PortConfig cfg;
  cfg.rate_bps = 10'000'000'000ULL;
  cfg.num_queues = 2;
  cfg.force_virtual_dispatch = force_virtual;
  net::Port port(s, "bench.p1", cfg,
                 std::make_unique<sched::DwrrScheduler>(
                     std::vector<std::uint64_t>{1500, 1500}),
                 std::make_unique<aqm::TcnMarker>(100 * sim::kMicrosecond));
  SinkNode sink;
  port.connect(&sink, 0);
  return measure(
      std::move(label), kPortBatch,
      [&] {
        for (int i = 0; i < kPortBatch; ++i) {
          auto p = net::make_packet();
          p->size = 1500;
          p->ecn = net::Ecn::kEct0;
          port.enqueue(std::move(p), i % 2);
        }
        s.run();
      },
      min_secs);
}

// ------------------------------------------------- AQM decision / scheds ----

net::MarkContext make_ctx(sim::Time now) {
  return net::MarkContext{.now = now,
                          .queue = 0,
                          .queue_bytes = 20'000,
                          .port_bytes = 40'000,
                          .link_rate_bps = 10'000'000'000ULL};
}

constexpr int kDecisionBatch = 4096;

template <typename Marker, typename Decide>
BenchResult bench_decision(std::string label, Marker& m, Decide decide,
                           double min_secs) {
  auto p = net::make_packet();
  p->size = 1500;
  sim::Time now = 0;
  std::uint64_t sink = 0;
  BenchResult r = measure(
      std::move(label), kDecisionBatch,
      [&] {
        for (int i = 0; i < kDecisionBatch; ++i) {
          now += 1'200;
          p->enqueue_ts = now - (now % 200'000);
          sink += decide(m, *p, now) ? 1 : 0;
        }
      },
      min_secs);
  if (sink == ~0ULL) std::abort();
  return r;
}

constexpr int kSchedRounds = 64;
constexpr std::size_t kSchedQueues = 8;

template <typename MakeSched>
BenchResult bench_sched(std::string label, MakeSched make, double min_secs) {
  // One port, 8 queues, continuous backlog: enqueue+select+dequeue.
  net::PacketUidScope uids;
  net::PacketPool pool;
  net::PacketPool::Scope scope(pool);
  return measure(
      std::move(label), kSchedRounds * kSchedQueues,
      [&] {
        std::vector<net::PacketQueue> queues(kSchedQueues);
        auto sched = make();
        sched->bind(&queues, 10'000'000'000ULL);
        for (int round = 0; round < kSchedRounds; ++round) {
          for (std::size_t q = 0; q < kSchedQueues; ++q) {
            auto p = net::make_packet();
            p->size = 1500;
            net::Packet& ref = *p;
            queues[q].push(std::move(p));
            sched->on_enqueue(q, ref, round * 10'000);
          }
        }
        std::uint64_t sink = 0;
        for (int i = 0; i < kSchedRounds * static_cast<int>(kSchedQueues);
             ++i) {
          const auto q = sched->select(i * 1'200);
          auto p = queues[q].pop();
          sched->on_dequeue(q, *p, i * 1'200);
          sink += p->uid;
        }
        if (sink == 0) std::abort();
      },
      min_secs);
}

// -------------------------------------------------------------- reporting ----

void write_json(const std::vector<BenchResult>& results, double wall_ms,
                const std::string& path) {
  std::uint64_t total_ops = 0;
  for (const auto& r : results) total_ops += r.ops;

  runner::JsonWriter w;
  w.begin_object();
  w.key("schema").value("tcn-bench-1");
  w.key("name").value("micro");
  w.key("jobs").value(std::size_t{1});
  w.key("wall_ms").value(wall_ms);
  w.key("totals").begin_object();
  w.key("runs").value(results.size());
  w.key("completed").value(results.size());
  w.key("failed").value(std::size_t{0});
  w.key("skipped").value(std::size_t{0});
  w.key("events").value(total_ops);
  w.end_object();
  w.key("runs").begin_array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    w.begin_object();
    w.key("index").value(i);
    w.key("group").value("micro");
    w.key("label").value(r.label);
    w.key("ok").value(true);
    w.key("skipped").value(false);
    w.key("error").value("");
    w.key("counters").begin_object();
    w.key("pool_fresh").value(r.pool_fresh);
    w.key("pool_reused").value(r.pool_reused);
    w.key("pool_recycled").value(r.pool_recycled);
    w.end_object();
    w.key("events").value(r.ops);
    w.key("wall_ms").value(r.secs * 1e3);
    w.key("events_per_sec").value(r.ops_per_sec());
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::string doc = w.str();
  doc += '\n';
  if (path == "-") {
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  double min_secs = 0.3;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--min-time" && i + 1 < argc) {
      min_secs = std::atof(argv[++i]);
    } else if (arg == "--gate") {
      gate = true;
    } else {
      std::fprintf(
          stderr,
          "usage: micro_core [--json PATH|-] [--min-time SECS] [--gate]\n");
      return 2;
    }
  }

  const auto t0 = Clock::now();
  std::vector<BenchResult> results;
  results.push_back(bench_event_inline(min_secs));
  results.push_back(bench_event_legacy(min_secs));
  results.push_back(
      bench_event_queue<sim::CalendarQueue>("event_path_calendar", min_secs));
  results.push_back(
      bench_event_queue<sim::BinaryHeapQueue>("event_path_heap", min_secs));
  results.push_back(bench_timer_chain(min_secs));
  results.push_back(bench_packet_pooled(min_secs));
  results.push_back(bench_packet_legacy(min_secs));
  results.push_back(bench_flow_slab(min_secs));
  results.push_back(bench_flow_heap(min_secs));
  results.push_back(
      bench_port_pipeline("port_pipeline_obs_off", false, min_secs));
  results.push_back(
      bench_port_pipeline("port_pipeline_obs_on", true, min_secs));
  results.push_back(
      bench_port_timeseries("port_pipeline_timeseries_off", false, min_secs));
  results.push_back(
      bench_port_timeseries("port_pipeline_timeseries_on", true, min_secs));
  results.push_back(
      bench_port_dispatch("port_pipeline_static", false, min_secs));
  results.push_back(
      bench_port_dispatch("port_pipeline_virtual", true, min_secs));

  {
    aqm::TcnMarker tcn(100 * sim::kMicrosecond);
    results.push_back(bench_decision(
        "tcn_decision", tcn,
        [](auto& m, net::Packet& p, sim::Time now) {
          return m.on_dequeue(make_ctx(now), p);
        },
        min_secs));
  }
  {
    aqm::CodelMarker codel(50 * sim::kMicrosecond, 1'000 * sim::kMicrosecond);
    results.push_back(bench_decision(
        "codel_decision", codel,
        [](auto& m, net::Packet& p, sim::Time now) {
          return m.on_dequeue(make_ctx(now), p);
        },
        min_secs));
  }
  {
    aqm::RedEcnMarker red(30'000, aqm::RedScope::kPerQueue);
    results.push_back(bench_decision(
        "red_decision", red,
        [](auto& m, net::Packet& p, sim::Time) {
          return m.on_enqueue(make_ctx(0), p);
        },
        min_secs));
  }
  results.push_back(bench_sched(
      "dwrr_dequeue",
      [] {
        return std::make_unique<sched::DwrrScheduler>(
            std::vector<std::uint64_t>(kSchedQueues, 1500));
      },
      min_secs));
  results.push_back(bench_sched(
      "wfq_dequeue",
      [] {
        return std::make_unique<sched::WfqScheduler>(
            std::vector<double>(kSchedQueues, 1.0));
      },
      min_secs));

  const double wall_ms = seconds_since(t0) * 1e3;

  std::printf("%-32s %14s %12s\n", "benchmark", "ops/sec", "ops");
  for (const auto& r : results) {
    std::printf("%-32s %14.0f %12llu\n", r.label.c_str(), r.ops_per_sec(),
                static_cast<unsigned long long>(r.ops));
  }
  const auto find = [&](const char* label) -> const BenchResult* {
    for (const auto& r : results)
      if (r.label == label) return &r;
    return nullptr;
  };
  const auto* ev_new = find("event_schedule_fire");
  const auto* ev_old = find("legacy_event_schedule_fire");
  const auto* pk_new = find("packet_churn_pooled");
  const auto* pk_old = find("legacy_packet_churn_heap");
  if (ev_new && ev_old && ev_old->ops_per_sec() > 0) {
    std::printf("event path speedup (inline vs legacy std::function): %.2fx\n",
                ev_new->ops_per_sec() / ev_old->ops_per_sec());
  }
  if (pk_new && pk_old && pk_old->ops_per_sec() > 0) {
    std::printf("packet path speedup (pooled vs legacy heap):          %.2fx\n",
                pk_new->ops_per_sec() / pk_old->ops_per_sec());
  }
  const auto* fl_new = find("flow_slab_churn");
  const auto* fl_old = find("legacy_flow_heap_churn");
  if (fl_new && fl_old && fl_old->ops_per_sec() > 0) {
    std::printf("flow path speedup (slab vs legacy heap):              %.2fx\n",
                fl_new->ops_per_sec() / fl_old->ops_per_sec());
  }
  const auto* port_off = find("port_pipeline_obs_off");
  const auto* port_on = find("port_pipeline_obs_on");
  if (port_off && port_on && port_off->ops_per_sec() > 0) {
    // obs_off is the production default: metrics compiled in, no registry
    // installed, every publish site one never-taken branch.
    std::printf("port path metrics overhead (enabled vs disabled):     %.1f%%\n",
                (port_off->ops_per_sec() / port_on->ops_per_sec() - 1.0) *
                    100.0);
  }
  const auto* ts_off = find("port_pipeline_timeseries_off");
  const auto* ts_on = find("port_pipeline_timeseries_on");
  double timeseries_overhead = 0.0;
  if (ts_off && ts_on && ts_on->ops_per_sec() > 0) {
    timeseries_overhead = ts_off->ops_per_sec() / ts_on->ops_per_sec() - 1.0;
    std::printf("port path time-series overhead (sampler on vs off):   %.1f%%\n",
                timeseries_overhead * 100.0);
  }
  const auto* eq_cal = find("event_path_calendar");
  const auto* eq_heap = find("event_path_heap");
  double event_queue_ratio = 0.0;
  if (eq_cal && eq_heap && eq_heap->ops_per_sec() > 0) {
    event_queue_ratio = eq_cal->ops_per_sec() / eq_heap->ops_per_sec();
    std::printf("event queue speedup (calendar vs binary heap):        %.2fx\n",
                event_queue_ratio);
  }
  const auto* disp_st = find("port_pipeline_static");
  const auto* disp_vt = find("port_pipeline_virtual");
  if (disp_st && disp_vt && disp_vt->ops_per_sec() > 0) {
    std::printf("port path speedup (static vs virtual dispatch):       %.2fx\n",
                disp_st->ops_per_sec() / disp_vt->ops_per_sec());
  }

  if (!json_path.empty()) write_json(results, wall_ms, json_path);

  if (gate) {
    // CI acceptance: the calendar queue must beat the in-binary heap
    // baseline by >= 1.5x on the event path (same driver, same entries --
    // pure container structure). Dispatch and pipeline ratios are reported
    // above but not gated: they ride on whole-pipeline denominators where
    // run-to-run noise on shared CI boxes exceeds the win being measured.
    constexpr double kEventQueueGate = 1.5;
    if (event_queue_ratio < kEventQueueGate) {
      std::fprintf(stderr,
                   "GATE FAILED: event_path_calendar/event_path_heap = %.2fx "
                   "< %.2fx\n",
                   event_queue_ratio, kEventQueueGate);
      return 1;
    }
    std::printf("gate ok: event queue ratio %.2fx >= %.2fx\n",
                event_queue_ratio, kEventQueueGate);
    // Enabled-sampler acceptance: per-dequeue channel accumulation plus the
    // amortized tick events must cost <= 5% of the bare port pipeline. The
    // pair shares one driver and differs only in the installed scope, so
    // the ratio isolates the sampler (same reasoning as the event gate).
    constexpr double kTimeSeriesOverheadGate = 0.05;
    if (ts_off != nullptr && ts_on != nullptr &&
        timeseries_overhead > kTimeSeriesOverheadGate) {
      std::fprintf(stderr,
                   "GATE FAILED: time-series sampler overhead %.1f%% > "
                   "%.0f%%\n",
                   timeseries_overhead * 100.0,
                   kTimeSeriesOverheadGate * 100.0);
      return 1;
    }
    std::printf("gate ok: time-series sampler overhead %.1f%% <= %.0f%%\n",
                timeseries_overhead * 100.0, kTimeSeriesOverheadGate * 100.0);
  }
  return 0;
}
