#include "pias/pias.hpp"

namespace tcn::pias {

transport::DscpFn two_priority(std::uint8_t high_dscp,
                               std::uint8_t service_dscp,
                               std::uint64_t threshold) {
  return [=](std::uint64_t offset) {
    return offset < threshold ? high_dscp : service_dscp;
  };
}

transport::DscpFn multi_level(std::vector<std::uint64_t> thresholds,
                              std::vector<std::uint8_t> dscps) {
  if (dscps.size() != thresholds.size() + 1) {
    throw std::invalid_argument("pias::multi_level: need N+1 dscps");
  }
  for (std::size_t i = 1; i < thresholds.size(); ++i) {
    if (thresholds[i] <= thresholds[i - 1]) {
      throw std::invalid_argument(
          "pias::multi_level: thresholds must be strictly increasing");
    }
  }
  return [thresholds = std::move(thresholds),
          dscps = std::move(dscps)](std::uint64_t offset) {
    std::size_t level = 0;
    while (level < thresholds.size() && offset >= thresholds[level]) {
      ++level;
    }
    return dscps[level];
  };
}

}  // namespace tcn::pias
