// PIAS (Bai et al., NSDI 2015) flow scheduling tags, as used in Sec. 6.1.3 /
// 6.2: the first `threshold` bytes of every flow (message) go to a shared
// strict-high-priority queue; the remainder returns to the flow's dedicated
// service queue. The testbed uses the two-priority variant with a 100KB
// threshold; the general multi-level demotion ladder is also provided.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "transport/tcp.hpp"

namespace tcn::pias {

/// Default PIAS demotion threshold used throughout the paper.
inline constexpr std::uint64_t kDefaultThresholdBytes = 100'000;

/// Two-priority PIAS: bytes below `threshold` -> `high_dscp`, rest ->
/// `service_dscp`.
transport::DscpFn two_priority(std::uint8_t high_dscp,
                               std::uint8_t service_dscp,
                               std::uint64_t threshold = kDefaultThresholdBytes);

/// General PIAS ladder: `thresholds` are the demotion boundaries (strictly
/// increasing); a byte at offset b gets dscps[i] where i is the number of
/// boundaries <= b. dscps.size() must equal thresholds.size() + 1.
transport::DscpFn multi_level(std::vector<std::uint64_t> thresholds,
                              std::vector<std::uint8_t> dscps);

}  // namespace tcn::pias
