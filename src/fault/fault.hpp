// Fault injection across the simulation stack.
//
// Three fault classes, all schedulable mid-run and all reachable from the
// CLI via --faults:
//
//   - link outages: a downed Port blackholes in-flight and newly submitted
//     packets into its fault_drops counter; ECMP groups steer around dead
//     members and TCP rides out the outage on its (capped) RTO backoff
//   - random per-link packet loss: independent Bernoulli loss, or bursty
//     Gilbert-Elliott two-state loss (the classic model for correlated
//     wireless/link-level corruption), seeded so runs stay reproducible
//   - transient buffer squeezes: shrink a port's shared buffer for a window,
//     modeling a neighbor hogging a shared-memory switch chip
//
// The FaultInjector owns the loss models and schedules the transitions on
// the simulator; a FaultPlan (vector of FaultSpec) is the declarative form
// the CLI parses and the experiment harness applies onto a built topology.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/port.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "topo/network.hpp"

namespace tcn::fault {

/// Independent per-packet loss with probability `p`.
class BernoulliLoss final : public net::LossModel {
 public:
  BernoulliLoss(double p, std::uint64_t seed);

  bool should_drop(const net::Packet& p, sim::Time now) override;
  [[nodiscard]] std::string_view name() const override { return "bernoulli"; }
  [[nodiscard]] double rate() const noexcept { return p_; }

 private:
  double p_;
  sim::Rng rng_;
};

/// Two-state Gilbert-Elliott burst loss: a Good/Bad Markov chain stepped
/// once per packet; packets drop with probability `loss_good` in Good
/// (usually 0) and `loss_bad` in Bad (often 1), so losses arrive in bursts
/// whose mean length is 1 / p_bad_to_good packets.
class GilbertElliottLoss final : public net::LossModel {
 public:
  struct Params {
    double p_good_to_bad = 0.001;
    double p_bad_to_good = 0.1;
    double loss_good = 0.0;
    double loss_bad = 1.0;
  };

  GilbertElliottLoss(Params params, std::uint64_t seed);

  /// Parameterize from an overall target loss rate and a mean burst length
  /// in packets (with loss_good = 0, loss_bad = 1): the stationary Bad-state
  /// probability equals `loss_rate`.
  static Params from_loss_rate(double loss_rate, double mean_burst_pkts);

  bool should_drop(const net::Packet& p, sim::Time now) override;
  [[nodiscard]] std::string_view name() const override {
    return "gilbert-elliott";
  }
  [[nodiscard]] bool in_bad_state() const noexcept { return bad_; }

 private:
  Params params_;
  bool bad_ = false;
  sim::Rng rng_;
};

/// One declarative fault. `target` selects ports by name glob ("leaf*",
/// "spine3.p0", "*.nic", "*" ...) or, for link faults, by the pair form
/// "leafL-spineS" / "<nodeA>-<nodeB>" which downs both directions of the
/// link between the two named nodes.
struct FaultSpec {
  enum class Kind {
    kLinkDown,        ///< start/duration window, both matched directions
    kBernoulliLoss,   ///< rate = loss probability
    kGilbertElliott,  ///< rate = overall loss, burst_pkts = mean burst
    kBufferSqueeze,   ///< buffer_bytes = squeezed shared-buffer cap
  };

  Kind kind = Kind::kLinkDown;
  std::string target;
  sim::Time start = 0;
  sim::Time duration = 0;  ///< 0 = until the end of the run
  double rate = 0.0;
  double burst_pkts = 10.0;
  std::uint64_t buffer_bytes = 0;
};

using FaultPlan = std::vector<FaultSpec>;

/// Parse a ';'-separated --faults string. Grammar (times in ms, floats ok):
///   linkdown:<target>:<start_ms>:<duration_ms>
///   loss:<target>:<p>[:<start_ms>:<duration_ms>]
///   geloss:<target>:<p>[:<burst_pkts>[:<start_ms>:<duration_ms>]]
///   squeeze:<target>:<bytes>:<start_ms>:<duration_ms>
/// Throws std::invalid_argument with a helpful message on bad input.
FaultPlan parse_fault_specs(const std::string& spec);

/// Parse a '|'-separated --fault-grid string into labelled sweep-axis cells:
/// each cell is a complete --faults list, and the literal cell "none" (or an
/// empty cell) is the fault-free plan. The cell text itself is the label, so
/// "none|loss:leaf*:0.01" yields {("none", {}), ("loss:leaf*:0.01", <plan>)}.
/// Throws std::invalid_argument on bad input or an empty grid.
std::vector<std::pair<std::string, FaultPlan>> parse_fault_grid(
    const std::string& grid);

/// `*`/`?` glob match (no character classes), anchored at both ends.
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view text);

/// Every port of `network` (switch egresses and host NICs) whose name
/// matches `target`; for the pair form "a-b", the two ports of the a<->b
/// link. Returns an empty vector when nothing matches.
std::vector<net::Port*> resolve_target(topo::Network& network,
                                       const std::string& target);

/// Schedules fault transitions on concrete ports and owns the loss models;
/// must outlive the simulation run.
class FaultInjector {
 public:
  explicit FaultInjector(sim::Simulator& sim, std::uint64_t seed = 1)
      : sim_(sim), seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Down `port` over [start, start+duration); duration 0 downs it forever.
  void schedule_link_down(net::Port& port, sim::Time start, sim::Time duration);

  /// Attach Bernoulli loss over the window (start 0 = immediately,
  /// duration 0 = rest of the run). One loss model per port: attaching a
  /// second replaces the first at its start time.
  void add_bernoulli_loss(net::Port& port, double p, sim::Time start = 0,
                          sim::Time duration = 0);

  void add_gilbert_elliott(net::Port& port, GilbertElliottLoss::Params params,
                           sim::Time start = 0, sim::Time duration = 0);

  /// Squeeze `port`'s shared buffer to `bytes` over [start, start+duration).
  void schedule_buffer_squeeze(net::Port& port, std::uint64_t bytes,
                               sim::Time start, sim::Time duration);

  /// Resolve and apply every spec in `plan` onto `network`. Returns the
  /// number of (spec, port) applications; throws std::invalid_argument if a
  /// spec matches no port.
  std::size_t apply(topo::Network& network, const FaultPlan& plan);

  [[nodiscard]] std::size_t models_owned() const noexcept {
    return models_.size();
  }

 private:
  void attach_loss_window(net::Port& port, net::LossModel* model,
                          sim::Time start, sim::Time duration);
  std::uint64_t next_seed();

  sim::Simulator& sim_;
  std::uint64_t seed_;
  std::uint64_t models_created_ = 0;
  std::vector<std::unique_ptr<net::LossModel>> models_;
};

}  // namespace tcn::fault
