#include "fault/fault.hpp"

#include <functional>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace tcn::fault {

BernoulliLoss::BernoulliLoss(double p, std::uint64_t seed)
    : p_(p), rng_(seed) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("BernoulliLoss: p must be in [0, 1)");
  }
}

bool BernoulliLoss::should_drop(const net::Packet&, sim::Time) {
  return rng_.bernoulli(p_);
}

GilbertElliottLoss::GilbertElliottLoss(Params params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  for (const double p : {params.p_good_to_bad, params.p_bad_to_good,
                         params.loss_good, params.loss_bad}) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument(
          "GilbertElliottLoss: probabilities must be in [0, 1]");
    }
  }
}

GilbertElliottLoss::Params GilbertElliottLoss::from_loss_rate(
    double loss_rate, double mean_burst_pkts) {
  if (loss_rate < 0.0 || loss_rate >= 1.0) {
    throw std::invalid_argument(
        "GilbertElliottLoss: loss rate must be in [0, 1)");
  }
  if (mean_burst_pkts < 1.0) {
    throw std::invalid_argument(
        "GilbertElliottLoss: mean burst length must be >= 1 packet");
  }
  // With loss_good = 0 and loss_bad = 1 the overall loss rate equals the
  // stationary Bad probability p_gb / (p_gb + p_bg), and the mean Bad dwell
  // time is 1 / p_bg packets.
  Params p;
  p.p_bad_to_good = 1.0 / mean_burst_pkts;
  p.p_good_to_bad = loss_rate == 0.0
                        ? 0.0
                        : p.p_bad_to_good * loss_rate / (1.0 - loss_rate);
  p.loss_good = 0.0;
  p.loss_bad = 1.0;
  return p;
}

bool GilbertElliottLoss::should_drop(const net::Packet&, sim::Time) {
  // Step the chain, then sample the state's loss probability.
  if (bad_) {
    if (rng_.bernoulli(params_.p_bad_to_good)) bad_ = false;
  } else {
    if (rng_.bernoulli(params_.p_good_to_bad)) bad_ = true;
  }
  return rng_.bernoulli(bad_ ? params_.loss_bad : params_.loss_good);
}

bool glob_match(std::string_view pattern, std::string_view text) {
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

namespace {

/// Owner prefix of a port name ("leaf0.p14" -> "leaf0").
std::string_view owner_of(std::string_view port_name) {
  const auto dot = port_name.rfind('.');
  return dot == std::string_view::npos ? port_name : port_name.substr(0, dot);
}

void collect_ports(topo::Network& network,
                   const std::function<void(net::Port&)>& visit) {
  for (std::size_t s = 0; s < network.num_switches(); ++s) {
    net::Switch& sw = network.switch_at(s);
    for (std::size_t p = 0; p < sw.num_ports(); ++p) visit(sw.port(p));
  }
  for (std::size_t h = 0; h < network.num_hosts(); ++h) {
    visit(network.host(h).nic());
  }
}

}  // namespace

std::vector<net::Port*> resolve_target(topo::Network& network,
                                       const std::string& target) {
  std::vector<net::Port*> out;
  const auto dash = target.find('-');
  if (dash != std::string::npos) {
    // Pair form "a-b": both directions of the link between nodes a and b.
    const std::string a = target.substr(0, dash);
    const std::string b = target.substr(dash + 1);
    collect_ports(network, [&](net::Port& port) {
      if (port.peer() == nullptr) return;
      const std::string_view owner = owner_of(port.name());
      const std::string_view peer = port.peer()->name();
      if ((owner == a && peer == b) || (owner == b && peer == a)) {
        out.push_back(&port);
      }
    });
    return out;
  }
  collect_ports(network, [&](net::Port& port) {
    if (glob_match(target, port.name())) out.push_back(&port);
  });
  return out;
}

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream in(s);
  while (std::getline(in, token, sep)) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

double parse_double(const std::string& what, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return d;
  } catch (const std::exception&) {
    throw std::invalid_argument("--faults " + what + ": expected a number, got '" +
                                v + "'");
  }
}

sim::Time ms_to_time(const std::string& what, const std::string& v) {
  const double ms = parse_double(what, v);
  if (ms < 0) {
    throw std::invalid_argument("--faults " + what + ": negative time");
  }
  return static_cast<sim::Time>(ms * sim::kMillisecond);
}

}  // namespace

FaultPlan parse_fault_specs(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& one : split(spec, ';')) {
    const std::vector<std::string> f = split(one, ':');
    if (f.size() < 2) {
      throw std::invalid_argument("--faults: '" + one +
                                  "' needs at least kind:target");
    }
    FaultSpec fs;
    fs.target = f[1];
    const std::string& kind = f[0];
    if (kind == "linkdown") {
      if (f.size() != 4) {
        throw std::invalid_argument(
            "--faults: linkdown:<target>:<start_ms>:<duration_ms>");
      }
      fs.kind = FaultSpec::Kind::kLinkDown;
      fs.start = ms_to_time("linkdown start", f[2]);
      fs.duration = ms_to_time("linkdown duration", f[3]);
    } else if (kind == "loss") {
      if (f.size() != 3 && f.size() != 5) {
        throw std::invalid_argument(
            "--faults: loss:<target>:<p>[:<start_ms>:<duration_ms>]");
      }
      fs.kind = FaultSpec::Kind::kBernoulliLoss;
      fs.rate = parse_double("loss p", f[2]);
      if (f.size() == 5) {
        fs.start = ms_to_time("loss start", f[3]);
        fs.duration = ms_to_time("loss duration", f[4]);
      }
    } else if (kind == "geloss") {
      if (f.size() < 3 || f.size() > 6 || f.size() == 5) {
        throw std::invalid_argument(
            "--faults: "
            "geloss:<target>:<p>[:<burst_pkts>[:<start_ms>:<duration_ms>]]");
      }
      fs.kind = FaultSpec::Kind::kGilbertElliott;
      fs.rate = parse_double("geloss p", f[2]);
      if (f.size() >= 4) fs.burst_pkts = parse_double("geloss burst", f[3]);
      if (f.size() == 6) {
        fs.start = ms_to_time("geloss start", f[4]);
        fs.duration = ms_to_time("geloss duration", f[5]);
      }
    } else if (kind == "squeeze") {
      if (f.size() != 5) {
        throw std::invalid_argument(
            "--faults: squeeze:<target>:<bytes>:<start_ms>:<duration_ms>");
      }
      fs.kind = FaultSpec::Kind::kBufferSqueeze;
      const double bytes = parse_double("squeeze bytes", f[2]);
      if (bytes < 1) {
        throw std::invalid_argument("--faults squeeze: bytes must be >= 1");
      }
      fs.buffer_bytes = static_cast<std::uint64_t>(bytes);
      fs.start = ms_to_time("squeeze start", f[3]);
      fs.duration = ms_to_time("squeeze duration", f[4]);
    } else {
      throw std::invalid_argument(
          "--faults: unknown kind '" + kind +
          "' (linkdown, loss, geloss, squeeze)");
    }
    plan.push_back(std::move(fs));
  }
  if (plan.empty()) {
    throw std::invalid_argument("--faults: empty spec");
  }
  return plan;
}

std::vector<std::pair<std::string, FaultPlan>> parse_fault_grid(
    const std::string& grid) {
  std::vector<std::pair<std::string, FaultPlan>> cells;
  // Hand-rolled split: unlike split(), empty cells are meaningful here
  // (they alias "none"), so getline-with-skip would mislabel "a||b".
  std::string cell;
  for (std::size_t pos = 0; pos <= grid.size(); ++pos) {
    if (pos < grid.size() && grid[pos] != '|') {
      cell += grid[pos];
      continue;
    }
    if (cell.empty() || cell == "none") {
      cells.emplace_back("none", FaultPlan{});
    } else {
      cells.emplace_back(cell, parse_fault_specs(cell));
    }
    cell.clear();
  }
  if (cells.empty()) {
    throw std::invalid_argument("--fault-grid: empty grid");
  }
  return cells;
}

std::uint64_t FaultInjector::next_seed() {
  // splitmix64 step keeps per-model streams decorrelated.
  std::uint64_t x = seed_ + 0x9e3779b97f4a7c15ULL * ++models_created_;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void FaultInjector::schedule_link_down(net::Port& port, sim::Time start,
                                       sim::Time duration) {
  net::Port* p = &port;
  if (start <= sim_.now()) {
    p->set_link_up(false);
  } else {
    sim_.schedule_at(start, [p]() { p->set_link_up(false); });
  }
  if (duration > 0) {
    sim_.schedule_at(start + duration, [p]() { p->set_link_up(true); });
  }
}

void FaultInjector::attach_loss_window(net::Port& port, net::LossModel* model,
                                       sim::Time start, sim::Time duration) {
  net::Port* p = &port;
  if (start <= sim_.now()) {
    p->set_loss_model(model);
  } else {
    sim_.schedule_at(start, [p, model]() { p->set_loss_model(model); });
  }
  if (duration > 0) {
    sim_.schedule_at(start + duration,
                     [p]() { p->set_loss_model(nullptr); });
  }
}

void FaultInjector::add_bernoulli_loss(net::Port& port, double p,
                                       sim::Time start, sim::Time duration) {
  models_.push_back(std::make_unique<BernoulliLoss>(p, next_seed()));
  attach_loss_window(port, models_.back().get(), start, duration);
}

void FaultInjector::add_gilbert_elliott(net::Port& port,
                                        GilbertElliottLoss::Params params,
                                        sim::Time start, sim::Time duration) {
  models_.push_back(std::make_unique<GilbertElliottLoss>(params, next_seed()));
  attach_loss_window(port, models_.back().get(), start, duration);
}

void FaultInjector::schedule_buffer_squeeze(net::Port& port,
                                            std::uint64_t bytes,
                                            sim::Time start,
                                            sim::Time duration) {
  net::Port* p = &port;
  if (start <= sim_.now()) {
    p->set_buffer_limit(bytes);
  } else {
    sim_.schedule_at(start, [p, bytes]() { p->set_buffer_limit(bytes); });
  }
  if (duration > 0) {
    sim_.schedule_at(start + duration, [p]() { p->reset_buffer_limit(); });
  }
}

std::size_t FaultInjector::apply(topo::Network& network,
                                 const FaultPlan& plan) {
  std::size_t applications = 0;
  for (const FaultSpec& spec : plan) {
    const std::vector<net::Port*> ports =
        resolve_target(network, spec.target);
    if (ports.empty()) {
      throw std::invalid_argument("--faults: target '" + spec.target +
                                  "' matches no port");
    }
    for (net::Port* port : ports) {
      switch (spec.kind) {
        case FaultSpec::Kind::kLinkDown:
          schedule_link_down(*port, spec.start, spec.duration);
          break;
        case FaultSpec::Kind::kBernoulliLoss:
          add_bernoulli_loss(*port, spec.rate, spec.start, spec.duration);
          break;
        case FaultSpec::Kind::kGilbertElliott:
          add_gilbert_elliott(
              *port,
              GilbertElliottLoss::from_loss_rate(spec.rate, spec.burst_pkts),
              spec.start, spec.duration);
          break;
        case FaultSpec::Kind::kBufferSqueeze:
          schedule_buffer_squeeze(*port, spec.buffer_bytes, spec.start,
                                  spec.duration);
          break;
      }
      ++applications;
    }
  }
  return applications;
}

}  // namespace tcn::fault
