// Arrival-process primitives for the open-loop traffic engine.
//
// Each sampler answers one question -- "given now, when does the next flow
// arrive?" -- against a caller-owned Rng, so the engine keeps one Rng per
// tenant and jobs=1 vs jobs=N sweeps see identical draws. The diurnal
// schedule is a pure function of sim time; the engine samples it at each
// arrival and passes it down as a rate scale, which makes the non-stationary
// process a standard piecewise-retargeted inhomogeneous-Poisson
// approximation (exact in the limit of arrivals per period -> infinity).
#pragma once

#include <cstdint>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace tcn::traffic {

/// Raised-cosine periodic load factor: min_factor at t = 0 (mod period),
/// peak_factor half a period later, smooth in between.
struct DiurnalSchedule {
  sim::Time period = 0;  ///< 0 = disabled (factor() == 1)
  double min_factor = 1.0;
  double peak_factor = 1.0;

  [[nodiscard]] bool enabled() const noexcept { return period > 0; }
  [[nodiscard]] double factor(sim::Time t) const noexcept;
};

/// Homogeneous Poisson arrivals at `flows_per_sec * scale`.
class PoissonArrivals {
 public:
  explicit PoissonArrivals(double flows_per_sec);

  /// Absolute time of the next arrival, strictly after `now`.
  sim::Time next(sim::Time now, double scale, sim::Rng& rng);

  [[nodiscard]] double flows_per_sec() const noexcept;

 private:
  double rate_per_ns_;
};

/// Markov-modulated Poisson process: a two-state (burst/idle) continuous-time
/// Markov chain with exponential dwell times; arrivals are Poisson at the
/// current state's rate. Parameterized so the long-run average rate equals
/// `flows_per_sec` regardless of burstiness:
///   rate_burst = avg * burst_ratio
///   rate_idle  = avg * (1 - burst_ratio * duty) / (1 - duty)
///   dwell_idle = dwell_burst * (1 - duty) / duty
/// Sampling uses the memoryless-restart construction: draw an exponential
/// gap at the current rate; if it crosses the state boundary, advance to the
/// boundary, flip state and redraw (valid because the exponential is
/// memoryless). Fully deterministic for a given Rng sequence.
class MmppArrivals {
 public:
  struct Params {
    double flows_per_sec = 1.0;  ///< long-run average arrival rate
    double burst_ratio = 4.0;    ///< burst-state multiplier, >= 1
    double duty = 0.25;          ///< long-run fraction of time in burst
    double dwell_burst_s = 0.01; ///< mean burst dwell time, seconds
  };

  explicit MmppArrivals(const Params& p);

  /// Absolute time of the next arrival, strictly after `now`. `scale`
  /// multiplies both state rates (diurnal modulation).
  sim::Time next(sim::Time now, double scale, sim::Rng& rng);

  [[nodiscard]] bool in_burst() const noexcept { return burst_; }
  [[nodiscard]] std::uint64_t transitions() const noexcept {
    return transitions_;
  }

 private:
  double rate_burst_per_ns_;
  double rate_idle_per_ns_;
  double dwell_burst_ns_;
  double dwell_idle_ns_;

  bool started_ = false;
  bool burst_ = false;
  sim::Time state_until_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace tcn::traffic
