#include "traffic/trace_replay.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/json_value.hpp"

namespace tcn::traffic {
namespace {

[[noreturn]] void bad_line(const std::string& path, std::size_t line,
                           const std::string& why) {
  throw std::invalid_argument("trace " + path + ":" + std::to_string(line) +
                              ": " + why);
}

}  // namespace

std::vector<ReplayFlow> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("trace replay: cannot open '" + path + "'");
  }
  std::vector<ReplayFlow> flows;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    obs::JsonValue rec;
    try {
      rec = obs::JsonValue::parse(line);
    } catch (const std::exception& e) {
      bad_line(path, lineno, e.what());
    }
    if (!rec.is_object()) bad_line(path, lineno, "expected a JSON object");
    ReplayFlow f;
    try {
      const double t_s = rec.at("t_s").as_double();
      if (t_s < 0) bad_line(path, lineno, "t_s must be >= 0");
      f.at = sim::from_seconds(t_s);
      f.src = static_cast<std::uint32_t>(rec.at("src").as_u64());
      f.dst = static_cast<std::uint32_t>(rec.at("dst").as_u64());
      f.size = rec.at("size").as_u64();
      if (const obs::JsonValue* s = rec.find("service")) {
        f.service = static_cast<std::uint32_t>(s->as_u64());
      }
      if (const obs::JsonValue* d = rec.find("dscp")) {
        const std::int64_t dscp = d->as_i64();
        if (dscp < 0 || dscp > 63) bad_line(path, lineno, "dscp out of range");
        f.dscp = static_cast<int>(dscp);
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception& e) {
      bad_line(path, lineno, e.what());
    }
    if (f.size == 0) bad_line(path, lineno, "size must be > 0");
    if (f.src == f.dst) bad_line(path, lineno, "src and dst must differ");
    flows.push_back(f);
  }
  std::stable_sort(flows.begin(), flows.end(),
                   [](const ReplayFlow& a, const ReplayFlow& b) {
                     return a.at < b.at;
                   });
  return flows;
}

}  // namespace tcn::traffic
