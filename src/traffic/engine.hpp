// Open-loop flow-arrival engine.
//
// The closed-loop generators in src/workload schedule a fixed flow budget
// and stop; arrival pressure adapts to completions because the budget is
// finite and small. TrafficEngine is the opposite discipline: flows arrive
// on their own clock (Poisson or MMPP per tenant, optionally modulated by a
// diurnal schedule, plus an optional trace replay) whether or not the
// network keeps up. At load factor > 1 the active-flow population grows
// without bound -- by design; the experiment harness pairs the engine with a
// sim::RunBudget pending-event guard so overload terminates as a classified
// failure instead of an OOM.
//
// Memory discipline: all per-flow transport state lives in the per-run
// FlowSlab (installed via FlowSlab::Scope), recycled at completion, so a
// run's heap footprint tracks peak *concurrent* flows while lifetime
// completions run to tens of millions. Flow ids come from the per-run
// FlowUidScope; all randomness is per-tenant seeded, so sweep results are
// byte-identical for any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/host.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "traffic/arrival.hpp"
#include "traffic/flow_slab.hpp"
#include "traffic/spec.hpp"
#include "traffic/trace_replay.hpp"
#include "transport/flow.hpp"
#include "workload/traffic_gen.hpp"

namespace tcn::traffic {

struct EngineConfig {
  /// Offered load as a fraction of the reference capacity. Unlike the
  /// closed-loop generators, values > 1 are legal: sustained overload is
  /// exactly what open-loop experiments exist to create.
  double load = 0.5;
  /// Stop scheduling tenant arrivals after this many (0 = unlimited; trace
  /// replay always runs to the end of the trace).
  std::uint64_t max_flows = 0;
  std::uint64_t seed = 1;
  /// Star converge pattern (hosts[1..] -> hosts[0]) when true; all-to-all
  /// with uniform dst != src otherwise. Mirrors the closed-loop generators.
  bool converge = true;
};

/// Schedules open-loop arrivals against a built topology and recycles flow
/// state through the current FlowSlab. Must outlive the simulation run.
class TrafficEngine {
 public:
  using CompletionCb = std::function<void(const transport::FlowResult&)>;

  /// Requires a FlowSlab::Scope to be installed (throws std::logic_error
  /// otherwise) -- the slab is per-run state owned by the harness, reached
  /// through the scope like PacketPool. Loads the replay trace eagerly so
  /// bad traces fail before the run starts.
  TrafficEngine(sim::Simulator& sim, std::vector<net::Host*> hosts,
                TrafficSpec spec, EngineConfig cfg, workload::SpecFn spec_fn,
                CompletionCb on_complete);

  TrafficEngine(const TrafficEngine&) = delete;
  TrafficEngine& operator=(const TrafficEngine&) = delete;

  /// Schedule the first arrival of every tenant chain and the replay chain.
  void start();

  [[nodiscard]] std::uint64_t arrivals() const noexcept { return arrivals_; }
  [[nodiscard]] std::uint64_t replayed() const noexcept { return replayed_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t active() const noexcept { return active_; }
  [[nodiscard]] std::uint64_t active_peak() const noexcept {
    return active_peak_;
  }
  [[nodiscard]] std::uint64_t offered_bytes() const noexcept {
    return offered_bytes_;
  }
  [[nodiscard]] std::uint64_t achieved_bytes() const noexcept {
    return achieved_bytes_;
  }
  [[nodiscard]] std::uint64_t mmpp_transitions() const noexcept;

 private:
  struct Tenant {
    TenantSpec spec;
    const sim::Ecdf* sizes = nullptr;
    sim::Rng rng;
    std::optional<PoissonArrivals> poisson;
    std::optional<MmppArrivals> mmpp;
    obs::Counter* obs_arrivals = nullptr;

    explicit Tenant(std::uint64_t seed) : rng(seed) {}
  };

  void schedule_tenant(std::size_t tenant);
  void tenant_arrival(std::size_t tenant);
  void schedule_replay(std::size_t index);
  void replay_arrival(std::size_t index);
  void launch(net::Host& src, net::Host& dst, std::uint32_t service,
              std::uint64_t size, int dscp_override);
  void on_flow_complete(std::uint32_t slot, sim::Time fct);
  std::uint64_t next_flow_id();

  sim::Simulator& sim_;
  std::vector<net::Host*> hosts_;
  TrafficSpec spec_;
  EngineConfig cfg_;
  workload::SpecFn spec_fn_;
  CompletionCb on_complete_;
  FlowSlab* slab_;
  DiurnalSchedule diurnal_;

  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<ReplayFlow> replay_;
  std::uint64_t fallback_flow_id_ = 0;  // when no FlowUidScope is installed

  std::uint64_t arrivals_ = 0;  // tenant arrivals + replayed flows
  std::uint64_t replayed_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t active_ = 0;
  std::uint64_t active_peak_ = 0;
  std::uint64_t offered_bytes_ = 0;
  std::uint64_t achieved_bytes_ = 0;

  // Null when metrics collection is off -- the PR 4 zero-cost discipline.
  obs::Counter* obs_arrivals_ = nullptr;
  obs::Counter* obs_completed_ = nullptr;
  obs::Counter* obs_replayed_ = nullptr;
  obs::Counter* obs_offered_bytes_ = nullptr;
  obs::Counter* obs_achieved_bytes_ = nullptr;
  obs::Counter* obs_slab_reuses_ = nullptr;
  obs::Gauge* obs_active_ = nullptr;
};

}  // namespace tcn::traffic
