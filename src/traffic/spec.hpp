// Declarative description of an open-loop traffic scenario.
//
// A TrafficSpec is what the --traffic CLI grammar parses into (parallel to
// fault::FaultPlan and --faults): a set of tenants, each with its own
// flow-size CDF, share of the offered load, arrival process (Poisson or
// bursty MMPP) and optional DSCP override; an optional diurnal load-factor
// schedule modulating every tenant's instantaneous rate; and an optional
// JSONL trace-replay source. The spec is pure data -- traffic::TrafficEngine
// turns it into scheduled arrivals against a built topology.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "workload/distributions.hpp"

namespace tcn::traffic {

/// One tenant of the traffic mix: a flow-size CDF, a share of the offered
/// load, an arrival process, and an optional DSCP class override.
struct TenantSpec {
  enum class Arrival { kPoisson, kMmpp };

  std::string name;
  workload::Kind workload = workload::Kind::kWebSearch;
  double share = 1.0;  ///< relative rate share (normalized over tenants)
  int dscp = -1;       ///< 0..63 tags every packet; -1 = scheme default

  Arrival arrival = Arrival::kPoisson;
  // MMPP parameters (ignored for Poisson). The long-run average rate always
  // equals the tenant's share of the offered load; burst_ratio scales the
  // burst-state rate above it and duty is the long-run fraction of time
  // spent bursting, so the idle-state rate is derived as
  // rate * (1 - burst_ratio * duty) / (1 - duty).
  double burst_ratio = 4.0;  ///< burst-state rate multiplier (>= 1)
  double duty = 0.25;        ///< fraction of time in the burst state, (0,1)
  double dwell_ms = 10.0;    ///< mean burst-state dwell time, ms
};

/// Periodic load-factor schedule (raised cosine): factor(t) swings between
/// min_factor (at t = 0 mod period) and peak_factor (half a period later),
/// multiplying every tenant's instantaneous arrival rate.
struct DiurnalSpec {
  double period_s = 0.0;  ///< 0 = disabled
  double min_factor = 1.0;
  double peak_factor = 1.0;

  [[nodiscard]] bool enabled() const noexcept { return period_s > 0.0; }
};

struct TrafficSpec {
  std::vector<TenantSpec> tenants;
  DiurnalSpec diurnal;
  std::string replay_path;  ///< JSONL flow trace; empty = no replay source

  /// An experiment runs open loop iff the spec has any source.
  [[nodiscard]] bool enabled() const noexcept {
    return !tenants.empty() || !replay_path.empty();
  }
};

/// Parse a ';'-separated --traffic string. Grammar (dscp "-" = scheme
/// default; trailing optional fields may be omitted):
///   poisson:<name>:<workload>:<share>[:<dscp>]
///   mmpp:<name>:<workload>:<share>[:<dscp>[:<burst>[:<duty>[:<dwell_ms>]]]]
///   diurnal:<period_s>:<min_factor>:<peak_factor>
///   replay:<path>
/// <workload> is websearch|datamining|hadoop|cache. At most one diurnal and
/// one replay clause. Throws std::invalid_argument on bad input.
TrafficSpec parse_traffic_spec(const std::string& spec);

/// Parse a '|'-separated --traffic-grid string into labelled sweep-axis
/// cells: each cell is a complete --traffic list and the literal cell "none"
/// (or an empty cell) is the closed-loop baseline (disabled spec). The cell
/// text itself is the label, mirroring fault::parse_fault_grid. Throws
/// std::invalid_argument on bad input or an empty grid.
std::vector<std::pair<std::string, TrafficSpec>> parse_traffic_grid(
    const std::string& grid);

}  // namespace tcn::traffic
