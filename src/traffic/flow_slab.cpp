#include "traffic/flow_slab.hpp"

namespace tcn::traffic {

namespace {
// File-scope TLS (packet.cpp idiom): every access is in this TU, so no
// cross-TU thread_local wrapper is ever emitted.
thread_local FlowUidScope* tls_uid_scope = nullptr;
thread_local FlowSlab* tls_slab = nullptr;
}  // namespace

FlowUidScope::FlowUidScope() noexcept : prev_(tls_uid_scope) {
  tls_uid_scope = this;
}

FlowUidScope::~FlowUidScope() { tls_uid_scope = prev_; }

FlowUidScope* FlowUidScope::current() noexcept { return tls_uid_scope; }

FlowSlab::Scope::Scope(FlowSlab& slab) noexcept : prev_(tls_slab) {
  tls_slab = &slab;
}

FlowSlab::Scope::~Scope() { tls_slab = prev_; }

FlowSlab* FlowSlab::current() noexcept { return tls_slab; }

std::uint32_t FlowSlab::acquire() {
  if (!free_.empty()) {
    const std::uint32_t index = free_.back();
    free_.pop_back();
    ++reused_;
    slots_[index].slab_free = false;
    return index;
  }
  ++fresh_;
  slots_.emplace_back();
  slots_.back().slab_free = false;
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void FlowSlab::recycle(std::uint32_t index) {
  Slot& s = slots_[index];
  if (s.slab_free) {
    ++double_recycled_;
    return;
  }
  // Destroy transport state first: the sender cancels its retransmission
  // timer and both endpoints unbind their ports, so the ports are reusable
  // the moment they enter the free lists below.
  s.sender.reset();
  s.sink.reset();
  ports_[s.src_addr].push_back(s.sport);
  ports_[s.dst_addr].push_back(s.dport);
  s.flow_id = 0;
  s.size = 0;
  s.service = 0;
  s.src_addr = 0;
  s.dst_addr = 0;
  s.sport = 0;
  s.dport = 0;
  s.slab_free = true;
  ++recycled_;
  free_.push_back(index);
}

std::uint16_t FlowSlab::checkout_port(net::Host& host) {
  auto it = ports_.find(host.address());
  if (it != ports_.end() && !it->second.empty()) {
    const std::uint16_t port = it->second.back();
    it->second.pop_back();
    return port;
  }
  return host.allocate_port();
}

}  // namespace tcn::traffic
