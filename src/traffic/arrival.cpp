#include "traffic/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tcn::traffic {
namespace {

constexpr double kPi = 3.14159265358979323846;

double per_ns(double flows_per_sec) {
  return flows_per_sec / static_cast<double>(sim::kSecond);
}

/// Exponential gap in ns at `rate_per_ns`, clamped to >= 1 ns so successive
/// arrivals always advance the integer clock.
sim::Time exp_gap(double rate_per_ns, sim::Rng& rng) {
  const double gap = rng.exponential(1.0 / rate_per_ns);
  return std::max<sim::Time>(1, static_cast<sim::Time>(std::llround(gap)));
}

}  // namespace

double DiurnalSchedule::factor(sim::Time t) const noexcept {
  if (!enabled()) return 1.0;
  const double frac =
      static_cast<double>(t % period) / static_cast<double>(period);
  // Raised cosine: min at frac = 0, peak at frac = 0.5.
  const double blend = 0.5 * (1.0 - std::cos(2.0 * kPi * frac));
  return min_factor + (peak_factor - min_factor) * blend;
}

PoissonArrivals::PoissonArrivals(double flows_per_sec)
    : rate_per_ns_(per_ns(flows_per_sec)) {
  if (!(flows_per_sec > 0)) {
    throw std::invalid_argument("PoissonArrivals: rate must be > 0");
  }
}

double PoissonArrivals::flows_per_sec() const noexcept {
  return rate_per_ns_ * static_cast<double>(sim::kSecond);
}

sim::Time PoissonArrivals::next(sim::Time now, double scale, sim::Rng& rng) {
  return now + exp_gap(rate_per_ns_ * scale, rng);
}

MmppArrivals::MmppArrivals(const Params& p) {
  if (!(p.flows_per_sec > 0)) {
    throw std::invalid_argument("MmppArrivals: rate must be > 0");
  }
  if (p.burst_ratio < 1 || p.duty <= 0 || p.duty >= 1 ||
      p.burst_ratio * p.duty > 1 || p.dwell_burst_s <= 0) {
    throw std::invalid_argument("MmppArrivals: bad burst parameters");
  }
  const double avg = per_ns(p.flows_per_sec);
  rate_burst_per_ns_ = avg * p.burst_ratio;
  rate_idle_per_ns_ = avg * (1.0 - p.burst_ratio * p.duty) / (1.0 - p.duty);
  dwell_burst_ns_ = p.dwell_burst_s * static_cast<double>(sim::kSecond);
  dwell_idle_ns_ = dwell_burst_ns_ * (1.0 - p.duty) / p.duty;
}

sim::Time MmppArrivals::next(sim::Time now, double scale, sim::Rng& rng) {
  if (!started_) {
    // Start in the idle state with a fresh dwell; the first draw below may
    // immediately cross into a burst, so short warmups still burst.
    started_ = true;
    burst_ = false;
    state_until_ =
        now + std::max<sim::Time>(
                  1, static_cast<sim::Time>(rng.exponential(dwell_idle_ns_)));
  }
  sim::Time t = now;
  for (;;) {
    if (t >= state_until_) {
      burst_ = !burst_;
      ++transitions_;
      const double dwell = burst_ ? dwell_burst_ns_ : dwell_idle_ns_;
      state_until_ =
          t + std::max<sim::Time>(
                  1, static_cast<sim::Time>(rng.exponential(dwell)));
      continue;
    }
    const double rate =
        (burst_ ? rate_burst_per_ns_ : rate_idle_per_ns_) * scale;
    if (rate <= 0) {
      // Degenerate idle state (burst_ratio * duty == 1): all arrivals
      // happen inside bursts; skip to the next transition.
      t = state_until_;
      continue;
    }
    const sim::Time gap = exp_gap(rate, rng);
    if (t + gap <= state_until_) return std::max(t + gap, now + 1);
    // Gap crosses the state boundary: restart from it (memoryless).
    t = state_until_;
  }
}

}  // namespace tcn::traffic
