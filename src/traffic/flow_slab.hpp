// Slim per-flow transport state for open-loop runs: tens of millions of
// flows through a bounded working set.
//
// FlowManager keeps every sender/sink ever started alive until teardown --
// fine for a few thousand closed-loop flows, fatal for an open-loop engine
// whose lifetime flow count is unbounded. FlowSlab applies the PR 3
// PacketPool pattern to whole flows: slots live in a std::deque (stable
// addresses), recycled slots go onto a LIFO free list, and the steady-state
// working set is the peak number of *concurrently active* flows, not the
// lifetime arrival count. A slot's TcpSender/TcpSink are destroyed at
// recycle (cancelling timers, unbinding ports, releasing their lazy
// deque/map/ack state) and the next flow reconstructs into the same slot.
//
// Ports recycle too: Host::allocate_port() is a bare uint16 bump that wraps
// after ~64k allocations, so the slab keeps a per-host free list and a
// host's port footprint is bounded by its peak concurrent flows.
//
// Like PacketPool and PacketUidScope, the slab and the flow-uid counter
// install per run via thread-local RAII scopes, so parallel sweep jobs are
// fully isolated and jobs=1 vs jobs=N runs draw identical flow ids.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/host.hpp"
#include "transport/tcp_sender.hpp"
#include "transport/tcp_sink.hpp"

namespace tcn::traffic {

/// Per-run flow-id counter, sibling of net::PacketUidScope. Installed by
/// run_fct_experiment; the engine draws from the innermost scope so ids are
/// per-run deterministic regardless of worker-thread interleaving.
class FlowUidScope {
 public:
  // Out of line next to the thread-local they touch (packet.cpp idiom): an
  // inline ctor in a foreign TU would go through the extern-TLS wrapper,
  // which GCC's sanitizers resolve to null.
  FlowUidScope() noexcept;
  ~FlowUidScope();

  FlowUidScope(const FlowUidScope&) = delete;
  FlowUidScope& operator=(const FlowUidScope&) = delete;

  std::uint64_t next() noexcept { return ++counter_; }
  [[nodiscard]] std::uint64_t issued() const noexcept { return counter_; }

  static FlowUidScope* current() noexcept;

 private:
  std::uint64_t counter_ = 0;
  FlowUidScope* prev_;  ///< shadowed scope restored on destruction
};

class FlowSlab {
 public:
  /// One recyclable flow: transport endpoints plus the metadata the
  /// completion path needs after the sender is gone.
  struct Slot {
    std::optional<transport::TcpSink> sink;
    std::optional<transport::TcpSender> sender;
    std::uint64_t flow_id = 0;
    std::uint64_t size = 0;
    std::uint32_t service = 0;
    std::uint32_t src_addr = 0;
    std::uint32_t dst_addr = 0;
    std::uint16_t sport = 0;
    std::uint16_t dport = 0;
    bool slab_free = true;  ///< double-recycle guard, like Packet::pool_free
  };

  FlowSlab() = default;
  FlowSlab(const FlowSlab&) = delete;
  FlowSlab& operator=(const FlowSlab&) = delete;

  /// Index of a clean slot: LIFO-reused if one is free, freshly grown
  /// otherwise. The caller owns the slot until recycle(index).
  std::uint32_t acquire();

  [[nodiscard]] Slot& at(std::uint32_t index) { return slots_[index]; }

  /// Destroy the slot's transport state (cancels timers, unbinds ports),
  /// return its ports to the per-host free lists and the slot to the slab.
  /// Must not be called from inside the slot's own sender callbacks --
  /// defer via Simulator::schedule_in(0, ...). Double recycles are counted
  /// and dropped, never corrupting the free list.
  void recycle(std::uint32_t index);

  /// A port for `host`, recycled from a completed flow when available.
  std::uint16_t checkout_port(net::Host& host);

  [[nodiscard]] std::uint64_t fresh_allocs() const noexcept { return fresh_; }
  [[nodiscard]] std::uint64_t reuses() const noexcept { return reused_; }
  [[nodiscard]] std::uint64_t recycles() const noexcept { return recycled_; }
  [[nodiscard]] std::uint64_t double_recycles() const noexcept {
    return double_recycled_;
  }
  /// Slots currently held by live flows.
  [[nodiscard]] std::uint64_t live() const noexcept {
    return fresh_ + reused_ - recycled_;
  }
  [[nodiscard]] std::size_t slots() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t free_size() const noexcept { return free_.size(); }

  /// Per-run RAII installation, sibling of net::PacketPool::Scope.
  class Scope {
   public:
    explicit Scope(FlowSlab& slab) noexcept;
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    FlowSlab* prev_;
  };

  static FlowSlab* current() noexcept;

 private:
  std::deque<Slot> slots_;          // stable addresses across growth
  std::vector<std::uint32_t> free_; // LIFO: cache-warm reuse order
  // Host address -> ports released by recycled flows. Keyed by address (a
  // plain u32), not Host*, so the slab never dangles if it outlives a
  // topology in tests.
  std::unordered_map<std::uint32_t, std::vector<std::uint16_t>> ports_;

  std::uint64_t fresh_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t recycled_ = 0;
  std::uint64_t double_recycled_ = 0;
};

}  // namespace tcn::traffic
