#include "traffic/spec.hpp"

#include <stdexcept>
#include <string_view>

namespace tcn::traffic {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

[[noreturn]] void bad(const std::string& clause, const std::string& why) {
  throw std::invalid_argument("--traffic clause '" + clause + "': " + why);
}

double to_double(const std::string& clause, const std::string& field) {
  try {
    std::size_t used = 0;
    const double v = std::stod(field, &used);
    if (used != field.size()) throw std::invalid_argument(field);
    return v;
  } catch (const std::exception&) {
    bad(clause, "bad number '" + field + "'");
  }
}

workload::Kind to_workload(const std::string& clause,
                           const std::string& field) {
  // Accept both the canonical hyphenated name ("web-search") and the
  // compact flag-friendly form ("websearch").
  const auto dehyphenate = [](std::string s) {
    std::string out;
    for (char c : s) {
      if (c != '-') out += c;
    }
    return out;
  };
  for (workload::Kind k : workload::all_kinds()) {
    const std::string canon = workload::name(k);
    if (canon == field || dehyphenate(canon) == field) return k;
  }
  bad(clause, "unknown workload '" + field +
                  "' (want web-search|data-mining|hadoop|cache)");
}

int to_dscp(const std::string& clause, const std::string& field) {
  if (field == "-") return -1;
  const double v = to_double(clause, field);
  const int dscp = static_cast<int>(v);
  if (v != dscp || dscp < 0 || dscp > 63) {
    bad(clause, "dscp must be '-' or an integer in [0, 63]");
  }
  return dscp;
}

// poisson:<name>:<workload>:<share>[:<dscp>]
// mmpp:<name>:<workload>:<share>[:<dscp>[:<burst>[:<duty>[:<dwell_ms>]]]]
TenantSpec parse_tenant(const std::string& clause,
                        const std::vector<std::string>& f, bool mmpp) {
  const std::size_t max_fields = mmpp ? 8 : 5;
  if (f.size() < 4 || f.size() > max_fields) {
    bad(clause, mmpp ? "want mmpp:<name>:<workload>:<share>"
                       "[:<dscp>[:<burst>[:<duty>[:<dwell_ms>]]]]"
                     : "want poisson:<name>:<workload>:<share>[:<dscp>]");
  }
  TenantSpec t;
  t.arrival = mmpp ? TenantSpec::Arrival::kMmpp : TenantSpec::Arrival::kPoisson;
  t.name = f[1];
  if (t.name.empty()) bad(clause, "tenant name must be non-empty");
  t.workload = to_workload(clause, f[2]);
  t.share = to_double(clause, f[3]);
  if (t.share <= 0) bad(clause, "share must be > 0");
  if (f.size() > 4) t.dscp = to_dscp(clause, f[4]);
  if (mmpp) {
    if (f.size() > 5) t.burst_ratio = to_double(clause, f[5]);
    if (f.size() > 6) t.duty = to_double(clause, f[6]);
    if (f.size() > 7) t.dwell_ms = to_double(clause, f[7]);
    if (t.burst_ratio < 1) bad(clause, "burst ratio must be >= 1");
    if (t.duty <= 0 || t.duty >= 1) bad(clause, "duty must be in (0, 1)");
    if (t.burst_ratio * t.duty > 1) {
      bad(clause,
          "burst_ratio * duty must be <= 1 (the idle-state rate "
          "rate*(1-burst*duty)/(1-duty) would go negative)");
    }
    if (t.dwell_ms <= 0) bad(clause, "dwell_ms must be > 0");
  }
  return t;
}

DiurnalSpec parse_diurnal(const std::string& clause,
                          const std::vector<std::string>& f) {
  if (f.size() != 4) {
    bad(clause, "want diurnal:<period_s>:<min_factor>:<peak_factor>");
  }
  DiurnalSpec d;
  d.period_s = to_double(clause, f[1]);
  d.min_factor = to_double(clause, f[2]);
  d.peak_factor = to_double(clause, f[3]);
  if (d.period_s <= 0) bad(clause, "period_s must be > 0");
  if (d.min_factor <= 0) bad(clause, "min_factor must be > 0");
  if (d.peak_factor < d.min_factor) {
    bad(clause, "peak_factor must be >= min_factor");
  }
  return d;
}

}  // namespace

TrafficSpec parse_traffic_spec(const std::string& spec) {
  if (spec.empty()) {
    throw std::invalid_argument("--traffic: empty spec (use --traffic-grid "
                                "cell 'none' for the closed-loop baseline)");
  }
  TrafficSpec out;
  for (const std::string& clause : split(spec, ';')) {
    if (clause.empty()) continue;  // tolerate trailing ';'
    const auto f = split(clause, ':');
    const std::string& kind = f[0];
    if (kind == "poisson" || kind == "mmpp") {
      out.tenants.push_back(parse_tenant(clause, f, kind == "mmpp"));
    } else if (kind == "diurnal") {
      if (out.diurnal.enabled()) bad(clause, "at most one diurnal clause");
      out.diurnal = parse_diurnal(clause, f);
    } else if (kind == "replay") {
      if (!out.replay_path.empty()) bad(clause, "at most one replay clause");
      // Everything after "replay:" is the path verbatim (paths may contain
      // ':' on exotic filesystems, and need no further field splitting).
      if (clause.size() <= 7) bad(clause, "want replay:<path>");
      out.replay_path = clause.substr(7);
    } else {
      bad(clause, "unknown source kind '" + kind +
                      "' (want poisson|mmpp|diurnal|replay)");
    }
  }
  if (!out.enabled()) {
    throw std::invalid_argument(
        "--traffic '" + spec + "': no flow source (diurnal alone schedules "
        "nothing; add a poisson/mmpp tenant or a replay clause)");
  }
  return out;
}

std::vector<std::pair<std::string, TrafficSpec>> parse_traffic_grid(
    const std::string& grid) {
  if (grid.empty()) {
    throw std::invalid_argument("--traffic-grid: empty grid");
  }
  std::vector<std::pair<std::string, TrafficSpec>> cells;
  for (const std::string& cell : split(grid, '|')) {
    if (cell.empty() || cell == "none") {
      cells.emplace_back("none", TrafficSpec{});
    } else {
      cells.emplace_back(cell, parse_traffic_spec(cell));
    }
  }
  return cells;
}

}  // namespace tcn::traffic
