// JSONL flow-trace loading for the trace-replay traffic source.
//
// Trace format (one JSON object per line, parsed with obs::JsonValue):
//   {"t_s": 0.001, "src": 3, "dst": 0, "size": 20480}
// with optional "service" (u32, default 0) and "dscp" (0..63, default -1 =
// scheme default). src/dst are host indices into the built topology;
// validation against the actual host count happens in the engine, which
// knows the topology. Lines are sorted by arrival time (stable, so equal
// timestamps keep file order) and replayed verbatim regardless of --load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace tcn::traffic {

struct ReplayFlow {
  sim::Time at = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t size = 0;
  std::uint32_t service = 0;
  int dscp = -1;
};

/// Load and sort a JSONL flow trace. Throws std::runtime_error when the file
/// is unreadable and std::invalid_argument (with the line number) on a
/// malformed record. Blank lines are tolerated.
std::vector<ReplayFlow> load_trace(const std::string& path);

}  // namespace tcn::traffic
