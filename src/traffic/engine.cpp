#include "traffic/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace tcn::traffic {
namespace {

/// splitmix64 finalizer: decorrelates per-tenant seeds derived from one run
/// seed (same construction the harness uses for queue/fault RNGs).
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t sample_size(const sim::Ecdf& dist, sim::Rng& rng) {
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(dist.sample(rng))));
}

}  // namespace

TrafficEngine::TrafficEngine(sim::Simulator& sim,
                             std::vector<net::Host*> hosts, TrafficSpec spec,
                             EngineConfig cfg, workload::SpecFn spec_fn,
                             CompletionCb on_complete)
    : sim_(sim),
      hosts_(std::move(hosts)),
      spec_(std::move(spec)),
      cfg_(cfg),
      spec_fn_(std::move(spec_fn)),
      on_complete_(std::move(on_complete)),
      slab_(FlowSlab::current()) {
  if (slab_ == nullptr) {
    throw std::logic_error(
        "TrafficEngine: no FlowSlab::Scope installed for this run");
  }
  if (hosts_.size() < 2 || !spec_fn_) {
    throw std::invalid_argument("TrafficEngine: incomplete setup");
  }
  if (!spec_.enabled()) {
    throw std::invalid_argument("TrafficEngine: spec has no flow source");
  }
  if (!spec_.tenants.empty() && !(cfg_.load > 0)) {
    throw std::invalid_argument("TrafficEngine: load must be > 0");
  }
  if (spec_.diurnal.enabled()) {
    diurnal_.period = sim::from_seconds(spec_.diurnal.period_s);
    diurnal_.min_factor = spec_.diurnal.min_factor;
    diurnal_.peak_factor = spec_.diurnal.peak_factor;
  }

  // Reference capacity, mirroring the closed-loop generators: the receiver
  // link for the converge pattern, the aggregate host capacity all-to-all.
  const double link_Bps =
      static_cast<double>(hosts_[0]->nic().config().rate_bps) / 8.0;
  const double ref_Bps =
      cfg_.converge ? link_Bps
                    : link_Bps * static_cast<double>(hosts_.size());

  double total_share = 0.0;
  for (const TenantSpec& t : spec_.tenants) total_share += t.share;
  for (std::size_t i = 0; i < spec_.tenants.size(); ++i) {
    const TenantSpec& ts = spec_.tenants[i];
    auto tenant = std::make_unique<Tenant>(mix_seed(cfg_.seed, i));
    tenant->spec = ts;
    tenant->sizes = &workload::distribution(ts.workload);
    const double flows_per_sec = (ts.share / total_share) * cfg_.load *
                                 ref_Bps / tenant->sizes->mean();
    if (ts.arrival == TenantSpec::Arrival::kMmpp) {
      MmppArrivals::Params p;
      p.flows_per_sec = flows_per_sec;
      p.burst_ratio = ts.burst_ratio;
      p.duty = ts.duty;
      p.dwell_burst_s = ts.dwell_ms / 1e3;
      tenant->mmpp.emplace(p);
    } else {
      tenant->poisson.emplace(flows_per_sec);
    }
    tenants_.push_back(std::move(tenant));
  }

  if (!spec_.replay_path.empty()) {
    replay_ = load_trace(spec_.replay_path);
    for (const ReplayFlow& f : replay_) {
      if (f.src >= hosts_.size() || f.dst >= hosts_.size()) {
        throw std::invalid_argument(
            "trace replay: host index out of range (topology has " +
            std::to_string(hosts_.size()) + " hosts)");
      }
    }
  }

  if (obs::MetricsRegistry* reg = obs::MetricsRegistry::current()) {
    obs_arrivals_ = &reg->counter("traffic/arrivals");
    obs_completed_ = &reg->counter("traffic/completed");
    obs_replayed_ = &reg->counter("traffic/replayed");
    obs_offered_bytes_ = &reg->counter("traffic/offered_bytes");
    obs_achieved_bytes_ = &reg->counter("traffic/achieved_bytes");
    obs_slab_reuses_ = &reg->counter("traffic/slab_reuses");
    obs_active_ = &reg->gauge("traffic/active_flows");
    for (auto& tenant : tenants_) {
      tenant->obs_arrivals =
          &reg->counter("traffic/arrivals." + tenant->spec.name);
    }
  }
}

std::uint64_t TrafficEngine::mmpp_transitions() const noexcept {
  std::uint64_t n = 0;
  for (const auto& tenant : tenants_) {
    if (tenant->mmpp) n += tenant->mmpp->transitions();
  }
  return n;
}

void TrafficEngine::start() {
  for (std::size_t i = 0; i < tenants_.size(); ++i) schedule_tenant(i);
  schedule_replay(0);
}

std::uint64_t TrafficEngine::next_flow_id() {
  if (FlowUidScope* scope = FlowUidScope::current()) return scope->next();
  return ++fallback_flow_id_;
}

void TrafficEngine::schedule_tenant(std::size_t tenant) {
  if (cfg_.max_flows != 0 && arrivals_ - replayed_ >= cfg_.max_flows) return;
  Tenant& t = *tenants_[tenant];
  const double scale = diurnal_.factor(sim_.now());
  const sim::Time at = t.poisson ? t.poisson->next(sim_.now(), scale, t.rng)
                                 : t.mmpp->next(sim_.now(), scale, t.rng);
  sim_.schedule_at(at, [this, tenant] { tenant_arrival(tenant); });
}

void TrafficEngine::tenant_arrival(std::size_t tenant) {
  Tenant& t = *tenants_[tenant];
  net::Host* src;
  net::Host* dst;
  if (cfg_.converge) {
    src = hosts_[t.rng.uniform_int(1, hosts_.size() - 1)];
    dst = hosts_[0];
  } else {
    const std::size_t s = t.rng.uniform_int(0, hosts_.size() - 1);
    std::size_t d = t.rng.uniform_int(0, hosts_.size() - 2);
    if (d >= s) ++d;
    src = hosts_[s];
    dst = hosts_[d];
  }
  const std::uint64_t size = sample_size(*t.sizes, t.rng);
  if (t.obs_arrivals != nullptr) t.obs_arrivals->inc();
  launch(*src, *dst, static_cast<std::uint32_t>(tenant), size, t.spec.dscp);
  schedule_tenant(tenant);
}

void TrafficEngine::schedule_replay(std::size_t index) {
  if (index >= replay_.size()) return;
  // Clamp to now: a trace timestamp in the past (possible after the clamp
  // itself) still replays, in trace order.
  const sim::Time at = std::max(replay_[index].at, sim_.now());
  sim_.schedule_at(at, [this, index] { replay_arrival(index); });
}

void TrafficEngine::replay_arrival(std::size_t index) {
  const ReplayFlow& f = replay_[index];
  ++replayed_;
  if (obs_replayed_ != nullptr) obs_replayed_->inc();
  launch(*hosts_[f.src], *hosts_[f.dst], f.service, f.size, f.dscp);
  schedule_replay(index + 1);
}

void TrafficEngine::launch(net::Host& src, net::Host& dst,
                           std::uint32_t service, std::uint64_t size,
                           int dscp_override) {
  transport::FlowSpec spec = spec_fn_(service, size);
  if (dscp_override >= 0) {
    const auto dscp = static_cast<std::uint8_t>(dscp_override);
    spec.data_dscp = transport::constant_dscp(dscp);
    spec.ack_dscp = dscp;
  }

  const std::uint64_t reuses_before = slab_->reuses();
  const std::uint32_t slot = slab_->acquire();
  if (obs_slab_reuses_ != nullptr && slab_->reuses() != reuses_before) {
    obs_slab_reuses_->inc();
  }
  FlowSlab::Slot& s = slab_->at(slot);
  s.flow_id = next_flow_id();
  s.size = size;
  s.service = service;
  s.src_addr = src.address();
  s.dst_addr = dst.address();
  s.sport = slab_->checkout_port(src);
  s.dport = slab_->checkout_port(dst);
  s.sink.emplace(dst, s.dport, spec.ack_dscp, std::move(spec.on_deliver),
                 transport::TcpSink::Options::from(spec.tcp));
  s.sender.emplace(src, dst.address(), s.sport, s.dport, s.flow_id, spec.tcp,
                   std::move(spec.data_dscp), spec.ack_dscp,
                   [this, slot](sim::Time fct) { on_flow_complete(slot, fct); });

  ++arrivals_;
  ++active_;
  active_peak_ = std::max(active_peak_, active_);
  offered_bytes_ += size;
  if (obs_arrivals_ != nullptr) obs_arrivals_->inc();
  if (obs_offered_bytes_ != nullptr) obs_offered_bytes_->inc(size);
  if (obs_active_ != nullptr) obs_active_->set(static_cast<double>(active_));

  s.sender->start(size);
}

void TrafficEngine::on_flow_complete(std::uint32_t slot, sim::Time fct) {
  FlowSlab::Slot& s = slab_->at(slot);
  transport::FlowResult r;
  r.flow_id = s.flow_id;
  r.size = s.size;
  r.service = s.service;
  r.start = s.sender->start_time();
  r.fct = fct;
  r.timeouts = s.sender->timeouts();

  ++completed_;
  --active_;
  achieved_bytes_ += s.size;
  if (obs_completed_ != nullptr) obs_completed_->inc();
  if (obs_achieved_bytes_ != nullptr) obs_achieved_bytes_->inc(s.size);
  if (obs_active_ != nullptr) obs_active_->set(static_cast<double>(active_));

  if (on_complete_) on_complete_(r);

  // The sender invoking this callback is still executing its ACK path;
  // destroying it here would be use-after-free. Recycle on the next event.
  FlowSlab* slab = slab_;
  sim_.schedule_in(0, [slab, slot] { slab->recycle(slot); });
}

}  // namespace tcn::traffic
