// The four production flow-size distributions of Fig. 4.
//
// Web search (DCTCP, Alizadeh et al.) and data mining (VL2, Greenberg et al.)
// are the standard published CDFs used verbatim across the PIAS / MQ-ECN /
// TCN line of work. Hadoop and cache (Roy et al., "Inside the Social
// Network's (Datacenter) Network") are reconstructed heavy-tailed
// approximations with the byte/flow split the paper describes -- the original
// CDF files were distributed from the paper's (now offline) project page; see
// DESIGN.md "Substitutions".
//
// All distributions are flow-size CDFs in bytes with linear interpolation
// between points (the ns-2 generator convention).
#pragma once

#include <string>
#include <vector>

#include "sim/ecdf.hpp"

namespace tcn::workload {

enum class Kind { kWebSearch, kDataMining, kHadoop, kCache };

/// All four kinds, in the order the paper lists them.
const std::vector<Kind>& all_kinds();

/// Flow-size distribution for a workload (bytes). The returned reference is
/// to a function-local static; it lives for the program duration.
const sim::Ecdf& distribution(Kind k);

std::string name(Kind k);

}  // namespace tcn::workload
