#include "workload/traffic_gen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tcn::workload {
namespace {

std::uint64_t sample_size(const sim::Ecdf& dist, sim::Rng& rng) {
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(dist.sample(rng))));
}

}  // namespace

ConvergeGenerator::ConvergeGenerator(sim::Simulator& sim, FlowLauncher launch,
                                     std::vector<net::Host*> senders,
                                     net::Host* receiver,
                                     const sim::Ecdf* sizes, GenConfig cfg,
                                     SpecFn spec_fn)
    : sim_(sim),
      launch_(std::move(launch)),
      senders_(std::move(senders)),
      receiver_(receiver),
      sizes_(sizes),
      cfg_(cfg),
      spec_fn_(std::move(spec_fn)),
      rng_(cfg.seed) {
  if (senders_.empty() || receiver_ == nullptr || sizes_ == nullptr ||
      !spec_fn_ || !launch_) {
    throw std::invalid_argument("ConvergeGenerator: incomplete setup");
  }
  if (cfg_.load <= 0.0 || cfg_.load > 1.0) {
    throw std::invalid_argument("ConvergeGenerator: load out of (0,1]");
  }
  // load x receiver link rate = mean bytes/sec of offered traffic.
  const double bytes_per_sec =
      cfg_.load *
      static_cast<double>(receiver_->nic().config().rate_bps) / 8.0;
  mean_gap_ = sim::from_seconds(sizes_->mean() / bytes_per_sec);
}

void ConvergeGenerator::start() { schedule_next(); }

void ConvergeGenerator::schedule_next() {
  if (generated_ >= cfg_.num_flows) return;
  const auto gap = static_cast<sim::Time>(
      rng_.exponential(static_cast<double>(mean_gap_)));
  sim_.schedule_in(std::max<sim::Time>(1, gap), [this]() { arrival(); });
}

void ConvergeGenerator::arrival() {
  net::Host* src = senders_[rng_.uniform_int(0, senders_.size() - 1)];
  const auto service = static_cast<std::uint32_t>(
      rng_.uniform_int(0, cfg_.num_services - 1));
  const std::uint64_t size = sample_size(*sizes_, rng_);
  launch_(*src, *receiver_, spec_fn_(service, size));
  ++generated_;
  schedule_next();
}

AllToAllGenerator::AllToAllGenerator(sim::Simulator& sim, FlowLauncher launch,
                                     std::vector<net::Host*> hosts,
                                     std::vector<const sim::Ecdf*> dists,
                                     GenConfig cfg, ServiceFn service_of,
                                     SpecFn spec_fn)
    : sim_(sim),
      launch_(std::move(launch)),
      hosts_(std::move(hosts)),
      dists_(std::move(dists)),
      cfg_(cfg),
      service_of_(std::move(service_of)),
      spec_fn_(std::move(spec_fn)),
      rng_(cfg.seed) {
  if (hosts_.size() < 2 || dists_.empty() || !service_of_ || !spec_fn_ ||
      !launch_) {
    throw std::invalid_argument("AllToAllGenerator: incomplete setup");
  }
  if (cfg_.load <= 0.0 || cfg_.load > 1.0) {
    throw std::invalid_argument("AllToAllGenerator: load out of (0,1]");
  }
  for (const auto* d : dists_) {
    if (d == nullptr) {
      throw std::invalid_argument("AllToAllGenerator: null distribution");
    }
  }
  // Services are (approximately) equally likely under a uniform pair choice,
  // so the offered-load calculation uses the mean of the service means.
  double mix_mean = 0.0;
  for (const auto* d : dists_) mix_mean += d->mean();
  mix_mean /= static_cast<double>(dists_.size());

  const double per_host_Bps =
      cfg_.load * static_cast<double>(hosts_[0]->nic().config().rate_bps) /
      8.0;
  const double flows_per_sec =
      static_cast<double>(hosts_.size()) * per_host_Bps / mix_mean;
  mean_gap_ = sim::from_seconds(1.0 / flows_per_sec);
}

void AllToAllGenerator::start() { schedule_next(); }

void AllToAllGenerator::schedule_next() {
  if (generated_ >= cfg_.num_flows) return;
  const auto gap = static_cast<sim::Time>(
      rng_.exponential(static_cast<double>(mean_gap_)));
  sim_.schedule_in(std::max<sim::Time>(1, gap), [this]() { arrival(); });
}

void AllToAllGenerator::arrival() {
  const std::size_t src = rng_.uniform_int(0, hosts_.size() - 1);
  std::size_t dst = rng_.uniform_int(0, hosts_.size() - 2);
  if (dst >= src) ++dst;
  const std::uint32_t service = service_of_(src, dst) %
                                static_cast<std::uint32_t>(dists_.size());
  const std::uint64_t size = sample_size(*dists_[service], rng_);
  launch_(*hosts_[src], *hosts_[dst], spec_fn_(service, size));
  ++generated_;
  schedule_next();
}

}  // namespace tcn::workload
