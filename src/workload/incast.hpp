// Incast (partition/aggregate) workload: the bursty pattern behind the
// paper's burst-tolerance claims (Sec. 4.3: TCN's instantaneous marking
// reacts faster than CoDel's windowed minimum; Sec. 6.1: fewer timeouts).
//
// A query fans out to `fanout` servers simultaneously; each responds with
// `response_bytes`; the query completes when every response has been
// delivered. Query completion time (QCT) is the metric, and a single lost
// tail packet inflates it by a full RTOmin -- the classic incast collapse.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/host.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "transport/flow.hpp"
#include "workload/traffic_gen.hpp"

namespace tcn::workload {

struct IncastConfig {
  std::uint32_t fanout = 8;             ///< servers per query
  std::uint64_t response_bytes = 64'000;  ///< per-server response
  std::size_t num_queries = 100;
  sim::Time interval = 10 * sim::kMillisecond;  ///< query inter-arrival
  std::uint64_t seed = 1;
};

struct QueryResult {
  std::uint64_t query_id = 0;
  sim::Time start = 0;
  sim::Time qct = 0;           ///< completion of the slowest response
  std::uint32_t timeouts = 0;  ///< TCP timeouts across the fan-in
};

/// Drives synchronized fan-in queries from `servers` to `client`.
class IncastGenerator {
 public:
  using QueryCb = std::function<void(const QueryResult&)>;

  /// `spec_fn(server_index)` builds the per-response FlowSpec (TCP config and
  /// DSCP); the generator overrides size and completion tracking.
  IncastGenerator(sim::Simulator& sim, FlowLauncher launch,
                  std::vector<net::Host*> servers, net::Host* client,
                  IncastConfig cfg, SpecFn spec_fn, QueryCb on_query_done);

  void start();

  [[nodiscard]] std::size_t queries_issued() const noexcept { return issued_; }
  [[nodiscard]] const std::vector<QueryResult>& results() const noexcept {
    return results_;
  }

 private:
  struct PendingQuery {
    QueryResult result;
    std::uint32_t outstanding = 0;
  };

  void issue_query();

  sim::Simulator& sim_;
  FlowLauncher launch_;
  std::vector<net::Host*> servers_;
  net::Host* client_;
  IncastConfig cfg_;
  SpecFn spec_fn_;
  QueryCb on_query_done_;
  sim::Rng rng_;
  std::size_t issued_ = 0;
  std::uint64_t next_query_id_ = 1;
  std::vector<std::unique_ptr<PendingQuery>> pending_;
  std::vector<QueryResult> results_;
};

}  // namespace tcn::workload
