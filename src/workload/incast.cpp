#include "workload/incast.hpp"

#include <memory>
#include <stdexcept>

namespace tcn::workload {

IncastGenerator::IncastGenerator(sim::Simulator& sim, FlowLauncher launch,
                                 std::vector<net::Host*> servers,
                                 net::Host* client, IncastConfig cfg,
                                 SpecFn spec_fn, QueryCb on_query_done)
    : sim_(sim),
      launch_(std::move(launch)),
      servers_(std::move(servers)),
      client_(client),
      cfg_(cfg),
      spec_fn_(std::move(spec_fn)),
      on_query_done_(std::move(on_query_done)),
      rng_(cfg.seed) {
  if (servers_.empty() || client_ == nullptr || !launch_ || !spec_fn_) {
    throw std::invalid_argument("IncastGenerator: incomplete setup");
  }
  if (cfg_.fanout == 0 || cfg_.fanout > servers_.size()) {
    throw std::invalid_argument("IncastGenerator: fanout out of range");
  }
  if (cfg_.response_bytes == 0) {
    throw std::invalid_argument("IncastGenerator: zero response size");
  }
}

void IncastGenerator::start() {
  if (issued_ < cfg_.num_queries) {
    sim_.schedule_in(cfg_.interval, [this]() { issue_query(); });
  }
}

void IncastGenerator::issue_query() {
  auto query = std::make_unique<PendingQuery>();
  query->result.query_id = next_query_id_++;
  query->result.start = sim_.now();
  query->outstanding = cfg_.fanout;
  PendingQuery* q = query.get();
  pending_.push_back(std::move(query));

  // Choose `fanout` distinct servers (partial Fisher-Yates over indices).
  std::vector<std::size_t> idx(servers_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (std::uint32_t k = 0; k < cfg_.fanout; ++k) {
    const auto j = rng_.uniform_int(k, idx.size() - 1);
    std::swap(idx[k], idx[j]);
  }

  for (std::uint32_t k = 0; k < cfg_.fanout; ++k) {
    transport::FlowSpec spec = spec_fn_(/*service=*/0, cfg_.response_bytes);
    spec.size = cfg_.response_bytes;
    // Wrap any caller-provided completion hook to track the fan-in.
    spec.on_deliver = nullptr;
    const auto wrapped = [this, q](const transport::FlowResult& r) {
      q->result.timeouts += r.timeouts;
      if (--q->outstanding == 0) {
        q->result.qct = sim_.now() - q->result.start;
        results_.push_back(q->result);
        if (on_query_done_) on_query_done_(q->result);
      }
    };
    // The launcher reports completions through the FlowSpec's owner
    // (FlowManager / ConnectionPool callbacks); we piggyback by spawning a
    // dedicated FlowManager-compatible spec: completion routing is the
    // launcher's job, so we pass the hook via spec metadata.
    spec.on_complete = wrapped;
    launch_(*servers_[idx[k]], *client_, std::move(spec));
  }

  ++issued_;
  start();
}

}  // namespace tcn::workload
