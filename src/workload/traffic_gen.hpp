// Poisson traffic generators.
//
// ConvergeGenerator reproduces the testbed client/server application
// (Sec. 6.1.2): flows arrive as a Poisson process, each fetching data from a
// uniformly chosen sender to one receiver; `load` is the offered fraction of
// the receiver's link capacity.
//
// AllToAllGenerator reproduces the large-scale setup (Sec. 6.2): every host
// injects Poisson flow arrivals at `load` x its link rate, destinations
// uniform over other hosts, with the (src,dst) pair determining the service
// and therefore the flow-size distribution.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/host.hpp"
#include "sim/ecdf.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "transport/flow.hpp"

namespace tcn::workload {

/// Starts a flow/message from src to dst -- bind this to
/// FlowManager::start_flow (one connection per flow, the ns-2 model) or
/// ConnectionPool::submit (persistent connections, the testbed model).
using FlowLauncher =
    std::function<void(net::Host& src, net::Host& dst, transport::FlowSpec)>;

/// Builds the FlowSpec (TCP config, DSCP tagging, delivery hooks) for a flow
/// of `size` bytes in service `service`.
using SpecFn =
    std::function<transport::FlowSpec(std::uint32_t service, std::uint64_t size)>;

struct GenConfig {
  double load = 0.5;        ///< offered load as a fraction of the reference link
  std::size_t num_flows = 1000;
  std::uint32_t num_services = 1;
  std::uint64_t seed = 1;
};

class ConvergeGenerator {
 public:
  ConvergeGenerator(sim::Simulator& sim, FlowLauncher launch,
                    std::vector<net::Host*> senders, net::Host* receiver,
                    const sim::Ecdf* sizes, GenConfig cfg, SpecFn spec_fn);

  /// Begin generating; the first arrival is one inter-arrival gap from now.
  void start();

  [[nodiscard]] std::size_t flows_generated() const noexcept {
    return generated_;
  }
  /// Mean inter-arrival gap implied by the configured load, in ns.
  [[nodiscard]] sim::Time mean_gap() const noexcept { return mean_gap_; }

 private:
  void arrival();
  void schedule_next();

  sim::Simulator& sim_;
  FlowLauncher launch_;
  std::vector<net::Host*> senders_;
  net::Host* receiver_;
  const sim::Ecdf* sizes_;
  GenConfig cfg_;
  SpecFn spec_fn_;
  sim::Rng rng_;
  sim::Time mean_gap_ = 0;
  std::size_t generated_ = 0;
};

class AllToAllGenerator {
 public:
  /// `service_of(src_idx, dst_idx)` partitions host pairs into services;
  /// `dists[s]` is service s's flow-size distribution.
  using ServiceFn = std::function<std::uint32_t(std::size_t, std::size_t)>;

  AllToAllGenerator(sim::Simulator& sim, FlowLauncher launch,
                    std::vector<net::Host*> hosts,
                    std::vector<const sim::Ecdf*> dists, GenConfig cfg,
                    ServiceFn service_of, SpecFn spec_fn);

  void start();

  [[nodiscard]] std::size_t flows_generated() const noexcept {
    return generated_;
  }
  [[nodiscard]] sim::Time mean_gap() const noexcept { return mean_gap_; }

 private:
  void arrival();
  void schedule_next();

  sim::Simulator& sim_;
  FlowLauncher launch_;
  std::vector<net::Host*> hosts_;
  std::vector<const sim::Ecdf*> dists_;
  GenConfig cfg_;
  ServiceFn service_of_;
  SpecFn spec_fn_;
  sim::Rng rng_;
  sim::Time mean_gap_ = 0;
  std::size_t generated_ = 0;
};

}  // namespace tcn::workload
