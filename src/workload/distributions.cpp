#include "workload/distributions.hpp"

#include <stdexcept>

namespace tcn::workload {
namespace {

using Point = sim::Ecdf::Point;

sim::Ecdf make_web_search() {
  // DCTCP web search workload; points in KB from the standard CDF file,
  // converted to bytes. ~60% of bytes come from flows < 10MB (Sec. 6,
  // "Benchmark traffic").
  return sim::Ecdf(
      {
          {1'000, 0.00},     {6'000, 0.15},    {13'000, 0.20},
          {19'000, 0.30},    {33'000, 0.40},   {53'000, 0.53},
          {133'000, 0.60},   {667'000, 0.70},  {1'467'000, 0.80},
          {3'333'000, 0.90}, {6'667'000, 0.97}, {20'000'000, 1.00},
      },
      "web-search");
}

sim::Ecdf make_data_mining() {
  // VL2 data mining workload: ~80% of flows are tiny (<10KB) while a handful
  // of huge flows carry almost all bytes.
  return sim::Ecdf(
      {
          {1'000, 0.00},      {2'000, 0.50},      {3'000, 0.60},
          {7'000, 0.70},      {267'000, 0.80},    {2'107'000, 0.90},
          {66'667'000, 0.95}, {666'667'000, 1.00},
      },
      "data-mining");
}

sim::Ecdf make_hadoop() {
  // Reconstruction of the Facebook Hadoop workload (Roy et al. 2015):
  // mostly sub-100KB shuffle chunks with a long tail of multi-hundred-MB
  // transfers.
  return sim::Ecdf(
      {
          {150, 0.00},         {1'000, 0.20},      {10'000, 0.50},
          {100'000, 0.70},     {1'000'000, 0.85},  {10'000'000, 0.95},
          {100'000'000, 0.99}, {1'000'000'000, 1.00},
      },
      "hadoop");
}

sim::Ecdf make_cache() {
  // Reconstruction of the Facebook cache-follower workload (Roy et al.
  // 2015): dominated by small object fetches, capped at tens of MB.
  return sim::Ecdf(
      {
          {300, 0.00},      {1'000, 0.30},     {2'000, 0.50},
          {5'000, 0.70},    {10'000, 0.80},    {100'000, 0.90},
          {1'000'000, 0.97}, {10'000'000, 1.00},
      },
      "cache");
}

}  // namespace

const std::vector<Kind>& all_kinds() {
  static const std::vector<Kind> kinds = {Kind::kWebSearch, Kind::kDataMining,
                                          Kind::kHadoop, Kind::kCache};
  return kinds;
}

const sim::Ecdf& distribution(Kind k) {
  static const sim::Ecdf web = make_web_search();
  static const sim::Ecdf mining = make_data_mining();
  static const sim::Ecdf hadoop = make_hadoop();
  static const sim::Ecdf cache = make_cache();
  switch (k) {
    case Kind::kWebSearch: return web;
    case Kind::kDataMining: return mining;
    case Kind::kHadoop: return hadoop;
    case Kind::kCache: return cache;
  }
  throw std::invalid_argument("workload::distribution: bad kind");
}

std::string name(Kind k) {
  switch (k) {
    case Kind::kWebSearch: return "web-search";
    case Kind::kDataMining: return "data-mining";
    case Kind::kHadoop: return "hadoop";
    case Kind::kCache: return "cache";
  }
  throw std::invalid_argument("workload::name: bad kind");
}

}  // namespace tcn::workload
