// Network container and the two topologies of the evaluation.
//
// Star: N hosts on one switch -- the 9-server testbed (Sec. 6.1) and the
// single-switch simulation setups (Fig. 2, Fig. 3).
//
// Leaf-spine: 12 leaves x 12 spines x 144 hosts, non-blocking, ECMP
// (Sec. 6.2). Every switch egress port (host-facing and fabric-facing) runs
// the configured scheduler and marker, so ECN operates at every hop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/host.hpp"
#include "net/marker.hpp"
#include "net/scheduler.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace tcn::topo {

/// Creates one scheduler instance per switch port.
using SchedulerFactory = std::function<std::unique_ptr<net::Scheduler>()>;

/// Creates one marker per switch port. Receives the port's (already
/// constructed) scheduler so schemes like MQ-ECN can hook its round state,
/// plus the port config for link-rate-derived thresholds.
using MarkerFactory = std::function<std::unique_ptr<net::Marker>(
    net::Scheduler&, const net::PortConfig&)>;

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(&sim) {}

  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  [[nodiscard]] net::Host& host(std::size_t i) { return *hosts_.at(i); }
  [[nodiscard]] net::Switch& switch_at(std::size_t i) {
    return *switches_.at(i);
  }
  [[nodiscard]] std::size_t num_hosts() const noexcept { return hosts_.size(); }
  [[nodiscard]] std::size_t num_switches() const noexcept {
    return switches_.size();
  }
  [[nodiscard]] std::vector<net::Host*> host_ptrs();
  [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }

  // Builder access.
  net::Host& add_host(std::unique_ptr<net::Host> h);
  net::Switch& add_switch(std::unique_ptr<net::Switch> s);

 private:
  sim::Simulator* sim_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<net::Switch>> switches_;
};

struct StarConfig {
  std::size_t num_hosts = 9;
  std::uint64_t link_rate_bps = 1'000'000'000;
  std::size_t num_queues = 4;
  std::uint64_t buffer_bytes = 96'000;  ///< shared per switch port
  sim::Time host_delay = 61 * sim::kMicrosecond;
  sim::Time link_prop = 1 * sim::kMicrosecond;
  /// Sec. 5 rate limiter on switch egress (0.995 on the testbed).
  double switch_rate_fraction = 1.0;
  /// Host NIC/qdisc transmit queue (ns-2 style drop-tail, ~100 packets).
  /// A finite host queue is what keeps self-bottlenecked senders from
  /// bufferbloating their own NIC.
  std::uint64_t host_buffer_bytes = 150'000;
  /// Optional per-host NIC rate override (index = host). Hosts beyond the
  /// vector (or with a 0 entry) use link_rate_bps. Models application/sender
  /// rate limits such as the 500Mbps flow of Fig. 5a.
  std::vector<std::uint64_t> host_rates;
};

/// Build an N-host star. Host i has address i; switch port i faces host i.
Network build_star(sim::Simulator& sim, const StarConfig& cfg,
                   const SchedulerFactory& sched_factory,
                   const MarkerFactory& marker_factory);

struct LeafSpineConfig {
  std::size_t num_leaves = 12;
  std::size_t num_spines = 12;
  std::size_t hosts_per_leaf = 12;
  std::uint64_t link_rate_bps = 10'000'000'000ULL;
  std::size_t num_queues = 8;
  std::uint64_t buffer_bytes = 300'000;  ///< shared per switch port
  sim::Time host_delay = 20 * sim::kMicrosecond;  ///< 80us/RTT at end hosts
  sim::Time link_prop = 650;  ///< 0.65us/link => 5.2us/RTT over 4 hops
  /// Host NIC/qdisc transmit queue (~300 packets at 10G).
  std::uint64_t host_buffer_bytes = 450'000;
};

/// Build the 144-host leaf-spine fabric. Host h sits under leaf
/// h / hosts_per_leaf; uplink routing is ECMP across all spines.
Network build_leaf_spine(sim::Simulator& sim, const LeafSpineConfig& cfg,
                         const SchedulerFactory& sched_factory,
                         const MarkerFactory& marker_factory);

/// Host stack delay that makes a star topology's base RTT (small packets,
/// empty queues) approximately `target`.
sim::Time star_host_delay_for_rtt(sim::Time target, sim::Time link_prop);

}  // namespace tcn::topo
