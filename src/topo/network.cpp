#include "topo/network.hpp"

#include <stdexcept>
#include <string>

namespace tcn::topo {

std::vector<net::Host*> Network::host_ptrs() {
  std::vector<net::Host*> out;
  out.reserve(hosts_.size());
  for (auto& h : hosts_) out.push_back(h.get());
  return out;
}

net::Host& Network::add_host(std::unique_ptr<net::Host> h) {
  hosts_.push_back(std::move(h));
  return *hosts_.back();
}

net::Switch& Network::add_switch(std::unique_ptr<net::Switch> s) {
  switches_.push_back(std::move(s));
  return *switches_.back();
}

sim::Time star_host_delay_for_rtt(sim::Time target, sim::Time link_prop) {
  // RTT ~= 4 x host_delay (tx+rx stack on both hosts) + 4 x link_prop
  // (2 links each direction), ignoring serialization.
  const sim::Time residual = target - 4 * link_prop;
  if (residual <= 0) {
    throw std::invalid_argument("star_host_delay_for_rtt: target too small");
  }
  return residual / 4;
}

namespace {

/// Shared sanity checks for topology configs; throws with a prefixed,
/// actionable message instead of letting a bad value surface as a deep
/// .at() throw or a divide-by-zero inside the port pipeline.
void validate_common(const char* who, std::uint64_t link_rate_bps,
                     std::size_t num_queues, std::uint64_t buffer_bytes,
                     std::uint64_t host_buffer_bytes, sim::Time host_delay,
                     sim::Time link_prop) {
  const std::string prefix(who);
  if (link_rate_bps == 0) {
    throw std::invalid_argument(prefix + ": link_rate_bps must be > 0");
  }
  if (num_queues == 0) {
    throw std::invalid_argument(prefix + ": num_queues must be >= 1");
  }
  if (buffer_bytes == 0) {
    throw std::invalid_argument(prefix + ": buffer_bytes must be > 0");
  }
  if (host_buffer_bytes == 0) {
    throw std::invalid_argument(prefix + ": host_buffer_bytes must be > 0");
  }
  if (host_delay < 0) {
    throw std::invalid_argument(prefix + ": host_delay must be >= 0");
  }
  if (link_prop < 0) {
    throw std::invalid_argument(prefix + ": link_prop must be >= 0");
  }
}

}  // namespace

Network build_star(sim::Simulator& sim, const StarConfig& cfg,
                   const SchedulerFactory& sched_factory,
                   const MarkerFactory& marker_factory) {
  if (cfg.num_hosts < 2) {
    throw std::invalid_argument("build_star: need at least 2 hosts");
  }
  validate_common("build_star", cfg.link_rate_bps, cfg.num_queues,
                  cfg.buffer_bytes, cfg.host_buffer_bytes, cfg.host_delay,
                  cfg.link_prop);
  if (cfg.switch_rate_fraction <= 0.0 || cfg.switch_rate_fraction > 1.0) {
    throw std::invalid_argument(
        "build_star: switch_rate_fraction out of (0,1]");
  }
  Network net(sim);
  auto& sw = net.add_switch(std::make_unique<net::Switch>(sim, "sw0"));

  for (std::size_t i = 0; i < cfg.num_hosts; ++i) {
    net::PortConfig nic;
    nic.rate_bps = cfg.link_rate_bps;
    if (i < cfg.host_rates.size() && cfg.host_rates[i] != 0) {
      nic.rate_bps = cfg.host_rates[i];
    }
    nic.prop_delay = cfg.link_prop;
    nic.buffer_bytes = cfg.host_buffer_bytes;
    auto& host = net.add_host(std::make_unique<net::Host>(
        sim, "h" + std::to_string(i), static_cast<std::uint32_t>(i), nic,
        cfg.host_delay));

    net::PortConfig egress;
    egress.rate_bps = cfg.link_rate_bps;
    egress.prop_delay = cfg.link_prop;
    egress.num_queues = cfg.num_queues;
    egress.buffer_bytes = cfg.buffer_bytes;
    egress.rate_limit_fraction = cfg.switch_rate_fraction;
    auto sched = sched_factory();
    auto marker = marker_factory(*sched, egress);
    const std::size_t p =
        sw.add_port(egress, std::move(sched), std::move(marker));

    sw.connect(p, &host, 0);
    host.connect(&sw, p);
    sw.add_route(static_cast<std::uint32_t>(i), {p});
  }
  return net;
}

Network build_leaf_spine(sim::Simulator& sim, const LeafSpineConfig& cfg,
                         const SchedulerFactory& sched_factory,
                         const MarkerFactory& marker_factory) {
  if (cfg.num_leaves == 0 || cfg.num_spines == 0 || cfg.hosts_per_leaf == 0) {
    throw std::invalid_argument(
        "build_leaf_spine: need >= 1 leaf, spine and host per leaf");
  }
  validate_common("build_leaf_spine", cfg.link_rate_bps, cfg.num_queues,
                  cfg.buffer_bytes, cfg.host_buffer_bytes, cfg.host_delay,
                  cfg.link_prop);
  Network net(sim);
  const std::size_t num_hosts = cfg.num_leaves * cfg.hosts_per_leaf;

  net::PortConfig sw_port_template;
  sw_port_template.rate_bps = cfg.link_rate_bps;
  sw_port_template.prop_delay = cfg.link_prop;
  sw_port_template.num_queues = cfg.num_queues;
  sw_port_template.buffer_bytes = cfg.buffer_bytes;

  auto make_port = [&](net::Switch& sw) {
    auto sched = sched_factory();
    auto marker = marker_factory(*sched, sw_port_template);
    return sw.add_port(sw_port_template, std::move(sched), std::move(marker));
  };

  // Switches first (hosts connect to them).
  std::vector<net::Switch*> leaves;
  std::vector<net::Switch*> spines;
  for (std::size_t l = 0; l < cfg.num_leaves; ++l) {
    leaves.push_back(
        &net.add_switch(std::make_unique<net::Switch>(sim, "leaf" + std::to_string(l))));
  }
  for (std::size_t s = 0; s < cfg.num_spines; ++s) {
    spines.push_back(
        &net.add_switch(std::make_unique<net::Switch>(sim, "spine" + std::to_string(s))));
  }

  // Hosts and their leaf-facing ports.
  for (std::size_t h = 0; h < num_hosts; ++h) {
    const std::size_t l = h / cfg.hosts_per_leaf;
    net::PortConfig nic;
    nic.rate_bps = cfg.link_rate_bps;
    nic.prop_delay = cfg.link_prop;
    nic.buffer_bytes = cfg.host_buffer_bytes;
    auto& host = net.add_host(std::make_unique<net::Host>(
        sim, "h" + std::to_string(h), static_cast<std::uint32_t>(h), nic,
        cfg.host_delay));
    const std::size_t p = make_port(*leaves[l]);
    leaves[l]->connect(p, &host, 0);
    host.connect(leaves[l], p);
    // Leaf-local route: the host's own down port.
    leaves[l]->add_route(static_cast<std::uint32_t>(h), {p});
  }

  // Leaf <-> spine fabric.
  for (std::size_t l = 0; l < cfg.num_leaves; ++l) {
    std::vector<std::size_t> uplinks;
    for (std::size_t s = 0; s < cfg.num_spines; ++s) {
      const std::size_t up = make_port(*leaves[l]);
      const std::size_t down = make_port(*spines[s]);
      leaves[l]->connect(up, spines[s], down);
      spines[s]->connect(down, leaves[l], up);
      uplinks.push_back(up);

      // Spine routes to every host under this leaf via `down`.
      for (std::size_t i = 0; i < cfg.hosts_per_leaf; ++i) {
        const auto host_addr =
            static_cast<std::uint32_t>(l * cfg.hosts_per_leaf + i);
        spines[s]->add_route(host_addr, {down});
      }
    }
    // Leaf routes to every remote host: ECMP across all uplinks.
    for (std::size_t h = 0; h < num_hosts; ++h) {
      if (h / cfg.hosts_per_leaf == l) continue;
      leaves[l]->add_route(static_cast<std::uint32_t>(h), uplinks);
    }
  }
  return net;
}

}  // namespace tcn::topo
