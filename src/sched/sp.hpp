// Strict priority scheduler: queue 0 is the highest priority; the lowest
// non-empty index always wins.
#pragma once

#include "net/scheduler.hpp"

namespace tcn::sched {

class SpScheduler final : public net::Scheduler {
 public:
  [[nodiscard]] net::SchedulerVariant self_variant() noexcept override {
    return this;
  }

  void on_enqueue(std::size_t, const net::Packet&, sim::Time) override {}

  std::size_t select(sim::Time) override {
    const auto& qs = queues();
    for (std::size_t i = 0; i < qs.size(); ++i) {
      if (!qs[i].empty()) return i;
    }
    return 0;  // contract: a queue is non-empty
  }

  void on_dequeue(std::size_t, const net::Packet&, sim::Time) override {}

  [[nodiscard]] std::string_view name() const override { return "sp"; }
};

}  // namespace tcn::sched
