#include "sched/sp_hybrid.hpp"

#include <cassert>
#include <stdexcept>

namespace tcn::sched {

SpHybridScheduler::SpHybridScheduler(std::size_t num_sp,
                                     std::unique_ptr<net::Scheduler> inner)
    : num_sp_(num_sp), inner_(std::move(inner)) {
  if (num_sp_ == 0) {
    throw std::invalid_argument("SpHybridScheduler: num_sp must be >= 1");
  }
  if (!inner_) {
    throw std::invalid_argument("SpHybridScheduler: inner required");
  }
  name_ = "sp/" + std::string(inner_->name());
}

void SpHybridScheduler::bind(const std::vector<net::PacketQueue>* queues,
                             std::uint64_t link_rate_bps) {
  if (queues->size() <= num_sp_) {
    throw std::invalid_argument(
        "SpHybridScheduler: need at least one low-priority queue");
  }
  Scheduler::bind(queues, link_rate_bps);
  inner_->bind(queues, link_rate_bps);
}

void SpHybridScheduler::on_enqueue(std::size_t q, const net::Packet& p,
                                   sim::Time now) {
  if (q >= num_sp_) inner_->on_enqueue(q, p, now);
}

std::size_t SpHybridScheduler::select(sim::Time now) {
  for (std::size_t i = 0; i < num_sp_; ++i) {
    if (!queues()[i].empty()) return i;
  }
  return inner_->select(now);
}

void SpHybridScheduler::on_dequeue(std::size_t q, const net::Packet& p,
                                   sim::Time now) {
  if (q >= num_sp_) inner_->on_dequeue(q, p, now);
}

}  // namespace tcn::sched
