// Rank programs shared by every rank-based scheduler (the exact PIFO and
// its deployable approximations SP-PIFO / AIFO).
//
// A rank program assigns each packet an integer rank at enqueue time; lower
// ranks should depart first. Programs may keep mutable state in their
// closure (virtual times, per-queue finish tags) -- one program instance per
// scheduler, never shared across ports.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tcn::sched {

/// Computes the rank of a packet at enqueue time.
using RankFn = std::function<std::int64_t(const net::Packet&, std::size_t queue,
                                          sim::Time now)>;

/// A rank program: the enqueue-time rank function plus optional service
/// feedback. Self-clocked programs (STFQ) must advance their virtual time
/// from departures, not arrivals: an arrival-only clock lets a queue that
/// went quiet bank credit for its idle period and then starve the busy
/// queues -- exactly the pitfall the SCFQ clock in sched/wfq.cpp avoids by
/// reading the tag of the packet entering service. Stateless programs
/// (priorities, precomputed test ranks) leave `on_service` null.
struct RankProgram {
  RankProgram() = default;
  // Implicit from any rank callable (lambdas, RankFn) so stateless
  // programs read as plain functions at scheduler construction sites.
  template <typename F,
            typename = std::enable_if_t<std::is_invocable_r_v<
                std::int64_t, F&, const net::Packet&, std::size_t, sim::Time>>>
  RankProgram(F&& fn)  // NOLINT(google-explicit-constructor)
      : rank(std::forward<F>(fn)) {}
  RankProgram(RankFn fn, std::function<void(std::int64_t)> service)
      : rank(std::move(fn)), on_service(std::move(service)) {}

  RankFn rank;
  /// Called by the scheduler with the departing packet's rank as it enters
  /// service (once per dequeue). May be null.
  std::function<void(std::int64_t)> on_service;
};

/// An STFQ (start-time fair queueing) rank program over per-queue weights:
/// rank = virtual start time; approximates WFQ through a rank scheduler.
/// Ranks are non-decreasing within a queue, so the exact PIFO's head-packet
/// dequeue schedules this program without error.
///
/// Self-clocked: the system virtual time is the start tag of the packet in
/// service (Goyal et al.), fed back through RankProgram::on_service. A
/// queue consuming more than its share runs ahead of the clock (high rank:
/// AIFO sheds it first, SP-PIFO pushes it up); a queue that went idle
/// re-enters at the clock instead of a stale tag, with no credit banked
/// for its idle period.
inline RankProgram stfq_rank_program(std::vector<double> weights) {
  // Shared mutable state lives in the closures; one program per scheduler.
  struct State {
    std::vector<double> weights;
    std::vector<double> last_finish;
    double vtime = 0.0;
  };
  auto st = std::make_shared<State>();
  st->weights = std::move(weights);
  st->last_finish.assign(st->weights.size(), 0.0);
  RankFn rank = [st](const net::Packet& p, std::size_t q,
                     sim::Time) -> std::int64_t {
    if (q >= st->weights.size()) q = st->weights.size() - 1;
    const double start = std::max(st->vtime, st->last_finish[q]);
    st->last_finish[q] = start + static_cast<double>(p.size) / st->weights[q];
    return static_cast<std::int64_t>(start);
  };
  auto service = [st](std::int64_t r) {
    // Monotone guard: approximate schedulers (SP-PIFO inversions, AIFO
    // FIFO order) may serve a smaller start tag after a larger one; the
    // virtual clock must never run backwards.
    st->vtime = std::max(st->vtime, static_cast<double>(r));
  };
  return {std::move(rank), std::move(service)};
}

/// Strict-priority rank program: rank = queue index (queue 0 first).
inline RankFn priority_rank_program() {
  return [](const net::Packet&, std::size_t q, sim::Time) {
    return static_cast<std::int64_t>(q);
  };
}

}  // namespace tcn::sched
