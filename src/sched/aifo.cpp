#include "sched/aifo.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace tcn::sched {

AifoScheduler::AifoScheduler(std::size_t window, double k,
                             sched::RankProgram rank)
    : rank_(std::move(rank)), k_(k) {
  if (window < 1) {
    throw std::invalid_argument("AifoScheduler: window must be >= 1");
  }
  if (!(k >= 0.0 && k < 1.0)) {
    throw std::invalid_argument("AifoScheduler: k must be in [0, 1)");
  }
  if (!rank_.rank) {
    throw std::invalid_argument("AifoScheduler: rank fn required");
  }
  window_.assign(window, 0);
}

void AifoScheduler::bind(const std::vector<net::PacketQueue>* queues,
                         std::uint64_t link_rate_bps) {
  Scheduler::bind(queues, link_rate_bps);
  entries_.resize(queues->size());
}

double AifoScheduler::rank_quantile(std::int64_t rank) const {
  if (window_count_ == 0) return 0.0;
  std::size_t below = 0;
  for (std::size_t i = 0; i < window_count_; ++i) {
    if (window_[i] < rank) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(window_count_);
}

bool AifoScheduler::would_admit(std::int64_t rank, std::uint64_t occupancy,
                                std::uint64_t capacity) const {
  if (capacity == 0) return false;
  if (occupancy >= capacity) return false;
  const double headroom = static_cast<double>(capacity - occupancy) /
                          static_cast<double>(capacity);
  return headroom / (1.0 - k_) >= rank_quantile(rank);
}

bool AifoScheduler::admit(std::size_t q, const net::Packet& p, sim::Time now,
                          std::uint64_t port_bytes,
                          std::uint64_t buffer_limit) {
  // Rank programs are sampled once per *arrival*, admitted or not: the
  // window must track the offered rank distribution, and stateful programs
  // (STFQ virtual times) advance deterministically either way.
  const std::int64_t r = rank_.rank(p, q, now);
  const bool ok = would_admit(r, port_bytes, buffer_limit);
  // Insert after the decision: a packet does not gate on its own sample.
  window_[window_head_] = r;
  window_head_ = (window_head_ + 1) % window_.size();
  if (window_count_ < window_.size()) ++window_count_;
  pending_rank_ = r;
  if (ok) {
    ++admitted_;
  } else {
    ++rejected_;
  }
  return ok;
}

void AifoScheduler::on_enqueue(std::size_t q, const net::Packet&, sim::Time) {
  entries_[q].push_back({arrivals_++, pending_rank_});
}

std::size_t AifoScheduler::select(sim::Time) {
  std::size_t best = SIZE_MAX;
  std::uint64_t best_seq = 0;
  for (std::size_t q = 0; q < entries_.size(); ++q) {
    if (entries_[q].empty()) continue;
    const std::uint64_t seq = entries_[q].front().seq;
    if (best == SIZE_MAX || seq < best_seq) {
      best = q;
      best_seq = seq;
    }
  }
  assert(best != SIZE_MAX);
  return best;
}

void AifoScheduler::on_dequeue(std::size_t q, const net::Packet&, sim::Time) {
  assert(!entries_[q].empty());
  if (rank_.on_service) rank_.on_service(entries_[q].front().rank);
  entries_[q].pop_front();
}

}  // namespace tcn::sched
