#include "sched/wfq.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace tcn::sched {

WfqScheduler::WfqScheduler(std::vector<double> weights)
    : weights_(std::move(weights)) {
  if (weights_.empty()) throw std::invalid_argument("WfqScheduler: empty");
  for (const double w : weights_) {
    if (w <= 0.0) throw std::invalid_argument("WfqScheduler: weight <= 0");
  }
  tags_.resize(weights_.size());
  last_finish_.assign(weights_.size(), 0.0);
}

void WfqScheduler::bind(const std::vector<net::PacketQueue>* queues,
                        std::uint64_t link_rate_bps) {
  if (queues->size() != weights_.size()) {
    throw std::invalid_argument("WfqScheduler: weight count != queue count");
  }
  Scheduler::bind(queues, link_rate_bps);
}

void WfqScheduler::on_enqueue(std::size_t q, const net::Packet& p, sim::Time) {
  if (backlog_pkts_ == 0) {
    // Idle system: reset the virtual clock so tags stay well-conditioned.
    vtime_ = 0.0;
    std::fill(last_finish_.begin(), last_finish_.end(), 0.0);
  }
  const double start = std::max(vtime_, last_finish_[q]);
  const double finish = start + static_cast<double>(p.size) / weights_[q];
  last_finish_[q] = finish;
  tags_[q].push_back(finish);
  ++backlog_pkts_;
}

std::size_t WfqScheduler::select(sim::Time) {
  assert(backlog_pkts_ > 0);
  std::size_t best = SIZE_MAX;
  double best_tag = 0.0;
  for (std::size_t q = 0; q < tags_.size(); ++q) {
    if (tags_[q].empty()) continue;
    const double t = tags_[q].front();
    if (best == SIZE_MAX || t < best_tag) {
      best = q;
      best_tag = t;
    }
  }
  assert(best != SIZE_MAX);
  return best;
}

void WfqScheduler::on_dequeue(std::size_t q, const net::Packet&, sim::Time) {
  assert(!tags_[q].empty());
  // Self-clocking: the system virtual time is the finish tag of the packet
  // entering service.
  vtime_ = tags_[q].front();
  tags_[q].pop_front();
  --backlog_pkts_;
}

}  // namespace tcn::sched
