#include "sched/wrr.hpp"

#include <cassert>
#include <stdexcept>

namespace tcn::sched {

WrrScheduler::WrrScheduler(std::vector<std::uint32_t> weights)
    : weights_(std::move(weights)) {
  if (weights_.empty()) throw std::invalid_argument("WrrScheduler: empty");
  for (const auto w : weights_) {
    if (w == 0) throw std::invalid_argument("WrrScheduler: zero weight");
  }
  credit_.assign(weights_.size(), 0);
  active_.assign(weights_.size(), false);
}

void WrrScheduler::bind(const std::vector<net::PacketQueue>* queues,
                        std::uint64_t link_rate_bps) {
  if (queues->size() != weights_.size()) {
    throw std::invalid_argument("WrrScheduler: weight count != queue count");
  }
  Scheduler::bind(queues, link_rate_bps);
}

void WrrScheduler::on_enqueue(std::size_t q, const net::Packet&, sim::Time) {
  if (active_[q]) return;
  active_[q] = true;
  credit_[q] = weights_[q];
  active_list_.push_back(q);
}

std::size_t WrrScheduler::select(sim::Time) {
  assert(!active_list_.empty());
  for (;;) {
    const std::size_t q = active_list_.front();
    if (credit_[q] > 0) return q;
    // Visit exhausted: recharge and rotate.
    credit_[q] = weights_[q];
    active_list_.pop_front();
    active_list_.push_back(q);
  }
}

void WrrScheduler::on_dequeue(std::size_t q, const net::Packet&, sim::Time) {
  assert(credit_[q] > 0);
  --credit_[q];
  if (queues()[q].empty()) {
    assert(active_list_.front() == q);
    active_list_.pop_front();
    active_[q] = false;
    credit_[q] = 0;
  }
}

}  // namespace tcn::sched
