// Weighted Round Robin: each backlogged queue sends up to `weight` packets
// per visit. Kept for completeness (the paper lists WRR alongside DWRR as a
// round-based scheduler); DWRR is what the evaluation uses.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/scheduler.hpp"

namespace tcn::sched {

class WrrScheduler final : public net::Scheduler {
 public:
  [[nodiscard]] net::SchedulerVariant self_variant() noexcept override {
    return this;
  }

  explicit WrrScheduler(std::vector<std::uint32_t> weights);

  void bind(const std::vector<net::PacketQueue>* queues,
            std::uint64_t link_rate_bps) override;

  void on_enqueue(std::size_t q, const net::Packet& p, sim::Time now) override;
  std::size_t select(sim::Time now) override;
  void on_dequeue(std::size_t q, const net::Packet& p, sim::Time now) override;

  [[nodiscard]] std::string_view name() const override { return "wrr"; }

 private:
  std::vector<std::uint32_t> weights_;
  std::vector<std::uint32_t> credit_;  // packets left this visit
  std::vector<bool> active_;
  std::deque<std::size_t> active_list_;
};

}  // namespace tcn::sched
