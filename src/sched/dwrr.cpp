#include "sched/dwrr.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace tcn::sched {

DwrrScheduler::DwrrScheduler(std::vector<std::uint64_t> quanta, double beta,
                             sim::Time idle_reset)
    : quanta_(std::move(quanta)), beta_(beta), idle_reset_(idle_reset) {
  if (quanta_.empty()) {
    throw std::invalid_argument("DwrrScheduler: no quanta");
  }
  for (const auto q : quanta_) {
    if (q == 0) throw std::invalid_argument("DwrrScheduler: zero quantum");
  }
  if (beta_ < 0.0 || beta_ >= 1.0) {
    throw std::invalid_argument("DwrrScheduler: beta out of [0,1)");
  }
  state_.resize(quanta_.size());
  smoothed_round_.assign(quanta_.size(), 0);
}

void DwrrScheduler::bind(const std::vector<net::PacketQueue>* queues,
                         std::uint64_t link_rate_bps) {
  if (queues->size() != quanta_.size()) {
    throw std::invalid_argument("DwrrScheduler: quanta count != queue count");
  }
  Scheduler::bind(queues, link_rate_bps);
}

void DwrrScheduler::on_enqueue(std::size_t q, const net::Packet&,
                               sim::Time now) {
  QState& s = state_[q];
  if (s.active) return;
  s.active = true;
  s.fresh_visit = true;
  s.deficit = 0;
  // MQ-ECN T_idle rule: a queue idle longer than idle_reset forgets its round
  // time -- its share estimate snaps back to the full link rate.
  if (s.deactivated >= 0 && now - s.deactivated > idle_reset_) {
    smoothed_round_[q] = 0;
    s.last_grant = -1;
  }
  active_list_.push_back(q);
}

std::size_t DwrrScheduler::select(sim::Time now) {
  assert(!active_list_.empty());
  // Each pass either returns or rotates a queue whose head does not fit; a
  // fresh visit adds a full quantum, so deficits grow until a head fits and
  // the loop terminates.
  for (;;) {
    const std::size_t q = active_list_.front();
    QState& s = state_[q];
    if (s.fresh_visit) {
      // Quantum grant: queue q's service turn starts in this round.
      if (s.last_grant >= 0) {
        const sim::Time sample = now - s.last_grant;
        smoothed_round_[q] = static_cast<sim::Time>(
            beta_ * static_cast<double>(smoothed_round_[q]) +
            (1.0 - beta_) * static_cast<double>(sample));
      }
      s.last_grant = now;
      s.deficit += quanta_[q];
      s.fresh_visit = false;
    }
    const net::Packet* head = queues()[q].front();
    assert(head != nullptr);
    if (head->size <= s.deficit) {
      in_service_ = q;
      return q;
    }
    // Head does not fit: rotate to the tail, keep the residual deficit.
    active_list_.pop_front();
    active_list_.push_back(q);
    s.fresh_visit = true;
  }
}

void DwrrScheduler::on_dequeue(std::size_t q, const net::Packet& p,
                               sim::Time now) {
  QState& s = state_[q];
  assert(q == in_service_ && s.active);
  s.deficit -= std::min<std::uint64_t>(s.deficit, p.size);
  in_service_ = SIZE_MAX;
  if (queues()[q].empty()) {
    // Queue leaves the active list and forfeits its deficit.
    assert(active_list_.front() == q);
    active_list_.pop_front();
    s.active = false;
    s.fresh_visit = true;
    s.deficit = 0;
    s.deactivated = now;
  }
}

double DwrrScheduler::queue_rate_bps(std::size_t q, sim::Time) const {
  const sim::Time t = smoothed_round_[q];
  const double link = static_cast<double>(link_rate_bps());
  if (t <= 0) return link;
  const double rate =
      static_cast<double>(quanta_[q]) * 8.0 / sim::to_seconds(t);
  return std::min(rate, link);
}

}  // namespace tcn::sched
