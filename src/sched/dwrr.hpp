// Deficit Weighted Round Robin (Sec. 5 prototype description):
//
//   - an active list holds backlogged queues; a queue activating on enqueue
//     joins the tail with zero deficit;
//   - when a queue reaches the head in a fresh visit it earns its quantum;
//   - it transmits while its head packet fits in the deficit, then rotates
//     to the tail keeping the residual deficit;
//   - a queue that empties leaves the list and forfeits its deficit.
//
// The scheduler also tracks per-queue round times (time between consecutive
// quantum grants while backlogged) smoothed with beta, which is exactly the
// rate estimate MQ-ECN needs: rate_i = quantum_i / T_round_i (Sec. 3.3).
// After an idle period longer than `idle_reset` the smoothed round time is
// reset (MQ-ECN's T_idle rule).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/scheduler.hpp"

namespace tcn::sched {

class DwrrScheduler final : public net::Scheduler,
                            public net::RoundRateProvider {
 public:
  [[nodiscard]] net::SchedulerVariant self_variant() noexcept override {
    return this;
  }

  /// `quanta[i]` is queue i's per-round byte allowance (must be > 0 and at
  /// least one MTU to guarantee progress). `beta` smooths round-time samples:
  /// T = beta*T + (1-beta)*sample. `idle_reset` is MQ-ECN's T_idle.
  explicit DwrrScheduler(std::vector<std::uint64_t> quanta, double beta = 0.75,
                         sim::Time idle_reset = 12 * sim::kMicrosecond);

  void bind(const std::vector<net::PacketQueue>* queues,
            std::uint64_t link_rate_bps) override;

  void on_enqueue(std::size_t q, const net::Packet& p, sim::Time now) override;
  std::size_t select(sim::Time now) override;
  void on_dequeue(std::size_t q, const net::Packet& p, sim::Time now) override;

  [[nodiscard]] std::string_view name() const override { return "dwrr"; }

  // RoundRateProvider
  [[nodiscard]] double queue_rate_bps(std::size_t q,
                                      sim::Time now) const override;

  [[nodiscard]] std::uint64_t quantum(std::size_t q) const {
    return quanta_.at(q);
  }
  /// Smoothed round time of queue q (0 = unknown / treat as full rate).
  [[nodiscard]] sim::Time round_time(std::size_t q) const {
    return smoothed_round_[q];
  }

 private:
  struct QState {
    bool active = false;        // in the active list
    bool fresh_visit = true;    // earns quantum on reaching the head
    std::uint64_t deficit = 0;  // bytes
    sim::Time last_grant = -1;  // previous quantum-grant time (-1 = none)
    sim::Time deactivated = -1;
  };

  std::vector<std::uint64_t> quanta_;
  double beta_;
  sim::Time idle_reset_;
  std::deque<std::size_t> active_list_;
  std::vector<QState> state_;
  std::vector<sim::Time> smoothed_round_;
  std::size_t in_service_ = SIZE_MAX;  // queue returned by last select()
};

}  // namespace tcn::sched
