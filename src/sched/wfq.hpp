// Weighted Fair Queueing, self-clocked (SCFQ) variant.
//
// The paper's qdisc "maintains a virtual time for the head packet of each
// queue; the scheduler chooses the head packet with the smallest virtual
// time" (Sec. 5). We implement SCFQ: on enqueue a packet receives finish tag
//   F = max(V, F_last[q]) + size / w[q]
// where V is the finish tag of the packet currently/last in service. The
// smallest head tag is served. When the port drains completely the virtual
// clock resets.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/scheduler.hpp"

namespace tcn::sched {

class WfqScheduler final : public net::Scheduler {
 public:
  [[nodiscard]] net::SchedulerVariant self_variant() noexcept override {
    return this;
  }

  explicit WfqScheduler(std::vector<double> weights);

  void bind(const std::vector<net::PacketQueue>* queues,
            std::uint64_t link_rate_bps) override;

  void on_enqueue(std::size_t q, const net::Packet& p, sim::Time now) override;
  std::size_t select(sim::Time now) override;
  void on_dequeue(std::size_t q, const net::Packet& p, sim::Time now) override;

  [[nodiscard]] std::string_view name() const override { return "wfq"; }

  /// Finish tag of queue q's head packet (tests); queue must be non-empty.
  [[nodiscard]] double head_tag(std::size_t q) const { return tags_[q].front(); }

 private:
  std::vector<double> weights_;
  std::vector<std::deque<double>> tags_;  // finish tags parallel to queues
  std::vector<double> last_finish_;
  double vtime_ = 0.0;
  std::size_t backlog_pkts_ = 0;
};

}  // namespace tcn::sched
