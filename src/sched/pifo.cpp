#include "sched/pifo.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

namespace tcn::sched {

PifoScheduler::PifoScheduler(sched::RankProgram rank) : rank_(std::move(rank)) {
  if (!rank_.rank) {
    throw std::invalid_argument("PifoScheduler: rank fn required");
  }
}

void PifoScheduler::bind(const std::vector<net::PacketQueue>* queues,
                         std::uint64_t link_rate_bps) {
  Scheduler::bind(queues, link_rate_bps);
  ranks_.resize(queues->size());
}

void PifoScheduler::on_enqueue(std::size_t q, const net::Packet& p,
                               sim::Time now) {
  ranks_[q].push_back(rank_.rank(p, q, now));
}

std::size_t PifoScheduler::select(sim::Time) {
  std::size_t best = SIZE_MAX;
  std::int64_t best_rank = 0;
  for (std::size_t q = 0; q < ranks_.size(); ++q) {
    if (ranks_[q].empty()) continue;
    const std::int64_t r = ranks_[q].front();
    if (best == SIZE_MAX || r < best_rank) {
      best = q;
      best_rank = r;
    }
  }
  assert(best != SIZE_MAX);
  return best;
}

void PifoScheduler::on_dequeue(std::size_t q, const net::Packet&, sim::Time) {
  assert(!ranks_[q].empty());
  if (rank_.on_service) rank_.on_service(ranks_[q].front());
  ranks_[q].pop_front();
}

sched::RankProgram PifoScheduler::stfq_program(std::vector<double> weights) {
  return stfq_rank_program(std::move(weights));
}

PifoScheduler::RankFn PifoScheduler::priority_program() {
  return priority_rank_program();
}

}  // namespace tcn::sched
