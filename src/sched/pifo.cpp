#include "sched/pifo.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

namespace tcn::sched {

PifoScheduler::PifoScheduler(RankFn rank) : rank_(std::move(rank)) {
  if (!rank_) throw std::invalid_argument("PifoScheduler: rank fn required");
}

void PifoScheduler::bind(const std::vector<net::PacketQueue>* queues,
                         std::uint64_t link_rate_bps) {
  Scheduler::bind(queues, link_rate_bps);
  ranks_.resize(queues->size());
}

void PifoScheduler::on_enqueue(std::size_t q, const net::Packet& p,
                               sim::Time now) {
  ranks_[q].push_back(rank_(p, q, now));
}

std::size_t PifoScheduler::select(sim::Time) {
  std::size_t best = SIZE_MAX;
  std::int64_t best_rank = 0;
  for (std::size_t q = 0; q < ranks_.size(); ++q) {
    if (ranks_[q].empty()) continue;
    const std::int64_t r = ranks_[q].front();
    if (best == SIZE_MAX || r < best_rank) {
      best = q;
      best_rank = r;
    }
  }
  assert(best != SIZE_MAX);
  return best;
}

void PifoScheduler::on_dequeue(std::size_t q, const net::Packet&, sim::Time) {
  assert(!ranks_[q].empty());
  ranks_[q].pop_front();
}

PifoScheduler::RankFn PifoScheduler::stfq_program(std::vector<double> weights) {
  // Shared mutable state lives in the closure; one program per scheduler.
  struct State {
    std::vector<double> weights;
    std::vector<double> last_finish;
    double vtime = 0.0;
  };
  auto st = std::make_shared<State>();
  st->weights = std::move(weights);
  st->last_finish.assign(st->weights.size(), 0.0);
  return [st](const net::Packet& p, std::size_t q, sim::Time) -> std::int64_t {
    if (q >= st->weights.size()) q = st->weights.size() - 1;
    const double start = std::max(st->vtime, st->last_finish[q]);
    st->last_finish[q] =
        start + static_cast<double>(p.size) / st->weights[q];
    st->vtime = start;  // STFQ advances virtual time to the start tag
    return static_cast<std::int64_t>(start);
  };
}

PifoScheduler::RankFn PifoScheduler::priority_program() {
  return [](const net::Packet&, std::size_t q, sim::Time) {
    return static_cast<std::int64_t>(q);
  };
}

}  // namespace tcn::sched
