// SP/WFQ and SP/DWRR hybrids (Sec. 5): the first `num_sp` queues are strict
// priority (queue 0 highest); the remaining queues are handled by an inner
// scheduler, served only when every SP queue is empty.
//
// The inner scheduler is bound to the full queue vector but is only ever
// notified about (and asked to choose among) indices >= num_sp. DWRR and WFQ
// satisfy this because their select() consults only queues their own state
// marks backlogged; do not use FifoScheduler/SpScheduler as the inner.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/scheduler.hpp"

namespace tcn::sched {

class SpHybridScheduler final : public net::Scheduler {
 public:
  [[nodiscard]] net::SchedulerVariant self_variant() noexcept override {
    return this;
  }

  SpHybridScheduler(std::size_t num_sp, std::unique_ptr<net::Scheduler> inner);

  void bind(const std::vector<net::PacketQueue>* queues,
            std::uint64_t link_rate_bps) override;

  void on_enqueue(std::size_t q, const net::Packet& p, sim::Time now) override;
  std::size_t select(sim::Time now) override;
  void on_dequeue(std::size_t q, const net::Packet& p, sim::Time now) override;

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::size_t num_sp() const noexcept { return num_sp_; }
  [[nodiscard]] net::Scheduler& inner() noexcept { return *inner_; }

 private:
  std::size_t num_sp_;
  std::unique_ptr<net::Scheduler> inner_;
  std::string name_;
};

}  // namespace tcn::sched
