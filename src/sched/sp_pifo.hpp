// SP-PIFO (Alcoz et al., NSDI 2020): approximating a PIFO with a small
// number of strict-priority levels.
//
// Each of the L levels carries a rank bound q_i. An arriving packet of rank
// r scans from the lowest-priority level upward and lands in the first
// level whose bound is <= r, pushing that bound up to r ("push-up"). A
// packet ranked below even the highest-priority bound triggers the
// adaptation step: every bound is decreased by the miss cost q_0 - r
// ("push-down") and the packet enters the top level. Bounds therefore chase
// the arriving rank distribution, and the scheduling error (rank
// inversions) stays bounded instead of growing with queue depth.
//
// Like the exact PifoScheduler, this implementation keeps the egress port's
// per-queue FIFO structure: packets stay in their classified physical
// queue, each remembers the *level* SP-PIFO assigned it plus a global
// arrival sequence, and select() dequeues the head packet with the
// lexicographically smallest (level, arrival) -- strict priority across
// levels, FIFO within a level, restricted to head packets (the same
// head-packet compromise PifoScheduler documents).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/scheduler.hpp"
#include "sched/rank.hpp"

namespace tcn::sched {

class SpPifoScheduler final : public net::Scheduler {
 public:
  [[nodiscard]] net::SchedulerVariant self_variant() noexcept override {
    return this;
  }

  /// `levels` is the number of strict-priority levels (>= 2; hardware
  /// SP-PIFO uses the 8 queues of a switch port). Throws
  /// std::invalid_argument on levels < 2 or a null rank program.
  SpPifoScheduler(std::size_t levels, sched::RankProgram rank);

  void bind(const std::vector<net::PacketQueue>* queues,
            std::uint64_t link_rate_bps) override;

  void on_enqueue(std::size_t q, const net::Packet& p, sim::Time now) override;
  std::size_t select(sim::Time now) override;
  void on_dequeue(std::size_t q, const net::Packet& p, sim::Time now) override;

  [[nodiscard]] std::string_view name() const override { return "sp-pifo"; }

  [[nodiscard]] std::size_t levels() const noexcept { return bounds_.size(); }
  /// Current rank bound of level `l` (level 0 = highest priority).
  [[nodiscard]] std::int64_t bound(std::size_t l) const { return bounds_.at(l); }
  /// Adaptation telemetry: enqueues that raised a level bound, and
  /// adaptation events that pushed every bound down (the paper's cost step).
  [[nodiscard]] std::uint64_t push_ups() const noexcept { return push_ups_; }
  [[nodiscard]] std::uint64_t push_downs() const noexcept {
    return push_downs_;
  }
  /// Level assigned to the most recently enqueued packet (test hook).
  [[nodiscard]] std::size_t last_level() const noexcept { return last_level_; }

 private:
  /// The paper's mapping: scan bottom-up, push-up on hit, push-down on miss.
  std::size_t map_to_level(std::int64_t rank);

  struct Entry {
    std::uint32_t level;
    std::uint64_t arrival;  ///< global arrival sequence: FIFO within a level
    std::int64_t rank;      ///< original rank, fed back at service time
  };

  sched::RankProgram rank_;
  std::vector<std::int64_t> bounds_;        // per level, level 0 = highest
  std::vector<std::deque<Entry>> entries_;  // parallel to the physical queues
  std::uint64_t arrivals_ = 0;
  std::uint64_t push_ups_ = 0;
  std::uint64_t push_downs_ = 0;
  std::size_t last_level_ = 0;
};

}  // namespace tcn::sched
