// PIFO-style programmable scheduler (Sivaraman et al., SIGCOMM 2016).
//
// A rank function assigns each packet an integer rank at enqueue; lower ranks
// depart first. To stay compatible with the per-queue FIFO structure of the
// egress port (and with PIFO hardware, which cannot reorder a flow), the
// scheduler dequeues the globally minimum-rank *head* packet across queues.
// Rank programs that are non-decreasing within a queue (STFQ, per-class
// priorities, virtual times) are therefore scheduled exactly.
//
// TCN needs no changes to operate under any rank program -- that is the
// paper's "generic scheduler" claim, exercised by bench/ablation_pifo.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/scheduler.hpp"
#include "sched/rank.hpp"

namespace tcn::sched {

class PifoScheduler final : public net::Scheduler {
 public:
  [[nodiscard]] net::SchedulerVariant self_variant() noexcept override {
    return this;
  }

  /// Computes the rank of a packet at enqueue time (see sched/rank.hpp).
  using RankFn = sched::RankFn;

  explicit PifoScheduler(sched::RankProgram rank);

  void bind(const std::vector<net::PacketQueue>* queues,
            std::uint64_t link_rate_bps) override;

  void on_enqueue(std::size_t q, const net::Packet& p, sim::Time now) override;
  std::size_t select(sim::Time now) override;
  void on_dequeue(std::size_t q, const net::Packet& p, sim::Time now) override;

  [[nodiscard]] std::string_view name() const override { return "pifo"; }

  /// An STFQ (start-time fair queueing) rank program over per-queue weights:
  /// rank = virtual start time; approximates WFQ through a PIFO.
  static sched::RankProgram stfq_program(std::vector<double> weights);

  /// Strict-priority rank program: rank = queue index.
  static RankFn priority_program();

 private:
  sched::RankProgram rank_;
  std::vector<std::deque<std::int64_t>> ranks_;  // parallel to queues
};

}  // namespace tcn::sched
