// AIFO (Yu et al., SIGCOMM 2021): programmable packet scheduling with a
// single FIFO queue plus admission control.
//
// Instead of reordering packets, AIFO decides *at arrival* whether a packet
// deserves its place: it keeps a sliding window of the last W arrival ranks
// and admits a packet of rank r only when the buffer headroom, scaled by
// the burst-tolerance parameter k, covers r's quantile in that window:
//
//     1/(1-k) * (C - c)/C  >=  |{x in window : x < r}| / |window|
//
// with C the port's admission capacity and c its occupancy at arrival. Low
// ranks are always admitted; high ranks are shed first as the buffer fills,
// so departures approximate the rank order while the data path stays one
// FIFO. Dequeue is strictly FIFO in arrival order (across the port's
// physical queues, emulated by selecting the head packet with the smallest
// global arrival sequence).
//
// Rejections surface through the Scheduler::admit() seam as *scheduler*
// drops -- the port accounts them separately from shared-buffer tail drops
// and AQM behaviour (see Port::Counters::sched_drops).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/scheduler.hpp"
#include "sched/rank.hpp"

namespace tcn::sched {

class AifoScheduler final : public net::Scheduler {
 public:
  [[nodiscard]] net::SchedulerVariant self_variant() noexcept override {
    return this;
  }

  /// `window` is the rank-sample window size W (>= 1); `k` in [0, 1) scales
  /// the admission headroom (larger k admits more aggressively). Throws
  /// std::invalid_argument on a bad parameter or null rank program.
  AifoScheduler(std::size_t window, double k, sched::RankProgram rank);

  void bind(const std::vector<net::PacketQueue>* queues,
            std::uint64_t link_rate_bps) override;

  bool admit(std::size_t q, const net::Packet& p, sim::Time now,
             std::uint64_t port_bytes, std::uint64_t buffer_limit) override;

  void on_enqueue(std::size_t q, const net::Packet& p, sim::Time now) override;
  std::size_t select(sim::Time now) override;
  void on_dequeue(std::size_t q, const net::Packet& p, sim::Time now) override;

  [[nodiscard]] std::string_view name() const override { return "aifo"; }

  /// The admission predicate, side-effect free: would a packet of rank
  /// `rank` be admitted with the current window at occupancy/capacity?
  /// Monotone: never flips admit->reject as rank decreases or occupancy
  /// decreases (the property the differential battery checks directly).
  [[nodiscard]] bool would_admit(std::int64_t rank, std::uint64_t occupancy,
                                 std::uint64_t capacity) const;

  /// Fraction of windowed ranks strictly below `rank` (0 when empty).
  [[nodiscard]] double rank_quantile(std::int64_t rank) const;

  [[nodiscard]] std::size_t window() const noexcept { return window_.size(); }
  [[nodiscard]] double k() const noexcept { return k_; }
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  struct Entry {
    std::uint64_t seq;   ///< global arrival sequence: FIFO across queues
    std::int64_t rank;   ///< admission-time rank, fed back at service time
  };

  sched::RankProgram rank_;
  double k_;
  // Circular rank window: samples EVERY arrival (admitted or not), so the
  // quantile tracks the offered rank distribution. Linear count per packet
  // over <= W ranks; W defaults to 128, a cache-resident scan.
  std::vector<std::int64_t> window_;
  std::size_t window_head_ = 0;
  std::size_t window_count_ = 0;
  // Global-FIFO emulation over the port's physical queues: per-queue deque
  // of (arrival seq, rank); select() takes the smallest head seq.
  std::vector<std::deque<Entry>> entries_;
  std::uint64_t arrivals_ = 0;
  // Rank computed by admit() for the packet the Port is currently
  // admitting; on_enqueue() attaches it to the entry (the Port calls
  // admit then on_enqueue synchronously for the same packet).
  std::int64_t pending_rank_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace tcn::sched
