#include "sched/sp_pifo.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace tcn::sched {

SpPifoScheduler::SpPifoScheduler(std::size_t levels, sched::RankProgram rank)
    : rank_(std::move(rank)) {
  if (levels < 2) {
    throw std::invalid_argument("SpPifoScheduler: levels must be >= 2");
  }
  if (!rank_.rank) {
    throw std::invalid_argument("SpPifoScheduler: rank fn required");
  }
  bounds_.assign(levels, 0);
}

void SpPifoScheduler::bind(const std::vector<net::PacketQueue>* queues,
                           std::uint64_t link_rate_bps) {
  Scheduler::bind(queues, link_rate_bps);
  entries_.resize(queues->size());
}

std::size_t SpPifoScheduler::map_to_level(std::int64_t rank) {
  // Scan from the lowest-priority level toward the top for the first bound
  // the rank clears; enqueue there and push the bound up to the rank.
  for (std::size_t l = bounds_.size(); l-- > 1;) {
    if (bounds_[l] <= rank) {
      if (rank > bounds_[l]) ++push_ups_;
      bounds_[l] = rank;
      return l;
    }
  }
  if (bounds_[0] <= rank) {
    if (rank > bounds_[0]) ++push_ups_;
    bounds_[0] = rank;
    return 0;
  }
  // The rank undercuts even the highest-priority bound: the paper's
  // adaptation step subtracts the miss cost from every bound (so the whole
  // ladder slides down toward the new rank regime) and admits the packet at
  // the top. bounds_[0] lands exactly on `rank`.
  const std::int64_t cost = bounds_[0] - rank;
  for (std::int64_t& b : bounds_) b -= cost;
  ++push_downs_;
  return 0;
}

void SpPifoScheduler::on_enqueue(std::size_t q, const net::Packet& p,
                                 sim::Time now) {
  const std::int64_t r = rank_.rank(p, q, now);
  last_level_ = map_to_level(r);
  entries_[q].push_back(
      {static_cast<std::uint32_t>(last_level_), arrivals_++, r});
}

std::size_t SpPifoScheduler::select(sim::Time) {
  std::size_t best = SIZE_MAX;
  Entry best_e{0, 0, 0};
  for (std::size_t q = 0; q < entries_.size(); ++q) {
    if (entries_[q].empty()) continue;
    const Entry& e = entries_[q].front();
    if (best == SIZE_MAX || e.level < best_e.level ||
        (e.level == best_e.level && e.arrival < best_e.arrival)) {
      best = q;
      best_e = e;
    }
  }
  assert(best != SIZE_MAX);
  return best;
}

void SpPifoScheduler::on_dequeue(std::size_t q, const net::Packet&,
                                 sim::Time) {
  assert(!entries_[q].empty());
  if (rank_.on_service) rank_.on_service(entries_[q].front().rank);
  entries_[q].pop_front();
}

}  // namespace tcn::sched
