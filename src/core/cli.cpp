#include "core/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "fault/fault.hpp"
#include "topo/network.hpp"
#include "traffic/spec.hpp"

namespace tcn::core {
namespace {

std::uint64_t to_u64(const std::string& flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const auto n = std::stoull(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return n;
  } catch (const std::exception&) {
    throw std::invalid_argument(flag + ": expected an integer, got '" + v +
                                "'");
  }
}

double to_double(const std::string& flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return d;
  } catch (const std::exception&) {
    throw std::invalid_argument(flag + ": expected a number, got '" + v +
                                "'");
  }
}

std::vector<std::string> split(const std::string& list) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream in(list);
  while (std::getline(in, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

}  // namespace

Scheme parse_scheme(const std::string& name) {
  if (name == "tcn") return Scheme::kTcn;
  if (name == "tcn-prob") return Scheme::kTcnProb;
  if (name == "codel") return Scheme::kCodel;
  if (name == "mq-ecn") return Scheme::kMqEcn;
  if (name == "red") return Scheme::kRedPerQueue;
  if (name == "red-port") return Scheme::kRedPerPort;
  if (name == "red-dequeue") return Scheme::kRedDequeue;
  if (name == "pie") return Scheme::kPie;
  if (name == "ideal-rate") return Scheme::kIdealRate;
  if (name == "none") return Scheme::kNone;
  throw std::invalid_argument(
      "unknown scheme '" + name +
      "' (tcn, tcn-prob, codel, mq-ecn, red, red-port, red-dequeue, pie, "
      "ideal-rate, none)");
}

SchedKind parse_sched(const std::string& name) {
  if (name == "fifo") return SchedKind::kFifo;
  if (name == "sp") return SchedKind::kSp;
  if (name == "dwrr") return SchedKind::kDwrr;
  if (name == "wrr") return SchedKind::kWrr;
  if (name == "wfq") return SchedKind::kWfq;
  if (name == "sp-dwrr") return SchedKind::kSpDwrr;
  if (name == "sp-wfq") return SchedKind::kSpWfq;
  if (name == "pifo") return SchedKind::kPifoStfq;
  if (name == "sp-pifo") return SchedKind::kSpPifo;
  if (name == "aifo") return SchedKind::kAifo;
  throw std::invalid_argument(
      "unknown scheduler '" + name +
      "' (fifo, sp, dwrr, wrr, wfq, sp-dwrr, sp-wfq, pifo, sp-pifo, aifo)");
}

void parse_sched_spec(const std::string& spec, SchedConfig& sched) {
  const std::size_t colon = spec.find(':');
  sched.kind = parse_sched(spec.substr(0, colon));
  if (colon == std::string::npos) return;
  const std::string params = spec.substr(colon + 1);
  if (sched.kind == SchedKind::kSpPifo) {
    // sp-pifo:<levels> -- the number of strict-priority levels.
    sched.sp_pifo_levels = to_u64("--sched sp-pifo:<levels>", params);
    if (sched.sp_pifo_levels < 2) {
      throw std::invalid_argument("--sched sp-pifo: levels must be >= 2");
    }
  } else if (sched.kind == SchedKind::kAifo) {
    // aifo:<window>,<k> -- both required when parameters are given.
    const std::size_t comma = params.find(',');
    if (comma == std::string::npos) {
      throw std::invalid_argument(
          "--sched aifo: expected aifo:<window>,<k>");
    }
    sched.aifo_window =
        to_u64("--sched aifo:<window>", params.substr(0, comma));
    if (sched.aifo_window < 1) {
      throw std::invalid_argument("--sched aifo: window must be >= 1");
    }
    sched.aifo_k = to_double("--sched aifo:<k>", params.substr(comma + 1));
    if (!(sched.aifo_k >= 0.0 && sched.aifo_k < 1.0)) {
      throw std::invalid_argument("--sched aifo: k must be in [0, 1)");
    }
  } else {
    throw std::invalid_argument("--sched: '" + spec.substr(0, colon) +
                                "' takes no parameters");
  }
}

workload::Kind parse_workload(const std::string& name) {
  if (name == "websearch") return workload::Kind::kWebSearch;
  if (name == "datamining") return workload::Kind::kDataMining;
  if (name == "hadoop") return workload::Kind::kHadoop;
  if (name == "cache") return workload::Kind::kCache;
  throw std::invalid_argument(
      "unknown workload '" + name +
      "' (websearch, datamining, hadoop, cache)");
}

std::string cli_usage() {
  return R"(tcnsim -- run a TCN paper experiment from the command line

usage: tcnsim [flags]

topology:
  --topology star|leafspine   (default star: the 9-host 1G testbed;
                               leafspine: 144 hosts, 12x12, 10G)
  --hosts N                   star host count (default 9)
scheme / scheduler:
  --scheme tcn|tcn-prob|codel|mq-ecn|red|red-port|red-dequeue|pie|ideal-rate|none
  --sched fifo|sp|dwrr|wrr|wfq|sp-dwrr|sp-wfq|pifo|sp-pifo[:levels]|aifo[:window,k]
                              (sp-pifo: strict-priority levels, default 8;
                               aifo: rank window and headroom k, default 128,0.1)
  --rtt-lambda-us T           TCN threshold / dynamic-threshold time (default:
                              256 star, 78 leafspine)
  --red-k-bytes K             static RED threshold (default: 32000 / 97500)
traffic:
  --load F                    offered load fraction (default 0.7)
  --flows N                   flows to generate (default 1000)
  --services N                service count (default 4 star / 7 leafspine)
  --workload a,b,...          size distributions, cycled over services
                              (default websearch; leafspine default: all 4)
  --pias                      PIAS two-priority tagging (adds an SP queue)
  --traffic SPEC              open-loop arrival engine instead of the fixed
                              flow list: ';'-separated sources
                                poisson:<name>:<workload>:<share>[:<dscp>]
                                mmpp:<name>:<workload>:<share>[:<dscp>
                                     [:<burst>[:<duty>[:<dwell_ms>]]]]
                                diurnal:<period_s>:<min>:<peak>
                                replay:<path>             (JSONL flow trace)
                              each tenant has its own size CDF, load share
                              and optional DSCP ("-" = scheme default);
                              --load may exceed 1 (sustained overload trips
                              the pending-event guard), --flows caps total
                              tenant arrivals (0 = unlimited). Example:
                                --traffic "poisson:web:websearch:0.7;mmpp:batch:datamining:0.3:-:4:0.25:10;diurnal:60:0.5:1.5"
  --time-limit-s F            simulated-time horizon (default 600; a normal
                              stop, not an error -- long open-loop runs at
                              testbed rates need more than 600 s of sim time)
  --per-flow-connections      cold connection per flow (default for leafspine)
  --persistent-connections    warm connection pool (default for star)
transport:
  --transport dctcp|ecnstar   (default dctcp)
  --sack --delayed-ack        TCP options
  --rto-min-us T              (default 10000 star / 5000 leafspine)
faults / robustness:
  --faults SPEC               ';'-separated fault list applied to the built
                              topology (times in ms):
                                linkdown:<target>:<start>:<duration>
                                loss:<target>:<p>[:<start>:<duration>]
                                geloss:<target>:<p>[:<burst_pkts>[:<start>:<duration>]]
                                squeeze:<target>:<bytes>:<start>:<duration>
                              <target> is a port-name glob ("leaf*", "*.nic",
                              "sw0.p3") or a link pair "leaf0-spine2" (downs
                              both directions). Example:
                                --faults "geloss:leaf*:0.01;linkdown:leaf0-spine0:100:50"
  --check-invariants          attach a runtime invariant checker (byte
                              conservation, occupancy, timestamps) to every
                              port and report the outcome
  --fail-on-invariant         implies --check-invariants; any violation fails
                              the run (error kind "invariant-violation",
                              flight-recorder postmortem attached)
  --wall-budget-ms F          per-run wall-clock watchdog: a run exceeding it
                              fails as "timeout" instead of hanging its worker
  --event-budget N            per-run simulated-event budget (deterministic;
                              exceeding it fails the run as "timeout")
  --sim-time-budget-s F       per-run simulated-time budget in seconds
                              (deterministic "timeout"; unlike the normal
                              time limit, exceeding it is an error)
  --pending-budget N          cap on pending simulator events; exceeding it
                              fails the run as "oom-guard"
observability:
  --metrics-out PATH          write a tcn-metrics-1 JSON snapshot of every
                              counter/gauge/histogram after the run ("-" =
                              stdout; in a sweep: merged across all runs)
  --trace-out PATH            stream a tcn-trace-1 JSONL per-packet event
                              trace (enq/deq/drop/mark) during the run
                              (single-run only, rejected in sweeps)
  --sample-interval-us F      sample every (port, queue) each F us of sim
                              time (depth, sojourn, marks, throughput) and
                              reduce each series online into stability
                              metrics (oscillation score, sojourn CV, mark
                              burstiness, stable/oscillating/saturated);
                              the reduction rides the tcn-bench-1 JSON and
                              journal. Off by default; sampling changes no
                              FCT/drop/mark result
  --sample-ring N             per-channel ring capacity: the last N samples
                              are retained for --series-out (default 2048;
                              the stability reduction always sees every
                              sample)
  --series-out PATH           write a tcn-series-1 JSONL dump of every
                              sampled channel after the run (single-run
                              only, rejected in sweeps; implies sampling at
                              100 us when --sample-interval-us is not given)
sweep execution (tool-level flags, handled by tcnsim itself):
  --loads l1,l2,...           run a load sweep (cross product with --seeds)
  --seeds s1,s2,...           run a seed sweep
  --jobs N                    parallel sweep workers (0 = one per core);
                              aggregated output is byte-identical for any N
  --json PATH                 write structured per-run results, schema
                              tcn-bench-1 ("-" = stdout)
  --fault-grid c1|c2|...      sweep a fault axis: each '|'-separated cell is
                              a complete --faults list ("none" = fault-free),
                              crossed with --loads/--seeds
  --traffic-grid c1|c2|...    sweep a traffic axis: each '|'-separated cell
                              is a complete --traffic list ("none" = the
                              closed-loop baseline), innermost grid dimension
  --on-failure P              what a failed run does to the sweep:
                              cancel_all (default; skip the rest) |
                              record_and_continue | retry
  --retries N                 max attempts per job (implies --on-failure
                              retry; exponential backoff with deterministic
                              jitter between attempts)
  --journal PATH              append a tcn-journal-1 checkpoint line (fsync'd)
                              as each run completes
  --resume PATH               restore completed runs from a journal and run
                              only the rest; extends PATH in place unless
                              --journal names a different file
misc:
  --seed S                    RNG seed (default 1)
  --help
)";
}

FctExperiment parse_cli(const std::vector<std::string>& args) {
  FctExperiment cfg;
  // Star testbed defaults; overridden below if leafspine is selected.
  bool is_leafspine = false;
  bool rtt_lambda_set = false, red_k_set = false, rto_set = false;
  bool services_set = false, workloads_set = false, conn_set = false;
  sim::Time time_limit = 600 * sim::kSecond;

  cfg.sched.kind = SchedKind::kDwrr;
  cfg.load = 0.7;
  cfg.num_flows = 1000;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument(flag + ": missing value");
      }
      return args[++i];
    };
    if (flag == "--topology") {
      const auto& v = value();
      if (v == "star") {
        is_leafspine = false;
      } else if (v == "leafspine") {
        is_leafspine = true;
      } else {
        throw std::invalid_argument("--topology: star or leafspine");
      }
    } else if (flag == "--hosts") {
      cfg.star.num_hosts = to_u64(flag, value());
    } else if (flag == "--scheme") {
      cfg.scheme = parse_scheme(value());
    } else if (flag == "--sched") {
      parse_sched_spec(value(), cfg.sched);
    } else if (flag == "--rtt-lambda-us") {
      cfg.params.rtt_lambda =
          static_cast<sim::Time>(to_double(flag, value()) * sim::kMicrosecond);
      rtt_lambda_set = true;
    } else if (flag == "--red-k-bytes") {
      cfg.params.red_threshold_bytes = to_u64(flag, value());
      red_k_set = true;
    } else if (flag == "--load") {
      cfg.load = to_double(flag, value());
    } else if (flag == "--flows") {
      cfg.num_flows = to_u64(flag, value());
    } else if (flag == "--services") {
      cfg.num_services = static_cast<std::uint32_t>(to_u64(flag, value()));
      services_set = true;
    } else if (flag == "--workload") {
      cfg.service_workloads.clear();
      for (const auto& w : split(value())) {
        cfg.service_workloads.push_back(parse_workload(w));
      }
      if (cfg.service_workloads.empty()) {
        throw std::invalid_argument("--workload: empty list");
      }
      workloads_set = true;
    } else if (flag == "--pias") {
      cfg.pias = true;
    } else if (flag == "--per-flow-connections") {
      cfg.persistent_connections = false;
      conn_set = true;
    } else if (flag == "--persistent-connections") {
      cfg.persistent_connections = true;
      conn_set = true;
    } else if (flag == "--transport") {
      const auto& v = value();
      if (v == "dctcp") {
        cfg.tcp.cc = transport::CongestionControl::kDctcp;
      } else if (v == "ecnstar") {
        cfg.tcp.cc = transport::CongestionControl::kEcnStar;
      } else {
        throw std::invalid_argument("--transport: dctcp or ecnstar");
      }
    } else if (flag == "--sack") {
      cfg.tcp.sack = true;
    } else if (flag == "--delayed-ack") {
      cfg.tcp.delayed_ack = true;
    } else if (flag == "--rto-min-us") {
      cfg.tcp.rto_min =
          static_cast<sim::Time>(to_double(flag, value()) * sim::kMicrosecond);
      cfg.tcp.rto_init = cfg.tcp.rto_min;
      rto_set = true;
    } else if (flag == "--faults") {
      cfg.faults = fault::parse_fault_specs(value());
    } else if (flag == "--traffic") {
      cfg.traffic = traffic::parse_traffic_spec(value());
    } else if (flag == "--check-invariants") {
      cfg.check_invariants = true;
    } else if (flag == "--fail-on-invariant") {
      cfg.check_invariants = true;
      cfg.fail_on_invariant = true;
    } else if (flag == "--wall-budget-ms") {
      cfg.wall_budget_ms = to_double(flag, value());
      if (cfg.wall_budget_ms <= 0) {
        throw std::invalid_argument("--wall-budget-ms: must be positive");
      }
    } else if (flag == "--event-budget") {
      cfg.event_budget = to_u64(flag, value());
    } else if (flag == "--sim-time-budget-s") {
      cfg.sim_time_budget =
          static_cast<sim::Time>(to_double(flag, value()) * sim::kSecond);
      if (cfg.sim_time_budget <= 0) {
        throw std::invalid_argument("--sim-time-budget-s: must be positive");
      }
    } else if (flag == "--pending-budget") {
      cfg.pending_event_budget = to_u64(flag, value());
    } else if (flag == "--time-limit-s") {
      time_limit = static_cast<sim::Time>(to_double(flag, value()) *
                                          sim::kSecond);
      if (time_limit <= 0) {
        throw std::invalid_argument("--time-limit-s: must be positive");
      }
    } else if (flag == "--metrics-out") {
      cfg.metrics_out = value();
      if (cfg.metrics_out.empty()) {
        throw std::invalid_argument("--metrics-out: empty path");
      }
    } else if (flag == "--trace-out") {
      cfg.trace_out = value();
      if (cfg.trace_out.empty()) {
        throw std::invalid_argument("--trace-out: empty path");
      }
    } else if (flag == "--sample-interval-us") {
      cfg.timeseries.interval =
          static_cast<sim::Time>(to_double(flag, value()) * sim::kMicrosecond);
      if (cfg.timeseries.interval <= 0) {
        throw std::invalid_argument("--sample-interval-us: must be positive");
      }
    } else if (flag == "--sample-ring") {
      cfg.timeseries.max_samples = to_u64(flag, value());
      if (cfg.timeseries.max_samples == 0) {
        throw std::invalid_argument("--sample-ring: must be positive");
      }
    } else if (flag == "--series-out") {
      cfg.series_out = value();
      if (cfg.series_out.empty()) {
        throw std::invalid_argument("--series-out: empty path");
      }
    } else if (flag == "--seed") {
      cfg.seed = to_u64(flag, value());
    } else {
      throw std::invalid_argument("unknown flag '" + flag +
                                  "' (see --help)");
    }
  }

  // Topology-derived defaults (the paper's configurations).
  if (is_leafspine) {
    cfg.topology = FctExperiment::Topology::kLeafSpine;
    if (!rtt_lambda_set) cfg.params.rtt_lambda = 78 * sim::kMicrosecond;
    if (!red_k_set) cfg.params.red_threshold_bytes = 65 * 1'500;
    if (!rto_set) {
      cfg.tcp.rto_min = 5 * sim::kMillisecond;
      cfg.tcp.rto_init = 5 * sim::kMillisecond;
    }
    cfg.tcp.init_cwnd_pkts = 16;
    if (!services_set) cfg.num_services = 7;
    if (!workloads_set) {
      cfg.service_workloads = {
          workload::Kind::kWebSearch, workload::Kind::kDataMining,
          workload::Kind::kHadoop, workload::Kind::kCache};
    }
    if (!conn_set) cfg.persistent_connections = false;
  } else {
    cfg.topology = FctExperiment::Topology::kStarConverge;
    cfg.star.host_delay = topo::star_host_delay_for_rtt(
        250 * sim::kMicrosecond, cfg.star.link_prop);
    if (!rtt_lambda_set) cfg.params.rtt_lambda = 256 * sim::kMicrosecond;
    if (!red_k_set) cfg.params.red_threshold_bytes = 32'000;
    if (!rto_set) {
      cfg.tcp.rto_min = 10 * sim::kMillisecond;
      cfg.tcp.rto_init = 10 * sim::kMillisecond;
    }
    if (!services_set) cfg.num_services = 4;
    if (!workloads_set) {
      cfg.service_workloads = {workload::Kind::kWebSearch};
    }
  }
  // CoDel tuning scaled off the base RTT (the testbed recipe: target ~RTT/5,
  // interval ~4x RTT).
  cfg.params.codel_target = cfg.params.rtt_lambda / 5;
  cfg.params.codel_interval = 4 * cfg.params.rtt_lambda;
  // Probabilistic TCN default band around T.
  cfg.params.tcn_tmin = cfg.params.rtt_lambda / 2;
  cfg.params.tcn_tmax = 3 * cfg.params.rtt_lambda / 2;
  cfg.params.tcn_pmax = 1.0;
  cfg.params.seed = cfg.seed;
  cfg.time_limit = time_limit;
  if (cfg.pias &&
      (cfg.sched.kind == SchedKind::kDwrr ||
       cfg.sched.kind == SchedKind::kWfq)) {
    // PIAS needs a strict queue: upgrade to the hybrid automatically.
    cfg.sched.kind = cfg.sched.kind == SchedKind::kDwrr ? SchedKind::kSpDwrr
                                                        : SchedKind::kSpWfq;
    cfg.sched.num_sp = 1;
  }
  if (cfg.pias && (cfg.sched.kind == SchedKind::kSpPifo ||
                   cfg.sched.kind == SchedKind::kAifo)) {
    // The rank-based approximations express PIAS's strict queue through the
    // priority rank program (rank = queue index, so the reserved queue 0
    // outranks everything); the experiment reserves num_sp queues for it.
    cfg.sched.rank = RankProgram::kPriority;
    cfg.sched.num_sp = 1;
  }
  return cfg;
}

std::string format_report(const FctExperiment& cfg, const FctReport& r) {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "scheme=%s sched=%s load=%.0f%% flows=%zu/%zu\n"
      "  avg FCT (all)      : %.1f us\n"
      "  avg FCT (<=100KB)  : %.1f us   p99: %.1f us\n"
      "  avg FCT (>10MB)    : %.1f us\n"
      "  small-flow timeouts: %llu   switch drops: %llu   marks: %llu\n"
      "  events: %llu   sim time: %.3f s\n",
      scheme_name(cfg.scheme).c_str(), sched_name(cfg.sched.kind).c_str(),
      cfg.load * 100, r.flows_completed, r.flows_started, r.summary.avg_all_us,
      r.summary.avg_small_us, r.summary.p99_small_us, r.summary.avg_large_us,
      static_cast<unsigned long long>(r.summary.small_timeouts),
      static_cast<unsigned long long>(r.switch_drops),
      static_cast<unsigned long long>(r.switch_marks),
      static_cast<unsigned long long>(r.events), sim::to_seconds(r.sim_end));
  std::string out = buf;
  if (r.traffic_open_loop) {
    const double dur_s = sim::to_seconds(r.sim_end);
    const double offered_gbps =
        dur_s > 0 ? r.traffic_offered_bytes * 8.0 / dur_s / 1e9 : 0.0;
    const double achieved_gbps =
        dur_s > 0 ? r.traffic_achieved_bytes * 8.0 / dur_s / 1e9 : 0.0;
    std::snprintf(
        buf, sizeof buf,
        "  open loop: %llu arrivals (%llu replayed)   peak active: %llu\n"
        "  offered: %.3f Gbps   achieved: %.3f Gbps\n"
        "  flow slab: %llu slots, %llu reuses, %llu recycles\n",
        static_cast<unsigned long long>(r.traffic_arrivals),
        static_cast<unsigned long long>(r.traffic_replayed),
        static_cast<unsigned long long>(r.traffic_active_peak), offered_gbps,
        achieved_gbps, static_cast<unsigned long long>(r.slab_fresh),
        static_cast<unsigned long long>(r.slab_reused),
        static_cast<unsigned long long>(r.slab_recycled));
    out += buf;
  }
  if (!cfg.faults.empty()) {
    std::snprintf(buf, sizeof buf,
                  "  faults: %zu spec(s)   fault drops: %llu (buffer drops "
                  "reported above)\n",
                  cfg.faults.size(),
                  static_cast<unsigned long long>(r.fault_drops));
    out += buf;
  }
  if (r.stability_analyzed) {
    std::snprintf(
        buf, sizeof buf,
        "  stability[%s]: regime=%s osc=%.3f sojourn_cv=%.3f "
        "mark_burst=%.2f (%llu ticks x %llu channels)\n",
        r.stability_channel.c_str(),
        std::string(obs::regime_name(r.stability.regime)).c_str(),
        r.stability.oscillation_score, r.stability.sojourn_cv,
        r.stability.mark_burstiness,
        static_cast<unsigned long long>(r.series_ticks),
        static_cast<unsigned long long>(r.series_channels));
    out += buf;
  }
  if (r.invariants_checked) {
    if (r.invariant_violations == 0) {
      std::snprintf(buf, sizeof buf, "  invariants: OK (%llu events checked)\n",
                    static_cast<unsigned long long>(r.invariant_events));
    } else {
      std::snprintf(buf, sizeof buf,
                    "  invariants: %llu VIOLATION(S) -- first: %s\n",
                    static_cast<unsigned long long>(r.invariant_violations),
                    r.invariant_message.c_str());
    }
    out += buf;
  }
  return out;
}

}  // namespace tcn::core
