// Command-line front end for the experiment harness: turns flags into an
// FctExperiment so users can run any paper scenario without writing C++
// (the `tcnsim` tool). The parser lives in the library so it is unit-tested.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace tcn::core {

/// Parse `args` (argv[1..]) into an experiment configuration.
/// Throws std::invalid_argument with a helpful message on bad input.
FctExperiment parse_cli(const std::vector<std::string>& args);

/// The --help text.
std::string cli_usage();

/// Parse helpers exposed for reuse/testing.
Scheme parse_scheme(const std::string& name);
SchedKind parse_sched(const std::string& name);
/// Full --sched grammar: a scheduler name with optional parameters --
/// `sp-pifo[:levels]` and `aifo[:window,k]`; every other name takes none.
/// Fills `sched` (kind + parameters) or throws std::invalid_argument.
void parse_sched_spec(const std::string& spec, SchedConfig& sched);
workload::Kind parse_workload(const std::string& name);

/// Render a report the way the tool prints it.
std::string format_report(const FctExperiment& cfg, const FctReport& report);

}  // namespace tcn::core
