// Command-line front end for the experiment harness: turns flags into an
// FctExperiment so users can run any paper scenario without writing C++
// (the `tcnsim` tool). The parser lives in the library so it is unit-tested.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace tcn::core {

/// Parse `args` (argv[1..]) into an experiment configuration.
/// Throws std::invalid_argument with a helpful message on bad input.
FctExperiment parse_cli(const std::vector<std::string>& args);

/// The --help text.
std::string cli_usage();

/// Parse helpers exposed for reuse/testing.
Scheme parse_scheme(const std::string& name);
SchedKind parse_sched(const std::string& name);
workload::Kind parse_workload(const std::string& name);

/// Render a report the way the tool prints it.
std::string format_report(const FctExperiment& cfg, const FctReport& report);

}  // namespace tcn::core
