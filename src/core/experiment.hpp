// High-level FCT experiment harness: builds a topology, installs a scheme
// and scheduler on every switch port, generates a Poisson workload, runs to
// completion, and reports the paper's FCT statistics. Every dynamic-workload
// figure (6-13) is one sweep over this function.
#pragma once

#include <cstdint>
#include <vector>

#include "core/schemes.hpp"
#include "stats/fct.hpp"
#include "transport/tcp.hpp"
#include "workload/distributions.hpp"

namespace tcn::core {

struct FctExperiment {
  enum class Topology { kStarConverge, kLeafSpine };
  Topology topology = Topology::kStarConverge;

  Scheme scheme = Scheme::kTcn;
  SchemeParams params;
  SchedConfig sched;

  // Traffic.
  double load = 0.5;
  std::size_t num_flows = 1000;
  std::uint64_t seed = 1;
  std::uint32_t num_services = 4;
  /// Workload per service (cycled if shorter than num_services).
  std::vector<workload::Kind> service_workloads = {workload::Kind::kWebSearch};
  /// Number of low-priority service queues; defaults to num_services. When it
  /// differs (the 32-queue robustness experiment), each flow is hashed to a
  /// uniform service queue while keeping its service's size distribution.
  std::size_t num_service_queues = 0;

  // PIAS flow scheduling (Sec. 6.1.3 / 6.2): first `pias_threshold` bytes to
  // the shared strict-high-priority queue.
  bool pias = false;
  std::uint64_t pias_threshold = 100'000;

  /// true: flows are messages over warm persistent connections (the testbed
  /// application, Sec. 6.1.2). false: one cold TCP connection per flow (the
  /// ns-2 model used in the large-scale simulations).
  bool persistent_connections = true;

  transport::TcpConfig tcp;

  // Topology parameters (only the matching one is used).
  topo::StarConfig star;
  topo::LeafSpineConfig leaf_spine;

  /// Hard stop; 0 means run until every flow completes or events drain.
  sim::Time time_limit = 0;
};

struct FctReport {
  stats::FctSummary summary;
  std::size_t flows_started = 0;
  std::size_t flows_completed = 0;
  std::uint64_t switch_drops = 0;
  std::uint64_t switch_marks = 0;
  std::uint64_t events = 0;
  sim::Time sim_end = 0;
};

/// Run one experiment; deterministic for a given config (seeded RNG,
/// deterministic event ordering).
FctReport run_fct_experiment(const FctExperiment& cfg);

}  // namespace tcn::core
