// High-level FCT experiment harness: builds a topology, installs a scheme
// and scheduler on every switch port, generates a Poisson workload, runs to
// completion, and reports the paper's FCT statistics. Every dynamic-workload
// figure (6-13) is one sweep over this function.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/schemes.hpp"
#include "fault/fault.hpp"
#include "net/trace.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "stats/fct.hpp"
#include "traffic/spec.hpp"
#include "transport/tcp.hpp"
#include "workload/distributions.hpp"

namespace tcn::core {

/// Coarse classification of why a run failed -- the error taxonomy the
/// sweep runner records and the tcn-bench-1 JSON surfaces. Kept in core
/// (not runner) because run_fct_experiment is what throws it.
enum class RunErrorKind : std::uint8_t {
  kException,  ///< any unclassified exception (config error, logic bug)
  kTimeout,    ///< a wall-clock / sim-time / event budget or the event-storm
               ///< watchdog tripped
  kOomGuard,   ///< the pending-event guard tripped (unbounded growth)
  kInvariant,  ///< invariant checking was strict and found violations
};

/// Exception run_fct_experiment throws for classified failures. Carries the
/// taxonomy kind plus an optional flight-recorder postmortem (the last N
/// port events before death) so a failed run in a 2000-cell sweep explains
/// itself from the RunRecord alone.
class ExperimentError : public std::runtime_error {
 public:
  ExperimentError(RunErrorKind kind, const std::string& what,
                  std::string postmortem = {})
      : std::runtime_error(what),
        kind_(kind),
        postmortem_(std::move(postmortem)) {}

  [[nodiscard]] RunErrorKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& postmortem() const noexcept {
    return postmortem_;
  }

 private:
  RunErrorKind kind_;
  std::string postmortem_;
};

struct FctExperiment {
  enum class Topology { kStarConverge, kLeafSpine };
  Topology topology = Topology::kStarConverge;

  Scheme scheme = Scheme::kTcn;
  SchemeParams params;
  SchedConfig sched;

  // Traffic.
  double load = 0.5;
  std::size_t num_flows = 1000;
  std::uint64_t seed = 1;
  std::uint32_t num_services = 4;
  /// Workload per service (cycled if shorter than num_services).
  std::vector<workload::Kind> service_workloads = {workload::Kind::kWebSearch};
  /// Number of low-priority service queues; defaults to num_services. When it
  /// differs (the 32-queue robustness experiment), each flow is hashed to a
  /// uniform service queue while keeping its service's size distribution.
  std::size_t num_service_queues = 0;

  // PIAS flow scheduling (Sec. 6.1.3 / 6.2): first `pias_threshold` bytes to
  // the shared strict-high-priority queue.
  bool pias = false;
  std::uint64_t pias_threshold = 100'000;

  /// true: flows are messages over warm persistent connections (the testbed
  /// application, Sec. 6.1.2). false: one cold TCP connection per flow (the
  /// ns-2 model used in the large-scale simulations).
  bool persistent_connections = true;

  transport::TcpConfig tcp;

  // Topology parameters (only the matching one is used).
  topo::StarConfig star;
  topo::LeafSpineConfig leaf_spine;

  /// Declarative fault plan applied to the built topology before traffic
  /// starts (link outages, random loss, buffer squeezes). See
  /// fault::parse_fault_specs for the --faults grammar.
  fault::FaultPlan faults;

  /// Open-loop traffic scenario (see traffic::parse_traffic_spec for the
  /// --traffic grammar). When enabled() the closed-loop generators are
  /// replaced by traffic::TrafficEngine: arrivals come from the spec's
  /// tenants/trace on their own clock, per-flow transport state recycles
  /// through a per-run traffic::FlowSlab, FCT statistics stream through the
  /// O(1)-memory collector, `load` may exceed 1 (sustained overload), and
  /// `num_flows` caps total tenant arrivals (0 = unlimited -- then a
  /// time_limit or budget must stop the run). A default pending-event
  /// budget is installed when none is configured, so overload terminates as
  /// a classified kOomGuard failure instead of unbounded growth.
  traffic::TrafficSpec traffic;

  /// Attach a net::InvariantChecker to every port (switch egresses and host
  /// NICs) and report the outcome. Violations are collected, not thrown, so
  /// a broken run still yields a report to debug from. A flight recorder of
  /// `flight_recorder_depth` events rides along; its tail is appended to the
  /// first violation message as a post-mortem.
  bool check_invariants = false;
  std::size_t flight_recorder_depth = obs::FlightRecorder::kDefaultDepth;

  /// Install a per-run obs::MetricsRegistry so ports, markers and transports
  /// publish counters/histograms; the snapshot lands in FctReport::metrics.
  /// Collection changes no simulation result -- only what gets observed.
  bool collect_metrics = false;
  /// Write a tcn-metrics-1 snapshot here after the run (implies
  /// collect_metrics). Unwritable paths throw std::runtime_error.
  std::string metrics_out;
  /// Stream a tcn-trace-1 JSONL trace of every port (switch egresses and
  /// host NICs) here during the run. The file is opened before the
  /// simulation starts, so unwritable paths fail early.
  std::string trace_out;
  /// Extra observer fanned out to every port alongside the checker/trace
  /// writer (test hook); must outlive the run.
  net::PortObserver* extra_observer = nullptr;

  /// Fixed-interval time-series sampling + online stability analysis
  /// (obs::TimeSeries). Off by default (interval == 0): no scope is
  /// installed, ports keep null channel handles, and nothing changes --
  /// not even the metrics snapshot. When enabled, every (port, queue)
  /// records depth/sojourn/marks/throughput each interval; the reduction
  /// lands in FctReport::stability. Sampling adds tick events (so
  /// FctReport::events grows) but changes no FCT, drop or mark result.
  obs::TimeSeriesConfig timeseries;
  /// Write a tcn-series-1 JSONL dump of every sampled channel here after
  /// the run (single-run deep dives). Implies sampling: when no interval
  /// was configured, a 100us default is used. Opened before the simulation
  /// starts, so unwritable paths fail early.
  std::string series_out;

  /// Hard stop; 0 means run until every flow completes or events drain.
  sim::Time time_limit = 0;

  /// Per-run execution budgets (0 = unlimited), enforced inside
  /// sim::Simulator::run. Unlike time_limit -- a normal stop -- exceeding a
  /// budget throws ExperimentError: wall/sim-time/event budgets classify as
  /// kTimeout, the pending-event guard as kOomGuard. Event and sim-time
  /// budgets are deterministic; the wall-clock watchdog measures the host
  /// (use it to bound hung jobs, not as a reproducible limit).
  double wall_budget_ms = 0.0;
  std::uint64_t event_budget = 0;
  sim::Time sim_time_budget = 0;
  std::size_t pending_event_budget = 0;

  /// With check_invariants: treat any invariant violation as a run failure
  /// (ExperimentError, kind kInvariant, postmortem attached) instead of
  /// reporting it in FctReport and returning ok.
  bool fail_on_invariant = false;
};

struct FctReport {
  stats::FctSummary summary;
  std::size_t flows_started = 0;
  std::size_t flows_completed = 0;
  std::uint64_t switch_drops = 0;  ///< shared-buffer drops (congestion)
  std::uint64_t switch_marks = 0;
  /// Packets blackholed by injected faults (downed links, random loss),
  /// summed over every switch port and host NIC -- reported separately from
  /// buffer drops so fault scenarios stay diagnosable.
  std::uint64_t fault_drops = 0;
  /// Packets rejected by scheduler admission control (AIFO's quantile gate),
  /// summed over every switch port -- a scheduling decision, reported apart
  /// from both buffer and fault drops.
  std::uint64_t sched_drops = 0;
  std::uint64_t events = 0;
  sim::Time sim_end = 0;

  // Packet-pool telemetry (deterministic per config): fresh slab growths,
  // zero-allocation free-list reuses, and packets returned to the pool.
  // pool_fresh bounds the run's peak live packet population; pool_reused
  // >> pool_fresh is the steady-state zero-allocation signature.
  std::uint64_t pool_fresh = 0;
  std::uint64_t pool_reused = 0;
  std::uint64_t pool_recycled = 0;

  // Event-engine telemetry (deterministic per config): high-water mark of
  // pending events and calendar-queue rebuilds. Mirrored by the sweep
  // runner into its harness registry as sim/event_peak_pending and
  // sim/calendar_resizes.
  std::uint64_t sim_peak_pending = 0;
  std::uint64_t sim_calendar_resizes = 0;

  // Populated when the run was open loop (cfg.traffic.enabled()). Arrivals
  // counts tenant arrivals + replayed flows; active_peak bounds the slab's
  // working set; offered vs. achieved bytes quantify the load the network
  // absorbed vs. what the engine injected; slab counters mirror the packet
  // pool's fresh/reuse/recycle discipline at flow granularity.
  bool traffic_open_loop = false;
  std::uint64_t traffic_arrivals = 0;
  std::uint64_t traffic_replayed = 0;
  std::uint64_t traffic_active_peak = 0;
  std::uint64_t traffic_offered_bytes = 0;
  std::uint64_t traffic_achieved_bytes = 0;
  std::uint64_t slab_fresh = 0;
  std::uint64_t slab_reused = 0;
  std::uint64_t slab_recycled = 0;

  // Populated when check_invariants was set.
  bool invariants_checked = false;
  std::uint64_t invariant_events = 0;
  std::uint64_t invariant_violations = 0;
  std::string invariant_message;  ///< first violation, empty when clean

  // Populated when collect_metrics (or metrics_out) was set.
  bool metrics_collected = false;
  obs::MetricsSnapshot metrics;
  std::uint64_t trace_records = 0;  ///< JSONL records written to trace_out

  // Populated when time-series sampling ran (cfg.timeseries.enabled() or
  // series_out set). `stability` reduces the run's dominant channel -- the
  // (port, queue) that carried the most tx bytes, i.e. the bottleneck
  // egress -- and is deterministic per config, so it rides the tcn-bench-1
  // JSON and journal byte-identically for any --jobs.
  bool stability_analyzed = false;
  std::uint64_t series_channels = 0;
  std::uint64_t series_ticks = 0;
  std::string stability_channel;
  obs::StabilityResult stability;
};

/// Run one experiment; deterministic for a given config (seeded RNG,
/// deterministic event ordering).
FctReport run_fct_experiment(const FctExperiment& cfg);

}  // namespace tcn::core
