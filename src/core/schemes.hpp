// Factories mapping (scheme, scheduler) enums onto concrete marker and
// scheduler instances -- the configuration surface every bench and example
// drives.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/network.hpp"

namespace tcn::core {

/// The ECN marking schemes evaluated in the paper (Sec. 6 "Schemes
/// compared") plus the probabilistic TCN extension (Sec. 4.3).
enum class Scheme {
  kTcn,          ///< sojourn-time instantaneous marking (the contribution)
  kTcnProb,      ///< probabilistic TCN with Tmin/Tmax/Pmax
  kCodel,        ///< CoDel in mark mode
  kMqEcn,        ///< MQ-ECN (round-robin schedulers only)
  kRedPerQueue,  ///< per-queue RED, standard static threshold (current practice)
  kRedPerPort,   ///< per-port RED (violates scheduling policies)
  kRedDequeue,   ///< dequeue-side per-queue RED (Wu et al.)
  kPie,          ///< full PIE controller (mark mode)
  kIdealRate,    ///< Eq. 2 with the Algorithm-1 departure-rate estimator
  kIdealOracle,  ///< Eq. 2 with capacities known offline (static experiments)
  kNone,         ///< no marking (drop-tail)
};

enum class SchedKind {
  kFifo,
  kSp,
  kDwrr,
  kWrr,
  kWfq,
  kSpDwrr,  ///< num_sp strict queues over DWRR
  kSpWfq,   ///< num_sp strict queues over WFQ
  kPifoStfq,  ///< PIFO running an STFQ rank program
  kSpPifo,    ///< SP-PIFO approximation of the PIFO (NSDI 2020)
  kAifo,      ///< AIFO: single FIFO + quantile admission (SIGCOMM 2021)
};

/// Rank program driving the rank-based kinds (kPifoStfq, kSpPifo, kAifo).
enum class RankProgram {
  kStfq,      ///< start-time fair queueing over equal weights (default)
  kPriority,  ///< rank = queue index (strict-priority analog; PIAS mode)
};

struct SchedConfig {
  SchedKind kind = SchedKind::kDwrr;
  std::size_t num_queues = 4;
  std::size_t num_sp = 1;         ///< strict queues in hybrid kinds
  std::uint64_t quantum = 1'500;  ///< DWRR per-round bytes (equal quanta)
  double mq_ecn_beta = 0.75;      ///< round-time EWMA for MQ-ECN
  /// Rank program for kSpPifo / kAifo (kPifoStfq is STFQ by definition).
  RankProgram rank = RankProgram::kStfq;
  std::size_t sp_pifo_levels = 8;  ///< strict-priority levels for kSpPifo
  std::size_t aifo_window = 128;   ///< AIFO rank-sample window W
  double aifo_k = 0.1;             ///< AIFO headroom parameter, in [0, 1)
};

struct SchemeParams {
  /// RTT x lambda: TCN's threshold T (Eq. 3) and the time component of every
  /// dynamic queue-length threshold (Eq. 2).
  sim::Time rtt_lambda = 0;
  /// Standard static threshold K = C x RTT x lambda in bytes (RED schemes).
  std::uint64_t red_threshold_bytes = 0;
  /// Per-queue thresholds for the oracle ideal RED.
  std::vector<std::uint64_t> oracle_thresholds;
  sim::Time codel_target = 0;
  sim::Time codel_interval = 0;
  /// PIE control parameters (mark mode); target defaults to rtt_lambda/5
  /// and update period to rtt_lambda/2 when left at zero.
  sim::Time pie_target = 0;
  sim::Time pie_update = 0;
  /// Algorithm 1 measurement threshold (paper default from PIE: 10KB).
  std::uint64_t dq_thresh = 10'000;
  double ewma_w = 0.875;
  // Probabilistic TCN.
  sim::Time tcn_tmin = 0;
  sim::Time tcn_tmax = 0;
  double tcn_pmax = 1.0;
  std::uint64_t seed = 1;
};

/// Scheduler factory for switch ports. Throws std::invalid_argument on
/// nonsensical configs (e.g. hybrid with num_sp >= num_queues).
topo::SchedulerFactory make_scheduler_factory(const SchedConfig& cfg);

/// Marker factory. For kMqEcn the produced factory requires the port
/// scheduler (or the inner scheduler of an SP hybrid -- which the paper's
/// MQ-ECN cannot support, so that case throws) to be a RoundRateProvider.
topo::MarkerFactory make_marker_factory(Scheme scheme,
                                        const SchemeParams& params);

std::string scheme_name(Scheme s);
std::string sched_name(SchedKind k);

}  // namespace tcn::core
