#include "core/experiment.hpp"

#include <fstream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "fault/fault.hpp"
#include "net/invariant.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "obs/export.hpp"
#include "pias/pias.hpp"
#include "sim/simulator.hpp"
#include "stats/tracer.hpp"
#include "topo/network.hpp"
#include "traffic/engine.hpp"
#include "traffic/flow_slab.hpp"
#include "transport/connection_pool.hpp"
#include "transport/flow.hpp"
#include "workload/traffic_gen.hpp"

namespace tcn::core {
namespace {

bool is_hybrid(SchedKind k) {
  return k == SchedKind::kSpDwrr || k == SchedKind::kSpWfq;
}

// Open-loop runs at load > 1 grow the active-flow population (and with it
// the pending-event set, one armed retransmission timer per active sender)
// without bound. When the user armed no pending budget of their own, this
// default keeps overload a classified kOomGuard failure instead of an OOM.
// Generous enough that any load <= 1 scenario never comes near it.
constexpr std::size_t kOpenLoopDefaultPendingBudget = 2'000'000;

}  // namespace

FctReport run_fct_experiment(const FctExperiment& cfg) {
  if (cfg.num_services == 0 || cfg.service_workloads.empty()) {
    throw std::invalid_argument("FctExperiment: services misconfigured");
  }

  const bool open_loop = cfg.traffic.enabled();

  // Per-run packet uids: every experiment numbers its packets 1, 2, 3, ...
  // so traces are reproducible under the parallel sweep runner no matter
  // which worker thread or in what order this run executes.
  net::PacketUidScope uid_scope;

  // Per-run flow uids, the flow-granularity sibling: the open-loop engine
  // numbers its flows from here, so jobs=1 vs jobs=N sweeps with traffic
  // cells in the grid stay byte-identical. Installed unconditionally (the
  // closed-loop managers keep their own sequential ids and never draw).
  traffic::FlowUidScope flow_uid_scope;

  // Per-run packet pool (sibling of the uid scope): every make_packet() in
  // this run draws from a private free list and recycles back into it, so
  // steady-state packet churn never touches the heap and concurrent sweep
  // jobs never share packet storage. Declared before the simulator and
  // topology so in-flight packets recycle into a still-live pool during
  // teardown (destruction is reverse declaration order).
  net::PacketPool packet_pool;
  net::PacketPool::Scope packet_pool_scope(packet_pool);

  // Per-run metrics registry (third sibling scope): installed before the
  // topology is built so every Port, Marker and TcpSender resolves its
  // handles at construction. When metrics are off no scope exists and every
  // instrument stays a null handle -- observation never changes results.
  const bool collect_metrics = cfg.collect_metrics || !cfg.metrics_out.empty();
  obs::MetricsRegistry registry;
  std::optional<obs::MetricsRegistry::Scope> metrics_scope;
  if (collect_metrics) metrics_scope.emplace(registry);

  // Time-series sampler (fourth sibling scope), likewise installed before
  // the topology so every port registers its per-queue channels at
  // construction. --series-out implies sampling at a 100us default.
  obs::TimeSeriesConfig ts_cfg = cfg.timeseries;
  if (!cfg.series_out.empty() && !ts_cfg.enabled()) {
    ts_cfg.interval = 100 * sim::kMicrosecond;
  }
  const bool sample_series = ts_cfg.enabled();
  std::optional<obs::TimeSeries> series;
  std::optional<obs::TimeSeries::Scope> series_scope;
  if (sample_series) {
    series.emplace(ts_cfg);
    series_scope.emplace(*series);
  }

  // Like the trace file: open --series-out before the run so unwritable
  // paths fail in milliseconds.
  std::ofstream series_file;
  if (!cfg.series_out.empty()) {
    series_file = obs::open_output_file(cfg.series_out);
  }

  // The trace file opens before the simulation runs a single event, so an
  // unwritable --trace-out path fails in milliseconds, not after the run.
  std::ofstream trace_file;
  std::optional<obs::JsonlTraceWriter> trace_writer;
  if (!cfg.trace_out.empty()) {
    trace_file = obs::open_output_file(cfg.trace_out);
    trace_writer.emplace(trace_file);
  }

  // Hybrids reserve num_sp strict queues ahead of the service queues; the
  // rank-based approximations do the same when running the priority rank
  // program (PIAS mode: queue 0 outranks all service queues by rank).
  const bool rank_priority =
      (cfg.sched.kind == SchedKind::kSpPifo ||
       cfg.sched.kind == SchedKind::kAifo) &&
      cfg.sched.rank == RankProgram::kPriority;
  const std::size_t num_sp = is_hybrid(cfg.sched.kind) || rank_priority
                                 ? cfg.sched.num_sp
                                 : 0;
  const std::size_t num_service_queues =
      cfg.num_service_queues > 0 ? cfg.num_service_queues : cfg.num_services;

  SchedConfig sched = cfg.sched;
  sched.num_queues = num_sp + num_service_queues;

  sim::Simulator sim;
  const auto sched_factory = make_scheduler_factory(sched);
  const auto marker_factory = make_marker_factory(cfg.scheme, cfg.params);

  topo::Network network = [&] {
    if (cfg.topology == FctExperiment::Topology::kStarConverge) {
      topo::StarConfig star = cfg.star;
      star.num_queues = sched.num_queues;
      return topo::build_star(sim, star, sched_factory, marker_factory);
    }
    topo::LeafSpineConfig ls = cfg.leaf_spine;
    ls.num_queues = sched.num_queues;
    return topo::build_leaf_spine(sim, ls, sched_factory, marker_factory);
  }();

  // Fault plan and invariant checking attach to the freshly built topology
  // before any traffic is scheduled; both must outlive the run.
  fault::FaultInjector injector(sim, cfg.seed ^ 0xfa117a6c7ed5eedULL);
  if (!cfg.faults.empty()) injector.apply(network, cfg.faults);

  // Observer stack over every port (switch egresses and host NICs). Order
  // matters: the flight recorder runs FIRST so the event that trips the
  // checker is already in the ring when the post-mortem formats it. The
  // recorder also rides along whenever a budget is armed -- a budget kill
  // is exactly the moment a postmortem pays for itself -- and observers
  // never change simulation results, only what gets reported.
  // Open-loop runs always have (at least) the default pending-event guard
  // armed, so they get the same budget-kill postmortem treatment.
  const bool has_budget = cfg.wall_budget_ms > 0.0 || cfg.event_budget != 0 ||
                          cfg.sim_time_budget != 0 ||
                          cfg.pending_event_budget != 0 || open_loop;
  const bool record_flight =
      cfg.flight_recorder_depth > 0 && (cfg.check_invariants || has_budget);
  obs::FlightRecorder flight_recorder(cfg.flight_recorder_depth);
  net::InvariantChecker checker(/*fail_fast=*/false);
  std::vector<net::PortObserver*> observers;
  if (record_flight) observers.push_back(&flight_recorder);
  if (cfg.check_invariants) {
    if (record_flight) {
      checker.set_postmortem([&] { return flight_recorder.format_tail(); });
    }
    observers.push_back(&checker);
  }
  if (trace_writer) observers.push_back(&*trace_writer);
  if (cfg.extra_observer != nullptr) observers.push_back(cfg.extra_observer);

  stats::TeeObserver tee(observers);
  net::PortObserver* observer = nullptr;
  if (observers.size() == 1) observer = observers.front();
  if (observers.size() > 1) observer = &tee;
  if (observer != nullptr) {
    for (std::size_t s = 0; s < network.num_switches(); ++s) {
      auto& sw = network.switch_at(s);
      for (std::size_t p = 0; p < sw.num_ports(); ++p) {
        sw.port(p).set_observer(observer);
      }
    }
    for (std::size_t h = 0; h < network.num_hosts(); ++h) {
      network.host(h).nic().set_observer(observer);
    }
  }

  // Closed-loop runs keep the exact per-flow collector; open-loop runs
  // stream (O(1) memory) so 10M+ completions don't grow the heap per flow.
  stats::FctCollector fct;
  stats::StreamingFctCollector streaming_fct;
  std::size_t flows_completed = 0;
  const auto on_flow_done = [&](const transport::FlowResult& r) {
    if (open_loop) {
      streaming_fct.add(r);
    } else {
      fct.add(r);
    }
    ++flows_completed;
  };
  transport::FlowManager fm(on_flow_done);
  transport::ConnectionPool pool(on_flow_done);
  const workload::FlowLauncher launcher =
      cfg.persistent_connections
          ? workload::FlowLauncher([&pool](net::Host& src, net::Host& dst,
                                           transport::FlowSpec spec) {
              pool.submit(src, dst, std::move(spec));
            })
          : workload::FlowLauncher([&fm](net::Host& src, net::Host& dst,
                                         transport::FlowSpec spec) {
              fm.start_flow(src, dst, std::move(spec));
            });

  // DSCP plan: strict-priority queues occupy dscp [0, num_sp); services map
  // to dscp num_sp + queue. With PIAS, the head of every flow is tagged into
  // the shared high-priority queue 0 and ACKs ride the high queue too (small
  // control packets are prioritized, Sec. 2.2).
  sim::Rng queue_rng(cfg.seed ^ 0x517cc1b727220a95ULL);
  auto spec_fn = [&](std::uint32_t service,
                     std::uint64_t size) -> transport::FlowSpec {
    transport::FlowSpec spec;
    spec.size = size;
    spec.service = service;
    spec.tcp = cfg.tcp;
    const std::uint8_t service_dscp = static_cast<std::uint8_t>(
        num_sp + (num_service_queues == cfg.num_services
                      ? service % num_service_queues
                      : queue_rng.uniform_int(0, num_service_queues - 1)));
    if (cfg.pias) {
      spec.data_dscp =
          pias::two_priority(0, service_dscp, cfg.pias_threshold);
      spec.ack_dscp = 0;
    } else {
      spec.data_dscp = transport::constant_dscp(service_dscp);
      spec.ack_dscp = service_dscp;
    }
    return spec;
  };

  workload::GenConfig gen_cfg;
  gen_cfg.load = cfg.load;
  gen_cfg.num_flows = cfg.num_flows;
  gen_cfg.num_services = cfg.num_services;
  gen_cfg.seed = cfg.seed;

  std::unique_ptr<workload::ConvergeGenerator> converge;
  std::unique_ptr<workload::AllToAllGenerator> all2all;

  // Open-loop state. The slab is declared after the simulator and network:
  // destruction is reverse order, so live slots tear down (cancelling
  // timers, unbinding ports, recycling packets) while both are still alive.
  std::optional<traffic::FlowSlab> flow_slab;
  std::optional<traffic::FlowSlab::Scope> flow_slab_scope;
  std::unique_ptr<traffic::TrafficEngine> engine;

  if (open_loop) {
    flow_slab.emplace();
    flow_slab_scope.emplace(*flow_slab);
    traffic::EngineConfig ecfg;
    ecfg.load = cfg.load;
    ecfg.max_flows = cfg.num_flows;
    ecfg.seed = cfg.seed;
    ecfg.converge = cfg.topology == FctExperiment::Topology::kStarConverge;
    engine = std::make_unique<traffic::TrafficEngine>(
        sim, network.host_ptrs(), cfg.traffic, ecfg, spec_fn, on_flow_done);
    engine->start();
  } else if (cfg.topology == FctExperiment::Topology::kStarConverge) {
    // Host 0 is the client (receiver); all others serve data to it, and the
    // generator picks the flow's service uniformly (Sec. 6.1.2). The size
    // distribution is the first configured workload (testbed experiments use
    // web search only).
    std::vector<net::Host*> senders;
    for (std::size_t i = 1; i < network.num_hosts(); ++i) {
      senders.push_back(&network.host(i));
    }
    converge = std::make_unique<workload::ConvergeGenerator>(
        sim, launcher, std::move(senders), &network.host(0),
        &workload::distribution(cfg.service_workloads[0]), gen_cfg, spec_fn);
    converge->start();
  } else {
    // 144x143 pairs evenly partitioned into services; service s draws sizes
    // from service_workloads[s % |workloads|] (Sec. 6.2 uses all four).
    std::vector<const sim::Ecdf*> dists;
    for (std::uint32_t s = 0; s < cfg.num_services; ++s) {
      dists.push_back(&workload::distribution(
          cfg.service_workloads[s % cfg.service_workloads.size()]));
    }
    const std::uint32_t num_services = cfg.num_services;
    all2all = std::make_unique<workload::AllToAllGenerator>(
        sim, launcher, network.host_ptrs(), std::move(dists), gen_cfg,
        [num_services](std::size_t src, std::size_t dst) {
          return static_cast<std::uint32_t>((src + dst) % num_services);
        },
        spec_fn);
    all2all->start();
  }

  // Arm the sampler last, after the workload scheduled its first events:
  // the tick stops re-arming once it finds the queue otherwise empty, so a
  // run that would have drained still drains.
  if (sample_series) series->start(sim);

  sim::RunBudget budget;
  budget.max_wall_ms = cfg.wall_budget_ms;
  budget.max_events = cfg.event_budget;
  budget.max_sim_time = cfg.sim_time_budget;
  budget.max_pending = cfg.pending_event_budget;
  // Overload guard: open loop with no explicit pending budget still gets
  // one, so load > 1 dies as a classified kOomGuard failure, not an OOM.
  if (open_loop && budget.max_pending == 0) {
    budget.max_pending = kOpenLoopDefaultPendingBudget;
  }
  if (budget.any()) sim.set_budget(budget);

  const auto postmortem = [&]() -> std::string {
    return record_flight ? flight_recorder.format_tail() : std::string();
  };

  const sim::Time limit = cfg.time_limit > 0 ? cfg.time_limit : sim::kTimeMax;
  try {
    sim.run(limit);
  } catch (const sim::BudgetExceeded& e) {
    const RunErrorKind kind = e.kind() == sim::BudgetExceeded::Kind::kPending
                                  ? RunErrorKind::kOomGuard
                                  : RunErrorKind::kTimeout;
    throw ExperimentError(kind, e.what(), postmortem());
  }

  FctReport report;
  report.summary = open_loop ? streaming_fct.summary() : fct.summary();
  report.flows_started =
      open_loop ? engine->arrivals()
                : (cfg.persistent_connections ? pool.messages_submitted()
                                              : fm.flows_started());
  report.flows_completed = flows_completed;
  if (open_loop) {
    report.traffic_open_loop = true;
    report.traffic_arrivals = engine->arrivals();
    report.traffic_replayed = engine->replayed();
    report.traffic_active_peak = engine->active_peak();
    report.traffic_offered_bytes = engine->offered_bytes();
    report.traffic_achieved_bytes = engine->achieved_bytes();
    report.slab_fresh = flow_slab->fresh_allocs();
    report.slab_reused = flow_slab->reuses();
    report.slab_recycled = flow_slab->recycles();
  }
  report.events = sim.events_executed();
  report.sim_end = sim.now();
  // Pool telemetry: fresh/reused/recycled are deterministic for a given
  // config (single-threaded run, LIFO free list); live() at this point is
  // packets still in flight when the run stopped (drained runs recycle on
  // teardown, after this snapshot).
  report.pool_fresh = packet_pool.fresh_allocs();
  report.pool_reused = packet_pool.reuses();
  report.pool_recycled = packet_pool.recycles();
  report.sim_peak_pending = sim.peak_pending();
  report.sim_calendar_resizes = sim.calendar_resizes();
  for (std::size_t s = 0; s < network.num_switches(); ++s) {
    auto& sw = network.switch_at(s);
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      report.switch_drops += sw.port(p).counters().drops;
      report.switch_marks += sw.port(p).counters().marks;
      report.fault_drops += sw.port(p).counters().fault_drops;
      report.sched_drops += sw.port(p).counters().sched_drops;
    }
  }
  for (std::size_t h = 0; h < network.num_hosts(); ++h) {
    report.fault_drops += network.host(h).nic().counters().fault_drops;
  }
  if (cfg.check_invariants) {
    report.invariants_checked = true;
    report.invariant_events = checker.events_checked();
    report.invariant_violations = checker.violations();
    report.invariant_message = checker.first_violation();
    if (cfg.fail_on_invariant && report.invariant_violations > 0) {
      throw ExperimentError(
          RunErrorKind::kInvariant,
          std::to_string(report.invariant_violations) +
              " invariant violation(s) -- first: " + report.invariant_message,
          postmortem());
    }
  }
  if (sample_series) {
    report.stability_analyzed = true;
    report.series_channels = series->num_channels();
    report.series_ticks = series->ticks();
    if (const obs::TimeSeries::Channel* dom = series->dominant_channel()) {
      report.stability_channel = dom->name();
      report.stability = dom->analyzer().result(dom->cap_bytes());
    }
    // Mirror the headline reduction into the metrics registry (before the
    // snapshot below). Only when sampling ran: a metrics-only run keeps the
    // exact pinned key set of tests/golden/.
    if (collect_metrics) {
      registry.gauge("stability/oscillation_score")
          .set(report.stability.oscillation_score);
      registry.gauge("stability/sojourn_cv").set(report.stability.sojourn_cv);
      registry.gauge("stability/mark_burstiness")
          .set(report.stability.mark_burstiness);
    }
    if (!cfg.series_out.empty()) {
      obs::write_series_jsonl(series_file, *series);
      series_file.flush();
      if (!series_file) {
        throw std::runtime_error("write failed for '" + cfg.series_out + "'");
      }
    }
  }
  if (collect_metrics) {
    report.metrics_collected = true;
    report.metrics = registry.snapshot();
    if (!cfg.metrics_out.empty()) {
      obs::write_text_file(cfg.metrics_out,
                           obs::metrics_to_json(report.metrics) + "\n");
    }
  }
  if (trace_writer) {
    report.trace_records = trace_writer->records_written();
    trace_file.flush();
    if (!trace_file) {
      throw std::runtime_error("write failed for '" + cfg.trace_out + "'");
    }
  }
  return report;
}

}  // namespace tcn::core
