#include "core/schemes.hpp"

#include <memory>
#include <stdexcept>

#include "aqm/codel.hpp"
#include "aqm/mq_ecn.hpp"
#include "aqm/pie.hpp"
#include "aqm/rate_estimator.hpp"
#include "aqm/red_ecn.hpp"
#include "aqm/tcn.hpp"
#include "net/fifo_scheduler.hpp"
#include "sched/aifo.hpp"
#include "sched/dwrr.hpp"
#include "sched/pifo.hpp"
#include "sched/rank.hpp"
#include "sched/sp_pifo.hpp"
#include "sched/sp.hpp"
#include "sched/sp_hybrid.hpp"
#include "sched/wfq.hpp"
#include "sched/wrr.hpp"

namespace tcn::core {

namespace {

/// Rank program for the approximate rank schedulers, per SchedConfig::rank.
sched::RankProgram make_rank_program(const SchedConfig& cfg) {
  switch (cfg.rank) {
    case RankProgram::kStfq:
      return sched::stfq_rank_program(
          std::vector<double>(cfg.num_queues, 1.0));
    case RankProgram::kPriority:
      return sched::priority_rank_program();
  }
  throw std::invalid_argument("make_rank_program: bad rank program");
}

}  // namespace

topo::SchedulerFactory make_scheduler_factory(const SchedConfig& cfg) {
  if (cfg.num_queues == 0) {
    throw std::invalid_argument("SchedConfig: num_queues must be >= 1");
  }
  const bool hybrid =
      cfg.kind == SchedKind::kSpDwrr || cfg.kind == SchedKind::kSpWfq;
  if (hybrid && cfg.num_sp >= cfg.num_queues) {
    throw std::invalid_argument("SchedConfig: num_sp must be < num_queues");
  }

  switch (cfg.kind) {
    case SchedKind::kFifo:
      return [] { return std::make_unique<net::FifoScheduler>(); };
    case SchedKind::kSp:
      return [] { return std::make_unique<sched::SpScheduler>(); };
    case SchedKind::kDwrr:
      return [cfg] {
        return std::make_unique<sched::DwrrScheduler>(
            std::vector<std::uint64_t>(cfg.num_queues, cfg.quantum),
            cfg.mq_ecn_beta);
      };
    case SchedKind::kWrr:
      return [cfg] {
        return std::make_unique<sched::WrrScheduler>(
            std::vector<std::uint32_t>(cfg.num_queues, 1));
      };
    case SchedKind::kWfq:
      return [cfg] {
        return std::make_unique<sched::WfqScheduler>(
            std::vector<double>(cfg.num_queues, 1.0));
      };
    case SchedKind::kSpDwrr:
      return [cfg] {
        return std::make_unique<sched::SpHybridScheduler>(
            cfg.num_sp,
            std::make_unique<sched::DwrrScheduler>(
                std::vector<std::uint64_t>(cfg.num_queues, cfg.quantum),
                cfg.mq_ecn_beta));
      };
    case SchedKind::kSpWfq:
      return [cfg] {
        return std::make_unique<sched::SpHybridScheduler>(
            cfg.num_sp, std::make_unique<sched::WfqScheduler>(
                            std::vector<double>(cfg.num_queues, 1.0)));
      };
    case SchedKind::kPifoStfq:
      return [cfg] {
        return std::make_unique<sched::PifoScheduler>(
            sched::PifoScheduler::stfq_program(
                std::vector<double>(cfg.num_queues, 1.0)));
      };
    case SchedKind::kSpPifo:
      if (cfg.sp_pifo_levels < 2) {
        throw std::invalid_argument(
            "SchedConfig: sp_pifo_levels must be >= 2");
      }
      return [cfg] {
        return std::make_unique<sched::SpPifoScheduler>(cfg.sp_pifo_levels,
                                                        make_rank_program(cfg));
      };
    case SchedKind::kAifo:
      if (cfg.aifo_window < 1) {
        throw std::invalid_argument("SchedConfig: aifo_window must be >= 1");
      }
      if (!(cfg.aifo_k >= 0.0 && cfg.aifo_k < 1.0)) {
        throw std::invalid_argument("SchedConfig: aifo_k must be in [0, 1)");
      }
      return [cfg] {
        return std::make_unique<sched::AifoScheduler>(
            cfg.aifo_window, cfg.aifo_k, make_rank_program(cfg));
      };
  }
  throw std::invalid_argument("make_scheduler_factory: bad kind");
}

topo::MarkerFactory make_marker_factory(Scheme scheme,
                                        const SchemeParams& p) {
  switch (scheme) {
    case Scheme::kTcn:
      return [p](net::Scheduler&, const net::PortConfig&) {
        return std::make_unique<aqm::TcnMarker>(p.rtt_lambda);
      };
    case Scheme::kTcnProb:
      return [p](net::Scheduler&, const net::PortConfig&) {
        return std::make_unique<aqm::TcnProbabilisticMarker>(
            p.tcn_tmin, p.tcn_tmax, p.tcn_pmax, p.seed);
      };
    case Scheme::kCodel:
      return [p](net::Scheduler&, const net::PortConfig&) {
        return std::make_unique<aqm::CodelMarker>(p.codel_target,
                                                  p.codel_interval);
      };
    case Scheme::kMqEcn:
      return [p](net::Scheduler& s, const net::PortConfig&) {
        auto* provider = dynamic_cast<net::RoundRateProvider*>(&s);
        if (provider == nullptr) {
          throw std::invalid_argument(
              "MQ-ECN only supports round-robin schedulers (Sec. 3.3)");
        }
        return std::make_unique<aqm::MqEcnMarker>(provider, p.rtt_lambda);
      };
    case Scheme::kRedPerQueue:
      return [p](net::Scheduler&, const net::PortConfig&) {
        return std::make_unique<aqm::RedEcnMarker>(p.red_threshold_bytes,
                                                   aqm::RedScope::kPerQueue);
      };
    case Scheme::kRedPerPort:
      return [p](net::Scheduler&, const net::PortConfig&) {
        return std::make_unique<aqm::RedEcnMarker>(p.red_threshold_bytes,
                                                   aqm::RedScope::kPerPort);
      };
    case Scheme::kRedDequeue:
      return [p](net::Scheduler&, const net::PortConfig&) {
        return std::make_unique<aqm::RedEcnMarker>(p.red_threshold_bytes,
                                                   aqm::RedScope::kPerQueue,
                                                   aqm::RedSide::kDequeue);
      };
    case Scheme::kPie:
      return [p](net::Scheduler&, const net::PortConfig& port) {
        aqm::PieConfig pie;
        pie.target = p.pie_target > 0 ? p.pie_target : p.rtt_lambda / 5;
        pie.t_update = p.pie_update > 0 ? p.pie_update : p.rtt_lambda / 2;
        pie.dq_thresh = p.dq_thresh;
        pie.ewma_w = p.ewma_w;
        return std::make_unique<aqm::PieMarker>(port.num_queues, pie, p.seed);
      };
    case Scheme::kIdealRate:
      return [p](net::Scheduler&, const net::PortConfig& port) {
        return std::make_unique<aqm::IdealRedMarker>(
            port.num_queues, p.dq_thresh, p.rtt_lambda, p.ewma_w);
      };
    case Scheme::kIdealOracle:
      return [p](net::Scheduler&, const net::PortConfig&) {
        return std::make_unique<aqm::RedEcnMarker>(p.oracle_thresholds);
      };
    case Scheme::kNone:
      return [](net::Scheduler&, const net::PortConfig&) {
        return std::make_unique<net::NullMarker>();
      };
  }
  throw std::invalid_argument("make_marker_factory: bad scheme");
}

std::string scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kTcn: return "TCN";
    case Scheme::kTcnProb: return "TCN-prob";
    case Scheme::kCodel: return "CoDel";
    case Scheme::kMqEcn: return "MQ-ECN";
    case Scheme::kRedPerQueue: return "RED-queue";
    case Scheme::kRedPerPort: return "RED-port";
    case Scheme::kRedDequeue: return "RED-deq";
    case Scheme::kPie: return "PIE";
    case Scheme::kIdealRate: return "Ideal-rate";
    case Scheme::kIdealOracle: return "Ideal-oracle";
    case Scheme::kNone: return "DropTail";
  }
  return "?";
}

std::string sched_name(SchedKind k) {
  switch (k) {
    case SchedKind::kFifo: return "FIFO";
    case SchedKind::kSp: return "SP";
    case SchedKind::kDwrr: return "DWRR";
    case SchedKind::kWrr: return "WRR";
    case SchedKind::kWfq: return "WFQ";
    case SchedKind::kSpDwrr: return "SP/DWRR";
    case SchedKind::kSpWfq: return "SP/WFQ";
    case SchedKind::kPifoStfq: return "PIFO-STFQ";
    case SchedKind::kSpPifo: return "SP-PIFO";
    case SchedKind::kAifo: return "AIFO";
  }
  return "?";
}

}  // namespace tcn::core
