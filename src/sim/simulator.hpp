// Discrete-event simulator core.
//
// A Simulator owns a pending-event heap ordered by (time, insertion sequence)
// so that events scheduled for the same instant fire in scheduling order --
// this makes every run deterministic. Events are arbitrary callables;
// schedule() returns an EventId usable with cancel() (lazy deletion).
//
// The heap is hand-rolled (vector + sift with moves) so each event costs one
// moved std::function and no side-table lookups on the hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace tcn::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `cb` at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, Callback cb);

  /// Schedule `cb` `delay` nanoseconds from now.
  EventId schedule_in(Time delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event (lazy: the entry is skipped when popped).
  /// Cancelling an invalid id is a harmless no-op (returns false).
  /// Cancelling an id that already fired is also harmless: the stale entry
  /// is reclaimed (amortized) so long fault-heavy runs cannot leak, though
  /// the call may still return true.
  bool cancel(EventId id);

  /// Run until the event queue drains or simulation time exceeds `until`.
  /// Returns the number of events executed.
  /// Throws std::runtime_error if more than the event-storm limit of events
  /// execute at one timestamp -- a livelocked component (an event chain that
  /// never advances time) becomes a diagnostic error instead of a hang.
  std::uint64_t run(Time until = kTimeMax);

  /// Adjust the same-timestamp event-storm watchdog (default 10M events).
  void set_event_storm_limit(std::uint64_t limit) noexcept {
    storm_limit_ = limit;
  }

  /// Request that run() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  /// Total events executed so far (diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Pending (non-cancelled) event count.
  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_.size() - cancelled_.size();
  }

  /// Cancelled-but-not-yet-reclaimed entries (diagnostics; bounded by the
  /// number of pending events).
  [[nodiscard]] std::size_t cancelled_backlog() const noexcept {
    return cancelled_.size();
  }

 private:
  struct Entry {
    Time at;
    EventId id;  // doubles as the insertion sequence for FIFO ties
    Callback cb;
  };

  /// True when a fires strictly before b.
  static bool before(const Entry& a, const Entry& b) noexcept {
    return a.at < b.at || (a.at == b.at && a.id < b.id);
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void push_entry(Entry e);
  Entry pop_entry();
  void purge_stale_cancels();

  Time now_ = 0;
  bool stopped_ = false;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t storm_limit_ = 10'000'000;
  std::vector<Entry> heap_;  // binary min-heap by before()
  std::unordered_set<EventId> cancelled_;
};

}  // namespace tcn::sim
