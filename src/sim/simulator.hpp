// Discrete-event simulator core.
//
// A Simulator owns a pending-event calendar queue (sim/event_queue.hpp)
// ordered by (time, insertion sequence) so that events scheduled for the
// same instant fire in scheduling order -- this makes every run
// deterministic, and the order is identical to the binary heap the calendar
// replaced, so golden traces stay byte-for-byte stable. Events are
// arbitrary callables; schedule() returns an EventId usable with cancel().
//
// Zero-allocation hot path: callbacks are move-only InlineCallbacks with
// fixed inline storage (sim/inline_callback.hpp), and they live in a
// free-list slot pool *next to* the queue rather than inside it. Queue
// entries are 24-byte PODs {time, seq, slot, gen}, so restructuring moves
// trivial structs instead of relocating 64-byte callables; a callback is
// constructed once, directly into its slot, and invoked in place -- zero
// relocations over its whole lifetime. Steady state performs no heap
// allocations at all: the calendar ring, slot blocks and free list all
// plateau at the peak pending-event count.
//
// Cancellation is O(1) via slot generations: an EventId encodes (slot,
// generation); cancel() compares the ticket against the slot's current
// generation -- a mismatch means the event already fired (or was already
// cancelled) and is a no-op, a match destroys the captures immediately and
// bumps the generation so the queue discards the dead entry when popped.
// No side tables, no scans, nothing to leak.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/inline_callback.hpp"
#include "sim/time.hpp"

namespace tcn::sim {

/// Cancellation ticket: (slot generation << 32) | (slot index + 1), so a
/// valid id is never 0. Ids are NOT monotone across events (the (at, seq)
/// pop order comes from an internal sequence counter instead).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Per-run execution budgets enforced by Simulator::run(). Every limit is
/// "0 = unlimited". Event and sim-time budgets are deterministic (they
/// depend only on the simulation); the wall-clock budget measures the host
/// and exists to turn a hung job into a diagnosable error instead of a
/// stuck sweep worker.
struct RunBudget {
  /// Hard ceiling on total events executed by this simulator.
  std::uint64_t max_events = 0;
  /// Hard ceiling on simulation time: an event scheduled past this instant
  /// throws instead of executing (distinct from run(until), which is a
  /// normal stop).
  Time max_sim_time = 0;
  /// Wall-clock watchdog for one run() call, in milliseconds. Checked every
  /// kWallCheckInterval events so the hot path stays clock-free.
  double max_wall_ms = 0.0;
  /// OOM guard: ceiling on pending queue entries (a component that schedules
  /// faster than it executes grows the queue without bound).
  std::size_t max_pending = 0;

  [[nodiscard]] bool any() const noexcept {
    return max_events != 0 || max_sim_time != 0 || max_wall_ms != 0.0 ||
           max_pending != 0;
  }
};

/// Thrown by Simulator::run() when a RunBudget limit (or the event-storm
/// watchdog) trips. Derives from std::runtime_error so existing catch
/// sites keep working; the kind lets the sweep runner classify the failure
/// (timeout vs oom-guard) instead of string-matching what().
class BudgetExceeded : public std::runtime_error {
 public:
  enum class Kind {
    kWallClock,   ///< max_wall_ms elapsed
    kSimTime,     ///< next event lies past max_sim_time
    kEvents,      ///< max_events executed
    kPending,     ///< queue grew past max_pending (OOM guard)
    kEventStorm,  ///< same-timestamp livelock watchdog
  };

  BudgetExceeded(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

class Simulator {
 public:
  /// Move-only, allocation-free event callable. Captures larger than the
  /// inline budget are a compile error; wrap them with sim::boxed() if the
  /// allocation is acceptable (tests, per-job runner closures).
  using Callback = InlineCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `cb` at absolute time `at` (must be >= now()). Templated so
  /// the callable is constructed directly into its storage slot -- one
  /// copy/move from the caller's lambda, zero further relocations for the
  /// event's whole lifetime.
  template <typename F>
  EventId schedule_at(Time at, F&& cb) {
    if (at < now_) {
      throw std::invalid_argument("Simulator::schedule_at: time in the past");
    }
    const std::uint32_t s = acquire_slot();
    slot(s) = std::forward<F>(cb);
    const std::uint32_t gen = slot_gens_[s];
    queue_.push(EventEntry{at, next_seq_++, s, gen});
    if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
    return (static_cast<EventId>(gen) << 32) | (s + 1);
  }

  /// Schedule `cb` `delay` nanoseconds from now.
  template <typename F>
  EventId schedule_in(Time delay, F&& cb) {
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Cancel a pending event: O(1). Returns true iff the event was pending
  /// (its captures are destroyed and its slot recycled immediately; the
  /// queue entry becomes a tombstone discarded when popped). Cancelling an
  /// invalid id, an id that already fired, or an already-cancelled id is a
  /// harmless no-op returning false.
  bool cancel(EventId id);

  /// Run until the event queue drains or simulation time exceeds `until`.
  /// Returns the number of events executed.
  /// Throws BudgetExceeded (a std::runtime_error) if more than the
  /// event-storm limit of events execute at one timestamp -- a livelocked
  /// component (an event chain that never advances time) becomes a
  /// diagnostic error instead of a hang -- or when any RunBudget limit set
  /// via set_budget() trips.
  std::uint64_t run(Time until = kTimeMax);

  /// Adjust the same-timestamp event-storm watchdog (default 10M events).
  void set_event_storm_limit(std::uint64_t limit) noexcept {
    storm_limit_ = limit;
  }

  /// Install per-run execution budgets (see RunBudget). All limits default
  /// to unlimited; with no budget set run() pays a single branch per event.
  void set_budget(const RunBudget& budget) noexcept { budget_ = budget; }

  [[nodiscard]] const RunBudget& budget() const noexcept { return budget_; }

  /// Events between wall-clock reads when max_wall_ms is set; a power of
  /// two so the check is a mask, not a division.
  static constexpr std::uint64_t kWallCheckInterval = 4096;

  /// Request that run() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  /// Total events executed so far (diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Pending (non-cancelled) event count.
  [[nodiscard]] std::size_t pending() const noexcept {
    return queue_.size() - tombstones_;
  }

  /// Cancelled-but-not-yet-discarded queue entries (diagnostics; bounded by
  /// the number of queue entries, and each is discarded in O(1) when its
  /// time comes -- cancels can never leak).
  [[nodiscard]] std::size_t cancelled_backlog() const noexcept {
    return tombstones_;
  }

  /// High-water mark of pending queue entries. Engine telemetry: copied
  /// into FctReport after each run and mirrored into the sweep-level
  /// harness MetricsRegistry as the sim/event_peak_pending gauge (the
  /// per-run registry is byte-pinned by the metrics golden, so the
  /// simulator itself registers nothing -- plain counters here keep the
  /// hot path obs-free entirely).
  [[nodiscard]] std::uint64_t peak_pending() const noexcept {
    return peak_pending_;
  }

  /// Calendar-queue rebuilds so far (sim/calendar_resizes counter).
  [[nodiscard]] std::uint64_t calendar_resizes() const noexcept {
    return queue_.resizes();
  }

  /// The pending-event container (introspection for tests/benches).
  [[nodiscard]] const CalendarQueue& queue() const noexcept { return queue_; }

 private:
  friend struct SimulatorTestPeer;

  /// Slot storage: fixed power-of-two blocks that are allocated once and
  /// never move, so growth (a nested schedule while a callback executes in
  /// place) cannot invalidate a live callable, and indexing is a
  /// shift+mask rather than std::deque's divide-by-block-capacity.
  static constexpr std::uint32_t kSlotBlockShift = 6;
  static constexpr std::uint32_t kSlotBlockSize = 1u << kSlotBlockShift;

  [[nodiscard]] Callback& slot(std::uint32_t s) noexcept {
    return slot_blocks_[s >> kSlotBlockShift][s & (kSlotBlockSize - 1)];
  }

  /// Pop a free slot (or grow the pool); the slot's callback is empty.
  std::uint32_t acquire_slot();
  /// Destroy the slot's callback, invalidate outstanding tickets for it
  /// (generation bump) and return the index to the free list.
  void release_slot(std::uint32_t slot) noexcept;

  /// Throws BudgetExceeded for the budget check that tripped on an event
  /// at time `at`.
  [[noreturn]] void throw_budget(BudgetExceeded::Kind kind, Time at) const;

  Time now_ = 0;
  bool stopped_ = false;
  RunBudget budget_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t storm_limit_ = 10'000'000;
  CalendarQueue queue_;
  /// Callback blocks indexed via slot(); the outer vector may reallocate
  /// but only holds pointers -- block addresses are stable for life.
  std::vector<std::unique_ptr<Callback[]>> slot_blocks_;
  std::uint32_t slot_count_ = 0;           // total slots ever created
  std::vector<std::uint32_t> free_slots_;  // LIFO recycled slot indices
  /// Current generation per slot; bumped on every release (fire or cancel)
  /// so stale EventIds can never alias a live event. 32-bit: a collision
  /// needs one slot to cycle 2^32 times while a single entry is pending.
  std::vector<std::uint32_t> slot_gens_;
  std::uint64_t tombstones_ = 0;    // cancelled entries still in the queue
  std::uint64_t peak_pending_ = 0;  // high-water mark of queue_.size()
};

}  // namespace tcn::sim
