// Discrete-event simulator core.
//
// A Simulator owns a pending-event heap ordered by (time, insertion sequence)
// so that events scheduled for the same instant fire in scheduling order --
// this makes every run deterministic. Events are arbitrary callables;
// schedule() returns an EventId usable with cancel() (lazy deletion).
//
// Zero-allocation hot path: callbacks are move-only InlineCallbacks with
// fixed inline storage (sim/inline_callback.hpp), and they live in a
// free-list slot pool *next to* the heap rather than inside it. Heap
// entries are 24-byte PODs {time, id, slot}, so the sift loops move trivial
// structs instead of relocating 64-byte callables; a callback is
// constructed once, directly into its slot, and invoked in place -- zero
// relocations over its whole lifetime. Steady state performs no heap
// allocations at all: the heap vector, slot blocks and free list all
// plateau at the peak pending-event count.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "sim/inline_callback.hpp"
#include "sim/time.hpp"

namespace tcn::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Per-run execution budgets enforced by Simulator::run(). Every limit is
/// "0 = unlimited". Event and sim-time budgets are deterministic (they
/// depend only on the simulation); the wall-clock budget measures the host
/// and exists to turn a hung job into a diagnosable error instead of a
/// stuck sweep worker.
struct RunBudget {
  /// Hard ceiling on total events executed by this simulator.
  std::uint64_t max_events = 0;
  /// Hard ceiling on simulation time: an event scheduled past this instant
  /// throws instead of executing (distinct from run(until), which is a
  /// normal stop).
  Time max_sim_time = 0;
  /// Wall-clock watchdog for one run() call, in milliseconds. Checked every
  /// kWallCheckInterval events so the hot path stays clock-free.
  double max_wall_ms = 0.0;
  /// OOM guard: ceiling on pending heap entries (a component that schedules
  /// faster than it executes grows the heap without bound).
  std::size_t max_pending = 0;

  [[nodiscard]] bool any() const noexcept {
    return max_events != 0 || max_sim_time != 0 || max_wall_ms != 0.0 ||
           max_pending != 0;
  }
};

/// Thrown by Simulator::run() when a RunBudget limit (or the event-storm
/// watchdog) trips. Derives from std::runtime_error so existing catch
/// sites keep working; the kind lets the sweep runner classify the failure
/// (timeout vs oom-guard) instead of string-matching what().
class BudgetExceeded : public std::runtime_error {
 public:
  enum class Kind {
    kWallClock,   ///< max_wall_ms elapsed
    kSimTime,     ///< next event lies past max_sim_time
    kEvents,      ///< max_events executed
    kPending,     ///< heap grew past max_pending (OOM guard)
    kEventStorm,  ///< same-timestamp livelock watchdog
  };

  BudgetExceeded(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

class Simulator {
 public:
  /// Move-only, allocation-free event callable. Captures larger than the
  /// inline budget are a compile error; wrap them with sim::boxed() if the
  /// allocation is acceptable (tests, per-job runner closures).
  using Callback = InlineCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `cb` at absolute time `at` (must be >= now()). Templated so
  /// the callable is constructed directly into its storage slot -- one
  /// copy/move from the caller's lambda, zero further relocations for the
  /// event's whole lifetime.
  template <typename F>
  EventId schedule_at(Time at, F&& cb) {
    if (at < now_) {
      throw std::invalid_argument("Simulator::schedule_at: time in the past");
    }
    const EventId id = next_id_++;
    const std::uint32_t s = acquire_slot();
    slot(s) = std::forward<F>(cb);
    push_entry(Entry{at, id, s});
    return id;
  }

  /// Schedule `cb` `delay` nanoseconds from now.
  template <typename F>
  EventId schedule_in(Time delay, F&& cb) {
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Cancel a pending event (lazy: the entry is skipped when popped).
  /// Cancelling an invalid id is a harmless no-op (returns false).
  /// Cancelling an id that already fired is also harmless: the stale entry
  /// is reclaimed (amortized) so long fault-heavy runs cannot leak, though
  /// the call may still return true.
  bool cancel(EventId id);

  /// Run until the event queue drains or simulation time exceeds `until`.
  /// Returns the number of events executed.
  /// Throws BudgetExceeded (a std::runtime_error) if more than the
  /// event-storm limit of events execute at one timestamp -- a livelocked
  /// component (an event chain that never advances time) becomes a
  /// diagnostic error instead of a hang -- or when any RunBudget limit set
  /// via set_budget() trips.
  std::uint64_t run(Time until = kTimeMax);

  /// Adjust the same-timestamp event-storm watchdog (default 10M events).
  void set_event_storm_limit(std::uint64_t limit) noexcept {
    storm_limit_ = limit;
  }

  /// Install per-run execution budgets (see RunBudget). All limits default
  /// to unlimited; with no budget set run() pays a single branch per event.
  void set_budget(const RunBudget& budget) noexcept { budget_ = budget; }

  [[nodiscard]] const RunBudget& budget() const noexcept { return budget_; }

  /// Events between wall-clock reads when max_wall_ms is set; a power of
  /// two so the check is a mask, not a division.
  static constexpr std::uint64_t kWallCheckInterval = 4096;

  /// Request that run() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  /// Total events executed so far (diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Pending (non-cancelled) event count.
  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_.size() - cancelled_.size();
  }

  /// Cancelled-but-not-yet-reclaimed entries (diagnostics; bounded by the
  /// number of pending events).
  [[nodiscard]] std::size_t cancelled_backlog() const noexcept {
    return cancelled_.size();
  }

 private:
  /// POD heap node; the callback lives in slots_[slot]. Keeping the heap
  /// trivially copyable is what makes sift moves cheap.
  struct Entry {
    Time at;
    EventId id;  // doubles as the insertion sequence for FIFO ties
    std::uint32_t slot;
  };
  static_assert(std::is_trivially_copyable_v<Entry>);

  /// True when a fires strictly before b.
  static bool before(const Entry& a, const Entry& b) noexcept {
    return a.at < b.at || (a.at == b.at && a.id < b.id);
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void push_entry(Entry e);
  Entry pop_entry();
  /// Pop a free slot (or grow the pool); the slot's callback is empty.
  std::uint32_t acquire_slot();
  /// Destroy the slot's callback and return the index to the free list.
  void release_slot(std::uint32_t slot) noexcept;
  void purge_stale_cancels();

  /// Slot storage: fixed power-of-two blocks that are allocated once and
  /// never move, so growth (a nested schedule while a callback executes in
  /// place) cannot invalidate a live callable, and indexing is a
  /// shift+mask rather than std::deque's divide-by-block-capacity.
  static constexpr std::uint32_t kSlotBlockShift = 6;
  static constexpr std::uint32_t kSlotBlockSize = 1u << kSlotBlockShift;

  [[nodiscard]] Callback& slot(std::uint32_t s) noexcept {
    return slot_blocks_[s >> kSlotBlockShift][s & (kSlotBlockSize - 1)];
  }

  /// Throws BudgetExceeded for the budget check that tripped on entry `e`.
  [[noreturn]] void throw_budget(BudgetExceeded::Kind kind, Time at) const;

  Time now_ = 0;
  bool stopped_ = false;
  RunBudget budget_;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t storm_limit_ = 10'000'000;
  std::vector<Entry> heap_;  // binary min-heap by before()
  /// Callback blocks indexed via slot(); the outer vector may reallocate
  /// but only holds pointers -- block addresses are stable for life.
  std::vector<std::unique_ptr<Callback[]>> slot_blocks_;
  std::uint32_t slot_count_ = 0;           // total slots ever created
  std::vector<std::uint32_t> free_slots_;  // LIFO recycled slot indices
  std::unordered_set<EventId> cancelled_;
};

}  // namespace tcn::sim
