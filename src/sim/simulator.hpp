// Discrete-event simulator core.
//
// A Simulator owns a pending-event heap ordered by (time, insertion sequence)
// so that events scheduled for the same instant fire in scheduling order --
// this makes every run deterministic. Events are arbitrary callables;
// schedule() returns an EventId usable with cancel() (lazy deletion).
//
// Zero-allocation hot path: callbacks are move-only InlineCallbacks with
// fixed inline storage (sim/inline_callback.hpp), and they live in a
// free-list slot pool *next to* the heap rather than inside it. Heap
// entries are 24-byte PODs {time, id, slot}, so the sift loops move trivial
// structs instead of relocating 64-byte callables; a callback is
// constructed once, directly into its slot, and invoked in place -- zero
// relocations over its whole lifetime. Steady state performs no heap
// allocations at all: the heap vector, slot blocks and free list all
// plateau at the peak pending-event count.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "sim/inline_callback.hpp"
#include "sim/time.hpp"

namespace tcn::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  /// Move-only, allocation-free event callable. Captures larger than the
  /// inline budget are a compile error; wrap them with sim::boxed() if the
  /// allocation is acceptable (tests, per-job runner closures).
  using Callback = InlineCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `cb` at absolute time `at` (must be >= now()). Templated so
  /// the callable is constructed directly into its storage slot -- one
  /// copy/move from the caller's lambda, zero further relocations for the
  /// event's whole lifetime.
  template <typename F>
  EventId schedule_at(Time at, F&& cb) {
    if (at < now_) {
      throw std::invalid_argument("Simulator::schedule_at: time in the past");
    }
    const EventId id = next_id_++;
    const std::uint32_t s = acquire_slot();
    slot(s) = std::forward<F>(cb);
    push_entry(Entry{at, id, s});
    return id;
  }

  /// Schedule `cb` `delay` nanoseconds from now.
  template <typename F>
  EventId schedule_in(Time delay, F&& cb) {
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Cancel a pending event (lazy: the entry is skipped when popped).
  /// Cancelling an invalid id is a harmless no-op (returns false).
  /// Cancelling an id that already fired is also harmless: the stale entry
  /// is reclaimed (amortized) so long fault-heavy runs cannot leak, though
  /// the call may still return true.
  bool cancel(EventId id);

  /// Run until the event queue drains or simulation time exceeds `until`.
  /// Returns the number of events executed.
  /// Throws std::runtime_error if more than the event-storm limit of events
  /// execute at one timestamp -- a livelocked component (an event chain that
  /// never advances time) becomes a diagnostic error instead of a hang.
  std::uint64_t run(Time until = kTimeMax);

  /// Adjust the same-timestamp event-storm watchdog (default 10M events).
  void set_event_storm_limit(std::uint64_t limit) noexcept {
    storm_limit_ = limit;
  }

  /// Request that run() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  /// Total events executed so far (diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Pending (non-cancelled) event count.
  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_.size() - cancelled_.size();
  }

  /// Cancelled-but-not-yet-reclaimed entries (diagnostics; bounded by the
  /// number of pending events).
  [[nodiscard]] std::size_t cancelled_backlog() const noexcept {
    return cancelled_.size();
  }

 private:
  /// POD heap node; the callback lives in slots_[slot]. Keeping the heap
  /// trivially copyable is what makes sift moves cheap.
  struct Entry {
    Time at;
    EventId id;  // doubles as the insertion sequence for FIFO ties
    std::uint32_t slot;
  };
  static_assert(std::is_trivially_copyable_v<Entry>);

  /// True when a fires strictly before b.
  static bool before(const Entry& a, const Entry& b) noexcept {
    return a.at < b.at || (a.at == b.at && a.id < b.id);
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void push_entry(Entry e);
  Entry pop_entry();
  /// Pop a free slot (or grow the pool); the slot's callback is empty.
  std::uint32_t acquire_slot();
  /// Destroy the slot's callback and return the index to the free list.
  void release_slot(std::uint32_t slot) noexcept;
  void purge_stale_cancels();

  /// Slot storage: fixed power-of-two blocks that are allocated once and
  /// never move, so growth (a nested schedule while a callback executes in
  /// place) cannot invalidate a live callable, and indexing is a
  /// shift+mask rather than std::deque's divide-by-block-capacity.
  static constexpr std::uint32_t kSlotBlockShift = 6;
  static constexpr std::uint32_t kSlotBlockSize = 1u << kSlotBlockShift;

  [[nodiscard]] Callback& slot(std::uint32_t s) noexcept {
    return slot_blocks_[s >> kSlotBlockShift][s & (kSlotBlockSize - 1)];
  }

  Time now_ = 0;
  bool stopped_ = false;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t storm_limit_ = 10'000'000;
  std::vector<Entry> heap_;  // binary min-heap by before()
  /// Callback blocks indexed via slot(); the outer vector may reallocate
  /// but only holds pointers -- block addresses are stable for life.
  std::vector<std::unique_ptr<Callback[]>> slot_blocks_;
  std::uint32_t slot_count_ = 0;           // total slots ever created
  std::vector<std::uint32_t> free_slots_;  // LIFO recycled slot indices
  std::unordered_set<EventId> cancelled_;
};

}  // namespace tcn::sim
