// Pending-event containers for the discrete-event core.
//
// Two implementations of one (non-virtual) contract -- push / peek / pop of
// 24-byte POD entries in strict (time, seq) order:
//
//   BinaryHeapQueue  the PR-3 binary min-heap. O(log n) push/pop, fully
//                    general. Retained as the reference implementation for
//                    the randomized equivalence test and as the in-binary
//                    baseline bench/micro_core measures the calendar queue
//                    against.
//
//   CalendarQueue    a calendar queue (Brown 1988) with a sorted overflow
//                    rung for far-future timers. The event population of a
//                    NIC-rate simulator is heavily skewed toward the near
//                    future (serialization completions, propagation
//                    arrivals, pacing ticks) with a thin far tail (RTOs,
//                    diurnal traffic ramps): the calendar exploits that with
//                    O(1) amortized push (bucket index = time >> shift) and
//                    pops that drain one small sorted bucket at a time.
//
// Pop order is the SAME total order for both -- (at, seq), seq being the
// monotone insertion sequence -- so swapping the simulator's queue cannot
// change any run's event order: every golden trace, journal and jobs=1-vs-N
// sweep aggregate stays byte-identical. The equivalence test drives both
// with identical schedule/cancel streams and asserts identical pop
// sequences.
//
// Neither container knows about cancellation: the Simulator tombstones a
// cancelled event's slot generation and discards dead entries when popped,
// so cancel stays O(1) and the queues stay pure POD containers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace tcn::sim {

/// POD pending-event record. The callback lives in the owning Simulator's
/// slot pool; (slot, gen) is the tombstone ticket, (at, seq) the pop order.
/// Keeping the entry trivially copyable is what makes queue restructuring
/// (heap sifts, calendar rebuilds) cheap.
struct EventEntry {
  Time at;
  std::uint64_t seq;   ///< insertion sequence: FIFO tiebreak at equal times
  std::uint32_t slot;  ///< callback slot index in the Simulator's pool
  std::uint32_t gen;   ///< slot generation the entry was issued against
};
static_assert(sizeof(EventEntry) == 24);
static_assert(std::is_trivially_copyable_v<EventEntry>);

/// True when a fires strictly before b. Total order: ties in `at` resolve
/// by insertion sequence, so same-timestamp events fire in scheduling order.
[[nodiscard]] inline bool entry_before(const EventEntry& a,
                                       const EventEntry& b) noexcept {
  return a.at < b.at || (a.at == b.at && a.seq < b.seq);
}

/// Reference implementation: hand-rolled binary min-heap over entry_before.
class BinaryHeapQueue {
 public:
  void push(const EventEntry& e) {
    heap_.push_back(e);
    sift_up(heap_.size() - 1);
  }

  /// Earliest entry, or nullptr when empty. (Non-const to mirror
  /// CalendarQueue::peek, which settles internal state.)
  [[nodiscard]] const EventEntry* peek() noexcept {
    return heap_.empty() ? nullptr : &heap_.front();
  }

  /// Remove and return the earliest entry. Precondition: !empty().
  EventEntry pop() {
    const EventEntry top = heap_.front();
    if (heap_.size() > 1) {
      heap_.front() = heap_.back();
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return top;
  }

  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::uint64_t resizes() const noexcept { return 0; }

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<EventEntry> heap_;
};

/// Calendar queue: a ring of `num_buckets` (power of two) time buckets of
/// width 2^shift nanoseconds, plus a min-heap overflow rung for entries
/// beyond the ring's one-"day" horizon.
///
/// Invariants:
///   - every bucketed entry has virtual bucket (at >> shift) in
///     [dial, dial + num_buckets) -- so each physical bucket holds entries
///     of exactly one virtual bucket and the first non-empty bucket at or
///     after the dial contains the global minimum;
///   - every overflow entry has virtual bucket >= dial + num_buckets;
///   - the bucket under the dial is kept sorted (descending, so pop is a
///     pop_back) from the moment the dial reaches it; other buckets are
///     unsorted append-only.
///
/// The dial advances while peeking; pushing an entry behind a settled dial
/// (possible only after run(until) returned with events still pending)
/// rewinds via a full rebuild -- rare and O(n). Bucket count and width
/// adapt by rebuild when bucketed occupancy exceeds 2*num_buckets; the ring
/// only grows, plateauing at the peak population like every other hot-path
/// pool, so steady state performs no allocations. resizes() counts rebuilds
/// for observability. All sizing decisions depend only on queue content,
/// never on the host, so runs stay deterministic -- and pop order is exact
/// (at, seq) regardless of sizing, so even a bad width heuristic can only
/// cost speed, not correctness.
class CalendarQueue {
 public:
  static constexpr std::size_t kMinBuckets = 64;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

  CalendarQueue();

  void push(const EventEntry& e);

  /// Earliest entry, or nullptr when empty. Settles the dial (skips empty
  /// buckets, migrates newly eligible overflow entries, sorts the current
  /// bucket) so a following pop() is O(1).
  [[nodiscard]] const EventEntry* peek();

  /// Remove and return the earliest entry. Precondition: !empty().
  EventEntry pop();

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  // Introspection (obs + tests).
  [[nodiscard]] std::uint64_t resizes() const noexcept { return resizes_; }
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] int shift() const noexcept { return shift_; }
  [[nodiscard]] std::size_t overflow_size() const noexcept {
    return overflow_.size();
  }

 private:
  [[nodiscard]] std::uint64_t vbucket(Time at) const noexcept {
    return static_cast<std::uint64_t>(at) >> shift_;
  }
  /// First virtual bucket beyond the ring: entries at or past it overflow.
  [[nodiscard]] std::uint64_t horizon_vb() const noexcept {
    return dial_vb_ + buckets_.size();
  }

  /// Place `e` into its bucket or the overflow rung (no sizing checks).
  void place(const EventEntry& e);
  /// Move overflow entries that fell inside the horizon into their buckets.
  void migrate_overflow();
  /// Re-bucket everything with `new_buckets` buckets of width 2^new_shift,
  /// dial at the earliest entry. Counts as one resize.
  void rebuild(std::size_t new_buckets, int new_shift);
  /// Pick width/bucket-count for the current population and rebuild.
  void resize_to_fit();

  std::vector<std::vector<EventEntry>> buckets_;
  std::size_t bucket_mask_ = 0;      // buckets_.size() - 1 (power of two)
  int shift_ = 10;                   // bucket width = 2^shift_ ns
  std::uint64_t dial_vb_ = 0;        // virtual bucket under the dial
  bool dial_sorted_ = false;         // current bucket sorted descending?
  std::size_t bucketed_ = 0;         // entries in buckets_
  std::vector<EventEntry> overflow_; // min-heap (entry_before) of far entries
  std::size_t size_ = 0;             // bucketed_ + overflow_.size()
  std::uint64_t resizes_ = 0;
};

}  // namespace tcn::sim
