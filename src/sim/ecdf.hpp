// Empirical CDF for flow-size sampling.
//
// Workload generators in datacenter transport papers are driven by empirical
// flow-size CDFs (value, cumulative probability) with linear interpolation
// between points -- this class reproduces that convention (ns-2's
// tcl/ex/tcp-cdf and the PIAS/MQ-ECN generators).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace tcn::sim {

class Ecdf {
 public:
  struct Point {
    double value;  ///< e.g. flow size in bytes
    double cdf;    ///< cumulative probability in [0, 1]
  };

  Ecdf() = default;
  /// Points must be sorted by value with non-decreasing cdf, ending at 1.0.
  /// Throws std::invalid_argument otherwise.
  explicit Ecdf(std::vector<Point> points, std::string name = "");

  /// Inverse-transform sample with linear interpolation between points.
  double sample(Rng& rng) const;

  /// Quantile (inverse CDF) at probability p in [0, 1].
  double quantile(double p) const;

  /// Exact mean of the interpolated distribution.
  double mean() const;

  /// CDF value at `v` (linear interpolation; 0 below first point).
  double cdf_at(double v) const;

  const std::vector<Point>& points() const noexcept { return points_; }
  const std::string& name() const noexcept { return name_; }
  bool empty() const noexcept { return points_.empty(); }

 private:
  std::vector<Point> points_;
  std::string name_;
};

}  // namespace tcn::sim
