// Move-only, small-buffer-optimized event callback.
//
// The simulator fires tens of millions of events per simulated second; a
// std::function<void()> per event costs a heap allocation whenever the
// capture exceeds the library's tiny SBO (16B on libstdc++) and forces every
// capture to be copyable -- which is why packets used to be smuggled through
// events inside a shared_ptr<PacketPtr> wrapper. InlineCallback removes both
// costs: callables are stored in 64 bytes of inline storage, period. A
// callable that does not fit is a compile error (the static_assert below),
// not a silent heap fallback, so the hot path provably never allocates.
// Oversized or intentionally heap-backed callables -- test harnesses, the
// sweep runner's job closures with fat contexts -- go through boxed(),
// which is the one sanctioned type-erased escape hatch.
//
// Moving an InlineCallback move-constructs the stored callable into the new
// slot via a per-type vtable (memcpy for trivially copyable captures), so
// heap sifts in the simulator stay cheap and exception-free: storable
// callables must be nothrow-move-constructible.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace tcn::sim {

class InlineCallback {
 public:
  /// Inline storage budget. Sized for the fattest hot-path capture: a port
  /// forwarding event carries {this, queue index, pooled PacketPtr} -- 32
  /// bytes -- leaving headroom for a second pointer-rich capture without
  /// ever spilling.
  static constexpr std::size_t kInlineBytes = 64;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wrap any void() callable. Implicit so existing schedule_in(d, [..]{})
  /// call sites compile unchanged.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::remove_cvref_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fd = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fd&>,
                  "InlineCallback requires a void() callable");
    static_assert(sizeof(Fd) <= kInlineBytes,
                  "capture exceeds the 64B inline-callback budget -- shrink "
                  "the capture or use sim::boxed() (heap fallback, off the "
                  "hot path)");
    static_assert(alignof(Fd) <= kInlineAlign,
                  "capture is over-aligned for inline-callback storage");
    static_assert(std::is_nothrow_move_constructible_v<Fd>,
                  "inline-callback captures must be nothrow-movable (heap "
                  "sifts move them)");
    ::new (static_cast<void*>(storage_)) Fd(std::forward<F>(f));
    vt_ = vtable_for<Fd>();
  }

  InlineCallback(InlineCallback&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(storage_, other.storage_);
      other.vt_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(storage_, other.storage_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  /// Assign a callable directly into the inline storage -- the zero-copy
  /// path the simulator's slot pool uses: the caller's lambda is
  /// constructed straight into its slot with no intermediate
  /// InlineCallback temporary (and thus no extra relocation).
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::remove_cvref_t<F>, InlineCallback>>>
  InlineCallback& operator=(F&& f) {
    reset();
    using Fd = std::decay_t<F>;
    static_assert(sizeof(Fd) <= kInlineBytes,
                  "capture exceeds the 64B inline-callback budget -- shrink "
                  "the capture or use sim::boxed()");
    static_assert(alignof(Fd) <= kInlineAlign,
                  "capture is over-aligned for inline-callback storage");
    static_assert(std::is_nothrow_move_constructible_v<Fd>,
                  "inline-callback captures must be nothrow-movable");
    ::new (static_cast<void*>(storage_)) Fd(std::forward<F>(f));
    vt_ = vtable_for<Fd>();
    return *this;
  }

  ~InlineCallback() { reset(); }

  /// Destroy the stored callable (empty afterwards).
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  /// Invoke. Undefined on an empty callback (matches the simulator's
  /// contract: an Entry always holds a live callable).
  void operator()() { vt_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-construct src's callable into dst, then destroy src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fd>
  static const VTable* vtable_for() noexcept {
    static constexpr VTable vt{
        [](void* p) { (*static_cast<Fd*>(p))(); },
        [](void* dst, void* src) noexcept {
          Fd* s = static_cast<Fd*>(src);
          ::new (dst) Fd(std::move(*s));
          s->~Fd();
        },
        [](void* p) noexcept { static_cast<Fd*>(p)->~Fd(); },
    };
    return &vt;
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

/// Type-erased heap fallback for callables that exceed the inline budget:
/// the callable lives in a unique_ptr and only the 8-byte handle is stored
/// inline. One allocation per callback -- exactly the cost profile the hot
/// path forbids -- so this is reserved for tests and the sweep runner,
/// where callbacks are per-job, not per-packet.
template <typename F>
InlineCallback boxed(F&& f) {
  auto owned = std::make_unique<std::decay_t<F>>(std::forward<F>(f));
  return InlineCallback([p = std::move(owned)] { (*p)(); });
}

}  // namespace tcn::sim
