// Simulation time: integer nanoseconds.
//
// All of tcn uses a single signed 64-bit nanosecond clock. Integer time makes
// event ordering exact and runs bit-reproducible; 2^63 ns is ~292 years, far
// beyond any simulation horizon.
#pragma once

#include <cstdint>

namespace tcn::sim {

using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// Largest representable time; used as "run forever".
inline constexpr Time kTimeMax = INT64_MAX;

constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr Time from_seconds(double s) noexcept {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

/// Serialization delay of `bytes` on a link of `rate_bps` bits per second,
/// rounded up so a transmission never finishes early.
constexpr Time transmission_time(std::uint64_t bytes, std::uint64_t rate_bps) noexcept {
  // bytes * 8 * 1e9 / rate ns; multiply before divide, with rounding up.
  __extension__ using Wide = unsigned __int128;  // fits 2^64 * 1e9
  const Wide bits = static_cast<Wide>(bytes) * 8;
  const Wide num = bits * static_cast<Wide>(kSecond) +
                   static_cast<Wide>(rate_bps) - 1;
  return static_cast<Time>(num / static_cast<Wide>(rate_bps));
}

}  // namespace tcn::sim
