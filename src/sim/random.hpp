// Seeded random number generation for reproducible experiments.
#pragma once

#include <cstdint>
#include <random>

namespace tcn::sim {

/// Thin wrapper over mt19937_64 with the distributions experiments need.
/// Every experiment owns its own Rng so components never share hidden state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : gen_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(gen_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
  }

  /// Exponential with the given mean (inter-arrival times of a Poisson
  /// process of rate 1/mean).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }

  bool bernoulli(double p) { return uniform() < p; }

  std::mt19937_64& engine() noexcept { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace tcn::sim
