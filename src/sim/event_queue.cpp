#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace tcn::sim {

namespace {

/// Descending (at, seq) order: sorting a bucket with this puts the earliest
/// entry at the back, so draining is pop_back.
bool entry_after(const EventEntry& a, const EventEntry& b) noexcept {
  return entry_before(b, a);
}

}  // namespace

// ---------------------------------------------------------------- bin heap --

void BinaryHeapQueue::sift_up(std::size_t i) {
  const EventEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!entry_before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void BinaryHeapQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const EventEntry e = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && entry_before(heap_[child + 1], heap_[child])) ++child;
    if (!entry_before(heap_[child], e)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

// ---------------------------------------------------------------- calendar --

CalendarQueue::CalendarQueue()
    : buckets_(kMinBuckets), bucket_mask_(kMinBuckets - 1) {}

void CalendarQueue::place(const EventEntry& e) {
  const std::uint64_t vb = vbucket(e.at);
  if (vb >= horizon_vb()) {
    overflow_.push_back(e);
    std::push_heap(overflow_.begin(), overflow_.end(), entry_after);
    return;
  }
  std::vector<EventEntry>& b = buckets_[vb & bucket_mask_];
  if (dial_sorted_ && vb == dial_vb_) {
    // The dial already sorted this bucket (descending); keep the invariant
    // so in-progress draining stays a pop_back. Same-time self-reschedules
    // land at the back (seq is larger), so the common case is O(1).
    b.insert(std::upper_bound(b.begin(), b.end(), e, entry_after), e);
  } else {
    b.push_back(e);
  }
  ++bucketed_;
}

void CalendarQueue::migrate_overflow() {
  const std::uint64_t horizon = horizon_vb();
  while (!overflow_.empty() && vbucket(overflow_.front().at) < horizon) {
    std::pop_heap(overflow_.begin(), overflow_.end(), entry_after);
    const EventEntry e = overflow_.back();
    overflow_.pop_back();
    place(e);
  }
}

void CalendarQueue::push(const EventEntry& e) {
  if (size_ == 0) {
    // Empty queue: re-base the dial on the new entry, O(1).
    dial_vb_ = vbucket(e.at);
    dial_sorted_ = false;
  } else if (vbucket(e.at) < dial_vb_) {
    // Behind a settled dial. Only possible after run(until) returned with
    // later events still pending and the caller then scheduled an earlier
    // one; rebuild with the dial rewound so the one-day invariant holds.
    ++size_;
    place(e);  // may briefly violate the horizon; rebuild fixes everything
    rebuild(buckets_.size(), shift_);
    return;
  }
  ++size_;
  place(e);
  if (bucketed_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
    resize_to_fit();
  }
}

const EventEntry* CalendarQueue::peek() {
  if (size_ == 0) return nullptr;
  for (;;) {
    if (bucketed_ == 0) {
      // Everything lives in the overflow rung: jump the dial to its top
      // instead of sweeping empty days. (Top vb >= old horizon > dial, so
      // the dial never moves backward here.)
      dial_vb_ = vbucket(overflow_.front().at);
      dial_sorted_ = false;
      migrate_overflow();
      continue;
    }
    std::vector<EventEntry>& b = buckets_[dial_vb_ & bucket_mask_];
    if (!b.empty()) {
      if (!dial_sorted_) {
        std::sort(b.begin(), b.end(), entry_after);
        dial_sorted_ = true;
      }
      return &b.back();
    }
    ++dial_vb_;
    dial_sorted_ = false;
    migrate_overflow();  // horizon advanced one bucket
  }
}

EventEntry CalendarQueue::pop() {
  const EventEntry* top = peek();
  assert(top != nullptr);
  const EventEntry e = *top;
  buckets_[dial_vb_ & bucket_mask_].pop_back();
  --bucketed_;
  --size_;
  return e;
}

void CalendarQueue::rebuild(std::size_t new_buckets, int new_shift) {
  std::vector<EventEntry> all;
  all.reserve(size_);
  for (std::vector<EventEntry>& b : buckets_) {
    all.insert(all.end(), b.begin(), b.end());
    b.clear();
  }
  all.insert(all.end(), overflow_.begin(), overflow_.end());
  overflow_.clear();
  assert(all.size() == size_);

  if (new_buckets != buckets_.size()) {
    buckets_.assign(new_buckets, {});
    bucket_mask_ = new_buckets - 1;
  }
  shift_ = new_shift;
  bucketed_ = 0;
  dial_sorted_ = false;
  Time min_at = kTimeMax;
  for (const EventEntry& e : all) min_at = std::min(min_at, e.at);
  dial_vb_ = all.empty() ? 0 : vbucket(min_at);
  for (const EventEntry& e : all) place(e);
  ++resizes_;
}

void CalendarQueue::resize_to_fit() {
  // Bucket count ~ near-future population (so occupancy stays O(1) per
  // bucket); width ~ the mean inter-event gap of the BUCKETED entries only
  // -- far-future outliers (RTOs, diurnal ramps) live in the overflow rung
  // and must not stretch the ring's width. The ring only ever grows (the
  // same plateau-at-peak discipline as the slot pool and the old heap
  // vector), so repeated drain/refill cycles resize once and then run
  // allocation-free. Everything here is a function of queue content only:
  // deterministic.
  const std::size_t want = std::clamp(2 * bucketed_, kMinBuckets, kMaxBuckets);
  const std::size_t new_buckets = std::max(std::bit_ceil(want), buckets_.size());

  Time min_at = kTimeMax;
  Time max_at = 0;
  std::size_t n = 0;
  for (const std::vector<EventEntry>& b : buckets_) {
    for (const EventEntry& e : b) {
      min_at = std::min(min_at, e.at);
      max_at = std::max(max_at, e.at);
      ++n;
    }
  }

  int new_shift = shift_;
  if (n > 1 && max_at > min_at) {
    const std::uint64_t gap =
        static_cast<std::uint64_t>(max_at - min_at) / (n - 1);
    new_shift = std::clamp(static_cast<int>(std::bit_width(gap)), 0, 40);
  }
  rebuild(new_buckets, new_shift);
}

}  // namespace tcn::sim
