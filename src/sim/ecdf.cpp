#include "sim/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tcn::sim {

Ecdf::Ecdf(std::vector<Point> points, std::string name)
    : points_(std::move(points)), name_(std::move(name)) {
  if (points_.empty()) {
    throw std::invalid_argument("Ecdf: no points");
  }
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const auto& p = points_[i];
    if (p.cdf < 0.0 || p.cdf > 1.0) {
      throw std::invalid_argument("Ecdf: cdf out of [0,1]");
    }
    if (i > 0) {
      if (p.value < points_[i - 1].value) {
        throw std::invalid_argument("Ecdf: values not sorted");
      }
      if (p.cdf < points_[i - 1].cdf) {
        throw std::invalid_argument("Ecdf: cdf not monotone");
      }
    }
  }
  if (points_.back().cdf != 1.0) {
    throw std::invalid_argument("Ecdf: last cdf must be 1.0");
  }
}

double Ecdf::quantile(double p) const {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Ecdf::quantile: p out of range");
  }
  if (p <= points_.front().cdf) return points_.front().value;
  // Find first point with cdf >= p.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), p,
      [](const Point& pt, double prob) { return pt.cdf < prob; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  if (hi.cdf == lo.cdf) return hi.value;
  const double f = (p - lo.cdf) / (hi.cdf - lo.cdf);
  return lo.value + f * (hi.value - lo.value);
}

double Ecdf::sample(Rng& rng) const { return quantile(rng.uniform()); }

double Ecdf::mean() const {
  // Piecewise-linear CDF => piecewise-uniform density; the mass between two
  // consecutive points is (cdf_i - cdf_{i-1}) with mean (v_{i-1}+v_i)/2.
  double m = points_.front().value * points_.front().cdf;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double mass = points_[i].cdf - points_[i - 1].cdf;
    m += mass * 0.5 * (points_[i].value + points_[i - 1].value);
  }
  return m;
}

double Ecdf::cdf_at(double v) const {
  if (v < points_.front().value) return 0.0;
  if (v >= points_.back().value) return 1.0;
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), v,
      [](const Point& pt, double value) { return pt.value < value; });
  const auto& hi = *it;
  if (hi.value == v) return hi.cdf;
  const auto& lo = *(it - 1);
  if (hi.value == lo.value) return hi.cdf;
  const double f = (v - lo.value) / (hi.value - lo.value);
  return lo.cdf + f * (hi.cdf - lo.cdf);
}

}  // namespace tcn::sim
