#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace tcn::sim {

void Simulator::sift_up(std::size_t i) {
  Entry e = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(e, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(e);
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Entry e = std::move(heap_[i]);
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], e)) break;
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(e);
}

void Simulator::push_entry(Entry e) {
  heap_.push_back(std::move(e));
  sift_up(heap_.size() - 1);
}

Simulator::Entry Simulator::pop_entry() {
  Entry top = std::move(heap_.front());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

EventId Simulator::schedule_at(Time at, Callback cb) {
  if (at < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  const EventId id = next_id_++;
  push_entry(Entry{at, id, std::move(cb)});
  return id;
}

bool Simulator::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return false;
  // Lazy deletion: remember the id; the heap entry is discarded when popped.
  // Callers must not cancel an id they know has fired (all in-tree callers
  // reset their stored EventId when the event runs); doing so is harmless
  // but retains the id in the cancelled set.
  return cancelled_.insert(id).second;
}

std::uint64_t Simulator::run(Time until) {
  stopped_ = false;
  std::uint64_t count = 0;
  while (!heap_.empty() && !stopped_) {
    if (heap_.front().at > until) break;
    Entry e = pop_entry();
    if (!cancelled_.empty()) {
      const auto it = cancelled_.find(e.id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
    }
    assert(e.at >= now_);
    now_ = e.at;
    ++count;
    ++executed_;
    e.cb();
  }
  return count;
}

}  // namespace tcn::sim
