#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

namespace tcn::sim {

void Simulator::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], e)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

void Simulator::push_entry(Entry e) {
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

Simulator::Entry Simulator::pop_entry() {
  const Entry top = heap_.front();
  if (heap_.size() > 1) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

std::uint32_t Simulator::acquire_slot() {
  if (free_slots_.empty()) {
    if ((slot_count_ >> kSlotBlockShift) == slot_blocks_.size()) {
      slot_blocks_.push_back(std::make_unique<Callback[]>(kSlotBlockSize));
    }
    const std::uint32_t s = slot_count_++;
    // Free-list depth is bounded by the slot count; pre-reserving (with
    // geometric growth, so repeated one-slot expansions stay amortized
    // O(1)) keeps release_slot() genuinely noexcept.
    if (free_slots_.capacity() < slot_count_) {
      free_slots_.reserve(
          std::max<std::size_t>(2 * free_slots_.capacity(), kSlotBlockSize));
    }
    return s;
  }
  const std::uint32_t s = free_slots_.back();
  free_slots_.pop_back();
  return s;
}

void Simulator::release_slot(std::uint32_t s) noexcept {
  slot(s).reset();
  free_slots_.push_back(s);
}

// Every live cancelled id corresponds to a pending heap entry, so the
// cancelled set can never legitimately outgrow the heap. Cancelling an id
// that already fired breaks that correspondence; when it happens often
// enough to matter, one O(pending) sweep reclaims every stale id -- the
// sweep only triggers after >= heap-size stale inserts, so it stays
// amortized O(1) per cancel and the hot path keeps zero side tables.
void Simulator::purge_stale_cancels() {
  std::unordered_set<EventId> pending;
  pending.reserve(heap_.size());
  for (const Entry& e : heap_) pending.insert(e.id);
  for (auto it = cancelled_.begin(); it != cancelled_.end();) {
    it = pending.contains(*it) ? std::next(it) : cancelled_.erase(it);
  }
}

bool Simulator::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return false;
  if (heap_.empty()) {
    // Nothing is pending, so `id` must already have fired (or been
    // reclaimed); any remembered ids are stale too.
    cancelled_.clear();
    return false;
  }
  // Lazy deletion: remember the id; the heap entry is discarded when popped.
  const bool inserted = cancelled_.insert(id).second;
  if (cancelled_.size() > heap_.size()) purge_stale_cancels();
  return inserted;
}

void Simulator::throw_budget(BudgetExceeded::Kind kind, Time at) const {
  std::string what = "Simulator::run: ";
  switch (kind) {
    case BudgetExceeded::Kind::kWallClock:
      what += "wall-clock budget of " + std::to_string(budget_.max_wall_ms) +
              "ms exhausted at t=" + std::to_string(at) + "ns";
      break;
    case BudgetExceeded::Kind::kSimTime:
      what += "sim-time budget of " + std::to_string(budget_.max_sim_time) +
              "ns exceeded by an event at t=" + std::to_string(at) + "ns";
      break;
    case BudgetExceeded::Kind::kEvents:
      what += "event budget of " + std::to_string(budget_.max_events) +
              " events exhausted at t=" + std::to_string(at) + "ns";
      break;
    case BudgetExceeded::Kind::kPending:
      what += "pending-event guard tripped: " +
              std::to_string(heap_.size()) + " heap entries exceed the cap "
              "of " + std::to_string(budget_.max_pending) +
              " (a component is scheduling faster than it executes)";
      break;
    case BudgetExceeded::Kind::kEventStorm:
      break;  // formatted at the throw site (needs the storm counter)
  }
  what += "; " + std::to_string(executed_) + " events executed, " +
          std::to_string(pending()) + " pending";
  throw BudgetExceeded(kind, what);
}

std::uint64_t Simulator::run(Time until) {
  stopped_ = false;
  std::uint64_t count = 0;
  std::uint64_t storm = 0;
  // Budget bookkeeping is hoisted out of the loop: with no budget set the
  // per-event cost is one predictable branch on `has_budget`.
  const bool has_budget = budget_.any();
  using WallClock = std::chrono::steady_clock;
  WallClock::time_point wall_start{};
  if (budget_.max_wall_ms > 0.0) wall_start = WallClock::now();
  while (!heap_.empty() && !stopped_) {
    if (heap_.front().at > until) break;
    if (has_budget) {
      const Time next_at = heap_.front().at;
      if (budget_.max_events != 0 && executed_ >= budget_.max_events) {
        throw_budget(BudgetExceeded::Kind::kEvents, next_at);
      }
      if (budget_.max_sim_time != 0 && next_at > budget_.max_sim_time) {
        throw_budget(BudgetExceeded::Kind::kSimTime, next_at);
      }
      if (budget_.max_pending != 0 && heap_.size() > budget_.max_pending) {
        throw_budget(BudgetExceeded::Kind::kPending, next_at);
      }
      if (budget_.max_wall_ms > 0.0 &&
          (executed_ & (kWallCheckInterval - 1)) == 0) {
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(WallClock::now() -
                                                      wall_start)
                .count();
        if (elapsed_ms > budget_.max_wall_ms) {
          throw_budget(BudgetExceeded::Kind::kWallClock, next_at);
        }
      }
    }
    const Entry e = pop_entry();
    if (!cancelled_.empty()) {
      const auto it = cancelled_.find(e.id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        release_slot(e.slot);  // destroys the unfired callback's captures
        continue;
      }
    }
    assert(e.at >= now_);
    if (e.at == now_) {
      if (++storm > storm_limit_) {
        throw BudgetExceeded(
            BudgetExceeded::Kind::kEventStorm,
            "Simulator::run: event storm -- executed " +
                std::to_string(storm) + " events without advancing past t=" +
                std::to_string(now_) +
                "ns (likely a livelocked component rescheduling itself at "
                "the current time); " +
                std::to_string(pending()) + " events still pending");
      }
    } else {
      storm = 1;
    }
    now_ = e.at;
    ++count;
    ++executed_;
    // Invoke in place: slot blocks never move, so a nested schedule that
    // grows the pool never invalidates the reference below. The guard
    // releases the slot after the call (even on throw); it never
    // reallocates free_slots_ because acquire_slot() pre-reserved it, so
    // the destructor is safe.
    Callback& cb = slot(e.slot);
    struct SlotGuard {
      Callback* cb;
      std::vector<std::uint32_t>* free_list;
      std::uint32_t slot;
      ~SlotGuard() {
        cb->reset();
        free_list->push_back(slot);
      }
    } guard{&cb, &free_slots_, e.slot};
    cb();
  }
  if (heap_.empty()) cancelled_.clear();
  return count;
}

}  // namespace tcn::sim
