#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

namespace tcn::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_slots_.empty()) {
    if ((slot_count_ >> kSlotBlockShift) == slot_blocks_.size()) {
      slot_blocks_.push_back(std::make_unique<Callback[]>(kSlotBlockSize));
    }
    const std::uint32_t s = slot_count_++;
    slot_gens_.push_back(0);
    // Free-list depth is bounded by the slot count; pre-reserving (with
    // geometric growth, so repeated one-slot expansions stay amortized
    // O(1)) keeps release_slot() genuinely noexcept.
    if (free_slots_.capacity() < slot_count_) {
      free_slots_.reserve(
          std::max<std::size_t>(2 * free_slots_.capacity(), kSlotBlockSize));
    }
    return s;
  }
  const std::uint32_t s = free_slots_.back();
  free_slots_.pop_back();
  return s;
}

void Simulator::release_slot(std::uint32_t s) noexcept {
  slot(s).reset();
  // Invalidate every outstanding ticket for this slot: cancel() of a fired
  // (or already-cancelled) event sees a generation mismatch and is a no-op.
  ++slot_gens_[s];
  free_slots_.push_back(s);
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t lo = static_cast<std::uint32_t>(id);
  if (lo == 0 || lo > slot_count_) return false;
  const std::uint32_t s = lo - 1;
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot_gens_[s] != gen) return false;  // already fired or cancelled
  // Pending: destroy the captures now, recycle the slot, and leave the
  // queue entry behind as a tombstone -- pop() sees the generation bump and
  // discards it in O(1) when its time comes.
  release_slot(s);
  ++tombstones_;
  return true;
}

void Simulator::throw_budget(BudgetExceeded::Kind kind, Time at) const {
  std::string what = "Simulator::run: ";
  switch (kind) {
    case BudgetExceeded::Kind::kWallClock:
      what += "wall-clock budget of " + std::to_string(budget_.max_wall_ms) +
              "ms exhausted at t=" + std::to_string(at) + "ns";
      break;
    case BudgetExceeded::Kind::kSimTime:
      what += "sim-time budget of " + std::to_string(budget_.max_sim_time) +
              "ns exceeded by an event at t=" + std::to_string(at) + "ns";
      break;
    case BudgetExceeded::Kind::kEvents:
      what += "event budget of " + std::to_string(budget_.max_events) +
              " events exhausted at t=" + std::to_string(at) + "ns";
      break;
    case BudgetExceeded::Kind::kPending:
      what += "pending-event guard tripped: " +
              std::to_string(queue_.size()) + " queue entries exceed the cap "
              "of " + std::to_string(budget_.max_pending) +
              " (a component is scheduling faster than it executes)";
      break;
    case BudgetExceeded::Kind::kEventStorm:
      break;  // formatted at the throw site (needs the storm counter)
  }
  what += "; " + std::to_string(executed_) + " events executed, " +
          std::to_string(pending()) + " pending";
  throw BudgetExceeded(kind, what);
}

std::uint64_t Simulator::run(Time until) {
  stopped_ = false;
  std::uint64_t count = 0;
  std::uint64_t storm = 0;
  // Budget bookkeeping is hoisted out of the loop: with no budget set the
  // per-event cost is one predictable branch on `has_budget`.
  const bool has_budget = budget_.any();
  using WallClock = std::chrono::steady_clock;
  WallClock::time_point wall_start{};
  if (budget_.max_wall_ms > 0.0) wall_start = WallClock::now();
  while (!stopped_) {
    const EventEntry* top = queue_.peek();
    if (top == nullptr || top->at > until) break;
    if (has_budget) {
      // Budgets are checked against the raw queue front -- tombstones
      // included -- exactly as the heap did, so budget trip points are
      // unchanged and deterministic.
      const Time next_at = top->at;
      if (budget_.max_events != 0 && executed_ >= budget_.max_events) {
        throw_budget(BudgetExceeded::Kind::kEvents, next_at);
      }
      if (budget_.max_sim_time != 0 && next_at > budget_.max_sim_time) {
        throw_budget(BudgetExceeded::Kind::kSimTime, next_at);
      }
      if (budget_.max_pending != 0 && queue_.size() > budget_.max_pending) {
        throw_budget(BudgetExceeded::Kind::kPending, next_at);
      }
      if (budget_.max_wall_ms > 0.0 &&
          (executed_ & (kWallCheckInterval - 1)) == 0) {
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(WallClock::now() -
                                                      wall_start)
                .count();
        if (elapsed_ms > budget_.max_wall_ms) {
          throw_budget(BudgetExceeded::Kind::kWallClock, next_at);
        }
      }
    }
    const EventEntry e = queue_.pop();
    if (slot_gens_[e.slot] != e.gen) {
      // Tombstone: the event was cancelled (slot already recycled); the
      // entry just falls out of the queue here.
      --tombstones_;
      continue;
    }
    assert(e.at >= now_);
    if (e.at == now_) {
      if (++storm > storm_limit_) {
        throw BudgetExceeded(
            BudgetExceeded::Kind::kEventStorm,
            "Simulator::run: event storm -- executed " +
                std::to_string(storm) + " events without advancing past t=" +
                std::to_string(now_) +
                "ns (likely a livelocked component rescheduling itself at "
                "the current time); " +
                std::to_string(pending()) + " events still pending");
      }
    } else {
      storm = 1;
    }
    now_ = e.at;
    ++count;
    ++executed_;
    // Invoke in place: slot blocks never move, so a nested schedule that
    // grows the pool never invalidates the reference below. The guard
    // releases the slot after the call (even on throw); release_slot never
    // reallocates free_slots_ because acquire_slot() pre-reserved it, so
    // the destructor is safe.
    Callback& cb = slot(e.slot);
    struct SlotGuard {
      Simulator* sim;
      std::uint32_t slot;
      ~SlotGuard() { sim->release_slot(slot); }
    } guard{this, e.slot};
    cb();
  }
  assert(!queue_.empty() || tombstones_ == 0);
  return count;
}

}  // namespace tcn::sim
