// Forwarding header: the hand-rolled JSON writer moved to src/obs so the
// observability exporters can use it without depending on the runner.
// Existing tcn::runner::JsonWriter callers keep compiling via these aliases.
#pragma once

#include "obs/json.hpp"

namespace tcn::runner {

using obs::escape_json;
using obs::format_double;
using obs::JsonWriter;

}  // namespace tcn::runner
