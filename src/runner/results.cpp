#include "runner/results.hpp"

#include <cstdio>
#include <stdexcept>

#include "obs/export.hpp"
#include "runner/json.hpp"

namespace tcn::runner {
namespace {

const char* topology_name(core::FctExperiment::Topology t) {
  return t == core::FctExperiment::Topology::kStarConverge ? "star"
                                                           : "leafspine";
}

}  // namespace

void write_run_object(JsonWriter& w, const RunRecord& r, bool include_timing) {
  const auto& cfg = r.job.cfg;
  w.begin_object();
  w.key("index").value(r.job.index);
  w.key("group").value(r.job.group);
  w.key("label").value(r.job.label);
  w.key("scheme").value(core::scheme_name(cfg.scheme));
  w.key("sched").value(core::sched_name(cfg.sched.kind));
  w.key("topology").value(topology_name(cfg.topology));
  w.key("load").value(cfg.load);
  w.key("flows").value(cfg.num_flows);
  w.key("seed").value(cfg.seed);
  w.key("faults").value(r.job.fault_label);
  // Only present when the sweep has a traffic axis or the run was open
  // loop, so closed-loop documents (and the schema golden) are unchanged.
  if (!r.job.traffic_label.empty() || r.report.traffic_open_loop) {
    w.key("traffic").value(r.job.traffic_label);
  }
  w.key("ok").value(r.ok);
  w.key("skipped").value(r.skipped);
  w.key("error").value(r.error);
  w.key("error_kind").value(error_kind_name(r.error_kind));
  w.key("attempts").value(r.attempts);

  const auto& s = r.report.summary;
  w.key("fct").begin_object();
  w.key("count").value(s.count);
  w.key("avg_all_us").value(s.avg_all_us);
  w.key("small_count").value(s.small_count);
  w.key("avg_small_us").value(s.avg_small_us);
  w.key("p99_small_us").value(s.p99_small_us);
  w.key("large_count").value(s.large_count);
  w.key("avg_large_us").value(s.avg_large_us);
  w.key("timeouts").value(s.timeouts);
  w.key("small_timeouts").value(s.small_timeouts);
  w.end_object();

  w.key("counters").begin_object();
  w.key("switch_drops").value(r.report.switch_drops);
  w.key("switch_marks").value(r.report.switch_marks);
  w.key("fault_drops").value(r.report.fault_drops);
  w.key("sched_drops").value(r.report.sched_drops);
  w.key("pool_fresh").value(r.report.pool_fresh);
  w.key("pool_reused").value(r.report.pool_reused);
  w.key("pool_recycled").value(r.report.pool_recycled);
  w.key("sim_peak_pending").value(r.report.sim_peak_pending);
  w.key("sim_calendar_resizes").value(r.report.sim_calendar_resizes);
  w.end_object();

  // Open-loop engine telemetry; absent on closed-loop runs (same conditional
  // discipline as "metrics" below).
  if (r.report.traffic_open_loop) {
    w.key("traffic_counters").begin_object();
    w.key("arrivals").value(r.report.traffic_arrivals);
    w.key("replayed").value(r.report.traffic_replayed);
    w.key("active_peak").value(r.report.traffic_active_peak);
    w.key("offered_bytes").value(r.report.traffic_offered_bytes);
    w.key("achieved_bytes").value(r.report.traffic_achieved_bytes);
    w.key("slab_fresh").value(r.report.slab_fresh);
    w.key("slab_reused").value(r.report.slab_reused);
    w.key("slab_recycled").value(r.report.slab_recycled);
    w.end_object();
  }

  // Time-series stability reduction; absent unless the run sampled, so
  // existing documents (and the schema golden) are unchanged. No timing
  // fields inside: everything is deterministic per config.
  if (r.report.stability_analyzed) {
    w.key("stability").begin_object();
    w.key("channels").value(r.report.series_channels);
    w.key("ticks").value(r.report.series_ticks);
    w.key("channel").value(r.report.stability_channel);
    obs::write_stability_object(w, r.report.stability);
    w.end_object();
  }

  w.key("flows_started").value(r.report.flows_started);
  w.key("flows_completed").value(r.report.flows_completed);
  w.key("events").value(r.report.events);
  w.key("sim_end_s").value(sim::to_seconds(r.report.sim_end));
  w.key("wall_ms").value(include_timing ? r.wall_ms : 0.0);
  w.key("events_per_sec").value(include_timing ? r.events_per_sec : 0.0);
  // Only present when the run collected metrics, so the baseline document
  // (and its golden) is byte-for-byte unchanged when observability is off.
  if (r.report.metrics_collected) {
    w.key("metrics").begin_object();
    obs::write_metrics_object(w, r.report.metrics);
    w.end_object();
  }
  // Likewise: the flight-recorder tail only appears on runs that died with
  // one attached.
  if (!r.postmortem.empty()) {
    w.key("postmortem").value(r.postmortem);
  }
  w.end_object();
}

std::string to_json(const SweepResult& res, const std::string& name,
                    bool include_timing) {
  std::uint64_t total_events = 0;
  for (const auto& r : res.runs) total_events += r.report.events;

  JsonWriter w;
  w.begin_object();
  w.key("schema").value("tcn-bench-1");
  w.key("name").value(name);
  w.key("jobs").value(include_timing ? res.jobs_used : std::size_t{0});
  w.key("wall_ms").value(include_timing ? res.wall_ms : 0.0);
  w.key("totals").begin_object();
  w.key("runs").value(res.runs.size());
  w.key("completed").value(res.completed);
  w.key("failed").value(res.failed);
  w.key("skipped").value(res.skipped);
  // How the result was produced (fresh vs resumed) is host-execution
  // metadata like "jobs": zeroed under include_timing=false so a resumed
  // aggregate stays byte-identical to an uninterrupted one.
  w.key("restored").value(include_timing ? res.restored : std::size_t{0});
  w.key("retries").value(res.retries);
  w.key("failed_timeout").value(res.failed_timeout);
  w.key("failed_invariant").value(res.failed_invariant);
  w.key("failed_oom_guard").value(res.failed_oom_guard);
  w.key("failed_exception").value(res.failed_exception);
  w.key("pool_exceptions").value(res.pool_exceptions);
  w.key("events").value(total_events);
  w.end_object();
  w.key("runs").begin_array();
  for (const auto& r : res.runs) write_run_object(w, r, include_timing);
  w.end_array();
  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

void write_json_file(const SweepResult& res, const std::string& name,
                     const std::string& path) {
  const std::string doc = to_json(res, name);
  if (path == "-") {
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  const std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  const int close_err = std::fclose(f);
  if (n != doc.size() || close_err != 0) {
    throw std::runtime_error("short write to '" + path + "'");
  }
}

std::string metrics_to_json(const SweepResult& res, const std::string& name) {
  JsonWriter w(2);
  w.begin_object();
  w.key("schema").value("tcn-metrics-1");
  w.key("name").value(name);
  w.key("runs").begin_array();
  for (const auto& r : res.runs) {
    if (!r.report.metrics_collected) continue;
    w.begin_object();
    w.key("index").value(r.job.index);
    w.key("group").value(r.job.group);
    w.key("label").value(r.job.label);
    obs::write_metrics_object(w, r.report.metrics);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

void write_metrics_file(const SweepResult& res, const std::string& name,
                        const std::string& path) {
  obs::write_text_file(path, metrics_to_json(res, name));
}

}  // namespace tcn::runner
