// Sweep orchestration: expand a scheme x load x seed x flows x faults x
// traffic grid
// into independent jobs, execute them on a fixed-size worker pool (each job
// gets a fully isolated sim::Simulator/topology built inside
// core::run_fct_experiment), and aggregate results **by job index**.
//
// Determinism contract: every job is self-contained (own simulator, own
// seeded RNGs, per-simulation packet uids via net::PacketUidScope), and
// results land in a preallocated slot keyed by job index, so the aggregated
// output -- tables and BENCH_*.json alike -- is byte-identical for any
// `jobs` value, including 1. The only fields exempt from the contract are
// the wall-clock measurements (RunRecord::wall_ms / events_per_sec), which
// measure the host, not the simulation.
//
// Crash resilience (the three legs, see DESIGN.md §12):
//
//  * Budgets -- per-job wall-clock / event / sim-time budgets configured on
//    the FctExperiment turn a hung or runaway simulation into a recorded
//    `timeout` RunRecord instead of a stuck worker.
//  * Failure policy -- cancel_all (first failure skips the rest),
//    record_and_continue (every cell runs regardless), or retry
//    (re-execute failed jobs with exponential backoff and deterministic
//    jitter). Failures carry an error taxonomy (timeout /
//    invariant-violation / oom-guard / exception) and, when a flight
//    recorder was attached, a postmortem dump.
//  * Journaled resume -- SweepOptions::journal_out appends every terminal
//    RunRecord to a tcn-journal-1 JSONL file (fsync'd, torn-tail
//    tolerant); SweepOptions::resume restores those records and re-runs
//    only the missing jobs, reproducing the aggregate byte-identical to an
//    uninterrupted run (see runner/journal.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"

namespace tcn::runner {

struct JournalData;  // runner/journal.hpp

/// Why a run (or skip) is not ok -- the taxonomy recorded per RunRecord,
/// rolled up in SweepResult and serialized into tcn-bench-1.
enum class ErrorKind : std::uint8_t {
  kNone = 0,   ///< run succeeded
  kException,  ///< unclassified exception (config error, logic bug)
  kTimeout,    ///< a budget or the event-storm watchdog tripped
  kInvariant,  ///< strict invariant checking found violations
  kOomGuard,   ///< the pending-event guard tripped
  kCancelled,  ///< skipped: another job's failure cancelled the sweep
};

/// Stable wire name ("", "exception", "timeout", "invariant-violation",
/// "oom-guard", "cancelled") -- what tcn-bench-1 and the journal store.
[[nodiscard]] std::string_view error_kind_name(ErrorKind kind) noexcept;

/// Inverse of error_kind_name; throws std::invalid_argument on unknown
/// names (a journal written by a future schema).
[[nodiscard]] ErrorKind error_kind_from_name(std::string_view name);

/// One unit of work: a fully specified experiment plus labels for reporting.
struct Job {
  std::size_t index = 0;  ///< slot in SweepResult::runs (assigned by run_jobs)
  std::string group;      ///< sweep/figure name, e.g. "fig06"
  std::string label;      ///< scheme label as printed in tables, e.g. "TCN"
  /// Fault-axis cell label (the --fault-grid spec string, "none" for the
  /// fault-free cell); empty when the sweep has no fault axis.
  std::string fault_label;
  /// Traffic-axis cell label (the --traffic-grid spec string, "none" for
  /// the closed-loop cell); empty when the sweep has no traffic axis.
  std::string traffic_label;
  core::FctExperiment cfg;
};

struct RunRecord {
  Job job;
  bool ok = false;
  bool skipped = false;  ///< cancelled before it started
  std::string error;     ///< what() of the failure, or "cancelled"
  ErrorKind error_kind = ErrorKind::kNone;
  /// Times the job was executed (1 = no retries, 0 = never ran).
  std::uint64_t attempts = 0;
  /// Flight-recorder tail captured at failure (empty when none attached).
  std::string postmortem;
  /// Satisfied from a resume journal instead of executed (not serialized:
  /// a resumed aggregate must be byte-identical to an uninterrupted one).
  bool restored = false;
  core::FctReport report;
  // Host-side measurements; excluded from the determinism contract.
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
};

/// What run_jobs does once a job has failed terminally (after retries,
/// when those are enabled).
enum class FailurePolicy : std::uint8_t {
  /// First failure flips the shared CancelToken; jobs that have not
  /// started yet are recorded as skipped (a 2000-run sweep does not grind
  /// on after its configuration is proven broken).
  kCancelAll,
  /// Record the failure and keep going; the sweep reports every cell.
  kRecordAndContinue,
  /// Re-run failed jobs up to RetryPolicy::max_attempts with exponential
  /// backoff, then record and continue.
  kRetry,
};

[[nodiscard]] std::string_view failure_policy_name(FailurePolicy p) noexcept;
[[nodiscard]] FailurePolicy failure_policy_from_name(std::string_view name);

struct RetryPolicy {
  std::size_t max_attempts = 3;   ///< total executions, including the first
  double backoff_base_ms = 100.0; ///< delay before attempt 2
  double backoff_max_ms = 5000.0; ///< exponential growth cap
  /// Jitter fraction: the delay is scaled by a factor drawn
  /// deterministically from [1-jitter, 1+jitter) keyed on (job index,
  /// attempt, seed) -- decorrelated across jobs yet reproducible.
  double jitter = 0.5;
};

/// Backoff delay before attempt `next_attempt` (>= 2) of job `index` with
/// seed `seed`. Pure function of its arguments (exposed for tests).
[[nodiscard]] double retry_backoff_ms(const RetryPolicy& policy,
                                      std::size_t next_attempt,
                                      std::size_t index, std::uint64_t seed);

struct SweepOptions {
  /// Worker threads; 0 means one per hardware thread.
  std::size_t jobs = 1;
  FailurePolicy failure_policy = FailurePolicy::kCancelAll;
  /// Used when failure_policy == kRetry.
  RetryPolicy retry;
  /// Suppress the real backoff sleep (tests; the recorded attempt count and
  /// results are identical either way).
  bool retry_sleep = true;
  /// Append every terminal RunRecord to this tcn-journal-1 file (fsync'd
  /// per record); empty = no journal. When resuming into the same path the
  /// file is truncated to its valid prefix and extended in place.
  std::string journal_out;
  /// Sweep name stored in a fresh journal's header (cosmetic).
  std::string journal_name;
  /// Previously journaled results to restore instead of re-running; must
  /// have been loaded from a journal whose spec hash matches this job list
  /// (run_jobs validates). Owned by the caller.
  const JournalData* resume = nullptr;
  /// Progress callback, invoked as each job finishes (completion order, not
  /// index order; not invoked for restored records). Calls are serialized
  /// by the runner.
  std::function<void(const RunRecord&)> on_done;
};

struct SweepResult {
  std::vector<RunRecord> runs;  ///< runs[i] is job i -- always index order
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  // Crash-resilience rollups (deterministic; serialized in "totals").
  std::size_t restored = 0;          ///< satisfied from the resume journal
  std::size_t retries = 0;           ///< executions beyond each first attempt
  std::size_t failed_timeout = 0;    ///< ErrorKind::kTimeout
  std::size_t failed_invariant = 0;  ///< ErrorKind::kInvariant
  std::size_t failed_oom_guard = 0;  ///< ErrorKind::kOomGuard
  std::size_t failed_exception = 0;  ///< ErrorKind::kException
  /// Exceptions that escaped the job wrapper into the thread pool -- always
  /// 0 unless the harness itself is buggy (debug builds abort instead).
  std::uint64_t pool_exceptions = 0;
  std::size_t jobs_used = 1;  ///< worker threads actually spawned
  double wall_ms = 0.0;       ///< whole-sweep wall clock
  /// The same rollups as runner/* obs counters (jobs_total, completed,
  /// failed_timeout, ..., retries, restored, pool_exceptions).
  obs::MetricsSnapshot harness_metrics;

  [[nodiscard]] bool ok() const noexcept {
    return failed == 0 && skipped == 0;
  }
};

/// Execute `jobs` (reindexed 0..n-1 in the given order) and collect results
/// deterministically. The per-job simulation is single-threaded; parallelism
/// is across jobs only. Throws std::runtime_error when opt.resume does not
/// match the job list or opt.journal_out cannot be written.
SweepResult run_jobs(std::vector<Job> jobs, const SweepOptions& opt = {});

/// A declarative grid. Expansion order is loads-major, then schemes, then
/// seeds, then flows, then fault cells, then traffic cells -- so with a
/// single seed, flow count, fault plan and traffic cell, job index
/// `li * schemes.size() + si` is (load li, scheme si), which is what the
/// figure table printers rely on.
struct SweepSpec {
  std::string name;  ///< used for Job::group and the JSON "name" field
  core::FctExperiment base;
  std::vector<std::pair<std::string, core::Scheme>> schemes;
  std::vector<double> loads;
  std::vector<std::uint64_t> seeds;   ///< empty -> {base.seed}
  std::vector<std::size_t> flows;     ///< empty -> {base.num_flows}
  /// Fault axis: (label, plan) cells, e.g. from fault::parse_fault_grid.
  /// Empty -> one unlabelled cell running base.faults.
  std::vector<std::pair<std::string, fault::FaultPlan>> faults;
  /// Traffic axis (innermost, inside faults): (label, spec) cells, e.g.
  /// from traffic::parse_traffic_grid; the "none" cell is the closed-loop
  /// baseline. Empty -> one unlabelled cell running base.traffic.
  std::vector<std::pair<std::string, traffic::TrafficSpec>> traffics;

  [[nodiscard]] std::vector<Job> expand() const;
};

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& opt = {});

/// Number of worker threads `opt.jobs` resolves to for `num_jobs` jobs.
std::size_t effective_workers(std::size_t requested, std::size_t num_jobs);

}  // namespace tcn::runner
