// Sweep orchestration: expand a scheme x load x seed x flows grid into
// independent jobs, execute them on a fixed-size worker pool (each job gets
// a fully isolated sim::Simulator/topology built inside
// core::run_fct_experiment), and aggregate results **by job index**.
//
// Determinism contract: every job is self-contained (own simulator, own
// seeded RNGs, per-simulation packet uids via net::PacketUidScope), and
// results land in a preallocated slot keyed by job index, so the aggregated
// output -- tables and BENCH_*.json alike -- is byte-identical for any
// `jobs` value, including 1. The only fields exempt from the contract are
// the wall-clock measurements (RunRecord::wall_ms / events_per_sec), which
// measure the host, not the simulation.
//
// Failure policy: the first job that throws flips a shared CancelToken;
// jobs that have not started yet are recorded as skipped instead of run
// (cooperative cancellation -- a 2000-run sweep does not grind on after its
// configuration is proven broken).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"

namespace tcn::runner {

/// One unit of work: a fully specified experiment plus labels for reporting.
struct Job {
  std::size_t index = 0;  ///< slot in SweepResult::runs (assigned by run_jobs)
  std::string group;      ///< sweep/figure name, e.g. "fig06"
  std::string label;      ///< scheme label as printed in tables, e.g. "TCN"
  core::FctExperiment cfg;
};

struct RunRecord {
  Job job;
  bool ok = false;
  bool skipped = false;  ///< cancelled before it started
  std::string error;     ///< what() of the failure, or "cancelled"
  core::FctReport report;
  // Host-side measurements; excluded from the determinism contract.
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
};

struct SweepOptions {
  /// Worker threads; 0 means one per hardware thread.
  std::size_t jobs = 1;
  /// Cancel remaining jobs once one fails (see header comment).
  bool cancel_on_failure = true;
  /// Progress callback, invoked as each job finishes (completion order, not
  /// index order). Calls are serialized by the runner.
  std::function<void(const RunRecord&)> on_done;
};

struct SweepResult {
  std::vector<RunRecord> runs;  ///< runs[i] is job i -- always index order
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  std::size_t jobs_used = 1;  ///< worker threads actually spawned
  double wall_ms = 0.0;       ///< whole-sweep wall clock

  [[nodiscard]] bool ok() const noexcept {
    return failed == 0 && skipped == 0;
  }
};

/// Execute `jobs` (reindexed 0..n-1 in the given order) and collect results
/// deterministically. The per-job simulation is single-threaded; parallelism
/// is across jobs only.
SweepResult run_jobs(std::vector<Job> jobs, const SweepOptions& opt = {});

/// A declarative grid. Expansion order is loads-major, then schemes, then
/// seeds, then flows -- so with a single seed and flow count, job index
/// `li * schemes.size() + si` is (load li, scheme si), which is what the
/// figure table printers rely on.
struct SweepSpec {
  std::string name;  ///< used for Job::group and the JSON "name" field
  core::FctExperiment base;
  std::vector<std::pair<std::string, core::Scheme>> schemes;
  std::vector<double> loads;
  std::vector<std::uint64_t> seeds;   ///< empty -> {base.seed}
  std::vector<std::size_t> flows;     ///< empty -> {base.num_flows}

  [[nodiscard]] std::vector<Job> expand() const;
};

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& opt = {});

/// Number of worker threads `opt.jobs` resolves to for `num_jobs` jobs.
std::size_t effective_workers(std::size_t requested, std::size_t num_jobs);

}  // namespace tcn::runner
