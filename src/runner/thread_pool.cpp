#include "runner/thread_pool.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace tcn::runner {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(/*discard_pending=*/true); }

void ThreadPool::submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::shutdown(bool discard_pending) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (discard_pending) queue_.clear();
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  // Everything is joined; wake any wait_idle() caller observing the drain.
  idle_cv_.notify_all();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (const std::exception& e) {
      note_escaped_exception(e.what());
    } catch (...) {
      note_escaped_exception("unknown exception");
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::note_escaped_exception(const char* what) noexcept {
  // Sweep jobs catch their own exceptions; one escaping into the pool is a
  // harness bug. Count it, say so, and -- in debug builds -- die where the
  // evidence is, instead of silently dropping the task's result. Release
  // builds keep the worker alive so wait_idle() still returns and the
  // sweep can report the fault via SweepResult::pool_exceptions.
  faulted_.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr, "ThreadPool: exception escaped a task: %s\n", what);
#ifndef NDEBUG
  std::abort();
#endif
}

}  // namespace tcn::runner
