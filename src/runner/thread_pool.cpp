#include "runner/thread_pool.hpp"

#include <stdexcept>

namespace tcn::runner {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(/*discard_pending=*/true); }

void ThreadPool::submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::shutdown(bool discard_pending) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (discard_pending) queue_.clear();
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  // Everything is joined; wake any wait_idle() caller observing the drain.
  idle_cv_.notify_all();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      // Sweep jobs catch their own exceptions; anything that escapes here
      // is a harness bug, but crashing a worker would hang wait_idle().
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace tcn::runner
