#include "runner/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "runner/journal.hpp"
#include "runner/thread_pool.hpp"

namespace tcn::runner {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// splitmix64 finalizer: a cheap, well-mixed hash for the retry jitter.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

ErrorKind classify(core::RunErrorKind kind) noexcept {
  switch (kind) {
    case core::RunErrorKind::kTimeout:
      return ErrorKind::kTimeout;
    case core::RunErrorKind::kOomGuard:
      return ErrorKind::kOomGuard;
    case core::RunErrorKind::kInvariant:
      return ErrorKind::kInvariant;
    case core::RunErrorKind::kException:
      break;
  }
  return ErrorKind::kException;
}

}  // namespace

std::string_view error_kind_name(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::kNone:
      return "";
    case ErrorKind::kException:
      return "exception";
    case ErrorKind::kTimeout:
      return "timeout";
    case ErrorKind::kInvariant:
      return "invariant-violation";
    case ErrorKind::kOomGuard:
      return "oom-guard";
    case ErrorKind::kCancelled:
      return "cancelled";
  }
  return "exception";
}

ErrorKind error_kind_from_name(std::string_view name) {
  if (name.empty()) return ErrorKind::kNone;
  if (name == "exception") return ErrorKind::kException;
  if (name == "timeout") return ErrorKind::kTimeout;
  if (name == "invariant-violation") return ErrorKind::kInvariant;
  if (name == "oom-guard") return ErrorKind::kOomGuard;
  if (name == "cancelled") return ErrorKind::kCancelled;
  throw std::invalid_argument("unknown error kind '" + std::string(name) +
                              "'");
}

std::string_view failure_policy_name(FailurePolicy p) noexcept {
  switch (p) {
    case FailurePolicy::kCancelAll:
      return "cancel_all";
    case FailurePolicy::kRecordAndContinue:
      return "record_and_continue";
    case FailurePolicy::kRetry:
      return "retry";
  }
  return "cancel_all";
}

FailurePolicy failure_policy_from_name(std::string_view name) {
  if (name == "cancel_all") return FailurePolicy::kCancelAll;
  if (name == "record_and_continue") return FailurePolicy::kRecordAndContinue;
  if (name == "retry") return FailurePolicy::kRetry;
  throw std::invalid_argument(
      "unknown failure policy '" + std::string(name) +
      "' (expected cancel_all, record_and_continue or retry)");
}

double retry_backoff_ms(const RetryPolicy& policy, std::size_t next_attempt,
                        std::size_t index, std::uint64_t seed) {
  if (next_attempt < 2) return 0.0;
  double delay = policy.backoff_base_ms *
                 std::pow(2.0, static_cast<double>(next_attempt - 2));
  if (delay > policy.backoff_max_ms) delay = policy.backoff_max_ms;
  if (policy.jitter <= 0.0) return delay;
  // Deterministic jitter keyed on (job, attempt, seed): reproducible per
  // run, decorrelated across jobs so a burst of failures does not retry in
  // lockstep.
  const std::uint64_t h =
      mix64(seed ^ mix64(index + 1) ^ mix64(0x5bd1e995ULL * next_attempt));
  const double unit =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
  const double factor = 1.0 - policy.jitter + 2.0 * policy.jitter * unit;
  return delay * factor;
}

std::size_t effective_workers(std::size_t requested, std::size_t num_jobs) {
  std::size_t n = requested;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  if (num_jobs > 0 && n > num_jobs) n = num_jobs;
  return n == 0 ? 1 : n;
}

std::vector<Job> SweepSpec::expand() const {
  if (schemes.empty()) {
    throw std::invalid_argument("SweepSpec: no schemes");
  }
  if (loads.empty()) {
    throw std::invalid_argument("SweepSpec: no loads");
  }
  const std::vector<std::uint64_t> seed_list =
      seeds.empty() ? std::vector<std::uint64_t>{base.seed} : seeds;
  const std::vector<std::size_t> flow_list =
      flows.empty() ? std::vector<std::size_t>{base.num_flows} : flows;
  const std::vector<std::pair<std::string, fault::FaultPlan>> fault_list =
      faults.empty()
          ? std::vector<std::pair<std::string, fault::FaultPlan>>{
                {std::string(), base.faults}}
          : faults;
  const std::vector<std::pair<std::string, traffic::TrafficSpec>>
      traffic_list =
          traffics.empty()
              ? std::vector<std::pair<std::string, traffic::TrafficSpec>>{
                    {std::string(), base.traffic}}
              : traffics;

  std::vector<Job> jobs;
  jobs.reserve(loads.size() * schemes.size() * seed_list.size() *
               flow_list.size() * fault_list.size() * traffic_list.size());
  for (const double load : loads) {
    for (const auto& [label, scheme] : schemes) {
      for (const std::uint64_t seed : seed_list) {
        for (const std::size_t nflows : flow_list) {
          for (const auto& [fault_label, plan] : fault_list) {
            for (const auto& [traffic_label, traffic_spec] : traffic_list) {
              Job j;
              j.index = jobs.size();
              j.group = name;
              j.label = label;
              j.fault_label = fault_label;
              j.traffic_label = traffic_label;
              j.cfg = base;
              j.cfg.scheme = scheme;
              j.cfg.load = load;
              j.cfg.seed = seed;
              j.cfg.num_flows = nflows;
              j.cfg.faults = plan;
              j.cfg.traffic = traffic_spec;
              jobs.push_back(std::move(j));
            }
          }
        }
      }
    }
  }
  return jobs;
}

SweepResult run_jobs(std::vector<Job> jobs, const SweepOptions& opt) {
  const auto sweep_start = Clock::now();

  SweepResult res;
  res.runs.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].index = i;

  // The digest is over the fully-expanded job list, computed before any job
  // is moved into a restored record.
  const std::uint64_t digest = jobs_digest(jobs);

  // Restore journaled results: the journal carries only RESULT fields; the
  // config comes from the job list the caller just re-expanded, which the
  // digest (plus per-entry label checks) proves is the same sweep.
  std::vector<char> restored(jobs.size(), 0);
  if (opt.resume != nullptr) {
    if (opt.resume->spec_hash != digest ||
        opt.resume->total_jobs != jobs.size()) {
      throw std::runtime_error(
          "resume journal '" + opt.resume->path +
          "' was written by a different sweep (spec hash or job count "
          "mismatch)");
    }
    for (const JournalEntry& e : opt.resume->entries) {
      if (e.index >= jobs.size()) {
        throw std::runtime_error("resume journal '" + opt.resume->path +
                                 "' references job " +
                                 std::to_string(e.index) + " of " +
                                 std::to_string(jobs.size()));
      }
      Job& job = jobs[e.index];
      if (e.record.job.group != job.group || e.record.job.label != job.label) {
        throw std::runtime_error(
            "resume journal '" + opt.resume->path + "' job " +
            std::to_string(e.index) + " is labelled '" + e.record.job.group +
            "/" + e.record.job.label + "', expected '" + job.group + "/" +
            job.label + "'");
      }
      RunRecord rec = e.record;
      rec.job = std::move(job);
      restored[e.index] = 1;
      res.runs[e.index] = std::move(rec);
    }
  }

  std::unique_ptr<JournalWriter> journal;
  if (!opt.journal_out.empty()) {
    const bool in_place =
        opt.resume != nullptr && opt.resume->path == opt.journal_out;
    if (in_place) {
      journal = std::make_unique<JournalWriter>(opt.journal_out,
                                                opt.resume->valid_bytes);
    } else {
      journal = std::make_unique<JournalWriter>(opt.journal_out,
                                                opt.journal_name, digest,
                                                jobs.size());
      // A fresh journal must be complete on its own: carry the restored
      // records over so it can seed the next resume too.
      for (std::size_t i = 0; i < res.runs.size(); ++i) {
        if (restored[i]) journal->append(res.runs[i]);
      }
    }
  }

  CancelToken cancel;
  std::mutex mu;  // guards counters, the journal and on_done serialization
  const bool cancel_all = opt.failure_policy == FailurePolicy::kCancelAll;
  const std::size_t max_attempts =
      opt.failure_policy == FailurePolicy::kRetry
          ? std::max<std::size_t>(std::size_t{1}, opt.retry.max_attempts)
          : 1;

  auto run_one = [&](Job& job) {
    RunRecord rec;
    const std::size_t slot = job.index;
    rec.job = std::move(job);
    if (cancel_all && cancel.cancelled()) {
      rec.skipped = true;
      rec.error = "cancelled";
      rec.error_kind = ErrorKind::kCancelled;
    } else {
      const auto t0 = Clock::now();
      for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
        rec.ok = false;
        rec.error.clear();
        rec.error_kind = ErrorKind::kNone;
        rec.postmortem.clear();
        rec.report = core::FctReport{};
        try {
          rec.report = core::run_fct_experiment(rec.job.cfg);
          rec.ok = true;
        } catch (const core::ExperimentError& e) {
          rec.error = e.what();
          rec.error_kind = classify(e.kind());
          rec.postmortem = e.postmortem();
        } catch (const std::exception& e) {
          rec.error = e.what();
          rec.error_kind = ErrorKind::kException;
        } catch (...) {
          rec.error = "unknown exception";
          rec.error_kind = ErrorKind::kException;
        }
        rec.attempts = attempt;
        if (rec.ok || attempt == max_attempts) break;
        if (opt.retry_sleep) {
          const double delay = retry_backoff_ms(opt.retry, attempt + 1, slot,
                                                rec.job.cfg.seed);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(delay));
        }
      }
      rec.wall_ms = ms_since(t0);
      if (rec.ok && rec.wall_ms > 0.0) {
        rec.events_per_sec =
            static_cast<double>(rec.report.events) / (rec.wall_ms / 1000.0);
      }
      if (!rec.ok && cancel_all) cancel.cancel();
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      // Journal successful runs only: a failed or skipped job re-executes on
      // resume, which the deterministic simulation resolves the same way an
      // uninterrupted run would have.
      if (journal && rec.ok) journal->append(rec);
      if (opt.on_done) opt.on_done(rec);
      // Slot assignment is race-free by construction (unique index per
      // job); done under the lock anyway so on_done observes a consistent
      // runs vector.
      res.runs[slot] = std::move(rec);
    }
  };

  std::vector<Job*> pending;
  pending.reserve(jobs.size());
  for (auto& job : jobs) {
    if (!restored[job.index]) pending.push_back(&job);
  }

  res.jobs_used = effective_workers(
      opt.jobs, pending.empty() ? std::size_t{1} : pending.size());
  std::uint64_t pool_faults = 0;
  if (res.jobs_used <= 1) {
    for (Job* job : pending) run_one(*job);
  } else {
    ThreadPool pool(res.jobs_used);
    for (Job* job : pending) {
      pool.submit([&run_one, job] { run_one(*job); });
    }
    pool.wait_idle();
    pool.shutdown();
    pool_faults = pool.tasks_faulted();
  }

  // Roll the per-record outcomes up once, restored records included, so the
  // totals are identical whether a record was executed now or replayed from
  // the journal.
  for (const RunRecord& r : res.runs) {
    if (r.ok) {
      ++res.completed;
    } else if (r.skipped) {
      ++res.skipped;
    } else {
      ++res.failed;
      switch (r.error_kind) {
        case ErrorKind::kTimeout:
          ++res.failed_timeout;
          break;
        case ErrorKind::kInvariant:
          ++res.failed_invariant;
          break;
        case ErrorKind::kOomGuard:
          ++res.failed_oom_guard;
          break;
        default:
          ++res.failed_exception;
          break;
      }
    }
    if (r.restored) ++res.restored;
    if (r.attempts > 1) res.retries += r.attempts - 1;
  }
  res.pool_exceptions = pool_faults;

  // Mirror the rollups as obs counters so sweep health is visible through
  // the same metrics pipeline as simulation telemetry. The key set is fixed
  // (zero-valued counters included) for a stable schema.
  obs::MetricsRegistry harness;
  harness.counter("runner/jobs_total").inc(res.runs.size());
  harness.counter("runner/completed").inc(res.completed);
  harness.counter("runner/failed").inc(res.failed);
  harness.counter("runner/skipped").inc(res.skipped);
  harness.counter("runner/restored").inc(res.restored);
  harness.counter("runner/retries").inc(res.retries);
  harness.counter("runner/failed_timeout").inc(res.failed_timeout);
  harness.counter("runner/failed_invariant").inc(res.failed_invariant);
  harness.counter("runner/failed_oom_guard").inc(res.failed_oom_guard);
  harness.counter("runner/failed_exception").inc(res.failed_exception);
  harness.counter("runner/pool_exceptions").inc(res.pool_exceptions);
  // Event-engine telemetry, aggregated over completed runs in index order
  // (runs are already index-sorted, so the gauge deterministically holds the
  // sweep-wide peak regardless of --jobs).
  std::uint64_t peak_pending = 0;
  std::uint64_t calendar_resizes = 0;
  for (const RunRecord& r : res.runs) {
    if (!r.ok) continue;
    peak_pending = std::max(peak_pending, r.report.sim_peak_pending);
    calendar_resizes += r.report.sim_calendar_resizes;
  }
  harness.gauge("sim/event_peak_pending").set(static_cast<double>(peak_pending));
  harness.counter("sim/calendar_resizes").inc(calendar_resizes);
  // Stability rollup, present only when at least one run sampled (the
  // conditional-key discipline: unsampled sweeps keep their exact harness
  // key set). Aggregated in index order like the telemetry above, so the
  // counts and the peak are deterministic under --jobs.
  std::uint64_t sampled_runs = 0;
  std::uint64_t regime_stable = 0;
  std::uint64_t regime_oscillating = 0;
  std::uint64_t regime_saturated = 0;
  double oscillation_peak = 0.0;
  for (const RunRecord& r : res.runs) {
    if (!r.ok || !r.report.stability_analyzed) continue;
    ++sampled_runs;
    switch (r.report.stability.regime) {
      case obs::Regime::kStable:
        ++regime_stable;
        break;
      case obs::Regime::kOscillating:
        ++regime_oscillating;
        break;
      case obs::Regime::kSaturated:
        ++regime_saturated;
        break;
    }
    oscillation_peak =
        std::max(oscillation_peak, r.report.stability.oscillation_score);
  }
  if (sampled_runs > 0) {
    harness.counter("stability/sampled_runs").inc(sampled_runs);
    harness.counter("stability/regime_stable").inc(regime_stable);
    harness.counter("stability/regime_oscillating").inc(regime_oscillating);
    harness.counter("stability/regime_saturated").inc(regime_saturated);
    harness.gauge("stability/oscillation_peak").set(oscillation_peak);
  }
  res.harness_metrics = harness.snapshot();

  res.wall_ms = ms_since(sweep_start);
  return res;
}

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& opt) {
  return run_jobs(spec.expand(), opt);
}

}  // namespace tcn::runner
