#include "runner/sweep.hpp"

#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "runner/thread_pool.hpp"

namespace tcn::runner {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

std::size_t effective_workers(std::size_t requested, std::size_t num_jobs) {
  std::size_t n = requested;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  if (num_jobs > 0 && n > num_jobs) n = num_jobs;
  return n == 0 ? 1 : n;
}

std::vector<Job> SweepSpec::expand() const {
  if (schemes.empty()) {
    throw std::invalid_argument("SweepSpec: no schemes");
  }
  if (loads.empty()) {
    throw std::invalid_argument("SweepSpec: no loads");
  }
  const std::vector<std::uint64_t> seed_list =
      seeds.empty() ? std::vector<std::uint64_t>{base.seed} : seeds;
  const std::vector<std::size_t> flow_list =
      flows.empty() ? std::vector<std::size_t>{base.num_flows} : flows;

  std::vector<Job> jobs;
  jobs.reserve(loads.size() * schemes.size() * seed_list.size() *
               flow_list.size());
  for (const double load : loads) {
    for (const auto& [label, scheme] : schemes) {
      for (const std::uint64_t seed : seed_list) {
        for (const std::size_t nflows : flow_list) {
          Job j;
          j.index = jobs.size();
          j.group = name;
          j.label = label;
          j.cfg = base;
          j.cfg.scheme = scheme;
          j.cfg.load = load;
          j.cfg.seed = seed;
          j.cfg.num_flows = nflows;
          jobs.push_back(std::move(j));
        }
      }
    }
  }
  return jobs;
}

SweepResult run_jobs(std::vector<Job> jobs, const SweepOptions& opt) {
  const auto sweep_start = Clock::now();

  SweepResult res;
  res.runs.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].index = i;

  CancelToken cancel;
  std::mutex mu;  // guards counters + on_done serialization

  auto run_one = [&](Job& job) {
    RunRecord rec;
    const std::size_t slot = job.index;
    rec.job = std::move(job);
    if (opt.cancel_on_failure && cancel.cancelled()) {
      rec.skipped = true;
      rec.error = "cancelled";
    } else {
      const auto t0 = Clock::now();
      try {
        rec.report = core::run_fct_experiment(rec.job.cfg);
        rec.ok = true;
      } catch (const std::exception& e) {
        rec.error = e.what();
      } catch (...) {
        rec.error = "unknown exception";
      }
      rec.wall_ms = ms_since(t0);
      if (rec.ok && rec.wall_ms > 0.0) {
        rec.events_per_sec =
            static_cast<double>(rec.report.events) / (rec.wall_ms / 1000.0);
      }
      if (!rec.ok && opt.cancel_on_failure) cancel.cancel();
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      if (rec.ok) {
        ++res.completed;
      } else if (rec.skipped) {
        ++res.skipped;
      } else {
        ++res.failed;
      }
      if (opt.on_done) opt.on_done(rec);
      // Slot assignment is race-free by construction (unique index per
      // job); done under the lock anyway so on_done observes a consistent
      // runs vector.
      res.runs[slot] = std::move(rec);
    }
  };

  res.jobs_used = effective_workers(opt.jobs, jobs.size());
  if (res.jobs_used <= 1) {
    for (auto& job : jobs) run_one(job);
  } else {
    ThreadPool pool(res.jobs_used);
    for (auto& job : jobs) {
      pool.submit([&run_one, &job] { run_one(job); });
    }
    pool.wait_idle();
    pool.shutdown();
  }

  res.wall_ms = ms_since(sweep_start);
  return res;
}

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& opt) {
  return run_jobs(spec.expand(), opt);
}

}  // namespace tcn::runner
