// Structured results layer: serialize a SweepResult to the BENCH_*.json
// schema so the perf trajectory of the reproduction is machine-readable.
//
// Schema "tcn-bench-1" (key order is fixed; see runner_test.cpp golden):
//   {
//     "schema": "tcn-bench-1",
//     "name": "<sweep name>",
//     "jobs": <worker threads used>,
//     "wall_ms": <whole-sweep wall clock>,         // non-deterministic
//     "totals": { "runs", "completed", "failed", "skipped",
//                 "restored", "retries", "failed_timeout",
//                 "failed_invariant", "failed_oom_guard",
//                 "failed_exception", "pool_exceptions", "events" },
//     "runs": [ {
//        "index", "group", "label", "scheme", "sched", "topology",
//        "load", "flows", "seed", "faults", "ok", "skipped", "error",
//        "error_kind", "attempts",
//        "fct": { "count", "avg_all_us", "small_count", "avg_small_us",
//                 "p99_small_us", "large_count", "avg_large_us",
//                 "timeouts", "small_timeouts" },
//        "counters": { "switch_drops", "switch_marks", "fault_drops",
//                      "sched_drops", "pool_fresh", "pool_reused",
//                      "pool_recycled", "sim_peak_pending",
//                      "sim_calendar_resizes" },
//        "stability"?: { "channels", "ticks", "channel", "samples",
//                        "oscillation_score", "sojourn_cv",
//                        "mark_burstiness", "depth_mean_bytes", "depth_cv",
//                        "lag1_autocorr", "bimodality", "regime" },
//                                                   // sampled runs only
//        "flows_started", "flows_completed", "events", "sim_end_s",
//        "wall_ms", "events_per_sec",               // non-deterministic
//        "postmortem"?                              // failed runs only
//     } ]
//   }
//
// "error_kind" is the failure taxonomy ("", "exception", "timeout",
// "invariant-violation", "oom-guard", "cancelled"); "attempts" counts
// executions under the retry policy (0 = never ran); "postmortem" -- the
// flight-recorder tail captured at death -- appears only when non-empty.
//
// Every field except the wall-clock ones is bit-deterministic for a given
// sweep spec, independent of --jobs (see sweep.hpp). The same run object is
// what the tcn-journal-1 checkpoint stores per completed job.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "runner/sweep.hpp"

namespace tcn::runner {

/// Emit one "runs" element (a complete JSON object) for `r`. Shared by the
/// tcn-bench-1 serializer and the tcn-journal-1 writer so a journaled run
/// is byte-for-byte the run object a resumed aggregate re-emits.
void write_run_object(obs::JsonWriter& w, const RunRecord& r,
                      bool include_timing);

/// Serialize; `include_timing=false` zeroes the host-execution metadata
/// ("jobs", "wall_ms", "events_per_sec"), giving a fully deterministic
/// document (used by the determinism tests).
std::string to_json(const SweepResult& res, const std::string& name,
                    bool include_timing = true);

/// Write `to_json` to `path` ("-" writes to stdout). Throws
/// std::runtime_error on I/O failure.
void write_json_file(const SweepResult& res, const std::string& name,
                     const std::string& path);

/// Merged sweep-level tcn-metrics-1 document: one entry per run that
/// collected metrics (index/group/label + the run's counters/gauges/
/// histograms), in job-index order -- byte-identical for any --jobs since
/// SweepResult::runs is index-ordered regardless of worker scheduling.
std::string metrics_to_json(const SweepResult& res, const std::string& name);

/// Write `metrics_to_json` to `path` ("-" writes to stdout). Throws
/// std::runtime_error on I/O failure.
void write_metrics_file(const SweepResult& res, const std::string& name,
                        const std::string& path);

}  // namespace tcn::runner
