// Fixed-size worker pool for the sweep runner.
//
// Deliberately small: a FIFO task queue, N workers, wait_idle() as the
// completion barrier, and shutdown() with an optional discard of queued
// tasks (cooperative cancellation drains the queue without running it).
// Determinism note: the pool never reorders *results* -- sweep jobs write
// into preallocated slots by job index -- so scheduling order only affects
// wall-clock, never output bytes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/inline_callback.hpp"

namespace tcn::runner {

/// Move-only task type: sweep job closures and their cancel tokens are
/// moved into the queue exactly once instead of being copied per submit
/// (std::function required copyable tasks). Oversized closures go through
/// sim::boxed().
using Task = sim::InlineCallback;

/// Shared cancellation flag. Jobs poll it before starting expensive work;
/// the first failure sets it so the rest of a sweep is skipped, not run.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
};

class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to at least 1).
  explicit ThreadPool(std::size_t workers);

  /// Waits for running tasks, discards queued ones, joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Throws std::runtime_error after shutdown(). Tasks must
  /// not throw: the sweep layer catches and records its own exceptions, so
  /// anything escaping into the pool is a harness bug. Escaped exceptions
  /// are counted (tasks_faulted) and reported on stderr; debug builds abort
  /// on the spot so the bug cannot hide, release builds keep the worker
  /// alive so wait_idle() still returns.
  void submit(Task task);

  /// Block until every submitted task has finished and the queue is empty.
  void wait_idle();

  /// Stop the pool and join workers. `discard_pending` drops tasks that
  /// have not started; otherwise they run to completion first.
  void shutdown(bool discard_pending = false);

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  /// Tasks that have run to completion (diagnostics / tests).
  [[nodiscard]] std::uint64_t tasks_completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }

  /// Tasks whose exception escaped into the pool -- 0 in a healthy sweep
  /// (surfaced as SweepResult::pool_exceptions).
  [[nodiscard]] std::uint64_t tasks_faulted() const noexcept {
    return faulted_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();
  void note_escaped_exception(const char* what) noexcept;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;  // wait_idle: queue empty and none active
  std::deque<Task> queue_;
  std::vector<std::thread> threads_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> faulted_{0};
};

}  // namespace tcn::runner
