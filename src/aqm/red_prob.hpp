// Full RED/ECN with the classic three-parameter profile (Sec. 2.1): below
// K_min never mark, above K_max always mark, in between mark with
// probability rising linearly to P_max. Uses instantaneous occupancy (the
// datacenter simplification) -- this is the queue-length counterpart of the
// probabilistic TCN extension and the marking profile DCQCN's CP algorithm
// expects on switches.
#pragma once

#include <cstdint>

#include "aqm/marker_metrics.hpp"
#include "net/marker.hpp"
#include "sim/random.hpp"

namespace tcn::aqm {

class RedProbabilisticMarker final : public net::Marker {
 public:
  [[nodiscard]] net::MarkerVariant self_variant() noexcept override {
    return this;
  }

  RedProbabilisticMarker(std::uint64_t k_min_bytes, std::uint64_t k_max_bytes,
                         double p_max, std::uint64_t seed = 1);

  bool on_enqueue(const net::MarkContext& ctx, const net::Packet& p) override;

  /// Deterministic part of the decision (test hook).
  [[nodiscard]] double probability(std::uint64_t queue_bytes) const;

  [[nodiscard]] std::string_view name() const override { return "red-prob"; }

 private:
  std::uint64_t k_min_;
  std::uint64_t k_max_;
  double p_max_;
  sim::Rng rng_;
  MarkerMetrics metrics_;
};

}  // namespace tcn::aqm
