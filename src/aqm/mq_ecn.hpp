// MQ-ECN (Bai et al., NSDI 2016): dynamic per-queue RED thresholds for
// round-robin schedulers.
//
// The scheduler's round structure gives a free rate estimate: a backlogged
// queue i sends at most quantum_i per round, so rate_i ~= quantum_i /
// T_round. MQ-ECN marks at enqueue when the queue exceeds
// K_i = rate_i x RTT x lambda. It is the state of the art the paper compares
// against -- and it cannot support WFQ/SP, which have no rounds (the
// factories reject those combinations).
#pragma once

#include <cstdint>

#include "aqm/marker_metrics.hpp"
#include "net/marker.hpp"
#include "net/scheduler.hpp"
#include "sim/time.hpp"

namespace tcn::aqm {

class MqEcnMarker final : public net::Marker {
 public:
  [[nodiscard]] net::MarkerVariant self_variant() noexcept override {
    return this;
  }

  /// `provider` must outlive the marker (it is the port's own round-robin
  /// scheduler). `rtt_lambda` is RTT x lambda, the time component of the
  /// standard threshold.
  MqEcnMarker(const net::RoundRateProvider* provider, sim::Time rtt_lambda);

  bool on_enqueue(const net::MarkContext& ctx, const net::Packet& p) override;

  /// Current dynamic threshold for queue q in bytes (test/trace hook).
  [[nodiscard]] std::uint64_t threshold_bytes(std::size_t q,
                                              sim::Time now) const;

  [[nodiscard]] std::string_view name() const override { return "mq-ecn"; }

 private:
  const net::RoundRateProvider* provider_;
  sim::Time rtt_lambda_;
  MarkerMetrics metrics_;
};

}  // namespace tcn::aqm
