#include "aqm/red_prob.hpp"

#include <stdexcept>

namespace tcn::aqm {

RedProbabilisticMarker::RedProbabilisticMarker(std::uint64_t k_min_bytes,
                                               std::uint64_t k_max_bytes,
                                               double p_max,
                                               std::uint64_t seed)
    : k_min_(k_min_bytes),
      k_max_(k_max_bytes),
      p_max_(p_max),
      rng_(seed),
      metrics_("red-prob") {
  if (k_max_ < k_min_) {
    throw std::invalid_argument("RedProbabilisticMarker: k_max < k_min");
  }
  if (p_max_ <= 0.0 || p_max_ > 1.0) {
    throw std::invalid_argument("RedProbabilisticMarker: bad p_max");
  }
}

double RedProbabilisticMarker::probability(std::uint64_t queue_bytes) const {
  if (queue_bytes < k_min_) return 0.0;
  if (queue_bytes > k_max_) return 1.0;
  if (k_max_ == k_min_) return 1.0;
  const double f = static_cast<double>(queue_bytes - k_min_) /
                   static_cast<double>(k_max_ - k_min_);
  return f * p_max_;
}

bool RedProbabilisticMarker::on_enqueue(const net::MarkContext& ctx,
                                        const net::Packet&) {
  const double p = probability(ctx.queue_bytes);
  bool mark = p >= 1.0;
  if (p > 0.0 && p < 1.0) mark = rng_.bernoulli(p);
  metrics_.decision(mark);
  return mark;
}

}  // namespace tcn::aqm
