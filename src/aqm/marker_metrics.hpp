// Shared metrics handle for AQM markers.
//
// Every marker owns one MarkerMetrics resolved at construction from the
// thread-local obs::MetricsRegistry scope. With no registry installed the
// pointers stay null and each decision() call is a single branch -- the same
// zero-cost-when-disabled discipline as the Port's observer hook. Counters
// are keyed "aqm.<marker>.evals" / ".marks" and aggregate across every port
// running that marker, so one sweep-level snapshot shows the whole fabric's
// marking behaviour per AQM.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace tcn::aqm {

struct MarkerMetrics {
  obs::Counter* evals = nullptr;
  obs::Counter* marks = nullptr;
  obs::LogHistogram* sojourn = nullptr;

  MarkerMetrics() = default;

  /// `with_sojourn` additionally registers "aqm.<marker>.sojourn_ns" for
  /// markers whose decision input is a sojourn time (TCN, CoDel).
  explicit MarkerMetrics(std::string_view marker, bool with_sojourn = false) {
    obs::MetricsRegistry* reg = obs::MetricsRegistry::current();
    if (reg == nullptr) return;
    const std::string base = "aqm." + std::string(marker) + ".";
    evals = &reg->counter(base + "evals");
    marks = &reg->counter(base + "marks");
    if (with_sojourn) sojourn = &reg->histogram(base + "sojourn_ns");
  }

  void decision(bool marked) noexcept {
    if (evals == nullptr) return;
    evals->inc();
    if (marked) marks->inc();
  }

  void decision(bool marked, sim::Time sojourn_ns) noexcept {
    if (evals == nullptr) return;
    evals->inc();
    if (marked) marks->inc();
    sojourn->record(sojourn_ns);
  }
};

}  // namespace tcn::aqm
