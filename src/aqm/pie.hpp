// PIE (Pan et al., HPSR 2013) in mark mode -- the AQM whose departure-rate
// estimator the paper borrows for Algorithm 1 (Sec. 3.3). Completing the
// family lets the library compare TCN against the full controller, not just
// its measurement stage.
//
// Per queue: estimated queueing delay qdelay = qlen / avg_drain_rate (from
// the Algorithm-1 estimator); every t_update the marking probability moves
// by the PI control law
//     p += alpha * (qdelay - target) + beta * (qdelay - qdelay_old)
// and arrivals are marked with probability p. The update runs lazily from
// the enqueue/dequeue hooks (markers have no timers), which is exact for a
// busy queue and harmless for an idle one (p also decays when the queue
// empties, as in the reference implementation).
#pragma once

#include <cstdint>
#include <vector>

#include "aqm/marker_metrics.hpp"
#include "aqm/rate_estimator.hpp"
#include "net/marker.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace tcn::aqm {

struct PieConfig {
  sim::Time target = 20 * sim::kMicrosecond;   ///< datacenter-scale target
  sim::Time t_update = 30 * sim::kMicrosecond; ///< control period
  double alpha = 0.125;  ///< proportional gain (per target of error)
  double beta = 1.25;    ///< derivative gain
  std::uint64_t dq_thresh = 10'000;  ///< Algorithm-1 measurement window
  double ewma_w = 0.875;
};

class PieMarker final : public net::Marker {
 public:
  [[nodiscard]] net::MarkerVariant self_variant() noexcept override {
    return this;
  }

  PieMarker(std::size_t num_queues, PieConfig cfg, std::uint64_t seed = 1);

  bool on_enqueue(const net::MarkContext& ctx, const net::Packet& p) override;
  bool on_dequeue(const net::MarkContext& ctx, const net::Packet& p) override;

  /// Current marking probability of queue q (test hook).
  [[nodiscard]] double probability(std::size_t q) const {
    return states_.at(q).p;
  }
  /// Latest delay estimate of queue q in ns (test hook).
  [[nodiscard]] sim::Time qdelay(std::size_t q) const {
    return states_.at(q).qdelay;
  }

  [[nodiscard]] std::string_view name() const override { return "pie"; }

 private:
  struct QState {
    DepartureRateEstimator estimator;
    double p = 0.0;
    sim::Time qdelay = 0;
    sim::Time qdelay_old = 0;
    sim::Time next_update = 0;

    explicit QState(const PieConfig& cfg)
        : estimator(cfg.dq_thresh, cfg.ewma_w) {}
  };

  void maybe_update(QState& s, const net::MarkContext& ctx);
  bool decide(QState& s, const net::MarkContext& ctx);

  PieConfig cfg_;
  std::vector<QState> states_;
  sim::Rng rng_;
  MarkerMetrics metrics_;
};

}  // namespace tcn::aqm
