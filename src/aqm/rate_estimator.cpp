#include "aqm/rate_estimator.hpp"

#include <stdexcept>

namespace tcn::aqm {

DepartureRateEstimator::DepartureRateEstimator(std::uint64_t dq_thresh_bytes,
                                               double w)
    : dq_thresh_(dq_thresh_bytes), w_(w) {
  if (dq_thresh_ == 0) {
    throw std::invalid_argument("DepartureRateEstimator: zero dq_thresh");
  }
  if (w_ < 0.0 || w_ >= 1.0) {
    throw std::invalid_argument("DepartureRateEstimator: w out of [0,1)");
  }
}

bool DepartureRateEstimator::on_departure(sim::Time now, std::uint32_t bytes,
                                          std::uint64_t qlen_bytes) {
  // Step 1 (Algorithm 1): start a cycle only with dq_thresh of backlog, so
  // the queue is provably busy for the whole cycle. The triggering packet is
  // not counted -- its serialization happened before the window opened.
  if (!is_measure_) {
    if (qlen_bytes >= dq_thresh_) {
      is_measure_ = true;
      dq_count_ = 0;
      dq_start_ = now;
    }
    return false;
  }

  // Step 2: accumulate departures; close the cycle at dq_thresh bytes.
  dq_count_ += bytes;
  if (dq_count_ < dq_thresh_ || now <= dq_start_) return false;

  dq_rate_ = static_cast<double>(dq_count_) / sim::to_seconds(now - dq_start_);
  avg_rate_ = avg_rate_ > 0.0 ? w_ * avg_rate_ + (1.0 - w_) * dq_rate_
                              : dq_rate_;
  is_measure_ = false;
  return true;
}

IdealRedMarker::IdealRedMarker(std::size_t num_queues,
                               std::uint64_t dq_thresh_bytes,
                               sim::Time rtt_lambda, double w)
    : estimators_(num_queues, DepartureRateEstimator(dq_thresh_bytes, w)),
      rtt_lambda_(rtt_lambda),
      metrics_("ideal-red") {
  if (rtt_lambda_ <= 0) {
    throw std::invalid_argument("IdealRedMarker: rtt_lambda must be > 0");
  }
  if (obs::MetricsRegistry* reg = obs::MetricsRegistry::current()) {
    sample_bps_ = &reg->histogram("aqm.ideal-red.sample_bps");
  }
}

std::uint64_t IdealRedMarker::threshold_bytes(
    std::size_t q, std::uint64_t link_rate_bps) const {
  const auto& est = estimators_.at(q);
  const double rate_Bps = est.has_estimate()
                              ? est.avg_rate_Bps()
                              : static_cast<double>(link_rate_bps) / 8.0;
  return static_cast<std::uint64_t>(rate_Bps * sim::to_seconds(rtt_lambda_));
}

bool IdealRedMarker::on_enqueue(const net::MarkContext& ctx,
                                const net::Packet&) {
  const bool mark =
      ctx.queue_bytes > threshold_bytes(ctx.queue, ctx.link_rate_bps);
  metrics_.decision(mark);
  return mark;
}

bool IdealRedMarker::on_dequeue(const net::MarkContext& ctx,
                                const net::Packet& p) {
  auto& est = estimators_.at(ctx.queue);
  if (est.on_departure(ctx.now, p.size, ctx.queue_bytes)) {
    if (sample_bps_ != nullptr) {
      sample_bps_->record(
          static_cast<std::int64_t>(est.sample_rate_Bps() * 8.0));
    }
    if (observer_) {
      observer_(ctx.queue, ctx.now, est.sample_rate_Bps(), est.avg_rate_Bps());
    }
  }
  return false;  // ideal RED marks at enqueue only
}

}  // namespace tcn::aqm
