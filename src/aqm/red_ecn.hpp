// Simplified RED/ECN marking as deployed in production (Sec. 2.1):
// instantaneous occupancy compared against a single static threshold K
// (K_min = K_max = K).
//
// Covers four of the paper's baselines through configuration:
//   - per-queue RED with the standard threshold (current practice, Sec. 3.2.1)
//   - per-port RED (Sec. 3.2.2, violates scheduling policies)
//   - dequeue-side RED marking (Wu et al., discussed in Sec. 4.3)
//   - "oracle" ideal RED: per-queue thresholds computed offline from known
//     queue capacities (Eq. 2), used in the static-flow experiment (Fig. 5b)
#pragma once

#include <cstdint>
#include <vector>

#include "aqm/marker_metrics.hpp"
#include "net/marker.hpp"

namespace tcn::aqm {

enum class RedScope { kPerQueue, kPerPort };
enum class RedSide { kEnqueue, kDequeue };

class RedEcnMarker final : public net::Marker {
 public:
  [[nodiscard]] net::MarkerVariant self_variant() noexcept override {
    return this;
  }

  /// Uniform threshold (bytes) for every queue.
  RedEcnMarker(std::uint64_t threshold_bytes, RedScope scope,
               RedSide side = RedSide::kEnqueue);

  /// Per-queue thresholds (bytes) -- the oracle configuration. Scope is
  /// per-queue by definition.
  explicit RedEcnMarker(std::vector<std::uint64_t> per_queue_thresholds,
                        RedSide side = RedSide::kEnqueue);

  bool on_enqueue(const net::MarkContext& ctx, const net::Packet& p) override;
  bool on_dequeue(const net::MarkContext& ctx, const net::Packet& p) override;

  [[nodiscard]] std::string_view name() const override;

 private:
  [[nodiscard]] bool over_threshold(const net::MarkContext& ctx) const;

  std::vector<std::uint64_t> thresholds_;  // size 1 = uniform
  RedScope scope_;
  RedSide side_;
  MarkerMetrics metrics_;
};

}  // namespace tcn::aqm
