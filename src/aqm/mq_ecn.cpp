#include "aqm/mq_ecn.hpp"

#include <stdexcept>

namespace tcn::aqm {

MqEcnMarker::MqEcnMarker(const net::RoundRateProvider* provider,
                         sim::Time rtt_lambda)
    : provider_(provider), rtt_lambda_(rtt_lambda), metrics_("mq-ecn") {
  if (provider_ == nullptr) {
    throw std::invalid_argument("MqEcnMarker: provider required");
  }
  if (rtt_lambda_ <= 0) {
    throw std::invalid_argument("MqEcnMarker: rtt_lambda must be > 0");
  }
}

std::uint64_t MqEcnMarker::threshold_bytes(std::size_t q, sim::Time now) const {
  const double rate_bps = provider_->queue_rate_bps(q, now);
  // K_i = rate_i x RTT x lambda (Eq. 2 with the round-time rate estimate).
  return static_cast<std::uint64_t>(rate_bps / 8.0 *
                                    sim::to_seconds(rtt_lambda_));
}

bool MqEcnMarker::on_enqueue(const net::MarkContext& ctx, const net::Packet&) {
  const bool mark = ctx.queue_bytes > threshold_bytes(ctx.queue, ctx.now);
  metrics_.decision(mark);
  return mark;
}

}  // namespace tcn::aqm
