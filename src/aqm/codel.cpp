#include "aqm/codel.hpp"

#include <cmath>
#include <stdexcept>

namespace tcn::aqm {

CodelMarker::CodelMarker(sim::Time target, sim::Time interval,
                         std::uint32_t mtu_bytes)
    : target_(target),
      interval_(interval),
      mtu_(mtu_bytes),
      metrics_("codel", /*with_sojourn=*/true) {
  if (target <= 0 || interval <= 0) {
    throw std::invalid_argument("CodelMarker: target/interval must be > 0");
  }
}

sim::Time CodelMarker::control_law(sim::Time t, std::uint32_t count) const {
  // next = t + interval / sqrt(count): the marking rate ramps up slowly while
  // delay stays above target. This sqrt is the operation Sec. 4.3 quotes as
  // unimplementable on the Domino targets.
  return t + static_cast<sim::Time>(
                 static_cast<double>(interval_) /
                 std::sqrt(static_cast<double>(count)));
}

bool CodelMarker::on_dequeue(const net::MarkContext& ctx,
                             const net::Packet& p) {
  const sim::Time sojourn = ctx.now - p.enqueue_ts;
  const bool mark = decide(ctx, sojourn);
  metrics_.decision(mark, sojourn);
  return mark;
}

bool CodelMarker::decide(const net::MarkContext& ctx, sim::Time sojourn) {
  if (ctx.queue >= states_.size()) states_.resize(ctx.queue + 1);
  QueueState& s = states_[ctx.queue];

  const sim::Time now = ctx.now;

  bool ok_to_mark = false;
  if (sojourn < target_ || ctx.queue_bytes <= mtu_) {
    // Went below target (or the queue cannot even hold an MTU): leave the
    // tracking state.
    s.first_above_time = 0;
  } else {
    if (s.first_above_time == 0) {
      s.first_above_time = now + interval_;
    } else if (now >= s.first_above_time) {
      ok_to_mark = true;
    }
  }

  if (s.dropping) {
    if (!ok_to_mark) {
      s.dropping = false;
      return false;
    }
    if (now >= s.drop_next) {
      ++s.count;
      s.drop_next = control_law(s.drop_next, s.count);
      return true;
    }
    return false;
  }

  if (ok_to_mark) {
    // Enter the marking state. If we were marking recently, resume near the
    // previous rate rather than restarting from 1 (Linux heuristic).
    s.dropping = true;
    const std::uint32_t delta = s.count - s.lastcount;
    if (delta > 1 && now - s.drop_next < 16 * interval_) {
      s.count = delta;
    } else {
      s.count = 1;
    }
    s.lastcount = s.count;
    s.drop_next = control_law(now, s.count);
    return true;
  }

  return false;
}

}  // namespace tcn::aqm
