#include "aqm/pie.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcn::aqm {

PieMarker::PieMarker(std::size_t num_queues, PieConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed), metrics_("pie") {
  if (num_queues == 0) {
    throw std::invalid_argument("PieMarker: need at least one queue");
  }
  if (cfg_.target <= 0 || cfg_.t_update <= 0) {
    throw std::invalid_argument("PieMarker: target/t_update must be > 0");
  }
  states_.reserve(num_queues);
  for (std::size_t i = 0; i < num_queues; ++i) states_.emplace_back(cfg_);
}

void PieMarker::maybe_update(QState& s, const net::MarkContext& ctx) {
  if (ctx.now < s.next_update) return;
  // Catch up on control periods that elapsed while the queue was idle (the
  // marker has no timer; updates are driven lazily by traffic). Each missed
  // period is applied with the then-current delay so p decays just as the
  // reference implementation's timer would make it.
  const auto missed = static_cast<std::uint64_t>(
      (ctx.now - s.next_update) / cfg_.t_update);
  const int rounds = 1 + static_cast<int>(std::min<std::uint64_t>(missed, 64));
  s.next_update = ctx.now + cfg_.t_update;

  // Delay estimate: backlog over the measured drain rate (fall back to the
  // line rate before the first sample, as Sec. 3.3's ideal RED does).
  const double rate_Bps = s.estimator.has_estimate()
                              ? s.estimator.avg_rate_Bps()
                              : static_cast<double>(ctx.link_rate_bps) / 8.0;
  s.qdelay = rate_Bps > 0
                 ? sim::from_seconds(static_cast<double>(ctx.queue_bytes) /
                                     rate_Bps)
                 : 0;

  for (int i = 0; i < rounds; ++i) {
    const double err_target =
        sim::to_seconds(s.qdelay - cfg_.target) / sim::to_seconds(cfg_.target);
    const double err_trend = sim::to_seconds(s.qdelay - s.qdelay_old) /
                             sim::to_seconds(cfg_.target);
    s.p += cfg_.alpha * err_target + cfg_.beta * err_trend;
    s.p = std::clamp(s.p, 0.0, 1.0);
    s.qdelay_old = s.qdelay;
  }
}

bool PieMarker::on_enqueue(const net::MarkContext& ctx, const net::Packet&) {
  QState& s = states_.at(ctx.queue);
  maybe_update(s, ctx);
  const bool mark = decide(s, ctx);
  metrics_.decision(mark);
  return mark;
}

bool PieMarker::decide(QState& s, const net::MarkContext& ctx) {
  // Burst allowance (reference PIE): short bursts below half the target with
  // a small p are let through unmarked, as are near-empty queues.
  if (s.p < 0.2 && s.qdelay < cfg_.target / 2) return false;
  if (ctx.queue_bytes <= 3'000) return false;
  if (s.p <= 0.0) return false;
  if (s.p >= 1.0) return true;
  return rng_.bernoulli(s.p);
}

bool PieMarker::on_dequeue(const net::MarkContext& ctx, const net::Packet& p) {
  QState& s = states_.at(ctx.queue);
  s.estimator.on_departure(ctx.now, p.size, ctx.queue_bytes);
  maybe_update(s, ctx);
  return false;  // PIE marks at enqueue
}

}  // namespace tcn::aqm
