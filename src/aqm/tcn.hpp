// TCN: Time-based Congestion Notification (Sec. 4) -- the paper's
// contribution.
//
// A departing packet is CE-marked iff its instantaneous sojourn time in the
// queue exceeds a static threshold T = RTT x lambda. The decision is
// stateless (no per-queue state, no time windows), independent of the queue's
// drain rate, and therefore valid under any packet scheduler.
//
// TcnProbabilisticMarker is the RED-like extension of Sec. 4.3 for transports
// such as DCQCN that need probabilistic marking: below Tmin never mark, above
// Tmax always mark, in between mark with probability growing linearly to
// Pmax.
#pragma once

#include "aqm/marker_metrics.hpp"
#include "net/marker.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace tcn::aqm {

class TcnMarker final : public net::Marker {
 public:
  [[nodiscard]] net::MarkerVariant self_variant() noexcept override {
    return this;
  }

  /// `threshold` is the sojourn-time marking threshold T = RTT x lambda.
  explicit TcnMarker(sim::Time threshold);

  bool on_dequeue(const net::MarkContext& ctx, const net::Packet& p) override;

  [[nodiscard]] std::string_view name() const override { return "tcn"; }
  [[nodiscard]] sim::Time threshold() const noexcept { return threshold_; }

 private:
  sim::Time threshold_;
  MarkerMetrics metrics_;
};

class TcnProbabilisticMarker final : public net::Marker {
 public:
  [[nodiscard]] net::MarkerVariant self_variant() noexcept override {
    return this;
  }

  TcnProbabilisticMarker(sim::Time t_min, sim::Time t_max, double p_max,
                         std::uint64_t seed = 1);

  bool on_dequeue(const net::MarkContext& ctx, const net::Packet& p) override;

  /// Marking probability for a given sojourn time (deterministic part).
  [[nodiscard]] double probability(sim::Time sojourn) const;

  [[nodiscard]] std::string_view name() const override { return "tcn-prob"; }

 private:
  sim::Time t_min_;
  sim::Time t_max_;
  double p_max_;
  sim::Rng rng_;
  MarkerMetrics metrics_;
};

}  // namespace tcn::aqm
