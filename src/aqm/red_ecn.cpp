#include "aqm/red_ecn.hpp"

#include <stdexcept>

namespace tcn::aqm {

RedEcnMarker::RedEcnMarker(std::uint64_t threshold_bytes, RedScope scope,
                           RedSide side)
    : thresholds_{threshold_bytes}, scope_(scope), side_(side) {
  if (threshold_bytes == 0) {
    throw std::invalid_argument("RedEcnMarker: zero threshold");
  }
  metrics_ = MarkerMetrics(name());
}

RedEcnMarker::RedEcnMarker(std::vector<std::uint64_t> per_queue_thresholds,
                           RedSide side)
    : thresholds_(std::move(per_queue_thresholds)),
      scope_(RedScope::kPerQueue),
      side_(side) {
  if (thresholds_.empty()) {
    throw std::invalid_argument("RedEcnMarker: no thresholds");
  }
  metrics_ = MarkerMetrics(name());
}

bool RedEcnMarker::over_threshold(const net::MarkContext& ctx) const {
  const std::uint64_t k = thresholds_.size() == 1
                              ? thresholds_[0]
                              : thresholds_.at(ctx.queue);
  const std::uint64_t occupancy =
      scope_ == RedScope::kPerPort ? ctx.port_bytes : ctx.queue_bytes;
  return occupancy > k;
}

bool RedEcnMarker::on_enqueue(const net::MarkContext& ctx, const net::Packet&) {
  if (side_ != RedSide::kEnqueue) return false;
  const bool mark = over_threshold(ctx);
  metrics_.decision(mark);
  return mark;
}

bool RedEcnMarker::on_dequeue(const net::MarkContext& ctx, const net::Packet&) {
  if (side_ != RedSide::kDequeue) return false;
  const bool mark = over_threshold(ctx);
  metrics_.decision(mark);
  return mark;
}

std::string_view RedEcnMarker::name() const {
  if (scope_ == RedScope::kPerPort) return "red-perport";
  return side_ == RedSide::kEnqueue ? "red-perqueue" : "red-dequeue";
}

}  // namespace tcn::aqm
