#include "aqm/red_ecn.hpp"

#include <stdexcept>

namespace tcn::aqm {

RedEcnMarker::RedEcnMarker(std::uint64_t threshold_bytes, RedScope scope,
                           RedSide side)
    : thresholds_{threshold_bytes}, scope_(scope), side_(side) {
  if (threshold_bytes == 0) {
    throw std::invalid_argument("RedEcnMarker: zero threshold");
  }
}

RedEcnMarker::RedEcnMarker(std::vector<std::uint64_t> per_queue_thresholds,
                           RedSide side)
    : thresholds_(std::move(per_queue_thresholds)),
      scope_(RedScope::kPerQueue),
      side_(side) {
  if (thresholds_.empty()) {
    throw std::invalid_argument("RedEcnMarker: no thresholds");
  }
}

bool RedEcnMarker::over_threshold(const net::MarkContext& ctx) const {
  const std::uint64_t k = thresholds_.size() == 1
                              ? thresholds_[0]
                              : thresholds_.at(ctx.queue);
  const std::uint64_t occupancy =
      scope_ == RedScope::kPerPort ? ctx.port_bytes : ctx.queue_bytes;
  return occupancy > k;
}

bool RedEcnMarker::on_enqueue(const net::MarkContext& ctx, const net::Packet&) {
  return side_ == RedSide::kEnqueue && over_threshold(ctx);
}

bool RedEcnMarker::on_dequeue(const net::MarkContext& ctx, const net::Packet&) {
  return side_ == RedSide::kDequeue && over_threshold(ctx);
}

std::string_view RedEcnMarker::name() const {
  if (scope_ == RedScope::kPerPort) return "red-perport";
  return side_ == RedSide::kEnqueue ? "red-perqueue" : "red-dequeue";
}

}  // namespace tcn::aqm
