#include "aqm/tcn.hpp"

#include <stdexcept>

namespace tcn::aqm {

TcnMarker::TcnMarker(sim::Time threshold)
    : threshold_(threshold), metrics_("tcn", /*with_sojourn=*/true) {
  if (threshold <= 0) {
    throw std::invalid_argument("TcnMarker: threshold must be positive");
  }
}

bool TcnMarker::on_dequeue(const net::MarkContext& ctx, const net::Packet& p) {
  // The per-hop enqueue timestamp is the 2B metadata of Sec. 4.2; the
  // comparison below is the entire data-plane logic of TCN.
  const sim::Time sojourn = ctx.now - p.enqueue_ts;
  const bool mark = sojourn > threshold_;
  metrics_.decision(mark, sojourn);
  return mark;
}

TcnProbabilisticMarker::TcnProbabilisticMarker(sim::Time t_min, sim::Time t_max,
                                               double p_max, std::uint64_t seed)
    : t_min_(t_min),
      t_max_(t_max),
      p_max_(p_max),
      rng_(seed),
      metrics_("tcn-prob", /*with_sojourn=*/true) {
  if (t_min < 0 || t_max < t_min) {
    throw std::invalid_argument("TcnProbabilisticMarker: bad thresholds");
  }
  if (p_max <= 0.0 || p_max > 1.0) {
    throw std::invalid_argument("TcnProbabilisticMarker: bad p_max");
  }
}

double TcnProbabilisticMarker::probability(sim::Time sojourn) const {
  if (sojourn < t_min_) return 0.0;
  if (sojourn > t_max_) return 1.0;
  if (t_max_ == t_min_) return 1.0;
  const double f = static_cast<double>(sojourn - t_min_) /
                   static_cast<double>(t_max_ - t_min_);
  return f * p_max_;
}

bool TcnProbabilisticMarker::on_dequeue(const net::MarkContext& ctx,
                                        const net::Packet& p) {
  const sim::Time sojourn = ctx.now - p.enqueue_ts;
  const double prob = probability(sojourn);
  bool mark = prob >= 1.0;
  if (prob > 0.0 && prob < 1.0) mark = rng_.bernoulli(prob);
  metrics_.decision(mark, sojourn);
  return mark;
}

}  // namespace tcn::aqm
