// Hardware-model TCN (Sec. 4.2): the paper argues a 2-byte enqueue
// timestamp at 4 or 8ns resolution suffices (4ns x 2^16 ~= 262us,
// 8ns x 2^16 ~= 524us -- beyond any datacenter RTT), with an unsigned
// wrapping subtraction at dequeue.
//
// HwTcnMarker reproduces that data path bit-for-bit: timestamps are
// quantized to `resolution_ns` ticks and truncated to `bits` bits; the
// sojourn is recovered by wrapping subtraction. It matches the ideal
// TcnMarker for all sojourns below the wrap horizon (verified by tests);
// beyond the horizon the measurement aliases, exactly as real silicon would.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "aqm/marker_metrics.hpp"
#include "net/marker.hpp"
#include "sim/time.hpp"

namespace tcn::aqm {

/// Fixed-width wrapping tick counter arithmetic.
class WrappingClock {
 public:
  WrappingClock(std::uint32_t resolution_ns, std::uint32_t bits)
      : resolution_(resolution_ns), bits_(bits), mask_((1u << bits) - 1u) {
    if (resolution_ns == 0 || bits == 0 || bits > 31) {
      throw std::invalid_argument("WrappingClock: bad parameters");
    }
  }

  /// Truncated tick stamp of an absolute time.
  [[nodiscard]] std::uint32_t stamp(sim::Time t) const {
    return static_cast<std::uint32_t>(
               static_cast<std::uint64_t>(t) / resolution_) &
           mask_;
  }

  /// Elapsed time recovered by wrapping subtraction; correct while the real
  /// elapsed time is below horizon().
  [[nodiscard]] sim::Time elapsed(std::uint32_t enq_stamp,
                                  std::uint32_t deq_stamp) const {
    const std::uint32_t ticks = (deq_stamp - enq_stamp) & mask_;
    return static_cast<sim::Time>(ticks) * resolution_;
  }

  /// Maximum unambiguous measurement (262us at 4ns/16b, 524us at 8ns/16b).
  [[nodiscard]] sim::Time horizon() const {
    return static_cast<sim::Time>(mask_ + 1ull) * resolution_;
  }

  [[nodiscard]] std::uint32_t resolution_ns() const noexcept {
    return resolution_;
  }
  [[nodiscard]] std::uint32_t bits() const noexcept { return bits_; }

 private:
  std::uint32_t resolution_;
  std::uint32_t bits_;
  std::uint32_t mask_;
};

class HwTcnMarker final : public net::Marker {
 public:
  [[nodiscard]] net::MarkerVariant self_variant() noexcept override {
    return this;
  }

  /// `threshold` is T = RTT x lambda; it must fit in the clock horizon (the
  /// paper sizes the clock so a datacenter RTT always does).
  HwTcnMarker(sim::Time threshold, std::uint32_t resolution_ns = 4,
              std::uint32_t bits = 16)
      : clock_(resolution_ns, bits),
        threshold_ticks_(static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(threshold) / resolution_ns)),
        metrics_("tcn-hw", /*with_sojourn=*/true) {
    if (threshold <= 0 || threshold >= clock_.horizon()) {
      throw std::invalid_argument(
          "HwTcnMarker: threshold out of clock horizon");
    }
  }

  bool on_dequeue(const net::MarkContext& ctx, const net::Packet& p) override {
    // The metadata the chip would carry: the truncated enqueue stamp. We
    // recompute it from the per-hop enqueue_ts the Port already records.
    const std::uint32_t enq = clock_.stamp(p.enqueue_ts);
    const std::uint32_t deq = clock_.stamp(ctx.now);
    const sim::Time sojourn = clock_.elapsed(enq, deq);
    // Integer compare in ticks -- the whole dequeue-side ALU.
    const bool mark = sojourn > static_cast<sim::Time>(threshold_ticks_) *
                                    clock_.resolution_ns();
    metrics_.decision(mark, sojourn);
    return mark;
  }

  [[nodiscard]] std::string_view name() const override { return "tcn-hw"; }
  [[nodiscard]] const WrappingClock& clock() const noexcept { return clock_; }

 private:
  WrappingClock clock_;
  std::uint32_t threshold_ticks_;
  MarkerMetrics metrics_;
};

}  // namespace tcn::aqm
