// CoDel (Nichols & Jacobson, CACM 2012) in mark-only mode.
//
// The baseline the paper contrasts TCN against (Sec. 4.3): CoDel tracks
// whether the *minimum* sojourn time over a sliding `interval` stayed above
// `target`; while that persists it marks at a rate that increases with the
// inverse-sqrt control law. Per-queue state: first_above_time, drop_next,
// count, dropping -- exactly the statefulness TCN eliminates.
//
// The implementation follows the Linux sch_codel control law (as the paper's
// prototype does), with dropping replaced by CE marking since the evaluation
// configures CoDel to mark.
#pragma once

#include <cstdint>
#include <vector>

#include "aqm/marker_metrics.hpp"
#include "net/marker.hpp"
#include "sim/time.hpp"

namespace tcn::aqm {

class CodelMarker final : public net::Marker {
 public:
  [[nodiscard]] net::MarkerVariant self_variant() noexcept override {
    return this;
  }

  /// `target`: acceptable standing sojourn time; `interval`: sliding window
  /// (testbed tuning in the paper: 51.2us / 1024us; Internet: 5ms / 100ms).
  CodelMarker(sim::Time target, sim::Time interval,
              std::uint32_t mtu_bytes = 1500);

  bool on_dequeue(const net::MarkContext& ctx, const net::Packet& p) override;

  [[nodiscard]] std::string_view name() const override { return "codel"; }

  struct QueueState {
    sim::Time first_above_time = 0;
    sim::Time drop_next = 0;
    std::uint32_t count = 0;
    std::uint32_t lastcount = 0;
    bool dropping = false;
  };

  /// Test hook: inspect per-queue control state.
  [[nodiscard]] const QueueState& state(std::size_t q) const {
    return states_.at(q);
  }

 private:
  [[nodiscard]] sim::Time control_law(sim::Time t, std::uint32_t count) const;
  bool decide(const net::MarkContext& ctx, sim::Time sojourn);

  sim::Time target_;
  sim::Time interval_;
  std::uint32_t mtu_;
  std::vector<QueueState> states_;
  MarkerMetrics metrics_;
};

}  // namespace tcn::aqm
