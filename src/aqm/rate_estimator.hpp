// Algorithm 1 (Sec. 3.3): departure-rate (queue capacity) measurement, the
// best known general technique (from PIE) -- and the component whose
// dq_thresh tradeoff motivates TCN.
//
// A measurement cycle starts only when the backlog is at least dq_thresh (so
// the queue stays busy throughout) and ends once dq_thresh bytes have
// departed; the cycle's dq_rate sample is EWMA-smoothed into avg_rate.
//
// IdealRedMarker combines one estimator per queue with Eq. 2: mark at enqueue
// when the queue exceeds avg_rate x RTT x lambda. This is the "ideal
// ECN/RED" of Sec. 3 evaluated in Fig. 2 and Fig. 5b.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "aqm/marker_metrics.hpp"
#include "net/marker.hpp"
#include "sim/time.hpp"

namespace tcn::aqm {

class DepartureRateEstimator {
 public:
  /// `w` is the EWMA weight on the previous average (paper: 0.875).
  DepartureRateEstimator(std::uint64_t dq_thresh_bytes, double w = 0.875);

  /// Record a departure of `bytes` at `now` with `qlen_bytes` backlog
  /// remaining. Returns true when this departure completed a cycle (a fresh
  /// sample was produced).
  bool on_departure(sim::Time now, std::uint32_t bytes,
                    std::uint64_t qlen_bytes);

  /// Latest raw sample in bytes/sec (0 until the first cycle completes).
  [[nodiscard]] double sample_rate_Bps() const noexcept { return dq_rate_; }
  /// Smoothed rate in bytes/sec (0 until the first cycle completes).
  [[nodiscard]] double avg_rate_Bps() const noexcept { return avg_rate_; }
  [[nodiscard]] bool has_estimate() const noexcept { return avg_rate_ > 0.0; }
  [[nodiscard]] std::uint64_t dq_thresh() const noexcept { return dq_thresh_; }

 private:
  std::uint64_t dq_thresh_;
  double w_;
  bool is_measure_ = false;
  std::uint64_t dq_count_ = 0;
  sim::Time dq_start_ = 0;
  double dq_rate_ = 0.0;
  double avg_rate_ = 0.0;
};

class IdealRedMarker final : public net::Marker {
 public:
  [[nodiscard]] net::MarkerVariant self_variant() noexcept override {
    return this;
  }

  /// Called whenever some queue's estimator produces a fresh sample -- used
  /// by the Fig. 2 harness to trace convergence.
  using SampleObserver = std::function<void(
      std::size_t queue, sim::Time now, double sample_Bps, double avg_Bps)>;

  IdealRedMarker(std::size_t num_queues, std::uint64_t dq_thresh_bytes,
                 sim::Time rtt_lambda, double w = 0.875);

  bool on_enqueue(const net::MarkContext& ctx, const net::Packet& p) override;
  bool on_dequeue(const net::MarkContext& ctx, const net::Packet& p) override;

  void set_sample_observer(SampleObserver obs) { observer_ = std::move(obs); }

  [[nodiscard]] const DepartureRateEstimator& estimator(std::size_t q) const {
    return estimators_.at(q);
  }

  /// Dynamic threshold of queue q in bytes; falls back to the link-rate
  /// standard threshold until the first sample exists.
  [[nodiscard]] std::uint64_t threshold_bytes(std::size_t q,
                                              std::uint64_t link_rate_bps) const;

  [[nodiscard]] std::string_view name() const override { return "ideal-red"; }

 private:
  std::vector<DepartureRateEstimator> estimators_;
  sim::Time rtt_lambda_;
  SampleObserver observer_;
  MarkerMetrics metrics_;
  /// Raw per-cycle rate samples (bits/sec) across all queues -- the series
  /// Fig. 2 summarizes. Null when metrics are disabled.
  obs::LogHistogram* sample_bps_ = nullptr;
};

}  // namespace tcn::aqm
