// Node interface: anything that can terminate a link.
#pragma once

#include <string_view>

#include "net/packet.hpp"

namespace tcn::net {

class Node {
 public:
  virtual ~Node() = default;

  /// A packet arrived on ingress index `ingress` (meaning is node-specific;
  /// switches use it for diagnostics only).
  virtual void receive(PacketPtr p, std::size_t ingress) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace tcn::net
