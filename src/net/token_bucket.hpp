// Token-bucket shaper (Sec. 5): the software prototype shapes qdisc egress to
// 99.5% of NIC rate with a ~1.67 MTU bucket so queueing stays inside the
// qdisc where the AQM can see it. The Port implements shaping via
// rate_limit_fraction; this standalone class models the bucket itself and is
// used by tests to validate the burst bound.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace tcn::net {

class TokenBucket {
 public:
  /// `rate_bps`: refill rate; `bucket_bytes`: burst capacity.
  TokenBucket(std::uint64_t rate_bps, std::uint64_t bucket_bytes)
      : rate_bps_(rate_bps),
        bucket_bytes_(bucket_bytes),
        tokens_(static_cast<double>(bucket_bytes)) {}

  /// Earliest time at or after `now` when `bytes` may be sent. Does not
  /// consume tokens.
  [[nodiscard]] sim::Time earliest(sim::Time now, std::uint64_t bytes) const {
    const double avail = tokens_at(now);
    if (avail >= static_cast<double>(bytes)) return now;
    const double deficit = static_cast<double>(bytes) - avail;
    const double wait_s = deficit * 8.0 / static_cast<double>(rate_bps_);
    return now + sim::from_seconds(wait_s) + 1;  // +1ns: never early
  }

  /// Consume tokens for a send at time `at` (>= last update time).
  void consume(sim::Time at, std::uint64_t bytes) {
    tokens_ = tokens_at(at) - static_cast<double>(bytes);
    last_ = at;
  }

  [[nodiscard]] double tokens_at(sim::Time at) const {
    const double refill = sim::to_seconds(at - last_) *
                          static_cast<double>(rate_bps_) / 8.0;
    return std::min(static_cast<double>(bucket_bytes_), tokens_ + refill);
  }

  [[nodiscard]] std::uint64_t rate_bps() const noexcept { return rate_bps_; }
  [[nodiscard]] std::uint64_t bucket_bytes() const noexcept {
    return bucket_bytes_;
  }

 private:
  std::uint64_t rate_bps_;
  std::uint64_t bucket_bytes_;
  double tokens_;
  sim::Time last_ = 0;
};

}  // namespace tcn::net
