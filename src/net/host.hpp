// End host: a NIC egress port plus a transport demultiplexer.
//
// A fixed per-direction stack delay models the end-host contribution to base
// RTT (the paper's leaf-spine setup attributes 80us of the 85.2us RTT to end
// hosts). Delay is applied once on send and once on receive.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/fifo_scheduler.hpp"
#include "net/node.hpp"
#include "net/port.hpp"
#include "sim/simulator.hpp"

namespace tcn::net {

class Host final : public Node {
 public:
  using Handler = std::function<void(PacketPtr)>;

  Host(sim::Simulator& sim, std::string name, std::uint32_t address,
       PortConfig nic_cfg, sim::Time stack_delay = 0);

  /// Connect the NIC to the far end (normally a switch ingress).
  void connect(Node* peer, std::size_t peer_ingress);

  /// Send a packet through the stack (applies stack delay, then NIC queue).
  void send(PacketPtr p);

  /// Register a receive handler for a local port number. Packets whose dport
  /// matches are delivered to the handler after the stack delay.
  void bind(std::uint16_t local_port, Handler h);
  void unbind(std::uint16_t local_port);

  void receive(PacketPtr p, std::size_t ingress) override;

  [[nodiscard]] std::uint32_t address() const noexcept { return address_; }
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] Port& nic() noexcept { return *nic_; }
  [[nodiscard]] sim::Time stack_delay() const noexcept { return stack_delay_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  /// Allocate a fresh ephemeral port number (never reused within a run).
  std::uint16_t allocate_port() { return next_port_++; }

 private:
  sim::Simulator& sim_;
  std::string name_;
  std::uint32_t address_;
  sim::Time stack_delay_;
  std::unique_ptr<Port> nic_;
  std::unordered_map<std::uint16_t, Handler> handlers_;
  std::uint16_t next_port_ = 1024;
};

}  // namespace tcn::net
