#include "net/trace.hpp"

namespace tcn::net {

std::string_view trace_event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::kEnqueue: return "enq";
    case TraceEvent::kDequeue: return "deq";
    case TraceEvent::kDrop: return "drop";
    case TraceEvent::kMark: return "mark";
    case TraceEvent::kFaultDrop: return "fdrop";
    case TraceEvent::kSchedDrop: return "sdrop";
  }
  return "?";
}

}  // namespace tcn::net
