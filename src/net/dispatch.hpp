// Static-dispatch registry for the hot Port pipeline.
//
// Port's per-packet path makes five virtual calls (scheduler on_enqueue /
// select / on_dequeue, marker on_enqueue / on_dequeue). The scheduler and
// marker zoos are closed, enumerable sets, so Port can recover the concrete
// type ONCE at construction and dispatch through a std::variant of concrete
// pointers instead: std::visit on a pointer-to-final-class is a direct,
// inlinable call, which is what lets the optimizer (especially under LTO)
// fold marker math straight into the port loop.
//
// The virtual interfaces remain the extension seam: the FIRST alternative
// of each variant is the plain base pointer, and Scheduler::self_variant()
// / Marker::self_variant() default to returning it. A test double or an
// out-of-tree scheduler works unchanged -- it just rides the virtual path
// (one extra indirect call, exactly the pre-refactor cost). In-tree types
// opt in with a one-line override returning `this` at its concrete type.
// PortConfig::force_virtual_dispatch pins the base alternative even for
// in-tree types, which is how bench/micro_core measures the win.
//
// This header deliberately uses only forward declarations, so net/ stays
// the bottom layer at compile time: sched/ and aqm/ still include net/
// headers, never the reverse. The one-per-program list below is the only
// place that enumerates the zoo; port.cpp includes the concrete headers to
// instantiate the visit (a closed-world upcall that lives in the .cpp, not
// in any interface header).
#pragma once

#include <variant>

namespace tcn::sched {
class AifoScheduler;
class DwrrScheduler;
class PifoScheduler;
class SpHybridScheduler;
class SpPifoScheduler;
class SpScheduler;
class WfqScheduler;
class WrrScheduler;
}  // namespace tcn::sched

namespace tcn::aqm {
class CodelMarker;
class HwTcnMarker;
class IdealRedMarker;
class MqEcnMarker;
class PieMarker;
class RedEcnMarker;
class RedProbabilisticMarker;
class TcnMarker;
class TcnProbabilisticMarker;
}  // namespace tcn::aqm

namespace tcn::net {

class Scheduler;
class FifoScheduler;
class Marker;
class NullMarker;

/// One alternative per concrete scheduler; Scheduler* (first) is the
/// virtual-dispatch fallback for external subclasses and benchmarking.
using SchedulerVariant = std::variant<Scheduler*,            //
                                      FifoScheduler*,        //
                                      sched::SpScheduler*,   //
                                      sched::DwrrScheduler*, //
                                      sched::WrrScheduler*,  //
                                      sched::WfqScheduler*,  //
                                      sched::SpHybridScheduler*,
                                      sched::PifoScheduler*,
                                      sched::SpPifoScheduler*,
                                      sched::AifoScheduler*>;

/// One alternative per concrete marker; Marker* (first) is the fallback.
using MarkerVariant = std::variant<Marker*,                         //
                                   NullMarker*,                     //
                                   aqm::TcnMarker*,                 //
                                   aqm::TcnProbabilisticMarker*,    //
                                   aqm::CodelMarker*,               //
                                   aqm::MqEcnMarker*,               //
                                   aqm::RedEcnMarker*,              //
                                   aqm::RedProbabilisticMarker*,    //
                                   aqm::PieMarker*,                 //
                                   aqm::IdealRedMarker*,            //
                                   aqm::HwTcnMarker*>;

}  // namespace tcn::net
