// Egress port: the pipeline the paper's qdisc prototype implements (Sec. 5).
//
//   classify (done by the owning Switch/Host)
//     -> shared-buffer admission (tail drop, first-in-first-serve)
//     -> enqueue ECN marking hook
//     -> packet scheduler
//     -> dequeue ECN marking hook
//     -> serialization on the link + propagation to the peer
//
// The port optionally shapes its drain rate below line rate (the prototype's
// token-bucket rate limiter runs at 99.5% of NIC capacity so queueing stays
// visible to the AQM).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/marker.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "net/scheduler.hpp"
#include "net/trace.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "sim/simulator.hpp"

namespace tcn::net {

/// Per-packet link-fault decision hook (fault injection). Consulted when a
/// packet finishes serialization; returning true blackholes it on the wire.
/// Concrete models (Bernoulli, Gilbert-Elliott) live in src/fault.
class LossModel {
 public:
  virtual ~LossModel() = default;
  virtual bool should_drop(const Packet& p, sim::Time now) = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

struct PortConfig {
  std::uint64_t rate_bps = 1'000'000'000;
  sim::Time prop_delay = 0;
  std::size_t num_queues = 1;
  /// Shared buffer across all queues of the port; admission is tail drop on
  /// the port total (first-in-first-serve, as on the testbed switch).
  std::uint64_t buffer_bytes = UINT64_MAX;
  /// Drain-rate shaping as a fraction of rate_bps (Sec. 5 rate limiter).
  double rate_limit_fraction = 1.0;
  /// Pin the scheduler/marker to the virtual-dispatch path even when the
  /// concrete type is known (see net/dispatch.hpp). Benchmarking knob --
  /// behaviour is identical either way, only the call mechanism differs.
  bool force_virtual_dispatch = false;
};

class Port {
 public:
  Port(sim::Simulator& sim, std::string name, PortConfig cfg,
       std::unique_ptr<Scheduler> sched, std::unique_ptr<Marker> marker);

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  /// Attach the far end of the link.
  void connect(Node* peer, std::size_t peer_ingress);

  /// Submit a packet to queue `queue`. May drop (shared buffer full, link
  /// down) or mark. Throws std::invalid_argument on an out-of-range queue.
  void enqueue(PacketPtr p, std::size_t queue);

  /// Take the link down (blackholing in-flight and newly submitted packets
  /// into the fault_drops counter) or bring it back up (resuming the drain
  /// of whatever survived in the buffer).
  void set_link_up(bool up);
  [[nodiscard]] bool link_up() const noexcept { return link_up_; }

  /// Attach (or detach with nullptr) a random-loss model applied to packets
  /// leaving the port; it must outlive the port or be detached first.
  void set_loss_model(LossModel* m) noexcept { loss_ = m; }

  /// Transient shared-buffer squeeze: cap admission below the configured
  /// buffer. Resident packets are not evicted; new arrivals tail-drop until
  /// the occupancy drains under the new limit.
  void set_buffer_limit(std::uint64_t bytes) noexcept { buffer_limit_ = bytes; }
  void reset_buffer_limit() noexcept { buffer_limit_ = cfg_.buffer_bytes; }
  [[nodiscard]] std::uint64_t buffer_limit() const noexcept {
    return buffer_limit_;
  }

  struct Counters {
    std::uint64_t enq_packets = 0;
    std::uint64_t enq_bytes = 0;
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t drops = 0;  ///< shared-buffer tail drops
    std::uint64_t drop_bytes = 0;
    std::uint64_t marks = 0;
    /// Packets blackholed by injected faults (downed link, random loss) --
    /// reported separately from buffer drops.
    std::uint64_t fault_drops = 0;
    std::uint64_t fault_drop_bytes = 0;
    /// Packets rejected by the scheduler's admission control (e.g. AIFO's
    /// rank-quantile gate) -- a scheduling decision, not buffer pressure or
    /// AQM behaviour, so accounted separately from both.
    std::uint64_t sched_drops = 0;
    std::uint64_t sched_drop_bytes = 0;
  };

  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  /// Drops attributed to the queue the packet was classified into.
  [[nodiscard]] std::uint64_t queue_drops(std::size_t q) const {
    return queue_drops_.at(q);
  }
  [[nodiscard]] std::uint64_t queue_bytes(std::size_t q) const {
    return queues_[q].bytes();
  }
  [[nodiscard]] std::size_t queue_packets(std::size_t q) const {
    return queues_[q].size();
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return total_bytes_;
  }
  [[nodiscard]] std::size_t num_queues() const noexcept {
    return queues_.size();
  }
  [[nodiscard]] std::uint64_t effective_rate_bps() const noexcept {
    return effective_rate_bps_;
  }
  [[nodiscard]] const PortConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return *sched_; }
  [[nodiscard]] Marker& marker() noexcept { return *marker_; }
  /// Far end of the link (nullptr until connect()).
  [[nodiscard]] Node* peer() const noexcept { return peer_; }

  /// Attach (or detach with nullptr) a trace observer; it must outlive the
  /// port or be detached first.
  void set_observer(PortObserver* obs) noexcept { observer_ = obs; }

 private:
  /// Handles into the run's MetricsRegistry, resolved once at construction
  /// from MetricsRegistry::current(). When no registry scope is installed
  /// every pointer stays null and `enabled` is false, so each publish site
  /// in the hot path costs exactly one predictable branch (the same
  /// discipline as the PortObserver null check).
  struct Metrics {
    bool enabled = false;
    std::vector<obs::Counter*> q_enq;
    std::vector<obs::Counter*> q_deq;
    std::vector<obs::Counter*> q_drop;
    std::vector<obs::LogHistogram*> q_sojourn;
    obs::Counter* drops_buffer = nullptr;
    obs::Counter* drops_fault = nullptr;
    obs::Counter* drops_sched = nullptr;
    obs::Counter* marks_enqueue = nullptr;
    obs::Counter* marks_dequeue = nullptr;
    obs::LogHistogram* mark_sojourn = nullptr;
    obs::LogHistogram* interdeq_gap = nullptr;
  };

  void try_transmit();
  void emit(TraceEvent event, const Packet& p, std::size_t queue,
            sim::Time sojourn = 0);
  void fault_drop(const Packet& p, std::size_t queue);
  void resolve_metrics();
  void resolve_timeseries();

  sim::Simulator& sim_;
  std::string name_;
  PortConfig cfg_;
  std::uint64_t effective_rate_bps_;
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<Marker> marker_;
  /// Concrete-type handles to *sched_/*marker_, captured once at
  /// construction via self_variant(); the hot path dispatches through these
  /// (std::visit over final classes = direct calls) instead of the vtable.
  SchedulerVariant sched_v_;
  MarkerVariant marker_v_;
  std::vector<PacketQueue> queues_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t buffer_limit_;
  bool busy_ = false;
  bool link_up_ = true;
  LossModel* loss_ = nullptr;
  Node* peer_ = nullptr;
  std::size_t peer_ingress_ = 0;
  Counters counters_;
  std::vector<std::uint64_t> queue_drops_;
  PortObserver* observer_ = nullptr;
  Metrics metrics_;
  /// Per-queue time-series channels, resolved once at construction from
  /// obs::TimeSeries::current() -- same null-handle discipline as Metrics.
  /// Empty (and series_enabled_ false) when no sampler scope is installed.
  std::vector<obs::TimeSeries::Channel*> series_;
  bool series_enabled_ = false;
  sim::Time last_dequeue_ = -1;  // -1: no dequeue yet (gap undefined)
};

}  // namespace tcn::net
