// ECN marking (AQM) interface.
//
// A Marker is consulted by the egress Port at enqueue and dequeue. Returning
// true requests a CE mark; the Port applies it only to ECT packets. Markers
// never drop -- the paper's evaluation runs every AQM (including CoDel) in
// mark-only mode, and TCN is mark-only by design (Sec. 4.2).
#pragma once

#include <cstdint>
#include <string_view>

#include "net/dispatch.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tcn::net {

/// Snapshot of the egress state a marking decision may use.
struct MarkContext {
  sim::Time now = 0;
  std::size_t queue = 0;          ///< queue index within the port
  std::uint64_t queue_bytes = 0;  ///< occupancy of that queue (see hooks)
  std::uint64_t port_bytes = 0;   ///< total occupancy across the port
  std::uint64_t link_rate_bps = 0;
};

class Marker {
 public:
  virtual ~Marker() = default;

  /// Static-dispatch registration (see net/dispatch.hpp): concrete in-tree
  /// markers override this with a one-liner returning `this` at their final
  /// type, letting Port devirtualize the mark decisions. The default keeps
  /// external/test subclasses on the virtual path unchanged.
  [[nodiscard]] virtual MarkerVariant self_variant() noexcept {
    return MarkerVariant{this};
  }

  /// Called right after the packet is admitted; `queue_bytes`/`port_bytes`
  /// include the packet. Return true to set CE.
  virtual bool on_enqueue(const MarkContext& /*ctx*/, const Packet& /*p*/) {
    return false;
  }

  /// Called when the packet leaves the queue for the wire; occupancies
  /// exclude the departing packet. Return true to set CE.
  virtual bool on_dequeue(const MarkContext& /*ctx*/, const Packet& /*p*/) {
    return false;
  }

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Marker that never marks (plain drop-tail behaviour).
class NullMarker final : public Marker {
 public:
  [[nodiscard]] MarkerVariant self_variant() noexcept override { return this; }
  [[nodiscard]] std::string_view name() const override { return "none"; }
};

}  // namespace tcn::net
