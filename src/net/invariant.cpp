#include "net/invariant.hpp"

#include <stdexcept>

#include "net/port.hpp"

namespace tcn::net {

void InvariantChecker::violation(const TraceRecord& rec,
                                 const std::string& what) {
  std::string msg = "invariant violated at t=" + std::to_string(rec.t) +
                    "ns on " + std::string(rec.port) + " (" +
                    std::string(trace_event_name(rec.event)) + " q" +
                    std::to_string(rec.queue) + "): " + what;
  // First violation gets the flight-recorder post-mortem (if wired): the
  // last N events leading up to the fault, so the failure explains itself.
  if (violations_ == 0 && postmortem_) msg += "\n" + postmortem_();
  if (fail_fast_) throw std::logic_error(msg);
  if (violations_ == 0) first_violation_ = msg;
  ++violations_;
}

void InvariantChecker::on_event(const TraceRecord& rec) {
  ++events_checked_;
  auto it = ports_.find(rec.port);
  if (it == ports_.end()) {
    it = ports_.emplace(std::string(rec.port), PortState{}).first;
  }
  PortState& st = it->second;

  if (rec.t < st.last_t) {
    violation(rec, "timestamp went backwards (last " +
                       std::to_string(st.last_t) + "ns)");
  }
  st.last_t = rec.t;

  if (rec.queue >= st.queue_bytes.size()) {
    st.queue_bytes.resize(rec.queue + 1, 0);
  }
  std::uint64_t& qbytes = st.queue_bytes[rec.queue];

  switch (rec.event) {
    case TraceEvent::kEnqueue:
      st.port_bytes += rec.size;
      qbytes += rec.size;
      break;
    case TraceEvent::kDequeue:
      if (qbytes < rec.size || st.port_bytes < rec.size) {
        violation(rec, "occupancy underflow: dequeue of " +
                           std::to_string(rec.size) + "B from queue holding " +
                           std::to_string(qbytes) + "B (port " +
                           std::to_string(st.port_bytes) + "B)");
        // Clamp so one fault does not cascade in non-fail-fast mode.
        qbytes = st.port_bytes = 0;
        return;
      }
      st.port_bytes -= rec.size;
      qbytes -= rec.size;
      break;
    case TraceEvent::kDrop:
    case TraceEvent::kFaultDrop:
    case TraceEvent::kSchedDrop:
      // Rejected before admission: occupancy must be unchanged.
      break;
    case TraceEvent::kMark:
      // Marks fire adjacent to the enqueue/dequeue bookkeeping (before the
      // paired event is emitted), so occupancy is checked on that event.
      return;
  }

  if (rec.port_bytes != st.port_bytes) {
    violation(rec, "port byte conservation: reported " +
                       std::to_string(rec.port_bytes) + "B, ledger says " +
                       std::to_string(st.port_bytes) + "B");
    st.port_bytes = rec.port_bytes;  // resync to limit cascades
  }
  if (rec.queue_bytes != qbytes) {
    violation(rec, "queue byte conservation: reported " +
                       std::to_string(rec.queue_bytes) + "B, ledger says " +
                       std::to_string(qbytes) + "B");
    qbytes = rec.queue_bytes;
  }
}

bool port_ledger_balanced(const Port& port) {
  const Port::Counters& c = port.counters();
  return c.enq_bytes == c.tx_bytes + port.total_bytes();
}

}  // namespace tcn::net
