// Packet model and the per-simulation packet pool.
//
// One struct covers TCP data/ACK segments and ping probes. Packets are owned
// by exactly one component at a time and moved along the path as a PacketPtr
// (a unique_ptr with a pool-aware deleter); queues, links and transports
// never share them. With a PacketPool::Scope installed, every make_packet()
// draws from a per-run free list and every PacketPtr destruction recycles
// into it, so steady-state packet churn performs zero heap allocations.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace tcn::net {

/// ECN codepoints from RFC 3168.
enum class Ecn : std::uint8_t {
  kNotEct = 0,  ///< not ECN-capable transport
  kEct0 = 1,
  kEct1 = 2,
  kCe = 3,  ///< congestion experienced
};

enum class PacketType : std::uint8_t {
  kData = 0,
  kAck = 1,
  kPing = 2,
  kPong = 3,
  kCnp = 4,  ///< DCQCN Congestion Notification Packet
};

/// Fixed L2-L4 header overhead carried by every packet (Ethernet + IP + TCP).
inline constexpr std::uint32_t kHeaderBytes = 40;
/// Default MSS; 1500B MTU minus headers.
inline constexpr std::uint32_t kDefaultMss = 1460;

struct Packet {
  std::uint64_t uid = 0;  ///< globally unique, for tracing

  PacketType type = PacketType::kData;
  std::uint32_t src = 0;  ///< source host address
  std::uint32_t dst = 0;  ///< destination host address
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint64_t flow = 0;  ///< flow id, for statistics

  std::uint32_t size = 0;     ///< total wire size in bytes (headers included)
  std::uint32_t payload = 0;  ///< TCP payload bytes carried
  std::uint64_t seq = 0;      ///< first payload byte (data packets)
  std::uint64_t ack = 0;      ///< cumulative ack (ACK packets)
  bool ece = false;           ///< ECN echo flag (ACK packets)

  /// SACK option: up to 3 [begin, end) blocks of out-of-order data held by
  /// the receiver (RFC 2018 carries at most 3-4 alongside timestamps).
  std::array<std::pair<std::uint64_t, std::uint64_t>, 3> sack{};
  std::uint8_t sack_count = 0;

  Ecn ecn = Ecn::kNotEct;
  std::uint8_t dscp = 0;  ///< service class; switches classify on this

  /// Per-hop enqueue timestamp; the egress port sets it on enqueue so
  /// sojourn-time AQMs (TCN, CoDel) can compute it at dequeue. Mirrors the
  /// 2B hardware metadata timestamp of Sec. 4.2.
  sim::Time enqueue_ts = 0;
  /// Application send timestamp (ping RTT measurement).
  sim::Time sent_ts = 0;

  [[nodiscard]] bool ect() const noexcept {
    return ecn == Ecn::kEct0 || ecn == Ecn::kEct1;
  }
  [[nodiscard]] bool ce() const noexcept { return ecn == Ecn::kCe; }

  /// Pool-internal: true while the packet sits on its pool's free list.
  /// Lets PacketPool detect double-recycle misuse without a side table;
  /// not a wire field and reset on every acquire.
  bool pool_free = false;
};

class PacketPool;

/// Deleter behind PacketPtr: recycles into the owning pool, or plain-deletes
/// packets allocated outside any pool scope. Captured per-packet at
/// make_packet() time, so a packet always returns to the pool it came from
/// even if scopes changed in between.
struct PacketDeleter {
  PacketPool* pool = nullptr;
  void operator()(Packet* p) const noexcept;
};

/// Owning handle to a packet. Exactly one component holds it at a time;
/// destruction recycles pooled packets instead of freeing them.
using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

/// Per-simulation packet free list.
//
// Packets are backed by a std::deque slab (stable addresses, freed only when
// the pool is destroyed); acquire() pops the free list LIFO -- cache-warm
// reuse -- and falls back to growing the slab. Single-threaded by design:
// one pool per simulation run, installed thread-locally via PacketPool::Scope
// exactly like PacketUidScope, so concurrent sweep jobs never contend or
// share packets.
//
// Lifetime rule: the pool must outlive every PacketPtr drawn from it --
// declare it before the Simulator/topology in a run (destruction is reverse
// order, so in-flight packets recycle into a still-live pool). Misuse
// downgrades gracefully: because slab memory is never freed while the pool
// lives, a double-recycle is detected via Packet::pool_free, counted, and
// dropped instead of corrupting the free list.
class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Pop a recycled packet (reset to a default-constructed state) or grow
  /// the slab. The uid is NOT assigned here -- make_packet() owns uids.
  [[nodiscard]] PacketPtr acquire();

  /// Return a packet to the free list. Called by PacketDeleter; callable
  /// directly in tests. Double-recycling the same packet is detected and
  /// ignored (see double_recycles()).
  void recycle(Packet* p) noexcept;

  /// Packets created fresh from the slab (heap growth events).
  [[nodiscard]] std::uint64_t fresh_allocs() const noexcept { return fresh_; }
  /// Packets served from the free list (zero-allocation acquires).
  [[nodiscard]] std::uint64_t reuses() const noexcept { return reused_; }
  /// Packets returned to the free list.
  [[nodiscard]] std::uint64_t recycles() const noexcept { return recycled_; }
  /// Detected double-recycle misuses (0 in a correct program).
  [[nodiscard]] std::uint64_t double_recycles() const noexcept {
    return double_recycled_;
  }
  /// Packets currently held by the simulation (acquired, not yet recycled).
  [[nodiscard]] std::uint64_t live() const noexcept {
    return fresh_ + reused_ - recycled_;
  }
  /// Free-list depth right now.
  [[nodiscard]] std::size_t free_size() const noexcept {
    return free_.size();
  }

  /// RAII scope installing this pool as the thread's make_packet() source.
  /// Nests like PacketUidScope (inner scope shadows, destructor restores).
  class Scope {
   public:
    explicit Scope(PacketPool& pool) noexcept;
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PacketPool* prev_;
  };

  /// Pool installed on this thread, or nullptr outside any scope.
  [[nodiscard]] static PacketPool* current() noexcept;

 private:
  std::deque<Packet> slab_;     ///< owns storage; addresses stable
  std::vector<Packet*> free_;   ///< LIFO free list into slab_
  std::uint64_t fresh_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t recycled_ = 0;
  std::uint64_t double_recycled_ = 0;
};

/// RAII scope that makes packet uid allocation per-simulation instead of
/// process-global. While a scope is alive on a thread, make_packet() draws
/// uids 1, 2, 3, ... from the scope's own counter, so per-run traces and
/// logs are identical regardless of thread interleaving or run order --
/// the determinism contract the parallel sweep runner relies on.
///
/// Scopes nest (an inner scope shadows the outer one and restores it on
/// destruction) and are thread-local: concurrent simulations on different
/// worker threads each install their own scope and never contend. Without a
/// scope, make_packet() falls back to the old process-wide atomic counter,
/// which stays unique but not reproducible across interleavings.
class PacketUidScope {
 public:
  PacketUidScope() noexcept;
  ~PacketUidScope();
  PacketUidScope(const PacketUidScope&) = delete;
  PacketUidScope& operator=(const PacketUidScope&) = delete;

  /// Next uid in this scope (1-based).
  std::uint64_t next() noexcept { return ++counter_; }

  /// Uids handed out so far.
  [[nodiscard]] std::uint64_t allocated() const noexcept { return counter_; }

 private:
  std::uint64_t counter_ = 0;
  PacketUidScope* prev_;  ///< shadowed scope restored on destruction
};

/// Factory: storage comes from the innermost PacketPool::Scope on this
/// thread (heap when none is installed); uids come from the innermost
/// PacketUidScope, or a process-wide atomic counter when no scope is
/// installed (uids are only for tracing and do not affect simulation
/// behaviour).
PacketPtr make_packet();

}  // namespace tcn::net
