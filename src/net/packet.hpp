// Packet model.
//
// One struct covers TCP data/ACK segments and ping probes. Packets are owned
// by exactly one component at a time and moved along the path as
// std::unique_ptr<Packet>; queues, links and transports never share them.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "sim/time.hpp"

namespace tcn::net {

/// ECN codepoints from RFC 3168.
enum class Ecn : std::uint8_t {
  kNotEct = 0,  ///< not ECN-capable transport
  kEct0 = 1,
  kEct1 = 2,
  kCe = 3,  ///< congestion experienced
};

enum class PacketType : std::uint8_t {
  kData = 0,
  kAck = 1,
  kPing = 2,
  kPong = 3,
  kCnp = 4,  ///< DCQCN Congestion Notification Packet
};

/// Fixed L2-L4 header overhead carried by every packet (Ethernet + IP + TCP).
inline constexpr std::uint32_t kHeaderBytes = 40;
/// Default MSS; 1500B MTU minus headers.
inline constexpr std::uint32_t kDefaultMss = 1460;

struct Packet {
  std::uint64_t uid = 0;  ///< globally unique, for tracing

  PacketType type = PacketType::kData;
  std::uint32_t src = 0;  ///< source host address
  std::uint32_t dst = 0;  ///< destination host address
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint64_t flow = 0;  ///< flow id, for statistics

  std::uint32_t size = 0;     ///< total wire size in bytes (headers included)
  std::uint32_t payload = 0;  ///< TCP payload bytes carried
  std::uint64_t seq = 0;      ///< first payload byte (data packets)
  std::uint64_t ack = 0;      ///< cumulative ack (ACK packets)
  bool ece = false;           ///< ECN echo flag (ACK packets)

  /// SACK option: up to 3 [begin, end) blocks of out-of-order data held by
  /// the receiver (RFC 2018 carries at most 3-4 alongside timestamps).
  std::array<std::pair<std::uint64_t, std::uint64_t>, 3> sack{};
  std::uint8_t sack_count = 0;

  Ecn ecn = Ecn::kNotEct;
  std::uint8_t dscp = 0;  ///< service class; switches classify on this

  /// Per-hop enqueue timestamp; the egress port sets it on enqueue so
  /// sojourn-time AQMs (TCN, CoDel) can compute it at dequeue. Mirrors the
  /// 2B hardware metadata timestamp of Sec. 4.2.
  sim::Time enqueue_ts = 0;
  /// Application send timestamp (ping RTT measurement).
  sim::Time sent_ts = 0;

  [[nodiscard]] bool ect() const noexcept {
    return ecn == Ecn::kEct0 || ecn == Ecn::kEct1;
  }
  [[nodiscard]] bool ce() const noexcept { return ecn == Ecn::kCe; }
};

using PacketPtr = std::unique_ptr<Packet>;

/// RAII scope that makes packet uid allocation per-simulation instead of
/// process-global. While a scope is alive on a thread, make_packet() draws
/// uids 1, 2, 3, ... from the scope's own counter, so per-run traces and
/// logs are identical regardless of thread interleaving or run order --
/// the determinism contract the parallel sweep runner relies on.
///
/// Scopes nest (an inner scope shadows the outer one and restores it on
/// destruction) and are thread-local: concurrent simulations on different
/// worker threads each install their own scope and never contend. Without a
/// scope, make_packet() falls back to the old process-wide atomic counter,
/// which stays unique but not reproducible across interleavings.
class PacketUidScope {
 public:
  PacketUidScope() noexcept;
  ~PacketUidScope();
  PacketUidScope(const PacketUidScope&) = delete;
  PacketUidScope& operator=(const PacketUidScope&) = delete;

  /// Next uid in this scope (1-based).
  std::uint64_t next() noexcept { return ++counter_; }

  /// Uids handed out so far.
  [[nodiscard]] std::uint64_t allocated() const noexcept { return counter_; }

 private:
  std::uint64_t counter_ = 0;
  PacketUidScope* prev_;  ///< shadowed scope restored on destruction
};

/// Factory: uids come from the innermost PacketUidScope on this thread, or
/// a process-wide atomic counter when no scope is installed (uids are only
/// for tracing and do not affect simulation behaviour).
PacketPtr make_packet();

/// Copyable owner used to move a PacketPtr through std::function event
/// callbacks (which require copyable captures) without leaking if the event
/// never fires.
class PacketHolder {
 public:
  explicit PacketHolder(PacketPtr p)
      : p_(std::make_shared<PacketPtr>(std::move(p))) {}

  /// Transfers ownership out; valid exactly once.
  [[nodiscard]] PacketPtr take() const { return std::move(*p_); }

 private:
  std::shared_ptr<PacketPtr> p_;
};

}  // namespace tcn::net
