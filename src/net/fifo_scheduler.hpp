// Trivial single/multi-queue FIFO scheduler (lowest-index non-empty queue).
// Lives in net/ so hosts and unit tests don't need the sched library.
#pragma once

#include "net/scheduler.hpp"

namespace tcn::net {

class FifoScheduler final : public Scheduler {
 public:
  [[nodiscard]] SchedulerVariant self_variant() noexcept override {
    return this;
  }

  void on_enqueue(std::size_t, const Packet&, sim::Time) override {}

  std::size_t select(sim::Time) override {
    const auto& qs = queues();
    for (std::size_t i = 0; i < qs.size(); ++i) {
      if (!qs[i].empty()) return i;
    }
    return 0;  // contract: never reached (a queue is non-empty)
  }

  void on_dequeue(std::size_t, const Packet&, sim::Time) override {}

  [[nodiscard]] std::string_view name() const override { return "fifo"; }
};

}  // namespace tcn::net
