#include "net/port.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>
#include <variant>

// Closed-world upcall (see net/dispatch.hpp): the concrete scheduler and
// marker headers are pulled in HERE -- in the .cpp only, never in a net/
// interface header -- so std::visit below sees complete final classes and
// compiles each alternative down to a direct, inlinable call.
#include "aqm/codel.hpp"
#include "aqm/hw_tcn.hpp"
#include "aqm/mq_ecn.hpp"
#include "aqm/pie.hpp"
#include "aqm/rate_estimator.hpp"
#include "aqm/red_ecn.hpp"
#include "aqm/red_prob.hpp"
#include "aqm/tcn.hpp"
#include "net/fifo_scheduler.hpp"
#include "sched/aifo.hpp"
#include "sched/dwrr.hpp"
#include "sched/pifo.hpp"
#include "sched/sp_pifo.hpp"
#include "sched/sp.hpp"
#include "sched/sp_hybrid.hpp"
#include "sched/wfq.hpp"
#include "sched/wrr.hpp"

namespace tcn::net {

Port::Port(sim::Simulator& sim, std::string name, PortConfig cfg,
           std::unique_ptr<Scheduler> sched, std::unique_ptr<Marker> marker)
    : sim_(sim),
      name_(std::move(name)),
      cfg_(cfg),
      effective_rate_bps_(static_cast<std::uint64_t>(
          static_cast<double>(cfg.rate_bps) * cfg.rate_limit_fraction)),
      sched_(std::move(sched)),
      marker_(std::move(marker)),
      queues_(cfg.num_queues),
      buffer_limit_(cfg.buffer_bytes),
      queue_drops_(cfg.num_queues, 0) {
  if (cfg.rate_bps == 0) {
    throw std::invalid_argument("Port: rate_bps must be > 0");
  }
  if (cfg.num_queues == 0) {
    throw std::invalid_argument("Port: num_queues must be >= 1");
  }
  if (cfg.prop_delay < 0) {
    throw std::invalid_argument("Port: prop_delay must be >= 0");
  }
  if (cfg.rate_limit_fraction <= 0.0 || cfg.rate_limit_fraction > 1.0) {
    throw std::invalid_argument("Port: rate_limit_fraction out of (0,1]");
  }
  if (!sched_ || !marker_) {
    throw std::invalid_argument("Port: scheduler and marker are required");
  }
  if (effective_rate_bps_ == 0) {
    // Would divide by zero computing serialization times.
    throw std::invalid_argument(
        "Port: rate_bps * rate_limit_fraction rounds to zero");
  }
  sched_->bind(&queues_, effective_rate_bps_);
  // Capture the concrete types once; every hot call below goes through the
  // variants. force_virtual_dispatch pins the base-pointer alternative so
  // benches can measure the devirtualization win on identical behaviour.
  if (cfg.force_virtual_dispatch) {
    sched_v_ = SchedulerVariant{sched_.get()};
    marker_v_ = MarkerVariant{marker_.get()};
  } else {
    sched_v_ = sched_->self_variant();
    marker_v_ = marker_->self_variant();
  }
  resolve_metrics();
  resolve_timeseries();
}

void Port::resolve_metrics() {
  obs::MetricsRegistry* reg = obs::MetricsRegistry::current();
  if (reg == nullptr) return;
  metrics_.enabled = true;
  const std::string base = "port." + name_ + ".";
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    const std::string qbase = base + "q" + std::to_string(q) + ".";
    metrics_.q_enq.push_back(&reg->counter(qbase + "enq_packets"));
    metrics_.q_deq.push_back(&reg->counter(qbase + "deq_packets"));
    metrics_.q_drop.push_back(&reg->counter(qbase + "drop_packets"));
    metrics_.q_sojourn.push_back(&reg->histogram(qbase + "sojourn_ns"));
  }
  metrics_.drops_buffer = &reg->counter(base + "drops.buffer");
  metrics_.drops_fault = &reg->counter(base + "drops.fault");
  metrics_.drops_sched = &reg->counter(base + "drops.sched");
  metrics_.marks_enqueue = &reg->counter(base + "marks.enqueue");
  metrics_.marks_dequeue = &reg->counter(base + "marks.dequeue");
  metrics_.mark_sojourn = &reg->histogram(base + "mark_sojourn_ns");
  metrics_.interdeq_gap = &reg->histogram(base + "interdeq_gap_ns");
}

void Port::resolve_timeseries() {
  obs::TimeSeries* ts = obs::TimeSeries::current();
  if (ts == nullptr) return;
  series_enabled_ = true;
  series_.reserve(queues_.size());
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    // The depth probe runs only at tick time; capturing [this, q] keeps the
    // hot path free of any per-packet probe cost.
    series_.push_back(ts->add_channel(
        name_ + ".q" + std::to_string(q), cfg_.buffer_bytes,
        [this, q]() -> std::pair<std::uint64_t, std::uint64_t> {
          return {queues_[q].bytes(), queues_[q].size()};
        }));
  }
}

void Port::emit(TraceEvent event, const Packet& p, std::size_t queue,
                sim::Time sojourn) {
  TraceRecord rec;
  rec.t = sim_.now();
  rec.event = event;
  rec.port = name_;
  rec.queue = queue;
  rec.flow = p.flow;
  rec.seq = p.seq;
  rec.size = p.size;
  rec.dscp = p.dscp;
  rec.queue_bytes = queues_[queue].bytes();
  rec.port_bytes = total_bytes_;
  rec.sojourn = sojourn;
  observer_->on_event(rec);
}

void Port::connect(Node* peer, std::size_t peer_ingress) {
  peer_ = peer;
  peer_ingress_ = peer_ingress;
}

void Port::fault_drop(const Packet& p, std::size_t queue) {
  ++counters_.fault_drops;
  counters_.fault_drop_bytes += p.size;
  if (metrics_.enabled) metrics_.drops_fault->inc();
  if (observer_ != nullptr) emit(TraceEvent::kFaultDrop, p, queue);
}

void Port::set_link_up(bool up) {
  if (link_up_ == up) return;
  link_up_ = up;
  // Whatever survived in the buffer resumes draining when the link heals.
  if (up) try_transmit();
}

void Port::enqueue(PacketPtr p, std::size_t queue) {
  if (queue >= queues_.size()) {
    throw std::invalid_argument("Port::enqueue(" + name_ + "): queue index " +
                                std::to_string(queue) + " out of range [0, " +
                                std::to_string(queues_.size()) + ")");
  }
  // A downed link blackholes new arrivals before buffer accounting.
  if (!link_up_) {
    fault_drop(*p, queue);
    return;
  }
  // Shared-buffer admission: tail drop on the port total.
  if (total_bytes_ + p->size > buffer_limit_) {
    ++counters_.drops;
    counters_.drop_bytes += p->size;
    ++queue_drops_[queue];
    if (metrics_.enabled) {
      metrics_.drops_buffer->inc();
      metrics_.q_drop[queue]->inc();
    }
    if (observer_ != nullptr) emit(TraceEvent::kDrop, *p, queue);
    return;  // packet destroyed
  }
  // Scheduler admission control (e.g. AIFO): a rejection here is a
  // *scheduling* decision, accounted apart from buffer and fault drops, and
  // invisible to the marker (the packet never enters a queue).
  const bool admitted = std::visit(
      [&](auto* s) {
        return s->admit(queue, *p, sim_.now(), total_bytes_, buffer_limit_);
      },
      sched_v_);
  if (!admitted) {
    ++counters_.sched_drops;
    counters_.sched_drop_bytes += p->size;
    if (metrics_.enabled) metrics_.drops_sched->inc();
    if (observer_ != nullptr) emit(TraceEvent::kSchedDrop, *p, queue);
    return;  // packet destroyed
  }
  p->enqueue_ts = sim_.now();
  total_bytes_ += p->size;
  ++counters_.enq_packets;
  counters_.enq_bytes += p->size;
  if (metrics_.enabled) metrics_.q_enq[queue]->inc();

  Packet& ref = *p;
  queues_[queue].push(std::move(p));
  std::visit([&](auto* s) { s->on_enqueue(queue, ref, sim_.now()); },
             sched_v_);

  const MarkContext ctx{.now = sim_.now(),
                        .queue = queue,
                        .queue_bytes = queues_[queue].bytes(),
                        .port_bytes = total_bytes_,
                        .link_rate_bps = effective_rate_bps_};
  const bool mark_enq =
      std::visit([&](auto* m) { return m->on_enqueue(ctx, ref); }, marker_v_);
  if (mark_enq && ref.ect()) {
    ref.ecn = Ecn::kCe;
    ++counters_.marks;
    if (metrics_.enabled) {
      metrics_.marks_enqueue->inc();
      metrics_.mark_sojourn->record(0);  // marked on arrival: no queueing yet
    }
    if (series_enabled_) series_[queue]->on_mark();
    if (observer_ != nullptr) emit(TraceEvent::kMark, ref, queue);
  }
  if (observer_ != nullptr) emit(TraceEvent::kEnqueue, ref, queue);

  try_transmit();
}

void Port::try_transmit() {
  if (busy_ || !link_up_ || total_bytes_ == 0) return;

  const std::size_t q =
      std::visit([&](auto* s) { return s->select(sim_.now()); }, sched_v_);
  assert(q < queues_.size() && !queues_[q].empty());

  PacketPtr p = queues_[q].pop();
  total_bytes_ -= p->size;
  std::visit([&](auto* s) { s->on_dequeue(q, *p, sim_.now()); }, sched_v_);

  const MarkContext ctx{.now = sim_.now(),
                        .queue = q,
                        .queue_bytes = queues_[q].bytes(),
                        .port_bytes = total_bytes_,
                        .link_rate_bps = effective_rate_bps_};
  const sim::Time sojourn = sim_.now() - p->enqueue_ts;
  const bool mark_deq =
      std::visit([&](auto* m) { return m->on_dequeue(ctx, *p); }, marker_v_);
  if (mark_deq && p->ect()) {
    p->ecn = Ecn::kCe;
    ++counters_.marks;
    if (metrics_.enabled) {
      metrics_.marks_dequeue->inc();
      metrics_.mark_sojourn->record(sojourn);
    }
    if (series_enabled_) series_[q]->on_mark();
    if (observer_ != nullptr) emit(TraceEvent::kMark, *p, q, sojourn);
  }
  if (metrics_.enabled) {
    metrics_.q_deq[q]->inc();
    metrics_.q_sojourn[q]->record(sojourn);
    if (last_dequeue_ >= 0) {
      metrics_.interdeq_gap->record(sim_.now() - last_dequeue_);
    }
    last_dequeue_ = sim_.now();
  }
  if (series_enabled_) series_[q]->on_dequeue(sojourn, p->size);
  if (observer_ != nullptr) emit(TraceEvent::kDequeue, *p, q, sojourn);

  ++counters_.tx_packets;
  counters_.tx_bytes += p->size;

  const sim::Time tx = sim::transmission_time(p->size, effective_rate_bps_);
  busy_ = true;
  // Serialization finishes at now+tx; the packet then propagates for
  // prop_delay before hitting the peer. A link that goes down while the
  // packet is on the wire (or a loss model firing at the end of
  // serialization) blackholes it. The packet moves straight into the event's
  // inline capture -- no heap, and an event discarded unfired recycles it.
  sim_.schedule_in(tx, [this, q, pkt = std::move(p)]() mutable {
    busy_ = false;
    if (!link_up_ || (loss_ != nullptr && loss_->should_drop(*pkt, sim_.now()))) {
      fault_drop(*pkt, q);
    } else if (peer_ != nullptr) {
      sim_.schedule_in(cfg_.prop_delay,
                       [this, q, arriving = std::move(pkt)]() mutable {
        if (!link_up_) {
          fault_drop(*arriving, q);
          return;
        }
        peer_->receive(std::move(arriving), peer_ingress_);
      });
    }
    try_transmit();
  });
}

}  // namespace tcn::net
