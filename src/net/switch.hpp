// Output-queued switch with DSCP classification and ECMP routing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/marker.hpp"
#include "net/node.hpp"
#include "net/port.hpp"
#include "net/scheduler.hpp"
#include "sim/simulator.hpp"

namespace tcn::net {

/// Maps a packet to a queue index in [0, num_queues). The default classifier
/// uses min(dscp, num_queues-1), matching the prototype's DSCP classifier.
using Classifier = std::function<std::size_t(const Packet&, std::size_t)>;

Classifier dscp_classifier();

class Switch final : public Node {
 public:
  Switch(sim::Simulator& sim, std::string name);

  /// Create an egress port; returns its index.
  std::size_t add_port(PortConfig cfg, std::unique_ptr<Scheduler> sched,
                       std::unique_ptr<Marker> marker);

  /// Attach the far end of port `port`.
  void connect(std::size_t port, Node* peer, std::size_t peer_ingress);

  /// Route packets destined to host `dst` out one of `ports` (ECMP when the
  /// group has several members; the 5-tuple hash picks a member so a flow
  /// stays on one path).
  void add_route(std::uint32_t dst, std::vector<std::size_t> ports);

  void set_classifier(Classifier c) { classifier_ = std::move(c); }

  void receive(PacketPtr p, std::size_t ingress) override;

  [[nodiscard]] Port& port(std::size_t i) { return *ports_.at(i); }
  [[nodiscard]] std::size_t num_ports() const noexcept { return ports_.size(); }
  [[nodiscard]] std::string_view name() const override { return name_; }

  /// Packets that arrived with no matching route (diagnostics).
  [[nodiscard]] std::uint64_t unrouted() const noexcept { return unrouted_; }

 private:
  sim::Simulator& sim_;
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> routes_;
  Classifier classifier_;
  std::uint64_t unrouted_ = 0;
};

}  // namespace tcn::net
