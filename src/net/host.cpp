#include "net/host.hpp"

#include <utility>

#include "net/marker.hpp"

namespace tcn::net {

Host::Host(sim::Simulator& sim, std::string name, std::uint32_t address,
           PortConfig nic_cfg, sim::Time stack_delay)
    : sim_(sim),
      name_(std::move(name)),
      address_(address),
      stack_delay_(stack_delay) {
  nic_cfg.num_queues = 1;  // hosts transmit through a single FIFO
  nic_ = std::make_unique<Port>(sim_, name_ + ".nic", nic_cfg,
                                std::make_unique<FifoScheduler>(),
                                std::make_unique<NullMarker>());
}

void Host::connect(Node* peer, std::size_t peer_ingress) {
  nic_->connect(peer, peer_ingress);
}

void Host::send(PacketPtr p) {
  p->src = address_;
  if (stack_delay_ == 0) {
    nic_->enqueue(std::move(p), 0);
    return;
  }
  sim_.schedule_in(stack_delay_, [this, pkt = std::move(p)]() mutable {
    nic_->enqueue(std::move(pkt), 0);
  });
}

void Host::bind(std::uint16_t local_port, Handler h) {
  handlers_[local_port] = std::move(h);
}

void Host::unbind(std::uint16_t local_port) { handlers_.erase(local_port); }

void Host::receive(PacketPtr p, std::size_t /*ingress*/) {
  auto deliver = [this](PacketPtr pkt) {
    const auto it = handlers_.find(pkt->dport);
    if (it != handlers_.end()) it->second(std::move(pkt));
    // Unbound destinations silently drop (like a closed socket).
  };
  if (stack_delay_ == 0) {
    deliver(std::move(p));
    return;
  }
  sim_.schedule_in(stack_delay_,
                   [deliver, pkt = std::move(p)]() mutable {
                     deliver(std::move(pkt));
                   });
}

}  // namespace tcn::net
