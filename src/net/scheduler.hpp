// Packet scheduler interface.
//
// An egress Port owns N FIFO queues; a Scheduler decides which non-empty
// queue the next departing packet comes from. Implementations live in
// src/sched; this header only defines the contract so net/ stays the bottom
// layer.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/dispatch.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/time.hpp"

namespace tcn::net {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Static-dispatch registration (see net/dispatch.hpp): concrete in-tree
  /// schedulers override this with a one-liner returning `this` at their
  /// final type, letting Port devirtualize the hot calls. The default keeps
  /// external/test subclasses on the virtual path unchanged.
  [[nodiscard]] virtual SchedulerVariant self_variant() noexcept {
    return SchedulerVariant{this};
  }

  /// Called once by the owning Port before any traffic. `queues` outlives the
  /// scheduler; `link_rate_bps` is the port's effective drain rate.
  virtual void bind(const std::vector<PacketQueue>* queues,
                    std::uint64_t link_rate_bps) {
    queues_ = queues;
    link_rate_bps_ = link_rate_bps;
  }

  /// Admission control, consulted by the Port after the shared-buffer
  /// tail-drop check and before any enqueue accounting. Returning false
  /// rejects the packet: the port counts it as a *scheduler* drop (distinct
  /// from buffer and fault drops) and neither on_enqueue nor the marker
  /// sees it. `port_bytes` is the port's occupancy before this packet;
  /// `buffer_limit` is the shared-buffer capacity (UINT64_MAX = unlimited).
  /// Default: admit everything (work-conserving schedulers never drop).
  virtual bool admit(std::size_t q, const Packet& p, sim::Time now,
                     std::uint64_t port_bytes, std::uint64_t buffer_limit) {
    (void)q;
    (void)p;
    (void)now;
    (void)port_bytes;
    (void)buffer_limit;
    return true;
  }

  /// A packet was appended to queue `q` (already counted in the queue).
  virtual void on_enqueue(std::size_t q, const Packet& p, sim::Time now) = 0;

  /// Choose the queue the next departure comes from. Called exactly once per
  /// departure, only when at least one queue is non-empty; must return a
  /// non-empty queue's index. May mutate scheduler state (deficits, grants).
  virtual std::size_t select(sim::Time now) = 0;

  /// The head packet of queue `q` was removed (already uncounted).
  virtual void on_dequeue(std::size_t q, const Packet& p, sim::Time now) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

 protected:
  [[nodiscard]] const std::vector<PacketQueue>& queues() const {
    return *queues_;
  }
  [[nodiscard]] std::uint64_t link_rate_bps() const noexcept {
    return link_rate_bps_;
  }

 private:
  const std::vector<PacketQueue>* queues_ = nullptr;
  std::uint64_t link_rate_bps_ = 0;
};

/// Implemented by round-robin schedulers (DWRR/WRR) that can estimate a
/// queue's share of the link from their round time -- the hook MQ-ECN needs
/// (Sec. 3.3: quantum_i / T_round).
class RoundRateProvider {
 public:
  virtual ~RoundRateProvider() = default;
  /// Estimated drain rate of queue `q` in bits/s at time `now`.
  [[nodiscard]] virtual double queue_rate_bps(std::size_t q,
                                              sim::Time now) const = 0;
};

}  // namespace tcn::net
