#include "net/packet.hpp"

#include <atomic>

namespace tcn::net {
namespace {

// Innermost uid scope installed on this thread; nullptr outside any scope.
thread_local PacketUidScope* tls_uid_scope = nullptr;

}  // namespace

PacketUidScope::PacketUidScope() noexcept : prev_(tls_uid_scope) {
  tls_uid_scope = this;
}

PacketUidScope::~PacketUidScope() { tls_uid_scope = prev_; }

PacketPtr make_packet() {
  auto p = std::make_unique<Packet>();
  if (tls_uid_scope != nullptr) {
    p->uid = tls_uid_scope->next();
  } else {
    static std::atomic<std::uint64_t> next_uid{1};
    p->uid = next_uid.fetch_add(1, std::memory_order_relaxed);
  }
  return p;
}

}  // namespace tcn::net
