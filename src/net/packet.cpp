#include "net/packet.hpp"

#include <atomic>

namespace tcn::net {

PacketPtr make_packet() {
  static std::atomic<std::uint64_t> next_uid{1};
  auto p = std::make_unique<Packet>();
  p->uid = next_uid.fetch_add(1, std::memory_order_relaxed);
  return p;
}

}  // namespace tcn::net
