#include "net/packet.hpp"

#include <atomic>

namespace tcn::net {
namespace {

// Innermost uid scope installed on this thread; nullptr outside any scope.
thread_local PacketUidScope* tls_uid_scope = nullptr;
// Innermost packet pool installed on this thread; nullptr outside any scope.
thread_local PacketPool* tls_pool = nullptr;

}  // namespace

PacketUidScope::PacketUidScope() noexcept : prev_(tls_uid_scope) {
  tls_uid_scope = this;
}

PacketUidScope::~PacketUidScope() { tls_uid_scope = prev_; }

void PacketDeleter::operator()(Packet* p) const noexcept {
  if (p == nullptr) return;
  if (pool != nullptr) {
    pool->recycle(p);
  } else {
    delete p;
  }
}

PacketPtr PacketPool::acquire() {
  Packet* p;
  if (free_.empty()) {
    slab_.emplace_back();
    p = &slab_.back();
    ++fresh_;
  } else {
    p = free_.back();
    free_.pop_back();
    // Recycled packets must be indistinguishable from fresh ones: full
    // reset, including pool_free (the assignment clears it).
    *p = Packet{};
    ++reused_;
  }
  return PacketPtr(p, PacketDeleter{this});
}

void PacketPool::recycle(Packet* p) noexcept {
  if (p == nullptr) return;
  if (p->pool_free) {
    // Double recycle: the packet is already on the free list. Pushing it
    // again would hand the same storage to two owners later; dropping the
    // call keeps the free list consistent (slab storage is never freed
    // while the pool lives, so this is memory-safe, just counted).
    ++double_recycled_;
    return;
  }
  p->pool_free = true;
  free_.push_back(p);
  ++recycled_;
}

PacketPool::Scope::Scope(PacketPool& pool) noexcept : prev_(tls_pool) {
  tls_pool = &pool;
}

PacketPool::Scope::~Scope() { tls_pool = prev_; }

PacketPool* PacketPool::current() noexcept { return tls_pool; }

PacketPtr make_packet() {
  PacketPtr p = tls_pool != nullptr
                    ? tls_pool->acquire()
                    : PacketPtr(new Packet(), PacketDeleter{nullptr});
  if (tls_uid_scope != nullptr) {
    p->uid = tls_uid_scope->next();
  } else {
    static std::atomic<std::uint64_t> next_uid{1};
    p->uid = next_uid.fetch_add(1, std::memory_order_relaxed);
  }
  return p;
}

}  // namespace tcn::net
