// A single FIFO packet queue with byte accounting.
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.hpp"

namespace tcn::net {

class PacketQueue {
 public:
  void push(PacketPtr p) {
    bytes_ += p->size;
    q_.push_back(std::move(p));
  }

  PacketPtr pop() {
    PacketPtr p = std::move(q_.front());
    q_.pop_front();
    bytes_ -= p->size;
    return p;
  }

  /// Head packet, or nullptr when empty.
  [[nodiscard]] const Packet* front() const noexcept {
    return q_.empty() ? nullptr : q_.front().get();
  }

  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  std::deque<PacketPtr> q_;
  std::uint64_t bytes_ = 0;
};

}  // namespace tcn::net
