// Runtime invariant checking over port trace streams.
//
// An InvariantChecker is a PortObserver that shadows every watched port with
// its own byte ledger and cross-checks each TraceRecord against it:
//
//   - byte conservation: occupancy after an enqueue/dequeue equals the
//     modeled value (enqueued = transmitted + dropped + resident at all
//     times, per queue and per port)
//   - non-negative occupancy: a dequeue can never remove more bytes than the
//     model holds (underflow would wrap the unsigned counters silently)
//   - monotonic timestamps: a port's event stream never goes back in time
//
// One checker instance can watch any number of ports (records are keyed by
// port name), so a whole experiment needs exactly one. Fault-injection runs
// lean on this: a downed link or a mid-run buffer squeeze must never
// un-balance a port's ledger.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/trace.hpp"

namespace tcn::net {

class Port;

class InvariantChecker final : public PortObserver {
 public:
  /// fail_fast: throw std::logic_error on the first violation. Otherwise
  /// violations are counted and the first message retained for reporting.
  explicit InvariantChecker(bool fail_fast = true) : fail_fast_(fail_fast) {}

  void on_event(const TraceRecord& rec) override;

  [[nodiscard]] std::uint64_t events_checked() const noexcept {
    return events_checked_;
  }
  [[nodiscard]] std::uint64_t violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] const std::string& first_violation() const noexcept {
    return first_violation_;
  }
  /// Number of distinct ports seen so far.
  [[nodiscard]] std::size_t ports_watched() const noexcept {
    return ports_.size();
  }

  /// Install a post-mortem source: called once, on the FIRST violation, and
  /// its output is appended to the violation message (and to the exception
  /// in fail_fast mode). Wired to obs::FlightRecorder::format_tail by the
  /// experiment harness, so a tripped invariant dumps the last N port
  /// events instead of dying with a bare message.
  void set_postmortem(std::function<std::string()> fn) {
    postmortem_ = std::move(fn);
  }

 private:
  struct PortState {
    sim::Time last_t = 0;
    std::uint64_t port_bytes = 0;
    std::vector<std::uint64_t> queue_bytes;
  };

  void violation(const TraceRecord& rec, const std::string& what);

  bool fail_fast_;
  std::uint64_t events_checked_ = 0;
  std::uint64_t violations_ = 0;
  std::string first_violation_;
  std::function<std::string()> postmortem_;
  // Transparent comparator: lookup by string_view without allocating.
  std::map<std::string, PortState, std::less<>> ports_;
};

/// Counter-level conservation check, valid at any instant: every byte ever
/// admitted was either transmitted or is still resident in the buffer
/// (drops never enter the ledger; fault drops of in-flight packets happen
/// after the tx counter).
[[nodiscard]] bool port_ledger_balanced(const Port& port);

}  // namespace tcn::net
