// Per-port event tracing.
//
// A PortObserver attached to a Port sees every enqueue, dequeue, drop and
// mark with the queue/port state at that instant -- the raw material for
// debugging marking behaviour, building time series, or dumping pcap-style
// text logs. Observation is pull-free and costs one branch when unattached.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace tcn::net {

struct Packet;

enum class TraceEvent : std::uint8_t {
  kEnqueue,    ///< packet admitted to a queue
  kDequeue,    ///< packet leaves for the wire
  kDrop,       ///< packet rejected by the shared buffer
  kMark,       ///< CE applied (fires in addition to kEnqueue/kDequeue)
  kFaultDrop,  ///< packet blackholed by an injected fault (link down / loss)
  kSchedDrop,  ///< packet rejected by scheduler admission control (AIFO)
};

std::string_view trace_event_name(TraceEvent e);

struct TraceRecord {
  sim::Time t = 0;
  TraceEvent event = TraceEvent::kEnqueue;
  std::string_view port;  ///< owning port's name (stable storage)
  std::size_t queue = 0;
  std::uint64_t flow = 0;
  std::uint64_t seq = 0;
  std::uint32_t size = 0;
  std::uint8_t dscp = 0;
  std::uint64_t queue_bytes = 0;  ///< occupancy after the event
  std::uint64_t port_bytes = 0;
  /// Queueing delay of the packet at this event: now - enqueue timestamp.
  /// Meaningful on kDequeue and dequeue-side kMark records; 0 otherwise.
  sim::Time sojourn = 0;
};

class PortObserver {
 public:
  virtual ~PortObserver() = default;
  virtual void on_event(const TraceRecord& rec) = 0;
};

}  // namespace tcn::net
