#include "net/switch.hpp"

#include <algorithm>
#include <utility>

namespace tcn::net {
namespace {

/// splitmix64 finalizer: a strong deterministic mixer for ECMP hashing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t flow_hash(const Packet& p) {
  // Hash the bidirectionally-asymmetric 5-tuple; data and ACKs of one flow
  // may take different paths, as with real ECMP.
  const std::uint64_t a =
      (static_cast<std::uint64_t>(p.src) << 32) | p.dst;
  const std::uint64_t b =
      (static_cast<std::uint64_t>(p.sport) << 16) | p.dport;
  return mix64(a ^ mix64(b));
}

}  // namespace

Classifier dscp_classifier() {
  return [](const Packet& p, std::size_t num_queues) {
    return std::min<std::size_t>(p.dscp, num_queues - 1);
  };
}

Switch::Switch(sim::Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)), classifier_(dscp_classifier()) {}

std::size_t Switch::add_port(PortConfig cfg, std::unique_ptr<Scheduler> sched,
                             std::unique_ptr<Marker> marker) {
  const std::size_t idx = ports_.size();
  ports_.push_back(std::make_unique<Port>(
      sim_, name_ + ".p" + std::to_string(idx), cfg, std::move(sched),
      std::move(marker)));
  return idx;
}

void Switch::connect(std::size_t port, Node* peer, std::size_t peer_ingress) {
  ports_.at(port)->connect(peer, peer_ingress);
}

void Switch::add_route(std::uint32_t dst, std::vector<std::size_t> ports) {
  routes_[dst] = std::move(ports);
}

void Switch::receive(PacketPtr p, std::size_t /*ingress*/) {
  const auto it = routes_.find(p->dst);
  if (it == routes_.end() || it->second.empty()) {
    ++unrouted_;
    return;
  }
  const auto& group = it->second;
  std::size_t out = group[0];
  if (group.size() > 1) {
    const std::uint64_t hash = flow_hash(*p);
    out = group[hash % group.size()];
    // Steer around dead ECMP members: flows hashed onto a downed link are
    // deterministically rehashed over the live members (like a fabric
    // routing update); flows on healthy links keep their path.
    if (!ports_[out]->link_up()) {
      std::vector<std::size_t> alive;
      alive.reserve(group.size());
      for (const std::size_t member : group) {
        if (ports_[member]->link_up()) alive.push_back(member);
      }
      // All members down: fall through and let the port blackhole it.
      if (!alive.empty()) out = alive[hash % alive.size()];
    }
  }
  Port& port = *ports_[out];
  const std::size_t q = classifier_(*p, port.num_queues());
  port.enqueue(std::move(p), q);
}

}  // namespace tcn::net
