#include "stats/tracer.hpp"

#include <iomanip>
#include <stdexcept>

namespace tcn::stats {

void TextTracer::on_event(const net::TraceRecord& rec) {
  out_ << std::fixed << std::setprecision(3)
       << static_cast<double>(rec.t) / sim::kMicrosecond << "us "
       << net::trace_event_name(rec.event) << " " << rec.port << " q"
       << rec.queue << " flow=" << rec.flow << " seq=" << rec.seq
       << " size=" << rec.size << " dscp=" << static_cast<int>(rec.dscp)
       << " qbytes=" << rec.queue_bytes << " port=" << rec.port_bytes
       << "\n";
}

void FlowTraceSummary::on_event(const net::TraceRecord& rec) {
  FlowStats& s = flows_[rec.flow];
  switch (rec.event) {
    case net::TraceEvent::kEnqueue:
      ++s.packets;
      s.bytes += rec.size;
      s.peak_queue_bytes = std::max(s.peak_queue_bytes, rec.queue_bytes);
      break;
    case net::TraceEvent::kMark:
      ++s.marks;
      break;
    case net::TraceEvent::kDrop:
    case net::TraceEvent::kFaultDrop:
    case net::TraceEvent::kSchedDrop:
      ++s.drops;
      break;
    case net::TraceEvent::kDequeue:
      break;
  }
}

const FlowTraceSummary::FlowStats& FlowTraceSummary::flow(
    std::uint64_t id) const {
  const auto it = flows_.find(id);
  if (it == flows_.end()) {
    throw std::out_of_range("FlowTraceSummary: unknown flow");
  }
  return it->second;
}

}  // namespace tcn::stats
