// Time-series instruments: per-service goodput meters (Fig. 1 / 5a) and a
// periodic queue-occupancy sampler (Fig. 3).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace tcn::stats {

/// Accumulates delivered bytes into fixed-width bins; goodput of bin i is
/// bytes[i]*8/bin_width. Hook `record` into TcpSink delivery callbacks.
class GoodputMeter {
 public:
  explicit GoodputMeter(sim::Time bin_width) : bin_width_(bin_width) {}

  void record(std::uint32_t bytes, sim::Time now) {
    const auto bin = static_cast<std::size_t>(now / bin_width_);
    if (bins_.size() <= bin) bins_.resize(bin + 1, 0);
    bins_[bin] += bytes;
    total_ += bytes;
  }

  /// Goodput of bin i in bits/sec.
  [[nodiscard]] double bin_bps(std::size_t i) const {
    if (i >= bins_.size()) return 0.0;
    return static_cast<double>(bins_[i]) * 8.0 / sim::to_seconds(bin_width_);
  }

  /// Average goodput over [from, to) in bits/sec.
  [[nodiscard]] double average_bps(sim::Time from, sim::Time to) const;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_; }
  [[nodiscard]] sim::Time bin_width() const noexcept { return bin_width_; }
  [[nodiscard]] std::size_t num_bins() const noexcept { return bins_.size(); }

 private:
  sim::Time bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Samples a value (e.g. port buffer occupancy) every `interval` and stores
/// (time, value) pairs.
class PeriodicSampler {
 public:
  using Probe = std::function<double()>;

  PeriodicSampler(sim::Simulator& sim, sim::Time interval, Probe probe)
      : sim_(sim), interval_(interval), probe_(std::move(probe)) {}
  ~PeriodicSampler() { stop(); }

  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

  void start() {
    if (timer_ == sim::kInvalidEvent) tick();
  }
  void stop() {
    if (timer_ != sim::kInvalidEvent) {
      sim_.cancel(timer_);
      timer_ = sim::kInvalidEvent;
    }
  }

  struct Sample {
    sim::Time t;
    double value;
  };
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] double max_value() const;

 private:
  void tick() {
    samples_.push_back({sim_.now(), probe_()});
    timer_ = sim_.schedule_in(interval_, [this]() { tick(); });
  }

  sim::Simulator& sim_;
  sim::Time interval_;
  Probe probe_;
  sim::EventId timer_ = sim::kInvalidEvent;
  std::vector<Sample> samples_;
};

}  // namespace tcn::stats
