// PortObserver implementations: in-memory recording (with filters and a cap),
// text logging, and per-flow summaries.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <vector>

#include "net/trace.hpp"

namespace tcn::stats {

/// Records every event (optionally filtered), up to a cap.
class RecordingTracer final : public net::PortObserver {
 public:
  using Filter = std::function<bool(const net::TraceRecord&)>;

  explicit RecordingTracer(std::size_t max_records = 1'000'000,
                           Filter filter = nullptr)
      : max_(max_records), filter_(std::move(filter)) {}

  void on_event(const net::TraceRecord& rec) override {
    if (filter_ && !filter_(rec)) return;
    if (records_.size() < max_) {
      records_.push_back(rec);
      ++tally_[static_cast<std::size_t>(rec.event)];
    } else {
      ++overflow_;
    }
  }

  [[nodiscard]] const std::vector<net::TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }

  /// Number of STORED records of type `e` (capped records are not counted,
  /// matching records()). O(1): tallies are maintained on insert -- several
  /// tests and benches call this in loops.
  [[nodiscard]] std::size_t count(net::TraceEvent e) const {
    return tally_[static_cast<std::size_t>(e)];
  }

 private:
  // One slot per TraceEvent enumerator (kEnqueue..kSchedDrop).
  static constexpr std::size_t kNumEvents =
      static_cast<std::size_t>(net::TraceEvent::kSchedDrop) + 1;

  std::size_t max_;
  Filter filter_;
  std::vector<net::TraceRecord> records_;
  std::uint64_t overflow_ = 0;
  std::array<std::size_t, kNumEvents> tally_{};
};

/// Streams events as one text line each:
///   12.345us enq  sw0.p3 q2 flow=17 seq=14600 size=1500 dscp=2 q=4500 port=9000
class TextTracer final : public net::PortObserver {
 public:
  explicit TextTracer(std::ostream& out) : out_(out) {}

  void on_event(const net::TraceRecord& rec) override;

 private:
  std::ostream& out_;
};

/// Per-flow aggregation: packets/bytes through the port, marks, drops, and
/// the peak queue depth seen by the flow's packets.
class FlowTraceSummary final : public net::PortObserver {
 public:
  struct FlowStats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t marks = 0;
    std::uint64_t drops = 0;
    std::uint64_t peak_queue_bytes = 0;
  };

  void on_event(const net::TraceRecord& rec) override;

  [[nodiscard]] const FlowStats& flow(std::uint64_t id) const;
  [[nodiscard]] const std::map<std::uint64_t, FlowStats>& flows()
      const noexcept {
    return flows_;
  }

 private:
  std::map<std::uint64_t, FlowStats> flows_;
};

/// Fan-out helper: forward one port's events to several observers.
class TeeObserver final : public net::PortObserver {
 public:
  explicit TeeObserver(std::vector<net::PortObserver*> sinks)
      : sinks_(std::move(sinks)) {}

  void on_event(const net::TraceRecord& rec) override {
    for (auto* s : sinks_) s->on_event(rec);
  }

 private:
  std::vector<net::PortObserver*> sinks_;
};

}  // namespace tcn::stats
