#include "stats/fct.hpp"

#include "stats/percentile.hpp"

namespace tcn::stats {

void FctCollector::add(const transport::FlowResult& r) {
  const double us = static_cast<double>(r.fct) / sim::kMicrosecond;
  all_us_.push_back(us);
  timeouts_ += r.timeouts;
  if (r.size <= kSmallFlowMax) {
    small_us_.push_back(us);
    small_timeouts_ += r.timeouts;
  } else if (r.size > kLargeFlowMin) {
    large_us_.push_back(us);
  }
}

FctSummary FctCollector::summary() const {
  FctSummary s;
  s.count = all_us_.size();
  s.timeouts = timeouts_;
  s.small_timeouts = small_timeouts_;
  if (!all_us_.empty()) s.avg_all_us = mean(all_us_);
  s.small_count = small_us_.size();
  if (!small_us_.empty()) {
    s.avg_small_us = mean(small_us_);
    s.p99_small_us = percentile(small_us_, 99.0);
  }
  s.large_count = large_us_.size();
  if (!large_us_.empty()) s.avg_large_us = mean(large_us_);
  return s;
}

void StreamingFctCollector::add(const transport::FlowResult& r) {
  const double us = static_cast<double>(r.fct) / sim::kMicrosecond;
  ++count_;
  sum_all_us_ += us;
  timeouts_ += r.timeouts;
  if (r.size <= kSmallFlowMax) {
    ++small_count_;
    sum_small_us_ += us;
    small_timeouts_ += r.timeouts;
    small_ns_.record(r.fct);
  } else if (r.size > kLargeFlowMin) {
    ++large_count_;
    sum_large_us_ += us;
  }
}

FctSummary StreamingFctCollector::summary() const {
  FctSummary s;
  s.count = count_;
  s.timeouts = timeouts_;
  s.small_timeouts = small_timeouts_;
  if (count_ > 0) s.avg_all_us = sum_all_us_ / static_cast<double>(count_);
  s.small_count = small_count_;
  if (small_count_ > 0) {
    s.avg_small_us = sum_small_us_ / static_cast<double>(small_count_);
    s.p99_small_us = static_cast<double>(small_ns_.percentile(99.0)) /
                     sim::kMicrosecond;
  }
  s.large_count = large_count_;
  if (large_count_ > 0) {
    s.avg_large_us = sum_large_us_ / static_cast<double>(large_count_);
  }
  return s;
}

}  // namespace tcn::stats
