// Percentile and summary helpers.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace tcn::stats {

/// Nearest-rank percentile of an unsorted sample (p in [0, 100]). Copies and
/// sorts; intended for end-of-run reporting, not hot paths.
template <typename T>
T percentile(std::vector<T> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: bad p");
  std::sort(values.begin(), values.end());
  if (p == 0.0) return values.front();
  const auto rank = static_cast<std::size_t>(
      std::max<double>(1.0, std::ceil(p / 100.0 * values.size())));
  return values[rank - 1];
}

template <typename T>
double mean(const std::vector<T>& values) {
  if (values.empty()) throw std::invalid_argument("mean: empty sample");
  double sum = 0.0;
  for (const auto& v : values) sum += static_cast<double>(v);
  return sum / static_cast<double>(values.size());
}

}  // namespace tcn::stats
