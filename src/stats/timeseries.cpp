#include "stats/timeseries.hpp"

#include <algorithm>

namespace tcn::stats {

double GoodputMeter::average_bps(sim::Time from, sim::Time to) const {
  if (to <= from) return 0.0;
  std::uint64_t bytes = 0;
  const auto first = static_cast<std::size_t>(from / bin_width_);
  const auto last =
      std::min<std::size_t>(bins_.size(), (to + bin_width_ - 1) / bin_width_);
  for (std::size_t i = first; i < last; ++i) bytes += bins_[i];
  return static_cast<double>(bytes) * 8.0 / sim::to_seconds(to - from);
}

double PeriodicSampler::max_value() const {
  double m = 0.0;
  for (const auto& s : samples_) m = std::max(m, s.value);
  return m;
}

}  // namespace tcn::stats
