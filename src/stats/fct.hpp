// Flow-completion-time statistics, bucketed the way the paper reports them:
// all flows / small flows (0, 100KB] (average and 99th percentile) / large
// flows (10MB, inf) -- Sec. 6 "Performance metric".
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"
#include "transport/flow.hpp"

namespace tcn::stats {

inline constexpr std::uint64_t kSmallFlowMax = 100'000;       // 100KB
inline constexpr std::uint64_t kLargeFlowMin = 10'000'000;    // 10MB

struct FctSummary {
  std::size_t count = 0;
  double avg_all_us = 0.0;
  std::size_t small_count = 0;
  double avg_small_us = 0.0;
  double p99_small_us = 0.0;
  std::size_t large_count = 0;
  double avg_large_us = 0.0;
  std::uint64_t timeouts = 0;        ///< across all completed flows
  std::uint64_t small_timeouts = 0;  ///< timeouts suffered by small flows
};

class FctCollector {
 public:
  void add(const transport::FlowResult& r);

  [[nodiscard]] FctSummary summary() const;
  [[nodiscard]] std::size_t count() const noexcept { return all_us_.size(); }

  /// Raw small-flow FCTs in microseconds (for external percentile analysis).
  [[nodiscard]] const std::vector<double>& small_us() const noexcept {
    return small_us_;
  }

 private:
  std::vector<double> all_us_;
  std::vector<double> small_us_;
  std::vector<double> large_us_;
  std::uint64_t timeouts_ = 0;
  std::uint64_t small_timeouts_ = 0;
};

/// O(1)-memory FCT collector for open-loop runs: FctCollector's per-flow
/// vectors cost ~24 bytes/flow (hundreds of MB at 10M+ completions), which
/// would defeat the flow slab's bounded-heap guarantee. This variant keeps
/// running counts/sums for the averages (exact) and a log-linear histogram
/// of small-flow FCTs for the tail, so p99_small_us carries the histogram's
/// <= 1/32 relative bucket error -- the right trade at open-loop scale.
/// Deterministic for identical completion streams.
class StreamingFctCollector {
 public:
  void add(const transport::FlowResult& r);

  [[nodiscard]] FctSummary summary() const;
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  std::size_t count_ = 0;
  double sum_all_us_ = 0.0;
  std::size_t small_count_ = 0;
  double sum_small_us_ = 0.0;
  std::size_t large_count_ = 0;
  double sum_large_us_ = 0.0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t small_timeouts_ = 0;
  obs::LogHistogram small_ns_;  // FCTs in ns: full precision at the tail
};

}  // namespace tcn::stats
