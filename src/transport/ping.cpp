#include "transport/ping.hpp"

namespace tcn::transport {

PingResponder::PingResponder(net::Host& host, std::uint16_t port)
    : host_(host), port_(port) {
  host_.bind(port_, [this](net::PacketPtr p) {
    if (p->type != net::PacketType::kPing) return;
    auto pong = net::make_packet();
    pong->type = net::PacketType::kPong;
    pong->dst = p->src;
    pong->sport = port_;
    pong->dport = p->sport;
    pong->size = p->size;
    pong->dscp = p->dscp;
    pong->sent_ts = p->sent_ts;  // carry the original timestamp back
    host_.send(std::move(pong));
  });
}

PingResponder::~PingResponder() { host_.unbind(port_); }

PingApp::PingApp(net::Host& host, std::uint32_t dst, std::uint16_t dst_port,
                 std::uint8_t dscp, sim::Time interval,
                 std::uint32_t size_bytes)
    : host_(host),
      sim_(host.simulator()),
      dst_(dst),
      dst_port_(dst_port),
      local_port_(host.allocate_port()),
      dscp_(dscp),
      interval_(interval),
      size_(size_bytes) {
  if (obs::MetricsRegistry* reg = obs::MetricsRegistry::current()) {
    rtt_hist_ = &reg->histogram("ping.rtt_ns");
  }
  host_.bind(local_port_, [this](net::PacketPtr p) {
    if (p->type != net::PacketType::kPong) return;
    const sim::Time rtt = sim_.now() - p->sent_ts;
    rtts_.push_back(rtt);
    if (rtt_hist_ != nullptr) rtt_hist_->record(rtt);
  });
}

PingApp::~PingApp() {
  stop();
  host_.unbind(local_port_);
}

void PingApp::start() {
  if (timer_ == sim::kInvalidEvent) send_probe();
}

void PingApp::stop() {
  if (timer_ != sim::kInvalidEvent) {
    sim_.cancel(timer_);
    timer_ = sim::kInvalidEvent;
  }
}

void PingApp::send_probe() {
  auto p = net::make_packet();
  p->type = net::PacketType::kPing;
  p->dst = dst_;
  p->sport = local_port_;
  p->dport = dst_port_;
  p->size = size_;
  p->dscp = dscp_;
  p->sent_ts = sim_.now();
  ++sent_;
  host_.send(std::move(p));
  timer_ = sim_.schedule_in(interval_, [this]() { send_probe(); });
}

}  // namespace tcn::transport
