#include "transport/tcp_sink.hpp"

#include <algorithm>

namespace tcn::transport {

TcpSink::TcpSink(net::Host& host, std::uint16_t local_port,
                 std::uint8_t ack_dscp, DeliveryCb on_deliver, Options options)
    : host_(host),
      local_port_(local_port),
      ack_dscp_(ack_dscp),
      on_deliver_(std::move(on_deliver)),
      opt_(options) {
  host_.bind(local_port_, [this](net::PacketPtr p) { on_data(std::move(p)); });
}

TcpSink::~TcpSink() {
  if (delack_timer_ != sim::kInvalidEvent) {
    host_.simulator().cancel(delack_timer_);
  }
  host_.unbind(local_port_);
}

void TcpSink::send_ack(bool ece) {
  auto ack = net::make_packet();
  ack->type = net::PacketType::kAck;
  ack->dst = peer_addr_;
  ack->sport = local_port_;
  ack->dport = peer_port_;
  ack->flow = flow_;
  ack->payload = 0;
  ack->size = net::kHeaderBytes;
  ack->ack = rcv_nxt_;
  ack->ece = ece;
  ack->ecn = net::Ecn::kNotEct;
  ack->dscp = ack_dscp_;
  if (opt_.sack) {
    for (const auto& [begin, end] : ooo_) {
      if (ack->sack_count >= ack->sack.size()) break;
      ack->sack[ack->sack_count++] = {begin, end};
    }
  }
  ++acks_;
  host_.send(std::move(ack));
}

void TcpSink::flush_delayed() {
  if (delack_timer_ != sim::kInvalidEvent) {
    host_.simulator().cancel(delack_timer_);
    delack_timer_ = sim::kInvalidEvent;
  }
  if (unacked_segments_ > 0) {
    unacked_segments_ = 0;
    send_ack(pending_ece_);
    pending_ece_ = false;
  }
}

void TcpSink::on_data(net::PacketPtr p) {
  if (p->type != net::PacketType::kData) return;
  ++packets_;
  if (p->ce()) ++ce_;
  peer_addr_ = p->src;
  peer_port_ = p->sport;
  flow_ = p->flow;

  const std::uint64_t begin = p->seq;
  const std::uint64_t end = p->seq + p->payload;
  const std::uint64_t before = rcv_nxt_;
  const bool in_order = begin <= rcv_nxt_ && end > rcv_nxt_;

  if (end > rcv_nxt_) {
    if (in_order) {
      rcv_nxt_ = end;
      // Drain contiguous out-of-order segments.
      auto it = ooo_.begin();
      while (it != ooo_.end() && it->first <= rcv_nxt_) {
        rcv_nxt_ = std::max(rcv_nxt_, it->second);
        it = ooo_.erase(it);
      }
    } else {
      // Hole: stash; merge overlaps lazily on drain.
      auto [it, inserted] = ooo_.emplace(begin, end);
      if (!inserted) it->second = std::max(it->second, end);
    }
  }

  if (rcv_nxt_ > before && on_deliver_) {
    on_deliver_(static_cast<std::uint32_t>(rcv_nxt_ - before),
                host_.simulator().now());
  }

  const bool ece = p->ce();
  if (!opt_.delayed_ack) {
    send_ack(ece);
    return;
  }

  // Delayed-ACK policy: flush immediately on out-of-order data (dupacks
  // drive fast retransmit), on a CE-state change (DCTCP accurate echo), or
  // on the second pending segment; otherwise wait for the timer.
  const bool ce_changed = unacked_segments_ > 0 && ece != pending_ece_;
  if (!in_order || ce_changed) {
    // Acknowledge what is pending first (with its own echo state), then the
    // trigger segment.
    flush_delayed();
    send_ack(ece);
    return;
  }
  pending_ece_ = ece;
  if (++unacked_segments_ >= 2) {
    flush_delayed();
    return;
  }
  delack_timer_ = host_.simulator().schedule_in(
      opt_.delayed_ack_timeout, [this] {
        delack_timer_ = sim::kInvalidEvent;
        if (unacked_segments_ > 0) {
          unacked_segments_ = 0;
          send_ack(pending_ece_);
          pending_ece_ = false;
        }
      });
}

}  // namespace tcn::transport
