// TCP sender: a byte-stream connection carrying one or more messages
// (flows), with ECN-based congestion control.
//
// The paper's testbed application multiplexes flows (messages) over
// persistent TCP connections (Sec. 6.1.2); this sender models exactly that:
// messages are enqueued onto the stream, each with its own per-offset DSCP
// function (PIAS tags offsets within the *message*) and completion callback.
// A single-message connection is the classic ns-2 "FTP over TCP" flow model
// used by FlowManager.
//
// Implemented machinery:
//   - slow start / congestion avoidance (byte-counting), with Linux-style
//     window restart after idle (cwnd back to the initial window, ssthresh
//     retained) so warm connections do not blast converged windows
//   - per-packet accurate ECN echo processing; at most one window reduction
//     per RTT (ECN*: cwnd/2; DCTCP: alpha-scaled cut, g = 1/16)
//   - NewReno-style fast retransmit/recovery on 3 dupacks
//   - retransmission timeout with Jacobson RTT estimation, RTOmin clamp and
//     exponential backoff; timeout counts are attributed to messages (the
//     paper reports TCP timeouts to explain tail FCTs)
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "net/host.hpp"
#include "obs/metrics.hpp"
#include "transport/tcp.hpp"

namespace tcn::transport {

class TcpSender {
 public:
  /// `on_complete(fct_ns, timeouts)` fires when the message's last byte is
  /// cumulatively acked; fct includes any wait behind earlier messages on
  /// the same connection.
  using MessageCb = std::function<void(sim::Time fct, std::uint32_t timeouts)>;
  /// Legacy single-flow completion callback (FlowManager).
  using CompletionCb = std::function<void(sim::Time fct)>;

  struct MessageSpec {
    std::uint64_t size = 0;
    /// DSCP as a function of the byte offset *within this message*;
    /// falls back to the connection default when empty.
    DscpFn dscp;
    MessageCb on_complete;
  };

  TcpSender(net::Host& host, std::uint32_t dst, std::uint16_t sport,
            std::uint16_t dport, std::uint64_t flow_id, TcpConfig cfg,
            DscpFn data_dscp, std::uint8_t ack_dscp, CompletionCb on_complete);
  ~TcpSender();

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  /// Legacy API: transfer `size` bytes as the connection's only message and
  /// fire the constructor's completion callback. Callable once.
  void start(std::uint64_t size);

  /// Append a message to the stream (persistent-connection API). The first
  /// message opens the congestion window; later messages reuse it (with
  /// restart-after-idle if the connection sat quiet longer than the RTO).
  void enqueue_message(MessageSpec msg);

  [[nodiscard]] bool completed() const noexcept {
    return started_ && pending_messages() == 0;
  }
  [[nodiscard]] std::size_t pending_messages() const noexcept {
    return messages_.size();
  }
  [[nodiscard]] std::uint32_t timeouts() const noexcept { return timeouts_; }
  [[nodiscard]] double cwnd_bytes() const noexcept { return cwnd_; }
  [[nodiscard]] double dctcp_alpha() const noexcept { return alpha_; }
  [[nodiscard]] std::uint64_t flow_id() const noexcept { return flow_id_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return stream_end_; }
  [[nodiscard]] sim::Time start_time() const noexcept { return start_time_; }
  [[nodiscard]] std::uint64_t bytes_acked() const noexcept { return snd_una_; }

 private:
  struct Message {
    std::uint64_t begin;
    std::uint64_t end;
    DscpFn dscp;
    MessageCb on_complete;
    sim::Time arrival;
    std::uint32_t timeouts_before;
  };

  void on_ack(net::PacketPtr ack);
  void send_available();
  void send_segment(std::uint64_t seq, bool is_retransmit);
  void enter_fast_recovery();
  void on_rto();
  void arm_timer();
  void disarm_timer();
  void ensure_timer_event();
  void on_timer_event();
  void complete_messages();
  void ecn_reduce();
  void update_alpha_window(std::uint64_t newly_acked, bool ece);
  void merge_sack(const net::Packet& ack);
  [[nodiscard]] std::uint64_t next_unsacked(std::uint64_t from) const;
  void retransmit_hole();
  [[nodiscard]] std::uint32_t seg_len(std::uint64_t seq) const;
  [[nodiscard]] std::uint8_t dscp_for(std::uint64_t seq) const;

  net::Host& host_;
  sim::Simulator& sim_;
  std::uint32_t dst_;
  std::uint16_t sport_;
  std::uint16_t dport_;
  std::uint64_t flow_id_;
  TcpConfig cfg_;
  DscpFn default_dscp_;
  std::uint8_t ack_dscp_;
  CompletionCb legacy_complete_;
  bool legacy_started_ = false;

  std::deque<Message> messages_;  // pending (not fully acked), FIFO
  std::uint64_t stream_end_ = 0;  // total bytes ever enqueued
  sim::Time start_time_ = 0;
  bool started_ = false;
  sim::Time last_activity_ = 0;

  // Window state (bytes).
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  double cwnd_ = 0.0;
  double ssthresh_ = 0.0;

  // ECN reaction state: at most one reduction per window.
  std::uint64_t cwr_seq_ = 0;
  bool cwr_armed_ = false;

  // DCTCP alpha estimator.
  double alpha_ = 1.0;
  std::uint64_t alpha_seq_ = 0;
  std::uint64_t win_acked_ = 0;
  std::uint64_t win_marked_ = 0;

  // Loss recovery.
  std::uint32_t dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;
  // SACK scoreboard: disjoint [begin, end) blocks above snd_una known to
  // have reached the receiver; rtx cursor avoids re-retransmitting the same
  // hole within one recovery episode.
  std::map<std::uint64_t, std::uint64_t> sacked_;
  std::uint64_t rtx_high_ = 0;

  // RTT estimation / RTO.
  bool rtt_measuring_ = false;
  std::uint64_t rtt_seq_ = 0;
  sim::Time rtt_sent_at_ = 0;
  bool srtt_valid_ = false;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  sim::Time rto_;
  std::uint32_t backoff_ = 0;
  // Lazy retransmission timer: re-arming on every ACK only moves the
  // deadline; the single scheduled event chains itself forward. This keeps
  // the hot path free of event cancellations.
  sim::Time timer_deadline_ = -1;  // -1: disarmed
  sim::Time timer_event_at_ = -1;
  sim::EventId timer_event_ = sim::kInvalidEvent;
  std::uint32_t timeouts_ = 0;

  /// Aggregate transport counters ("tcp.*"), resolved once from the
  /// thread-local MetricsRegistry scope; null handles (metrics disabled)
  /// cost one branch per publish site.
  struct Metrics {
    obs::Counter* timeouts = nullptr;
    obs::Counter* fast_recoveries = nullptr;
    obs::Counter* ece_acks = nullptr;
    obs::Counter* cwnd_reductions = nullptr;
  };
  Metrics metrics_;
};

}  // namespace tcn::transport
