#include "transport/flow.hpp"

#include <utility>

namespace tcn::transport {

std::uint64_t FlowManager::start_flow(net::Host& src, net::Host& dst,
                                      FlowSpec spec) {
  const std::uint64_t id = next_flow_id_++;
  const std::uint16_t sport = src.allocate_port();
  const std::uint16_t dport = dst.allocate_port();

  auto entry = std::make_unique<Entry>();
  entry->sink = std::make_unique<TcpSink>(dst, dport, spec.ack_dscp,
                                          std::move(spec.on_deliver),
                                          TcpSink::Options::from(spec.tcp));

  const std::uint64_t size = spec.size;
  const std::uint32_t service = spec.service;
  entry->sender = std::make_unique<TcpSender>(
      src, dst.address(), sport, dport, id, spec.tcp,
      std::move(spec.data_dscp), spec.ack_dscp,
      [this, id, size, service,
       flow_cb = std::move(spec.on_complete)](sim::Time fct) {
        const Entry& e = *flows_[id - 1];
        FlowResult r;
        r.flow_id = id;
        r.size = size;
        r.service = service;
        r.start = e.sender->start_time();
        r.fct = fct;
        r.timeouts = e.sender->timeouts();
        results_.push_back(r);
        if (on_complete_) on_complete_(r);
        if (flow_cb) flow_cb(r);
      });

  flows_.push_back(std::move(entry));
  ++flows_started_;
  flows_.back()->sender->start(size);
  return id;
}

std::uint64_t FlowManager::total_timeouts() const noexcept {
  std::uint64_t n = 0;
  for (const auto& e : flows_) {
    if (e->sender) n += e->sender->timeouts();
  }
  return n;
}

TcpSender* FlowManager::sender(std::uint64_t flow_id) {
  if (flow_id == 0 || flow_id > flows_.size()) return nullptr;
  return flows_[flow_id - 1]->sender.get();
}

}  // namespace tcn::transport
