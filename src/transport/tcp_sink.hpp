// TCP sink: reassembles the byte stream and acknowledges with per-packet
// accurate ECN echo (the ACK's ECE mirrors the data packet's CE, as DCTCP
// requires).
//
// Options (from TcpConfig): SACK blocks describing out-of-order data, and
// delayed ACKs (every second in-order segment or a timeout) -- delayed ACKs
// are still flushed immediately whenever the CE state changes or data
// arrives out of order, so loss recovery and DCTCP's echo stay exact.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/host.hpp"
#include "transport/tcp.hpp"

namespace tcn::transport {

struct SinkOptions {
  bool sack = false;
  bool delayed_ack = false;
  sim::Time delayed_ack_timeout = 1 * sim::kMillisecond;

  static SinkOptions from(const TcpConfig& cfg) {
    return SinkOptions{cfg.sack, cfg.delayed_ack, cfg.delayed_ack_timeout};
  }
};

class TcpSink {
 public:
  /// `on_deliver(bytes, now)` fires when in-order bytes are handed to the
  /// application -- goodput meters hook here.
  using DeliveryCb = std::function<void(std::uint32_t bytes, sim::Time now)>;
  using Options = SinkOptions;

  TcpSink(net::Host& host, std::uint16_t local_port, std::uint8_t ack_dscp,
          DeliveryCb on_deliver = nullptr, Options options = {});
  ~TcpSink();

  TcpSink(const TcpSink&) = delete;
  TcpSink& operator=(const TcpSink&) = delete;

  [[nodiscard]] std::uint64_t bytes_delivered() const noexcept {
    return rcv_nxt_;
  }
  [[nodiscard]] std::uint64_t packets_received() const noexcept {
    return packets_;
  }
  [[nodiscard]] std::uint64_t acks_sent() const noexcept { return acks_; }
  [[nodiscard]] std::uint64_t ce_received() const noexcept { return ce_; }

 private:
  void on_data(net::PacketPtr p);
  void send_ack(bool ece);
  void flush_delayed();

  net::Host& host_;
  std::uint16_t local_port_;
  std::uint8_t ack_dscp_;
  DeliveryCb on_deliver_;
  Options opt_;

  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::uint64_t> ooo_;  // seq -> end (out of order)
  std::uint64_t packets_ = 0;
  std::uint64_t acks_ = 0;
  std::uint64_t ce_ = 0;

  // Peer identity learned from the first data packet (used for ACKs sent
  // from the delayed-ACK timer, where no packet is in hand).
  std::uint32_t peer_addr_ = 0;
  std::uint16_t peer_port_ = 0;
  std::uint64_t flow_ = 0;

  // Delayed-ACK state.
  std::uint32_t unacked_segments_ = 0;
  bool pending_ece_ = false;
  sim::EventId delack_timer_ = sim::kInvalidEvent;
};

}  // namespace tcn::transport
