// Common TCP types shared by sender and sink.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tcn::transport {

/// Congestion-control reaction to ECN echoes.
enum class CongestionControl {
  /// ECN* (Wu et al., CoNEXT 2012): regular ECN-enabled TCP -- halve the
  /// window at most once per RTT when an echo arrives. More sensitive to
  /// premature marks than DCTCP (Sec. 6.2.2).
  kEcnStar,
  /// DCTCP (Alizadeh et al., SIGCOMM 2010): scale the cut by the EWMA
  /// fraction alpha of marked bytes: cwnd *= 1 - alpha/2.
  kDctcp,
};

struct TcpConfig {
  std::uint32_t mss = net::kDefaultMss;
  std::uint32_t init_cwnd_pkts = 10;
  sim::Time rto_min = 10 * sim::kMillisecond;
  sim::Time rto_init = 10 * sim::kMillisecond;
  sim::Time rto_max = 2 * sim::kSecond;
  /// Cap on exponential RTO backoff doublings (2^max_rto_backoff x RTO,
  /// still clamped by rto_max). Keeps a sender probing a blackholed path
  /// often enough to recover promptly when the outage heals, instead of
  /// backing off unboundedly.
  std::uint32_t max_rto_backoff = 6;
  CongestionControl cc = CongestionControl::kDctcp;
  double dctcp_g = 1.0 / 16.0;  ///< alpha gain
  std::uint32_t dupack_threshold = 3;
  /// Receive-window style cap on cwnd; defaults to effectively unlimited.
  std::uint64_t max_cwnd_bytes = UINT64_MAX;
  /// Selective acknowledgments: the sink advertises out-of-order blocks and
  /// the sender retransmits holes instead of blindly resending from snd_una
  /// (recovers multi-loss windows without an RTO).
  bool sack = false;
  /// Delayed ACKs: acknowledge every second in-order segment (or after
  /// `delayed_ack_timeout`). ACKs are still sent immediately whenever the
  /// CE state changes, preserving DCTCP's accurate ECN echo.
  bool delayed_ack = false;
  sim::Time delayed_ack_timeout = 1 * sim::kMillisecond;
};

/// Per-packet DSCP choice as a function of the byte offset being sent --
/// constant for service isolation, threshold-based for PIAS.
using DscpFn = std::function<std::uint8_t(std::uint64_t byte_offset)>;

inline DscpFn constant_dscp(std::uint8_t dscp) {
  return [dscp](std::uint64_t) { return dscp; };
}

}  // namespace tcn::transport
