#include "transport/tcp_sender.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace tcn::transport {

TcpSender::TcpSender(net::Host& host, std::uint32_t dst, std::uint16_t sport,
                     std::uint16_t dport, std::uint64_t flow_id, TcpConfig cfg,
                     DscpFn data_dscp, std::uint8_t ack_dscp,
                     CompletionCb on_complete)
    : host_(host),
      sim_(host.simulator()),
      dst_(dst),
      sport_(sport),
      dport_(dport),
      flow_id_(flow_id),
      cfg_(cfg),
      default_dscp_(std::move(data_dscp)),
      ack_dscp_(ack_dscp),
      legacy_complete_(std::move(on_complete)),
      rto_(cfg.rto_init) {
  if (!default_dscp_) default_dscp_ = constant_dscp(0);
  host_.bind(sport_, [this](net::PacketPtr p) { on_ack(std::move(p)); });
  if (obs::MetricsRegistry* reg = obs::MetricsRegistry::current()) {
    metrics_.timeouts = &reg->counter("tcp.timeouts");
    metrics_.fast_recoveries = &reg->counter("tcp.fast_recoveries");
    metrics_.ece_acks = &reg->counter("tcp.ece_acks");
    metrics_.cwnd_reductions = &reg->counter("tcp.cwnd_reductions");
  }
}

TcpSender::~TcpSender() {
  if (timer_event_ != sim::kInvalidEvent) sim_.cancel(timer_event_);
  host_.unbind(sport_);
}

void TcpSender::start(std::uint64_t size) {
  if (legacy_started_) throw std::logic_error("TcpSender::start called twice");
  legacy_started_ = true;
  MessageSpec msg;
  msg.size = size;
  msg.on_complete = [this](sim::Time fct, std::uint32_t) {
    if (legacy_complete_) legacy_complete_(fct);
  };
  enqueue_message(std::move(msg));
}

void TcpSender::enqueue_message(MessageSpec msg) {
  if (msg.size == 0) {
    throw std::invalid_argument("TcpSender: zero-size message");
  }
  if (!started_) {
    started_ = true;
    start_time_ = sim_.now();
    cwnd_ = static_cast<double>(cfg_.init_cwnd_pkts) * cfg_.mss;
    ssthresh_ = static_cast<double>(cfg_.max_cwnd_bytes);
    last_activity_ = sim_.now();
  } else if (snd_nxt_ == snd_una_ && sim_.now() - last_activity_ > rto_) {
    // Window restart after idle (Linux tcp_slow_start_after_idle): slow
    // start again from the initial window but keep ssthresh, so the warm
    // connection ramps quickly yet cannot blast its old converged window.
    cwnd_ = std::min(
        cwnd_, static_cast<double>(cfg_.init_cwnd_pkts) * cfg_.mss);
    backoff_ = 0;
  }
  Message m;
  m.begin = stream_end_;
  m.end = stream_end_ + msg.size;
  m.dscp = std::move(msg.dscp);
  m.on_complete = std::move(msg.on_complete);
  m.arrival = sim_.now();
  m.timeouts_before = timeouts_;
  stream_end_ = m.end;
  messages_.push_back(std::move(m));
  send_available();
}

std::uint32_t TcpSender::seg_len(std::uint64_t seq) const {
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(cfg_.mss, stream_end_ - seq));
}

std::uint8_t TcpSender::dscp_for(std::uint64_t seq) const {
  // Pending messages cover [snd_una_, stream_end_); every (re)transmitted
  // seq falls inside one of them. PIAS-style tagging is relative to the
  // message start.
  for (const auto& m : messages_) {
    if (seq < m.end) {
      return m.dscp ? m.dscp(seq - m.begin) : default_dscp_(seq - m.begin);
    }
  }
  return default_dscp_(0);
}

void TcpSender::send_segment(std::uint64_t seq, bool is_retransmit) {
  auto p = net::make_packet();
  p->type = net::PacketType::kData;
  p->dst = dst_;
  p->sport = sport_;
  p->dport = dport_;
  p->flow = flow_id_;
  p->seq = seq;
  p->payload = seg_len(seq);
  p->size = p->payload + net::kHeaderBytes;
  p->ecn = net::Ecn::kEct0;
  p->dscp = dscp_for(seq);
  p->sent_ts = sim_.now();

  // Karn's rule: only time segments that are not retransmissions.
  if (!rtt_measuring_ && !is_retransmit) {
    rtt_measuring_ = true;
    rtt_seq_ = seq + p->payload;
    rtt_sent_at_ = sim_.now();
  }

  last_activity_ = sim_.now();
  host_.send(std::move(p));
  arm_timer();
}

void TcpSender::send_available() {
  const std::uint64_t wnd = static_cast<std::uint64_t>(
      std::min(cwnd_, static_cast<double>(cfg_.max_cwnd_bytes)));
  while (snd_nxt_ < stream_end_ &&
         snd_nxt_ + seg_len(snd_nxt_) <= snd_una_ + wnd) {
    const std::uint32_t len = seg_len(snd_nxt_);
    send_segment(snd_nxt_, false);
    snd_nxt_ += len;
  }
}

void TcpSender::update_alpha_window(std::uint64_t newly_acked, bool ece) {
  win_acked_ += newly_acked;
  if (ece) win_marked_ += newly_acked;
  if (snd_una_ > alpha_seq_) {
    // One observation window elapsed: fold the marked fraction into alpha.
    if (win_acked_ > 0) {
      const double frac = static_cast<double>(win_marked_) /
                          static_cast<double>(win_acked_);
      alpha_ = (1.0 - cfg_.dctcp_g) * alpha_ + cfg_.dctcp_g * frac;
    }
    win_acked_ = 0;
    win_marked_ = 0;
    alpha_seq_ = snd_nxt_;
  }
}

void TcpSender::ecn_reduce() {
  if (cwr_armed_ && snd_una_ <= cwr_seq_) return;  // once per window
  if (metrics_.cwnd_reductions != nullptr) metrics_.cwnd_reductions->inc();
  const double mss = cfg_.mss;
  if (cfg_.cc == CongestionControl::kDctcp) {
    cwnd_ = std::max(mss, cwnd_ * (1.0 - alpha_ / 2.0));
  } else {
    cwnd_ = std::max(mss, cwnd_ / 2.0);
  }
  ssthresh_ = cwnd_;
  cwr_seq_ = snd_nxt_;
  cwr_armed_ = true;
}

void TcpSender::merge_sack(const net::Packet& ack) {
  for (std::uint8_t i = 0; i < ack.sack_count; ++i) {
    auto [begin, end] = ack.sack[i];
    if (end <= snd_una_ || begin >= end) continue;
    begin = std::max(begin, snd_una_);
    // Merge with any overlapping/adjacent blocks.
    auto it = sacked_.lower_bound(begin);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= begin) it = prev;
    }
    while (it != sacked_.end() && it->first <= end) {
      begin = std::min(begin, it->first);
      end = std::max(end, it->second);
      it = sacked_.erase(it);
    }
    sacked_.emplace(begin, end);
  }
  // Prune below the cumulative ack.
  while (!sacked_.empty() && sacked_.begin()->second <= snd_una_) {
    sacked_.erase(sacked_.begin());
  }
  if (!sacked_.empty() && sacked_.begin()->first < snd_una_) {
    auto node = sacked_.extract(sacked_.begin());
    node.key() = snd_una_;
    sacked_.insert(std::move(node));
  }
}

std::uint64_t TcpSender::next_unsacked(std::uint64_t from) const {
  for (const auto& [begin, end] : sacked_) {
    if (from < begin) break;
    if (from < end) from = end;
  }
  return from;
}

void TcpSender::retransmit_hole() {
  // Lowest never-retransmitted hole this recovery (SACK-aware if enabled).
  std::uint64_t hole = std::max(snd_una_, rtx_high_);
  if (cfg_.sack) hole = next_unsacked(hole);
  if (hole >= snd_nxt_ || hole >= recover_) return;
  send_segment(hole, true);
  rtx_high_ = hole + seg_len(hole);
}

void TcpSender::on_ack(net::PacketPtr ack) {
  if (!started_) return;
  if (ack->type != net::PacketType::kAck) return;

  const std::uint64_t ackno = ack->ack;
  const bool ece = ack->ece;
  if (ece && metrics_.ece_acks != nullptr) metrics_.ece_acks->inc();

  if (ackno > snd_una_) {
    const std::uint64_t newly = ackno - snd_una_;
    snd_una_ = ackno;
    dupacks_ = 0;
    backoff_ = 0;
    last_activity_ = sim_.now();

    // RTT sample (only when the timed segment was cumulatively acked).
    if (rtt_measuring_ && snd_una_ >= rtt_seq_) {
      rtt_measuring_ = false;
      const double sample = static_cast<double>(sim_.now() - rtt_sent_at_);
      if (!srtt_valid_) {
        srtt_ = sample;
        rttvar_ = sample / 2.0;
        srtt_valid_ = true;
      } else {
        const double err = sample - srtt_;
        srtt_ += 0.125 * err;
        rttvar_ += 0.25 * (std::abs(err) - rttvar_);
      }
      const double rto = srtt_ + std::max(4.0 * rttvar_, 1.0);
      rto_ = std::clamp(static_cast<sim::Time>(rto), cfg_.rto_min,
                        cfg_.rto_max);
    }

    if (cfg_.cc == CongestionControl::kDctcp) {
      update_alpha_window(newly, ece);
    }
    if (ece) ecn_reduce();

    if (cfg_.sack) merge_sack(*ack);
    if (in_recovery_) {
      if (snd_una_ >= recover_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
        sacked_.clear();
        rtx_high_ = 0;
      } else {
        // Partial ACK: retransmit the next hole (SACK-aware), stay in
        // recovery.
        rtx_high_ = std::max(rtx_high_, snd_una_);
        retransmit_hole();
      }
    } else if (!ece) {
      // Window growth (suppressed in the RTT that saw a reduction).
      if (cwnd_ < ssthresh_) {
        cwnd_ += std::min<std::uint64_t>(newly, cfg_.mss);  // slow start
      } else {
        cwnd_ += static_cast<double>(cfg_.mss) * cfg_.mss / cwnd_;  // CA
      }
    }

    complete_messages();
    if (snd_una_ >= stream_end_) {
      disarm_timer();
      return;
    }
    arm_timer();
    send_available();
    return;
  }

  // Duplicate ACK.
  if (ackno == snd_una_ && snd_nxt_ > snd_una_) {
    if (cfg_.sack) merge_sack(*ack);
    if (ece) ecn_reduce();
    if (!in_recovery_) {
      ++dupacks_;
      if (dupacks_ >= cfg_.dupack_threshold) enter_fast_recovery();
    } else if (cfg_.sack) {
      // Each further dupack exposes more of the scoreboard: keep filling
      // holes instead of waiting one RTT per hole.
      retransmit_hole();
    }
  }
}

void TcpSender::enter_fast_recovery() {
  if (metrics_.fast_recoveries != nullptr) metrics_.fast_recoveries->inc();
  in_recovery_ = true;
  recover_ = snd_nxt_;
  const double mss = cfg_.mss;
  const double inflight = static_cast<double>(snd_nxt_ - snd_una_);
  ssthresh_ = std::max(inflight / 2.0, 2.0 * mss);
  cwnd_ = ssthresh_;
  dupacks_ = 0;
  rtx_high_ = snd_una_;
  retransmit_hole();
}

void TcpSender::on_rto() {
  if (snd_una_ >= stream_end_) return;
  ++timeouts_;
  if (metrics_.timeouts != nullptr) metrics_.timeouts->inc();
  const double mss = cfg_.mss;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss);
  cwnd_ = mss;
  snd_nxt_ = snd_una_;
  dupacks_ = 0;
  in_recovery_ = false;
  sacked_.clear();  // conservative: rebuild the scoreboard after an RTO
  rtx_high_ = 0;
  rtt_measuring_ = false;
  if (backoff_ < cfg_.max_rto_backoff) ++backoff_;
  send_available();
  arm_timer();
}

void TcpSender::arm_timer() {
  if (snd_una_ >= stream_end_) {
    timer_deadline_ = -1;
    return;
  }
  // Capped exponential backoff: at most 2^max_rto_backoff x RTO and never
  // beyond rto_max, so a blackholed sender keeps probing at a bounded pace.
  const std::uint32_t shift = std::min(backoff_, cfg_.max_rto_backoff);
  const sim::Time rto =
      shift >= 62 ? cfg_.rto_max
                  : std::min<sim::Time>(cfg_.rto_max, rto_ << shift);
  timer_deadline_ = sim_.now() + rto;
  ensure_timer_event();
}

void TcpSender::disarm_timer() { timer_deadline_ = -1; }

void TcpSender::ensure_timer_event() {
  if (timer_event_ != sim::kInvalidEvent) {
    if (timer_event_at_ <= timer_deadline_) return;  // chains forward
    sim_.cancel(timer_event_);  // rare: deadline moved earlier
  }
  timer_event_at_ = timer_deadline_;
  timer_event_ = sim_.schedule_at(timer_deadline_, [this]() {
    on_timer_event();
  });
}

void TcpSender::on_timer_event() {
  timer_event_ = sim::kInvalidEvent;
  if (timer_deadline_ < 0) return;  // disarmed meanwhile
  if (sim_.now() < timer_deadline_) {
    ensure_timer_event();  // deadline was pushed out by ACK progress
    return;
  }
  timer_deadline_ = -1;
  on_rto();
}

void TcpSender::complete_messages() {
  while (!messages_.empty() && snd_una_ >= messages_.front().end) {
    Message done = std::move(messages_.front());
    messages_.pop_front();
    if (done.on_complete) {
      done.on_complete(sim_.now() - done.arrival,
                       timeouts_ - done.timeouts_before);
    }
  }
}

}  // namespace tcn::transport
