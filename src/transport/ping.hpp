// Ping probe: periodic small request/response packets measuring RTT through
// the network, reproducing the testbed's RTT measurement of Fig. 5b.
#pragma once

#include <cstdint>
#include <vector>

#include "net/host.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace tcn::transport {

/// Echo service: rebinds every kPing packet back to its source as kPong.
class PingResponder {
 public:
  PingResponder(net::Host& host, std::uint16_t port);
  ~PingResponder();

  PingResponder(const PingResponder&) = delete;
  PingResponder& operator=(const PingResponder&) = delete;

 private:
  net::Host& host_;
  std::uint16_t port_;
};

class PingApp {
 public:
  /// Sends `size_bytes` probes to `dst`:`dst_port` (a PingResponder) every
  /// `interval`, tagged with `dscp` so they traverse a chosen switch queue.
  PingApp(net::Host& host, std::uint32_t dst, std::uint16_t dst_port,
          std::uint8_t dscp, sim::Time interval, std::uint32_t size_bytes = 64);
  ~PingApp();

  PingApp(const PingApp&) = delete;
  PingApp& operator=(const PingApp&) = delete;

  void start();
  void stop();

  [[nodiscard]] const std::vector<sim::Time>& rtts() const noexcept {
    return rtts_;
  }
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }

 private:
  void send_probe();

  net::Host& host_;
  sim::Simulator& sim_;
  std::uint32_t dst_;
  std::uint16_t dst_port_;
  std::uint16_t local_port_;
  std::uint8_t dscp_;
  sim::Time interval_;
  std::uint32_t size_;
  sim::EventId timer_ = sim::kInvalidEvent;
  std::uint64_t sent_ = 0;
  std::vector<sim::Time> rtts_;
  /// "ping.rtt_ns" histogram (Fig. 5b's series); null when metrics are off.
  obs::LogHistogram* rtt_hist_ = nullptr;
};

}  // namespace tcn::transport
