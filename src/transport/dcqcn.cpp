#include "transport/dcqcn.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcn::transport {

DcqcnReceiver::DcqcnReceiver(net::Host& host, std::uint16_t local_port,
                             sim::Time cnp_interval, DeliveryCb on_deliver)
    : host_(host),
      local_port_(local_port),
      cnp_interval_(cnp_interval),
      on_deliver_(std::move(on_deliver)) {
  host_.bind(local_port_, [this](net::PacketPtr p) { on_data(std::move(p)); });
}

DcqcnReceiver::~DcqcnReceiver() { host_.unbind(local_port_); }

void DcqcnReceiver::on_data(net::PacketPtr p) {
  if (p->type != net::PacketType::kData) return;
  bytes_ += p->payload;
  if (on_deliver_) on_deliver_(p->payload, host_.simulator().now());

  // NP algorithm: at most one CNP per interval while CE arrives.
  if (p->ce()) {
    const sim::Time now = host_.simulator().now();
    if (last_cnp_ < 0 || now - last_cnp_ >= cnp_interval_) {
      last_cnp_ = now;
      ++cnps_;
      auto cnp = net::make_packet();
      cnp->type = net::PacketType::kCnp;
      cnp->dst = p->src;
      cnp->sport = local_port_;
      cnp->dport = p->sport;
      cnp->flow = p->flow;
      cnp->size = net::kHeaderBytes;
      cnp->ecn = net::Ecn::kNotEct;
      cnp->dscp = 0;  // CNPs ride the highest-priority queue (Sec. 2.2)
      host_.send(std::move(cnp));
    }
  }
}

DcqcnSender::DcqcnSender(net::Host& host, std::uint32_t dst,
                         std::uint16_t sport, std::uint16_t dport,
                         std::uint64_t flow_id, DcqcnConfig cfg,
                         std::uint8_t dscp, CompletionCb on_complete)
    : host_(host),
      sim_(host.simulator()),
      dst_(dst),
      sport_(sport),
      dport_(dport),
      flow_id_(flow_id),
      cfg_(cfg),
      dscp_(dscp),
      on_complete_(std::move(on_complete)),
      rc_(cfg.initial_rate_bps > 0 ? cfg.initial_rate_bps
                                   : cfg.line_rate_bps),
      rt_(rc_) {
  if (cfg_.line_rate_bps <= 0 || cfg_.min_rate_bps <= 0 ||
      cfg_.min_rate_bps > cfg_.line_rate_bps) {
    throw std::invalid_argument("DcqcnSender: bad rates");
  }
  host_.bind(sport_, [this](net::PacketPtr p) { on_cnp(std::move(p)); });
}

DcqcnSender::~DcqcnSender() {
  stop();
  host_.unbind(sport_);
}

void DcqcnSender::start(std::uint64_t size) {
  if (running_) throw std::logic_error("DcqcnSender::start called twice");
  running_ = true;
  size_ = size;
  start_time_ = sim_.now();
  alpha_event_ = sim_.schedule_in(cfg_.alpha_timer, [this] { on_alpha_timer(); });
  rate_event_ = sim_.schedule_in(cfg_.rate_timer, [this] { on_rate_timer(); });
  send_next();
}

void DcqcnSender::stop() {
  running_ = false;
  for (auto* ev : {&pace_event_, &alpha_event_, &rate_event_}) {
    if (*ev != sim::kInvalidEvent) {
      sim_.cancel(*ev);
      *ev = sim::kInvalidEvent;
    }
  }
}

void DcqcnSender::send_next() {
  pace_event_ = sim::kInvalidEvent;
  if (!running_) return;
  if (size_ > 0 && sent_ >= size_) {
    if (!completed_) {
      completed_ = true;
      const sim::Time fct = sim_.now() - start_time_;
      stop();  // cancel the alpha/rate timers so the event queue drains
      if (on_complete_) on_complete_(fct);
    }
    return;
  }
  const std::uint32_t payload = static_cast<std::uint32_t>(
      size_ > 0 ? std::min<std::uint64_t>(cfg_.mtu, size_ - sent_) : cfg_.mtu);
  auto p = net::make_packet();
  p->type = net::PacketType::kData;
  p->dst = dst_;
  p->sport = sport_;
  p->dport = dport_;
  p->flow = flow_id_;
  p->payload = payload;
  p->size = payload + net::kHeaderBytes;
  p->ecn = net::Ecn::kEct0;
  p->dscp = dscp_;
  const std::uint32_t wire_size = p->size;
  host_.send(std::move(p));
  sent_ += payload;
  bytes_since_event_ += payload;

  // Byte-counter increase events (BC in the paper).
  if (bytes_since_event_ >= cfg_.byte_counter) {
    bytes_since_event_ = 0;
    ++byte_events_;
    increase_event();
  }

  // Pace the next packet at the current rate.
  const double gap_s = static_cast<double>(wire_size) * 8.0 / rc_;
  pace_event_ = sim_.schedule_in(
      std::max<sim::Time>(1, sim::from_seconds(gap_s)),
      [this] { send_next(); });
}

void DcqcnSender::on_cnp(net::PacketPtr p) {
  if (p->type != net::PacketType::kCnp || !running_) return;
  ++cnps_;
  cnp_since_alpha_timer_ = true;
  rate_decrease();
}

void DcqcnSender::rate_decrease() {
  // RP cut: remember target, cut multiplicatively, restart recovery stages.
  rt_ = rc_;
  rc_ = std::max(cfg_.min_rate_bps, rc_ * (1.0 - alpha_ / 2.0));
  alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g;
  timer_events_ = 0;
  byte_events_ = 0;
  bytes_since_event_ = 0;
}

void DcqcnSender::increase_event() {
  // Stage is governed by the *minimum* of the two event counters reaching F
  // (fast recovery), then additive, then hyper increase.
  const std::uint32_t stage = std::min(timer_events_, byte_events_);
  if (std::max(timer_events_, byte_events_) <= cfg_.fast_recovery_events) {
    // Fast recovery: halve the gap to the target rate.
  } else if (stage <= cfg_.fast_recovery_events) {
    rt_ += cfg_.rai_bps;  // additive increase
  } else {
    rt_ += cfg_.rhai_bps *
           static_cast<double>(stage - cfg_.fast_recovery_events);
  }
  rt_ = std::min(rt_, cfg_.line_rate_bps);
  rc_ = std::min(cfg_.line_rate_bps, (rt_ + rc_) / 2.0);
}

void DcqcnSender::on_alpha_timer() {
  alpha_event_ = sim::kInvalidEvent;
  if (!running_) return;
  alpha_event_ = sim_.schedule_in(cfg_.alpha_timer, [this] { on_alpha_timer(); });
  if (!cnp_since_alpha_timer_) {
    alpha_ *= (1.0 - cfg_.g);
  }
  cnp_since_alpha_timer_ = false;
}

void DcqcnSender::on_rate_timer() {
  rate_event_ = sim::kInvalidEvent;
  if (!running_) return;
  rate_event_ = sim_.schedule_in(cfg_.rate_timer, [this] { on_rate_timer(); });
  ++timer_events_;
  increase_event();
}

}  // namespace tcn::transport
