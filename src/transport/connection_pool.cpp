#include "transport/connection_pool.hpp"

namespace tcn::transport {

ConnectionPool::Connection& ConnectionPool::idle_connection(
    net::Host& src, net::Host& dst, const FlowSpec& spec) {
  auto& list = conns_[{src.address(), dst.address()}];
  for (auto& c : list) {
    if (c->sender->pending_messages() == 0) return *c;
  }
  // All busy (or none yet): open a new connection, as the testbed client
  // does when no connection is available.
  auto conn = std::make_unique<Connection>();
  const std::uint16_t sport = src.allocate_port();
  const std::uint16_t dport = dst.allocate_port();
  conn->sink = std::make_unique<TcpSink>(dst, dport, spec.ack_dscp,
                                         spec.on_deliver,
                                         TcpSink::Options::from(spec.tcp));
  conn->sender = std::make_unique<TcpSender>(
      src, dst.address(), sport, dport,
      /*flow_id=*/0x10000000ULL + connections_created_, spec.tcp,
      /*data_dscp=*/nullptr, spec.ack_dscp, /*on_complete=*/nullptr);
  ++connections_created_;
  list.push_back(std::move(conn));
  return *list.back();
}

std::uint64_t ConnectionPool::submit(net::Host& src, net::Host& dst,
                                     FlowSpec spec) {
  const std::uint64_t id = next_msg_id_++;
  Connection& conn = idle_connection(src, dst, spec);

  TcpSender::MessageSpec msg;
  msg.size = spec.size;
  msg.dscp = std::move(spec.data_dscp);
  const std::uint64_t size = spec.size;
  const std::uint32_t service = spec.service;
  const sim::Time arrival = src.simulator().now();
  msg.on_complete = [this, id, size, service, arrival,
                     flow_cb = std::move(spec.on_complete)](
                        sim::Time fct, std::uint32_t timeouts) {
    FlowResult r;
    r.flow_id = id;
    r.size = size;
    r.service = service;
    r.start = arrival;
    r.fct = fct;
    r.timeouts = timeouts;
    results_.push_back(r);
    if (on_complete_) on_complete_(r);
    if (flow_cb) flow_cb(r);
  };
  conn.sender->enqueue_message(std::move(msg));
  return id;
}

}  // namespace tcn::transport
